# elevprivacy build targets.

GO ?= go

.PHONY: all build vet staticcheck test test-short check bench bench-train bench-full experiments experiments-quick smoke-resume obs-smoke orch-smoke shard-smoke ingest-smoke fleet-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## staticcheck runs honnef.co/go/tools if the binary is on PATH and degrades
## to a notice otherwise — the repo vendors nothing and offline containers
## cannot install it, so its absence must not fail the gate.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

## check is the full gate, run by CI on every PR (.github/workflows/ci.yml):
## the tier-1 build/vet/test sequence plus the race detector over every
## package (the batch kernels, the forest pool, the concurrent k-fold, and
## the httpx/miner concurrency all fan out goroutines). The raised timeout
## covers the race detector's ~10-20x slowdown on the experiment suites.
check: build vet staticcheck test
	$(GO) test -race -timeout 45m ./...

## smoke-resume proves the crash-safety contract end to end: a SIGKILLed
## mining run, resumed from its journal, produces byte-identical output to an
## uninterrupted run. CI runs it non-gating (kill timing on shared runners is
## noisy); locally it is a quick sanity check after touching internal/durable.
smoke-resume:
	sh scripts/crash_resume_smoke.sh

## obs-smoke proves the telemetry layer against a live sweep: /metrics is
## scraped mid-run and must expose the httpx/pool/journal series in valid
## Prometheus exposition shape, and -trace-out must produce a well-formed
## Chrome trace. CI runs it non-gating (scrape timing on shared runners is
## noisy); locally it is the sanity check after touching internal/obs.
obs-smoke:
	sh scripts/obs_smoke.sh

## orch-smoke proves the scenario orchestrator end to end: a multi-scenario
## spec run against the admin API, SIGKILLed mid-sweep, resumed to
## byte-identical results, then rerun against the artifact cache (hits > 0,
## zero re-issued HTTP calls), and finally canceled gracefully over HTTP.
## CI runs it non-gating (kill/cancel timing on shared runners is noisy);
## locally it is the sanity check after touching internal/scenario.
orch-smoke:
	sh scripts/orchestrator_smoke.sh

## shard-smoke proves the sharded serving tier end to end: four shard
## replicas behind consistent-hash pools, a mining sweep that survives a
## SIGKILL of one shard mid-run with byte-identical output, pool failover
## metrics, a nonzero serving-cache hit rate on the warm survivors, and
## per-endpoint balance within 2x. CI runs it non-gating (kill timing on
## shared runners is noisy); locally it is the sanity check after touching
## internal/httpx pooling or internal/serving.
shard-smoke:
	sh scripts/shard_smoke.sh

## ingest-smoke proves the live-attack ingestion pipeline's crash-recovery
## contract end to end: a firehose client streams 400 activities at an
## elevingest server with a stalled classifier, the server is SIGKILLed
## with spilled activities in the journal, a restart on the same state
## directory restores and replays the backlog, and the final results dump
## must hold every activity exactly once, byte-identical to the offline
## batch path. CI runs it non-gating (kill timing on shared runners is
## noisy); locally it is the sanity check after touching internal/ingest.
ingest-smoke:
	sh scripts/ingest_smoke.sh

## fleet-smoke proves the fleet observability layer end to end: four traced
## shard replicas plus the ingest server and a faulted mining sweep, all
## federated by elevobs. The merged Chrome trace must hold parent-linked
## spans from five processes, fleet counters must equal the sum of the
## per-instance counters, and the injected-fault SLO breach must produce a
## structured alert plus a captured pprof profile. CI runs it non-gating
## (scrape/kill timing on shared runners is noisy); locally it is the
## sanity check after touching internal/obs, internal/httpx propagation,
## or internal/fleetobs.
fleet-smoke:
	sh scripts/fleet_smoke.sh

## bench runs every experiment benchmark at smoke scale plus the substrate
## micro-benchmarks, then the text-pipeline, training, serving-tier, and
## ingestion comparison harnesses, which measure the legacy paths against
## the current ones and write BENCH_textpipeline.json / BENCH_train.json /
## BENCH_serving.json / BENCH_ingest.json.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/textbench -out BENCH_textpipeline.json
	$(GO) run ./cmd/trainbench -out BENCH_train.json
	$(GO) run ./cmd/servebench -out BENCH_serving.json
	$(GO) run ./cmd/ingestbench -out BENCH_ingest.json

## bench-train runs only the training-path harness: the frozen per-sample
## MLP trainer against the batched float64/float32/sparse paths and the
## SVM dense path against its sparse one, with built-in bit-exactness
## checks, writing BENCH_train.json.
bench-train:
	$(GO) run ./cmd/trainbench -out BENCH_train.json

## bench-full runs the experiment benchmarks at the laptop scale that
## EXPERIMENTS.md records (tens of minutes).
bench-full:
	ELEVPRIVACY_BENCH_SCALE=full $(GO) test -bench=. -benchmem .

## experiments regenerates every paper table and figure.
experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
