# elevprivacy build targets.

GO ?= go

.PHONY: all build vet test test-short bench bench-full experiments experiments-quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

## bench runs every experiment benchmark at smoke scale plus the substrate
## micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

## bench-full runs the experiment benchmarks at the laptop scale that
## EXPERIMENTS.md records (tens of minutes).
bench-full:
	ELEVPRIVACY_BENCH_SCALE=full $(GO) test -bench=. -benchmem .

## experiments regenerates every paper table and figure.
experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
