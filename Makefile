# elevprivacy build targets.

GO ?= go

.PHONY: all build vet test test-short check bench bench-full experiments experiments-quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

## check is the full gate, run by CI on every PR (.github/workflows/ci.yml):
## the tier-1 build/vet/test sequence plus the race detector over every
## package (the batch kernels, the forest pool, the concurrent k-fold, and
## the httpx/miner concurrency all fan out goroutines). The raised timeout
## covers the race detector's ~10-20x slowdown on the experiment suites.
check: build vet test
	$(GO) test -race -timeout 45m ./...

## bench runs every experiment benchmark at smoke scale plus the substrate
## micro-benchmarks, then the text-pipeline comparison harness, which
## measures the legacy string+dense path against the token+sparse path at
## Table-II scale and writes BENCH_textpipeline.json.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/textbench -out BENCH_textpipeline.json

## bench-full runs the experiment benchmarks at the laptop scale that
## EXPERIMENTS.md records (tens of minutes).
bench-full:
	ELEVPRIVACY_BENCH_SCALE=full $(GO) test -bench=. -benchmem .

## experiments regenerates every paper table and figure.
experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
