// Package elevprivacy is a reproduction of "Understanding the Potential
// Risks of Sharing Elevation Information on Fitness Applications"
// (Meteriz, Yıldıran, Kim, Mohaisen — ICDCS 2020).
//
// The library demonstrates, end to end, that the elevation profile of a
// workout — the signal fitness apps let users share while hiding the route
// map — suffices to infer the user's location at city or borough
// granularity. It contains every substrate the attack needs:
//
//   - a synthetic ten-city world with per-city terrain signatures
//     (internal/terrain) served through SRTM-style DEM rasters
//     (internal/dem) and an HTTP elevation API (internal/elevsvc);
//   - a fitness-service segment store with the top-10 ExploreSegments API
//     and the grid-sweep miner of the paper's Fig. 4 (internal/segments);
//   - an athlete simulator reproducing the user-specific dataset's
//     properties (internal/activity), plus GPX I/O (internal/gpx);
//   - the paper's two elevation-profile representations: n-gram bag-of-
//     words text features (internal/textrep) and colored line-graph images
//     (internal/imagerep);
//   - from-scratch SVM, random forest, MLP, and CNN classifiers
//     (internal/ml/...), with class-weighted loss and fine-tuning rounds;
//   - the evaluation harness: k-fold CV, accuracy/precision/recall/F1/
//     specificity, overlap simulation (internal/eval, internal/dataset).
//
// This package is the public facade: build the paper's datasets, train
// text-like or image-like attacks under the three threat models, and
// evaluate them the way the paper's tables do.
//
// Threat models (paper §II-A):
//
//   - TM-1: the adversary knows the target's workout history and
//     identifies the region of a new activity (user-specific dataset).
//   - TM-2: the adversary knows the target's city and identifies the
//     borough (borough-level dataset, one model per city).
//   - TM-3: the adversary identifies the city with no prior knowledge
//     (city-level dataset).
package elevprivacy

import (
	"fmt"

	"elevprivacy/internal/dataset"
	"elevprivacy/internal/eval"
	"elevprivacy/internal/terrain"
)

// Re-exported core types. These aliases make the internal implementation
// types part of the public API surface.
type (
	// Dataset is a labeled collection of elevation-profile samples.
	Dataset = dataset.Dataset
	// Sample is one labeled elevation profile.
	Sample = dataset.Sample
	// Metrics bundles accuracy, macro precision/recall/F1, and specificity.
	Metrics = eval.Metrics
	// City describes one synthetic city: terrain signature, mining
	// boundary, boroughs, and paper sample sizes.
	City = terrain.City
	// Borough is a named sub-region of a City.
	Borough = terrain.Borough
)

// World returns the paper's ten-city world (Table II order).
func World() []*City { return terrain.World() }

// AthleteWorld returns the four user-specific regions (Table I).
func AthleteWorld() []*City { return terrain.AthleteWorld() }

// CityByName finds a city by full name or abbreviation.
func CityByName(world []*City, name string) (*City, error) {
	return terrain.CityByName(world, name)
}

// BoroughCities returns the six cities with borough decompositions
// (Table III order: LA, MIA, NJ, NYC, SF, WDC).
func BoroughCities(world []*City) []*City { return terrain.BoroughCities(world) }

// DatasetConfig controls dataset synthesis.
type DatasetConfig struct {
	// Scale multiplies the paper's per-class sample sizes (1.0 = Tables
	// I-III exactly). Smaller values keep the class ratios.
	Scale float64
	// ProfileSamples is the elevation sample count per mined profile.
	ProfileSamples int
	// MinPerClass floors scaled class sizes.
	MinPerClass int
	// Seed drives all randomness.
	Seed int64
}

// DefaultDatasetConfig reproduces the paper's dataset shapes at full size.
func DefaultDatasetConfig() DatasetConfig {
	c := dataset.DefaultBuildConfig()
	return DatasetConfig{
		Scale:          c.Scale,
		ProfileSamples: c.ProfileSamples,
		MinPerClass:    c.MinPerClass,
		Seed:           c.Seed,
	}
}

func (c DatasetConfig) build() dataset.BuildConfig {
	return dataset.BuildConfig{
		ProfileSamples: c.ProfileSamples,
		Scale:          c.Scale,
		MinPerClass:    c.MinPerClass,
		Seed:           c.Seed,
	}
}

// NewUserSpecificDataset synthesizes the Table I dataset: the simulated
// athlete's labeled activity history (TM-1).
func NewUserSpecificDataset(cfg DatasetConfig) (*Dataset, error) {
	return dataset.BuildUserSpecific(cfg.build())
}

// NewCityLevelDataset synthesizes the Table II dataset over the ten-city
// world (TM-3).
func NewCityLevelDataset(cfg DatasetConfig) (*Dataset, error) {
	return dataset.BuildCityLevel(terrain.World(), cfg.build())
}

// NewBoroughDataset synthesizes one city's Table III borough dataset
// (TM-2). The city is named by full name or abbreviation.
func NewBoroughDataset(cityName string, cfg DatasetConfig) (*Dataset, error) {
	city, err := terrain.CityByName(terrain.World(), cityName)
	if err != nil {
		return nil, err
	}
	if len(city.Boroughs) == 0 {
		return nil, fmt.Errorf("elevprivacy: city %s has no borough decomposition", city.Name)
	}
	return dataset.BuildBoroughLevel(city, cfg.build())
}

// SimulateOverlap rebuilds a mined dataset with ~30 % additional
// near-duplicate samples per class, reproducing the paper's §IV-A1 overlap
// simulation. rngSeed drives the perturbations.
func SimulateOverlap(d *Dataset, rngSeed int64) (*Dataset, error) {
	return dataset.SimulateOverlapSeeded(d, dataset.DefaultOverlapConfig(), rngSeed)
}
