package elevprivacy_test

// Seeded-determinism regression: attack metrics at a fixed seed must match
// the golden values captured on the pre-batch-refactor (serial, per-sample)
// implementation. The batch substrate — matrix featurization, parallel
// matmul/affine kernels, concurrent k-fold with PredictBatch, the bounded
// forest pool, and the CNN's im2col batch forward — is required to
// reproduce the serial numbers within 1e-9; any drift here means a kernel
// changed accumulation order or a parallel path lost determinism.

import (
	"math"
	"testing"

	"elevprivacy"
)

// goldenMetrics were produced by the pre-refactor serial implementation at
// seed 42 with the exact configuration built by goldenDataset/goldenText.
var goldenMetrics = map[string]elevprivacy.Metrics{
	"svm": {
		Accuracy:    0.981818181818,
		Precision:   0.990000000000,
		Recall:      0.975000000000,
		F1:          0.977777777778,
		Specificity: 0.992857142857,
	},
	"rfc": {
		Accuracy:    0.981818181818,
		Precision:   0.987500000000,
		Recall:      0.975000000000,
		F1:          0.976190476190,
		Specificity: 0.993750000000,
	},
	"mlp": {
		Accuracy:    0.981818181818,
		Precision:   0.990000000000,
		Recall:      0.975000000000,
		F1:          0.977777777778,
		Specificity: 0.992857142857,
	},
	"cnn": {
		Accuracy:    0.785714285714,
		Precision:   0.837500000000,
		Recall:      0.816666666667,
		F1:          0.804166666667,
		Specificity: 0.926767676768,
	},
}

// goldenTolerance allows for the 1e-12 rounding of the recorded values
// while still catching any real ordering or determinism change.
const goldenTolerance = 1e-9

func goldenDataset(t *testing.T) *elevprivacy.Dataset {
	t.Helper()
	cfg := elevprivacy.DefaultDatasetConfig()
	cfg.Scale = 0.05
	cfg.MinPerClass = 12
	cfg.ProfileSamples = 60
	cfg.Seed = 42
	d, err := elevprivacy.NewUserSpecificDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func goldenText(kind elevprivacy.ClassifierKind) elevprivacy.TextAttackConfig {
	tc := elevprivacy.DefaultTextAttackConfig(kind)
	tc.MaxFeatures = 512
	tc.Seed = 42
	if kind == elevprivacy.ClassifierRandomForest {
		tc.ForestTrees = 30
	}
	return tc
}

func checkGolden(t *testing.T, name string, got elevprivacy.Metrics) {
	t.Helper()
	want := goldenMetrics[name]
	checks := []struct {
		metric    string
		got, want float64
	}{
		{"accuracy", got.Accuracy, want.Accuracy},
		{"precision", got.Precision, want.Precision},
		{"recall", got.Recall, want.Recall},
		{"f1", got.F1, want.F1},
		{"specificity", got.Specificity, want.Specificity},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > goldenTolerance {
			t.Errorf("%s %s = %.12f, golden %.12f (drift %.3g)",
				name, c.metric, c.got, c.want, c.got-c.want)
		}
	}
}

func TestGoldenTextAttackMetrics(t *testing.T) {
	d := goldenDataset(t)
	for _, kind := range []elevprivacy.ClassifierKind{
		elevprivacy.ClassifierSVM,
		elevprivacy.ClassifierRandomForest,
		elevprivacy.ClassifierMLP,
	} {
		m, err := elevprivacy.CrossValidateText(d, goldenText(kind), 5)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		checkGolden(t, string(kind), m)
	}
}

func TestGoldenImageAttackMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training in -short mode")
	}
	d := goldenDataset(t)
	cfg := elevprivacy.DefaultImageAttackConfig(elevprivacy.TrainWeighted)
	cfg.Epochs = 3
	cfg.Seed = 42
	m, err := elevprivacy.EvaluateImageAttack(d, cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cnn", m)
}
