module elevprivacy

go 1.22
