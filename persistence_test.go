package elevprivacy

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func persistenceDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := NewCityLevelDataset(DatasetConfig{
		Scale: 0.015, ProfileSamples: 50, MinPerClass: 10, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.Filter("Colorado Springs", "Miami", "San Francisco")
}

func TestTextAttackSaveLoadRoundTrip(t *testing.T) {
	d := persistenceDataset(t)
	for _, kind := range []ClassifierKind{ClassifierSVM, ClassifierMLP} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			attack, err := TrainTextAttack(d, DefaultTextAttackConfig(kind))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := attack.Save(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := LoadTextAttack(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(back.Labels()) != 3 {
				t.Fatalf("labels = %v", back.Labels())
			}
			// Every prediction must be preserved exactly.
			for i := range d.Samples {
				want, err := attack.PredictLocation(d.Samples[i].Elevations)
				if err != nil {
					t.Fatal(err)
				}
				got, err := back.PredictLocation(d.Samples[i].Elevations)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("sample %d: loaded model predicts %q, original %q", i, got, want)
				}
			}
		})
	}
}

func TestTextAttackSaveForestRejected(t *testing.T) {
	d := persistenceDataset(t)
	attack, err := TrainTextAttack(d, DefaultTextAttackConfig(ClassifierRandomForest))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := attack.Save(&buf); err == nil {
		t.Error("forest save accepted")
	}
}

func TestImageAttackSaveLoadRoundTrip(t *testing.T) {
	d := persistenceDataset(t)
	cfg := DefaultImageAttackConfig(TrainWeighted)
	cfg.Epochs = 4
	attack, err := TrainImageAttack(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := attack.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadImageAttack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want, err := attack.PredictLocation(d.Samples[i].Elevations)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.PredictLocation(d.Samples[i].Elevations)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sample %d: loaded CNN predicts %q, original %q", i, got, want)
		}
	}
}

func TestLoadAttackRejectsGarbage(t *testing.T) {
	for _, input := range []string{"", "NOPE", "ELPA", "ELPA\x04\x00\x00\x00{}"} {
		if _, err := LoadTextAttack(strings.NewReader(input)); err == nil {
			t.Errorf("text attack loaded from %q", input)
		}
		if _, err := LoadImageAttack(strings.NewReader(input)); err == nil {
			t.Errorf("image attack loaded from %q", input)
		}
	}
	// A text-attack file is not an image attack and vice versa.
	d := persistenceDataset(t)
	attack, err := TrainTextAttack(d, DefaultTextAttackConfig(ClassifierSVM))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := attack.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadImageAttack(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("text-attack file loaded as image attack")
	}
}

// TestLoadAttackCorruptionIsFormatError pins the readEnvelope hardening: a
// corrupt file must produce a *FormatError describing what is wrong, and an
// implausible length prefix must be rejected before any payload-sized
// allocation could happen.
func TestLoadAttackCorruptionIsFormatError(t *testing.T) {
	hugeLength := make([]byte, 0, 8)
	hugeLength = append(hugeLength, "ELPA"...)
	hugeLength = binary.LittleEndian.AppendUint32(hugeLength, 0xFFFFFFFF)

	justOverBound := make([]byte, 0, 8)
	justOverBound = append(justOverBound, "ELPA"...)
	justOverBound = binary.LittleEndian.AppendUint32(justOverBound, maxEnvelopeBytes+1)

	truncatedEnvelope := make([]byte, 0, 16)
	truncatedEnvelope = append(truncatedEnvelope, "ELPA"...)
	truncatedEnvelope = binary.LittleEndian.AppendUint32(truncatedEnvelope, 100)
	truncatedEnvelope = append(truncatedEnvelope, "{\"labels\""...) // 9 of 100 bytes

	cases := []struct {
		name  string
		input string
		what  string
	}{
		{"empty", "", "header"},
		{"short header", "ELPA\x04\x00", "header"},
		{"bad magic", "NOPE\x04\x00\x00\x00{}xx", "magic"},
		{"huge length", string(hugeLength), "envelope length"},
		{"length just over bound", string(justOverBound), "envelope length"},
		{"truncated envelope", string(truncatedEnvelope), "envelope"},
		{"bad JSON", "ELPA\x04\x00\x00\x00[[[[", "envelope JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadTextAttack(strings.NewReader(tc.input))
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("err = %v, want *FormatError", err)
			}
			if fe.What != tc.what {
				t.Fatalf("FormatError.What = %q, want %q (detail: %s)", fe.What, tc.what, fe.Detail)
			}
		})
	}

	// The bound itself is exact: a length of maxEnvelopeBytes is admitted
	// past the length check (and then fails as truncated, not implausible).
	atBound := make([]byte, 0, 8)
	atBound = append(atBound, "ELPA"...)
	atBound = binary.LittleEndian.AppendUint32(atBound, maxEnvelopeBytes)
	_, err := LoadTextAttack(strings.NewReader(string(atBound)))
	var fe *FormatError
	if !errors.As(err, &fe) || fe.What != "envelope" {
		t.Fatalf("at-bound length: err = %v, want truncated-envelope *FormatError", err)
	}
}
