#!/bin/sh
# Telemetry smoke test: run a live checkpointed mining sweep with the
# metrics endpoint and tracing enabled, scrape /metrics mid-run, and require
# the httpx / pool / journal series the dashboards depend on, in valid
# Prometheus exposition shape. Then require the trace file to be well-formed
# Chrome trace_event JSON with the expected span names.
#
# Exercised non-gating by CI (timing on shared runners is noisy) and locally
# via `make obs-smoke`.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/elevmine" ./cmd/elevmine

port=19377
addr="127.0.0.1:$port"

echo "==> mining sweep with -metrics-addr $addr and -trace-out"
# -rps slows the sweep enough that the scrape below reliably lands mid-run;
# -faultrate makes the retry/breaker series move.
"$workdir/elevmine" -segments 40 -grid 6 -samples 30 -seed 7 -rps 200 -faultrate 0.1 \
    -checkpoint "$workdir/ck" -trace-out "$workdir/trace.json" \
    -metrics-addr "$addr" >"$workdir/run.log" 2>&1 &
pid=$!

echo "==> polling /metrics for live series"
scrape="$workdir/metrics.txt"
found=0
for i in $(seq 1 50); do
    if curl -sf "http://$addr/metrics" >"$scrape" 2>/dev/null \
        && grep -q "elevpriv_httpx_attempts_total" "$scrape"; then
        found=1
        break
    fi
    sleep 0.2
done
if [ "$found" != 1 ]; then
    echo "FAIL: /metrics never exposed elevpriv_httpx_attempts_total" >&2
    kill "$pid" 2>/dev/null || true
    cat "$workdir/run.log" >&2 || true
    exit 1
fi
echo "    live scrape captured mid-sweep"

wait "$pid"
grep -E "total mined" "$workdir/run.log" || true

echo "==> required series present"
for series in \
    'elevpriv_httpx_attempts_total{service="segments"}' \
    'elevpriv_httpx_retries_total{service="segments"}' \
    'elevpriv_httpx_breaker_state{service="segments"}' \
    elevpriv_pool_queue_depth \
    elevpriv_pool_units_dispatched_total \
    elevpriv_journal_appends_total \
    elevpriv_journal_fsync_seconds_bucket
do
    if ! grep -qF "$series" "$scrape"; then
        echo "FAIL: series $series missing from /metrics" >&2
        exit 1
    fi
done
echo "    all required series found"

echo "==> exposition format sanity"
# Every non-comment line must be <name{labels}> <value>; every family must
# carry a # TYPE line.
awk '
    /^#/ { next }
    !/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.+eE-]+(e[+-][0-9]+)?$/ {
        print "bad exposition line: " $0; bad=1
    }
    END { exit bad }
' "$scrape"
types=$(grep -c '^# TYPE ' "$scrape")
echo "    $types metric families, all lines well-formed"

echo "==> trace file sanity"
python3 - "$workdir/trace.json" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
evs = t["traceEvents"]
assert evs, "trace has no events"
names = {e["name"] for e in evs}
assert any(n.startswith("mine/") for n in names), f"no mine/ spans in {names}"
for e in evs:
    assert e["ph"] == "X" and e["dur"] >= 0 and "ts" in e, e
print(f"    {len(evs)} spans, Chrome trace_event shape OK")
EOF

echo "OK: telemetry layer live-scrapes and traces a real sweep"
