#!/bin/sh
# Live-ingestion smoke test: the crash-recovery contract end to end, over
# real processes and real sockets. A firehose client streams 400 synthetic
# activities at an elevingest server whose classifier is deliberately
# stalled (capacity far below the offered rate, tiny spool), so accepted
# activities spill through the intake journal. Mid-stream the server is
# SIGKILLed. A fresh server on the same state directory must:
#
#   - restore the accepted-but-unclassified backlog from the journals and
#     replay it (restored > 0, replayed > 0 on /ingest/stats),
#   - let the client's retrying uploads complete: every activity accepted
#     exactly once, none lost, none classified twice (results == 400),
#   - serve a /ingest/results dump byte-identical to the offline batch
#     path over the same NDJSON (elevingest -offline) — same model, same
#     dedupe, same order, same bytes,
#   - drain gracefully on SIGTERM and exit 0.
#
# Exercised non-gating by CI (kill timing on shared runners is noisy) and
# locally via `make ingest-smoke`. The deterministic equivalents run under
# make check (internal/ingest crash-recovery, spill/replay, and
# exactly-once pipeline tests).
set -eu

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "==> building elevattack, elevingest, ingestbench"
go build -o "$workdir/elevattack" ./cmd/elevattack
go build -o "$workdir/elevingest" ./cmd/elevingest
go build -o "$workdir/ingestbench" ./cmd/ingestbench

addr="127.0.0.1:19521"
base="http://$addr"
state="$workdir/state"

echo "==> training the TM-1 attack model the service loads"
"$workdir/elevattack" -tm 1 -scale 0.05 -classifier mlp -folds 2 -seed 5 \
    -save "$workdir/attack.bin" >"$workdir/train.log" 2>&1
test -s "$workdir/attack.bin"

wait_healthy() {
    up=0
    for _ in $(seq 1 50); do
        if curl -sf "$base/healthz" >/dev/null 2>&1; then
            up=1
            break
        fi
        sleep 0.2
    done
    if [ "$up" != 1 ]; then
        echo "FAIL: server on $addr never answered /healthz" >&2
        cat "$1" >&2 || true
        exit 1
    fi
}

# Server 1: classifier stalled 250ms per batch of <=8 (capacity ~32/s
# against a ~120/s firehose) and a tiny spool, so accepted activities
# overflow into the journal-backed backlog almost immediately.
echo "==> server 1 up (stalled classifier, tiny spool)"
"$workdir/elevingest" -addr "$addr" -dir "$state" -attack "$workdir/attack.bin" \
    -spool 8 -max-batch 8 -fault-stall-prob 1 -fault-stall 250ms \
    >"$workdir/server1.log" 2>&1 &
server1=$!
pids="$pids $server1"
wait_healthy "$workdir/server1.log"

# The firehose: 400 activities at ~120/s, with the exact stream also
# written to all.ndjson for the offline baseline. The client retries
# through the kill window (replayable bodies, generous backoff) and only
# exits 0 once the server's results ledger holds all 400.
echo "==> firehose client streaming 400 activities"
"$workdir/ingestbench" -target "$base" -n 400 -seed 11 -rate 120 -chunk 10 \
    -ndjson-out "$workdir/all.ndjson" -wait 180s \
    >"$workdir/client.log" 2>&1 &
client=$!
pids="$pids $client"

# Wait until accepted activities have actually spilled to the journal
# backlog, then SIGKILL the server mid-firehose.
spilled=0
for _ in $(seq 1 100); do
    if curl -sf "$base/metrics" 2>/dev/null \
        | grep '^elevpriv_ingest_spilled_total' | grep -qv ' 0$'; then
        spilled=1
        break
    fi
    sleep 0.1
done
if [ "$spilled" != 1 ]; then
    echo "FAIL: no spill observed before the kill window" >&2
    cat "$workdir/server1.log" >&2 || true
    exit 1
fi
kill -9 "$server1"
echo "    server 1 SIGKILLed with spilled activities in flight"

# Server 2: same state directory, healthy classifier. It must restore the
# accepted-but-unclassified backlog and replay it while the client's
# retries finish the stream.
echo "==> server 2 up on the same state directory"
"$workdir/elevingest" -addr "$addr" -dir "$state" -attack "$workdir/attack.bin" \
    >"$workdir/server2.log" 2>&1 &
server2=$!
pids="$pids $server2"
wait_healthy "$workdir/server2.log"
if ! grep -q '^recovery:' "$workdir/server2.log"; then
    echo "FAIL: server 2 restored nothing from the journals" >&2
    cat "$workdir/server2.log" >&2 || true
    exit 1
fi
grep '^recovery:' "$workdir/server2.log"

if ! wait "$client"; then
    echo "FAIL: firehose client exited nonzero" >&2
    cat "$workdir/client.log" >&2 || true
    exit 1
fi
grep 'server ledger' "$workdir/client.log" || true

echo "==> exactly-once ledger: 400 results, restored > 0, replayed > 0"
curl -sf "$base/ingest/stats" >"$workdir/stats.json"
python3 - "$workdir/stats.json" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
assert st["results"] == 400, f"results ledger holds {st['results']}, want 400"
assert st["restored"] > 0, "server 2 restored no backlog from the journals"
assert st["replayed"] > 0, "restored backlog was never replayed"
print(f"    results=400 restored={st['restored']} replayed={st['replayed']} "
      f"duplicates={st['duplicates']} accepted={st['accepted']}")
EOF

curl -sf "$base/ingest/results" >"$workdir/results.ndjson"
test "$(wc -l <"$workdir/results.ndjson")" = 400

echo "==> graceful drain on SIGTERM"
kill "$server2"
if ! wait "$server2"; then
    echo "FAIL: server 2 exited nonzero on SIGTERM" >&2
    cat "$workdir/server2.log" >&2 || true
    exit 1
fi
if ! grep -q '^drained:' "$workdir/server2.log"; then
    echo "FAIL: server 2 printed no drain summary" >&2
    cat "$workdir/server2.log" >&2 || true
    exit 1
fi
grep '^drained:' "$workdir/server2.log"

echo "==> live results byte-identical to the offline batch path"
"$workdir/elevingest" -attack "$workdir/attack.bin" \
    -offline "$workdir/all.ndjson" -out "$workdir/baseline.ndjson" \
    >"$workdir/offline.log" 2>&1
if ! cmp -s "$workdir/results.ndjson" "$workdir/baseline.ndjson"; then
    echo "FAIL: live results differ from the offline baseline" >&2
    diff "$workdir/results.ndjson" "$workdir/baseline.ndjson" | head >&2 || true
    exit 1
fi
echo "    byte-identical"

echo "OK: SIGKILL mid-firehose, restart, replay: zero loss, zero double-classification"
