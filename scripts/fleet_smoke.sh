#!/bin/sh
# Fleet observability smoke test: the cross-process tracing + federation +
# SLO watchdog contract end to end, over real processes and real sockets.
#
# Topology: 4 elevmine -serve shard replicas (each tracing to its own
# -trace-out file), one elevingest server, one elevobs daemon federating
# all six instances (4 shards + ingest + the miner's admin endpoint), and a
# rate-paced mining sweep with -faultrate injecting transient 503s at the
# pool transport. Requires:
#
#   - the merged Chrome trace (elevobs -merge-traces) contains spans from
#     >= 5 processes, with client->server parent links across lanes,
#   - fleet counters on /fleet.json equal the sum of the per-instance
#     counters, and the federated per-instance dump matches what the
#     instance itself serves on /metrics.json,
#   - the injected-fault SLO breach (pool error rate over max for
#     burn_windows consecutive windows) produces a structured alert and a
#     captured pprof profile from the offending instance (the miner).
#
# Exercised non-gating by CI (scrape/kill timing on shared runners is
# noisy) and locally via `make fleet-smoke`. The deterministic equivalents
# run under make check (internal/fleetobs merge/federation/SLO tests,
# internal/httpx propagation tests, internal/obs traceparent tests).
set -eu

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "==> building elevmine, elevobs, elevattack, elevingest"
go build -o "$workdir/elevmine" ./cmd/elevmine
go build -o "$workdir/elevobs" ./cmd/elevobs
go build -o "$workdir/elevattack" ./cmd/elevattack
go build -o "$workdir/elevingest" ./cmd/elevingest
mine="$workdir/elevmine"
obsd="$workdir/elevobs"

common="-segments 80 -grid 6 -samples 50 -seed 7"

echo "==> starting 4 shard replicas (tracing on)"
seg_addrs=""
elev_addrs=""
targets=""
for i in 0 1 2 3; do
    seg_port=$((19601 + i))
    elev_port=$((19611 + i))
    # shellcheck disable=SC2086
    "$mine" $common -serve "127.0.0.1:$seg_port,127.0.0.1:$elev_port" \
        -shard-index "$i" -shard-count 4 \
        -trace-out "$workdir/trace_shard$i.json" \
        >"$workdir/shard$i.log" 2>&1 &
    eval "shard${i}_pid=$!"
    pids="$pids $!"
    seg_addrs="$seg_addrs,http://127.0.0.1:$seg_port"
    elev_addrs="$elev_addrs,http://127.0.0.1:$elev_port"
    targets="$targets,127.0.0.1:$seg_port"
done
seg_addrs=${seg_addrs#,}
elev_addrs=${elev_addrs#,}

echo "==> training the attack model and starting elevingest (tracing on)"
"$workdir/elevattack" -tm 1 -scale 0.05 -classifier mlp -folds 2 -seed 5 \
    -save "$workdir/attack.bin" >"$workdir/train.log" 2>&1
ingest_addr="127.0.0.1:19620"
"$workdir/elevingest" -addr "$ingest_addr" -dir "$workdir/state" \
    -attack "$workdir/attack.bin" -trace-out "$workdir/trace_ingest.json" \
    >"$workdir/ingest.log" 2>&1 &
ingest_pid=$!
pids="$pids $ingest_pid"
targets="$targets,$ingest_addr"

miner_admin="127.0.0.1:19629"
targets="$targets,$miner_admin"
targets=${targets#,}

for i in 0 1 2 3; do
    port=$((19601 + i))
    up=0
    for _ in $(seq 1 50); do
        if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            up=1
            break
        fi
        sleep 0.2
    done
    if [ "$up" != 1 ]; then
        echo "FAIL: shard $i never answered /healthz" >&2
        cat "$workdir/shard$i.log" >&2 || true
        exit 1
    fi
done
echo "    shards and ingest up"

echo "==> starting elevobs: federation + SLO watchdog over 6 targets"
cat >"$workdir/slo.json" <<'EOF'
{
  "rules": [
    {
      "name": "pool-error-rate",
      "kind": "ratio",
      "num": ["elevpriv_pool_failures_total"],
      "den": ["elevpriv_pool_requests_total"],
      "max": 0.05,
      "min_events": 20,
      "burn_windows": 2
    }
  ]
}
EOF
fleet_addr="127.0.0.1:19630"
"$obsd" -targets "$targets" -listen "$fleet_addr" -interval 500ms \
    -slo "$workdir/slo.json" -alert-dir "$workdir/alerts" -profile-seconds 1 \
    >"$workdir/elevobs.log" 2>&1 &
obs_pid=$!
pids="$pids $obs_pid"
up=0
for _ in $(seq 1 50); do
    if curl -sf "http://$fleet_addr/fleet.json" >/dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.2
done
if [ "$up" != 1 ]; then
    echo "FAIL: elevobs never served /fleet.json" >&2
    cat "$workdir/elevobs.log" >&2 || true
    exit 1
fi

echo "==> paced sweep through the pools with fault injection (tracing on)"
# shellcheck disable=SC2086
"$mine" $common -rps 200 -faultrate 0.25 \
    -seg-addrs "$seg_addrs" -elev-addrs "$elev_addrs" \
    -metrics-addr "$miner_admin" -trace-out "$workdir/trace_miner.json" \
    -out "$workdir/mined.json" >"$workdir/miner.log" 2>&1 &
miner_pid=$!
pids="$pids $miner_pid"

echo "==> waiting for the SLO breach alert (injected 25% fault rate vs 5% max)"
alerted=0
for _ in $(seq 1 120); do
    if curl -sf "http://$fleet_addr/alerts.json" 2>/dev/null | grep -q 'pool-error-rate'; then
        alerted=1
        break
    fi
    if ! kill -0 "$miner_pid" 2>/dev/null; then
        break
    fi
    sleep 0.5
done
# One more look after the sweep ends (the breach can land on the last windows).
if [ "$alerted" != 1 ]; then
    sleep 2
    curl -sf "http://$fleet_addr/alerts.json" 2>/dev/null | grep -q 'pool-error-rate' && alerted=1
fi
if [ "$alerted" != 1 ]; then
    echo "FAIL: watchdog never fired the pool-error-rate alert" >&2
    curl -sf "http://$fleet_addr/fleet.json" >&2 || true
    cat "$workdir/elevobs.log" >&2 || true
    exit 1
fi
echo "    alert fired"

if ! wait "$miner_pid"; then
    echo "FAIL: faulted sweep exited nonzero" >&2
    cat "$workdir/miner.log" >&2 || true
    exit 1
fi
grep -E "total mined" "$workdir/miner.log" || true

echo "==> alert JSON + captured pprof profile on disk"
python3 - "$workdir/alerts" <<'EOF'
import glob, json, os, sys
alert_dir = sys.argv[1]
alerts = sorted(glob.glob(os.path.join(alert_dir, "alert-*.json")))
assert alerts, f"no alert files in {alert_dir}"
a = json.load(open(alerts[0]))
assert a["rule"] == "pool-error-rate", a
assert a["value"] > 0.05, f"alert value {a['value']} not over the 0.05 max"
assert a.get("profile"), f"alert carries no captured profile: {a}"
assert os.path.getsize(a["profile"]) > 0, "captured profile is empty"
print(f"    {os.path.basename(alerts[0])}: value {a['value']:.3f} on {a['instance']}, "
      f"profile {os.path.getsize(a['profile'])} bytes")
EOF

echo "==> fleet counters equal the sum of per-instance counters"
sleep 2  # let a quiet scrape round settle so counters are static
curl -sf "http://$fleet_addr/fleet.json" >"$workdir/fleet.json"
shard0_target="127.0.0.1:19601"
curl -sf "http://$shard0_target/metrics.json" >"$workdir/shard0_dump.json"
python3 - "$workdir/fleet.json" "$workdir/shard0_dump.json" "$shard0_target" <<'EOF'
import json, sys
fleet = json.load(open(sys.argv[1]))
dump = json.load(open(sys.argv[2]))
shard0 = sys.argv[3]

# Every fleet series must equal the sum of the per-instance counters.
sums = {}
for inst in fleet["instances"]:
    for name, v in (inst.get("counters") or {}).items():
        sums[name] = sums.get(name, 0.0) + v
nonzero = 0
for name, total in fleet["fleet"].items():
    assert abs(total - sums.get(name, 0.0)) < 1e-6, \
        f"{name}: fleet {total} != instance sum {sums.get(name)}"
    if total > 0:
        nonzero += 1
assert nonzero >= 5, f"only {nonzero} nonzero fleet series"

# Round trip: the federated view of shard 0 matches the instance's own dump.
inst = next(i for i in fleet["instances"] if i["target"] == shard0)
assert inst["up"], inst
own = {m["name"]: m.get("value", 0.0) for m in dump["metrics"] if m["kind"] == "counter"}
for name, v in inst["counters"].items():
    assert abs(own.get(name, 0.0) - v) < 1e-6, \
        f"{name}: federated {v} != instance-served {own.get(name)}"
served = sum(1 for i in fleet['instances'] if i['up'])
print(f"    {len(fleet['fleet'])} fleet series consistent over {served} live instances")
EOF

echo "==> draining shards and ingest so their trace rings flush"
for i in 0 1 2 3; do
    eval "kill -TERM \$shard${i}_pid"
done
kill -TERM "$ingest_pid"
for i in 0 1 2 3; do
    eval "wait \$shard${i}_pid" || true
done
wait "$ingest_pid" || true
for i in 0 1 2 3; do
    if [ ! -s "$workdir/trace_shard$i.json" ]; then
        echo "FAIL: shard $i wrote no trace file on drain" >&2
        cat "$workdir/shard$i.log" >&2 || true
        exit 1
    fi
done

echo "==> merging per-process traces into one fleet trace"
"$obsd" -merge-traces "$workdir/fleet_trace.json" \
    "$workdir/trace_miner.json" \
    "$workdir/trace_shard0.json" "$workdir/trace_shard1.json" \
    "$workdir/trace_shard2.json" "$workdir/trace_shard3.json" \
    "$workdir/trace_ingest.json" >"$workdir/merge_summary.json"
python3 - "$workdir/merge_summary.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["processes"] >= 5, f"spans from only {s['processes']} processes, want >= 5"
assert s["cross_links"] > 0, "no client->server parent links across process lanes"
assert s["cross_process_traces"] > 0, "no trace spans more than one process"
print(f"    {s['spans']} spans across {s['processes']} processes, "
      f"{s['cross_links']} cross-process links, "
      f"{s['cross_process_traces']}/{s['traces']} traces span processes")
EOF
test -s "$workdir/fleet_trace.json"

echo "OK: fleet trace merged, federation consistent, SLO breach alerted with profile"
