#!/bin/sh
# Sharded-serving smoke test: stand up a 4-shard serving tier (four elevmine
# -serve processes, each a full replica tagged with its shard identity), run
# a rate-paced mining sweep through the consistent-hash pools, SIGKILL one
# shard mid-sweep, and require:
#
#   - the sweep completes with zero lost cells: output byte-identical to a
#     single-endpoint baseline run,
#   - the miner's pool metrics record failovers away from the corpse,
#   - the surviving shards' serving caches show a nonzero hit rate,
#   - per-endpoint request counts over the surviving shards balance within 2x.
#
# Exercised non-gating by CI (kill timing on shared runners is noisy) and
# locally via `make shard-smoke`. The deterministic equivalents run under
# make check (internal/httpx pool tests, internal/segments miner_pool tests).
set -eu

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/elevmine" ./cmd/elevmine
mine="$workdir/elevmine"

# Workload: every city, identical store on every replica (same -segments and
# -seed). -rps paces the sharded sweep to a few seconds so the SIGKILL below
# reliably lands mid-run.
common="-segments 80 -grid 6 -samples 50 -seed 7"

echo "==> single-endpoint baseline sweep"
# shellcheck disable=SC2086
"$mine" $common -out "$workdir/baseline.json" >"$workdir/baseline.log" 2>&1
test -s "$workdir/baseline.json"

echo "==> starting 4 shard replicas"
seg_addrs=""
elev_addrs=""
for i in 0 1 2 3; do
    seg_port=$((19481 + i))
    elev_port=$((19491 + i))
    # shellcheck disable=SC2086
    "$mine" $common -serve "127.0.0.1:$seg_port,127.0.0.1:$elev_port" \
        -shard-index "$i" -shard-count 4 >"$workdir/shard$i.log" 2>&1 &
    eval "shard${i}_pid=$!"
    pids="$pids $!"
    seg_addrs="$seg_addrs,http://127.0.0.1:$seg_port"
    elev_addrs="$elev_addrs,http://127.0.0.1:$elev_port"
done
seg_addrs=${seg_addrs#,}
elev_addrs=${elev_addrs#,}

for i in 0 1 2 3; do
    port=$((19481 + i))
    up=0
    for _ in $(seq 1 50); do
        if curl -sf "http://127.0.0.1:$port/healthz" >"$workdir/hz.json" 2>/dev/null; then
            up=1
            break
        fi
        sleep 0.2
    done
    if [ "$up" != 1 ]; then
        echo "FAIL: shard $i never answered /healthz" >&2
        cat "$workdir/shard$i.log" >&2 || true
        exit 1
    fi
    if ! grep -q "\"shard\":$i" "$workdir/hz.json" || ! grep -q '"shards":4' "$workdir/hz.json"; then
        echo "FAIL: shard $i /healthz missing shard identity: $(cat "$workdir/hz.json")" >&2
        exit 1
    fi
done
echo "    all shards up, /healthz reports shard identity"

echo "==> sharded sweep through the pools (SIGKILL shard 3 mid-sweep)"
metrics_addr="127.0.0.1:19499"
# shellcheck disable=SC2086
"$mine" $common -rps 250 \
    -seg-addrs "$seg_addrs" -elev-addrs "$elev_addrs" \
    -checkpoint "$workdir/ck" -metrics-addr "$metrics_addr" \
    -out "$workdir/sharded.json" >"$workdir/sharded.log" 2>&1 &
miner_pid=$!
pids="$pids $miner_pid"

# Wait until the sweep is actually issuing pooled requests, then kill -9 the
# last shard (both its services die at once).
started=0
for _ in $(seq 1 100); do
    if curl -sf "http://$metrics_addr/metrics" 2>/dev/null \
        | grep 'elevpriv_pool_requests_total' | grep -qv ' 0$'; then
        started=1
        break
    fi
    sleep 0.1
done
if [ "$started" != 1 ]; then
    echo "FAIL: miner never reported pooled requests on /metrics" >&2
    cat "$workdir/sharded.log" >&2 || true
    exit 1
fi
kill -9 "$shard3_pid"
echo "    shard 3 SIGKILLed while the sweep was running"

# Keep the last metrics scrape from before the miner exits.
while kill -0 "$miner_pid" 2>/dev/null; do
    curl -sf "http://$metrics_addr/metrics" >"$workdir/final_metrics.txt" 2>/dev/null || true
    sleep 0.1
done
if ! wait "$miner_pid"; then
    echo "FAIL: sharded sweep exited nonzero after losing a shard" >&2
    cat "$workdir/sharded.log" >&2 || true
    exit 1
fi
grep -E "total mined" "$workdir/sharded.log" || true

echo "==> zero lost cells: sharded output matches the baseline byte for byte"
if ! cmp -s "$workdir/baseline.json" "$workdir/sharded.json"; then
    echo "FAIL: sharded sweep output differs from single-endpoint baseline" >&2
    exit 1
fi
echo "    outputs byte-identical"

echo "==> pool metrics recorded failovers away from the dead shard"
if ! grep 'elevpriv_pool_failovers_total' "$workdir/final_metrics.txt" | grep -qv ' 0$'; then
    echo "FAIL: no failovers recorded despite the SIGKILL" >&2
    grep 'elevpriv_pool' "$workdir/final_metrics.txt" >&2 || true
    exit 1
fi
echo "    failovers > 0"

echo "==> second sweep against the warm survivors"
# The miner dedups profile fetches within one sweep, so cache hits show up
# across sweeps: consistent-hash affinity sent each profile to the same
# shard last time, so this run is served from the survivors' LRUs.
# shellcheck disable=SC2086
"$mine" $common \
    -seg-addrs "$seg_addrs" -elev-addrs "$elev_addrs" \
    -out "$workdir/sharded2.json" >"$workdir/sharded2.log" 2>&1
if ! cmp -s "$workdir/baseline.json" "$workdir/sharded2.json"; then
    echo "FAIL: warm sharded sweep output differs from baseline" >&2
    exit 1
fi
echo "    warm sweep byte-identical too"

echo "==> surviving shards show serving-cache hits"
hits=0
misses=0
for i in 0 1 2; do
    port=$((19491 + i))
    curl -sf "http://127.0.0.1:$port/metrics" >"$workdir/shard_metrics.txt" || {
        echo "FAIL: surviving shard $i stopped serving /metrics" >&2
        exit 1
    }
    h=$(awk '/^elevpriv_serving_cache_hits_total/ {s+=$2} END {print s+0}' "$workdir/shard_metrics.txt")
    m=$(awk '/^elevpriv_serving_cache_misses_total/ {s+=$2} END {print s+0}' "$workdir/shard_metrics.txt")
    hits=$((hits + h))
    misses=$((misses + m))
done
if [ "$hits" -le 0 ]; then
    echo "FAIL: no serving-cache hits across surviving shards (misses=$misses)" >&2
    exit 1
fi
echo "    cache hit rate: $hits hits / $((hits + misses)) lookups"

echo "==> per-endpoint balance within 2x over surviving shards"
python3 - "$workdir/ck/elevmine.meta" <<'EOF'
import json, sys
# Snapshot envelope: magic "ELCK" | u16 version | u32 len | u32 crc | JSON.
raw = open(sys.argv[1], "rb").read()
assert raw[:4] == b"ELCK", "bad snapshot magic"
meta = json.loads(raw[14:])
pools = meta["config"]["pools"]
for service, stats in pools.items():
    # Shard 3 was SIGKILLed mid-sweep; judge balance over the survivors.
    reqs = [s["requests"] for s in stats[:3]]
    assert all(r > 0 for r in reqs), f"{service}: an endpoint served zero requests: {reqs}"
    ratio = max(reqs) / min(reqs)
    assert ratio <= 2.0, f"{service}: balance {ratio:.2f}x exceeds 2x: {reqs}"
    print(f"    {service}: requests {reqs} (+ dead shard {stats[3]['requests']}), balance {ratio:.2f}x")
EOF

echo "OK: 4-shard tier survives a SIGKILL mid-sweep with zero lost cells"
