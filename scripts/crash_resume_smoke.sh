#!/bin/sh
# Crash-resume smoke test: SIGKILL a checkpointed mining run mid-sweep,
# resume it from the journal, and require the resumed output to be
# byte-identical to an uninterrupted run's.
#
# Exercised non-gating by CI (kill timing on shared runners is noisy) and
# locally via `make smoke-resume`.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/elevmine" ./cmd/elevmine

# Small but non-trivial sweep; -rps slows it enough that the kill below
# reliably lands mid-sweep instead of after completion.
args="-segments 40 -grid 6 -samples 30 -seed 7"

echo "==> uninterrupted baseline"
"$workdir/elevmine" $args -checkpoint "$workdir/ck-base" -out "$workdir/base.json" >/dev/null

echo "==> checkpointed run, SIGKILL mid-sweep"
"$workdir/elevmine" $args -rps 300 -checkpoint "$workdir/ck-crash" -out "$workdir/crash.json" >/dev/null 2>&1 &
pid=$!
sleep 1
if kill -9 "$pid" 2>/dev/null; then
    echo "    killed pid $pid mid-sweep"
else
    echo "    run finished before the kill landed; resume still exercises the journal"
fi
wait "$pid" 2>/dev/null || true

echo "==> resume from journal"
"$workdir/elevmine" $args -checkpoint "$workdir/ck-crash" -resume -out "$workdir/crash.json" | grep -E "restored|total mined" || true

echo "==> compare outputs"
cmp "$workdir/base.json" "$workdir/crash.json"
echo "OK: resumed output is byte-identical to the uninterrupted run"
