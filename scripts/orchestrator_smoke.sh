#!/bin/sh
# Orchestrator smoke test: the end-to-end contract of the scenario subsystem.
#
#  1. Baseline: run the example multi-scenario spec to completion, capture
#     the deterministic results JSON.
#  2. Crash: rerun from scratch with the admin API up, exercise the live
#     endpoints (list run, inspect a scenario), then SIGKILL mid-sweep.
#  3. Resume: -resume must finish the sweep and write results byte-identical
#     to the uninterrupted baseline.
#  4. Dedup: a repeat run with a fresh journal but the same artifact cache
#     must recompute nothing — cache hits > 0, zero HTTP attempts — and
#     still write byte-identical results.
#  5. Cancel: POST /api/run/cancel mid-sweep must drain gracefully
#     (exit 0, "interrupted" on stdout).
#
# Exercised non-gating by CI (kill/cancel timing on shared runners is noisy)
# and locally via `make orch-smoke`.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/experiments" ./cmd/experiments
spec=examples/scenarios/sweep.json

port=19391
addr="127.0.0.1:$port"

# wait_running polls the admin API until a unit is live (or dies trying).
wait_running() {
    for i in $(seq 1 100); do
        if curl -sf "http://$addr/api/run" 2>/dev/null | grep -q '"running": *[1-9]'; then
            return 0
        fi
        sleep 0.05
    done
    echo "FAIL: no unit entered running state on $addr" >&2
    return 1
}

echo "==> baseline: uninterrupted run"
"$workdir/experiments" -spec "$spec" -checkpoint "$workdir/base-ck" \
    -out "$workdir/base.json" >"$workdir/base.log" 2>&1
grep -q "wrote results" "$workdir/base.log"

echo "==> crash run: admin API up, SIGKILL mid-sweep"
"$workdir/experiments" -spec "$spec" -checkpoint "$workdir/ck" \
    -admin-addr "$addr" -out "$workdir/crash.json" >"$workdir/crash.log" 2>&1 &
pid=$!
wait_running

echo "==> admin API: list and inspect the live run"
run_json="$workdir/run.json"
curl -sf "http://$addr/api/run" >"$run_json"
grep -q '"spec": *"three-city-defense-sweep"' "$run_json"
grep -q '"state": *"running"' "$run_json"
curl -sf "http://$addr/api/scenarios" | grep -q '"baseline-svm"'
curl -sf "http://$addr/api/scenarios/baseline-svm" | grep -q '"threat_model": *"tm3"'
if curl -sf "http://$addr/api/scenarios/no-such-scenario" >/dev/null 2>&1; then
    echo "FAIL: unknown scenario did not 404" >&2
    kill -9 "$pid" 2>/dev/null || true
    exit 1
fi
echo "    admin list/inspect OK"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
if [ -f "$workdir/crash.json" ]; then
    echo "FAIL: killed run wrote a results file" >&2
    exit 1
fi
echo "    SIGKILLed mid-sweep"

echo "==> resume: finish the sweep from the journal"
"$workdir/experiments" -spec "$spec" -checkpoint "$workdir/ck" -resume \
    -out "$workdir/resumed.json" >"$workdir/resume.log" 2>&1
if ! cmp -s "$workdir/base.json" "$workdir/resumed.json"; then
    echo "FAIL: resumed results differ from the uninterrupted baseline" >&2
    diff "$workdir/base.json" "$workdir/resumed.json" >&2 || true
    exit 1
fi
echo "    resumed results byte-identical to baseline"

echo "==> dedup: fresh journal, same artifact cache"
rm -f "$workdir/ck/scenario.journal"
"$workdir/experiments" -spec "$spec" -checkpoint "$workdir/ck" \
    -out "$workdir/dedup.json" >"$workdir/dedup.log" 2>&1
if ! cmp -s "$workdir/base.json" "$workdir/dedup.json"; then
    echo "FAIL: cache-served results differ from baseline" >&2
    exit 1
fi
cacheline=$(grep '^cache:' "$workdir/dedup.log")
echo "    $cacheline"
case "$cacheline" in
    "cache: 0 hits"*)
        echo "FAIL: cache-served run registered no hits" >&2
        exit 1 ;;
esac
if ! echo "$cacheline" | grep -q "http attempts: 0;"; then
    echo "FAIL: cache-served run re-issued HTTP calls" >&2
    exit 1
fi
echo "    cache hits > 0, zero HTTP calls re-issued"

echo "==> cancel: POST /api/run/cancel drains gracefully"
rm -rf "$workdir/ck2"
"$workdir/experiments" -spec "$spec" -checkpoint "$workdir/ck2" \
    -admin-addr "$addr" >"$workdir/cancel.log" 2>&1 &
pid=$!
wait_running
curl -sf -X POST "http://$addr/api/run/cancel" | grep -q '"status": *"canceling"'
if ! wait "$pid"; then
    echo "FAIL: canceled run exited non-zero" >&2
    cat "$workdir/cancel.log" >&2
    exit 1
fi
grep -q "^interrupted:" "$workdir/cancel.log"
echo "    canceled run drained, exit 0, interrupted summary printed"

echo "PASS: orchestrator smoke"
