// GPX pipeline: the paper's §III-A1 data flow on raw files. A directory of
// GPX activities is labeled by clustering each track's tight bounding
// rectangle into regions, and the resulting dataset feeds the TM-1 attack.
//
// Run with: go run ./examples/gpx-pipeline [dir]
// Without a directory, a synthetic GPX archive is generated first.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"

	"elevprivacy"
)

func main() {
	dir := ""
	if len(os.Args) > 1 {
		dir = os.Args[1]
	} else {
		// Bootstrap a synthetic archive with elevgen.
		tmp, err := os.MkdirTemp("", "elevprivacy-gpx")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		fmt.Println("generating a synthetic GPX archive with cmd/elevgen ...")
		cmd := exec.Command("go", "run", "./cmd/elevgen",
			"-out", tmp, "-dataset", "user", "-scale", "0.15")
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			log.Fatal(err)
		}
		dir = filepath.Join(tmp, "user-specific")
	}

	// The paper's labeling: tight rectangles clustered at a 30 km
	// threshold (regions are whole metro areas).
	data, err := elevprivacy.LoadGPXDir(os.DirFS(filepath.Dir(dir)), filepath.Base(dir), 30000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nloaded %d activities; region labels from trajectory clustering:\n", data.Len())
	for region, n := range data.CountByLabel() {
		fmt.Printf("  %-4s %d activities\n", region, n)
	}

	// Hold out recent activities and attack them.
	train, test, err := data.SplitStratified(0.25, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	attack, err := elevprivacy.TrainTextAttack(train,
		elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierSVM))
	if err != nil {
		log.Fatal(err)
	}
	var hits int
	for i := range test.Samples {
		pred, err := attack.PredictLocation(test.Samples[i].Elevations)
		if err != nil {
			log.Fatal(err)
		}
		if pred == test.Samples[i].Label {
			hits++
		}
	}
	fmt.Printf("\nregion identified for %d/%d held-out activities (%.0f%%)\n",
		hits, test.Len(), 100*float64(hits)/float64(test.Len()))
}
