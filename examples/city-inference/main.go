// City-inference scenario (TM-3): with no prior knowledge, the adversary
// profiles candidate cities' elevations from public sources and identifies
// the target's city. Both of the paper's representations run side by side:
// the n-gram text pipeline and the CNN over line-graph images.
//
// Run with: go run ./examples/city-inference
package main

import (
	"fmt"
	"log"
	"math/rand"

	"elevprivacy"
)

func main() {
	dataset, err := elevprivacy.NewCityLevelDataset(elevprivacy.DatasetConfig{
		Scale:          0.05,
		ProfileSamples: 80,
		MinPerClass:    12,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city profiles mined from public sources: %d samples, %d cities\n",
		dataset.Len(), len(dataset.Labels()))

	// Balance classes as the paper does for its TM-3 table, then evaluate
	// the text-like attack.
	balanced, err := dataset.Balanced(12, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntext-like representation (10-fold CV, balanced 10 cities):")
	for _, kind := range []elevprivacy.ClassifierKind{
		elevprivacy.ClassifierSVM,
		elevprivacy.ClassifierRandomForest,
		elevprivacy.ClassifierMLP,
	} {
		m, err := elevprivacy.CrossValidateText(balanced,
			elevprivacy.DefaultTextAttackConfig(kind), 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s accuracy %5.1f%%  recall %5.1f%%  F1 %5.1f%%\n",
			kind, m.Accuracy*100, m.Recall*100, m.F1*100)
	}

	// Image-like representation: weighted-loss CNN on the unbalanced data.
	fmt.Println("\nimage-like representation (weighted-loss CNN, 80/20 split):")
	cfg := elevprivacy.DefaultImageAttackConfig(elevprivacy.TrainWeighted)
	cfg.Epochs = 20
	m, err := elevprivacy.EvaluateImageAttack(dataset, cfg, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  CNN  accuracy %5.1f%%  recall %5.1f%%  F1 %5.1f%%\n",
		m.Accuracy*100, m.Recall*100, m.F1*100)

	fmt.Println("\nchance level with 10 cities: 10.0%")
	fmt.Println("paper's TM-3 band: 80.9-93.9% accuracy")
}
