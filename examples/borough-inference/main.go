// Borough-inference scenario (TM-2): the adversary already knows the
// target's city (public profile, athlinks, public records) and narrows a
// private activity down to a borough from its elevation profile.
//
// Run with: go run ./examples/borough-inference [city]
package main

import (
	"fmt"
	"log"
	"os"

	"elevprivacy"
)

func main() {
	city := "SF"
	if len(os.Args) > 1 {
		city = os.Args[1]
	}

	dataset, err := elevprivacy.NewBoroughDataset(city, elevprivacy.DatasetConfig{
		Scale:          0.12,
		ProfileSamples: 80,
		MinPerClass:    20,
		Seed:           11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target's city is known: %s\n", city)
	fmt.Printf("borough dataset: %d profiles, boroughs:\n", dataset.Len())
	for borough, n := range dataset.CountByLabel() {
		fmt.Printf("  %-22s %d\n", borough, n)
	}

	// Evaluate the borough model the way the paper's Fig. 8 does:
	// 10-fold cross-validation for each classifier.
	fmt.Println("\n10-fold cross-validation (text-like representation):")
	for _, kind := range []elevprivacy.ClassifierKind{
		elevprivacy.ClassifierSVM,
		elevprivacy.ClassifierRandomForest,
		elevprivacy.ClassifierMLP,
	} {
		m, err := elevprivacy.CrossValidateText(dataset,
			elevprivacy.DefaultTextAttackConfig(kind), 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s accuracy %5.1f%%  precision %5.1f%%  recall %5.1f%%  F1 %5.1f%%\n",
			kind, m.Accuracy*100, m.Precision*100, m.Recall*100, m.F1*100)
	}
	chance := 100.0 / float64(len(dataset.Labels()))
	fmt.Printf("\nchance level with %d boroughs: %.1f%%\n", len(dataset.Labels()), chance)
	fmt.Println("boroughs share one city's terrain, so TM-2 is the paper's hardest setting")
}
