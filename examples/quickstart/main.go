// Quickstart: train a city-inference attack on synthetic data and use it
// to locate a "victim" elevation profile that was shared without a map.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"elevprivacy"
)

func main() {
	// 1. Synthesize the city-level dataset (Table II shape, laptop scale).
	dataset, err := elevprivacy.NewCityLevelDataset(elevprivacy.DatasetConfig{
		Scale:          0.04,
		ProfileSamples: 80,
		MinPerClass:    12,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d elevation profiles across %d cities\n",
		dataset.Len(), len(dataset.Labels()))

	// 2. Train the text-like attack (n-gram bag-of-words + MLP).
	attack, err := elevprivacy.TrainTextAttack(dataset,
		elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierMLP))
	if err != nil {
		log.Fatal(err)
	}

	// 3. A victim shares only the elevation profile of a workout. Here we
	// grab a held-back profile; in the paper's scenario it comes from a
	// public activity summary.
	victim := dataset.Samples[dataset.Len()-1]
	predicted, err := attack.PredictLocation(victim.Elevations)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("victim shared %d elevation values (no map)\n", len(victim.Elevations))
	fmt.Printf("attack predicts: %s\n", predicted)
	fmt.Printf("actual city:     %s\n", victim.Label)
}
