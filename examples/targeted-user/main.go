// Targeted-user scenario (TM-1): an adversary who holds a target's workout
// history — an ex-connection, a former training partner — de-anonymizes the
// region of the target's NEW activities from their shared elevation
// profiles alone.
//
// Run with: go run ./examples/targeted-user
package main

import (
	"fmt"
	"log"
	"math/rand"

	"elevprivacy"
)

func main() {
	// The athlete's recorded history across four regions (Table I shape):
	// dense GPS recordings with the habitual ~35 % route overlap.
	history, err := elevprivacy.NewUserSpecificDataset(elevprivacy.DatasetConfig{
		Scale:          0.25,
		ProfileSamples: 80,
		MinPerClass:    12,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversary's stolen history: %d activities\n", history.Len())
	for region, n := range history.CountByLabel() {
		fmt.Printf("  %-15s %d\n", region, n)
	}

	// Hold out the target's most recent activities (the ones being
	// attacked); train on the rest.
	rng := rand.New(rand.NewSource(1))
	train, recent, err := history.SplitStratified(0.2, rng)
	if err != nil {
		log.Fatal(err)
	}

	attack, err := elevprivacy.TrainTextAttack(train,
		elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierSVM))
	if err != nil {
		log.Fatal(err)
	}

	// De-anonymize each fresh activity from its elevation profile.
	var hits int
	for i := range recent.Samples {
		s := &recent.Samples[i]
		predicted, err := attack.PredictLocation(s.Elevations)
		if err != nil {
			log.Fatal(err)
		}
		mark := " "
		if predicted == s.Label {
			hits++
			mark = "*"
		}
		if i < 8 {
			fmt.Printf("%s activity %-10s predicted %-15s actual %s\n",
				mark, s.ID, predicted, s.Label)
		}
	}
	fmt.Printf("\nde-anonymized %d/%d recent activities (%.0f%%)\n",
		hits, recent.Len(), 100*float64(hits)/float64(recent.Len()))
	fmt.Println("paper's TM-1 band: 86.8-98.5% accuracy")
}
