// Command elevmine runs the paper's Fig. 4 mining pipeline end to end over
// HTTP: it stands up the segment-explore service and the elevation API as
// real servers, populates the segment store from the synthetic world, then
// sweeps each city boundary with the grid miner and reports what it
// recovered.
//
// Both service clients run through the internal/httpx resilience layer
// (per-attempt timeouts, bounded retries with backoff, optional rate limit),
// and -faultrate injects a seeded schedule of transient 503s at the
// transport seam to demonstrate the sweep shrugging them off.
//
// Usage:
//
//	elevmine                       # mine every city at laptop scale
//	elevmine -city SF -grid 12     # one city, finer grid
//	elevmine -workers 16           # wider concurrent sweep
//	elevmine -faultrate 0.2        # flaky network demo (same output)
//	elevmine -serve :8080,:8081    # keep both services listening instead
//	elevmine -checkpoint dir -out mined.json   # crash-safe run
//	elevmine -checkpoint dir -resume ...       # continue after a crash
//
// With -checkpoint, every completed work unit (grid-cell explore, elevation
// profile, class) is journaled; a killed run rerun with -resume reuses the
// journaled results — no service call is re-issued, and the output is
// byte-identical to an uninterrupted run. SIGINT/SIGTERM drains gracefully:
// in-flight calls finish, the journal flushes, and the process exits 0 with
// a partial-result summary; a second signal aborts in-flight work.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"elevprivacy/internal/dem"
	"elevprivacy/internal/durable"
	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obsboot"
	"elevprivacy/internal/segments"
	"elevprivacy/internal/terrain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevmine:", err)
		os.Exit(1)
	}
}

// worldSource routes elevation queries to the containing city's terrain.
type worldSource struct {
	cities []*terrain.City
	fields []*terrain.Terrain
}

func newWorldSource(cities []*terrain.City) (*worldSource, error) {
	ws := &worldSource{cities: cities}
	for _, c := range cities {
		tr, err := c.Terrain()
		if err != nil {
			return nil, err
		}
		ws.fields = append(ws.fields, tr)
	}
	return ws, nil
}

// ElevationAt implements dem.Source over the whole world.
func (ws *worldSource) ElevationAt(p geo.LatLng) (float64, error) {
	for i, c := range ws.cities {
		// Borough boxes may poke outside the city box (e.g. Baltimore), so
		// route by an expanded boundary.
		if c.Bounds.Expand(0.5, 0.5).Contains(p) {
			return ws.fields[i].ElevationAt(p)
		}
	}
	return 0, fmt.Errorf("%w: %v not covered by any city", dem.ErrOutOfBounds, p)
}

func run() error {
	var (
		cityFlag  = flag.String("city", "", "mine a single city (name or abbreviation; default all)")
		perCity   = flag.Int("segments", 120, "synthetic segments created per city")
		grid      = flag.Int("grid", 8, "miner grid divisions per side")
		samples   = flag.Int("samples", 100, "elevation samples per profile")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", segments.DefaultWorkers, "concurrent service calls per sweep phase")
		rps       = flag.Float64("rps", 0, "client-side rate limit in requests/sec per service (0 = unlimited)")
		faultRate = flag.Float64("faultrate", 0, "inject transient 503s at this probability per request (seeded)")
		serve     = flag.String("serve", "", "comma-separated listen addrs for segment,elevation services (keeps serving)")
		shards    = flag.Int("shards", 1, "in-process replicas per service; >1 mines through a consistent-hash pool")
		segAddrs  = flag.String("seg-addrs", "", "comma-separated external segment-service base URLs (skips in-process servers)")
		elevAddrs = flag.String("elev-addrs", "", "comma-separated external elevation-service base URLs (skips in-process servers)")
		shardIdx  = flag.Int("shard-index", 0, "this instance's shard index in -serve mode")
		shardCnt  = flag.Int("shard-count", 0, "total shards in the tier in -serve mode (0 = unsharded)")
		pprofOn   = flag.Bool("pprof", false, "mount /debug/pprof/ on both served services in -serve mode")
		ckptDir   = flag.String("checkpoint", "", "directory for the crash-safe work journal (enables resumable sweeps)")
		resume    = flag.Bool("resume", false, "reuse an existing checkpoint journal instead of starting fresh")
		outPath   = flag.String("out", "", "write the mined dataset as JSON to this path (atomic: never observed torn)")
	)
	obsFlags := obsboot.Register(nil)
	poolFlags := obsboot.RegisterPool(nil)
	journalFlags := obsboot.RegisterJournal(nil, 0)
	flag.Parse()

	tel, err := obsFlags.Start("elevmine")
	if err != nil {
		return err
	}
	defer func() {
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "elevmine:", err)
		}
	}()

	world := terrain.World()
	cities := world
	if *cityFlag != "" {
		c, err := terrain.CityByName(world, *cityFlag)
		if err != nil {
			return err
		}
		cities = []*terrain.City{c}
	}

	// Populate the segment store.
	store := segments.NewStore()
	rng := rand.New(rand.NewSource(*seed))
	for _, c := range cities {
		if err := store.Populate(c.Bounds, *perCity, c.Abbrev, segments.DefaultPopulateConfig(), rng); err != nil {
			return err
		}
	}
	fmt.Printf("segment store: %d segments across %d cities\n", store.Len(), len(cities))

	source, err := newWorldSource(world)
	if err != nil {
		return err
	}

	if *serve != "" {
		if *shardCnt > 0 && (*shardIdx < 0 || *shardIdx >= *shardCnt) {
			return fmt.Errorf("-shard-index %d out of range for -shard-count %d", *shardIdx, *shardCnt)
		}
		return serveForever(*serve, store, source, *shardIdx, *shardCnt, *pprofOn)
	}
	if (*segAddrs == "") != (*elevAddrs == "") {
		return fmt.Errorf("-seg-addrs and -elev-addrs must be set together")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}

	// Resolve the serving tier: external addresses when given, otherwise
	// -shards in-process replicas of each service over real TCP. All shards
	// are full replicas of the same store and terrain, so routing is purely
	// cache affinity and any shard can answer any request.
	var segURLs, elevURLs []string
	if *segAddrs != "" {
		segURLs = splitAddrs(*segAddrs)
		elevURLs = splitAddrs(*elevAddrs)
	} else {
		for i := 0; i < *shards; i++ {
			segSrv, segURL, err := spawn(segments.NewServer(store, segments.WithShard(i, *shards)).Handler())
			if err != nil {
				return err
			}
			defer segSrv.Close()
			elevSrv, elevURL, err := spawn(elevsvc.NewServer(source, elevsvc.WithShard(i, *shards)).Handler())
			if err != nil {
				return err
			}
			defer elevSrv.Close()
			segURLs = append(segURLs, segURL)
			elevURLs = append(elevURLs, elevURL)
		}
	}

	// Single-endpoint tiers go through the classic resilient client (whose
	// retry loop and limiter the run meta reports on); multi-endpoint tiers
	// go through consistent-hash pools that own failover themselves.
	var (
		segClient, elevClient *httpx.Client
		segPool, elevPool     *httpx.Pool
		minerSeg              *segments.Client
		minerElev             *elevsvc.Client
	)
	if len(segURLs) == 1 && len(elevURLs) == 1 {
		segClient = resilientClient("segments", *rps, *faultRate, *seed)
		elevClient = resilientClient("elevation", *rps, *faultRate, *seed+1)
		minerSeg = segments.NewClient(segURLs[0], segClient)
		minerElev = elevsvc.NewClient(elevURLs[0], elevClient)
	} else {
		segPool, err = newPool(segURLs, "segments", poolFlags, *rps, *faultRate, *seed)
		if err != nil {
			return err
		}
		defer segPool.Close()
		elevPool, err = newPool(elevURLs, "elevation", poolFlags, *rps, *faultRate, *seed+1)
		if err != nil {
			return err
		}
		defer elevPool.Close()
		minerSeg = segments.NewPoolClient(segPool)
		minerElev = elevsvc.NewPoolClient(elevPool)
		fmt.Printf("serving tier: %d segment shards, %d elevation shards\n", len(segURLs), len(elevURLs))
	}
	miner := segments.NewMiner(minerSeg, minerElev)
	miner.GridRows = *grid
	miner.GridCols = *grid
	miner.Samples = *samples
	miner.Workers = *workers

	// Checkpointing: the journal makes every completed unit durable, so a
	// crashed (or drained) run rerun with -resume skips straight past the
	// work it already paid for.
	journal, err := obsboot.OpenJournal(*ckptDir, "elevmine.journal", *resume, journalFlags.SyncEvery)
	if err != nil {
		return err
	}
	defer journal.Close()
	miner.Checkpoint = journal
	if restored := journal.Restored(); restored > 0 {
		fmt.Printf("checkpoint: restored %d completed units from journal\n", restored)
	}
	// A resumed run reloads the previous run's metrics snapshot, so the
	// telemetry on /metrics and in the final meta file is cumulative across
	// the crash/resume boundary, matching the journal's view of the sweep.
	if *resume {
		if err := obsboot.RestoreRunMetrics(*ckptDir, "elevmine.meta"); err != nil {
			fmt.Fprintf(os.Stderr, "elevmine: previous run metrics not restored: %v\n", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	shutdown := durable.NotifyShutdown(ctx)
	defer shutdown.Stop()
	miner.Drain = shutdown.Draining
	ctx = shutdown.Context()

	classes := make(map[string]geo.BBox, len(cities))
	for _, c := range cities {
		classes[c.Name] = c.Bounds
	}
	start := time.Now()
	mined, sweepErr := miner.MineClassesPartial(ctx, classes)
	elapsed := time.Since(start).Round(time.Millisecond)

	perLabel := make(map[string]int, len(classes))
	for _, ms := range mined {
		perLabel[ms.Label]++
	}
	for _, c := range cities {
		fmt.Printf("%-18s mined %4d/%d segments\n", c.Name, perLabel[c.Name], *perCity)
	}
	fmt.Printf("total mined: %d segments in %v (grid %dx%d, top-%d per cell, %d workers)\n",
		len(mined), elapsed, *grid, *grid, segments.ExploreLimit, *workers)

	if *outPath != "" && (sweepErr == nil || sweepErr.Interrupted()) {
		if err := writeMined(*outPath, mined); err != nil {
			return err
		}
		fmt.Printf("wrote %d segments to %s\n", len(mined), *outPath)
	}
	mc := mineConfig{
		Grid: *grid, Samples: *samples, Seed: *seed, Workers: *workers, Mined: len(mined),
		Shards: len(segURLs),
	}
	clients := map[string]httpx.Stats{}
	if segPool != nil {
		mc.Pools = map[string][]httpx.EndpointStats{
			"segments":  segPool.Stats(),
			"elevation": elevPool.Stats(),
		}
	} else {
		clients["segments"] = segClient.Stats()
		clients["elevation"] = elevClient.Stats()
	}
	cfg, err := json.Marshal(mc)
	if err != nil {
		return err
	}
	if err := obsboot.SaveRunMeta(*ckptDir, "elevmine.meta", obsboot.RunMeta{
		Tool:    "elevmine",
		Config:  cfg,
		Clients: clients,
		Journal: journal.Stats(),
	}); err != nil {
		return err
	}

	if sweepErr != nil {
		if sweepErr.Interrupted() {
			// A graceful drain is a success with less work done: the journal
			// is flushed, so -resume picks up exactly where this run stopped.
			fmt.Printf("interrupted: %d classes pending, journal flushed — rerun with -resume to continue\n",
				len(sweepErr.PerClass))
			return nil
		}
		for _, ce := range sweepErr.PerClass {
			fmt.Fprintf(os.Stderr, "elevmine: class %s failed: %v\n", ce.Label, ce.Err)
		}
		return fmt.Errorf("%d of %d classes failed", len(sweepErr.PerClass), len(classes))
	}
	return nil
}

// mineConfig is the tool-specific config block inside the shared
// obsboot.RunMeta snapshot: enough to see at a glance what a journal
// belongs to.
type mineConfig struct {
	Grid    int   `json:"grid"`
	Samples int   `json:"samples"`
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
	Mined   int   `json:"mined"`
	Shards  int   `json:"shards,omitempty"`
	// Pools carries per-endpoint transport stats when the sweep ran against
	// a sharded tier (the single-endpoint path reports via Clients instead).
	Pools map[string][]httpx.EndpointStats `json:"pools,omitempty"`
}

// writeMined writes the mined dataset as JSON, atomically: a crash mid-write
// leaves the previous file intact, never a torn one.
func writeMined(path string, mined []segments.MinedSegment) error {
	return durable.WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(mined)
	})
}

// resilientClient builds the httpx client a sweep talks through: default
// retry policy, optional rate limit, and — for the -faultrate demo — a
// seeded fault-injecting transport underneath, so the output stays
// identical while the transport misbehaves.
func resilientClient(service string, rps, faultRate float64, seed int64) *httpx.Client {
	var transport http.RoundTripper = http.DefaultTransport
	if faultRate > 0 {
		ft := httpx.NewFaultTripper(transport)
		ft.Stub(httpx.MatchAll, httpx.RandomFaults(seed, 1<<16, faultRate, httpx.Fault{
			Delay:  2 * time.Millisecond,
			Status: http.StatusServiceUnavailable,
			Body:   "injected transient fault",
		})...)
		transport = ft
	}
	opts := []httpx.Option{
		// 8 attempts keeps even a -faultrate 0.3 schedule's unlucky runs
		// (p^7 per request) from exhausting the budget mid-demo.
		httpx.WithPolicy(httpx.Policy{
			MaxAttempts:       8,
			PerAttemptTimeout: 10 * time.Second,
			BaseDelay:         25 * time.Millisecond,
			MaxDelay:          2 * time.Second,
			Multiplier:        2,
			Jitter:            0.2,
		}),
		httpx.WithBreaker(httpx.NewBreaker(16, 5*time.Second)),
		httpx.WithMetrics(service),
	}
	if rps > 0 {
		opts = append(opts, httpx.WithLimiter(httpx.NewLimiter(rps, 10)))
	}
	return httpx.NewClient(&http.Client{Transport: transport, Timeout: 30 * time.Second}, opts...)
}

// listen opens a loopback listener and returns its base URL.
func listen() (net.Listener, string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return lis, "http://" + lis.Addr().String(), nil
}

// spawn serves handler on a fresh loopback listener, returning the server
// for shutdown and its base URL.
func spawn(handler http.Handler) (*http.Server, string, error) {
	lis, url, err := listen()
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(lis) }()
	return srv, url, nil
}

// splitAddrs parses a comma-separated address list, dropping empty entries.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// newPool builds the consistent-hash endpoint pool a sharded sweep talks
// through: per-endpoint breakers and health probes, pool-owned failover,
// the same -rps self-pacing the single-endpoint client applies, and — for
// the -faultrate demo — the same seeded fault-injecting transport.
func newPool(baseURLs []string, service string, pf *obsboot.PoolFlags, rps, faultRate float64, seed int64) (*httpx.Pool, error) {
	var transport http.RoundTripper = http.DefaultTransport
	if faultRate > 0 {
		ft := httpx.NewFaultTripper(transport)
		ft.Stub(httpx.MatchAll, httpx.RandomFaults(seed, 1<<16, faultRate, httpx.Fault{
			Delay:  2 * time.Millisecond,
			Status: http.StatusServiceUnavailable,
			Body:   "injected transient fault",
		})...)
		transport = ft
	}
	var doer httpx.Doer = &http.Client{Transport: transport, Timeout: 30 * time.Second}
	if rps > 0 {
		doer = &pacedDoer{doer: doer, limiter: httpx.NewLimiter(rps, 10)}
	}
	opts := append(pf.Options(service),
		httpx.WithPoolTransport(doer),
		httpx.WithPoolJitterSeed(seed),
	)
	return httpx.NewPool(baseURLs, opts...)
}

// pacedDoer rate-limits a Doer with a shared token bucket, giving pooled
// sweeps the same -rps self-pacing the single-endpoint client gets from
// its built-in limiter. Health probes ride through it too, which is fine:
// they are rare relative to any realistic budget.
type pacedDoer struct {
	doer    httpx.Doer
	limiter *httpx.Limiter
}

func (p *pacedDoer) Do(req *http.Request) (*http.Response, error) {
	if err := p.limiter.Wait(req.Context()); err != nil {
		return nil, err
	}
	return p.doer.Do(req)
}

// serveForever runs both services on fixed addresses until interrupted.
// shardIdx/shardCnt tag the instance's identity inside a sharded tier
// (every shard is a full replica, so the index only names the instance on
// /healthz and /metrics). SIGINT/SIGTERM shuts both servers down gracefully
// and returns nil, so the deferred telemetry Close still runs — that is
// what flushes a shard's -trace-out file for the fleet merger.
func serveForever(addrs string, store *segments.Store, source dem.Source, shardIdx, shardCnt int, pprofOn bool) error {
	parts := strings.Split(addrs, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-serve wants two comma-separated addresses, got %q", addrs)
	}
	errc := make(chan error, 2)
	segSrv := &http.Server{
		Addr:              parts[0],
		Handler:           segments.NewServer(store, segments.WithShard(shardIdx, shardCnt), segments.WithPprof(pprofOn)).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	elevSrv := &http.Server{
		Addr:              parts[1],
		Handler:           elevsvc.NewServer(source, elevsvc.WithShard(shardIdx, shardCnt), elevsvc.WithPprof(pprofOn)).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { errc <- segSrv.ListenAndServe() }()
	go func() { errc <- elevSrv.ListenAndServe() }()
	if shardCnt > 0 {
		fmt.Printf("shard %d/%d: segment service on %s, elevation service on %s\n",
			shardIdx, shardCnt, parts[0], parts[1])
	} else {
		fmt.Printf("segment service on %s, elevation service on %s\n", parts[0], parts[1])
	}
	shutdown := durable.NotifyShutdown(context.Background())
	defer shutdown.Stop()
	select {
	case err := <-errc:
		return err
	case <-shutdown.Draining:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = segSrv.Shutdown(ctx)
		_ = elevSrv.Shutdown(ctx)
		fmt.Println("shutting down: both services drained")
		return nil
	}
}
