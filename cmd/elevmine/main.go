// Command elevmine runs the paper's Fig. 4 mining pipeline end to end over
// HTTP: it stands up the segment-explore service and the elevation API as
// real servers, populates the segment store from the synthetic world, then
// sweeps each city boundary with the grid miner and reports what it
// recovered.
//
// Usage:
//
//	elevmine                       # mine every city at laptop scale
//	elevmine -city SF -grid 12     # one city, finer grid
//	elevmine -serve :8080,:8081    # keep both services listening instead
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"elevprivacy/internal/dem"
	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/segments"
	"elevprivacy/internal/terrain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevmine:", err)
		os.Exit(1)
	}
}

// worldSource routes elevation queries to the containing city's terrain.
type worldSource struct {
	cities []*terrain.City
	fields []*terrain.Terrain
}

func newWorldSource(cities []*terrain.City) (*worldSource, error) {
	ws := &worldSource{cities: cities}
	for _, c := range cities {
		tr, err := c.Terrain()
		if err != nil {
			return nil, err
		}
		ws.fields = append(ws.fields, tr)
	}
	return ws, nil
}

// ElevationAt implements dem.Source over the whole world.
func (ws *worldSource) ElevationAt(p geo.LatLng) (float64, error) {
	for i, c := range ws.cities {
		// Borough boxes may poke outside the city box (e.g. Baltimore), so
		// route by an expanded boundary.
		if c.Bounds.Expand(0.5, 0.5).Contains(p) {
			return ws.fields[i].ElevationAt(p)
		}
	}
	return 0, fmt.Errorf("%w: %v not covered by any city", dem.ErrOutOfBounds, p)
}

func run() error {
	var (
		cityFlag = flag.String("city", "", "mine a single city (name or abbreviation; default all)")
		perCity  = flag.Int("segments", 120, "synthetic segments created per city")
		grid     = flag.Int("grid", 8, "miner grid divisions per side")
		samples  = flag.Int("samples", 100, "elevation samples per profile")
		seed     = flag.Int64("seed", 1, "random seed")
		serve    = flag.String("serve", "", "comma-separated listen addrs for segment,elevation services (keeps serving)")
	)
	flag.Parse()

	world := terrain.World()
	cities := world
	if *cityFlag != "" {
		c, err := terrain.CityByName(world, *cityFlag)
		if err != nil {
			return err
		}
		cities = []*terrain.City{c}
	}

	// Populate the segment store.
	store := segments.NewStore()
	rng := rand.New(rand.NewSource(*seed))
	for _, c := range cities {
		if err := store.Populate(c.Bounds, *perCity, c.Abbrev, segments.DefaultPopulateConfig(), rng); err != nil {
			return err
		}
	}
	fmt.Printf("segment store: %d segments across %d cities\n", store.Len(), len(cities))

	source, err := newWorldSource(world)
	if err != nil {
		return err
	}

	if *serve != "" {
		return serveForever(*serve, store, source)
	}

	// In-process servers over real TCP.
	segLis, segURL, err := listen()
	if err != nil {
		return err
	}
	elevLis, elevURL, err := listen()
	if err != nil {
		return err
	}
	segSrv := &http.Server{Handler: segments.NewServer(store).Handler(), ReadHeaderTimeout: 5 * time.Second}
	elevSrv := &http.Server{Handler: elevsvc.NewServer(source).Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = segSrv.Serve(segLis) }()
	go func() { _ = elevSrv.Serve(elevLis) }()
	defer func() {
		_ = segSrv.Close()
		_ = elevSrv.Close()
	}()

	miner := segments.NewMiner(
		segments.NewClient(segURL, nil),
		elevsvc.NewClient(elevURL, nil),
	)
	miner.GridRows = *grid
	miner.GridCols = *grid
	miner.Samples = *samples

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var total int
	for _, c := range cities {
		start := time.Now()
		mined, err := miner.MineBoundary(ctx, c.Name, c.Bounds)
		if err != nil {
			return fmt.Errorf("mining %s: %w", c.Name, err)
		}
		total += len(mined)
		fmt.Printf("%-18s mined %4d/%d segments in %v\n",
			c.Name, len(mined), *perCity, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("total mined: %d segments (grid %dx%d, top-%d per cell)\n",
		total, *grid, *grid, segments.ExploreLimit)
	return nil
}

// listen opens a loopback listener and returns its base URL.
func listen() (net.Listener, string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return lis, "http://" + lis.Addr().String(), nil
}

// serveForever runs both services on fixed addresses until interrupted.
func serveForever(addrs string, store *segments.Store, source dem.Source) error {
	parts := strings.Split(addrs, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-serve wants two comma-separated addresses, got %q", addrs)
	}
	errc := make(chan error, 2)
	segSrv := &http.Server{Addr: parts[0], Handler: segments.NewServer(store).Handler(), ReadHeaderTimeout: 5 * time.Second}
	elevSrv := &http.Server{Addr: parts[1], Handler: elevsvc.NewServer(source).Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { errc <- segSrv.ListenAndServe() }()
	go func() { errc <- elevSrv.ListenAndServe() }()
	fmt.Printf("segment service on %s, elevation service on %s\n", parts[0], parts[1])
	return <-errc
}
