// Command elevattack trains and evaluates one of the paper's three threat
// models from the command line.
//
// Usage:
//
//	elevattack -tm 1                         # TM-1: region from history
//	elevattack -tm 2 -city SF                # TM-2: borough given the city
//	elevattack -tm 3 -classifier mlp         # TM-3: city, no prior
//	elevattack -tm 3 -rep image -mode weighted
//	elevattack -tm 3 -save attack.bin        # also train on everything and save
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"elevprivacy"
	"elevprivacy/internal/durable"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevattack:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		tm         = flag.Int("tm", 3, "threat model: 1 (user history), 2 (borough given city), 3 (city)")
		city       = flag.String("city", "NYC", "TM-2 city (name or abbreviation)")
		classifier = flag.String("classifier", "mlp", "text classifier: svm, rfc, or mlp")
		rep        = flag.String("rep", "text", "representation: text or image")
		mode       = flag.String("mode", "weighted", "image training mode: unweighted, weighted, or finetune")
		scale      = flag.Float64("scale", 0.05, "fraction of the paper's dataset sizes")
		folds      = flag.Int("folds", 10, "cross-validation folds (text representation)")
		epochs     = flag.Int("epochs", 16, "CNN epochs (image representation)")
		seed       = flag.Int64("seed", 1, "random seed")
		save       = flag.String("save", "", "train on the full dataset and save the attack model to this path")
	)
	flag.Parse()

	dcfg := elevprivacy.DatasetConfig{
		Scale:          *scale,
		ProfileSamples: 80,
		MinPerClass:    10,
		Seed:           *seed,
	}

	var (
		d   *elevprivacy.Dataset
		err error
	)
	switch *tm {
	case 1:
		d, err = elevprivacy.NewUserSpecificDataset(dcfg)
	case 2:
		d, err = elevprivacy.NewBoroughDataset(*city, dcfg)
	case 3:
		d, err = elevprivacy.NewCityLevelDataset(dcfg)
	default:
		return fmt.Errorf("unknown threat model %d", *tm)
	}
	if err != nil {
		return err
	}

	fmt.Printf("threat model TM-%d, %d samples, %d classes, representation %s\n",
		*tm, d.Len(), len(d.Labels()), *rep)

	switch *rep {
	case "text":
		cfg := elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierKind(*classifier))
		cfg.Seed = *seed
		m, err := elevprivacy.CrossValidateText(d, cfg, *folds)
		if err != nil {
			return err
		}
		printMetrics(fmt.Sprintf("%s, %d-fold CV", *classifier, *folds), m)
		if *save != "" {
			attack, err := elevprivacy.TrainTextAttack(d, cfg)
			if err != nil {
				return err
			}
			if err := saveAttack(*save, attack.Save); err != nil {
				return err
			}
		}
	case "image":
		cfg := elevprivacy.DefaultImageAttackConfig(elevprivacy.TrainMode(*mode))
		cfg.Epochs = *epochs
		cfg.Seed = *seed
		m, err := elevprivacy.EvaluateImageAttack(d, cfg, 0.2)
		if err != nil {
			return err
		}
		printMetrics(fmt.Sprintf("CNN (%s loss), 80/20 split", *mode), m)
		if *save != "" {
			attack, err := elevprivacy.TrainImageAttack(d, cfg)
			if err != nil {
				return err
			}
			if err := saveAttack(*save, attack.Save); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown representation %q", *rep)
	}
	return nil
}

// saveAttack writes a trained attack model atomically: a crash mid-save
// leaves any previous model file intact, never a half-written one.
func saveAttack(path string, save func(io.Writer) error) error {
	if err := durable.WriteFileAtomic(path, 0o644, save); err != nil {
		return fmt.Errorf("saving attack model: %w", err)
	}
	fmt.Printf("saved trained attack to %s\n", path)
	return nil
}

func printMetrics(setting string, m elevprivacy.Metrics) {
	fmt.Printf("%s\n", setting)
	fmt.Printf("  accuracy    %6.2f%%\n", m.Accuracy*100)
	fmt.Printf("  precision   %6.2f%%\n", m.Precision*100)
	fmt.Printf("  recall      %6.2f%%\n", m.Recall*100)
	fmt.Printf("  F1          %6.2f%%\n", m.F1*100)
	fmt.Printf("  specificity %6.2f%%\n", m.Specificity*100)
}
