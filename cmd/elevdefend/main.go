// Command elevdefend applies a sharing countermeasure to a dataset file
// (as written by elevgen) and reports the privacy/utility trade-off: the
// attack's cross-validated accuracy before and after the defense, and the
// distortion of the route-difficulty statistics users want to convey.
//
// Usage:
//
//	elevdefend -in data/city-level.json -defense zero-baseline
//	elevdefend -in data/city-level.json -defense quantize -step 20
//	elevdefend -in data/city-level.json -defense summary -out defended.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"elevprivacy"
	"elevprivacy/internal/dataset"
	"elevprivacy/internal/defense"
	"elevprivacy/internal/durable"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevdefend:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "input dataset JSON (required)")
		out     = flag.String("out", "", "optional output path for the defended dataset")
		defName = flag.String("defense", "zero-baseline", "defense: none, noise, quantize, zero-baseline, or summary")
		sigma   = flag.Float64("sigma", 5, "noise standard deviation in meters (defense=noise)")
		step    = flag.Float64("step", 20, "quantization step in meters (defense=quantize)")
		folds   = flag.Int("folds", 5, "cross-validation folds")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	def, err := pickDefense(*defName, *sigma, *step)
	if err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	d, err := elevprivacy.LoadDatasetJSON(f)
	_ = f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d profiles, %d classes\n", d.Len(), len(d.Labels()))

	defended := defense.ApplyToDataset((*dataset.Dataset)(d), def, *seed)

	attackCfg := elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierMLP)
	attackCfg.Seed = *seed
	before, err := elevprivacy.CrossValidateText(d, attackCfg, *folds)
	if err != nil {
		return fmt.Errorf("evaluating undefended data: %w", err)
	}
	after, err := elevprivacy.CrossValidateText((*elevprivacy.Dataset)(defended), attackCfg, *folds)
	if err != nil {
		return fmt.Errorf("evaluating defended data: %w", err)
	}
	gainErr, err := defense.GainError((*dataset.Dataset)(d), defended, def)
	if err != nil {
		return err
	}

	chance := 100.0 / float64(len(d.Labels()))
	fmt.Printf("\ndefense: %s\n", def.Name())
	fmt.Printf("  attack accuracy before  %6.2f%%\n", before.Accuracy*100)
	fmt.Printf("  attack accuracy after   %6.2f%%  (chance: %.1f%%)\n", after.Accuracy*100, chance)
	fmt.Printf("  total-gain distortion   %6.2f%%\n", gainErr*100)

	if *out != "" {
		err := durable.WriteFileAtomic(*out, 0o644, func(w io.Writer) error {
			return elevprivacy.SaveDatasetJSON(w, (*elevprivacy.Dataset)(defended))
		})
		if err != nil {
			return err
		}
		fmt.Printf("wrote defended dataset to %s\n", *out)
	}
	return nil
}

// pickDefense maps the flag values onto a Defense.
func pickDefense(name string, sigma, step float64) (defense.Defense, error) {
	switch name {
	case "none":
		return defense.Noop{}, nil
	case "noise":
		return defense.GaussianNoise{SigmaMeters: sigma}, nil
	case "quantize":
		return defense.Quantizer{StepMeters: step}, nil
	case "zero-baseline":
		return defense.ZeroBaseline{}, nil
	case "summary":
		return defense.SummaryStats{}, nil
	default:
		return nil, fmt.Errorf("unknown defense %q", name)
	}
}
