// Command servebench measures the sharded serving tier's hot paths and
// writes BENCH_serving.json: warm-cache hot-tile lookups against an
// uncached single-shard mirror (the LRU+singleflight payoff), warm
// elevation-profile repeats against a cache-disabled server, and a full
// mining sweep against a 4-shard consistent-hash tier versus a single
// endpoint — with a byte-identity check against the serial single-endpoint
// baseline, per-endpoint balance from the pool stats, and the serving-cache
// hit rate off the process metrics registry.
//
// Usage:
//
//	servebench                     # laptop-scale run
//	servebench -quick              # smoke-scale run (CI)
//	servebench -out BENCH_serving.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"reflect"
	"testing"
	"time"

	"elevprivacy/internal/dem"
	"elevprivacy/internal/durable"
	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
	"elevprivacy/internal/segments"
	"elevprivacy/internal/terrain"
)

// benchConfig records the workload knobs the numbers were measured at.
type benchConfig struct {
	Quick    bool  `json:"quick"`
	TileSize int   `json:"tile_size"`
	Segments int   `json:"segments"`
	Grid     int   `json:"grid"`
	Samples  int   `json:"samples"`
	Shards   int   `json:"shards"`
	Seed     int64 `json:"seed"`
}

// tileReport compares hot-tile fetch latency: an uncached mirror rasterizes
// the tile on every request, a warm mirror serves it from the LRU.
type tileReport struct {
	UncachedNsPerFetch float64 `json:"uncached_ns_per_fetch"`
	WarmNsPerFetch     float64 `json:"warm_ns_per_fetch"`
	Speedup            float64 `json:"speedup"`
	// MeetsFiveX is the acceptance bound: warm hot-tile lookups at least 5x
	// faster than the uncached single-shard path.
	MeetsFiveX bool `json:"meets_5x"`
}

// profileReport compares repeated identical elevation-profile queries with
// and without the server-side profile cache.
type profileReport struct {
	UncachedNsPerQuery float64 `json:"uncached_ns_per_query"`
	WarmNsPerQuery     float64 `json:"warm_ns_per_query"`
	Speedup            float64 `json:"speedup"`
}

// sweepReport compares mining-sweep wall time against a single endpoint and
// a 4-shard pooled tier, cold and warm, and records the correctness and
// balance evidence.
type sweepReport struct {
	SingleShardMs float64 `json:"single_shard_ms"`
	PooledColdMs  float64 `json:"pooled_cold_ms"`
	PooledWarmMs  float64 `json:"pooled_warm_ms"`
	WarmSpeedup   float64 `json:"warm_speedup"` // single-shard cold / pooled warm
	// ByteIdentical reports whether every sweep (single-shard, pooled cold,
	// pooled warm) reproduced the serial single-endpoint baseline exactly.
	ByteIdentical bool `json:"byte_identical"`
	// SegmentRequests / ElevationRequests are per-endpoint request counts
	// from the pool stats; BalanceRatio is max/min over the elevation tier.
	SegmentRequests   []int64 `json:"segment_requests"`
	ElevationRequests []int64 `json:"elevation_requests"`
	BalanceRatio      float64 `json:"balance_ratio"`
	// ProfileCacheHitRate is hits/(hits+misses) on the elev_profiles serving
	// cache across the two pooled sweeps.
	ProfileCacheHitRate float64 `json:"profile_cache_hit_rate"`
}

// report is the BENCH_serving.json schema.
type report struct {
	Config   benchConfig   `json:"config"`
	Tiles    tileReport    `json:"tiles"`
	Profiles profileReport `json:"profiles"`
	Sweep    sweepReport   `json:"sweep"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "smoke-scale run (seconds; used by CI)")
		out   = flag.String("out", "BENCH_serving.json", "write the JSON report to this path")
		seed  = flag.Int64("seed", 11, "random seed for the synthetic workload")
	)
	flag.Parse()

	cfg := benchConfig{
		Quick:    *quick,
		TileSize: 401,
		Segments: 120,
		Grid:     8,
		Samples:  100,
		Shards:   4,
		Seed:     *seed,
	}
	if *quick {
		cfg.TileSize, cfg.Segments, cfg.Grid, cfg.Samples = 151, 40, 4, 30
	}

	rep := report{Config: cfg}
	var err error
	if rep.Tiles, err = benchTiles(cfg); err != nil {
		return err
	}
	fmt.Printf("tiles:    uncached %.0f ns/fetch, warm %.0f ns/fetch -> %.1fx (meets 5x: %v)\n",
		rep.Tiles.UncachedNsPerFetch, rep.Tiles.WarmNsPerFetch, rep.Tiles.Speedup, rep.Tiles.MeetsFiveX)

	if rep.Profiles, err = benchProfiles(cfg); err != nil {
		return err
	}
	fmt.Printf("profiles: uncached %.0f ns/query, warm %.0f ns/query -> %.1fx\n",
		rep.Profiles.UncachedNsPerQuery, rep.Profiles.WarmNsPerQuery, rep.Profiles.Speedup)

	if rep.Sweep, err = benchSweep(cfg); err != nil {
		return err
	}
	fmt.Printf("sweep:    single-shard %.0f ms, pooled cold %.0f ms, pooled warm %.0f ms (identical: %v, balance %.2fx, hit rate %.2f)\n",
		rep.Sweep.SingleShardMs, rep.Sweep.PooledColdMs, rep.Sweep.PooledWarmMs,
		rep.Sweep.ByteIdentical, rep.Sweep.BalanceRatio, rep.Sweep.ProfileCacheHitRate)

	blob, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		return err
	}
	err = durable.WriteFileAtomic(*out, 0o644, func(w io.Writer) error {
		_, werr := w.Write(append(blob, '\n'))
		return werr
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// benchTiles measures hot-tile fetch latency against an uncached mirror
// (1-byte budget: every request rasterizes) and a warm default-budget one.
// The mirror fronts the WDC synthetic terrain — the fBm noise field the
// whole pipeline serves — so the rasterize cost the cache saves is the real
// per-sample evaluation, not a toy ramp.
func benchTiles(cfg benchConfig) (tileReport, error) {
	const stem = "N38W078"
	wdc, err := terrain.CityByName(terrain.World(), "WDC")
	if err != nil {
		return tileReport{}, err
	}
	tr, err := wdc.Terrain()
	if err != nil {
		return tileReport{}, err
	}
	ctx := context.Background()

	fetchNs := func(opts ...dem.TileServerOption) (float64, error) {
		ts, err := dem.NewTileServer(tr, cfg.TileSize, opts...)
		if err != nil {
			return 0, err
		}
		srv, url, err := spawn(ts.Handler())
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		client := dem.NewTileClient(url, nil)
		// One fetch outside the timer: warms the cache when there is one,
		// and pays connection setup either way.
		if _, err := client.FetchTile(ctx, stem); err != nil {
			return 0, err
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := client.FetchTile(ctx, stem); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp()), nil
	}

	uncached, err := fetchNs(dem.WithTileCacheBytes(1))
	if err != nil {
		return tileReport{}, err
	}
	warm, err := fetchNs()
	if err != nil {
		return tileReport{}, err
	}
	speedup := uncached / warm
	return tileReport{
		UncachedNsPerFetch: uncached,
		WarmNsPerFetch:     warm,
		Speedup:            speedup,
		MeetsFiveX:         speedup >= 5,
	}, nil
}

// benchProfiles measures one repeated elevation-profile query against a
// cache-disabled server and a warm default one.
func benchProfiles(cfg benchConfig) (profileReport, error) {
	wdc, err := terrain.CityByName(terrain.World(), "WDC")
	if err != nil {
		return profileReport{}, err
	}
	tr, err := wdc.Terrain()
	if err != nil {
		return profileReport{}, err
	}
	path := geo.Path{
		{Lat: 38.85, Lng: -77.12},
		{Lat: 38.92, Lng: -77.03},
		{Lat: 38.96, Lng: -76.95},
	}
	ctx := context.Background()

	queryNs := func(opts ...elevsvc.Option) (float64, error) {
		srv, url, err := spawn(elevsvc.NewServer(tr, opts...).Handler())
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		client := elevsvc.NewClient(url, httpx.NewClient(nil))
		if _, err := client.ElevationAlongPath(ctx, path, cfg.Samples); err != nil {
			return 0, err
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := client.ElevationAlongPath(ctx, path, cfg.Samples); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp()), nil
	}

	uncached, err := queryNs(elevsvc.WithProfileCacheBytes(0))
	if err != nil {
		return profileReport{}, err
	}
	warm, err := queryNs()
	if err != nil {
		return profileReport{}, err
	}
	return profileReport{
		UncachedNsPerQuery: uncached,
		WarmNsPerQuery:     warm,
		Speedup:            uncached / warm,
	}, nil
}

// benchSweep times a full mining sweep against one endpoint per service and
// against a 4-shard pooled tier (cold, then warm), checking every variant's
// output against the serial single-endpoint baseline.
func benchSweep(cfg benchConfig) (sweepReport, error) {
	wdc, err := terrain.CityByName(terrain.World(), "WDC")
	if err != nil {
		return sweepReport{}, err
	}
	tr, err := wdc.Terrain()
	if err != nil {
		return sweepReport{}, err
	}
	store := segments.NewStore()
	err = store.Populate(wdc.Bounds, cfg.Segments, wdc.Abbrev, segments.DefaultPopulateConfig(),
		rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return sweepReport{}, err
	}
	ctx := context.Background()

	newMiner := func(seg *segments.Client, elev *elevsvc.Client, workers int) *segments.Miner {
		m := segments.NewMiner(seg, elev)
		m.GridRows, m.GridCols = cfg.Grid, cfg.Grid
		m.Samples = cfg.Samples
		m.Workers = workers
		return m
	}

	// Serial single-endpoint baseline: the ground truth every variant must
	// reproduce byte for byte.
	segSrv, segURL, err := spawn(segments.NewServer(store).Handler())
	if err != nil {
		return sweepReport{}, err
	}
	defer segSrv.Close()
	elevSrv, elevURL, err := spawn(elevsvc.NewServer(tr).Handler())
	if err != nil {
		return sweepReport{}, err
	}
	defer elevSrv.Close()

	serial := newMiner(
		segments.NewClient(segURL, httpx.NewClient(nil)),
		elevsvc.NewClient(elevURL, httpx.NewClient(nil)), 1)
	want, err := serial.MineBoundary(ctx, wdc.Name, wdc.Bounds)
	if err != nil {
		return sweepReport{}, err
	}
	if len(want) == 0 {
		return sweepReport{}, fmt.Errorf("baseline sweep mined nothing")
	}

	// Single-shard concurrent sweep against fresh servers (cold caches).
	segSrv2, segURL2, err := spawn(segments.NewServer(store).Handler())
	if err != nil {
		return sweepReport{}, err
	}
	defer segSrv2.Close()
	elevSrv2, elevURL2, err := spawn(elevsvc.NewServer(tr).Handler())
	if err != nil {
		return sweepReport{}, err
	}
	defer elevSrv2.Close()
	single := newMiner(
		segments.NewClient(segURL2, httpx.NewClient(nil)),
		elevsvc.NewClient(elevURL2, httpx.NewClient(nil)), segments.DefaultWorkers)
	start := time.Now()
	got, err := single.MineBoundary(ctx, wdc.Name, wdc.Bounds)
	if err != nil {
		return sweepReport{}, err
	}
	singleMs := float64(time.Since(start).Microseconds()) / 1e3
	identical := reflect.DeepEqual(want, got)

	// 4-shard pooled tier: full replicas behind consistent-hash pools.
	var segURLs, elevURLs []string
	for i := 0; i < cfg.Shards; i++ {
		s1, u1, err := spawn(segments.NewServer(store, segments.WithShard(i, cfg.Shards)).Handler())
		if err != nil {
			return sweepReport{}, err
		}
		defer s1.Close()
		s2, u2, err := spawn(elevsvc.NewServer(tr, elevsvc.WithShard(i, cfg.Shards)).Handler())
		if err != nil {
			return sweepReport{}, err
		}
		defer s2.Close()
		segURLs, elevURLs = append(segURLs, u1), append(elevURLs, u2)
	}
	segPool, err := httpx.NewPool(segURLs, httpx.WithPoolMetrics("segments"))
	if err != nil {
		return sweepReport{}, err
	}
	defer segPool.Close()
	elevPool, err := httpx.NewPool(elevURLs, httpx.WithPoolMetrics("elevation"))
	if err != nil {
		return sweepReport{}, err
	}
	defer elevPool.Close()
	pooled := newMiner(segments.NewPoolClient(segPool), elevsvc.NewPoolClient(elevPool), segments.DefaultWorkers)

	hits := obs.GetCounter(`elevpriv_serving_cache_hits_total{cache="elev_profiles"}`)
	misses := obs.GetCounter(`elevpriv_serving_cache_misses_total{cache="elev_profiles"}`)
	hits0, misses0 := hits.Value(), misses.Value()

	start = time.Now()
	got, err = pooled.MineBoundary(ctx, wdc.Name, wdc.Bounds)
	if err != nil {
		return sweepReport{}, err
	}
	coldMs := float64(time.Since(start).Microseconds()) / 1e3
	identical = identical && reflect.DeepEqual(want, got)

	start = time.Now()
	got, err = pooled.MineBoundary(ctx, wdc.Name, wdc.Bounds)
	if err != nil {
		return sweepReport{}, err
	}
	warmMs := float64(time.Since(start).Microseconds()) / 1e3
	identical = identical && reflect.DeepEqual(want, got)

	dh, dm := hits.Value()-hits0, misses.Value()-misses0
	hitRate := 0.0
	if dh+dm > 0 {
		hitRate = float64(dh) / float64(dh+dm)
	}

	segReqs, _ := requestCounts(segPool)
	elevReqs, ratio := requestCounts(elevPool)
	return sweepReport{
		SingleShardMs:       singleMs,
		PooledColdMs:        coldMs,
		PooledWarmMs:        warmMs,
		WarmSpeedup:         singleMs / warmMs,
		ByteIdentical:       identical,
		SegmentRequests:     segReqs,
		ElevationRequests:   elevReqs,
		BalanceRatio:        ratio,
		ProfileCacheHitRate: hitRate,
	}, nil
}

// requestCounts extracts per-endpoint request counts and the max/min ratio.
func requestCounts(pool *httpx.Pool) ([]int64, float64) {
	stats := pool.Stats()
	out := make([]int64, len(stats))
	lo, hi := int64(-1), int64(0)
	for i, s := range stats {
		out[i] = s.Requests
		if lo < 0 || s.Requests < lo {
			lo = s.Requests
		}
		if s.Requests > hi {
			hi = s.Requests
		}
	}
	if lo <= 0 {
		return out, 0
	}
	return out, float64(hi) / float64(lo)
}

// spawn serves handler on a fresh loopback listener, returning the server
// for shutdown and its base URL.
func spawn(handler http.Handler) (*http.Server, string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(lis) }()
	return srv, "http://" + lis.Addr().String(), nil
}
