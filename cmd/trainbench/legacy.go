package main

import (
	"math"
	"math/rand"

	"elevprivacy/internal/ml/linalg"
)

// legacyMLP is a frozen replica of the pre-batching MLP trainer: one
// sample at a time through scalar forward/backward passes, re-reading both
// weight matrices from memory for every sample. It is rebuilt here (rather
// than kept in the library) so the benchmark's baseline stays pinned at
// the per-sample implementation, and so the bit-exactness of the batched
// rewrite stays checkable: with the same config and data, legacyFit and
// mlp.Fit must produce identical probabilities on every sample.
type legacyMLP struct {
	classes   int
	hidden    int
	epochs    int
	batchSize int
	lr        float64
	seed      int64

	dim    int
	params []float64
	adam   *legacyAdam

	w1, b1, w2, b2 int
}

// legacyAdam freezes the pre-optimization Adam StepSum loop: per-element
// field loads, per-element bounds checks, and the generic shard reduce even
// for one shard. The library's StepSum has since been rewritten for the
// divider unit; pinning the old loop here keeps the baseline measuring the
// whole retired trainer, optimizer included. Arithmetic (and so every
// result bit) is identical to the library's — only the loop plumbing
// differs — so the parity checks still compare the current paths against
// the old trainer's exact numbers.
type legacyAdam struct {
	lr    float64
	beta1 float64
	beta2 float64
	eps   float64
	m     []float64
	v     []float64
	t     int
}

func newLegacyAdam(size int, lr float64) *legacyAdam {
	return &legacyAdam{
		lr:    lr,
		beta1: 0.9,
		beta2: 0.999,
		eps:   1e-8,
		m:     make([]float64, size),
		v:     make([]float64, size),
	}
}

func (a *legacyAdam) stepSum(params []float64, parts [][]float64, scale float64) {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i := range params {
		var g float64
		for _, p := range parts {
			g += p[i]
		}
		g *= scale
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
	}
}

func newLegacyMLP(classes, hidden, epochs, batchSize int, lr float64, seed int64) *legacyMLP {
	return &legacyMLP{classes: classes, hidden: hidden, epochs: epochs, batchSize: batchSize, lr: lr, seed: seed}
}

func (m *legacyMLP) init(d int, rng *rand.Rand) error {
	m.dim = d
	h, k := m.hidden, m.classes

	m.w1 = 0
	m.b1 = h * d
	m.w2 = m.b1 + h
	m.b2 = m.w2 + k*h
	m.params = make([]float64, m.b2+k)

	scale1 := math.Sqrt(2 / float64(d))
	for i := 0; i < h*d; i++ {
		m.params[m.w1+i] = rng.NormFloat64() * scale1
	}
	scale2 := math.Sqrt(2 / float64(h))
	for i := 0; i < k*h; i++ {
		m.params[m.w2+i] = rng.NormFloat64() * scale2
	}

	m.adam = newLegacyAdam(len(m.params), m.lr)
	return nil
}

type legacyScratch struct {
	hidden []float64
	logits []float64
	probs  []float64
	dHide  []float64
}

func (m *legacyMLP) newScratch() *legacyScratch {
	return &legacyScratch{
		hidden: make([]float64, m.hidden),
		logits: make([]float64, m.classes),
		probs:  make([]float64, m.classes),
		dHide:  make([]float64, m.hidden),
	}
}

func (m *legacyMLP) forward(x []float64, s *legacyScratch) {
	h, d, k := m.hidden, m.dim, m.classes
	for j := 0; j < h; j++ {
		z := m.params[m.b1+j] + linalg.Dot(m.params[m.w1+j*d:m.w1+(j+1)*d], x)
		if z < 0 {
			z = 0
		}
		s.hidden[j] = z
	}
	for c := 0; c < k; c++ {
		s.logits[c] = m.params[m.b2+c] + linalg.Dot(m.params[m.w2+c*h:m.w2+(c+1)*h], s.hidden)
	}
	linalg.Softmax(s.logits, s.probs)
}

func (m *legacyMLP) backward(x []float64, label int, grads []float64, s *legacyScratch) {
	m.forward(x, s)
	h, d, k := m.hidden, m.dim, m.classes

	linalg.Zero(s.dHide)
	for c := 0; c < k; c++ {
		dLogit := s.probs[c]
		if c == label {
			dLogit--
		}
		grads[m.b2+c] += dLogit
		wRow := m.params[m.w2+c*h : m.w2+(c+1)*h]
		gRow := grads[m.w2+c*h : m.w2+(c+1)*h]
		for j := 0; j < h; j++ {
			gRow[j] += dLogit * s.hidden[j]
			s.dHide[j] += dLogit * wRow[j]
		}
	}
	for j := 0; j < h; j++ {
		if s.hidden[j] <= 0 {
			continue
		}
		grads[m.b1+j] += s.dHide[j]
		linalg.Axpy(grads[m.w1+j*d:m.w1+(j+1)*d], x, s.dHide[j])
	}
}

func (m *legacyMLP) fit(x [][]float64, y []int) error {
	rng := rand.New(rand.NewSource(m.seed))
	if err := m.init(len(x[0]), rng); err != nil {
		return err
	}

	n := len(x)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	grads := make([]float64, len(m.params))
	scratch := m.newScratch()

	for epoch := 0; epoch < m.epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.batchSize {
			end := start + m.batchSize
			if end > n {
				end = n
			}
			linalg.Zero(grads)
			for _, i := range order[start:end] {
				m.backward(x[i], y[i], grads, scratch)
			}
			m.adam.stepSum(m.params, [][]float64{grads}, 1/float64(end-start))
		}
	}
	return nil
}

// probabilities returns the class distribution for one sample.
func (m *legacyMLP) probabilities(x []float64, s *legacyScratch) []float64 {
	m.forward(x, s)
	out := make([]float64, len(s.probs))
	copy(out, s.probs)
	return out
}
