// Command trainbench measures classifier training hot paths — the frozen
// per-sample MLP trainer against the batched float64, reduced-precision
// float32, and sparse-CSR paths, and the SVM's dense fit against its
// sparse one — on a synthetic corpus at the scale of the paper's Table II
// mined datasets, and records ns/sample per path in a JSON report. Every
// comparison doubles as a correctness check: the batched float64 paths
// must reproduce the legacy model bit for bit, and the float32 path must
// agree within reported tolerances.
//
// Usage:
//
//	trainbench                     # full Table-II-scale run
//	trainbench -quick              # smoke-scale run (CI)
//	trainbench -out BENCH_train.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime/pprof"
	"testing"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/ml/mlp"
	"elevprivacy/internal/ml/svm"
	"elevprivacy/internal/obs"
	"elevprivacy/internal/textrep"
)

// corpusConfig describes the synthetic workload.
type corpusConfig struct {
	Samples     int `json:"samples"`
	Points      int `json:"points"`
	Classes     int `json:"classes"`
	Precision   int `json:"precision"`
	MaxFeatures int `json:"max_features"`
}

// mlpReport compares the MLP training paths against the frozen per-sample
// baseline.
type mlpReport struct {
	Epochs             int     `json:"epochs"`
	LegacyNsPerSample  float64 `json:"legacy_ns_per_sample"`
	BatchedNsPerSample float64 `json:"batched_ns_per_sample"`
	SparseNsPerSample  float64 `json:"sparse_ns_per_sample"`
	// Float32NsPerSample measures the float32 path on the sparse features —
	// the configuration the Float32 knob actually deploys (bag-of-words
	// batches train via FitSparse).
	Float32NsPerSample float64 `json:"float32_ns_per_sample"`
	Speedup            float64 `json:"speedup"`         // legacy / batched (float64)
	SparseSpeedup      float64 `json:"sparse_speedup"`  // legacy / sparse (float64)
	Float32Speedup     float64 `json:"float32_speedup"` // legacy / float32
	// BatchedBitExact and SparseBitExact report whether the batched and
	// sparse float64 models reproduce the legacy model's probabilities bit
	// for bit on every training sample.
	BatchedBitExact bool `json:"batched_bit_exact"`
	SparseBitExact  bool `json:"sparse_bit_exact"`
	// Float32MaxAbsDiff is the largest |p32 - p64| over all samples and
	// classes; Float32ArgmaxAgreement the fraction of samples where both
	// paths predict the same class.
	Float32MaxAbsDiff      float64 `json:"float32_max_abs_diff"`
	Float32ArgmaxAgreement float64 `json:"float32_argmax_agreement"`
}

// svmReport compares the SVM's dense and sparse training paths.
type svmReport struct {
	Epochs            int     `json:"epochs"`
	DenseNsPerSample  float64 `json:"dense_ns_per_sample"`
	SparseNsPerSample float64 `json:"sparse_ns_per_sample"`
	Speedup           float64 `json:"speedup"`
	SparseBitExact    bool    `json:"sparse_bit_exact"`
}

// report is the BENCH_train.json schema.
type report struct {
	Corpus   corpusConfig `json:"corpus"`
	Features int          `json:"features"`
	MLP      mlpReport    `json:"mlp"`
	SVM      svmReport    `json:"svm"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trainbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick      = flag.Bool("quick", false, "smoke-scale corpus (seconds; used by CI)")
		out        = flag.String("out", "BENCH_train.json", "report path")
		seed       = flag.Int64("seed", 1, "corpus random seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this path")
		metricsOut = flag.String("metrics-out", "", "also write the bench numbers as Prometheus text to this path")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := durable.CreateAtomic(*cpuprofile, 0o644)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "trainbench: cpuprofile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Abort()
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cc := corpusConfig{Samples: 400, Points: 200, Classes: 4, Precision: 3, MaxFeatures: 4096}
	mlpEpochs, svmEpochs := 4, 10
	if *quick {
		cc = corpusConfig{Samples: 60, Points: 60, Classes: 3, Precision: 3, MaxFeatures: 512}
		mlpEpochs, svmEpochs = 2, 5
	}
	signals, y := syntheticCorpus(cc, *seed)

	pcfg := textrep.DefaultPipelineConfig()
	pcfg.Discretizer = nil
	pcfg.Precision = cc.Precision
	pcfg.MaxFeatures = cc.MaxFeatures
	pipe, err := textrep.NewPipeline(signals, pcfg)
	if err != nil {
		return err
	}
	dense := pipe.FeaturesAll(signals)
	sparse := pipe.FeaturesAllSparse(signals)
	rows := dense.RowSlices()

	rep := report{Corpus: cc, Features: pipe.Dim()}

	// MLP: legacy per-sample baseline vs batched f64 / sparse f64 / f32.
	mcfg := mlp.DefaultConfig(cc.Classes)
	mcfg.Epochs = mlpEpochs
	mcfg.Seed = *seed
	rep.MLP.Epochs = mlpEpochs

	legacyRes := bestOf(2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := newLegacyMLP(mcfg.Classes, mcfg.Hidden, mcfg.Epochs, mcfg.BatchSize, mcfg.LearningRate, mcfg.Seed)
			if err := m.fit(rows, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	batchedRes := bestOf(2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := mlp.New(mcfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Fit(rows, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	sparseRes := bestOf(2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := mlp.New(mcfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.FitSparse(sparse, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	m32cfg := mcfg
	m32cfg.Float32 = true
	f32Res := bestOf(2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := mlp.New(m32cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.FitSparse(sparse, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	perSample := func(r testing.BenchmarkResult) float64 {
		return float64(r.NsPerOp()) / float64(cc.Samples)
	}
	rep.MLP.LegacyNsPerSample = perSample(legacyRes)
	rep.MLP.BatchedNsPerSample = perSample(batchedRes)
	rep.MLP.SparseNsPerSample = perSample(sparseRes)
	rep.MLP.Float32NsPerSample = perSample(f32Res)
	rep.MLP.Speedup = rep.MLP.LegacyNsPerSample / rep.MLP.BatchedNsPerSample
	rep.MLP.SparseSpeedup = rep.MLP.LegacyNsPerSample / rep.MLP.SparseNsPerSample
	rep.MLP.Float32Speedup = rep.MLP.LegacyNsPerSample / rep.MLP.Float32NsPerSample

	if err := checkMLPParity(&rep.MLP, mcfg, m32cfg, rows, sparse, y); err != nil {
		return err
	}

	// SVM: dense Fit vs FitSparse.
	scfg := svm.DefaultConfig(cc.Classes)
	scfg.Epochs = svmEpochs
	scfg.Seed = *seed
	rep.SVM.Epochs = svmEpochs
	denseRes := bestOf(2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clf, err := svm.New(scfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := clf.Fit(rows, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	sparseSVMRes := bestOf(2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clf, err := svm.New(scfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := clf.FitSparse(sparse, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.SVM.DenseNsPerSample = perSample(denseRes)
	rep.SVM.SparseNsPerSample = perSample(sparseSVMRes)
	rep.SVM.Speedup = rep.SVM.DenseNsPerSample / rep.SVM.SparseNsPerSample

	svmDense, err := svm.New(scfg)
	if err != nil {
		return err
	}
	if err := svmDense.Fit(rows, y); err != nil {
		return err
	}
	svmSparse, err := svm.New(scfg)
	if err != nil {
		return err
	}
	if err := svmSparse.FitSparse(sparse, y); err != nil {
		return err
	}
	sd, err := svmDense.Scores(dense)
	if err != nil {
		return err
	}
	ss, err := svmSparse.Scores(dense)
	if err != nil {
		return err
	}
	rep.SVM.SparseBitExact = bitsEqual(sd.Data, ss.Data)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	err = durable.WriteFileAtomic(*out, 0o644, func(w io.Writer) error {
		_, werr := w.Write(append(blob, '\n'))
		return werr
	})
	if err != nil {
		return err
	}

	publishReport(rep)
	if *metricsOut != "" {
		err := durable.WriteFileAtomic(*metricsOut, 0o644, func(w io.Writer) error {
			return obs.DefaultRegistry().WritePrometheus(w)
		})
		if err != nil {
			return err
		}
	}

	fmt.Printf("corpus: %d samples x %d points, %d classes, precision %d (%d features)\n",
		cc.Samples, cc.Points, cc.Classes, cc.Precision, rep.Features)
	fmt.Printf("mlp   legacy %12.0f ns/sample | batched %12.0f (%5.2fx, bit-exact=%v) | sparse %12.0f (%5.2fx, bit-exact=%v) | f32 %12.0f (%5.2fx, maxdiff=%.2e, argmax=%.3f)\n",
		rep.MLP.LegacyNsPerSample,
		rep.MLP.BatchedNsPerSample, rep.MLP.Speedup, rep.MLP.BatchedBitExact,
		rep.MLP.SparseNsPerSample, rep.MLP.SparseSpeedup, rep.MLP.SparseBitExact,
		rep.MLP.Float32NsPerSample, rep.MLP.Float32Speedup, rep.MLP.Float32MaxAbsDiff, rep.MLP.Float32ArgmaxAgreement)
	fmt.Printf("svm   dense  %12.0f ns/sample | sparse  %12.0f (%5.2fx, bit-exact=%v)\n",
		rep.SVM.DenseNsPerSample, rep.SVM.SparseNsPerSample, rep.SVM.Speedup, rep.SVM.SparseBitExact)
	fmt.Printf("report written to %s\n", *out)
	return nil
}

// checkMLPParity trains one model per path outside the timing loops and
// fills the report's correctness fields: legacy-vs-batched and
// legacy-vs-sparse probabilities compared bit for bit, float32-vs-float64
// compared by max abs difference and argmax agreement.
func checkMLPParity(r *mlpReport, cfg, cfg32 mlp.Config, rows [][]float64, sparse *linalg.SparseMatrix, y []int) error {
	legacy := newLegacyMLP(cfg.Classes, cfg.Hidden, cfg.Epochs, cfg.BatchSize, cfg.LearningRate, cfg.Seed)
	if err := legacy.fit(rows, y); err != nil {
		return err
	}
	batched, err := mlp.New(cfg)
	if err != nil {
		return err
	}
	if err := batched.Fit(rows, y); err != nil {
		return err
	}
	sparseM, err := mlp.New(cfg)
	if err != nil {
		return err
	}
	if err := sparseM.FitSparse(sparse, y); err != nil {
		return err
	}
	m32, err := mlp.New(cfg32)
	if err != nil {
		return err
	}
	if err := m32.FitSparse(sparse, y); err != nil {
		return err
	}

	r.BatchedBitExact = true
	r.SparseBitExact = true
	agree := 0
	scratch := legacy.newScratch()
	for i, row := range rows {
		lp := legacy.probabilities(row, scratch)
		bp, err := batched.Probabilities(row)
		if err != nil {
			return err
		}
		sp, err := sparseM.Probabilities(row)
		if err != nil {
			return err
		}
		p32, err := m32.Probabilities(row)
		if err != nil {
			return err
		}
		if !bitsEqual(lp, bp) {
			r.BatchedBitExact = false
		}
		if !bitsEqual(lp, sp) {
			r.SparseBitExact = false
		}
		for c := range bp {
			if d := math.Abs(p32[c] - bp[c]); d > r.Float32MaxAbsDiff {
				r.Float32MaxAbsDiff = d
			}
		}
		if linalg.ArgMax(p32) == linalg.ArgMax(bp) {
			agree++
		}
		_ = i
	}
	r.Float32ArgmaxAgreement = float64(agree) / float64(len(rows))
	return nil
}

// bitsEqual reports whether two float64 slices are bitwise identical.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// publishReport routes the BENCH report through the metrics registry as
// gauges, so the same numbers that land in BENCH_train.json are
// scrapeable (and renderable with -metrics-out).
func publishReport(rep report) {
	obs.GetGauge(`elevpriv_trainbench_ns_per_sample{model="mlp",path="legacy"}`).Set(rep.MLP.LegacyNsPerSample)
	obs.GetGauge(`elevpriv_trainbench_ns_per_sample{model="mlp",path="batched"}`).Set(rep.MLP.BatchedNsPerSample)
	obs.GetGauge(`elevpriv_trainbench_ns_per_sample{model="mlp",path="sparse"}`).Set(rep.MLP.SparseNsPerSample)
	obs.GetGauge(`elevpriv_trainbench_ns_per_sample{model="mlp",path="float32"}`).Set(rep.MLP.Float32NsPerSample)
	obs.GetGauge(`elevpriv_trainbench_speedup{model="mlp",path="batched"}`).Set(rep.MLP.Speedup)
	obs.GetGauge(`elevpriv_trainbench_speedup{model="mlp",path="sparse"}`).Set(rep.MLP.SparseSpeedup)
	obs.GetGauge(`elevpriv_trainbench_speedup{model="mlp",path="float32"}`).Set(rep.MLP.Float32Speedup)
	obs.GetGauge(`elevpriv_trainbench_ns_per_sample{model="svm",path="dense"}`).Set(rep.SVM.DenseNsPerSample)
	obs.GetGauge(`elevpriv_trainbench_ns_per_sample{model="svm",path="sparse"}`).Set(rep.SVM.SparseNsPerSample)
	obs.GetGauge(`elevpriv_trainbench_speedup{model="svm",path="sparse"}`).Set(rep.SVM.Speedup)
	obs.GetGauge("elevpriv_trainbench_corpus_samples").Set(float64(rep.Corpus.Samples))
	obs.GetGauge("elevpriv_trainbench_features").Set(float64(rep.Features))
}

// bestOf returns the run with the lowest ns/op out of k benchmark runs.
func bestOf(k int, f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < k; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// syntheticCorpus generates elevation profiles the way mined data looks at
// the paper's precision-3 discretization (Table II): each profile is a
// bounded random walk around its class's base altitude, yielding the
// sparse high-vocabulary features the mined-corpus text attack trains on.
func syntheticCorpus(cc corpusConfig, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	signals := make([][]float64, cc.Samples)
	y := make([]int, cc.Samples)
	for i := range signals {
		class := i % cc.Classes
		base := 20 + float64(class)*150
		elev := base + rng.Float64()*30
		sig := make([]float64, cc.Points)
		for j := range sig {
			elev += rng.NormFloat64() * 1.5
			if elev < base-40 {
				elev = base - 40
			}
			sig[j] = elev
		}
		signals[i] = sig
		y[i] = class
	}
	return signals, y
}
