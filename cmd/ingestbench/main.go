// Command ingestbench measures the live-attack ingestion pipeline and
// writes BENCH_ingest.json: sustained activities/sec at steady state
// (firehose over real HTTP into the spooler and the sparse batch
// classifier), and behaviour under 2x overload against a deliberately
// throttled classifier — the server must shed with 429s and a bounded
// backlog instead of growing without bound, and every activity it did
// accept must be classified once the load drops, byte-identical to the
// offline batch path.
//
// Usage:
//
//	ingestbench                      # laptop-scale run
//	ingestbench -quick               # smoke-scale run (CI)
//	ingestbench -out BENCH_ingest.json
//
// With -target it turns into a firehose client for the smoke script: it
// streams -n generated activities at the given URL (writing the same
// stream to -ndjson-out for the offline baseline), retries through
// restarts, and waits until the server's results ledger holds them all.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"elevprivacy"
	"elevprivacy/internal/activity"
	"elevprivacy/internal/durable"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/ingest"
)

// benchConfig records the workload knobs the numbers were measured at.
type benchConfig struct {
	Quick      bool  `json:"quick"`
	Activities int   `json:"activities"`
	Seed       int64 `json:"seed"`
	// OverloadCapacityPerSec is the throttled classifier's nominal capacity
	// in the overload phase; the firehose offers twice that.
	OverloadCapacityPerSec float64 `json:"overload_capacity_per_sec"`
	OverloadSeconds        float64 `json:"overload_seconds"`
	OverloadMaxBacklog     int     `json:"overload_max_backlog"`
}

// steadyReport is the headline number: sustained classified activities/sec
// with the firehose, spooler, and classifier all keeping up.
type steadyReport struct {
	Activities        int     `json:"activities"`
	WallMs            float64 `json:"wall_ms"`
	ActivitiesPerSec  float64 `json:"activities_per_sec"`
	Shed              int64   `json:"shed"`
	Spilled           int64   `json:"spilled"`
	ByteIdentical     bool    `json:"byte_identical"`
	LiveAccuracy      float64 `json:"live_accuracy"`
	ClassifiedBatches int     `json:"classified_batches"`
}

// overloadReport is the graceful-degradation evidence at 2x capacity.
type overloadReport struct {
	Offered        int     `json:"offered"`
	OfferedPerSec  float64 `json:"offered_per_sec"`
	Accepted       int64   `json:"accepted"`
	Shed           int64   `json:"shed"`
	Spilled        int64   `json:"spilled"`
	Replayed       int64   `json:"replayed"`
	MaxBacklogSeen int     `json:"max_backlog_seen"`
	// BacklogBounded: the backlog never exceeded its configured bound — the
	// memory-not-OOM claim.
	BacklogBounded bool `json:"backlog_bounded"`
	// RecoveredAll: after the load dropped, every accepted activity ended
	// classified (spill fully replayed).
	RecoveredAll  bool    `json:"recovered_all"`
	DrainMs       float64 `json:"drain_ms"`
	ByteIdentical bool    `json:"byte_identical"`
}

// report is the BENCH_ingest.json schema.
type report struct {
	Config   benchConfig    `json:"config"`
	Steady   steadyReport   `json:"steady"`
	Overload overloadReport `json:"overload"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ingestbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "smoke-scale run (seconds; used by CI)")
		out   = flag.String("out", "BENCH_ingest.json", "write the JSON report to this path")
		seed  = flag.Int64("seed", 17, "random seed for the synthetic firehose")

		target    = flag.String("target", "", "firehose-client mode: stream at this elevingest base URL instead of benchmarking")
		n         = flag.Int("n", 400, "client mode: activities to stream")
		rate      = flag.Float64("rate", 120, "client mode: offered activities/sec")
		chunk     = flag.Int("chunk", 10, "client mode: activities per POST")
		ndjsonOut = flag.String("ndjson-out", "", "client mode: also write the generated firehose to this NDJSON file")
		wait      = flag.Duration("wait", 2*time.Minute, "client mode: how long to wait for the results ledger to catch up")
	)
	flag.Parse()

	if *target != "" {
		return runClient(*target, *n, *seed, *rate, *chunk, *ndjsonOut, *wait)
	}

	cfg := benchConfig{
		Quick:                  *quick,
		Activities:             2000,
		Seed:                   *seed,
		OverloadCapacityPerSec: 400,
		OverloadSeconds:        4,
		OverloadMaxBacklog:     256,
	}
	if *quick {
		cfg.Activities = 400
		cfg.OverloadSeconds = 2
		// Small enough that a 2-second 2x burst actually overflows it — the
		// quick run must still pin shed-at-the-door behaviour.
		cfg.OverloadMaxBacklog = 64
	}

	fmt.Printf("training TM-1 attack model (seed %d)...\n", cfg.Seed)
	attack, err := trainAttack(cfg.Seed)
	if err != nil {
		return err
	}
	stream, err := generate(cfg.Activities, cfg.Seed)
	if err != nil {
		return err
	}

	rep := report{Config: cfg}
	if rep.Steady, err = benchSteady(cfg, attack, stream); err != nil {
		return err
	}
	fmt.Printf("steady:   %d activities in %.0f ms -> %.0f activities/sec (identical: %v, live accuracy %.2f)\n",
		rep.Steady.Activities, rep.Steady.WallMs, rep.Steady.ActivitiesPerSec,
		rep.Steady.ByteIdentical, rep.Steady.LiveAccuracy)

	if rep.Overload, err = benchOverload(cfg, attack, stream); err != nil {
		return err
	}
	fmt.Printf("overload: offered %d at %.0f/s, accepted %d, shed %d, spilled %d, replayed %d (bounded: %v, recovered: %v, identical: %v)\n",
		rep.Overload.Offered, rep.Overload.OfferedPerSec, rep.Overload.Accepted,
		rep.Overload.Shed, rep.Overload.Spilled, rep.Overload.Replayed,
		rep.Overload.BacklogBounded, rep.Overload.RecoveredAll, rep.Overload.ByteIdentical)

	blob, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		return err
	}
	err = durable.WriteFileAtomic(*out, 0o644, func(w io.Writer) error {
		_, werr := w.Write(append(blob, '\n'))
		return werr
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// trainAttack trains the TM-1 text attack (mlp) the serving tier loads.
func trainAttack(seed int64) (*elevprivacy.TextAttack, error) {
	d, err := elevprivacy.NewUserSpecificDataset(elevprivacy.DatasetConfig{
		Scale:          0.05,
		ProfileSamples: 80,
		MinPerClass:    10,
		Seed:           seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierMLP)
	cfg.Seed = seed
	return elevprivacy.TrainTextAttack(d, cfg)
}

// generate materializes n firehose envelopes from the streaming generator.
func generate(n int, seed int64) ([]ingest.Envelope, error) {
	gen, err := activity.NewGenerator(nil, activity.DefaultAthleteConfig(), seed)
	if err != nil {
		return nil, err
	}
	out := make([]ingest.Envelope, 0, n)
	for i := 0; i < n; i++ {
		act, err := gen.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, ingest.Envelope{ID: act.Name, Region: act.Region, Elevations: act.Elevations})
	}
	return out, nil
}

// baselineNDJSON computes the offline results dump for the stream: dedupe
// keep-first, sort by ID, one batch prediction — what /ingest/results must
// equal byte for byte.
func baselineNDJSON(attack *elevprivacy.TextAttack, stream []ingest.Envelope) ([]byte, error) {
	seen := map[string][]float64{}
	var ids []string
	for _, e := range stream {
		if _, dup := seen[e.ID]; dup {
			continue
		}
		seen[e.ID] = e.Elevations
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	profiles := make([][]float64, len(ids))
	for i, id := range ids {
		profiles[i] = seen[id]
	}
	preds, err := attack.PredictLocations(profiles)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	for i, id := range ids {
		line, err := json.Marshal(ingest.ResultLine{ID: id, Predicted: preds[i]})
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// attackClassifier adapts the attack to the pipeline's stage interface.
type attackClassifier struct{ attack *elevprivacy.TextAttack }

func (c *attackClassifier) ClassifyBatch(profiles [][]float64) ([]string, error) {
	return c.attack.PredictLocations(profiles)
}

func quietLogf(string, ...any) {}

// spawn serves handler on a fresh loopback listener.
func spawn(handler http.Handler) (*http.Server, string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(lis) }()
	return srv, "http://" + lis.Addr().String(), nil
}

func encodeChunk(envs []ingest.Envelope) ([]byte, error) {
	var buf bytes.Buffer
	for _, e := range envs {
		line, err := ingest.EncodeLine(e)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
	}
	return buf.Bytes(), nil
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func stats(baseURL string) (ingest.Stats, error) {
	var st ingest.Stats
	blob, err := fetch(baseURL + "/ingest/stats")
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(blob, &st)
}

// benchSteady blasts the whole firehose over HTTP as fast as the server
// accepts it and times first-byte-to-last-classification.
func benchSteady(cfg benchConfig, attack *elevprivacy.TextAttack, stream []ingest.Envelope) (steadyReport, error) {
	dir, err := os.MkdirTemp("", "ingestbench-steady-*")
	if err != nil {
		return steadyReport{}, err
	}
	defer os.RemoveAll(dir)

	p, err := ingest.Open(dir, ingest.Config{Logf: quietLogf}, &attackClassifier{attack})
	if err != nil {
		return steadyReport{}, err
	}
	srv, url, err := spawn(ingest.NewServer(p, ingest.WithLogf(quietLogf)).Handler())
	if err != nil {
		return steadyReport{}, err
	}
	defer srv.Close()

	const chunkSize = 100
	start := time.Now()
	for at := 0; at < len(stream); at += chunkSize {
		end := at + chunkSize
		if end > len(stream) {
			end = len(stream)
		}
		body, err := encodeChunk(stream[at:end])
		if err != nil {
			return steadyReport{}, err
		}
		resp, err := http.Post(url+"/ingest", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			return steadyReport{}, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return steadyReport{}, fmt.Errorf("steady upload: %s", resp.Status)
		}
	}
	if err := waitResults(url, len(stream), 5*time.Minute); err != nil {
		return steadyReport{}, err
	}
	wall := time.Since(start)

	dump, err := fetch(url + "/ingest/results")
	if err != nil {
		return steadyReport{}, err
	}
	want, err := baselineNDJSON(attack, stream)
	if err != nil {
		return steadyReport{}, err
	}

	// Live accuracy: predictions vs the ground-truth regions the synthetic
	// firehose carries — evidence the live path runs the real attack, not a
	// stub.
	byID := map[string]string{}
	for _, e := range stream {
		byID[e.ID] = e.Region
	}
	match, total := 0, 0
	sc := bufio.NewScanner(bytes.NewReader(dump))
	for sc.Scan() {
		var rl ingest.ResultLine
		if err := json.Unmarshal(sc.Bytes(), &rl); err != nil {
			return steadyReport{}, err
		}
		total++
		if byID[rl.ID] == rl.Predicted {
			match++
		}
	}
	accuracy := 0.0
	if total > 0 {
		accuracy = float64(match) / float64(total)
	}

	st := p.Stats()
	if err := drainPipeline(p); err != nil {
		return steadyReport{}, err
	}
	return steadyReport{
		Activities:        len(stream),
		WallMs:            float64(wall.Microseconds()) / 1e3,
		ActivitiesPerSec:  float64(len(stream)) / wall.Seconds(),
		Shed:              st.Shed,
		Spilled:           st.Spilled,
		ByteIdentical:     bytes.Equal(dump, want),
		LiveAccuracy:      accuracy,
		ClassifiedBatches: total,
	}, nil
}

// benchOverload throttles the classifier to a known capacity, offers twice
// that for a fixed window, and verifies shed-not-collapse: 429s at the
// door, backlog bounded, and full spill replay once the load stops.
func benchOverload(cfg benchConfig, attack *elevprivacy.TextAttack, stream []ingest.Envelope) (overloadReport, error) {
	dir, err := os.MkdirTemp("", "ingestbench-overload-*")
	if err != nil {
		return overloadReport{}, err
	}
	defer os.RemoveAll(dir)

	// Stall every batch: capacity = MaxBatch / stall.
	const maxBatch = 8
	stall := time.Duration(float64(maxBatch) / cfg.OverloadCapacityPerSec * float64(time.Second))
	cls := ingest.WithFaults(&attackClassifier{attack}, ingest.FaultConfig{
		Seed: cfg.Seed, StallProb: 1, Stall: stall,
	})
	p, err := ingest.Open(dir, ingest.Config{
		Logf:       quietLogf,
		SpoolDepth: 32,
		MaxBatch:   maxBatch,
		MaxBacklog: cfg.OverloadMaxBacklog,
	}, cls)
	if err != nil {
		return overloadReport{}, err
	}
	srv, url, err := spawn(ingest.NewServer(p, ingest.WithLogf(quietLogf)).Handler())
	if err != nil {
		return overloadReport{}, err
	}
	defer srv.Close()

	offeredRate := 2 * cfg.OverloadCapacityPerSec
	interval := time.Duration(float64(time.Second) / offeredRate)
	deadline := time.Now().Add(time.Duration(cfg.OverloadSeconds * float64(time.Second)))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var offered []ingest.Envelope
	maxBacklog := 0
	i := 0
	for time.Now().Before(deadline) && i < len(stream) {
		<-ticker.C
		body, err := encodeChunk(stream[i : i+1])
		if err != nil {
			return overloadReport{}, err
		}
		resp, err := http.Post(url+"/ingest", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			return overloadReport{}, err
		}
		io.Copy(io.Discard, resp.Body)
		code := resp.StatusCode
		resp.Body.Close()
		switch code {
		case http.StatusOK:
			offered = append(offered, stream[i])
		case http.StatusTooManyRequests:
			// Shed at the door: the activity was never accepted. The real
			// client would back off by Retry-After; the bench keeps hammering
			// on purpose.
		default:
			return overloadReport{}, fmt.Errorf("overload upload: status %d", code)
		}
		if st, err := stats(url); err == nil && st.Backlog > maxBacklog {
			maxBacklog = st.Backlog
		}
		i++
	}

	// Load drops: wait for the replayer to push everything accepted through
	// the throttled classifier.
	drainStart := time.Now()
	if err := waitResults(url, len(offered), 5*time.Minute); err != nil {
		return overloadReport{}, err
	}
	drainMs := float64(time.Since(drainStart).Microseconds()) / 1e3

	dump, err := fetch(url + "/ingest/results")
	if err != nil {
		return overloadReport{}, err
	}
	want, err := baselineNDJSON(attack, offered)
	if err != nil {
		return overloadReport{}, err
	}

	st := p.Stats()
	if err := drainPipeline(p); err != nil {
		return overloadReport{}, err
	}
	return overloadReport{
		Offered:        i,
		OfferedPerSec:  offeredRate,
		Accepted:       st.Accepted,
		Shed:           st.Shed,
		Spilled:        st.Spilled,
		Replayed:       st.Replayed,
		MaxBacklogSeen: maxBacklog,
		BacklogBounded: maxBacklog <= cfg.OverloadMaxBacklog,
		RecoveredAll:   st.Results == len(offered) && st.Accepted == int64(len(offered)),
		DrainMs:        drainMs,
		ByteIdentical:  bytes.Equal(dump, want),
	}, nil
}

func drainPipeline(p *ingest.Pipeline) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	return p.Drain(ctx)
}

// waitResults polls the stats endpoint until the results ledger holds n
// activities.
func waitResults(baseURL string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := stats(baseURL)
		if err == nil && st.Results >= n {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %d results", n)
}

// runClient is the smoke script's firehose: stream n activities at rate,
// riding out restarts with a generously retrying client, then wait for the
// results ledger to hold everything.
func runClient(target string, n int, seed int64, rate float64, chunk int, ndjsonOut string, wait time.Duration) error {
	stream, err := generate(n, seed)
	if err != nil {
		return err
	}
	if ndjsonOut != "" {
		err := durable.WriteFileAtomic(ndjsonOut, 0o644, func(w io.Writer) error {
			for _, e := range stream {
				line, err := ingest.EncodeLine(e)
				if err != nil {
					return err
				}
				if _, err := w.Write(line); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// The client must survive a SIGKILL + restart window mid-stream:
	// generous attempts, capped backoff, and replayable bodies (bytes.Reader
	// sets GetBody) mean a killed connection or a down server is just
	// another retry.
	client := httpx.NewClient(&http.Client{Timeout: 30 * time.Second},
		httpx.WithPolicy(httpx.Policy{
			MaxAttempts: 60,
			BaseDelay:   100 * time.Millisecond,
			Multiplier:  1.5,
			MaxDelay:    2 * time.Second,
			Jitter:      0.2,
		}))

	if chunk < 1 {
		chunk = 1
	}
	interval := time.Duration(float64(chunk) / rate * float64(time.Second))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	target = strings.TrimRight(target, "/")

	sent := 0
	for at := 0; at < len(stream); at += chunk {
		<-ticker.C
		end := at + chunk
		if end > len(stream) {
			end = len(stream)
		}
		body, err := encodeChunk(stream[at:end])
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, target+"/ingest", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("chunk at %d: %w", at, err)
		}
		io.Copy(io.Discard, resp.Body)
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusOK {
			return fmt.Errorf("chunk at %d: status %d after retries", at, code)
		}
		sent = end
	}
	fmt.Printf("streamed %d activities to %s\n", sent, target)

	if err := waitResults(target, n, wait); err != nil {
		return err
	}
	st, err := stats(target)
	if err != nil {
		return err
	}
	fmt.Printf("server ledger: results=%d accepted=%d duplicates=%d spilled=%d replayed=%d restored=%d\n",
		st.Results, st.Accepted, st.Duplicates, st.Spilled, st.Replayed, st.Restored)
	return nil
}
