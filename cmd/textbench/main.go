// Command textbench measures the text-attack featurization pipeline —
// legacy string+dense path against the token+sparse path — on a synthetic
// corpus at the scale of the paper's Table II mined datasets (hundreds of
// profiles, precision-3 discretization), and records ns/sample and
// B/sample per stage in a JSON report.
//
// Usage:
//
//	textbench                          # full Table-II-scale run
//	textbench -quick                   # smoke-scale run (CI)
//	textbench -out BENCH_textpipeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime/pprof"
	"sort"
	"strings"
	"testing"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/ml/svm"
	"elevprivacy/internal/obs"
	"elevprivacy/internal/textrep"
)

// corpusConfig describes the synthetic workload.
type corpusConfig struct {
	Samples   int `json:"samples"`
	Points    int `json:"points"`
	Classes   int `json:"classes"`
	Precision int `json:"precision"`
}

// stage compares the legacy and token paths for one pipeline stage.
type stage struct {
	LegacyNsPerSample float64 `json:"legacy_ns_per_sample"`
	TokenNsPerSample  float64 `json:"token_ns_per_sample"`
	LegacyBPerSample  float64 `json:"legacy_b_per_sample"`
	TokenBPerSample   float64 `json:"token_b_per_sample"`
	Speedup           float64 `json:"speedup"`
	AllocRatio        float64 `json:"alloc_ratio"`
}

// report is the BENCH_textpipeline.json schema.
type report struct {
	Corpus       corpusConfig     `json:"corpus"`
	Features     int              `json:"features"`
	UniqueValues int              `json:"unique_values"`
	Stages       map[string]stage `json:"stages"`
	TrainNsPer   float64          `json:"train_ns_per_sample"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "textbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick      = flag.Bool("quick", false, "smoke-scale corpus (seconds; used by CI)")
		out        = flag.String("out", "BENCH_textpipeline.json", "report path")
		seed       = flag.Int64("seed", 1, "corpus random seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this path")
		metricsOut = flag.String("metrics-out", "", "also write the bench numbers as Prometheus text to this path")
	)
	flag.Parse()

	if *cpuprofile != "" {
		// The profile streams for the whole run; the atomic file becomes
		// visible only once profiling stops cleanly.
		f, err := durable.CreateAtomic(*cpuprofile, 0o644)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "textbench: cpuprofile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Abort()
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cc := corpusConfig{Samples: 500, Points: 200, Classes: 4, Precision: 3}
	if *quick {
		cc = corpusConfig{Samples: 60, Points: 60, Classes: 3, Precision: 3}
	}
	signals, y := syntheticCorpus(cc, *seed)

	cfg := textrep.DefaultPipelineConfig()
	cfg.Discretizer = nil
	cfg.Precision = cc.Precision
	pipe, err := textrep.NewPipeline(signals, cfg)
	if err != nil {
		return err
	}
	rep := report{
		Corpus:       cc,
		Features:     pipe.Dim(),
		UniqueValues: pipe.Encoder().UniqueValues(),
		Stages:       map[string]stage{},
	}

	enc := pipe.Encoder()
	vocab := pipe.Vocabulary()
	le, err := newLegacyEncoder(pipe, textrep.PrecisionDiscretizer(cc.Precision))
	if err != nil {
		return err
	}

	// Stage 1 — encode: discretized signal to text vs to rank-id tokens.
	rep.Stages["encode"] = compare(cc.Samples,
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, sig := range signals {
					_ = le.Encode(sig)
				}
			}
		},
		func(b *testing.B) {
			var tokens []uint32
			for i := 0; i < b.N; i++ {
				for _, sig := range signals {
					tokens = enc.EncodeTokens(sig, tokens)
				}
			}
		})

	// Stage 2 — vectorize: per-sample feature extraction. Legacy builds the
	// word string and counts substring n-grams into a dense row; the token
	// path scans rank ids into a reused sparse row.
	tv, err := vocab.NewTokenVectorizer()
	if err != nil {
		return err
	}
	denseRow := make([]float64, pipe.Dim())
	rep.Stages["vectorize"] = compare(cc.Samples,
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, sig := range signals {
					vocab.VectorizeInto(le.Encode(sig), denseRow)
				}
			}
		},
		func(b *testing.B) {
			var tokens []uint32
			var cols []int32
			var vals []float64
			for i := 0; i < b.N; i++ {
				for _, sig := range signals {
					tokens = enc.EncodeTokens(sig, tokens)
					cols, vals = tv.AppendSparse(tokens, cols[:0], vals[:0])
				}
			}
		})

	// Stage 3 — featurize batch: the whole corpus into one feature matrix.
	// Legacy is the pre-token pipeline shape: string vectorize into dense
	// rows. The new path is FeaturesAllSparse (parallel token CSR).
	rep.Stages["featurize_batch"] = compare(cc.Samples,
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = legacyFeaturesAll(pipe, le, signals)
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = pipe.FeaturesAllSparse(signals)
			}
		})

	// Stage 4 — train: classifier fitting is dense either way (the Fit
	// contract); recorded for context, not a legacy/new comparison.
	dense := pipe.FeaturesAll(signals)
	sparse := pipe.FeaturesAllSparse(signals)
	trainRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clf, err := svm.New(svm.DefaultConfig(cc.Classes))
			if err != nil {
				b.Fatal(err)
			}
			if err := clf.Fit(dense.RowSlices(), y); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.TrainNsPer = float64(trainRes.NsPerOp()) / float64(cc.Samples)

	// Stage 5 — predict-batch: scoring the corpus with a trained SVM,
	// dense batch kernel vs CSR kernel.
	clf, err := svm.New(svm.DefaultConfig(cc.Classes))
	if err != nil {
		return err
	}
	if err := clf.Fit(dense.RowSlices(), y); err != nil {
		return err
	}
	rep.Stages["predict_batch"] = compare(cc.Samples,
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := clf.PredictBatch(dense); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := clf.PredictBatchSparse(sparse); err != nil {
					b.Fatal(err)
				}
			}
		})

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	err = durable.WriteFileAtomic(*out, 0o644, func(w io.Writer) error {
		_, werr := w.Write(append(blob, '\n'))
		return werr
	})
	if err != nil {
		return err
	}

	publishReport(rep)
	if *metricsOut != "" {
		err := durable.WriteFileAtomic(*metricsOut, 0o644, func(w io.Writer) error {
			return obs.DefaultRegistry().WritePrometheus(w)
		})
		if err != nil {
			return err
		}
	}

	fmt.Printf("corpus: %d samples x %d points, %d classes, precision %d (%d unique values, %d features)\n",
		cc.Samples, cc.Points, cc.Classes, cc.Precision, rep.UniqueValues, rep.Features)
	for _, name := range []string{"encode", "vectorize", "featurize_batch", "predict_batch"} {
		s := rep.Stages[name]
		fmt.Printf("%-16s legacy %10.0f ns/sample %9.0f B/sample | token %10.0f ns/sample %9.0f B/sample | %5.2fx faster, %5.1fx less alloc\n",
			name, s.LegacyNsPerSample, s.LegacyBPerSample, s.TokenNsPerSample, s.TokenBPerSample, s.Speedup, s.AllocRatio)
	}
	fmt.Printf("%-16s %10.0f ns/sample (dense rows; identical on both paths)\n", "train", rep.TrainNsPer)
	fmt.Printf("report written to %s\n", *out)
	return nil
}

// publishReport routes the BENCH report through the metrics registry as
// gauges, so the same numbers that land in BENCH_textpipeline.json are
// scrapeable (and renderable with -metrics-out) under the standard naming
// scheme, one series per stage and path.
func publishReport(rep report) {
	for name, s := range rep.Stages {
		obs.GetGauge(`elevpriv_textbench_stage_ns_per_sample{stage="` + name + `",path="legacy"}`).Set(s.LegacyNsPerSample)
		obs.GetGauge(`elevpriv_textbench_stage_ns_per_sample{stage="` + name + `",path="token"}`).Set(s.TokenNsPerSample)
		obs.GetGauge(`elevpriv_textbench_stage_b_per_sample{stage="` + name + `",path="legacy"}`).Set(s.LegacyBPerSample)
		obs.GetGauge(`elevpriv_textbench_stage_b_per_sample{stage="` + name + `",path="token"}`).Set(s.TokenBPerSample)
		obs.GetGauge(`elevpriv_textbench_stage_speedup{stage="` + name + `"}`).Set(s.Speedup)
	}
	obs.GetGauge("elevpriv_textbench_train_ns_per_sample").Set(rep.TrainNsPer)
	obs.GetGauge("elevpriv_textbench_corpus_samples").Set(float64(rep.Corpus.Samples))
	obs.GetGauge("elevpriv_textbench_features").Set(float64(rep.Features))
}

// compare benchmarks a legacy and a token implementation of one stage,
// where each b.N iteration processes the whole corpus, and normalizes to
// per-sample cost. Each side keeps the fastest of three runs — the
// least-interference estimate on a shared machine.
func compare(samples int, legacy, token func(b *testing.B)) stage {
	l := bestOf(3, legacy)
	n := bestOf(3, token)
	s := stage{
		LegacyNsPerSample: float64(l.NsPerOp()) / float64(samples),
		TokenNsPerSample:  float64(n.NsPerOp()) / float64(samples),
		LegacyBPerSample:  float64(l.AllocedBytesPerOp()) / float64(samples),
		TokenBPerSample:   float64(n.AllocedBytesPerOp()) / float64(samples),
	}
	if s.TokenNsPerSample > 0 {
		s.Speedup = s.LegacyNsPerSample / s.TokenNsPerSample
	}
	if s.TokenBPerSample > 0 {
		s.AllocRatio = s.LegacyBPerSample / s.TokenBPerSample
	} else if s.LegacyBPerSample > 0 {
		s.AllocRatio = s.LegacyBPerSample // zero-alloc token path: report legacy bytes
	}
	return s
}

// bestOf returns the run with the lowest ns/op out of k benchmark runs.
func bestOf(k int, f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < k; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// legacyEncoder replicates the pre-token encoder byte for byte: a
// map[float64]string word table probed per point, a strings.Builder per
// signal, and a binary-search nearest fallback for unseen values. It is
// rebuilt here (rather than kept in the library) so the benchmark's
// baseline stays frozen at the pre-optimization implementation.
type legacyEncoder struct {
	disc       textrep.Discretizer
	words      map[float64]string
	sortedVals []float64
	wordSize   int
}

// newLegacyEncoder mirrors a fitted pipeline's encoder into the legacy
// shape; the sorted value table comes out of the pipeline's persistence
// form, the words from the encoder's rank accessor.
func newLegacyEncoder(p *textrep.Pipeline, disc textrep.Discretizer) (*legacyEncoder, error) {
	blob, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	var saved struct {
		Values []float64 `json:"values"`
	}
	if err := json.Unmarshal(blob, &saved); err != nil {
		return nil, err
	}
	le := &legacyEncoder{
		disc:       disc,
		words:      make(map[float64]string, len(saved.Values)),
		sortedVals: saved.Values,
		wordSize:   p.Encoder().WordSize(),
	}
	for i, v := range saved.Values {
		le.words[v] = p.Encoder().Word(i)
	}
	return le, nil
}

func (e *legacyEncoder) Encode(signal []float64) string {
	var sb strings.Builder
	sb.Grow(len(signal) * e.wordSize)
	for _, raw := range signal {
		v := e.disc(raw)
		word, ok := e.words[v]
		if !ok {
			word = e.words[e.nearest(v)]
		}
		sb.WriteString(word)
	}
	return sb.String()
}

func (e *legacyEncoder) nearest(v float64) float64 {
	i := sort.SearchFloat64s(e.sortedVals, v)
	switch {
	case i == 0:
		return e.sortedVals[0]
	case i == len(e.sortedVals):
		return e.sortedVals[len(e.sortedVals)-1]
	}
	lo, hi := e.sortedVals[i-1], e.sortedVals[i]
	if math.Abs(v-lo) <= math.Abs(hi-v) {
		return lo
	}
	return hi
}

// legacyFeaturesAll reproduces the pre-token batch featurizer: every
// signal string-encoded and counted into a dense matrix row, serially.
func legacyFeaturesAll(p *textrep.Pipeline, le *legacyEncoder, signals [][]float64) *linalg.Matrix {
	out := linalg.NewMatrix(len(signals), p.Dim())
	for i, sig := range signals {
		p.Vocabulary().VectorizeInto(le.Encode(sig), out.Row(i))
	}
	return out
}

// syntheticCorpus generates elevation profiles the way mined data looks at
// the paper's precision-3 discretization (Table II): millimetre-resolution
// elevations are almost all distinct, so each profile is a bounded random
// walk around its class's base altitude. The resulting vocabulary is
// dominated by order-1 grams over tens of thousands of unique values —
// exactly the regime the mined-corpus text attack operates in.
func syntheticCorpus(cc corpusConfig, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	signals := make([][]float64, cc.Samples)
	y := make([]int, cc.Samples)
	for i := range signals {
		class := i % cc.Classes
		base := 20 + float64(class)*150
		elev := base + rng.Float64()*30
		sig := make([]float64, cc.Points)
		for j := range sig {
			elev += rng.NormFloat64() * 1.5
			if elev < base-40 {
				elev = base - 40
			}
			sig[j] = elev
		}
		signals[i] = sig
		y[i] = class
	}
	return signals, y
}
