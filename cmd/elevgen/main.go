// Command elevgen synthesizes the paper's three datasets and writes them
// to disk: the user-specific dataset as GPX activity files (the paper's
// intermediate format) and the mined city/borough datasets as JSON.
//
// Usage:
//
//	elevgen -out ./data                 # all three datasets, laptop scale
//	elevgen -out ./data -scale 1.0      # full paper-size datasets
//	elevgen -out ./data -dataset city   # one dataset only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"elevprivacy"
	"elevprivacy/internal/durable"
	"elevprivacy/internal/gpx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "data", "output directory")
		scale   = flag.Float64("scale", 0.05, "fraction of the paper's class sizes (1.0 = Tables I-III)")
		samples = flag.Int("samples", 100, "elevation samples per mined profile")
		seed    = flag.Int64("seed", 1, "random seed")
		which   = flag.String("dataset", "all", "dataset to generate: user, city, borough, or all")
	)
	flag.Parse()

	cfg := elevprivacy.DatasetConfig{
		Scale:          *scale,
		ProfileSamples: *samples,
		MinPerClass:    8,
		Seed:           *seed,
	}

	if *which == "user" || *which == "all" {
		if err := writeUserGPX(filepath.Join(*out, "user-specific"), cfg); err != nil {
			return err
		}
	}
	if *which == "city" || *which == "all" {
		d, err := elevprivacy.NewCityLevelDataset(cfg)
		if err != nil {
			return err
		}
		if err := writeJSON(filepath.Join(*out, "city-level.json"), d); err != nil {
			return err
		}
	}
	if *which == "borough" || *which == "all" {
		for _, city := range elevprivacy.BoroughCities(elevprivacy.World()) {
			d, err := elevprivacy.NewBoroughDataset(city.Abbrev, cfg)
			if err != nil {
				return err
			}
			name := fmt.Sprintf("borough-%s.json", city.Abbrev)
			if err := writeJSON(filepath.Join(*out, name), d); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeUserGPX writes every simulated activity as its own GPX file, the
// format the paper converts all collected activities to.
func writeUserGPX(dir string, cfg elevprivacy.DatasetConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d, err := elevprivacy.NewUserSpecificDataset(cfg)
	if err != nil {
		return err
	}
	start := time.Date(2019, 6, 1, 7, 0, 0, 0, time.UTC)
	for i := range d.Samples {
		s := &d.Samples[i]
		doc, err := gpx.FromActivity(s.ID, "run", s.Path, s.Elevations,
			start.Add(time.Duration(i)*24*time.Hour), 10)
		if err != nil {
			return fmt.Errorf("building gpx for %s: %w", s.ID, err)
		}
		err = durable.WriteFileAtomic(filepath.Join(dir, s.ID+".gpx"), 0o644, func(w io.Writer) error {
			return gpx.Write(w, doc)
		})
		if err != nil {
			return fmt.Errorf("writing %s: %w", s.ID, err)
		}
	}
	fmt.Printf("wrote %d GPX activities to %s\n", d.Len(), dir)
	return nil
}

// writeJSON dumps a dataset as a JSON array.
func writeJSON(path string, d *elevprivacy.Dataset) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	err := durable.WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		return elevprivacy.SaveDatasetJSON(w, d)
	})
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	fmt.Printf("wrote %d samples to %s\n", d.Len(), path)
	return nil
}
