// Command elevobs is the fleet observability daemon: the one process that
// sees the whole deployment instead of one instance of it.
//
// It has two modes. Merge mode joins per-process Chrome trace files (each
// written by a -trace-out flag somewhere in the fleet) into a single
// cross-process trace with one lane per process and client→server spans
// parent-linked across lanes:
//
//	elevobs -merge-traces fleet.json shard0.json shard1.json miner.json
//
// Scrape mode federates live instances: it polls every target's /healthz
// (identity) and /metrics.json (the obs.Dump wire format — no Prometheus
// text parser anywhere), maintains a merged registry with instance-labeled
// series plus fleet-summed counters and histograms, and serves the fleet
// view:
//
//	elevobs -targets 127.0.0.1:7080,127.0.0.1:7081 -listen :9090 \
//	        -slo slo.json -alert-dir alerts -profile-seconds 2
//
//	/metrics       merged Prometheus exposition of the whole fleet
//	/metrics.json  the same as an obs.Dump
//	/fleet.json    snapshot: per-instance counters, fleet sums, rate deltas
//	/alerts.json   every SLO alert fired so far
//
// With -slo, a declarative rule set (p99 latency, error/shed ratios, cache
// hit rates) is evaluated over every scrape window with burn-rate
// accounting; a sustained breach logs a structured alert, writes it to
// -alert-dir, and captures a CPU profile from the offending instance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/fleetobs"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
	"elevprivacy/internal/obsboot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevobs:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mergeOut    = flag.String("merge-traces", "", "merge the positional per-process trace files into this Chrome trace (merge mode)")
		targets     = flag.String("targets", "", "comma-separated host:port scrape targets (scrape mode)")
		listen      = flag.String("listen", ":9090", "serve the fleet view on this address")
		interval    = flag.Duration("interval", time.Second, "scrape period")
		rounds      = flag.Int("rounds", 0, "stop after this many scrape rounds (0 = run until interrupted)")
		sloPath     = flag.String("slo", "", "SLO spec JSON; enables the watchdog")
		alertDir    = flag.String("alert-dir", "", "directory for alert JSON and captured profiles (empty = in-memory alerts only)")
		profileSecs = flag.Int("profile-seconds", 2, "CPU profile length captured from a breaching instance (0 = no capture)")
	)
	obsFlags := obsboot.Register(nil)
	flag.Parse()

	tel, err := obsFlags.Start("elevobs")
	if err != nil {
		return err
	}
	defer func() {
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "elevobs:", err)
		}
	}()

	if *mergeOut != "" {
		return mergeMode(*mergeOut, flag.Args())
	}
	if *targets == "" {
		return fmt.Errorf("need -merge-traces or -targets; see -h")
	}
	return scrapeMode(splitTargets(*targets), *listen, *interval, *rounds, *sloPath, *alertDir, *profileSecs)
}

// mergeMode joins trace files and prints the merge summary as JSON.
func mergeMode(out string, paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-merge-traces needs trace files as arguments")
	}
	var sum fleetobs.MergeSummary
	err := durable.WriteFileAtomic(out, 0o644, func(w io.Writer) error {
		var err error
		sum, err = fleetobs.MergeTraces(w, paths)
		return err
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(struct {
		fleetobs.MergeSummary
		Out string `json:"out"`
	}{sum, out})
}

// scrapeMode runs the federation loop and serves the fleet view.
func scrapeMode(targets []string, listen string, interval time.Duration, rounds int, sloPath, alertDir string, profileSecs int) error {
	if len(targets) == 0 {
		return fmt.Errorf("-targets is empty")
	}
	if interval <= 0 {
		return fmt.Errorf("-interval must be positive, got %v", interval)
	}
	fed := fleetobs.NewFederator(targets, fleetobs.FederatorConfig{})

	var dog *fleetobs.Watchdog
	if sloPath != "" {
		f, err := os.Open(sloPath)
		if err != nil {
			return err
		}
		spec, err := fleetobs.ParseSpec(f)
		f.Close()
		if err != nil {
			return err
		}
		if alertDir != "" {
			if err := os.MkdirAll(alertDir, 0o755); err != nil {
				return err
			}
		}
		dog = fleetobs.NewWatchdog(spec, fed)
		dog.AlertDir = alertDir
		dog.ProfileSeconds = profileSecs
		obs.DefaultLogger().Info("SLO watchdog armed",
			"rules", fmt.Sprint(len(spec.Rules)), "alert_dir", alertDir)
	}

	app := http.NewServeMux()
	// The merged registry is rebuilt per scrape round, so every request
	// fetches the current one instead of binding a handler to a stale
	// registry at startup.
	app.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fed.Merged().Handler().ServeHTTP(w, r)
	}))
	app.Handle("GET /metrics.json", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fed.Merged().JSONHandler().ServeHTTP(w, r)
	}))
	app.Handle("GET /fleet.json", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(fed.Snap())
	}))
	app.Handle("GET /alerts.json", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		alerts := []fleetobs.Alert{}
		if dog != nil {
			alerts = dog.Alerts()
		}
		_ = json.NewEncoder(w).Encode(alerts)
	}))
	// DisableMetrics keeps the mux's built-in /metrics off this port — the
	// fleet endpoints above are the product here, not elevobs's own registry
	// (that one is available via -metrics-addr like every other binary).
	srv := &http.Server{
		Addr:              listen,
		Handler:           httpx.NewServeMux(app, httpx.MuxConfig{Service: "elevobs", DisableMetrics: true}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	obs.DefaultLogger().Info("fleet view up", "addr", listen, "targets", strings.Join(targets, ","))

	shutdown := durable.NotifyShutdown(context.Background())
	defer shutdown.Stop()
	ctx := shutdown.Context()

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	done := 0
	for {
		snap := fed.ScrapeOnce(ctx)
		if dog != nil {
			dog.Evaluate(snap.Time)
		}
		done++
		if rounds > 0 && done >= rounds {
			break
		}
		select {
		case <-shutdown.Draining:
			goto out
		case err := <-errc:
			return err
		case <-ticker.C:
		}
	}
out:
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(sctx)
	up := 0
	for _, is := range fed.Snap().Instances {
		if is.Up {
			up++
		}
	}
	fmt.Printf("elevobs: %d scrape rounds over %d targets (%d up at exit)\n", done, len(targets), up)
	return nil
}

// splitTargets parses the -targets list, dropping empties.
func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}
