// Command elevingest serves the live-attack ingestion pipeline: an
// HTTP/NDJSON firehose of shared activities, spooled and batch-classified
// against a pre-trained attack model, with durable exactly-once delivery.
//
// Usage:
//
//	elevattack -tm 1 -scale 0.05 -classifier mlp -folds 2 -save attack.bin
//	elevingest -attack attack.bin -dir /var/lib/elevingest -addr :8090
//	curl -X POST --data-binary @activities.ndjson localhost:8090/ingest
//	curl localhost:8090/ingest/results     # NDJSON, sorted by activity ID
//	curl localhost:8090/ingest/stats
//
//	elevingest -attack attack.bin -offline activities.ndjson -out results.ndjson
//
// The offline mode classifies the same NDJSON in one batch through the same
// model and writes the same results format — the byte-identity baseline the
// crash-recovery smoke compares the live dump against.
//
// The first SIGINT/SIGTERM drains: the front door refuses new uploads (503),
// the spool flushes through the classifier, journals sync, and the process
// exits 0 with a summary. A second signal aborts the drain; whatever was
// accepted but not yet classified replays on the next start from the same
// -dir. SIGKILL is the same story minus the summary — that is the point.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"elevprivacy"
	"elevprivacy/internal/durable"
	"elevprivacy/internal/ingest"
	"elevprivacy/internal/obsboot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevingest:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8090", "serve the ingest API on this address")
		dir        = flag.String("dir", "", "pipeline state directory (journals live here; required to serve)")
		attackPath = flag.String("attack", "", "pre-trained attack model (elevattack -save); required")
		spool      = flag.Int("spool", 1024, "spool depth: activities queued between accept and classify")
		maxBatch   = flag.Int("max-batch", 256, "largest batch handed to the classifier")
		batchAge   = flag.Duration("batch-age", 50*time.Millisecond, "how long a partial batch waits for more rows")
		maxBacklog = flag.Int("max-backlog", 1<<16, "accepted-but-unclassified bound; past it uploads shed with 429")
		stageTO    = flag.Duration("stage-timeout", 5*time.Second, "classifier stage deadline (0 = none)")
		inflight   = flag.Int("max-inflight", ingest.DefaultMaxInFlight, "concurrent upload requests before 429 shedding (0 = unbounded)")
		reqTO      = flag.Duration("request-timeout", ingest.DefaultRequestTimeout, "per-request wall-clock bound (0 = none)")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget after the first signal")

		faultSeed      = flag.Int64("fault-seed", 1, "fault-injection schedule seed")
		faultStallProb = flag.Float64("fault-stall-prob", 0, "per-batch probability of stalling the classifier")
		faultStall     = flag.Duration("fault-stall", 200*time.Millisecond, "how long a stalled batch sleeps")
		faultFailProb  = flag.Float64("fault-fail-prob", 0, "per-batch probability of an injected classifier error")

		offline = flag.String("offline", "", "classify this NDJSON file in one offline batch instead of serving")
		outPath = flag.String("out", "", "offline mode: write results NDJSON to this path (atomic)")
	)
	obsFlags := obsboot.Register(nil)
	journalFlags := obsboot.RegisterJournal(nil, ingest.DefaultSyncEvery)
	flag.Parse()

	tel, err := obsFlags.Start("elevingest")
	if err != nil {
		return err
	}
	defer func() {
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "elevingest:", err)
		}
	}()

	if *attackPath == "" {
		return fmt.Errorf("-attack is required (train one with: elevattack -tm 1 -save attack.bin)")
	}
	attack, err := loadAttack(*attackPath)
	if err != nil {
		return err
	}

	if *offline != "" {
		if *outPath == "" {
			return fmt.Errorf("-offline requires -out")
		}
		return runOffline(attack, *offline, *outPath)
	}

	if *dir == "" {
		return fmt.Errorf("-dir is required to serve (it holds the intake and results journals)")
	}

	var cls ingest.Classifier = &attackClassifier{attack: attack}
	cls = ingest.WithFaults(cls, ingest.FaultConfig{
		Seed:      *faultSeed,
		StallProb: *faultStallProb,
		Stall:     *faultStall,
		FailProb:  *faultFailProb,
	})

	p, err := ingest.Open(*dir, ingest.Config{
		SpoolDepth:   *spool,
		MaxBatch:     *maxBatch,
		MaxBatchAge:  *batchAge,
		MaxBacklog:   *maxBacklog,
		StageTimeout: *stageTO,
		SyncEvery:    journalFlags.SyncEvery,
	}, cls)
	if err != nil {
		return err
	}
	if restored := p.Stats().Restored; restored > 0 {
		fmt.Printf("recovery: %d accepted-but-unclassified activities restored for replay\n", restored)
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: ingest.NewServer(p,
			ingest.WithMaxInFlight(*inflight),
			ingest.WithRequestTimeout(*reqTO),
		).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("ingest service on %s (state in %s)\n", *addr, *dir)

	shutdown := durable.NotifyShutdown(context.Background())
	defer shutdown.Stop()

	select {
	case err := <-errc:
		_ = p.Drain(context.Background())
		return err
	case <-shutdown.Draining:
	}

	// Phase one: stop the front door, then flush the spool through the
	// classifier under the drain budget. A second signal (or the budget
	// expiring) hard-stops; the intake journal keeps whatever was pending.
	fmt.Println("draining: refusing new uploads, flushing the spool")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	_ = srv.Shutdown(shutCtx)

	drainCtx, cancelDrain := context.WithTimeout(shutdown.Context(), *drainTO)
	defer cancelDrain()
	drainErr := p.Drain(drainCtx)

	st := p.Stats()
	fmt.Printf("drained: accepted=%d classified=%d spilled=%d replayed=%d shed=%d results=%d\n",
		st.Accepted, st.Classified, st.Spilled, st.Replayed, st.Shed, st.Results)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "elevingest: %v\n", drainErr)
	}
	return nil
}

// loadAttack reads a saved TextAttack model.
func loadAttack(path string) (*elevprivacy.TextAttack, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return elevprivacy.LoadTextAttack(f)
}

// attackClassifier adapts the batch text attack to the pipeline's stage
// interface. PredictLocations is row-independent, so predictions do not
// depend on how the stream was batched — the byte-identity guarantee rests
// on that.
type attackClassifier struct {
	attack *elevprivacy.TextAttack
}

func (c *attackClassifier) ClassifyBatch(profiles [][]float64) ([]string, error) {
	return c.attack.PredictLocations(profiles)
}

// runOffline is the baseline path: decode the whole firehose file, dedupe
// by ID keeping the first occurrence (exactly what the live pipeline's
// idempotency does), sort by ID, classify in one batch, dump NDJSON.
func runOffline(attack *elevprivacy.TextAttack, inPath, outPath string) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()

	lim := ingest.Limits{}
	seen := map[string]ingest.Envelope{}
	var ids []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), ingest.DefaultMaxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		env, err := ingest.DecodeLine(sc.Bytes(), lim)
		if err != nil {
			return fmt.Errorf("%s line %d: %w", inPath, lineNo, err)
		}
		if _, dup := seen[env.ID]; dup {
			continue
		}
		seen[env.ID] = env
		ids = append(ids, env.ID)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", inPath, err)
	}
	sort.Strings(ids)

	profiles := make([][]float64, len(ids))
	for i, id := range ids {
		profiles[i] = seen[id].Elevations
	}
	preds, err := attack.PredictLocations(profiles)
	if err != nil {
		return err
	}

	err = durable.WriteFileAtomic(outPath, 0o644, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		for i, id := range ids {
			line, err := json.Marshal(ingest.ResultLine{ID: id, Predicted: preds[i]})
			if err != nil {
				return err
			}
			bw.Write(line)
			bw.WriteByte('\n')
		}
		return bw.Flush()
	})
	if err != nil {
		return err
	}
	fmt.Printf("offline baseline: %d activities classified, results in %s\n", len(ids), outPath)
	return nil
}
