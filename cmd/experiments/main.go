// Command experiments regenerates the paper's tables and figures on the
// synthetic world and prints them as aligned text.
//
// Usage:
//
//	experiments                  # run everything at the default scale
//	experiments -quick           # smoke-scale run (minutes)
//	experiments -run tm3-text    # one experiment by name
//	experiments -list            # list experiment names
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof
//	experiments -checkpoint dir  # per-experiment checkpoints
//	experiments -checkpoint dir -resume   # replay finished tables, compute the rest
//
// With -checkpoint, every finished experiment's table is journaled under a
// key bound to the exact configuration; -resume replays those tables
// byte-identically and only computes what is missing. SIGINT/SIGTERM lets
// the experiment in flight finish, flushes the journal, and exits 0 with a
// partial summary; a second signal aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/experiments"
	"elevprivacy/internal/obsboot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick      = flag.Bool("quick", false, "smoke-scale configuration (minutes instead of tens of minutes)")
		list       = flag.Bool("list", false, "list experiment names and exit")
		only       = flag.String("run", "", "run a single experiment by name")
		seed       = flag.Int64("seed", 1, "global random seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit to this path")
		ckptDir    = flag.String("checkpoint", "", "directory for per-experiment checkpoints")
		resume     = flag.Bool("resume", false, "replay checkpointed experiments instead of starting fresh")
	)
	obsFlags := obsboot.Register(nil)
	flag.Parse()

	tel, err := obsFlags.Start("experiments")
	if err != nil {
		return err
	}
	defer func() {
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	if *cpuprofile != "" {
		// The profile streams for the whole run, so the atomic file commits
		// (and becomes visible) only after profiling stops cleanly.
		f, err := durable.CreateAtomic(*cpuprofile, 0o644)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Abort()
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC() // flush recently freed objects so the profile shows live heap
			err := durable.WriteFileAtomic(*memprofile, 0o644, func(w io.Writer) error {
				return pprof.WriteHeapProfile(w)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-28s %s\n", r.Name, r.ID)
		}
		return nil
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed

	runners := experiments.All()
	if *only != "" {
		r, err := experiments.ByName(*only)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	}

	journal, err := openJournal(*ckptDir, "experiments.journal", *resume)
	if err != nil {
		return err
	}
	defer journal.Close()

	shutdown := durable.NotifyShutdown(context.Background())
	defer shutdown.Stop()

	report, err := experiments.RunSuite(shutdown.Context(), cfg, runners, journal,
		shutdown.Draining, func(res experiments.SuiteResult) {
			switch {
			case res.Err != nil:
				fmt.Fprintf(os.Stderr, "experiments: %s (%s): %v\n", res.Runner.ID, res.Runner.Name, res.Err)
			case res.Restored:
				fmt.Println(res.Table)
				fmt.Printf("(%s restored from checkpoint)\n\n", res.Runner.ID)
			default:
				fmt.Println(res.Table)
				fmt.Printf("(%s completed in %v)\n\n", res.Runner.ID, res.Elapsed.Round(time.Millisecond))
			}
		})
	if err != nil {
		return err
	}
	if report.Interrupted {
		fmt.Printf("interrupted: %s\n", report.Summary())
		return nil
	}
	if failed := report.Failed(); len(failed) > 0 {
		return fmt.Errorf("%d of %d experiments failed", len(failed), len(report.Units))
	}
	return nil
}

// openJournal opens the checkpoint journal under dir ("" disables
// checkpointing). Without -resume any previous journal is discarded.
func openJournal(dir, name string, resume bool) (*durable.Journal, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, name)
	if !resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	return durable.OpenJournal(path)
}
