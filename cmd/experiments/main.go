// Command experiments regenerates the paper's tables and figures on the
// synthetic world and prints them as aligned text.
//
// Usage:
//
//	experiments                  # run everything at the default scale
//	experiments -quick           # smoke-scale run (minutes)
//	experiments -run tm3-text    # one experiment by name
//	experiments -list            # list experiment names
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"elevprivacy/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick      = flag.Bool("quick", false, "smoke-scale configuration (minutes instead of tens of minutes)")
		list       = flag.Bool("list", false, "list experiment names and exit")
		only       = flag.String("run", "", "run a single experiment by name")
		seed       = flag.Int64("seed", 1, "global random seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit to this path")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-28s %s\n", r.Name, r.ID)
		}
		return nil
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed

	runners := experiments.All()
	if *only != "" {
		r, err := experiments.ByName(*only)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		table, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s (%s): %w", r.ID, r.Name, err)
		}
		fmt.Println(table)
		fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
