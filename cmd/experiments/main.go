// Command experiments regenerates the paper's tables and figures on the
// synthetic world and prints them as aligned text — and, with -spec, runs a
// declarative multi-scenario sweep through the scenario orchestrator.
//
// Usage:
//
//	experiments                  # run everything at the default scale
//	experiments -quick           # smoke-scale run (minutes)
//	experiments -run tm3-text    # one experiment by name
//	experiments -list            # list experiment names
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof
//	experiments -checkpoint dir  # per-experiment checkpoints
//	experiments -checkpoint dir -resume   # replay finished tables, compute the rest
//
//	experiments -spec examples/scenarios/sweep.json -checkpoint dir
//	experiments -spec sweep.json -checkpoint dir -admin-addr :8089
//	experiments -spec sweep.json -checkpoint dir -resume -out results.json
//
// With -checkpoint, every finished experiment's table is journaled under a
// key bound to the exact configuration; -resume replays those tables
// byte-identically and only computes what is missing. SIGINT/SIGTERM lets
// the experiment in flight finish, flushes the journal, and exits 0 with a
// partial summary; a second signal aborts.
//
// With -spec, the file's scenarios expand into a DAG of work units (mine →
// featurize → train → eval) scheduled over the durable pool. Scenarios
// sharing a config prefix share units, and stage artifacts land in a
// content-addressed cache (<checkpoint>/artifacts) that dedupes across runs
// too. -admin-addr serves the live run (list/inspect/cancel scenarios, unit
// status, cache counters) alongside /metrics and /healthz.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/experiments"
	"elevprivacy/internal/obsboot"
	"elevprivacy/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick      = flag.Bool("quick", false, "smoke-scale configuration (minutes instead of tens of minutes)")
		list       = flag.Bool("list", false, "list experiment names and exit")
		only       = flag.String("run", "", "run a single experiment by name")
		seed       = flag.Int64("seed", 1, "global random seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit to this path")
		ckptDir    = flag.String("checkpoint", "", "directory for per-experiment checkpoints")
		resume     = flag.Bool("resume", false, "replay checkpointed experiments instead of starting fresh")
		specPath   = flag.String("spec", "", "run a declarative scenario spec (JSON) through the orchestrator")
		adminAddr  = flag.String("admin-addr", "", "serve the orchestrator admin API on this address (requires -spec)")
		outPath    = flag.String("out", "", "write scenario results as JSON to this path (requires -spec; atomic)")
		workers    = flag.Int("workers", 0, "scheduler concurrency for -spec runs (0 = spec's setting)")
	)
	obsFlags := obsboot.Register(nil)
	journalFlags := obsboot.RegisterJournal(nil, 0)
	flag.Parse()

	tel, err := obsFlags.Start("experiments")
	if err != nil {
		return err
	}
	defer func() {
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	if *cpuprofile != "" {
		// The profile streams for the whole run, so the atomic file commits
		// (and becomes visible) only after profiling stops cleanly.
		f, err := durable.CreateAtomic(*cpuprofile, 0o644)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Abort()
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC() // flush recently freed objects so the profile shows live heap
			err := durable.WriteFileAtomic(*memprofile, 0o644, func(w io.Writer) error {
				return pprof.WriteHeapProfile(w)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	if *specPath != "" {
		return runSpec(*specPath, *ckptDir, *adminAddr, *outPath, *workers, *resume, journalFlags.SyncEvery)
	}
	if *adminAddr != "" || *outPath != "" {
		return fmt.Errorf("-admin-addr and -out require -spec")
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-28s %s\n", r.Name, r.ID)
		}
		return nil
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed

	runners := experiments.All()
	if *only != "" {
		r, err := experiments.ByName(*only)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	}

	journal, err := obsboot.OpenJournal(*ckptDir, "experiments.journal", *resume, journalFlags.SyncEvery)
	if err != nil {
		return err
	}
	defer journal.Close()

	shutdown := durable.NotifyShutdown(context.Background())
	defer shutdown.Stop()

	report, err := experiments.RunSuite(shutdown.Context(), cfg, runners, journal,
		shutdown.Draining, func(res experiments.SuiteResult) {
			switch {
			case res.Err != nil:
				fmt.Fprintf(os.Stderr, "experiments: %s (%s): %v\n", res.Runner.ID, res.Runner.Name, res.Err)
			case res.Restored:
				fmt.Println(res.Table)
				fmt.Printf("(%s restored from checkpoint)\n\n", res.Runner.ID)
			default:
				fmt.Println(res.Table)
				fmt.Printf("(%s completed in %v)\n\n", res.Runner.ID, res.Elapsed.Round(time.Millisecond))
			}
		})
	if err != nil {
		return err
	}
	if report.Interrupted {
		fmt.Printf("interrupted: %s\n", report.Summary())
		return nil
	}
	if failed := report.Failed(); len(failed) > 0 {
		return fmt.Errorf("%d of %d experiments failed", len(failed), len(report.Units))
	}
	return nil
}

// runSpec drives a declarative scenario sweep through the orchestrator.
func runSpec(specPath, ckptDir, adminAddr, outPath string, workers int, resume bool, syncEvery int) error {
	spec, err := scenario.LoadSpec(specPath)
	if err != nil {
		return err
	}

	// The journal tracks this run's completed units; the cache holds stage
	// artifacts and outlives journals — it is what dedupes repeat runs.
	// Without -checkpoint the run still works (units exchange artifacts via
	// a throwaway cache), it just remembers nothing afterwards.
	cacheDir := ""
	if ckptDir != "" {
		cacheDir = filepath.Join(ckptDir, "artifacts")
	} else {
		tmp, err := os.MkdirTemp("", "scenario-cache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		cacheDir = tmp
	}
	cache, err := scenario.OpenCache(cacheDir)
	if err != nil {
		return err
	}
	journal, err := obsboot.OpenJournal(ckptDir, "scenario.journal", resume, syncEvery)
	if err != nil {
		return err
	}
	defer journal.Close()
	if restored := journal.Restored(); restored > 0 {
		fmt.Printf("checkpoint: restored %d completed units from journal\n", restored)
	}
	if resume {
		if err := obsboot.RestoreRunMetrics(ckptDir, "scenario.meta"); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: previous run metrics not restored: %v\n", err)
		}
	}

	shutdown := durable.NotifyShutdown(context.Background())
	defer shutdown.Stop()

	orch, err := scenario.New(spec, scenario.Options{
		Journal:       journal,
		Cache:         cache,
		CheckpointDir: ckptDir,
		Drain:         shutdown.Draining,
		Workers:       workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("spec %s: %d scenarios expanded into %d units (dedup saved %d)\n",
		spec.Name, len(spec.Scenarios), orch.Units(), 4*len(spec.Scenarios)-orch.Units())

	if adminAddr != "" {
		admin, err := obsboot.ServeAdmin(adminAddr, "scenario", orch.Handler())
		if err != nil {
			return err
		}
		defer admin.Close()
	}

	result, sweepErr := orch.Run(shutdown.Context())

	for _, sr := range result.Scenarios {
		line := fmt.Sprintf("%-24s %-4s %-14s %-4s %s", sr.Name, sr.ThreatModel, sr.Defense, sr.Model, sr.Status)
		if sr.Metrics != nil {
			line += fmt.Sprintf("  acc=%.4f f1=%.4f", sr.Metrics.Accuracy, sr.Metrics.F1)
		}
		fmt.Println(line)
	}
	fmt.Printf("cache: %d hits, %d misses, %d puts; http attempts: %d; elapsed: %v\n",
		result.Cache.Hits, result.Cache.Misses, result.Cache.Puts,
		result.HTTPAttempts, result.Elapsed.Round(time.Millisecond))

	if outPath != "" {
		// Only the deterministic view goes in the file: a resumed run must
		// produce bytes identical to an uninterrupted one, so run-varying
		// ledgers (cache traffic, HTTP attempts, timings) stay on stdout.
		out := struct {
			Spec      string                    `json:"spec"`
			Scenarios []scenario.ScenarioResult `json:"scenarios"`
		}{Spec: result.Spec, Scenarios: result.Scenarios}
		err := durable.WriteFileAtomic(outPath, 0o644, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			return enc.Encode(out)
		})
		if err != nil {
			return err
		}
		fmt.Printf("wrote results to %s\n", outPath)
	}

	cfgJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	if err := obsboot.SaveRunMeta(ckptDir, "scenario.meta", obsboot.RunMeta{
		Tool:    "experiments-spec",
		Config:  cfgJSON,
		Journal: journal.Stats(),
	}); err != nil {
		return err
	}

	if sweepErr != nil {
		if sweepErr.Interrupted() {
			fmt.Println("interrupted: journal flushed — rerun with -resume to continue")
			return nil
		}
		return sweepErr
	}
	return nil
}
