package elevprivacy

import (
	"math/rand"
	"testing"
)

// smallCfg builds laptop-scale datasets with the paper's class ratios.
func smallCfg(seed int64) DatasetConfig {
	return DatasetConfig{
		Scale:          0.03,
		ProfileSamples: 60,
		MinPerClass:    14,
		Seed:           seed,
	}
}

func TestNewCityLevelDatasetShape(t *testing.T) {
	d, err := NewCityLevelDataset(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	labels := d.Labels()
	if len(labels) != 10 {
		t.Fatalf("labels = %v", labels)
	}
	counts := d.CountByLabel()
	// NYC (2437 × 0.03 = 73) must dominate Tampa (83 × 0.03 -> floor 14).
	if counts["New York City"] <= counts["Tampa"] {
		t.Errorf("class ratio lost: %v", counts)
	}
}

func TestNewUserSpecificDatasetShape(t *testing.T) {
	d, err := NewUserSpecificDataset(smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Labels()); got != 4 {
		t.Fatalf("labels = %v", d.Labels())
	}
}

func TestNewBoroughDatasetShape(t *testing.T) {
	d, err := NewBoroughDataset("SF", smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Labels()); got != 4 {
		t.Fatalf("SF boroughs = %v", d.Labels())
	}
	if _, err := NewBoroughDataset("CS", smallCfg(3)); err == nil {
		t.Error("borough dataset for borough-less city accepted")
	}
	if _, err := NewBoroughDataset("Atlantis", smallCfg(3)); err == nil {
		t.Error("unknown city accepted")
	}
}

// TestTM3TextAttackBeatsChanceByFar is the headline reproduction check:
// city prediction from elevation profiles alone must approach the paper's
// accuracy band (80-94 %), and certainly demolish the 10 % chance level.
func TestTM3TextAttackBeatsChanceByFar(t *testing.T) {
	raw, err := NewCityLevelDataset(smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	// The paper balances classes for the TM-3 table (fixed S per class).
	d, err := raw.Balanced(14, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []ClassifierKind{ClassifierSVM, ClassifierRandomForest, ClassifierMLP} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m, err := CrossValidateText(d, DefaultTextAttackConfig(kind), 5)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: accuracy=%.3f recall=%.3f f1=%.3f", kind, m.Accuracy, m.Recall, m.F1)
			// RFC is the weakest of the three in the paper as well
			// (Table V); it gets a lower bar at this dataset scale.
			minAcc := 0.55
			if kind == ClassifierRandomForest {
				minAcc = 0.45
			}
			if m.Accuracy < minAcc {
				t.Errorf("%s accuracy = %f; want well above 0.10 chance", kind, m.Accuracy)
			}
		})
	}
}

// TestTM1TextAttack reproduces the user-specific attack: the paper reports
// 86.8-98.5 % accuracy thanks to overlapped personal routes.
func TestTM1TextAttack(t *testing.T) {
	d, err := NewUserSpecificDataset(DatasetConfig{
		Scale: 0.12, ProfileSamples: 60, MinPerClass: 14, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := CrossValidateText(d, DefaultTextAttackConfig(ClassifierSVM), 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TM-1 SVM accuracy=%.3f", m.Accuracy)
	if m.Accuracy < 0.70 {
		t.Errorf("TM-1 accuracy = %f, want high (paper: 0.87-0.99)", m.Accuracy)
	}
}

func TestTrainTextAttackPredicts(t *testing.T) {
	d, err := NewCityLevelDataset(smallCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	attack, err := TrainTextAttack(d, DefaultTextAttackConfig(ClassifierRandomForest))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(attack.Labels()); got != 10 {
		t.Fatalf("attack labels = %d", got)
	}
	// Training-set prediction should mostly hit.
	var correct int
	for _, s := range d.Samples[:50] {
		pred, err := attack.PredictLocation(s.Elevations)
		if err != nil {
			t.Fatal(err)
		}
		if pred == s.Label {
			correct++
		}
	}
	if correct < 35 {
		t.Errorf("train-set correct = %d/50", correct)
	}
	if _, err := attack.PredictLocation(nil); err == nil {
		t.Error("empty profile accepted")
	}
}

// TestOverlapSimulationBoostsAccuracy reproduces the paper's §IV-A1
// finding: adding 30 % near-duplicate samples raises CV accuracy.
func TestOverlapSimulationBoostsAccuracy(t *testing.T) {
	d, err := NewCityLevelDataset(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	// Use a subset of confusable flat cities to leave headroom.
	sub := d.Filter("Miami", "Tampa", "New Jersey")

	base, err := CrossValidateText(sub, DefaultTextAttackConfig(ClassifierMLP), 5)
	if err != nil {
		t.Fatal(err)
	}
	simulated, err := SimulateOverlap(sub, 8)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := CrossValidateText(simulated, DefaultTextAttackConfig(ClassifierMLP), 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overlap sim: %.3f -> %.3f", base.Accuracy, boosted.Accuracy)
	if boosted.Accuracy < base.Accuracy-0.05 {
		t.Errorf("overlap simulation should not hurt: %f -> %f", base.Accuracy, boosted.Accuracy)
	}
}

func TestTrainImageAttackWeighted(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training on a TM-2-sized dataset is slow")
	}
	d, err := NewBoroughDataset("SF", DatasetConfig{
		Scale: 0.12, ProfileSamples: 60, MinPerClass: 30, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultImageAttackConfig(TrainWeighted)
	cfg.Epochs = 30
	m, err := EvaluateImageAttack(d, cfg, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TM-2 SF image (weighted): accuracy=%.3f", m.Accuracy)
	// 4 boroughs: chance is 0.25. Boroughs of one city share terrain, so
	// this is the paper's hardest setting (its SF numbers: 0.65-0.79).
	if m.Accuracy < 0.3 {
		t.Errorf("weighted CNN accuracy = %f, want above chance", m.Accuracy)
	}
}

// TestImageAttackTM3Separable checks the image pipeline separates cities
// (the color channel encodes the elevation interval, which is the main
// inter-city signal).
func TestImageAttackTM3Separable(t *testing.T) {
	d, err := NewCityLevelDataset(DatasetConfig{
		Scale: 0.008, ProfileSamples: 60, MinPerClass: 12, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three very different cities.
	sub := d.Filter("Colorado Springs", "Miami", "San Francisco")
	cfg := DefaultImageAttackConfig(TrainUnweighted)
	cfg.Epochs = 60
	m, err := EvaluateImageAttack(sub, cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("3-city image attack: accuracy=%.3f", m.Accuracy)
	if m.Accuracy < 0.6 {
		t.Errorf("image attack accuracy = %f", m.Accuracy)
	}
}

func TestTrainImageAttackFineTune(t *testing.T) {
	d, err := NewUserSpecificDataset(DatasetConfig{
		Scale: 0.05, ProfileSamples: 50, MinPerClass: 10, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultImageAttackConfig(TrainFineTune)
	cfg.Epochs = 4
	cfg.MaxRounds = 3
	attack, err := TrainImageAttack(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(attack.Labels()) != 4 {
		t.Fatalf("labels = %v", attack.Labels())
	}
	if _, err := attack.PredictLocation(d.Samples[0].Elevations); err != nil {
		t.Fatal(err)
	}
}

func TestTrainImageAttackValidation(t *testing.T) {
	d, err := NewBoroughDataset("SF", DatasetConfig{
		Scale: 0.01, ProfileSamples: 30, MinPerClass: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultImageAttackConfig("nonsense")
	bad.Epochs = 1
	if _, err := TrainImageAttack(d, bad); err == nil {
		t.Error("unknown mode accepted")
	}
	zero := DefaultImageAttackConfig(TrainWeighted)
	zero.Epochs = 0
	if _, err := TrainImageAttack(d, zero); err == nil {
		t.Error("0 epochs accepted")
	}
	if _, err := TrainImageAttack(&Dataset{}, DefaultImageAttackConfig(TrainWeighted)); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestTrainTextAttackValidation(t *testing.T) {
	if _, err := TrainTextAttack(&Dataset{}, DefaultTextAttackConfig(ClassifierSVM)); err == nil {
		t.Error("empty dataset accepted")
	}
	d, err := NewBoroughDataset("SF", DatasetConfig{
		Scale: 0.01, ProfileSamples: 30, MinPerClass: 8, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainTextAttack(d, TextAttackConfig{Classifier: "nope", NGram: 8, MinFrequency: 1}); err == nil {
		t.Error("unknown classifier accepted")
	}
}
