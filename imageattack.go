package elevprivacy

import (
	"fmt"
	"math/rand"

	"elevprivacy/internal/dataset"
	"elevprivacy/internal/eval"
	"elevprivacy/internal/imagerep"
	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/cnn"
)

// TrainMode selects the CNN training strategy for unbalanced datasets
// (paper §IV-B).
type TrainMode string

// The paper's three image-attack training strategies.
const (
	// TrainUnweighted uses the plain loss; on unbalanced data its results
	// are biased toward large classes (the paper reports it for contrast).
	TrainUnweighted TrainMode = "unweighted"
	// TrainWeighted weights the loss inversely to class size.
	TrainWeighted TrainMode = "weighted"
	// TrainFineTune trains through balanced rounds, warm-starting each
	// round from the previous (paper Figs. 10-11).
	TrainFineTune TrainMode = "finetune"
)

// ImageAttackConfig configures an image-like (CNN) attack.
type ImageAttackConfig struct {
	// Mode picks the training strategy.
	Mode TrainMode
	// Epochs is the per-fit (or per-round) epoch budget.
	Epochs int
	// LearningRate is Adam's step size; fine-tuning lowers it on the final
	// all-classes round.
	LearningRate float64
	// MaxRounds caps the fine-tuning schedule.
	MaxRounds int
	// Render controls the image representation; zero value uses the
	// paper's 32×32, 200-point configuration.
	Render imagerep.Config
	// Seed drives initialization, shuffling and round sampling.
	Seed int64
}

// DefaultImageAttackConfig returns the experiment configuration.
func DefaultImageAttackConfig(mode TrainMode) ImageAttackConfig {
	return ImageAttackConfig{
		Mode:         mode,
		Epochs:       12,
		LearningRate: 1e-3,
		MaxRounds:    5,
		Render:       imagerep.DefaultConfig(),
		Seed:         1,
	}
}

// ImageAttack is a trained image-like location-inference attack.
type ImageAttack struct {
	render imagerep.Config
	labels *ml.LabelEncoder
	model  *cnn.CNN
}

// TrainImageAttack renders the dataset and trains the paper's CNN with the
// configured strategy.
func TrainImageAttack(d *Dataset, cfg ImageAttackConfig) (*ImageAttack, error) {
	if cfg.Render.Width == 0 {
		cfg.Render = imagerep.DefaultConfig()
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("elevprivacy: epochs %d", cfg.Epochs)
	}

	signals, labelNames := signalsAndLabels(d)
	if len(signals) == 0 {
		return nil, fmt.Errorf("elevprivacy: empty dataset")
	}
	enc, err := ml.NewLabelEncoder(labelNames)
	if err != nil {
		return nil, fmt.Errorf("elevprivacy: labels: %w", err)
	}
	y, err := enc.EncodeAll(labelNames)
	if err != nil {
		return nil, err
	}
	// One contiguous matrix-backed batch; training and the fine-tuning
	// rounds index zero-copy views of its rows.
	batch, err := imagerep.RenderBatch(signals, cfg.Render)
	if err != nil {
		return nil, fmt.Errorf("elevprivacy: rendering: %w", err)
	}
	images := batch.Images()

	netCfg := cnn.DefaultConfig(enc.Len())
	netCfg.Epochs = cfg.Epochs
	netCfg.LearningRate = cfg.LearningRate
	netCfg.Seed = cfg.Seed
	netCfg.InSize = cfg.Render.Width

	switch cfg.Mode {
	case TrainWeighted:
		weights, err := eval.InverseClassWeights(y, enc.Len())
		if err != nil {
			return nil, err
		}
		netCfg.ClassWeights = weights
	case TrainUnweighted, TrainFineTune:
		// no loss weighting
	default:
		return nil, fmt.Errorf("elevprivacy: unknown train mode %q", cfg.Mode)
	}

	net, err := cnn.New(netCfg)
	if err != nil {
		return nil, err
	}

	attack := &ImageAttack{render: cfg.Render, labels: enc, model: net}
	if cfg.Mode == TrainFineTune {
		if err := attack.fineTune(d, images, y, cfg); err != nil {
			return nil, err
		}
		return attack, nil
	}
	if err := net.Fit(images, y); err != nil {
		return nil, fmt.Errorf("elevprivacy: training: %w", err)
	}
	return attack, nil
}

// fineTune runs the paper's round schedule: balanced round datasets over
// progressively more classes, each round warm-starting from the last, with
// a reduced learning rate on the final all-classes round.
func (a *ImageAttack) fineTune(d *Dataset, images []*imagerep.Image, y []int, cfg ImageAttackConfig) error {
	rounds, err := eval.PlanRounds(d.CountByLabel(), cfg.MaxRounds)
	if err != nil {
		return fmt.Errorf("elevprivacy: planning rounds: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 23))

	// Index samples by label for balanced round sampling.
	byLabel := map[string][]int{}
	for i := range d.Samples {
		byLabel[d.Samples[i].Label] = append(byLabel[d.Samples[i].Label], i)
	}

	for r, round := range rounds {
		var roundImages []*imagerep.Image
		var roundY []int
		for _, label := range round.Labels {
			idx := byLabel[label]
			perm := rng.Perm(len(idx))
			take := round.PerClass
			if take > len(idx) {
				take = len(idx)
			}
			for _, k := range perm[:take] {
				roundImages = append(roundImages, images[idx[k]])
				roundY = append(roundY, y[idx[k]])
			}
		}
		if r == len(rounds)-1 {
			// Final round includes every class: drop the learning rate to
			// settle into the loss minimum (paper §IV-B).
			if err := a.model.SetLearningRate(cfg.LearningRate / 3); err != nil {
				return err
			}
		}
		if err := a.model.TrainEpochs(roundImages, roundY, cfg.Epochs); err != nil {
			return fmt.Errorf("elevprivacy: round %d: %w", r, err)
		}
	}
	return nil
}

// PredictLocation infers the location label for one elevation profile.
func (a *ImageAttack) PredictLocation(elevations []float64) (string, error) {
	if len(elevations) == 0 {
		return "", fmt.Errorf("elevprivacy: empty elevation profile")
	}
	im, err := imagerep.Render(elevations, a.render)
	if err != nil {
		return "", err
	}
	idx, err := a.model.Predict(im)
	if err != nil {
		return "", err
	}
	return a.labels.Decode(idx)
}

// PredictLocations infers the location label for a batch of elevation
// profiles in one pass: the profiles render into one matrix-backed image
// batch and the CNN scores them through its im2col batch forward.
func (a *ImageAttack) PredictLocations(profiles [][]float64) ([]string, error) {
	batch, err := imagerep.RenderBatch(profiles, a.render)
	if err != nil {
		return nil, err
	}
	preds, err := a.model.PredictBatch(batch.Images())
	if err != nil {
		return nil, err
	}
	out := make([]string, len(preds))
	for i, idx := range preds {
		if out[i], err = a.labels.Decode(idx); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Labels returns the class names the attack can predict.
func (a *ImageAttack) Labels() []string { return a.labels.Names() }

// EvaluateImageAttack trains on a stratified split and scores the held-out
// test samples, reproducing the paper's image evaluation protocol (the
// test split is drawn with probability inverse to class size for the
// weighted/unweighted modes via stratification).
func EvaluateImageAttack(d *Dataset, cfg ImageAttackConfig, testFrac float64) (Metrics, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	train, test, err := splitDataset(d, testFrac, rng)
	if err != nil {
		return Metrics{}, err
	}
	attack, err := TrainImageAttack(train, cfg)
	if err != nil {
		return Metrics{}, err
	}
	return attack.Evaluate(test)
}

// Evaluate scores the attack on a labeled dataset with one batch
// prediction over the rendered test matrix.
func (a *ImageAttack) Evaluate(test *Dataset) (Metrics, error) {
	if test.Len() == 0 {
		return Metrics{}, fmt.Errorf("elevprivacy: empty test set")
	}
	signals, labelNames := signalsAndLabels(test)
	predLabels, err := a.PredictLocations(signals)
	if err != nil {
		return Metrics{}, err
	}
	cm, err := eval.NewConfusionMatrix(a.labels.Len())
	if err != nil {
		return Metrics{}, err
	}
	for i, name := range labelNames {
		actual, err := a.labels.Encode(name)
		if err != nil {
			return Metrics{}, err
		}
		pred, err := a.labels.Encode(predLabels[i])
		if err != nil {
			return Metrics{}, err
		}
		if err := cm.Add(actual, pred); err != nil {
			return Metrics{}, err
		}
	}
	return cm.Metrics(), nil
}

// splitDataset is a thin wrapper over the dataset split that keeps the
// facade signature free of internal types.
func splitDataset(d *Dataset, testFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	return (*dataset.Dataset)(d).SplitStratified(testFrac, rng)
}
