package elevprivacy

import (
	"fmt"

	"elevprivacy/internal/eval"
	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/forest"
	"elevprivacy/internal/ml/mlp"
	"elevprivacy/internal/ml/svm"
	"elevprivacy/internal/textrep"
)

// ClassifierKind selects the model behind a text-like attack.
type ClassifierKind string

// The paper's three text-feature classifiers.
const (
	ClassifierSVM          ClassifierKind = "svm"
	ClassifierRandomForest ClassifierKind = "rfc"
	ClassifierMLP          ClassifierKind = "mlp"
)

// TextAttackConfig configures a text-like (n-gram bag-of-words) attack.
type TextAttackConfig struct {
	// Classifier picks SVM, RFC, or MLP.
	Classifier ClassifierKind
	// NGram is the n-gram order (the paper fixes n = 8).
	NGram int
	// Precision selects the discretizer: 0 applies the paper's ⌊e⌋ (used
	// for the user-specific dataset), d > 0 applies ⌊e·10^d⌋/10^d (the
	// paper uses d = 3 for mined datasets).
	Precision int
	// MaxFeatures bounds the vocabulary after term-frequency selection.
	MaxFeatures int
	// MinFrequency drops n-grams rarer than this across the corpus.
	MinFrequency int
	// ForestTrees overrides the random forest's ensemble size when
	// positive (paper default: 100). Ignored by the other classifiers.
	ForestTrees int
	// Float32 trains the MLP through the reduced-precision kernel path
	// (see mlp.Config.Float32). Ignored by the other classifiers, whose
	// training is float64-only.
	Float32 bool
	// Seed drives classifier randomness.
	Seed int64
}

// DefaultTextAttackConfig returns the paper's evaluation settings.
func DefaultTextAttackConfig(kind ClassifierKind) TextAttackConfig {
	return TextAttackConfig{
		Classifier:   kind,
		NGram:        8,
		Precision:    0,
		MaxFeatures:  4096,
		MinFrequency: 2,
		Seed:         1,
	}
}

func (c TextAttackConfig) pipeline() textrep.PipelineConfig {
	// Precision (not a raw Discretizer) selects the bucketing so trained
	// attacks can be persisted and reloaded.
	return textrep.PipelineConfig{
		Precision:    c.Precision,
		Alphabet:     textrep.DefaultAlphabet,
		NGram:        c.NGram,
		MinFrequency: c.MinFrequency,
		MaxFeatures:  c.MaxFeatures,
	}
}

// newClassifier instantiates the configured model.
func (c TextAttackConfig) newClassifier(classes int) (ml.Classifier, error) {
	switch c.Classifier {
	case ClassifierSVM:
		cfg := svm.DefaultConfig(classes)
		cfg.Seed = c.Seed
		return svm.New(cfg)
	case ClassifierRandomForest:
		cfg := forest.DefaultConfig(classes)
		cfg.Seed = c.Seed
		if c.ForestTrees > 0 {
			cfg.Trees = c.ForestTrees
		}
		return forest.New(cfg)
	case ClassifierMLP:
		cfg := mlp.DefaultConfig(classes)
		cfg.Seed = c.Seed
		cfg.Float32 = c.Float32
		return mlp.New(cfg)
	default:
		return nil, fmt.Errorf("elevprivacy: unknown classifier %q", c.Classifier)
	}
}

// TextAttack is a trained text-like location-inference attack.
type TextAttack struct {
	pipeline *textrep.Pipeline
	labels   *ml.LabelEncoder
	model    ml.Classifier
}

// TrainTextAttack builds the text representation over the dataset and
// trains the configured classifier on all samples.
func TrainTextAttack(d *Dataset, cfg TextAttackConfig) (*TextAttack, error) {
	signals, labelNames := signalsAndLabels(d)
	if len(signals) == 0 {
		return nil, fmt.Errorf("elevprivacy: empty dataset")
	}

	pipe, err := textrep.NewPipeline(signals, cfg.pipeline())
	if err != nil {
		return nil, fmt.Errorf("elevprivacy: text pipeline: %w", err)
	}
	enc, err := ml.NewLabelEncoder(labelNames)
	if err != nil {
		return nil, fmt.Errorf("elevprivacy: labels: %w", err)
	}
	y, err := enc.EncodeAll(labelNames)
	if err != nil {
		return nil, err
	}

	model, err := cfg.newClassifier(enc.Len())
	if err != nil {
		return nil, err
	}
	if err := model.Fit(pipe.FeaturesAll(signals).RowSlices(), y); err != nil {
		return nil, fmt.Errorf("elevprivacy: training: %w", err)
	}
	return &TextAttack{pipeline: pipe, labels: enc, model: model}, nil
}

// PredictLocation infers the location label for one elevation profile.
func (a *TextAttack) PredictLocation(elevations []float64) (string, error) {
	if len(elevations) == 0 {
		return "", fmt.Errorf("elevprivacy: empty elevation profile")
	}
	idx, err := a.model.Predict(a.pipeline.Features(elevations))
	if err != nil {
		return "", err
	}
	return a.labels.Decode(idx)
}

// PredictLocations infers the location label for a batch of elevation
// profiles in one pass — the serving-path shape for high-traffic
// inference. Profiles are tokenized and featurized straight into a CSR
// matrix and scored with one PredictBatchSparse call when the model
// supports it (all three text classifiers do); the dense PredictBatch
// path remains as the fallback and returns identical labels.
func (a *TextAttack) PredictLocations(profiles [][]float64) ([]string, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("elevprivacy: empty batch")
	}
	for i, p := range profiles {
		if len(p) == 0 {
			return nil, fmt.Errorf("elevprivacy: empty elevation profile %d", i)
		}
	}
	var preds []int
	var err error
	if sc, ok := a.model.(ml.SparseBatchClassifier); ok {
		preds, err = sc.PredictBatchSparse(a.pipeline.FeaturesAllSparse(profiles))
	} else {
		preds, err = a.model.PredictBatch(a.pipeline.FeaturesAll(profiles))
	}
	if err != nil {
		return nil, err
	}
	out := make([]string, len(preds))
	for i, idx := range preds {
		if out[i], err = a.labels.Decode(idx); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Labels returns the class names the attack can predict.
func (a *TextAttack) Labels() []string { return a.labels.Names() }

// CrossValidateText evaluates the text-like attack with stratified k-fold
// cross-validation, the paper's evaluation protocol. The representation is
// built over the full dataset (as the paper builds its vocabulary over the
// whole corpus); each fold trains a fresh classifier.
func CrossValidateText(d *Dataset, cfg TextAttackConfig, folds int) (Metrics, error) {
	signals, labelNames := signalsAndLabels(d)
	if len(signals) == 0 {
		return Metrics{}, fmt.Errorf("elevprivacy: empty dataset")
	}
	pipe, err := textrep.NewPipeline(signals, cfg.pipeline())
	if err != nil {
		return Metrics{}, fmt.Errorf("elevprivacy: text pipeline: %w", err)
	}
	enc, err := ml.NewLabelEncoder(labelNames)
	if err != nil {
		return Metrics{}, fmt.Errorf("elevprivacy: labels: %w", err)
	}
	y, err := enc.EncodeAll(labelNames)
	if err != nil {
		return Metrics{}, err
	}
	// Featurize once into CSR form: SVM and MLP folds train and score
	// through their native sparse paths (bit-identical to dense); only the
	// forest triggers the lazy densify inside CrossValidateSparse.
	return eval.CrossValidateSparse(pipe.FeaturesAllSparse(signals), y, enc.Len(), folds, cfg.Seed,
		func() (ml.Classifier, error) { return cfg.newClassifier(enc.Len()) })
}

// signalsAndLabels splits a dataset into parallel slices.
func signalsAndLabels(d *Dataset) (signals [][]float64, labels []string) {
	for i := range d.Samples {
		signals = append(signals, d.Samples[i].Elevations)
		labels = append(labels, d.Samples[i].Label)
	}
	return signals, labels
}
