package elevprivacy

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"elevprivacy/internal/imagerep"
	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/cnn"
	"elevprivacy/internal/ml/mlp"
	"elevprivacy/internal/ml/svm"
	"elevprivacy/internal/textrep"
)

// Attack persistence: a trained attack is an envelope (representation
// state + class labels) followed by the classifier's own serialized form,
// so an adversary — or an auditor — trains once and reuses the model.
//
// Layout: magic "ELPA" | uint32 envelope length | envelope JSON | model.

const attackMagic = "ELPA"

// textEnvelope persists a TextAttack's non-model state.
type textEnvelope struct {
	Kind     ClassifierKind    `json:"kind"`
	Labels   []string          `json:"labels"`
	Pipeline *textrep.Pipeline `json:"pipeline"`
}

// imageEnvelope persists an ImageAttack's non-model state.
type imageEnvelope struct {
	Labels []string        `json:"labels"`
	Render imagerep.Config `json:"render"`
}

// writeEnvelope writes the magic and the length-prefixed JSON envelope.
func writeEnvelope(w io.Writer, v any) error {
	env, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("elevprivacy: marshaling envelope: %w", err)
	}
	if _, err := io.WriteString(w, attackMagic); err != nil {
		return fmt.Errorf("elevprivacy: writing magic: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(env))); err != nil {
		return fmt.Errorf("elevprivacy: writing envelope length: %w", err)
	}
	if _, err := w.Write(env); err != nil {
		return fmt.Errorf("elevprivacy: writing envelope: %w", err)
	}
	return nil
}

// readEnvelope parses the magic and envelope into v.
func readEnvelope(r io.Reader, v any) error {
	magic := make([]byte, len(attackMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("elevprivacy: reading magic: %w", err)
	}
	if string(magic) != attackMagic {
		return fmt.Errorf("elevprivacy: not an attack file (magic %q)", magic)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("elevprivacy: reading envelope length: %w", err)
	}
	if n > 64<<20 {
		return fmt.Errorf("elevprivacy: implausible envelope length %d", n)
	}
	env := make([]byte, n)
	if _, err := io.ReadFull(r, env); err != nil {
		return fmt.Errorf("elevprivacy: reading envelope: %w", err)
	}
	if err := json.Unmarshal(env, v); err != nil {
		return fmt.Errorf("elevprivacy: parsing envelope: %w", err)
	}
	return nil
}

// Save serializes the trained text attack. SVM and MLP classifiers are
// supported; the random forest has no compact serial form here.
func (a *TextAttack) Save(w io.Writer) error {
	var kind ClassifierKind
	switch a.model.(type) {
	case *svm.SVM:
		kind = ClassifierSVM
	case *mlp.MLP:
		kind = ClassifierMLP
	default:
		return fmt.Errorf("elevprivacy: saving %T is not supported (use svm or mlp)", a.model)
	}
	if err := writeEnvelope(w, textEnvelope{
		Kind:     kind,
		Labels:   a.labels.Names(),
		Pipeline: a.pipeline,
	}); err != nil {
		return err
	}
	switch m := a.model.(type) {
	case *svm.SVM:
		return m.Save(w)
	case *mlp.MLP:
		return m.Save(w)
	}
	return nil // unreachable
}

// LoadTextAttack reconstructs a saved text attack.
func LoadTextAttack(r io.Reader) (*TextAttack, error) {
	var env textEnvelope
	if err := readEnvelope(r, &env); err != nil {
		return nil, err
	}
	if env.Pipeline == nil {
		return nil, fmt.Errorf("elevprivacy: attack file has no pipeline")
	}
	enc, err := ml.NewLabelEncoder(env.Labels)
	if err != nil {
		return nil, fmt.Errorf("elevprivacy: attack labels: %w", err)
	}

	var model ml.Classifier
	switch env.Kind {
	case ClassifierSVM:
		model, err = svm.Load(r)
	case ClassifierMLP:
		model, err = mlp.Load(r)
	default:
		return nil, fmt.Errorf("elevprivacy: unknown classifier kind %q", env.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &TextAttack{pipeline: env.Pipeline, labels: enc, model: model}, nil
}

// Save serializes the trained image attack (render config + CNN).
func (a *ImageAttack) Save(w io.Writer) error {
	if err := writeEnvelope(w, imageEnvelope{
		Labels: a.labels.Names(),
		Render: a.render,
	}); err != nil {
		return err
	}
	return a.model.Save(w)
}

// LoadImageAttack reconstructs a saved image attack.
func LoadImageAttack(r io.Reader) (*ImageAttack, error) {
	var env imageEnvelope
	if err := readEnvelope(r, &env); err != nil {
		return nil, err
	}
	enc, err := ml.NewLabelEncoder(env.Labels)
	if err != nil {
		return nil, fmt.Errorf("elevprivacy: attack labels: %w", err)
	}
	model, err := cnn.Load(r)
	if err != nil {
		return nil, err
	}
	if model.Classes() != enc.Len() {
		return nil, fmt.Errorf("elevprivacy: model has %d classes, labels have %d", model.Classes(), enc.Len())
	}
	return &ImageAttack{render: env.Render, labels: enc, model: model}, nil
}
