package elevprivacy

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"elevprivacy/internal/imagerep"
	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/cnn"
	"elevprivacy/internal/ml/mlp"
	"elevprivacy/internal/ml/svm"
	"elevprivacy/internal/textrep"
)

// Attack persistence: a trained attack is an envelope (representation
// state + class labels) followed by the classifier's own serialized form,
// so an adversary — or an auditor — trains once and reuses the model.
//
// Layout: magic "ELPA" | uint32 envelope length | envelope JSON | model.

const attackMagic = "ELPA"

// maxEnvelopeBytes bounds the length prefix read back from disk. The
// envelope is a few KB of JSON in practice; anything past this is a corrupt
// or hostile file, and the bound keeps a flipped length byte from driving a
// multi-GB allocation before the payload is even read.
const maxEnvelopeBytes = 64 << 20

// FormatError describes a malformed attack file: wrong magic, an
// implausible envelope length, a truncated envelope, or an envelope that is
// not valid JSON. Callers distinguish corrupt files from I/O failures with
// errors.As.
type FormatError struct {
	What   string // which part of the file is malformed
	Detail string // what was found there
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("elevprivacy: malformed attack file: %s: %s", e.What, e.Detail)
}

// textEnvelope persists a TextAttack's non-model state.
type textEnvelope struct {
	Kind     ClassifierKind    `json:"kind"`
	Labels   []string          `json:"labels"`
	Pipeline *textrep.Pipeline `json:"pipeline"`
}

// imageEnvelope persists an ImageAttack's non-model state.
type imageEnvelope struct {
	Labels []string        `json:"labels"`
	Render imagerep.Config `json:"render"`
}

// writeEnvelope writes the magic and the length-prefixed JSON envelope.
func writeEnvelope(w io.Writer, v any) error {
	env, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("elevprivacy: marshaling envelope: %w", err)
	}
	if _, err := io.WriteString(w, attackMagic); err != nil {
		return fmt.Errorf("elevprivacy: writing magic: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(env))); err != nil {
		return fmt.Errorf("elevprivacy: writing envelope length: %w", err)
	}
	if _, err := w.Write(env); err != nil {
		return fmt.Errorf("elevprivacy: writing envelope: %w", err)
	}
	return nil
}

// readEnvelope parses the magic and envelope into v. The length prefix
// comes from the file, so it is never trusted: the magic is verified and the
// length bounded by maxEnvelopeBytes before any payload-sized allocation.
// Malformed files surface as *FormatError; I/O failures pass through.
func readEnvelope(r io.Reader, v any) error {
	header := make([]byte, len(attackMagic)+4)
	if n, err := io.ReadFull(r, header); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return &FormatError{What: "header",
				Detail: fmt.Sprintf("truncated at %d of %d bytes", n, len(header))}
		}
		return fmt.Errorf("elevprivacy: reading header: %w", err)
	}
	if magic := header[:len(attackMagic)]; string(magic) != attackMagic {
		return &FormatError{What: "magic",
			Detail: fmt.Sprintf("%q, want %q", magic, attackMagic)}
	}
	n := binary.LittleEndian.Uint32(header[len(attackMagic):])
	if n > maxEnvelopeBytes {
		return &FormatError{What: "envelope length",
			Detail: fmt.Sprintf("%d exceeds the %d-byte bound", n, maxEnvelopeBytes)}
	}
	env := make([]byte, n)
	if got, err := io.ReadFull(r, env); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return &FormatError{What: "envelope",
				Detail: fmt.Sprintf("truncated at %d of %d bytes", got, n)}
		}
		return fmt.Errorf("elevprivacy: reading envelope: %w", err)
	}
	if err := json.Unmarshal(env, v); err != nil {
		return &FormatError{What: "envelope JSON", Detail: err.Error()}
	}
	return nil
}

// Save serializes the trained text attack. SVM and MLP classifiers are
// supported; the random forest has no compact serial form here.
func (a *TextAttack) Save(w io.Writer) error {
	var kind ClassifierKind
	switch a.model.(type) {
	case *svm.SVM:
		kind = ClassifierSVM
	case *mlp.MLP:
		kind = ClassifierMLP
	default:
		return fmt.Errorf("elevprivacy: saving %T is not supported (use svm or mlp)", a.model)
	}
	if err := writeEnvelope(w, textEnvelope{
		Kind:     kind,
		Labels:   a.labels.Names(),
		Pipeline: a.pipeline,
	}); err != nil {
		return err
	}
	switch m := a.model.(type) {
	case *svm.SVM:
		return m.Save(w)
	case *mlp.MLP:
		return m.Save(w)
	}
	return nil // unreachable
}

// LoadTextAttack reconstructs a saved text attack.
func LoadTextAttack(r io.Reader) (*TextAttack, error) {
	var env textEnvelope
	if err := readEnvelope(r, &env); err != nil {
		return nil, err
	}
	if env.Pipeline == nil {
		return nil, fmt.Errorf("elevprivacy: attack file has no pipeline")
	}
	enc, err := ml.NewLabelEncoder(env.Labels)
	if err != nil {
		return nil, fmt.Errorf("elevprivacy: attack labels: %w", err)
	}

	var model ml.Classifier
	switch env.Kind {
	case ClassifierSVM:
		model, err = svm.Load(r)
	case ClassifierMLP:
		model, err = mlp.Load(r)
	default:
		return nil, fmt.Errorf("elevprivacy: unknown classifier kind %q", env.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &TextAttack{pipeline: env.Pipeline, labels: enc, model: model}, nil
}

// Save serializes the trained image attack (render config + CNN).
func (a *ImageAttack) Save(w io.Writer) error {
	if err := writeEnvelope(w, imageEnvelope{
		Labels: a.labels.Names(),
		Render: a.render,
	}); err != nil {
		return err
	}
	return a.model.Save(w)
}

// LoadImageAttack reconstructs a saved image attack.
func LoadImageAttack(r io.Reader) (*ImageAttack, error) {
	var env imageEnvelope
	if err := readEnvelope(r, &env); err != nil {
		return nil, err
	}
	enc, err := ml.NewLabelEncoder(env.Labels)
	if err != nil {
		return nil, fmt.Errorf("elevprivacy: attack labels: %w", err)
	}
	model, err := cnn.Load(r)
	if err != nil {
		return nil, err
	}
	if model.Classes() != enc.Len() {
		return nil, fmt.Errorf("elevprivacy: model has %d classes, labels have %d", model.Classes(), enc.Len())
	}
	return &ImageAttack{render: env.Render, labels: enc, model: model}, nil
}
