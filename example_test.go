package elevprivacy_test

import (
	"fmt"

	"elevprivacy"
)

// The headline attack: train on city-labeled elevation profiles, then
// place a profile that was shared without a map.
func ExampleTrainTextAttack() {
	data, err := elevprivacy.NewCityLevelDataset(elevprivacy.DatasetConfig{
		Scale:          0.02,
		ProfileSamples: 60,
		MinPerClass:    12,
		Seed:           7,
	})
	if err != nil {
		panic(err)
	}
	// Keep two maximally different cities for a crisp demonstration.
	pair := data.Filter("Colorado Springs", "Miami")

	attack, err := elevprivacy.TrainTextAttack(pair,
		elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierSVM))
	if err != nil {
		panic(err)
	}

	victim := pair.Samples[0]
	predicted, err := attack.PredictLocation(victim.Elevations)
	if err != nil {
		panic(err)
	}
	fmt.Println(predicted == victim.Label)
	// Output: true
}

// Dataset synthesis follows the paper's Tables I-III shapes.
func ExampleNewUserSpecificDataset() {
	d, err := elevprivacy.NewUserSpecificDataset(elevprivacy.DatasetConfig{
		Scale:          0.05,
		ProfileSamples: 40,
		MinPerClass:    5,
		Seed:           1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(d.Labels()), "regions")
	// Output: 4 regions
}

// The synthetic world mirrors the paper's Table II city list.
func ExampleWorld() {
	world := elevprivacy.World()
	fmt.Println(len(world), "cities,", world[0].Name, "first")
	// Output: 10 cities, New York City first
}
