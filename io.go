package elevprivacy

import (
	"io"
	"io/fs"

	"elevprivacy/internal/dataset"
)

// SaveDatasetJSON writes a dataset as a JSON array (the format cmd/elevgen
// produces). Sample paths are stored as encoded polylines.
func SaveDatasetJSON(w io.Writer, d *Dataset) error {
	return dataset.SaveJSON(w, d)
}

// LoadDatasetJSON reads a dataset written by SaveDatasetJSON.
func LoadDatasetJSON(r io.Reader) (*Dataset, error) {
	return dataset.LoadJSON(r)
}

// LoadGPXDir builds a labeled dataset from a directory of GPX activity
// files using the paper's §III-A1 pipeline: each track's tight bounding
// rectangle is clustered by center distance (thresholdMeters) and the
// activity is labeled with its region identity ("R0", "R1", ...).
func LoadGPXDir(fsys fs.FS, dir string, thresholdMeters float64) (*Dataset, error) {
	return dataset.LoadGPXDir(fsys, dir, thresholdMeters)
}
