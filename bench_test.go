package elevprivacy_test

// The benchmark harness regenerates every table and figure of the paper
// (plus the DESIGN.md ablations) and times substrate hot paths.
//
// Experiment benches default to the smoke-scale configuration so that
// `go test -bench=. -benchmem` finishes in minutes; set
// ELEVPRIVACY_BENCH_SCALE=full to run the laptop-scale configuration the
// EXPERIMENTS.md numbers were produced with (tens of minutes).

import (
	"os"
	"strconv"
	"testing"

	"elevprivacy"
	"elevprivacy/internal/experiments"
)

// benchConfig picks the experiment scale from the environment.
func benchConfig() experiments.Config {
	if os.Getenv("ELEVPRIVACY_BENCH_SCALE") == "full" {
		return experiments.Default()
	}
	return experiments.Quick()
}

// runExperiment executes one experiment per benchmark iteration and
// reports the first numeric cell of the last row as a headline metric.
func runExperiment(b *testing.B, run func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		table, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table)
			reportHeadline(b, table)
		}
	}
}

// reportHeadline exposes the last row's last numeric cell as a metric so
// `-bench` output carries the reproduced value.
func reportHeadline(b *testing.B, table *experiments.Table) {
	b.Helper()
	if len(table.Rows) == 0 {
		return
	}
	last := table.Rows[len(table.Rows)-1]
	for i := len(last) - 1; i >= 0; i-- {
		if v, err := strconv.ParseFloat(last[i], 64); err == nil {
			b.ReportMetric(v, "headline")
			return
		}
	}
}

// benchAttackInputs builds a trained text attack plus a profile batch for
// the serving-path benchmarks below.
func benchAttackInputs(b *testing.B) (*elevprivacy.TextAttack, [][]float64) {
	b.Helper()
	cfg := elevprivacy.DefaultDatasetConfig()
	cfg.Scale = 0.05
	cfg.MinPerClass = 12
	cfg.ProfileSamples = 60
	cfg.Seed = 42
	d, err := elevprivacy.NewUserSpecificDataset(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tc := elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierSVM)
	tc.MaxFeatures = 512
	tc.Seed = 42
	attack, err := elevprivacy.TrainTextAttack(d, tc)
	if err != nil {
		b.Fatal(err)
	}
	var profiles [][]float64
	for i := range d.Samples {
		profiles = append(profiles, d.Samples[i].Elevations)
	}
	return attack, profiles
}

// BenchmarkTextAttackPredictLoop vs BenchmarkTextAttackPredictBatch compare
// per-profile PredictLocation calls with one PredictLocations batch over
// the same profiles — the headline Predict-vs-PredictBatch number for the
// whole attack stack (featurization + classifier).
func BenchmarkTextAttackPredictLoop(b *testing.B) {
	attack, profiles := benchAttackInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			if _, err := attack.PredictLocation(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTextAttackPredictBatch(b *testing.B) {
	attack, profiles := benchAttackInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.PredictLocations(profiles); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Survey(b *testing.B) {
	runExperiment(b, experiments.Figure1Survey)
}

func BenchmarkTable1UserDataset(b *testing.B) {
	runExperiment(b, experiments.Table1UserDataset)
}

func BenchmarkTable2CityDataset(b *testing.B) {
	runExperiment(b, experiments.Table2CityDataset)
}

func BenchmarkTable3BoroughDataset(b *testing.B) {
	runExperiment(b, experiments.Table3BoroughDataset)
}

func BenchmarkTable4TM1Text(b *testing.B) {
	runExperiment(b, experiments.Table4TM1Text)
}

func BenchmarkFigure8TM2Text(b *testing.B) {
	runExperiment(b, experiments.Figure8TM2Text)
}

func BenchmarkTable5TM3Text(b *testing.B) {
	runExperiment(b, experiments.Table5TM3Text)
}

func BenchmarkFigure9TM2OverlapSim(b *testing.B) {
	runExperiment(b, experiments.Figure9TM2OverlapSim)
}

func BenchmarkTable6TM3OverlapSim(b *testing.B) {
	runExperiment(b, experiments.Table6TM3OverlapSim)
}

func BenchmarkTable7ImageMethods(b *testing.B) {
	runExperiment(b, experiments.Table7ImageMethods)
}

func BenchmarkTable8FineTuneEpochs(b *testing.B) {
	runExperiment(b, experiments.Table8FineTuneEpochs)
}

func BenchmarkTable9FineTuneTM2(b *testing.B) {
	runExperiment(b, experiments.Table9FineTuneTM2)
}

func BenchmarkAblationNGramOrder(b *testing.B) {
	runExperiment(b, experiments.AblationNGramOrder)
}

func BenchmarkAblationDiscretization(b *testing.B) {
	runExperiment(b, experiments.AblationDiscretization)
}

func BenchmarkAblationImageSize(b *testing.B) {
	runExperiment(b, experiments.AblationImageSize)
}

func BenchmarkAblationFeatureThreshold(b *testing.B) {
	runExperiment(b, experiments.AblationFeatureThreshold)
}

func BenchmarkAblationForestSize(b *testing.B) {
	runExperiment(b, experiments.AblationForestSize)
}

func BenchmarkExtensionDefenses(b *testing.B) {
	runExperiment(b, experiments.ExtensionDefenses)
}

func BenchmarkExtensionSpectralBaseline(b *testing.B) {
	runExperiment(b, experiments.ExtensionSpectralBaseline)
}

func BenchmarkExtensionConfusionAnalysis(b *testing.B) {
	runExperiment(b, experiments.ExtensionConfusionAnalysis)
}
