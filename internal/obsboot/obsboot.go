// Package obsboot wires the telemetry subsystem into a CLI: the four flags
// every long-running binary grows (-metrics-addr, -trace-out, -log-level,
// -log-json), the admin HTTP endpoint behind -metrics-addr, and the Chrome
// trace export behind -trace-out. The obs package itself stays stdlib-only;
// this package is where obs meets httpx (admin mux) and durable (atomic
// trace file), so the CLIs share one implementation instead of four copies.
package obsboot

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
)

// Flags holds the telemetry flag values; populate via Register, then call
// Start after flag.Parse.
type Flags struct {
	// MetricsAddr, when non-empty, serves /metrics, /healthz, and pprof on
	// this address for the life of the process.
	MetricsAddr string
	// TraceOut, when non-empty, enables run-scoped tracing and writes the
	// collected spans to this path (Chrome trace_event JSON) on Close.
	TraceOut string
	// LogLevel is the minimum level the process logger emits.
	LogLevel string
	// LogJSON switches the logger from key=value lines to JSON records.
	LogJSON bool
}

// Register declares the telemetry flags on fs (the default flag set when
// nil) and returns the struct their values land in.
func Register(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event JSON of the run to this path (empty = off)")
	fs.StringVar(&f.LogLevel, "log-level", "info", "minimum log level: debug, info, warn, error")
	fs.BoolVar(&f.LogJSON, "log-json", false, "emit logs as JSON records instead of key=value lines")
	return f
}

// PoolFlags holds the endpoint-pool tuning knobs a CLI grows once it talks
// to a sharded serving tier; populate via RegisterPool, then hand
// Options(service) to httpx.NewPool. Shared here so every sweep binary
// exposes the same four flags instead of inventing its own spellings.
type PoolFlags struct {
	// HealthInterval is the background /healthz probe period; 0 disables
	// active probing (passive down-marking still applies).
	HealthInterval time.Duration
	// DownTTL is how long a passive down mark keeps an endpoint out of
	// selection before it gets an optimistic retry.
	DownTTL time.Duration
	// BreakerThreshold is the consecutive failures that open an endpoint's
	// circuit breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before half-open.
	BreakerCooldown time.Duration
}

// RegisterPool declares the pool flags on fs (the default flag set when
// nil) and returns the struct their values land in.
func RegisterPool(fs *flag.FlagSet) *PoolFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &PoolFlags{}
	fs.DurationVar(&f.HealthInterval, "pool-health-interval", httpx.DefaultHealthInterval,
		"endpoint pool /healthz probe period (0 = passive marking only)")
	fs.DurationVar(&f.DownTTL, "pool-down-ttl", 2*time.Second,
		"how long a down-marked endpoint stays out of pool selection before an optimistic retry")
	fs.IntVar(&f.BreakerThreshold, "pool-breaker-threshold", 8,
		"consecutive failures that open an endpoint's circuit breaker")
	fs.DurationVar(&f.BreakerCooldown, "pool-breaker-cooldown", 3*time.Second,
		"open period before an endpoint breaker admits a half-open probe")
	return f
}

// Options converts the flag values into pool options, instrumented under
// the given service label.
func (f *PoolFlags) Options(service string) []httpx.PoolOption {
	return []httpx.PoolOption{
		httpx.WithPoolHealthInterval(f.HealthInterval),
		httpx.WithPoolDownTTL(f.DownTTL),
		httpx.WithPoolBreaker(f.BreakerThreshold, f.BreakerCooldown),
		httpx.WithPoolMetrics(service),
	}
}

// JournalFlags holds the work-journal tuning knobs a durable CLI exposes;
// populate via RegisterJournal, then pass SyncEvery to OpenJournal.
type JournalFlags struct {
	// SyncEvery is the journal's fsync batch: records appended per fsync
	// (1 = fsync every record).
	SyncEvery int
}

// RegisterJournal declares the journal flags on fs (the default flag set
// when nil) with def as the -journal-sync-every default. The default
// differs by workload on purpose: mining checkpoints pass
// durable.DefaultSyncEvery (a crash redoes at most a few profiles), while
// the ingest spill path passes a much tighter bound because its fsync
// batch is the window of acknowledged-but-lost activities.
func RegisterJournal(fs *flag.FlagSet, def int) *JournalFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	if def <= 0 {
		def = durable.DefaultSyncEvery
	}
	f := &JournalFlags{}
	fs.IntVar(&f.SyncEvery, "journal-sync-every", def,
		"journal fsync batch: records appended per fsync (1 = every record)")
	return f
}

// Telemetry is the running telemetry plumbing behind the flags. Always call
// Close — it is what flushes the trace file.
type Telemetry struct {
	traceOut string
	admin    *AdminServer
}

// AdminServer is a running admin HTTP endpoint: /healthz, /metrics, and
// pprof from httpx.NewServeMux, plus an optional app handler (e.g. the
// scenario orchestrator's API) mounted under it.
type AdminServer struct {
	srv *http.Server
}

// ServeAdmin starts an admin HTTP server on addr. service names the health
// probe; app, when non-nil, handles every path the mux's built-ins don't.
// An unusable address surfaces as an error now instead of silently serving
// nothing for the whole run.
func ServeAdmin(addr, service string, app http.Handler) (*AdminServer, error) {
	handler := httpx.NewServeMux(app, httpx.MuxConfig{Service: service, Pprof: true})
	a := &AdminServer{
		srv: &http.Server{Addr: addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second},
	}
	lnErr := make(chan error, 1)
	go func() {
		err := a.srv.ListenAndServe()
		select {
		case lnErr <- err:
		default:
		}
	}()
	select {
	case err := <-lnErr:
		if err != nil && err != http.ErrServerClosed {
			return nil, fmt.Errorf("obsboot: admin server: %w", err)
		}
	case <-time.After(100 * time.Millisecond):
	}
	obs.DefaultLogger().Info("admin endpoint up", "addr", addr, "service", service)
	return a, nil
}

// Close shuts the server down gracefully. Safe on nil.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return a.srv.Shutdown(ctx)
}

// Start applies the flag values: installs the process logger, enables
// tracing when a trace path is set, and (when -metrics-addr is set) starts
// the admin HTTP server. service names the admin endpoint's health probe.
func (f *Flags) Start(service string) (*Telemetry, error) {
	level, err := obs.ParseLevel(f.LogLevel)
	if err != nil {
		return nil, err
	}
	obs.SetDefaultLogger(obs.NewLogger(os.Stderr, level, f.LogJSON))

	t := &Telemetry{traceOut: f.TraceOut}
	if f.TraceOut != "" {
		// The service name rides along in the trace file (processName), so
		// the fleet merger can label this process's lane without guessing
		// from file names.
		obs.EnableTracing(obs.DefaultTraceCapacity).SetName(service)
	}
	if f.MetricsAddr != "" {
		admin, err := ServeAdmin(f.MetricsAddr, service, nil)
		if err != nil {
			return nil, err
		}
		t.admin = admin
	}
	return t, nil
}

// Close shuts the admin server down and writes the trace file (atomically;
// a crash mid-write never leaves a torn trace). Safe on a nil receiver.
func (t *Telemetry) Close() error {
	if t == nil {
		return nil
	}
	_ = t.admin.Close()
	if t.traceOut != "" {
		tracer := obs.DefaultTracer()
		if tracer != nil {
			err := durable.WriteFileAtomic(t.traceOut, 0o644, func(w io.Writer) error {
				return tracer.WriteChromeTrace(w)
			})
			if err != nil {
				return fmt.Errorf("obsboot: writing trace: %w", err)
			}
			// The ring bounds memory by overwriting the oldest spans; that
			// loss is silent at record time, so surface it where the user
			// will look — next to the file they are about to open.
			if dropped := tracer.Dropped(); dropped > 0 {
				obs.DefaultLogger().Warn("trace ring overflowed; oldest spans were overwritten",
					"path", t.traceOut, "dropped", fmt.Sprint(dropped),
					"capacity", fmt.Sprint(tracer.Len()))
			}
			obs.DefaultLogger().Info("trace written", "path", t.traceOut, "spans", fmt.Sprint(tracer.Len()))
		}
	}
	return nil
}
