// Package obsboot wires the telemetry subsystem into a CLI: the four flags
// every long-running binary grows (-metrics-addr, -trace-out, -log-level,
// -log-json), the admin HTTP endpoint behind -metrics-addr, and the Chrome
// trace export behind -trace-out. The obs package itself stays stdlib-only;
// this package is where obs meets httpx (admin mux) and durable (atomic
// trace file), so the CLIs share one implementation instead of four copies.
package obsboot

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
)

// Flags holds the telemetry flag values; populate via Register, then call
// Start after flag.Parse.
type Flags struct {
	// MetricsAddr, when non-empty, serves /metrics, /healthz, and pprof on
	// this address for the life of the process.
	MetricsAddr string
	// TraceOut, when non-empty, enables run-scoped tracing and writes the
	// collected spans to this path (Chrome trace_event JSON) on Close.
	TraceOut string
	// LogLevel is the minimum level the process logger emits.
	LogLevel string
	// LogJSON switches the logger from key=value lines to JSON records.
	LogJSON bool
}

// Register declares the telemetry flags on fs (the default flag set when
// nil) and returns the struct their values land in.
func Register(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event JSON of the run to this path (empty = off)")
	fs.StringVar(&f.LogLevel, "log-level", "info", "minimum log level: debug, info, warn, error")
	fs.BoolVar(&f.LogJSON, "log-json", false, "emit logs as JSON records instead of key=value lines")
	return f
}

// Telemetry is the running telemetry plumbing behind the flags. Always call
// Close — it is what flushes the trace file.
type Telemetry struct {
	traceOut string
	srv      *http.Server
	srvErr   chan error
}

// Start applies the flag values: installs the process logger, enables
// tracing when a trace path is set, and (when -metrics-addr is set) starts
// the admin HTTP server. service names the admin endpoint's health probe.
func (f *Flags) Start(service string) (*Telemetry, error) {
	level, err := obs.ParseLevel(f.LogLevel)
	if err != nil {
		return nil, err
	}
	obs.SetDefaultLogger(obs.NewLogger(os.Stderr, level, f.LogJSON))

	t := &Telemetry{traceOut: f.TraceOut}
	if f.TraceOut != "" {
		obs.EnableTracing(obs.DefaultTraceCapacity)
	}
	if f.MetricsAddr != "" {
		handler := httpx.NewServeMux(nil, httpx.MuxConfig{Service: service, Pprof: true})
		t.srv = &http.Server{Addr: f.MetricsAddr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
		t.srvErr = make(chan error, 1)
		lnErr := make(chan error, 1)
		go func() {
			err := t.srv.ListenAndServe()
			select {
			case lnErr <- err:
			default:
			}
			t.srvErr <- err
		}()
		// Surface an unusable address now instead of silently serving
		// nothing for the whole run.
		select {
		case err := <-lnErr:
			if err != nil && err != http.ErrServerClosed {
				return nil, fmt.Errorf("obsboot: metrics server: %w", err)
			}
		case <-time.After(100 * time.Millisecond):
		}
		obs.DefaultLogger().Info("metrics endpoint up", "addr", f.MetricsAddr, "service", service)
	}
	return t, nil
}

// Close shuts the admin server down and writes the trace file (atomically;
// a crash mid-write never leaves a torn trace). Safe on a nil receiver.
func (t *Telemetry) Close() error {
	if t == nil {
		return nil
	}
	if t.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = t.srv.Shutdown(ctx)
		cancel()
	}
	if t.traceOut != "" {
		tracer := obs.DefaultTracer()
		if tracer != nil {
			err := durable.WriteFileAtomic(t.traceOut, 0o644, func(w io.Writer) error {
				return tracer.WriteChromeTrace(w)
			})
			if err != nil {
				return fmt.Errorf("obsboot: writing trace: %w", err)
			}
			obs.DefaultLogger().Info("trace written", "path", t.traceOut, "spans", fmt.Sprint(tracer.Len()))
		}
	}
	return nil
}
