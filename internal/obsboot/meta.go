package obsboot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
)

// Checkpoint run metadata: every durable CLI (elevmine, experiments, the
// scenario orchestrator) snapshots the same three things next to its journal
// — what configuration the journal belongs to, how healthy the HTTP
// transport was, and the metrics registry so telemetry accumulates across a
// crash/resume boundary. This file is the one shared implementation; the
// CLIs used to carry private copies.

// runMetaVersion is the snapshot envelope version for meta files.
const runMetaVersion = 1

// RunMeta is the checkpoint metadata snapshot.
type RunMeta struct {
	// Tool names the binary that wrote the snapshot.
	Tool string `json:"tool"`
	// Config is the tool's run configuration, marshaled by the caller so
	// each CLI keeps its own shape.
	Config json.RawMessage `json:"config,omitempty"`
	// Clients records transport health per service client.
	Clients map[string]httpx.Stats `json:"clients,omitempty"`
	// Journal is the work journal's state at write time.
	Journal durable.JournalStats `json:"journal"`
	// Metrics is the obs registry snapshot at write time; a resumed run
	// reloads it so counters and histograms accumulate across crashes.
	Metrics *obs.Dump `json:"metrics,omitempty"`
}

// OpenJournal opens the work journal <dir>/<name> ("" dir disables
// checkpointing; the returned nil journal remembers nothing). Without
// resume, any previous journal is discarded, so stale state from an
// unrelated run can never leak in. syncEvery sets the journal's fsync
// batch (records per fsync; 1 = every record); zero or negative keeps
// durable.DefaultSyncEvery. Mining checkpoints tolerate the loose default
// — at worst a crash redoes a few profiles — while the ingest spill path
// runs much tighter, because there the batch size bounds acknowledged-
// but-lost activities.
func OpenJournal(dir, name string, resume bool, syncEvery int) (*durable.Journal, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, name)
	if !resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	j, err := durable.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	if syncEvery > 0 {
		j.SyncEvery = syncEvery
	}
	return j, nil
}

// SaveRunMeta snapshots run metadata to <dir>/<name> (atomic + checksummed).
// When meta.Metrics is nil, the default registry is dumped in — the common
// case; pass an explicit dump only to snapshot a different registry. A ""
// dir is a no-op.
func SaveRunMeta(dir, name string, meta RunMeta) error {
	if dir == "" {
		return nil
	}
	if meta.Metrics == nil {
		dump := obs.DefaultRegistry().Dump()
		meta.Metrics = &dump
	}
	return durable.SaveSnapshot(filepath.Join(dir, name), runMetaVersion, meta)
}

// LoadRunMeta reads a meta snapshot. A missing file returns os.ErrNotExist
// (first run under this checkpoint dir); a torn or corrupt one returns a
// *durable.FormatError.
func LoadRunMeta(dir, name string) (*RunMeta, error) {
	var meta RunMeta
	if err := durable.LoadSnapshot(filepath.Join(dir, name), runMetaVersion, &meta); err != nil {
		return nil, err
	}
	return &meta, nil
}

// RestoreRunMetrics replays the previous run's metrics snapshot into the
// process registry, so /metrics and the final meta file stay cumulative
// across the crash/resume boundary. A missing meta file (or "" dir) is not
// an error; a present-but-unreadable one is.
func RestoreRunMetrics(dir, name string) error {
	if dir == "" {
		return nil
	}
	meta, err := LoadRunMeta(dir, name)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("obsboot: restoring run metrics: %w", err)
	}
	if meta.Metrics == nil {
		return nil
	}
	return obs.DefaultRegistry().Load(*meta.Metrics)
}
