package obsboot

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
)

func TestRunMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := RunMeta{
		Tool:    "testtool",
		Config:  json.RawMessage(`{"grid":4}`),
		Clients: map[string]httpx.Stats{"segments": {Requests: 9, Attempts: 12}},
		Journal: durable.JournalStats{Keys: 3},
	}
	if err := SaveRunMeta(dir, "test.meta", in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadRunMeta(dir, "test.meta")
	if err != nil {
		t.Fatal(err)
	}
	if out.Tool != "testtool" || string(out.Config) != `{"grid":4}` {
		t.Errorf("round trip lost tool/config: %+v", out)
	}
	if out.Clients["segments"].Attempts != 12 {
		t.Errorf("client stats lost: %+v", out.Clients)
	}
	if out.Journal.Keys != 3 {
		t.Errorf("journal stats lost: %+v", out.Journal)
	}
	// SaveRunMeta fills Metrics from the default registry when nil.
	if out.Metrics == nil {
		t.Error("metrics snapshot not filled in")
	}
}

func TestSaveRunMetaNoDirIsNoop(t *testing.T) {
	if err := SaveRunMeta("", "x.meta", RunMeta{Tool: "t"}); err != nil {
		t.Fatalf("empty dir should be a no-op: %v", err)
	}
}

func TestRestoreRunMetrics(t *testing.T) {
	// Missing file (first run) and empty dir are both non-errors.
	if err := RestoreRunMetrics(t.TempDir(), "absent.meta"); err != nil {
		t.Errorf("missing meta file: %v", err)
	}
	if err := RestoreRunMetrics("", "absent.meta"); err != nil {
		t.Errorf("empty dir: %v", err)
	}

	// A saved snapshot replays into the registry cumulatively.
	dir := t.TempDir()
	c := obs.GetCounter("obsboot_meta_test_total")
	c.Add(5)
	if err := SaveRunMeta(dir, "run.meta", RunMeta{Tool: "t"}); err != nil {
		t.Fatal(err)
	}
	c.Add(-c.Value()) // simulate a fresh process
	if err := RestoreRunMetrics(dir, "run.meta"); err != nil {
		t.Fatal(err)
	}
	if got := c.Value(); got != 5 {
		t.Errorf("restored counter = %d, want 5", got)
	}

	// A corrupt meta file is an error, not silence.
	if err := os.WriteFile(filepath.Join(dir, "torn.meta"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RestoreRunMetrics(dir, "torn.meta"); err == nil {
		t.Error("corrupt meta file restored silently")
	}
}

func TestOpenJournal(t *testing.T) {
	j, err := OpenJournal("", "x.journal", false, 0)
	if err != nil || j != nil {
		t.Fatalf("OpenJournal(\"\") = %v, %v; want nil, nil", j, err)
	}

	dir := filepath.Join(t.TempDir(), "nested") // MkdirAll territory
	j1, err := OpenJournal(dir, "work.journal", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Put("k", 1); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// resume keeps entries; fresh open discards them.
	j2, err := OpenJournal(dir, "work.journal", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Has("k") {
		t.Error("resume open lost the journal entry")
	}
	j2.Close()
	j3, err := OpenJournal(dir, "work.journal", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Has("k") {
		t.Error("fresh open kept a stale journal entry")
	}
	if j3.SyncEvery != durable.DefaultSyncEvery {
		t.Errorf("syncEvery 0 overrode the journal default: %d", j3.SyncEvery)
	}

	j4, err := OpenJournal(dir, "tight.journal", false, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	if j4.SyncEvery != 2 {
		t.Errorf("SyncEvery = %d, want 2", j4.SyncEvery)
	}
}
