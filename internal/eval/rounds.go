package eval

import (
	"fmt"
	"sort"
)

// Round is one fine-tuning stage (paper Figs. 10-11): the labels included
// and the balanced per-class sample budget.
type Round struct {
	// Labels are the classes present in the round's dataset.
	Labels []string
	// PerClass is the balanced sample count per included class.
	PerClass int
}

// PlanRounds builds the paper's fine-tuning schedule from per-class sample
// counts. Creation order starts with all classes balanced at the smallest
// class size, then repeatedly discards the smallest remaining class(es);
// training order is the REVERSE (fewest classes first, all classes last),
// which is what this function returns.
//
// maxRounds caps the schedule; when there are more droppable classes than
// rounds, several classes are dropped per step (the paper drops 1,2,1,2
// classes for its 10-class, 5-round TM-3 schedule).
func PlanRounds(counts map[string]int, maxRounds int) ([]Round, error) {
	if len(counts) < 2 {
		return nil, fmt.Errorf("eval: need >= 2 classes, got %d", len(counts))
	}
	if maxRounds < 1 {
		return nil, fmt.Errorf("eval: maxRounds must be >= 1, got %d", maxRounds)
	}
	type classSize struct {
		label string
		size  int
	}
	classes := make([]classSize, 0, len(counts))
	for label, n := range counts {
		if n < 1 {
			return nil, fmt.Errorf("eval: class %q has no samples", label)
		}
		classes = append(classes, classSize{label, n})
	}
	// Descending by size; deterministic tie-break on label.
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].size != classes[j].size {
			return classes[i].size > classes[j].size
		}
		return classes[i].label < classes[j].label
	})

	k := len(classes)
	rounds := k - 1 // creation rounds: all classes ... down to the 2 largest
	if rounds > maxRounds {
		rounds = maxRounds
	}

	// Choose the retained-class counts for each creation round: always
	// include the all-classes round; space the rest as evenly as possible
	// between k and 2.
	retained := make([]int, rounds)
	for r := 0; r < rounds; r++ {
		// r=0 keeps all k classes; the last round keeps the fewest.
		retained[r] = k - ((k-2)*r+(rounds-1)/2)/max(1, rounds-1)
		if rounds == 1 {
			retained[r] = k
		}
	}

	out := make([]Round, 0, rounds)
	// Training order = reverse creation order: fewest classes first.
	for r := rounds - 1; r >= 0; r-- {
		m := retained[r]
		labels := make([]string, 0, m)
		for i := 0; i < m; i++ {
			labels = append(labels, classes[i].label)
		}
		// Balanced at the smallest included class's size.
		out = append(out, Round{
			Labels:   labels,
			PerClass: classes[m-1].size,
		})
	}
	return out, nil
}
