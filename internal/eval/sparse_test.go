package eval

import (
	"math/rand"
	"testing"

	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/ml/svm"
)

// TestCrossValidateSparseMatchesDense pins that the sparse CV entry point
// produces exactly the metrics of the dense one on the same data — folds,
// seeds, and scores all line up bit for bit.
func TestCrossValidateSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []int
	// Mostly-zero rows with class-indicative nonzero positions, the shape
	// of a bag-of-words batch.
	for c := 0; c < 3; c++ {
		for i := 0; i < 20; i++ {
			row := make([]float64, 30)
			row[c*7] = 1 + rng.Float64()
			row[c*7+2] = rng.Float64()
			row[rng.Intn(30)] += 0.1
			x = append(x, row)
			y = append(y, c)
		}
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (ml.Classifier, error) { return svm.New(svm.DefaultConfig(3)) }

	dense, err := CrossValidate(xm, y, 3, 5, 7, factory)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := CrossValidateSparse(linalg.SparseFromDense(xm), y, 3, 5, 7, factory)
	if err != nil {
		t.Fatal(err)
	}
	if dense != sparse {
		t.Fatalf("sparse CV metrics %+v, dense %+v", sparse, dense)
	}
}
