package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/ml/svm"
)

func TestConfusionMatrixBasics(t *testing.T) {
	cm, err := NewConfusionMatrix(2)
	if err != nil {
		t.Fatal(err)
	}
	// 3 correct class 0, 1 correct class 1, 1 miss each way.
	for i := 0; i < 3; i++ {
		_ = cm.Add(0, 0)
	}
	_ = cm.Add(1, 1)
	_ = cm.Add(0, 1)
	_ = cm.Add(1, 0)

	if cm.Total() != 6 {
		t.Errorf("Total = %d", cm.Total())
	}
	if got := cm.Accuracy(); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("Accuracy = %f", got)
	}
	if got := cm.Count(0, 1); got != 1 {
		t.Errorf("Count(0,1) = %d", got)
	}
}

func TestConfusionMatrixValidation(t *testing.T) {
	if _, err := NewConfusionMatrix(1); err == nil {
		t.Error("1 class accepted")
	}
	cm, err := NewConfusionMatrix(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Add(0, 2); err == nil {
		t.Error("out-of-range predicted accepted")
	}
	if err := cm.Add(-1, 0); err == nil {
		t.Error("negative actual accepted")
	}
}

func TestPerfectClassifierMetrics(t *testing.T) {
	cm, err := NewConfusionMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		for i := 0; i < 5; i++ {
			_ = cm.Add(c, c)
		}
	}
	m := cm.Metrics()
	for name, v := range map[string]float64{
		"accuracy": m.Accuracy, "precision": m.Precision,
		"recall": m.Recall, "f1": m.F1, "specificity": m.Specificity,
	} {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("%s = %f, want 1", name, v)
		}
	}
}

func TestKnownConfusionMetrics(t *testing.T) {
	// Binary: TP=8 (class1 as 1), FN=2, FP=4, TN=6.
	cm, err := NewConfusionMatrix(2)
	if err != nil {
		t.Fatal(err)
	}
	add := func(a, p, n int) {
		for i := 0; i < n; i++ {
			_ = cm.Add(a, p)
		}
	}
	add(1, 1, 8)
	add(1, 0, 2)
	add(0, 1, 4)
	add(0, 0, 6)

	// Class 1: TP=8 FN=2 FP=4 TN=6 -> P = 8/12, R = 8/10, spec = 6/10.
	// Class 0: TP=6 FN=4 FP=2 TN=8 -> P = 6/8, R = 6/10, spec = 8/10.
	wantPrecision := (8.0/12 + 6.0/8) / 2
	wantRecall := (8.0/10 + 6.0/10) / 2
	wantSpec := (6.0/10 + 8.0/10) / 2
	f1c1 := 2 * 8.0 / (2*8 + 4 + 2)
	f1c0 := 2 * 6.0 / (2*6 + 2 + 4)
	wantF1 := (f1c1 + f1c0) / 2

	m := cm.Metrics()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"accuracy", m.Accuracy, 14.0 / 20},
		{"precision", m.Precision, wantPrecision},
		{"recall", m.Recall, wantRecall},
		{"specificity", m.Specificity, wantSpec},
		{"f1", m.F1, wantF1},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %f, want %f", c.name, c.got, c.want)
		}
	}
}

func TestBiasedClassifierHighAccuracyLowRecall(t *testing.T) {
	// The paper's "biased" phenomenon: always predicting the majority class
	// on unbalanced data yields high accuracy but poor macro recall.
	cm, err := NewConfusionMatrix(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 95; i++ {
		_ = cm.Add(0, 0)
	}
	for i := 0; i < 5; i++ {
		_ = cm.Add(1, 0) // minority always missed
	}
	m := cm.Metrics()
	if m.Accuracy < 0.9 {
		t.Errorf("accuracy = %f", m.Accuracy)
	}
	if m.Recall > 0.55 {
		t.Errorf("macro recall = %f, should be dragged down by the minority class", m.Recall)
	}
}

func TestMetricsBoundedProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		cm, err := NewConfusionMatrix(4)
		if err != nil {
			return false
		}
		for _, p := range pairs {
			_ = cm.Add(int(p)%4, int(p/4)%4)
		}
		m := cm.Metrics()
		for _, v := range []float64{m.Accuracy, m.Precision, m.Recall, m.F1, m.Specificity} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMetrics(t *testing.T) {
	ms := []Metrics{
		{Accuracy: 0.8, Precision: 0.6, Recall: 0.4, F1: 0.5, Specificity: 0.9},
		{Accuracy: 0.6, Precision: 0.4, Recall: 0.2, F1: 0.3, Specificity: 0.7},
	}
	m := MeanMetrics(ms)
	if math.Abs(m.Accuracy-0.7) > 1e-12 || math.Abs(m.F1-0.4) > 1e-12 {
		t.Errorf("MeanMetrics = %+v", m)
	}
	if z := MeanMetrics(nil); z != (Metrics{}) {
		t.Errorf("empty MeanMetrics = %+v", z)
	}
}

func TestStratifiedKFold(t *testing.T) {
	labels := make([]int, 100)
	for i := range labels {
		labels[i] = i % 4
	}
	rng := rand.New(rand.NewSource(1))
	folds, err := StratifiedKFold(labels, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		if len(fold) != 20 {
			t.Errorf("fold size %d, want 20", len(fold))
		}
		perClass := map[int]int{}
		for _, i := range fold {
			if seen[i] {
				t.Fatalf("sample %d in two folds", i)
			}
			seen[i] = true
			perClass[labels[i]]++
		}
		for c, n := range perClass {
			if n != 5 {
				t.Errorf("fold has %d of class %d, want 5", n, c)
			}
		}
	}
	if len(seen) != 100 {
		t.Errorf("folds cover %d samples", len(seen))
	}
}

func TestStratifiedKFoldValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := StratifiedKFold([]int{0, 1}, 1, rng); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := StratifiedKFold([]int{0}, 2, rng); err == nil {
		t.Error("fewer samples than folds accepted")
	}
}

func TestCrossValidateOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	// Centers point in distinct directions so the blobs stay separable
	// under the SVM's internal L2 normalization.
	centers := [][2]float64{{1, 5}, {5, 1}}
	for c := 0; c < 2; c++ {
		for i := 0; i < 30; i++ {
			x = append(x, []float64{
				centers[c][0] + rng.NormFloat64()*0.5,
				centers[c][1] + rng.NormFloat64()*0.5,
			})
			y = append(y, c)
		}
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	m, err := CrossValidate(xm, y, 2, 5, 7, func() (ml.Classifier, error) {
		return svm.New(svm.DefaultConfig(2))
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.95 {
		t.Errorf("CV accuracy = %f", m.Accuracy)
	}
	if m.Recall < 0.9 || m.F1 < 0.9 {
		t.Errorf("CV metrics = %+v", m)
	}
}

func TestCrossValidateValidation(t *testing.T) {
	if _, err := CrossValidate(linalg.NewMatrix(1, 1), []int{0, 1}, 2, 2, 1, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestInverseClassWeights(t *testing.T) {
	labels := []int{0, 0, 0, 0, 1} // 4 vs 1
	w, err := InverseClassWeights(labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio must be 4:1 in favor of the minority.
	if math.Abs(w[1]/w[0]-4) > 1e-12 {
		t.Errorf("weights = %v, want 4x ratio", w)
	}
	// Mean weight 1.
	if math.Abs((w[0]+w[1])/2-1) > 1e-12 {
		t.Errorf("weights not normalized: %v", w)
	}

	if _, err := InverseClassWeights([]int{0, 5}, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := InverseClassWeights(nil, 2); err == nil {
		t.Error("empty labels accepted")
	}
}

func TestPlanRoundsPaperTM1(t *testing.T) {
	// Table I: WDC 366, ORL 232, NYC 120, SD 18 -> 3 rounds (paper).
	counts := map[string]int{
		"Washington DC": 366,
		"Orlando":       232,
		"New York City": 120,
		"San Diego":     18,
	}
	rounds, err := PlanRounds(counts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(rounds))
	}
	// Training order: fewest classes first, all classes last.
	if len(rounds[0].Labels) >= len(rounds[len(rounds)-1].Labels) {
		t.Errorf("round order wrong: %d then %d classes",
			len(rounds[0].Labels), len(rounds[len(rounds)-1].Labels))
	}
	last := rounds[len(rounds)-1]
	if len(last.Labels) != 4 || last.PerClass != 18 {
		t.Errorf("final round = %+v, want all 4 classes at 18/class", last)
	}
	first := rounds[0]
	if len(first.Labels) != 2 || first.PerClass != 232 {
		t.Errorf("first round = %+v, want top-2 classes at 232/class", first)
	}
	// The biggest class appears in every round.
	for i, r := range rounds {
		found := false
		for _, l := range r.Labels {
			if l == "Washington DC" {
				found = true
			}
		}
		if !found {
			t.Errorf("round %d missing the largest class", i)
		}
	}
}

func TestPlanRoundsCapsRounds(t *testing.T) {
	// 10 classes with maxRounds 5 (paper's TM-3 schedule).
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		counts[string(rune('a'+i))] = (i + 1) * 50
	}
	rounds, err := PlanRounds(counts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 5 {
		t.Fatalf("rounds = %d, want 5", len(rounds))
	}
	// Class counts grow across training order and end at 10.
	prev := 0
	for _, r := range rounds {
		if len(r.Labels) < prev {
			t.Errorf("class count decreased: %d after %d", len(r.Labels), prev)
		}
		prev = len(r.Labels)
	}
	if prev != 10 {
		t.Errorf("final round has %d classes, want 10", prev)
	}
}

func TestPlanRoundsTwoClasses(t *testing.T) {
	rounds, err := PlanRounds(map[string]int{"a": 100, "b": 30}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 {
		t.Fatalf("rounds = %d, want 1 (WDC case)", len(rounds))
	}
	if len(rounds[0].Labels) != 2 || rounds[0].PerClass != 30 {
		t.Errorf("round = %+v", rounds[0])
	}
}

func TestPlanRoundsValidation(t *testing.T) {
	if _, err := PlanRounds(map[string]int{"a": 1}, 3); err == nil {
		t.Error("single class accepted")
	}
	if _, err := PlanRounds(map[string]int{"a": 1, "b": 0}, 3); err == nil {
		t.Error("empty class accepted")
	}
	if _, err := PlanRounds(map[string]int{"a": 1, "b": 1}, 0); err == nil {
		t.Error("maxRounds 0 accepted")
	}
}

func TestPerClassReport(t *testing.T) {
	cm, err := NewConfusionMatrix(2)
	if err != nil {
		t.Fatal(err)
	}
	// Class 1: TP=8 FN=2 FP=4 TN=6.
	for i := 0; i < 8; i++ {
		_ = cm.Add(1, 1)
	}
	for i := 0; i < 2; i++ {
		_ = cm.Add(1, 0)
	}
	for i := 0; i < 4; i++ {
		_ = cm.Add(0, 1)
	}
	for i := 0; i < 6; i++ {
		_ = cm.Add(0, 0)
	}
	reports := cm.PerClass()
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	r1 := reports[1]
	if r1.Support != 10 {
		t.Errorf("support = %d", r1.Support)
	}
	if math.Abs(r1.Precision-8.0/12) > 1e-12 || math.Abs(r1.Recall-0.8) > 1e-12 {
		t.Errorf("class 1 report = %+v", r1)
	}
	if math.Abs(r1.Specificity-0.6) > 1e-12 {
		t.Errorf("class 1 specificity = %f", r1.Specificity)
	}
}

func TestTopConfusions(t *testing.T) {
	cm, err := NewConfusionMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = cm.Add(0, 1)
	}
	for i := 0; i < 3; i++ {
		_ = cm.Add(2, 0)
	}
	_ = cm.Add(1, 1) // diagonal, excluded

	top := cm.TopConfusions(10)
	if len(top) != 2 {
		t.Fatalf("confusions = %v", top)
	}
	if top[0] != (Confusion{Actual: 0, Predicted: 1, Count: 5}) {
		t.Errorf("top = %+v", top[0])
	}
	// n caps the list.
	if got := cm.TopConfusions(1); len(got) != 1 {
		t.Errorf("capped = %v", got)
	}
}

func TestCrossValidateConfusionPools(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	centers := [][2]float64{{1, 5}, {5, 1}}
	for c := 0; c < 2; c++ {
		for i := 0; i < 20; i++ {
			x = append(x, []float64{
				centers[c][0] + rng.NormFloat64()*0.3,
				centers[c][1] + rng.NormFloat64()*0.3,
			})
			y = append(y, c)
		}
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := CrossValidateConfusion(xm, y, 2, 4, 7, func() (ml.Classifier, error) {
		return svm.New(svm.DefaultConfig(2))
	})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 40 {
		t.Errorf("pooled total = %d, want 40 (every sample scored once)", cm.Total())
	}
	if cm.Accuracy() < 0.95 {
		t.Errorf("pooled accuracy = %f", cm.Accuracy())
	}
}
