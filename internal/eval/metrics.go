// Package eval provides the evaluation machinery of the paper's
// experiments: confusion-matrix metrics (accuracy, macro precision/recall/
// F1, specificity), stratified k-fold cross-validation, inverse-frequency
// class weights, and the round planner for CNN fine-tuning.
package eval

import (
	"fmt"
	"sort"
)

// ConfusionMatrix accumulates (actual, predicted) pairs.
type ConfusionMatrix struct {
	classes int
	// counts[a][p] is how often actual class a was predicted as p.
	counts [][]int
	total  int
}

// NewConfusionMatrix allocates a matrix for the given class count.
func NewConfusionMatrix(classes int) (*ConfusionMatrix, error) {
	if classes < 2 {
		return nil, fmt.Errorf("eval: need >= 2 classes, got %d", classes)
	}
	counts := make([][]int, classes)
	for i := range counts {
		counts[i] = make([]int, classes)
	}
	return &ConfusionMatrix{classes: classes, counts: counts}, nil
}

// Add records one prediction.
func (cm *ConfusionMatrix) Add(actual, predicted int) error {
	if actual < 0 || actual >= cm.classes || predicted < 0 || predicted >= cm.classes {
		return fmt.Errorf("eval: labels (%d,%d) outside [0,%d)", actual, predicted, cm.classes)
	}
	cm.counts[actual][predicted]++
	cm.total++
	return nil
}

// Total returns the number of recorded predictions.
func (cm *ConfusionMatrix) Total() int { return cm.total }

// Count returns counts[actual][predicted].
func (cm *ConfusionMatrix) Count(actual, predicted int) int {
	return cm.counts[actual][predicted]
}

// Accuracy is the fraction of correct predictions.
func (cm *ConfusionMatrix) Accuracy() float64 {
	if cm.total == 0 {
		return 0
	}
	var correct int
	for c := 0; c < cm.classes; c++ {
		correct += cm.counts[c][c]
	}
	return float64(correct) / float64(cm.total)
}

// perClass returns TP, FP, FN, TN for class c.
func (cm *ConfusionMatrix) perClass(c int) (tp, fp, fn, tn int) {
	tp = cm.counts[c][c]
	for o := 0; o < cm.classes; o++ {
		if o == c {
			continue
		}
		fn += cm.counts[c][o]
		fp += cm.counts[o][c]
	}
	tn = cm.total - tp - fp - fn
	return tp, fp, fn, tn
}

// macroAverage averages f over classes that appear (as actual or predicted)
// in the matrix; classes with no presence are skipped, matching the common
// macro-metric convention.
func (cm *ConfusionMatrix) macroAverage(f func(tp, fp, fn, tn int) (float64, bool)) float64 {
	var sum float64
	var n int
	for c := 0; c < cm.classes; c++ {
		tp, fp, fn, tn := cm.perClass(c)
		if v, ok := f(tp, fp, fn, tn); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Precision is the macro-averaged precision TP/(TP+FP).
func (cm *ConfusionMatrix) Precision() float64 {
	return cm.macroAverage(func(tp, fp, fn, tn int) (float64, bool) {
		if tp+fp == 0 {
			return 0, tp+fn > 0 // class existed but nothing predicted: count 0
		}
		return float64(tp) / float64(tp+fp), true
	})
}

// Recall is the macro-averaged recall TP/(TP+FN).
func (cm *ConfusionMatrix) Recall() float64 {
	return cm.macroAverage(func(tp, fp, fn, tn int) (float64, bool) {
		if tp+fn == 0 {
			return 0, false // class absent from the test set
		}
		return float64(tp) / float64(tp+fn), true
	})
}

// F1 is the macro-averaged harmonic mean of per-class precision and recall.
func (cm *ConfusionMatrix) F1() float64 {
	return cm.macroAverage(func(tp, fp, fn, tn int) (float64, bool) {
		if tp+fn == 0 {
			return 0, false
		}
		denom := 2*tp + fp + fn
		if denom == 0 {
			return 0, true
		}
		return 2 * float64(tp) / float64(denom), true
	})
}

// Specificity is the macro-averaged true-negative rate TN/(TN+FP).
func (cm *ConfusionMatrix) Specificity() float64 {
	return cm.macroAverage(func(tp, fp, fn, tn int) (float64, bool) {
		if tn+fp == 0 {
			return 0, false
		}
		return float64(tn) / float64(tn+fp), true
	})
}

// Metrics is the bundle the paper's tables report.
type Metrics struct {
	Accuracy    float64
	Precision   float64
	Recall      float64
	F1          float64
	Specificity float64
}

// Metrics summarizes the matrix.
func (cm *ConfusionMatrix) Metrics() Metrics {
	return Metrics{
		Accuracy:    cm.Accuracy(),
		Precision:   cm.Precision(),
		Recall:      cm.Recall(),
		F1:          cm.F1(),
		Specificity: cm.Specificity(),
	}
}

// MeanMetrics averages a set of per-fold metrics.
func MeanMetrics(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var out Metrics
	for _, m := range ms {
		out.Accuracy += m.Accuracy
		out.Precision += m.Precision
		out.Recall += m.Recall
		out.F1 += m.F1
		out.Specificity += m.Specificity
	}
	n := float64(len(ms))
	out.Accuracy /= n
	out.Precision /= n
	out.Recall /= n
	out.F1 /= n
	out.Specificity /= n
	return out
}

// ClassReport is the per-class breakdown of a confusion matrix.
type ClassReport struct {
	// Class is the class index.
	Class int
	// Support is the number of actual samples of the class.
	Support int
	// Precision, Recall, F1, Specificity are the per-class scores.
	Precision   float64
	Recall      float64
	F1          float64
	Specificity float64
}

// PerClass returns one report per class, in class order.
func (cm *ConfusionMatrix) PerClass() []ClassReport {
	out := make([]ClassReport, 0, cm.classes)
	for c := 0; c < cm.classes; c++ {
		tp, fp, fn, tn := cm.perClass(c)
		r := ClassReport{Class: c, Support: tp + fn}
		if tp+fp > 0 {
			r.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			r.Recall = float64(tp) / float64(tp+fn)
		}
		if denom := 2*tp + fp + fn; denom > 0 {
			r.F1 = 2 * float64(tp) / float64(denom)
		}
		if tn+fp > 0 {
			r.Specificity = float64(tn) / float64(tn+fp)
		}
		out = append(out, r)
	}
	return out
}

// TopConfusions returns the n most frequent off-diagonal (actual,
// predicted) pairs, most frequent first.
func (cm *ConfusionMatrix) TopConfusions(n int) []Confusion {
	var all []Confusion
	for a := 0; a < cm.classes; a++ {
		for p := 0; p < cm.classes; p++ {
			if a != p && cm.counts[a][p] > 0 {
				all = append(all, Confusion{Actual: a, Predicted: p, Count: cm.counts[a][p]})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		if all[i].Actual != all[j].Actual {
			return all[i].Actual < all[j].Actual
		}
		return all[i].Predicted < all[j].Predicted
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Confusion is one off-diagonal confusion-matrix entry.
type Confusion struct {
	Actual    int
	Predicted int
	Count     int
}
