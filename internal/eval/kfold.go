package eval

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/obs"
)

// Evaluation telemetry: each concurrently evaluated fold (train + batch
// score) records its wall time, and whole cross-validations count through
// foldsTotal so dashboards can tell a stuck fold from an idle process.
var (
	foldSeconds = obs.GetHistogram("elevpriv_eval_fold_seconds", nil)
	foldsTotal  = obs.GetCounter("elevpriv_eval_folds_total")
)

// StratifiedKFold partitions sample indices into k folds with every class
// spread evenly across folds. Returns fold -> sample indices.
func StratifiedKFold(labels []int, k int, rng *rand.Rand) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k must be >= 2, got %d", k)
	}
	if len(labels) < k {
		return nil, fmt.Errorf("eval: %d samples for %d folds", len(labels), k)
	}

	byClass := map[int][]int{}
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}

	folds := make([][]int, k)
	// Deterministic class order: iterate labels ascending.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sortInts(classes)

	next := 0
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			folds[next%k] = append(folds[next%k], i)
			next++
		}
	}
	return folds, nil
}

// sortInts is insertion sort; class counts are tiny.
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// featData couples the CSR form of a feature set with a lazily
// materialized dense form. Classifiers with native sparse train/score
// paths never trigger the densify; the first fold that needs dense rows
// (a forest, say) materializes them once for all folds, guarded by the
// sync.Once so concurrent folds race safely.
type featData struct {
	sp   *linalg.SparseMatrix
	once sync.Once
	x    *linalg.Matrix
}

func (d *featData) rows() int {
	if d.sp != nil {
		return d.sp.Rows
	}
	return d.x.Rows
}

// dense returns the dense form, materializing it from the CSR form on
// first use.
func (d *featData) dense() *linalg.Matrix {
	d.once.Do(func() {
		if d.x == nil {
			d.x = d.sp.ToDense()
		}
	})
	return d.x
}

// CrossValidate runs k-fold cross-validation over a dense feature matrix
// (one sample per row): for each fold, a fresh classifier from factory
// trains on the remaining folds and is scored on the held-out fold with
// one PredictBatch call; per-fold metrics are averaged (the paper averages
// the results of the 10 folds). Folds evaluate concurrently; the stratified
// split and every classifier seed derive from seed, so results are
// deterministic regardless of scheduling.
func CrossValidate(x *linalg.Matrix, y []int, classes, k int, seed int64, factory func() (ml.Classifier, error)) (Metrics, error) {
	return crossValidate(&featData{x: x}, y, classes, k, seed, factory)
}

// CrossValidateSparse runs the same k-fold protocol over a CSR feature
// matrix, staying sparse end to end when the classifier allows it:
// training folds feed FitSparse for ml.SparseTrainer implementations and
// held-out folds feed PredictBatchSparse for ml.SparseBatchClassifier
// implementations. Classifiers without a sparse train path (the forest)
// trigger a single lazy densify shared across folds. Both sparse paths
// are bit-identical to their dense counterparts by interface contract, so
// metrics match CrossValidate on ToDense() exactly.
func CrossValidateSparse(sp *linalg.SparseMatrix, y []int, classes, k int, seed int64, factory func() (ml.Classifier, error)) (Metrics, error) {
	return crossValidate(&featData{sp: sp}, y, classes, k, seed, factory)
}

func crossValidate(d *featData, y []int, classes, k int, seed int64, factory func() (ml.Classifier, error)) (Metrics, error) {
	if d.rows() != len(y) {
		return Metrics{}, fmt.Errorf("eval: %d samples but %d labels", d.rows(), len(y))
	}
	rng := rand.New(rand.NewSource(seed))
	folds, err := StratifiedKFold(y, k, rng)
	if err != nil {
		return Metrics{}, err
	}

	cms, err := runFolds(d, y, classes, folds, factory)
	if err != nil {
		return Metrics{}, err
	}
	perFold := make([]Metrics, len(cms))
	for f, cm := range cms {
		perFold[f] = cm.Metrics()
	}
	return MeanMetrics(perFold), nil
}

// CrossValidateConfusion runs the same k-fold protocol but returns the
// POOLED confusion matrix over all folds, for error analysis (which
// classes get confused with which).
func CrossValidateConfusion(x *linalg.Matrix, y []int, classes, k int, seed int64, factory func() (ml.Classifier, error)) (*ConfusionMatrix, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("eval: %d samples but %d labels", x.Rows, len(y))
	}
	rng := rand.New(rand.NewSource(seed))
	folds, err := StratifiedKFold(y, k, rng)
	if err != nil {
		return nil, err
	}
	cms, err := runFolds(&featData{x: x}, y, classes, folds, factory)
	if err != nil {
		return nil, err
	}
	pooled, err := NewConfusionMatrix(classes)
	if err != nil {
		return nil, err
	}
	for _, cm := range cms {
		for a := 0; a < classes; a++ {
			for p := 0; p < classes; p++ {
				for n := 0; n < cm.Count(a, p); n++ {
					if err := pooled.Add(a, p); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return pooled, nil
}

// runFolds evaluates every fold concurrently; per-fold confusion matrices
// land in fixed slots, so results are deterministic.
func runFolds(d *featData, y []int, classes int, folds [][]int, factory func() (ml.Classifier, error)) ([]*ConfusionMatrix, error) {
	cms := make([]*ConfusionMatrix, len(folds))
	errs := make([]error, len(folds))
	var wg sync.WaitGroup
	for f := range folds {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			start := time.Now()
			cms[f], errs[f] = evaluateFold(d, y, classes, folds[f], factory)
			foldSeconds.ObserveSince(start)
			foldsTotal.Inc()
		}(f)
	}
	wg.Wait()
	for f, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eval: fold %d: %w", f, err)
		}
	}
	return cms, nil
}

// evaluateFold trains a fresh classifier on everything outside the fold
// and scores the fold in one batch prediction. With a CSR feature set,
// both halves stay sparse when the classifier's interfaces allow: training
// folds gather into a CSR sub-matrix for ml.SparseTrainer implementations,
// held-out folds for ml.SparseBatchClassifier ones. The dense fallbacks
// use zero-copy row views into the (lazily materialized) dense matrix for
// training and a gathered dense test matrix for scoring.
func evaluateFold(d *featData, y []int, classes int, fold []int, factory func() (ml.Classifier, error)) (*ConfusionMatrix, error) {
	holdout := map[int]bool{}
	for _, i := range fold {
		holdout[i] = true
	}
	n := d.rows()
	trainIdx := make([]int, 0, n-len(fold))
	trainY := make([]int, 0, n-len(fold))
	for i := 0; i < n; i++ {
		if !holdout[i] {
			trainIdx = append(trainIdx, i)
			trainY = append(trainY, y[i])
		}
	}

	clf, err := factory()
	if err != nil {
		return nil, err
	}
	if st, ok := clf.(ml.SparseTrainer); ok && d.sp != nil {
		err = st.FitSparse(d.sp.GatherRows(trainIdx), trainY)
	} else {
		x := d.dense()
		trainX := make([][]float64, len(trainIdx))
		for k, i := range trainIdx {
			trainX[k] = x.Row(i)
		}
		err = clf.Fit(trainX, trainY)
	}
	if err != nil {
		return nil, fmt.Errorf("fit: %w", err)
	}

	var preds []int
	if sc, ok := clf.(ml.SparseBatchClassifier); ok && d.sp != nil {
		preds, err = sc.PredictBatchSparse(d.sp.GatherRows(fold))
	} else {
		x := d.dense()
		testX := linalg.NewMatrix(len(fold), x.Cols)
		for k, i := range fold {
			copy(testX.Row(k), x.Row(i))
		}
		preds, err = clf.PredictBatch(testX)
	}
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}

	cm, err := NewConfusionMatrix(classes)
	if err != nil {
		return nil, err
	}
	for k, i := range fold {
		if err := cm.Add(y[i], preds[k]); err != nil {
			return nil, err
		}
	}
	return cm, nil
}

// InverseClassWeights returns per-class weights inversely proportional to
// class frequency, normalized so the mean weight is 1 — the paper's
// weighted-loss setting for unbalanced datasets.
func InverseClassWeights(labels []int, classes int) ([]float64, error) {
	if classes < 2 {
		return nil, fmt.Errorf("eval: need >= 2 classes, got %d", classes)
	}
	counts := make([]int, classes)
	for _, y := range labels {
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("eval: label %d outside [0,%d)", y, classes)
		}
		counts[y]++
	}
	weights := make([]float64, classes)
	var sum float64
	var present int
	for c, n := range counts {
		if n > 0 {
			weights[c] = 1 / float64(n)
			sum += weights[c]
			present++
		}
	}
	if present == 0 {
		return nil, fmt.Errorf("eval: no labels")
	}
	// Normalize to mean 1 over present classes.
	scale := float64(present) / sum
	for c := range weights {
		weights[c] *= scale
	}
	return weights, nil
}
