package eval

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/obs"
)

// Evaluation telemetry: each concurrently evaluated fold (train + batch
// score) records its wall time, and whole cross-validations count through
// foldsTotal so dashboards can tell a stuck fold from an idle process.
var (
	foldSeconds = obs.GetHistogram("elevpriv_eval_fold_seconds", nil)
	foldsTotal  = obs.GetCounter("elevpriv_eval_folds_total")
)

// StratifiedKFold partitions sample indices into k folds with every class
// spread evenly across folds. Returns fold -> sample indices.
func StratifiedKFold(labels []int, k int, rng *rand.Rand) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k must be >= 2, got %d", k)
	}
	if len(labels) < k {
		return nil, fmt.Errorf("eval: %d samples for %d folds", len(labels), k)
	}

	byClass := map[int][]int{}
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}

	folds := make([][]int, k)
	// Deterministic class order: iterate labels ascending.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sortInts(classes)

	next := 0
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			folds[next%k] = append(folds[next%k], i)
			next++
		}
	}
	return folds, nil
}

// sortInts is insertion sort; class counts are tiny.
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// CrossValidate runs k-fold cross-validation over a dense feature matrix
// (one sample per row): for each fold, a fresh classifier from factory
// trains on the remaining folds and is scored on the held-out fold with
// one PredictBatch call; per-fold metrics are averaged (the paper averages
// the results of the 10 folds). Folds evaluate concurrently; the stratified
// split and every classifier seed derive from seed, so results are
// deterministic regardless of scheduling.
func CrossValidate(x *linalg.Matrix, y []int, classes, k int, seed int64, factory func() (ml.Classifier, error)) (Metrics, error) {
	return crossValidate(x, nil, y, classes, k, seed, factory)
}

// CrossValidateSparse runs the same k-fold protocol over a CSR feature
// matrix. Training still walks dense rows (the Fit contract), materialized
// once here; held-out folds are gathered as CSR sub-matrices and scored
// through PredictBatchSparse whenever the classifier implements
// ml.SparseBatchClassifier, which is bit-identical to the dense score by
// that interface's contract — so metrics match CrossValidate on ToDense()
// exactly.
func CrossValidateSparse(sp *linalg.SparseMatrix, y []int, classes, k int, seed int64, factory func() (ml.Classifier, error)) (Metrics, error) {
	return crossValidate(sp.ToDense(), sp, y, classes, k, seed, factory)
}

func crossValidate(x *linalg.Matrix, sp *linalg.SparseMatrix, y []int, classes, k int, seed int64, factory func() (ml.Classifier, error)) (Metrics, error) {
	if x.Rows != len(y) {
		return Metrics{}, fmt.Errorf("eval: %d samples but %d labels", x.Rows, len(y))
	}
	rng := rand.New(rand.NewSource(seed))
	folds, err := StratifiedKFold(y, k, rng)
	if err != nil {
		return Metrics{}, err
	}

	cms, err := runFolds(x, sp, y, classes, folds, factory)
	if err != nil {
		return Metrics{}, err
	}
	perFold := make([]Metrics, len(cms))
	for f, cm := range cms {
		perFold[f] = cm.Metrics()
	}
	return MeanMetrics(perFold), nil
}

// CrossValidateConfusion runs the same k-fold protocol but returns the
// POOLED confusion matrix over all folds, for error analysis (which
// classes get confused with which).
func CrossValidateConfusion(x *linalg.Matrix, y []int, classes, k int, seed int64, factory func() (ml.Classifier, error)) (*ConfusionMatrix, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("eval: %d samples but %d labels", x.Rows, len(y))
	}
	rng := rand.New(rand.NewSource(seed))
	folds, err := StratifiedKFold(y, k, rng)
	if err != nil {
		return nil, err
	}
	cms, err := runFolds(x, nil, y, classes, folds, factory)
	if err != nil {
		return nil, err
	}
	pooled, err := NewConfusionMatrix(classes)
	if err != nil {
		return nil, err
	}
	for _, cm := range cms {
		for a := 0; a < classes; a++ {
			for p := 0; p < classes; p++ {
				for n := 0; n < cm.Count(a, p); n++ {
					if err := pooled.Add(a, p); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return pooled, nil
}

// runFolds evaluates every fold concurrently; per-fold confusion matrices
// land in fixed slots, so results are deterministic.
func runFolds(x *linalg.Matrix, sp *linalg.SparseMatrix, y []int, classes int, folds [][]int, factory func() (ml.Classifier, error)) ([]*ConfusionMatrix, error) {
	cms := make([]*ConfusionMatrix, len(folds))
	errs := make([]error, len(folds))
	var wg sync.WaitGroup
	for f := range folds {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			start := time.Now()
			cms[f], errs[f] = evaluateFold(x, sp, y, classes, folds[f], factory)
			foldSeconds.ObserveSince(start)
			foldsTotal.Inc()
		}(f)
	}
	wg.Wait()
	for f, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eval: fold %d: %w", f, err)
		}
	}
	return cms, nil
}

// evaluateFold trains a fresh classifier on everything outside the fold
// and scores the fold in one batch prediction. Training rows are zero-copy
// views into the feature matrix; the held-out fold is gathered into a CSR
// sub-matrix when a sparse companion is supplied and the classifier scores
// CSR natively, and into a dense test matrix otherwise.
func evaluateFold(x *linalg.Matrix, sp *linalg.SparseMatrix, y []int, classes int, fold []int, factory func() (ml.Classifier, error)) (*ConfusionMatrix, error) {
	holdout := map[int]bool{}
	for _, i := range fold {
		holdout[i] = true
	}
	trainX := make([][]float64, 0, x.Rows-len(fold))
	trainY := make([]int, 0, x.Rows-len(fold))
	for i := 0; i < x.Rows; i++ {
		if !holdout[i] {
			trainX = append(trainX, x.Row(i))
			trainY = append(trainY, y[i])
		}
	}

	clf, err := factory()
	if err != nil {
		return nil, err
	}
	if err := clf.Fit(trainX, trainY); err != nil {
		return nil, fmt.Errorf("fit: %w", err)
	}

	var preds []int
	if sc, ok := clf.(ml.SparseBatchClassifier); ok && sp != nil {
		preds, err = sc.PredictBatchSparse(sp.GatherRows(fold))
	} else {
		testX := linalg.NewMatrix(len(fold), x.Cols)
		for k, i := range fold {
			copy(testX.Row(k), x.Row(i))
		}
		preds, err = clf.PredictBatch(testX)
	}
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}

	cm, err := NewConfusionMatrix(classes)
	if err != nil {
		return nil, err
	}
	for k, i := range fold {
		if err := cm.Add(y[i], preds[k]); err != nil {
			return nil, err
		}
	}
	return cm, nil
}

// InverseClassWeights returns per-class weights inversely proportional to
// class frequency, normalized so the mean weight is 1 — the paper's
// weighted-loss setting for unbalanced datasets.
func InverseClassWeights(labels []int, classes int) ([]float64, error) {
	if classes < 2 {
		return nil, fmt.Errorf("eval: need >= 2 classes, got %d", classes)
	}
	counts := make([]int, classes)
	for _, y := range labels {
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("eval: label %d outside [0,%d)", y, classes)
		}
		counts[y]++
	}
	weights := make([]float64, classes)
	var sum float64
	var present int
	for c, n := range counts {
		if n > 0 {
			weights[c] = 1 / float64(n)
			sum += weights[c]
			present++
		}
	}
	if present == 0 {
		return nil, fmt.Errorf("eval: no labels")
	}
	// Normalize to mean 1 over present classes.
	scale := float64(present) / sum
	for c := range weights {
		weights[c] *= scale
	}
	return weights, nil
}
