package httpx

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) by Client.Do when the breaker is
// refusing attempts. Callers can errors.Is against it to distinguish
// fail-fast rejections from real transport failures.
var ErrCircuitOpen = errors.New("circuit breaker open")

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a consecutive-failure circuit breaker. Closed, it admits
// everything; after threshold consecutive failures it opens and rejects
// attempts outright for the cooldown period; then it half-opens, admitting a
// single probe whose outcome either re-closes or re-opens the circuit.
// A nil *Breaker admits everything.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	state     breakerState
	openedAt  time.Time
	now       func() time.Time
}

// NewBreaker creates a breaker that opens after threshold consecutive
// failures and stays open for cooldown. threshold below 1 behaves as 1.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether an attempt may proceed: nil to go ahead,
// ErrCircuitOpen to fail fast. Moving from open to half-open happens here,
// on the first attempt after the cooldown elapses.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return nil
		}
		return ErrCircuitOpen
	default: // half-open: one probe is already in flight
		return ErrCircuitOpen
	}
}

// Ready is the read-only admission hint: true when Allow would plausibly
// admit an attempt right now — closed, or open with the cooldown elapsed —
// and false while open-and-cooling or while a half-open probe is in
// flight. Selection loops (the endpoint pool) filter candidates on Ready
// and call Allow only on the endpoint they actually picked, so scanning
// candidates never consumes the half-open probe slot. A nil breaker is
// always ready.
func (b *Breaker) Ready() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return b.now().Sub(b.openedAt) >= b.cooldown
	default:
		return false
	}
}

// State reports the breaker's current state as "closed", "open", or
// "half-open" — exposed so checkpoint metadata and shutdown summaries can
// record transport health. A nil breaker reports "closed".
func (b *Breaker) State() string {
	if b == nil {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Record feeds an attempt outcome back into the breaker.
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	case breakerHalfOpen:
		if success {
			b.state = breakerClosed
			b.failures = 0
		} else {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	case breakerOpen:
		// Stale outcome from an attempt admitted before the trip; the
		// circuit is already open, nothing to update.
	}
}
