package httpx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalizeBaseURL(t *testing.T) {
	cases := map[string]string{
		"http://host:1234":    "http://host:1234",
		"http://host:1234/":   "http://host:1234",
		"http://host:1234///": "http://host:1234",
	}
	for in, want := range cases {
		if got := NormalizeBaseURL(in); got != want {
			t.Errorf("NormalizeBaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRingDeterministicOwners(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	for i := 0; i < 1000; i++ {
		key := HashKey("cell-" + strconv.Itoa(i))
		oa, ob := a.Owner(key), b.Owner(key)
		if oa != ob {
			t.Fatalf("key %d: owners differ across identical rings: %d vs %d", i, oa, ob)
		}
		if oa < 0 || oa >= 4 {
			t.Fatalf("key %d: owner %d out of range", i, oa)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(4)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[r.Owner(HashKey("key-"+strconv.Itoa(i)))]++
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == 0 || hi > 2*lo {
		t.Errorf("ring imbalance: per-shard counts %v (max > 2x min)", counts)
	}
}

func TestRingOwnerExcludingIsStable(t *testing.T) {
	r := NewRing(4)
	key := HashKey("some-grid-cell")
	owner := r.Owner(key)
	skipOwner := func(idx int) bool { return idx == owner }
	backup := r.OwnerExcluding(key, skipOwner)
	if backup == owner || backup < 0 {
		t.Fatalf("backup = %d, owner = %d", backup, owner)
	}
	for i := 0; i < 10; i++ {
		if got := r.OwnerExcluding(key, skipOwner); got != backup {
			t.Fatalf("failover target not stable: %d then %d", backup, got)
		}
	}
	if got := r.OwnerExcluding(key, func(int) bool { return true }); got != -1 {
		t.Errorf("all-skipped OwnerExcluding = %d, want -1", got)
	}
}

// countingServers stands up n httptest servers whose handlers count
// requests, returning the servers, their base URLs, and the counters.
func countingServers(t *testing.T, n int) ([]*httptest.Server, []string, []*atomic.Int64) {
	t.Helper()
	srvs := make([]*httptest.Server, n)
	urls := make([]string, n)
	counts := make([]*atomic.Int64, n)
	for i := 0; i < n; i++ {
		c := &atomic.Int64{}
		counts[i] = c
		srvs[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			c.Add(1)
			_, _ = io.WriteString(w, "ok")
		}))
		urls[i] = srvs[i].URL
		t.Cleanup(srvs[i].Close)
	}
	return srvs, urls, counts
}

func poolGet(t *testing.T, p *Pool, key uint64, path string) *http.Response {
	t.Helper()
	resp, err := p.Get(context.Background(), key, path)
	if err != nil {
		t.Fatalf("pool.Get: %v", err)
	}
	return resp
}

func TestPoolSingleEndpoint(t *testing.T) {
	_, urls, counts := countingServers(t, 1)
	p, err := NewPool([]string{urls[0] + "/"}, WithPoolHealthInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp := poolGet(t, p, HashKey("k"), "/v1/thing")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" || counts[0].Load() != 1 {
		t.Errorf("body %q, count %d", body, counts[0].Load())
	}
}

func TestPoolRejectsEmptyAndDuplicate(t *testing.T) {
	if _, err := NewPool(nil); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewPool([]string{"http://a", "http://a/"}); err == nil {
		t.Error("duplicate base URLs accepted")
	}
}

func TestPoolKeyAffinity(t *testing.T) {
	_, urls, counts := countingServers(t, 4)
	p, err := NewPool(urls, WithPoolHealthInterval(0), WithPoolJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	key := HashKey("tile-N38W078")
	for i := 0; i < 20; i++ {
		resp := poolGet(t, p, key, "/v1/thing")
		drainClose(resp)
	}
	nonzero := 0
	for _, c := range counts {
		if c.Load() > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Errorf("one key spread over %d endpoints, want 1 (affinity)", nonzero)
	}
}

func TestPoolSpreadsDistinctKeys(t *testing.T) {
	_, urls, counts := countingServers(t, 4)
	p, err := NewPool(urls, WithPoolHealthInterval(0), WithPoolJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 400; i++ {
		resp := poolGet(t, p, HashKey("cell-"+strconv.Itoa(i)), "/v1/thing")
		drainClose(resp)
	}
	lo, hi := counts[0].Load(), counts[0].Load()
	for _, c := range counts[1:] {
		n := c.Load()
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo == 0 || hi > 2*lo {
		t.Errorf("per-endpoint counts %v, want balance within 2x",
			[]int64{counts[0].Load(), counts[1].Load(), counts[2].Load(), counts[3].Load()})
	}
}

func TestPoolFailsOverFromDeadEndpoint(t *testing.T) {
	srvs, urls, counts := countingServers(t, 4)
	p, err := NewPool(urls, WithPoolHealthInterval(0), WithPoolJitterSeed(1),
		WithPoolSleep((&noSleep{}).sleep))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Find a key owned by endpoint 2, then kill that endpoint.
	var key uint64
	for i := 0; ; i++ {
		key = HashKey("cell-" + strconv.Itoa(i))
		if p.ring.Owner(key) == 2 {
			break
		}
	}
	srvs[2].Close()

	resp := poolGet(t, p, key, "/v1/thing")
	drainClose(resp)
	if p.Failovers() == 0 {
		t.Error("no failover recorded for a dead owner")
	}
	if counts[2].Load() != 0 {
		t.Error("dead endpoint served a request")
	}
	st := p.Stats()
	if st[2].Healthy {
		t.Error("dead endpoint still marked healthy after transport error")
	}
	if st[2].Failures == 0 {
		t.Error("dead endpoint has no recorded failures")
	}
	// The key keeps working (routed to its stable backup) on later calls.
	resp = poolGet(t, p, key, "/v1/thing")
	drainClose(resp)
}

func TestPoolBreakerOpensThenRecovers(t *testing.T) {
	_, urls, counts := countingServers(t, 2)
	ft := NewFaultTripper(nil)
	boom := errors.New("connection refused")
	// Endpoint 0 is dark for its first 3 requests, then recovers.
	ft.Stub(func(r *http.Request) bool { return "http://"+r.URL.Host == urls[0] },
		Fault{Err: boom}, Fault{Err: boom}, Fault{Err: boom})

	p, err := NewPool(urls,
		WithPoolTransport(&http.Client{Transport: ft}),
		WithPoolHealthInterval(0),
		WithPoolDownTTL(time.Millisecond),
		WithPoolBreaker(2, 30*time.Millisecond),
		WithPoolJitterSeed(1),
		WithPoolSleep((&noSleep{}).sleep),
		WithPoolPolicy(Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Multiplier: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var key0 uint64
	for i := 0; ; i++ {
		key0 = HashKey("k-" + strconv.Itoa(i))
		if p.ring.Owner(key0) == 0 {
			break
		}
	}

	// Every Get succeeds via failover while endpoint 0 burns through its
	// fault queue; the short down TTL keeps re-admitting the owner until its
	// breaker opens at two consecutive failures.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats()[0].Breaker != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened (failures=%d, injected=%d)",
				p.Stats()[0].Failures, ft.Injected())
		}
		resp := poolGet(t, p, key0, "/x")
		drainClose(resp)
		time.Sleep(2 * time.Millisecond) // let the down mark expire
	}
	if counts[0].Load() != 0 {
		t.Error("faulted endpoint served a request while dark")
	}

	// Cooldown elapses; half-open probes burn the rest of the fault queue,
	// then one succeeds and the breaker re-closes.
	time.Sleep(50 * time.Millisecond)
	deadline = time.Now().Add(2 * time.Second)
	for p.Stats()[0].Breaker != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker state %q, want closed after recovery", p.Stats()[0].Breaker)
		}
		resp := poolGet(t, p, key0, "/x")
		drainClose(resp)
		time.Sleep(2 * time.Millisecond)
	}
	if counts[0].Load() == 0 {
		t.Error("recovered endpoint served no requests")
	}
}

func TestPoolAllEndpointsCircuitOpenFailsFast(t *testing.T) {
	ft := NewFaultTripper(nil)
	boom := errors.New("down")
	ft.Stub(MatchAll, func() []Fault {
		fs := make([]Fault, 64)
		for i := range fs {
			fs[i] = Fault{Err: boom}
		}
		return fs
	}()...)

	p, err := NewPool([]string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
		WithPoolTransport(&http.Client{Transport: ft}),
		WithPoolHealthInterval(0),
		WithPoolBreaker(1, time.Hour),
		WithPoolSleep((&noSleep{}).sleep),
		WithPoolPolicy(Policy{MaxAttempts: 4, BaseDelay: time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// First call trips both breakers (threshold 1 each).
	if _, err := p.Get(context.Background(), HashKey("k"), "/x"); err == nil {
		t.Fatal("want error from all-dark pool")
	}
	// Second call must fail fast without touching the transport.
	calls := ft.Calls()
	_, err = p.Get(context.Background(), HashKey("k"), "/x")
	if !errors.Is(err, ErrNoEndpoints) || !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrNoEndpoints wrapping ErrCircuitOpen", err)
	}
	if ft.Calls() != calls {
		t.Error("fail-fast path still issued transport calls")
	}
}

func TestPoolHealthProbeMarksDownAndUp(t *testing.T) {
	var sick atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && sick.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	p, err := NewPool([]string{srv.URL}, WithPoolHealthInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	waitHealth := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for p.Stats()[0].Healthy != want {
			if time.Now().After(deadline) {
				t.Fatalf("endpoint healthy=%v never observed", want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	sick.Store(true)
	waitHealth(false)
	sick.Store(false)
	waitHealth(true)
}

func TestPoolRetryableStatusFailsOver(t *testing.T) {
	// Endpoint 0 sheds everything with 429; the pool must land requests on
	// endpoint 1 instead of burning the budget on 0.
	var shedCount atomic.Int64
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shedCount.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer shed.Close()
	_, urls, counts := countingServers(t, 1)

	ns := &noSleep{}
	p, err := NewPool([]string{shed.URL, urls[0]},
		WithPoolHealthInterval(0), WithPoolJitterSeed(1), WithPoolSleep(ns.sleep),
		WithPoolPolicy(Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Second, Multiplier: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var key uint64
	for i := 0; ; i++ {
		key = HashKey("k-" + strconv.Itoa(i))
		if p.ring.Owner(key) == 0 {
			break
		}
	}
	resp := poolGet(t, p, key, "/x")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	drainClose(resp)
	if counts[0].Load() != 1 || shedCount.Load() != 1 {
		t.Errorf("healthy saw %d, shedding saw %d; want 1 and 1", counts[0].Load(), shedCount.Load())
	}
	// Failover away from a shedding shard is immediate: its Retry-After only
	// paces round-wrap backoff, and this request never wrapped.
	if len(ns.delays) != 0 {
		t.Errorf("delays = %v, want none (immediate failover)", ns.delays)
	}
}

func TestPoolRetryAfterPacesRoundWrap(t *testing.T) {
	// Every shard sheds with Retry-After: the pool tries each once, then
	// paces the round wrap with the advertised delay instead of its own
	// (smaller) backoff.
	shed := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		}))
	}
	s0, s1 := shed(), shed()
	defer s0.Close()
	defer s1.Close()

	ns := &noSleep{}
	p, err := NewPool([]string{s0.URL, s1.URL},
		WithPoolHealthInterval(0), WithPoolJitterSeed(1), WithPoolSleep(ns.sleep),
		WithPoolPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Second, Multiplier: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := p.Get(context.Background(), HashKey("k"), "/x")
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 after exhausted budget", resp.StatusCode)
	}
	if len(ns.delays) != 1 || ns.delays[0] != time.Second {
		t.Errorf("delays = %v, want one 1s round-wrap sleep from Retry-After", ns.delays)
	}
}

func TestPoolConcurrentUse(t *testing.T) {
	srvs, urls, _ := countingServers(t, 4)
	p, err := NewPool(urls, WithPoolHealthInterval(5*time.Millisecond),
		WithPoolBreaker(8, 20*time.Millisecond),
		WithPoolPolicy(Policy{MaxAttempts: 8, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond, Multiplier: 2, Jitter: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var once sync.Once
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if w == 0 && i == 10 {
					once.Do(func() { srvs[3].Close() }) // one shard dies mid-storm
				}
				resp, err := p.Get(context.Background(), HashKey(fmt.Sprintf("w%d-i%d", w, i)), "/v1/thing")
				if err != nil {
					t.Errorf("worker %d call %d: %v", w, i, err)
					return
				}
				drainClose(resp)
			}
		}(w)
	}
	wg.Wait()
}
