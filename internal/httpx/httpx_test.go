package httpx

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep replaces real backoff waits with a recorder so retry tests run in
// microseconds.
type noSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (n *noSleep) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	n.delays = append(n.delays, d)
	n.mu.Unlock()
	return nil
}

func get(t *testing.T, c *Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.Do(req)
}

func TestRetriesTransientStatusThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		_, _ = io.WriteString(w, "ok")
	}))
	defer srv.Close()

	ns := &noSleep{}
	c := NewClient(srv.Client(), WithSleep(ns.sleep), WithJitterSeed(1))
	resp, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "ok" {
		t.Errorf("body = %q", body)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if len(ns.delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(ns.delays))
	}
	// Second delay comes from one more doubling (±20 % jitter).
	if ns.delays[1] < ns.delays[0] {
		t.Errorf("backoff not growing: %v then %v", ns.delays[0], ns.delays[1])
	}
}

func TestExhaustedRetriesReturnFinalResponse(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), WithSleep((&noSleep{}).sleep))
	resp, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502 surfaced to caller", resp.StatusCode)
	}
	if got := calls.Load(); got != int32(DefaultPolicy().MaxAttempts) {
		t.Errorf("server saw %d calls, want %d", got, DefaultPolicy().MaxAttempts)
	}
}

func TestNonRetryableStatusNotRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), WithSleep((&noSleep{}).sleep))
	resp, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 1 {
		t.Errorf("400 retried: server saw %d calls", calls.Load())
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	ns := &noSleep{}
	c := NewClient(srv.Client(), WithSleep(ns.sleep),
		WithPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Second, Multiplier: 2}))
	resp, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ns.delays) != 1 || ns.delays[0] != 3*time.Second {
		t.Errorf("delays = %v, want exactly the 3s Retry-After", ns.delays)
	}
}

func TestRetryAfterCappedByMaxDelay(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	ns := &noSleep{}
	c := NewClient(srv.Client(), WithSleep(ns.sleep),
		WithPolicy(Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Second, Multiplier: 2}))
	resp, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ns.delays) != 1 || ns.delays[0] != 2*time.Second {
		t.Errorf("delays = %v, want the 2s cap", ns.delays)
	}
}

func TestRetriesTransportError(t *testing.T) {
	boom := errors.New("connection reset by peer")
	ft := NewFaultTripper(nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	ft.Stub(MatchAll, Fault{Err: boom}, Fault{Err: boom})

	c := NewClient(&http.Client{Transport: ft}, WithSleep((&noSleep{}).sleep))
	resp, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ft.Calls() != 3 {
		t.Errorf("transport saw %d calls, want 3", ft.Calls())
	}
}

func TestExhaustedTransportErrorsWrapped(t *testing.T) {
	boom := errors.New("no route to host")
	ft := NewFaultTripper(nil)
	ft.Stub(MatchAll, Fault{Err: boom}, Fault{Err: boom}, Fault{Err: boom})

	c := NewClient(&http.Client{Transport: ft}, WithSleep((&noSleep{}).sleep),
		WithPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	_, err := get(t, c, "http://example.invalid/x")
	if err == nil {
		t.Fatal("want error after exhausted attempts")
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v in chain", err, boom)
	}
}

func TestPerAttemptTimeoutRecovers(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // hang well past the per-attempt deadline
			case <-r.Context().Done():
			case <-time.After(5 * time.Second):
			}
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), WithSleep((&noSleep{}).sleep),
		WithPolicy(Policy{MaxAttempts: 2, PerAttemptTimeout: 50 * time.Millisecond, BaseDelay: time.Millisecond}))
	resp, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2 (timeout then success)", calls.Load())
	}
}

func TestCancelledContextStopsRetryLoop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewClient(srv.Client()) // real sleeps: cancellation must interrupt them
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	_, err := c.Do(req)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestNonReplayableBodySingleAttempt(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), WithSleep((&noSleep{}).sleep))
	pr, pw := io.Pipe()
	go func() { _, _ = io.WriteString(pw, "x"); pw.Close() }()
	req, _ := http.NewRequest(http.MethodPost, srv.URL, pr)
	req.GetBody = nil // pipes are not replayable
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 1 {
		t.Errorf("non-replayable body retried: %d calls", calls.Load())
	}
}

func TestLimiterPacesRequests(t *testing.T) {
	l := NewLimiter(100, 1) // 1 token burst, 100/s refill => ~10ms per extra call
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("4 waits at 100/s burst 1 took %v, want >= ~30ms", elapsed)
	}
}

func TestLimiterBurstIsImmediate(t *testing.T) {
	l := NewLimiter(1, 5)
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("burst of 5 took %v, want immediate", elapsed)
	}
}

func TestLimiterCancelledWait(t *testing.T) {
	l := NewLimiter(0.1, 1) // next token in 10s
	ctx := context.Background()
	if err := l.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := l.Wait(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestNilLimiterAndBreakerAreNoOps(t *testing.T) {
	var l *Limiter
	var b *Breaker
	if err := l.Wait(context.Background()); err != nil {
		t.Error(err)
	}
	if err := b.Allow(); err != nil {
		t.Error(err)
	}
	b.Record(false) // must not panic
}

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected attempt %d", i)
		}
		b.Record(false)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("after 3 failures Allow = %v, want ErrCircuitOpen", err)
	}

	clock = clock.Add(2 * time.Minute) // cooldown elapses -> half-open probe
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Error("second concurrent probe admitted in half-open state")
	}
	b.Record(true)
	if err := b.Allow(); err != nil {
		t.Errorf("breaker did not re-close after probe success: %v", err)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	b := NewBreaker(1, time.Minute)
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	_ = b.Allow()
	b.Record(false) // trips
	clock = clock.Add(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal("probe rejected")
	}
	b.Record(false) // probe fails -> open again, cooldown restarts
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Error("breaker closed after failed probe")
	}
	clock = clock.Add(time.Minute)
	if err := b.Allow(); err != nil {
		t.Error("breaker never half-opened again")
	}
}

func TestClientFailsFastWhenBreakerOpen(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	b := NewBreaker(2, time.Hour)
	c := NewClient(srv.Client(), WithSleep((&noSleep{}).sleep), WithBreaker(b),
		WithPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}))

	// First Do burns attempts until the breaker trips mid-loop.
	_, err := get(t, c, srv.URL)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen once tripped", err)
	}
	seen := calls.Load()
	if seen != 2 {
		t.Fatalf("server saw %d calls before trip, want 2", seen)
	}
	// Subsequent Do is rejected without touching the server at all.
	if _, err := get(t, c, srv.URL); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want fail-fast ErrCircuitOpen", err)
	}
	if calls.Load() != seen {
		t.Error("open breaker still let a request through")
	}
}

func TestFaultTripperSynthesizesStatusAndHeaders(t *testing.T) {
	ft := NewFaultTripper(nil)
	ft.Stub(MatchPath("/explore"), Fault{
		Status: http.StatusBadGateway,
		Body:   "upstream sad",
		Header: http.Header{"Retry-After": {"7"}},
	})
	req, _ := http.NewRequest(http.MethodGet, "http://example.invalid/explore", nil)
	resp, err := ft.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "upstream sad" {
		t.Errorf("body = %q", body)
	}
	if ft.Injected() != 1 {
		t.Errorf("injected = %d", ft.Injected())
	}
}

func TestFaultTripperScheduleExhaustsToPassthrough(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	ft := NewFaultTripper(nil)
	ft.Stub(MatchAll, Fault{Status: 503}, Fault{}) // one fault, one explicit passthrough
	hc := &http.Client{Transport: ft}
	for i := 0; i < 3; i++ {
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2 (first was synthesized)", calls.Load())
	}
	if ft.Calls() != 3 || ft.Injected() != 1 {
		t.Errorf("calls/injected = %d/%d, want 3/1", ft.Calls(), ft.Injected())
	}
}

func TestFaultTripperLatencyRespectsContext(t *testing.T) {
	ft := NewFaultTripper(nil)
	ft.Stub(MatchAll, Fault{Delay: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.invalid/", nil)
	start := time.Now()
	_, err := ft.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("latency fault ignored context cancellation")
	}
}

func TestRandomFaultsDeterministic(t *testing.T) {
	a := RandomFaults(7, 100, 0.3, Fault{Status: 503})
	b := RandomFaults(7, 100, 0.3, Fault{Status: 503})
	var faultsA, faultsB int
	for i := range a {
		if a[i].Status != b[i].Status {
			t.Fatalf("slot %d differs across same-seed schedules", i)
		}
		if a[i].Status != 0 {
			faultsA++
		}
		if b[i].Status != 0 {
			faultsB++
		}
	}
	if faultsA == 0 || faultsA == 100 {
		t.Errorf("degenerate schedule: %d faults out of 100", faultsA)
	}
}

// TestClientConcurrentUse drives one client from many goroutines through a
// flaky server with the limiter and breaker attached; run under -race this
// is the layer's thread-safety gate.
func TestClientConcurrentUse(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%5 == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := NewClient(srv.Client(),
		WithPolicy(Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond, Multiplier: 2, Jitter: 0.5}),
		WithLimiter(NewLimiter(10000, 100)),
		WithBreaker(NewBreaker(50, time.Millisecond)))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
				if err != nil {
					continue
				}
				resp, err := c.Do(req)
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}
