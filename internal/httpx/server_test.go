package httpx

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRecoverHandlerKeepsServerAlive(t *testing.T) {
	var logged atomic.Int32
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("handler exploded")
		}
		fmt.Fprint(w, "ok")
	}), ServerConfig{Logf: func(string, ...any) { logged.Add(1) }})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", resp.StatusCode)
	}
	if logged.Load() == 0 {
		t.Fatal("panic was not logged")
	}

	resp, err = http.Get(srv.URL + "/fine")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("server did not survive the panic: %d %q", resp.StatusCode, body)
	}
}

func TestHardenRequestTimeout(t *testing.T) {
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}), ServerConfig{RequestTimeout: 30 * time.Millisecond})
	srv := httptest.NewServer(h)
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request returned %d, want 503", resp.StatusCode)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout did not bound the request")
	}
}

func TestShedHandler429WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		fmt.Fprint(w, "slow ok")
	}), ServerConfig{MaxInFlight: 1, RetryAfter: 1500 * time.Millisecond})
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started // the slot is taken

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q (1.5s rounded up)", ra, "2")
	}
	close(release)
	wg.Wait()
}

// TestClientHonorsShedRetryAfter closes the loop between the PR 2 client
// and this PR's load shedding: a shed 429 + Retry-After makes the retrying
// Client wait at least the hinted delay and then succeed.
func TestClientHonorsShedRetryAfter(t *testing.T) {
	var calls atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "at capacity", http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, "ok")
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	var slept []time.Duration
	c := NewClient(srv.Client(),
		WithPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Second, Multiplier: 2}),
		WithSleep(func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		}),
	)
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q", body)
	}
	if len(slept) != 1 || slept[0] < time.Second {
		t.Fatalf("client ignored Retry-After: slept %v", slept)
	}

	s := c.Stats()
	if s.Requests != 1 || s.Attempts != 2 || s.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 request, 2 attempts, 1 retry", s)
	}
}

func TestShedPressureHint(t *testing.T) {
	p := &shedPressure{base: 1, max: 3, perStep: 4}
	now := time.Unix(100, 0)
	want := []int{1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3} // caps at max
	for i, w := range want {
		if got := p.hint(now); got != w {
			t.Fatalf("shed %d: hint = %d, want %d", i+1, got, w)
		}
	}
	// A fresh window forgets the stampede.
	if got := p.hint(now.Add(2 * time.Second)); got != 1 {
		t.Fatalf("hint after window rollover = %d, want 1", got)
	}
}

// TestDynamicRetryAfterScalesWithShedRate pins the satellite contract: under
// a sustained stampede the shed hint grows past the base, and the retrying
// Client actually waits the grown hint out.
func TestDynamicRetryAfterScalesWithShedRate(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		fmt.Fprint(w, "ok")
	}), ServerConfig{
		MaxInFlight:       1,
		RetryAfter:        time.Second,
		DynamicRetryAfter: true,
		MaxRetryAfter:     30 * time.Second,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started // the slot is taken

	// A burst of sheds inside one window: with MaxInFlight=1 every shed is a
	// full capacity's worth, so each one grows the hint by a second.
	var last int
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("burst request %d returned %d, want 429", i, resp.StatusCode)
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("burst request %d: Retry-After %q not an integer", i, resp.Header.Get("Retry-After"))
		}
		if secs < last {
			t.Fatalf("hint shrank under sustained overload: %d after %d", secs, last)
		}
		last = secs
	}
	if last <= 1 {
		t.Fatalf("hint never grew past the base: %d", last)
	}

	// The pooled client sees the grown hint and backs off by at least that
	// much before its successful retry.
	var slept []time.Duration
	c := NewClient(srv.Client(),
		WithPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Minute, Multiplier: 2}),
		WithSleep(func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			close(release) // free the slot so the retry lands
			return ctx.Err()
		}),
	)
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after release returned %d, want 200", resp.StatusCode)
	}
	wantAtLeast := time.Duration(last+1) * time.Second // the client's own shed grew the hint once more
	if len(slept) != 1 || slept[0] < wantAtLeast {
		t.Fatalf("client ignored the dynamic hint: slept %v, want >= %v", slept, wantAtLeast)
	}
	wg.Wait()
}

func TestHealthHandler(t *testing.T) {
	srv := httptest.NewServer(HealthHandler("test-svc"))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var hz struct {
		Status    string `json:"status"`
		Service   string `json:"service"`
		PID       int    `json:"pid"`
		StartUnix int64  `json:"start_unix"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz body %q not JSON: %v", body, err)
	}
	if hz.Status != "ok" || hz.Service != "test-svc" {
		t.Fatalf("healthz body = %q", body)
	}
	if hz.PID != os.Getpid() {
		t.Errorf("healthz pid = %d, want %d", hz.PID, os.Getpid())
	}
	if hz.StartUnix <= 0 || hz.StartUnix > time.Now().Unix() {
		t.Errorf("healthz start_unix = %d not a plausible process start", hz.StartUnix)
	}
}

func TestClientStatsBreakerState(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	b := NewBreaker(2, time.Hour)
	c := NewClient(srv.Client(),
		WithPolicy(Policy{MaxAttempts: 2, BaseDelay: time.Microsecond}),
		WithSleep(func(ctx context.Context, d time.Duration) error { return ctx.Err() }),
		WithBreaker(b),
	)
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	s := c.Stats()
	if s.Breaker != "open" {
		t.Fatalf("breaker state = %q, want open", s.Breaker)
	}
	if s.ExhaustedRetries != 1 {
		t.Fatalf("exhausted = %d, want 1", s.ExhaustedRetries)
	}

	// A second request is refused outright and counted.
	req2, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
	if _, err := c.Do(req2); err == nil {
		t.Fatal("open breaker admitted a request")
	}
	if got := c.Stats().BreakerRejected; got != 1 {
		t.Fatalf("breaker_rejected = %d, want 1", got)
	}
}
