package httpx

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"elevprivacy/internal/obs"
)

// TestClientRetriesPropagateOneClientSpan pins the propagation contract end
// to end: a request that retries twice before succeeding produces exactly
// three server spans — one per attempt — every one parent-linked to the
// same client span and carrying the same (bit-stable) trace ID.
func TestClientRetriesPropagateOneClientSpan(t *testing.T) {
	tracer := obs.EnableTracing(256)
	defer obs.DisableTracing()

	var calls atomic.Int32
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(NewServeMux(app, MuxConfig{Service: "segsvc", DisableMetrics: true}))
	defer srv.Close()

	c := NewClient(srv.Client(),
		WithPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2}),
		WithSleep(func(ctx context.Context, d time.Duration) error { return ctx.Err() }),
	)

	ctx, clientSpan := tracer.StartSpan(context.Background(), "sweep/segments")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	clientSpan.End()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final attempt returned %d, want 200", resp.StatusCode)
	}

	want := clientSpan.SpanContext()
	var clientSpans, serverSpans int
	for _, rec := range tracer.Snapshot() {
		switch {
		case rec.Name == "sweep/segments":
			clientSpans++
		case rec.Name == "srv/segsvc":
			serverSpans++
			if rec.Parent != want.Span {
				t.Errorf("server span parent = %d, want client span %d", rec.Parent, want.Span)
			}
			if rec.Trace != want.Trace {
				t.Errorf("server span trace = %016x, want %016x (trace ID must be bit-stable)", rec.Trace, want.Trace)
			}
		}
	}
	if clientSpans != 1 {
		t.Errorf("client spans = %d, want exactly 1", clientSpans)
	}
	if serverSpans != 3 {
		t.Errorf("server spans = %d, want 3 (one per attempt)", serverSpans)
	}
}

// TestClientWithoutSpanSendsNoTraceHeader: an uninstrumented caller (or a
// process with tracing off) must not emit a traceparent header at all.
func TestClientWithoutSpanSendsNoTraceHeader(t *testing.T) {
	var sawHeader atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(obs.TraceHeader) != "" {
			sawHeader.Store(true)
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), WithPolicy(Policy{MaxAttempts: 1}))
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if sawHeader.Load() {
		t.Fatal("spanless request carried a traceparent header")
	}
}

// TestPoolPropagatesTraceContext: pooled requests (the sharded-tier path)
// carry the caller's span identity too, and the server span opened behind
// the pool links back to it.
func TestPoolPropagatesTraceContext(t *testing.T) {
	tracer := obs.EnableTracing(256)
	defer obs.DisableTracing()

	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/healthz") {
			io.WriteString(w, `{"status":"ok"}`)
			return
		}
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(NewServeMux(app, MuxConfig{Service: "elevation", DisableMetrics: true}))
	defer srv.Close()

	pool, err := NewPool([]string{srv.URL}, WithPoolHealthInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ctx, clientSpan := tracer.StartSpan(context.Background(), "sweep/elevation")
	resp, err := pool.Get(ctx, 42, "/lookup")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	clientSpan.End()

	want := clientSpan.SpanContext()
	var linked int
	for _, rec := range tracer.Snapshot() {
		if rec.Name == "srv/elevation" && rec.Parent == want.Span && rec.Trace == want.Trace {
			linked++
		}
	}
	if linked != 1 {
		t.Fatalf("parent-linked server spans behind the pool = %d, want 1", linked)
	}
}
