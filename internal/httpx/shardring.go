package httpx

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Shard routing: a mining sweep against N shard instances wants every
// request for the same tile coordinate or grid cell to land on the same
// instance, so that instance's LRU cache owns the key's working set and the
// other N-1 caches never duplicate it. A consistent-hash ring over the
// endpoint indexes gives each shard a stable slice of the key space that
// does not depend on request order or on which other keys exist; when the
// owner is down the pool walks the ring to the next-closest shard, so a
// key's failover target is stable too (its entries warm exactly one backup
// cache, not a random one per request).

// ringReplicas is the number of virtual nodes per endpoint. 128 keeps the
// largest/smallest shard share within ~1.3x of each other for small N (the
// 4-shard smoke test asserts per-endpoint balance within 2x).
const ringReplicas = 128

// Ring maps 64-bit keys onto n endpoint indexes by consistent hashing.
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	n      int
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	idx  int
}

// NewRing builds a ring over endpoint indexes 0..n-1. n below 1 behaves
// as 1.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*ringReplicas)}
	for i := 0; i < n; i++ {
		for v := 0; v < ringReplicas; v++ {
			h := HashKey("endpoint-" + strconv.Itoa(i) + "-vnode-" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Identical vnode hashes (vanishingly rare with FNV-64) tie-break
		// by index so the ring order stays deterministic.
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// Size reports how many endpoints the ring spans.
func (r *Ring) Size() int { return r.n }

// Owner returns the endpoint index owning key: the first virtual node at or
// clockwise after the key's position.
func (r *Ring) Owner(key uint64) int {
	return r.points[r.search(key)].idx
}

// OwnerExcluding returns the owner of key skipping endpoints for which skip
// reports true — the stable failover order: the next-closest distinct
// endpoint clockwise on the ring. Returns -1 when every endpoint is
// skipped.
func (r *Ring) OwnerExcluding(key uint64, skip func(idx int) bool) int {
	start := r.search(key)
	seen := 0
	tried := make([]bool, r.n)
	for i := 0; seen < r.n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.idx] {
			continue
		}
		tried[p.idx] = true
		seen++
		if !skip(p.idx) {
			return p.idx
		}
	}
	return -1
}

// search locates the first ring point at or after key, wrapping at the top.
func (r *Ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// HashKey hashes an arbitrary string (a canonical grid-cell query, an
// encoded polyline, a tile name) into the ring's key space: FNV-1a followed
// by a splitmix64-style finalizer. Raw FNV clusters badly on short strings
// that share a prefix — exactly the shape of vnode labels and grid-cell
// queries — and clustered vnode positions skew shard ownership several-fold;
// the finalizer's avalanche restores uniform arcs. Clients use HashKey to
// derive stable shard keys from request identity.
func HashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so every input
// bit flips roughly half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
