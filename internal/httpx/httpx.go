// Package httpx is the resilience layer between the mining pipeline and the
// remote services it hammers. The paper's Fig. 4 data-collection stage issues
// one ExploreSegments call per grid cell and one elevation-profile call per
// segment — thousands of requests per sweep — so every client request goes
// through a Client that adds per-attempt timeouts, bounded retries with
// exponential backoff and jitter (honoring Retry-After), an optional
// token-bucket rate limiter, and an optional circuit breaker, all behind the
// same Do contract as *http.Client.
//
// A FaultTripper (fault.go) injects seeded error/latency/status schedules at
// the http.RoundTripper seam, so every failure path is testable hermetically
// against the in-process elevsvc and segments servers.
package httpx

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"elevprivacy/internal/obs"
)

// Doer is the slice of *http.Client the service clients need. Both
// *http.Client and *Client satisfy it, so call sites choose their resilience
// by picking which one they hand to a constructor.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// Policy bounds the retry loop.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Values below 1 behave as 1.
	MaxAttempts int
	// PerAttemptTimeout bounds each individual attempt via a derived
	// context; 0 disables it (the request context still applies).
	PerAttemptTimeout time.Duration
	// BaseDelay is the backoff before the first retry; each further retry
	// multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter] to
	// decorrelate concurrent workers' retry storms. 0 disables it.
	Jitter float64
}

// DefaultPolicy is the policy NewClient starts from: 4 attempts, 10 s per
// attempt, 100 ms base delay doubling to a 5 s cap, ±20 % jitter.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:       4,
		PerAttemptTimeout: 10 * time.Second,
		BaseDelay:         100 * time.Millisecond,
		MaxDelay:          5 * time.Second,
		Multiplier:        2,
		Jitter:            0.2,
	}
}

// RetryableStatus reports whether an HTTP status is worth retrying:
// 429 Too Many Requests and every 5xx.
func RetryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || (code >= 500 && code <= 599)
}

// Client wraps a Doer with the retry policy, rate limiter and circuit
// breaker. The zero value is not usable; construct with NewClient.
type Client struct {
	base    Doer
	policy  Policy
	limiter *Limiter
	breaker *Breaker
	sleep   func(context.Context, time.Duration) error
	metrics *clientMetrics

	mu  sync.Mutex
	rnd *rand.Rand

	requests         atomic.Int64
	attempts         atomic.Int64
	retries          atomic.Int64
	breakerRejected  atomic.Int64
	exhaustedRetries atomic.Int64
}

// Stats is a snapshot of a Client's activity, exposed so long runs can
// record transport health in checkpoint metadata and shutdown summaries.
type Stats struct {
	// Requests counts Do calls.
	Requests int64 `json:"requests"`
	// Attempts counts individual tries (>= Requests).
	Attempts int64 `json:"attempts"`
	// Retries counts attempts after the first (Attempts - successful or
	// exhausted first tries).
	Retries int64 `json:"retries"`
	// BreakerRejected counts Do calls refused by an open circuit breaker.
	BreakerRejected int64 `json:"breaker_rejected"`
	// ExhaustedRetries counts Do calls that burned every attempt and still
	// failed (transport error) or returned a retryable status.
	ExhaustedRetries int64 `json:"exhausted_retries"`
	// Breaker is the circuit breaker's state, empty when none is fitted.
	Breaker string `json:"breaker,omitempty"`
}

// Stats returns a point-in-time snapshot of the client's counters and
// breaker state.
func (c *Client) Stats() Stats {
	s := Stats{
		Requests:         c.requests.Load(),
		Attempts:         c.attempts.Load(),
		Retries:          c.retries.Load(),
		BreakerRejected:  c.breakerRejected.Load(),
		ExhaustedRetries: c.exhaustedRetries.Load(),
	}
	if c.breaker != nil {
		s.Breaker = c.breaker.State()
	}
	return s
}

// Option configures a Client.
type Option func(*Client)

// WithPolicy replaces the default retry policy.
func WithPolicy(p Policy) Option { return func(c *Client) { c.policy = p } }

// WithLimiter rate-limits attempts (nil means unlimited).
func WithLimiter(l *Limiter) Option { return func(c *Client) { c.limiter = l } }

// WithBreaker guards attempts with a circuit breaker (nil means none).
func WithBreaker(b *Breaker) Option { return func(c *Client) { c.breaker = b } }

// WithSleep overrides how the client waits between attempts; tests use it to
// capture delays instead of sleeping through them.
func WithSleep(sleep func(context.Context, time.Duration) error) Option {
	return func(c *Client) { c.sleep = sleep }
}

// WithJitterSeed fixes the jitter RNG, making backoff schedules
// reproducible.
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.rnd = rand.New(rand.NewSource(seed)) }
}

// NewClient builds a resilient client over base. A nil base gets an
// *http.Client with a 30 s overall timeout, so even a misconfigured caller
// can never hang forever on a dead server.
func NewClient(base Doer, opts ...Option) *Client {
	if base == nil {
		base = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Client{
		base:   base,
		policy: DefaultPolicy(),
		sleep:  sleepContext,
		rnd:    rand.New(rand.NewSource(rand.Int63())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Do issues the request, retrying transport errors and retryable statuses
// (429/5xx) up to Policy.MaxAttempts. Requests with a non-replayable body
// (Body set but GetBody nil) get exactly one attempt. On a retryable status
// that survives every attempt the final response is returned unconsumed, so
// callers can map it to their own error types; on a transport error that
// survives every attempt the last error is returned wrapped.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	attempts := c.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	if req.Body != nil && req.GetBody == nil {
		attempts = 1
	}
	c.requests.Add(1)
	if c.metrics != nil {
		c.metrics.requests.Inc()
	}

	var lastErr error
	for i := 0; ; i++ {
		if err := req.Context().Err(); err != nil {
			return nil, err
		}
		waitStart := c.timeIfMetrics()
		if err := c.limiter.Wait(req.Context()); err != nil {
			return nil, err
		}
		if c.metrics != nil && c.limiter != nil {
			c.metrics.limiterWait.ObserveSince(waitStart)
		}
		if err := c.breaker.Allow(); err != nil {
			c.breakerRejected.Add(1)
			if c.metrics != nil {
				c.metrics.breakerRejected.Inc()
			}
			c.observeBreakerState()
			return nil, fmt.Errorf("httpx: %w", err)
		}

		c.attempts.Add(1)
		if c.metrics != nil {
			c.metrics.attempts.Inc()
			if i > 0 {
				c.metrics.retries.Inc()
			}
		}
		if i > 0 {
			c.retries.Add(1)
		}
		attemptStart := c.timeIfMetrics()
		resp, err := c.attempt(req)
		if c.metrics != nil {
			c.metrics.attemptSeconds.ObserveSince(attemptStart)
		}
		var delay time.Duration
		switch {
		case err != nil:
			c.breaker.Record(false)
			c.observeBreakerState()
			// A dead parent context is the caller giving up, not the
			// server failing: surface it without burning attempts.
			if ctxErr := req.Context().Err(); ctxErr != nil {
				return nil, err
			}
			lastErr = err
			if i == attempts-1 {
				c.exhaustedRetries.Add(1)
				if c.metrics != nil {
					c.metrics.exhausted.Inc()
				}
				return nil, fmt.Errorf("httpx: %d attempts: %w", attempts, lastErr)
			}
			delay = c.backoff(i)
		case RetryableStatus(resp.StatusCode):
			c.breaker.Record(false)
			c.observeBreakerState()
			if i == attempts-1 {
				c.exhaustedRetries.Add(1)
				if c.metrics != nil {
					c.metrics.exhausted.Inc()
				}
				return resp, nil
			}
			delay = c.backoff(i)
			if ra := retryAfter(resp); ra > delay {
				delay = ra
				if c.policy.MaxDelay > 0 && delay > c.policy.MaxDelay {
					delay = c.policy.MaxDelay
				}
			}
			drainClose(resp)
		default:
			c.breaker.Record(true)
			c.observeBreakerState()
			return resp, nil
		}

		if err := c.sleep(req.Context(), delay); err != nil {
			return nil, err
		}
	}
}

// attempt runs one try under the per-attempt timeout. The derived context's
// cancel is tied to the response body so the connection is released when the
// caller closes it.
func (c *Client) attempt(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	cancel := context.CancelFunc(func() {})
	if c.policy.PerAttemptTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.policy.PerAttemptTimeout)
	}
	r2 := req.Clone(ctx)
	// Propagate the caller's span identity so the server can open a
	// parent-linked span: injected per attempt, so every retry's server-side
	// span links back to the same client span. Free when tracing is off (no
	// span in the context means no header).
	obs.InjectTraceHeader(ctx, r2.Header)
	if req.GetBody != nil && req.Body != nil {
		body, err := req.GetBody()
		if err != nil {
			cancel()
			return nil, fmt.Errorf("httpx: rewinding body: %w", err)
		}
		r2.Body = body
	}
	resp, err := c.base.Do(r2)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// backoff returns the jittered exponential delay before retry i (0-based).
func (c *Client) backoff(retry int) time.Duration {
	p := c.policy
	d := float64(p.BaseDelay)
	if p.Multiplier > 0 {
		d *= math.Pow(p.Multiplier, float64(retry))
	}
	if p.Jitter > 0 {
		c.mu.Lock()
		f := c.rnd.Float64()
		c.mu.Unlock()
		d *= 1 + p.Jitter*(2*f-1)
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// retryAfter parses a Retry-After header as either delta-seconds or an HTTP
// date; 0 means absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// cancelBody releases the per-attempt context when the response body is
// closed.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
