package httpx

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault describes one injected behavior for a single request. The zero
// Fault is a passthrough (the request proceeds untouched); Delay alone adds
// latency before forwarding; Err short-circuits with a transport error;
// Status synthesizes a response without touching the real server.
type Fault struct {
	// Delay is injected latency, applied before Err/Status/forwarding and
	// interruptible by the request context.
	Delay time.Duration
	// Err, when non-nil, is returned as a transport-level error.
	Err error
	// Status, when non-zero, synthesizes a response with this code.
	Status int
	// Body is the synthesized response body.
	Body string
	// Header carries extra synthesized headers (e.g. Retry-After).
	// Content-Type defaults to text/plain, matching what a proxy's error
	// page would carry.
	Header http.Header
}

func (f Fault) passthrough() bool { return f.Err == nil && f.Status == 0 && f.Delay == 0 }

// FaultTripper is an http.RoundTripper that replays fault schedules at the
// transport seam. Each rule pairs a request matcher with a queue of Faults;
// every matching request (including retries — each attempt consumes one
// slot) pops the head of the queue. An exhausted queue passes requests
// through, so "flaky then recovered" is just a finite schedule.
type FaultTripper struct {
	next http.RoundTripper

	mu       sync.Mutex
	rules    []*faultRule
	calls    int
	injected int
}

type faultRule struct {
	match func(*http.Request) bool
	queue []Fault
}

// NewFaultTripper wraps next (http.DefaultTransport when nil).
func NewFaultTripper(next http.RoundTripper) *FaultTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &FaultTripper{next: next}
}

// Stub appends a rule: requests accepted by match consume faults in order.
// Rules are checked in registration order; the first match with a non-empty
// queue wins.
func (f *FaultTripper) Stub(match func(*http.Request) bool, faults ...Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &faultRule{match: match, queue: faults})
}

// MatchPath matches requests whose URL path contains substr. MatchAll
// matches everything.
func MatchPath(substr string) func(*http.Request) bool {
	return func(r *http.Request) bool { return strings.Contains(r.URL.Path, substr) }
}

// MatchAll matches every request.
func MatchAll(*http.Request) bool { return true }

// Calls returns how many requests the tripper has seen; Injected how many
// carried a non-passthrough fault.
func (f *FaultTripper) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Injected returns how many requests carried a non-passthrough fault.
func (f *FaultTripper) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// RoundTrip implements http.RoundTripper.
func (f *FaultTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls++
	var fault Fault
	for _, r := range f.rules {
		if len(r.queue) > 0 && r.match(req) {
			fault = r.queue[0]
			r.queue = r.queue[1:]
			break
		}
	}
	if !fault.passthrough() {
		f.injected++
	}
	f.mu.Unlock()

	if fault.Delay > 0 {
		if err := sleepContext(req.Context(), fault.Delay); err != nil {
			return nil, err
		}
	}
	if fault.Err != nil {
		return nil, fault.Err
	}
	if fault.Status != 0 {
		header := http.Header{}
		for k, vs := range fault.Header {
			header[k] = append([]string(nil), vs...)
		}
		if header.Get("Content-Type") == "" {
			header.Set("Content-Type", "text/plain; charset=utf-8")
		}
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", fault.Status, http.StatusText(fault.Status)),
			StatusCode:    fault.Status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        header,
			Body:          io.NopCloser(strings.NewReader(fault.Body)),
			ContentLength: int64(len(fault.Body)),
			Request:       req,
		}, nil
	}
	return f.next.RoundTrip(req)
}

// RandomFaults builds a length-n schedule in which each slot independently
// carries template with probability p, drawn from a fixed seed — the seeded
// "flaky network" the acceptance tests replay deterministically.
func RandomFaults(seed int64, n int, p float64, template Fault) []Fault {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fault, n)
	for i := range out {
		if rng.Float64() < p {
			out[i] = template
		}
	}
	return out
}
