package httpx

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// respWithRetryAfter builds a bare response carrying the given Retry-After
// header value ("" means no header at all).
func respWithRetryAfter(v string) *http.Response {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{Header: h}
}

// TestRetryAfterParsesHTTPDate covers the HTTP-date form of Retry-After
// (RFC 9110 allows both delta-seconds and an absolute date; real proxies
// send either), plus the reject cases: past dates, negative deltas, and
// garbage all collapse to 0 so the caller falls back to its own backoff.
func TestRetryAfterParsesHTTPDate(t *testing.T) {
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	d := retryAfter(respWithRetryAfter(future))
	// http.TimeFormat has second granularity and time passes between
	// formatting and parsing, so accept a little slack below 90s.
	if d <= 85*time.Second || d > 90*time.Second {
		t.Errorf("future HTTP date parsed to %v, want ~90s", d)
	}

	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := retryAfter(respWithRetryAfter(past)); d != 0 {
		t.Errorf("past HTTP date parsed to %v, want 0", d)
	}
	if d := retryAfter(respWithRetryAfter("7")); d != 7*time.Second {
		t.Errorf("delta-seconds parsed to %v, want 7s", d)
	}
	if d := retryAfter(respWithRetryAfter("-3")); d != 0 {
		t.Errorf("negative delta parsed to %v, want 0", d)
	}
	if d := retryAfter(respWithRetryAfter("next tuesday")); d != 0 {
		t.Errorf("garbage parsed to %v, want 0", d)
	}
	if d := retryAfter(respWithRetryAfter("")); d != 0 {
		t.Errorf("absent header parsed to %v, want 0", d)
	}
}

// TestBreakerHalfOpenAdmitsOneConcurrentProbe races many goroutines at an
// open breaker whose cooldown has just elapsed: exactly one must win the
// half-open probe slot, the rest fail fast, and the winner's success
// re-closes the circuit. This is the invariant the pool's Ready/Allow split
// depends on — if two probes were admitted, a recovering shard would take
// a thundering herd instead of one request.
func TestBreakerHalfOpenAdmitsOneConcurrentProbe(t *testing.T) {
	b := NewBreaker(1, 100*time.Millisecond)
	var clock atomic.Int64 // fake time as unix-nano, injected below
	b.now = func() time.Time { return time.Unix(0, clock.Load()) }

	b.Record(false)
	if got := b.State(); got != "open" {
		t.Fatalf("state after trip = %q, want open", got)
	}
	if b.Ready() {
		t.Fatal("Ready() = true while open and cooling")
	}

	clock.Add(int64(150 * time.Millisecond)) // cooldown elapses
	if !b.Ready() {
		t.Fatal("Ready() = false after cooldown elapsed")
	}

	const workers = 32
	var admitted atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() == nil {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if n := admitted.Load(); n != 1 {
		t.Fatalf("admitted %d concurrent probes, want exactly 1", n)
	}
	if got := b.State(); got != "half-open" {
		t.Fatalf("state during probe = %q, want half-open", got)
	}
	if b.Ready() {
		t.Fatal("Ready() = true while a half-open probe is in flight")
	}

	b.Record(true)
	if got := b.State(); got != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow() after re-close = %v, want nil", err)
	}
}

// TestBreakerFailedProbeReopensFreshCooldown: a failed half-open probe
// re-opens the circuit and restarts the cooldown from the failure, not the
// original trip.
func TestBreakerFailedProbeReopensFreshCooldown(t *testing.T) {
	b := NewBreaker(1, 100*time.Millisecond)
	var clock atomic.Int64
	b.now = func() time.Time { return time.Unix(0, clock.Load()) }

	b.Record(false)
	clock.Add(int64(150 * time.Millisecond))
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted after cooldown: %v", err)
	}
	b.Record(false) // probe failed at t=150ms: cooldown restarts there

	clock.Add(int64(50 * time.Millisecond)) // t=200ms, only 50ms into new cooldown
	if b.Ready() {
		t.Fatal("Ready() = true 50ms into the restarted cooldown")
	}
	clock.Add(int64(60 * time.Millisecond)) // t=260ms, cooldown elapsed again
	if !b.Ready() {
		t.Fatal("Ready() = false after the restarted cooldown elapsed")
	}
}
