package httpx

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"

	"elevprivacy/internal/obs"
)

// NewServeMux is the one place the repo's HTTP services assemble their root
// routing. The elevation service, the segment-explore service, and the DEM
// tile mirror used to each hand-roll the same three-layer mux; they now all
// call this, so /healthz, /metrics, pprof, and the Harden wrapper behave
// identically everywhere:
//
//	/healthz       liveness plus instance identity (service, shard, pid,
//	               process start time — everything cmd/elevobs needs to
//	               label the instance without out-of-band config), outside
//	               Harden so probes bypass load shedding
//	/metrics       Prometheus exposition of the obs registry, outside Harden
//	               so a shedding server can still be observed (that is
//	               exactly when telemetry matters most)
//	/metrics.json  the same registry as an obs.Dump — the federation wire
//	               format cmd/elevobs scrapes (no text-format parser needed)
//	/debug/pprof/  opt-in profiling, panic-recovered but outside the request
//	               timeout — TimeoutHandler would cut off a 30 s CPU profile
//	/              the app handler under Harden (panic recovery, request
//	               timeout, max-in-flight shedding), with trace-context
//	               extraction: a request carrying a traceparent header opens
//	               a parent-linked server span when tracing is enabled
//
// The app handler is additionally wrapped with per-service request metrics
// (outermost, so shed requests are counted too):
//
//	elevpriv_server_requests_total{service=...}
//	elevpriv_server_responses_total{service=...,class="2xx"|...}
//	elevpriv_server_in_flight{service=...}
//	elevpriv_server_request_seconds{service=...}
type MuxConfig struct {
	// Service names the service on /healthz and in metric labels.
	Service string
	// Harden tunes the resilience wrapper around the app handler.
	Harden ServerConfig
	// Metrics is the registry served at /metrics and recorded into; nil
	// uses the process-wide default registry.
	Metrics *obs.Registry
	// DisableMetrics removes the /metrics endpoint and the request metrics.
	DisableMetrics bool
	// Pprof mounts net/http/pprof endpoints under /debug/pprof/.
	Pprof bool
	// ShardIndex and ShardCount identify this instance inside a sharded
	// tier: /healthz reports them so pool probes and smoke scripts can tell
	// shards apart, and elevpriv_server_shard_index{service=...} pins the
	// identity on /metrics. ShardCount 0 means unsharded.
	ShardIndex int
	ShardCount int
}

// NewServeMux assembles the root handler described above. app may be nil
// for a pure admin mux (the CLIs' -metrics-addr endpoint: health, metrics,
// and pprof with no application routes).
func NewServeMux(app http.Handler, cfg MuxConfig) http.Handler {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.DefaultRegistry()
	}
	root := http.NewServeMux()
	if cfg.ShardCount > 0 {
		root.Handle("GET /healthz", shardHealthHandler(cfg.Service, cfg.ShardIndex, cfg.ShardCount))
		if !cfg.DisableMetrics {
			reg.Gauge(`elevpriv_server_shard_index{service="` + cfg.Service + `"}`).Set(float64(cfg.ShardIndex))
		}
	} else {
		root.Handle("GET /healthz", HealthHandler(cfg.Service))
	}
	if !cfg.DisableMetrics {
		root.Handle("GET /metrics", reg.Handler())
		root.Handle("GET /metrics.json", reg.JSONHandler())
	}
	if cfg.Pprof {
		pp := http.NewServeMux()
		pp.HandleFunc("/debug/pprof/", pprof.Index)
		pp.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pp.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pp.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pp.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/debug/pprof/", recoverHandler(pp, cfg.Harden.Logf))
	}
	if app != nil {
		h := Harden(app, cfg.Harden)
		h = traceHandler(h, cfg.Service)
		if !cfg.DisableMetrics {
			h = instrumentHandler(h, reg, cfg.Service)
		}
		root.Handle("/", h)
	}
	return root
}

// shardHealthHandler is HealthHandler plus the instance's shard identity.
func shardHealthHandler(name string, index, count int) http.Handler {
	body := []byte(fmt.Sprintf("{\"status\":\"ok\",\"service\":%q,\"shard\":%d,\"shards\":%d,\"pid\":%d,\"start_unix\":%d}\n",
		name, index, count, os.Getpid(), processStart.Unix()))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	})
}

// traceHandler extracts an incoming traceparent header and opens a server
// span parent-linked to the remote client span, so the per-process trace
// rings can be joined into one cross-process trace. Requests without the
// header — or processes without tracing enabled — pass straight through:
// the cost when disabled is one header lookup.
func traceHandler(h http.Handler, service string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sc, ok := obs.ExtractTraceHeader(r.Header)
		t := obs.DefaultTracer()
		if !ok || t == nil {
			h.ServeHTTP(w, r)
			return
		}
		ctx, span := t.StartSpan(obs.ContextWithRemoteSpan(r.Context(), sc), "srv/"+service)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			span.SetAttr("status", strconv.Itoa(sw.code))
			span.End()
		}()
		h.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// instrumentHandler wraps h with the per-service server metrics.
func instrumentHandler(h http.Handler, reg *obs.Registry, service string) http.Handler {
	label := `{service="` + service + `"}`
	requests := reg.Counter("elevpriv_server_requests_total" + label)
	inFlight := reg.Gauge("elevpriv_server_in_flight" + label)
	seconds := reg.Histogram("elevpriv_server_request_seconds"+label, nil)
	// One counter per status class, resolved up front so the per-request
	// cost stays a couple of atomic adds.
	var responses [6]*obs.Counter
	for i, class := range []string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
		responses[i+1] = reg.Counter(`elevpriv_server_responses_total{service="` + service + `",class="` + class + `"}`)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			inFlight.Add(-1)
			seconds.ObserveSince(start)
			if class := sw.code / 100; class >= 1 && class <= 5 {
				responses[class].Inc()
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// statusWriter records the response code for the status-class counters.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}
