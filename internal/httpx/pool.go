package httpx

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"elevprivacy/internal/obs"
)

// Multi-endpoint serving: a sharded tier runs N identical instances of a
// service, and the sweep-side client holds all N base URLs in a Pool.
// Requests route by consistent hash (shard keys from HashKey land on a
// stable owner, so each shard's in-process cache owns a slice of the key
// space), owners under pronounced load spill to the least-loaded endpoint,
// and an endpoint that dies mid-request is failed over transparently: the
// attempt is re-issued against the next shard on the ring, background
// /healthz probes mark the corpse down so new requests stop trying it, and
// its per-endpoint circuit breaker keeps the occasional probe cheap until
// the instance comes back.

// ErrNoEndpoints is returned (wrapped) by Pool.Get when every endpoint is
// refusing attempts (all circuit breakers open).
var ErrNoEndpoints = errors.New("no usable endpoint")

// NormalizeBaseURL canonicalizes a configured service address: trailing
// slashes are trimmed so clients can join "/v1/..." paths without producing
// "//" doubles. All service-client constructors run their base URLs through
// this.
func NormalizeBaseURL(base string) string {
	return strings.TrimRight(base, "/")
}

// Endpoint is one base URL inside a Pool, carrying the live state selection
// decisions read: in-flight count, health, breaker, and counters.
type Endpoint struct {
	base    string
	breaker *Breaker

	inFlight atomic.Int64
	requests atomic.Int64
	failures atomic.Int64
	// downSince is the unix-nano timestamp of the latest down mark (from a
	// transport error or a failed health probe); 0 means up. Marks expire
	// after the pool's downTTL so a recovered instance is re-admitted even
	// with background probing disabled — one optimistic retry either
	// refreshes the mark or clears it.
	downSince atomic.Int64
}

// BaseURL returns the endpoint's normalized base URL.
func (e *Endpoint) BaseURL() string { return e.base }

// up reports whether the endpoint counts as healthy: never marked down, or
// marked down longer than ttl ago (stale marks read as up so the endpoint
// gets its optimistic retry).
func (e *Endpoint) up(ttl time.Duration) bool {
	v := e.downSince.Load()
	return v == 0 || (ttl > 0 && time.Since(time.Unix(0, v)) >= ttl)
}

// EndpointStats is a point-in-time snapshot of one endpoint's state,
// exposed so run metadata and shutdown summaries can record per-shard
// transport health and balance.
type EndpointStats struct {
	BaseURL  string `json:"base_url"`
	Healthy  bool   `json:"healthy"`
	Breaker  string `json:"breaker"`
	InFlight int64  `json:"in_flight"`
	Requests int64  `json:"requests"`
	Failures int64  `json:"failures"`
}

// PoolOption configures a Pool.
type PoolOption func(*Pool)

// WithPoolPolicy replaces the pool's failover policy. MaxAttempts bounds
// tries across all endpoints (not per endpoint); PerAttemptTimeout bounds
// each try; the backoff fields pace retries only once every endpoint has
// been tried in the current round — failing over to a fresh endpoint is
// immediate.
func WithPoolPolicy(p Policy) PoolOption { return func(pl *Pool) { pl.policy = p } }

// WithPoolTransport replaces the Doer attempts are issued through (default:
// an *http.Client with a 30 s timeout). Hand it a FaultTripper-backed
// client to test failover hermetically. The transport should not retry
// internally — the pool owns the retry/failover loop.
func WithPoolTransport(d Doer) PoolOption { return func(pl *Pool) { pl.doer = d } }

// WithPoolBreaker fits every endpoint with its own consecutive-failure
// circuit breaker (threshold failures, cooldown open period).
func WithPoolBreaker(threshold int, cooldown time.Duration) PoolOption {
	return func(pl *Pool) {
		pl.breakerThreshold, pl.breakerCooldown = threshold, cooldown
	}
}

// WithPoolHealthInterval sets the background /healthz probe period;
// 0 disables background checking (passive marking on transport errors
// still applies, but a down endpoint is then only re-admitted by its
// breaker's half-open probes).
func WithPoolHealthInterval(d time.Duration) PoolOption {
	return func(pl *Pool) { pl.healthEvery = d }
}

// WithPoolHealthPath overrides the probe path (default /healthz).
func WithPoolHealthPath(path string) PoolOption {
	return func(pl *Pool) { pl.healthPath = path }
}

// WithPoolDownTTL overrides how long a passive down mark (from a transport
// error or failed probe) keeps an endpoint out of selection before it gets
// an optimistic retry (default 2 s; active probes refresh or clear marks
// sooner). 0 makes marks permanent until a probe clears them.
func WithPoolDownTTL(d time.Duration) PoolOption {
	return func(pl *Pool) { pl.downTTL = d }
}

// WithPoolSleep overrides how the failover loop waits between exhausted
// rounds; tests use it to capture delays instead of sleeping through them.
func WithPoolSleep(sleep func(context.Context, time.Duration) error) PoolOption {
	return func(pl *Pool) { pl.sleep = sleep }
}

// WithPoolJitterSeed fixes the backoff jitter RNG, making failover
// schedules reproducible.
func WithPoolJitterSeed(seed int64) PoolOption {
	return func(pl *Pool) { pl.rnd = rand.New(rand.NewSource(seed)) }
}

// WithPoolMetrics instruments the pool under the given service label in the
// process obs registry (per-endpoint request/failure/in-flight/health
// series plus the pool's failover counter).
func WithPoolMetrics(service string) PoolOption {
	return func(pl *Pool) { pl.metricsService = service }
}

// DefaultPoolPolicy is the failover policy NewPool starts from: 6 attempts
// across endpoints (a 4-shard pool survives one dead shard with budget to
// spare), 10 s per attempt, 50 ms base delay doubling to a 2 s cap, ±20 %
// jitter between exhausted rounds.
func DefaultPoolPolicy() Policy {
	return Policy{
		MaxAttempts:       6,
		PerAttemptTimeout: 10 * time.Second,
		BaseDelay:         50 * time.Millisecond,
		MaxDelay:          2 * time.Second,
		Multiplier:        2,
		Jitter:            0.2,
	}
}

// DefaultHealthInterval is how often NewPool probes each endpoint's
// /healthz unless overridden.
const DefaultHealthInterval = 500 * time.Millisecond

// spillFactor bounds consistent-hash affinity under load: the ring owner is
// bypassed in favor of the least-loaded healthy endpoint when the owner's
// in-flight count exceeds spillFactor times the pool-wide average (plus
// one). 2.0 keeps affinity sticky — only a markedly slow or stuck shard
// sheds its keys.
const spillFactor = 2.0

// Pool is an address pool over N identical service instances: requests
// enter through Get with a shard key and come back from whichever endpoint
// the ring, the health state, and the load picked. Construct with NewPool;
// Close stops the background health probes.
type Pool struct {
	endpoints []*Endpoint
	ring      *Ring
	doer      Doer
	policy    Policy
	sleep     func(context.Context, time.Duration) error

	healthEvery time.Duration
	healthPath  string
	downTTL     time.Duration

	breakerThreshold int
	breakerCooldown  time.Duration

	metricsService string
	metrics        *poolMetrics

	failovers atomic.Int64

	mu  sync.Mutex
	rnd *rand.Rand

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewPool builds a pool over the given base URLs (trailing slashes are
// normalized away). Endpoints start healthy and are probed on
// DefaultHealthInterval; every endpoint gets its own circuit breaker
// (8 consecutive failures, 3 s cooldown) unless WithPoolBreaker overrides
// it. A single-URL pool behaves like a plain resilient client, so callers
// can hold a *Pool unconditionally.
func NewPool(baseURLs []string, opts ...PoolOption) (*Pool, error) {
	if len(baseURLs) == 0 {
		return nil, fmt.Errorf("httpx: pool needs at least one base URL")
	}
	p := &Pool{
		ring:             NewRing(len(baseURLs)),
		policy:           DefaultPoolPolicy(),
		sleep:            sleepContext,
		healthEvery:      DefaultHealthInterval,
		healthPath:       "/healthz",
		downTTL:          2 * time.Second,
		breakerThreshold: 8,
		breakerCooldown:  3 * time.Second,
		rnd:              rand.New(rand.NewSource(rand.Int63())),
		stop:             make(chan struct{}),
	}
	for _, o := range opts {
		o(p)
	}
	if p.doer == nil {
		p.doer = &http.Client{Timeout: 30 * time.Second}
	}
	seen := make(map[string]bool, len(baseURLs))
	for _, base := range baseURLs {
		base = NormalizeBaseURL(base)
		if base == "" {
			return nil, fmt.Errorf("httpx: pool: empty base URL")
		}
		if seen[base] {
			return nil, fmt.Errorf("httpx: pool: duplicate base URL %s", base)
		}
		seen[base] = true
		ep := &Endpoint{base: base, breaker: NewBreaker(p.breakerThreshold, p.breakerCooldown)}
		p.endpoints = append(p.endpoints, ep)
	}
	if p.metricsService != "" {
		p.metrics = newPoolMetrics(p.metricsService, p.endpoints)
	}
	if p.healthEvery > 0 {
		for i := range p.endpoints {
			p.wg.Add(1)
			go p.healthLoop(i)
		}
	}
	return p, nil
}

// Close stops the background health probes. Safe to call more than once
// and on a nil pool.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Size reports how many endpoints the pool holds.
func (p *Pool) Size() int { return len(p.endpoints) }

// Stats snapshots every endpoint's state in construction order.
func (p *Pool) Stats() []EndpointStats {
	out := make([]EndpointStats, len(p.endpoints))
	for i, ep := range p.endpoints {
		out[i] = EndpointStats{
			BaseURL:  ep.base,
			Healthy:  ep.up(p.downTTL),
			Breaker:  ep.breaker.State(),
			InFlight: ep.inFlight.Load(),
			Requests: ep.requests.Load(),
			Failures: ep.failures.Load(),
		}
	}
	return out
}

// Failovers reports how many attempts were re-issued against a different
// endpoint after a failure.
func (p *Pool) Failovers() int64 { return p.failovers.Load() }

// Get issues a GET for pathAndQuery (starting with "/") against the
// endpoint owning key, failing over along the ring when the owner is down,
// shedding, or circuit-open. Transport errors and retryable statuses
// (429/5xx) burn attempts up to the policy's MaxAttempts — counted across
// endpoints, so one dead shard costs a single attempt before the request
// lands elsewhere. Fresh endpoints are tried immediately; backoff only
// paces consecutive rounds over the same endpoints. On a retryable status
// that survives every attempt the final response is returned unconsumed;
// on a transport error the last error is returned wrapped.
func (p *Pool) Get(ctx context.Context, key uint64, pathAndQuery string) (*http.Response, error) {
	attempts := p.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	tried := make([]bool, len(p.endpoints))
	triedCount := 0
	attemptedThisRound := false
	var retryHint time.Duration // largest Retry-After seen this round

	var lastErr error
	for i := 0; ; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if triedCount == len(p.endpoints) {
			if !attemptedThisRound {
				// Every endpoint's breaker refused without a single try:
				// the whole tier is circuit-open, fail fast.
				return nil, fmt.Errorf("httpx: pool: %w: %w", ErrNoEndpoints, ErrCircuitOpen)
			}
			// Every endpoint failed this round: clear the slate and pace
			// the next round with backoff — stretched to the largest
			// Retry-After any shard sent, since uniform shedding means the
			// whole tier is saturated.
			for j := range tried {
				tried[j] = false
			}
			triedCount = 0
			attemptedThisRound = false
			delay := p.backoff(i)
			if retryHint > delay {
				delay = retryHint
				if p.policy.MaxDelay > 0 && delay > p.policy.MaxDelay {
					delay = p.policy.MaxDelay
				}
			}
			retryHint = 0
			if err := p.sleep(ctx, delay); err != nil {
				return nil, err
			}
		}
		idx := p.pick(key, tried)
		if idx < 0 {
			// No untried endpoint is breaker-ready; charge the rest of the
			// round as refused and let the wrap-around logic decide.
			triedCount = len(p.endpoints)
			continue
		}
		tried[idx] = true
		triedCount++
		ep := p.endpoints[idx]
		if ep.breaker.Allow() != nil {
			// Lost the half-open probe slot to a concurrent request (or
			// the breaker re-opened since pick); move on without burning
			// an attempt.
			continue
		}
		attemptedThisRound = true
		if i > 0 {
			p.failovers.Add(1)
			if p.metrics != nil {
				p.metrics.failovers.Inc()
			}
		}
		i++

		resp, err := p.attempt(ctx, ep, idx, pathAndQuery)
		switch {
		case err != nil:
			// A dead parent context is the caller giving up, not the shard
			// failing: surface it without charging the endpoint.
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			// Transport error: the instance is likely gone. Mark it down
			// right away so concurrent requests stop picking it before the
			// next health probe lands.
			p.recordFailure(ep, idx)
			p.setHealthy(ep, idx, false)
			lastErr = err
			if i == attempts {
				return nil, fmt.Errorf("httpx: pool: %d attempts: %w", attempts, lastErr)
			}
		case RetryableStatus(resp.StatusCode):
			// A shedding or erroring shard: fail over to a fresh endpoint
			// immediately — its Retry-After only paces the round-wrap
			// backoff if every shard turns out to be shedding too.
			p.recordFailure(ep, idx)
			if i == attempts {
				return resp, nil
			}
			if ra := retryAfter(resp); ra > retryHint {
				retryHint = ra
			}
			drainClose(resp)
		default:
			ep.breaker.Record(true)
			p.observeEndpoint(ep, idx)
			return resp, nil
		}
	}
}

// attempt issues one try against one endpoint under the per-attempt
// timeout, tracking the in-flight count the least-loaded selection reads.
func (p *Pool) attempt(ctx context.Context, ep *Endpoint, idx int, pathAndQuery string) (*http.Response, error) {
	cancel := context.CancelFunc(func() {})
	if p.policy.PerAttemptTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.policy.PerAttemptTimeout)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.base+pathAndQuery, nil)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("httpx: pool: building request: %w", err)
	}
	// Same propagation as Client.Do: every pooled attempt (including
	// failovers to another shard) carries the caller's span identity.
	obs.InjectTraceHeader(ctx, req.Header)
	ep.requests.Add(1)
	ep.inFlight.Add(1)
	if p.metrics != nil {
		p.metrics.requests[idx].Inc()
		p.metrics.inFlight[idx].Add(1)
	}
	resp, err := p.doer.Do(req)
	ep.inFlight.Add(-1)
	if p.metrics != nil {
		p.metrics.inFlight[idx].Add(-1)
	}
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// pick selects the endpoint for key among those not yet tried this round:
// the ring owner when it is healthy, admitted by its breaker, and not
// overloaded; otherwise the next shard clockwise (stable failover — a
// key's backup cache is always the same shard); the least-loaded healthy
// endpoint when the owner is carrying more than spillFactor times the
// average in-flight load; and, when no endpoint is healthy, the
// least-loaded breaker-admitted endpoint regardless of health (marks can
// be stale — better one probe than certain failure). Returns -1 when every
// untried endpoint's breaker refuses.
func (p *Pool) pick(key uint64, tried []bool) int {
	usable := func(idx int) bool {
		return !tried[idx] && p.endpoints[idx].breaker.Ready()
	}
	owner := p.ring.OwnerExcluding(key, func(idx int) bool {
		return !usable(idx) || !p.endpoints[idx].up(p.downTTL)
	})
	if owner >= 0 && !p.overloaded(owner) {
		return owner
	}
	// Least-loaded healthy fallback (spill), then least-loaded regardless
	// of health marks.
	if idx := p.leastLoaded(tried, true); idx >= 0 {
		return idx
	}
	if owner >= 0 {
		return owner
	}
	return p.leastLoaded(tried, false)
}

// overloaded reports whether idx carries more than spillFactor times the
// pool-average in-flight load (plus slack of one request).
func (p *Pool) overloaded(idx int) bool {
	if len(p.endpoints) == 1 {
		return false
	}
	var total int64
	for _, ep := range p.endpoints {
		total += ep.inFlight.Load()
	}
	avg := float64(total) / float64(len(p.endpoints))
	return float64(p.endpoints[idx].inFlight.Load()) > spillFactor*avg+1
}

// leastLoaded returns the untried, breaker-admitted endpoint with the
// fewest in-flight requests (requiring a healthy mark when healthyOnly),
// or -1. Ties break on the lower index, keeping selection deterministic.
func (p *Pool) leastLoaded(tried []bool, healthyOnly bool) int {
	best := -1
	var bestLoad int64
	for idx, ep := range p.endpoints {
		if tried[idx] || !ep.breaker.Ready() {
			continue
		}
		if healthyOnly && !ep.up(p.downTTL) {
			continue
		}
		load := ep.inFlight.Load()
		if best < 0 || load < bestLoad {
			best, bestLoad = idx, load
		}
	}
	return best
}

// recordFailure charges one failed attempt to the endpoint.
func (p *Pool) recordFailure(ep *Endpoint, idx int) {
	ep.failures.Add(1)
	ep.breaker.Record(false)
	if p.metrics != nil {
		p.metrics.failures[idx].Inc()
	}
	p.observeEndpoint(ep, idx)
}

// setHealthy refreshes the endpoint's health mark, publishing the gauge: a
// down report stamps downSince (refreshing any earlier mark so the TTL
// restarts), an up report clears it.
func (p *Pool) setHealthy(ep *Endpoint, idx int, healthy bool) {
	if healthy {
		ep.downSince.Store(0)
	} else {
		ep.downSince.Store(time.Now().UnixNano())
	}
	if p.metrics != nil {
		if healthy {
			p.metrics.healthy[idx].Set(1)
		} else {
			p.metrics.healthy[idx].Set(0)
		}
	}
}

// observeEndpoint refreshes the endpoint's breaker-state gauge.
func (p *Pool) observeEndpoint(ep *Endpoint, idx int) {
	if p.metrics != nil {
		p.metrics.breakerState[idx].Set(breakerStateValue(ep.breaker.State()))
	}
}

// backoff returns the jittered exponential delay before round i, shared
// shape with Client.backoff.
func (p *Pool) backoff(attempt int) time.Duration {
	pol := p.policy
	d := float64(pol.BaseDelay)
	if pol.Multiplier > 0 && attempt > 0 {
		d *= pow(pol.Multiplier, attempt)
	}
	if pol.Jitter > 0 {
		p.mu.Lock()
		f := p.rnd.Float64()
		p.mu.Unlock()
		d *= 1 + pol.Jitter*(2*f-1)
	}
	if pol.MaxDelay > 0 && d > float64(pol.MaxDelay) {
		d = float64(pol.MaxDelay)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// pow is an integer-exponent power loop (math.Pow is overkill for backoff).
func pow(base float64, exp int) float64 {
	out := 1.0
	for ; exp > 0; exp-- {
		out *= base
	}
	return out
}

// healthLoop probes one endpoint's health path until Close.
func (p *Pool) healthLoop(idx int) {
	defer p.wg.Done()
	ep := p.endpoints[idx]
	t := time.NewTicker(p.healthEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.setHealthy(ep, idx, p.probe(ep))
		}
	}
}

// probe issues one health check; any 2xx answer counts as alive.
func (p *Pool) probe(ep *Endpoint) bool {
	timeout := p.healthEvery * 4
	if timeout < time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.base+p.healthPath, nil)
	if err != nil {
		return false
	}
	resp, err := p.doer.Do(req)
	if err != nil {
		return false
	}
	drainClose(resp)
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}
