package httpx

import (
	"fmt"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

// processStart stamps /healthz with when this process came up, so a fleet
// scraper can tell a restarted instance from a long-lived one without any
// out-of-band configuration.
var processStart = time.Now()

// Server-side resilience: the elevation and segment services (and the DEM
// tile mirror) sit under sweeps that fan thousands of requests at them, so
// they need the mirror image of the client-side protections in this
// package — recover a panicking handler instead of dropping the connection,
// bound each request's wall clock, and shed load with 429 + Retry-After
// when too many requests are in flight (which the retrying Client on the
// other side honors).

// ServerConfig tunes Harden.
type ServerConfig struct {
	// MaxInFlight bounds concurrently served requests; excess requests are
	// shed with 429 and a Retry-After hint. 0 disables shedding.
	MaxInFlight int
	// RequestTimeout bounds one request's handling; 0 disables it.
	RequestTimeout time.Duration
	// RetryAfter is the hint attached to shed responses (rounded up to
	// whole seconds; minimum, and default, 1s). With DynamicRetryAfter it
	// is the base the pressure scaling starts from.
	RetryAfter time.Duration
	// DynamicRetryAfter derives the shed hint from live pressure instead
	// of a fixed value: the base hint grows with the shed rate observed in
	// the current one-second window, so a pooled client fleet backs off
	// proportionally to how overloaded the server actually is instead of
	// stampeding back in lockstep.
	DynamicRetryAfter bool
	// MaxRetryAfter caps the dynamic hint (default 30s).
	MaxRetryAfter time.Duration
	// Logf receives panic reports; nil discards them.
	Logf func(string, ...any)
}

// Harden wraps h with panic recovery, per-request timeout, and
// max-in-flight load shedding, outermost first — a shed request is rejected
// before it can tie up a handler slot or a timeout timer.
func Harden(h http.Handler, cfg ServerConfig) http.Handler {
	if cfg.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, cfg.RequestTimeout, "request timed out")
	}
	h = recoverHandler(h, cfg.Logf)
	if cfg.MaxInFlight > 0 {
		h = shedHandler(h, cfg)
	}
	return h
}

// recoverHandler converts a handler panic into a 500 (when the response has
// not started) and keeps the server alive either way.
func recoverHandler(h http.Handler, logf func(string, ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // deliberate connection abort, not a crash
				}
				if logf != nil {
					logf("httpx: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				}
				// Best effort: if the handler already wrote, this is a no-op
				// on the status line and the client sees a torn body.
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// shedHandler rejects requests beyond MaxInFlight with 429 + Retry-After.
// In dynamic mode the hint scales with the shed rate: when shedding is rare
// the hint stays at the base, and under a sustained stampede it grows
// toward MaxRetryAfter, spreading the fleet's retries out in time.
func shedHandler(h http.Handler, cfg ServerConfig) http.Handler {
	slots := make(chan struct{}, cfg.MaxInFlight)
	base := ceilSeconds(cfg.RetryAfter)
	var p *shedPressure
	if cfg.DynamicRetryAfter {
		maxSecs := ceilSeconds(cfg.MaxRetryAfter)
		if cfg.MaxRetryAfter <= 0 {
			maxSecs = 30
		}
		p = &shedPressure{base: base, max: maxSecs, perStep: cfg.MaxInFlight}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			defer func() { <-slots }()
			h.ServeHTTP(w, r)
		default:
			secs := base
			if p != nil {
				secs = p.hint(time.Now())
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, fmt.Sprintf("server at capacity (%d in flight)", cfg.MaxInFlight), http.StatusTooManyRequests)
		}
	})
}

// ceilSeconds rounds d up to whole seconds, minimum 1.
func ceilSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if d > time.Duration(secs)*time.Second {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shedPressure tracks sheds in the current one-second window and converts
// the count into a Retry-After hint: base seconds plus one second per
// perStep sheds (i.e. per full in-flight capacity's worth of rejected
// requests), capped at max.
type shedPressure struct {
	base, max, perStep int

	mu          sync.Mutex
	windowStart time.Time
	sheds       int
}

// hint records one shed at now and returns the seconds a client should
// wait before retrying.
func (p *shedPressure) hint(now time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if now.Sub(p.windowStart) >= time.Second {
		p.windowStart = now
		p.sheds = 0
	}
	p.sheds++
	step := p.perStep
	if step < 1 {
		step = 1
	}
	secs := p.base + p.sheds/step
	if secs > p.max {
		secs = p.max
	}
	return secs
}

// HealthHandler answers liveness probes with a tiny JSON body carrying the
// instance's identity: service name, pid, and process start time (sharded
// instances add shard/shards; see shardHealthHandler). Mount it at /healthz
// outside Harden so probes bypass load shedding.
func HealthHandler(name string) http.Handler {
	body := []byte(fmt.Sprintf("{\"status\":\"ok\",\"service\":%q,\"pid\":%d,\"start_unix\":%d}\n",
		name, os.Getpid(), processStart.Unix()))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	})
}
