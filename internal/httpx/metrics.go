package httpx

import (
	"time"

	"elevprivacy/internal/obs"
)

// Client-side telemetry: WithMetrics fits a Client with handles into the
// process-wide obs registry, labeled by service, so a live sweep's retry
// storms, breaker trips, and rate-limiter stalls are visible on /metrics
// while they happen (Stats() remains the end-of-run snapshot).
//
// All series follow the elevpriv_httpx_* scheme:
//
//	elevpriv_httpx_requests_total{service=...}         Do calls
//	elevpriv_httpx_attempts_total{service=...}         individual tries
//	elevpriv_httpx_retries_total{service=...}          attempts after the first
//	elevpriv_httpx_breaker_rejected_total{service=...} fail-fast rejections
//	elevpriv_httpx_exhausted_retries_total{service=...} budgets burned
//	elevpriv_httpx_attempt_seconds{service=...}        per-attempt latency
//	elevpriv_httpx_limiter_wait_seconds{service=...}   rate-limiter stalls
//	elevpriv_httpx_breaker_state{service=...}          0 closed, 1 half-open, 2 open
type clientMetrics struct {
	requests        *obs.Counter
	attempts        *obs.Counter
	retries         *obs.Counter
	breakerRejected *obs.Counter
	exhausted       *obs.Counter
	attemptSeconds  *obs.Histogram
	limiterWait     *obs.Histogram
	breakerState    *obs.Gauge
}

// WithMetrics instruments the client under the given service label,
// recording into the default obs registry. The handles are resolved once
// here; per-request cost is a handful of atomic adds.
func WithMetrics(service string) Option {
	return func(c *Client) {
		label := `{service="` + service + `"}`
		c.metrics = &clientMetrics{
			requests:        obs.GetCounter("elevpriv_httpx_requests_total" + label),
			attempts:        obs.GetCounter("elevpriv_httpx_attempts_total" + label),
			retries:         obs.GetCounter("elevpriv_httpx_retries_total" + label),
			breakerRejected: obs.GetCounter("elevpriv_httpx_breaker_rejected_total" + label),
			exhausted:       obs.GetCounter("elevpriv_httpx_exhausted_retries_total" + label),
			attemptSeconds:  obs.GetHistogram("elevpriv_httpx_attempt_seconds"+label, nil),
			limiterWait:     obs.GetHistogram("elevpriv_httpx_limiter_wait_seconds"+label, nil),
			breakerState:    obs.GetGauge("elevpriv_httpx_breaker_state" + label),
		}
	}
}

// Pool telemetry: WithPoolMetrics fits a Pool with per-endpoint handles so
// a sharded sweep's balance, failovers, and per-shard health are visible on
// /metrics live (Pool.Stats() remains the end-of-run snapshot):
//
//	elevpriv_pool_requests_total{service=...,endpoint=...}  attempts issued
//	elevpriv_pool_failures_total{service=...,endpoint=...}  failed attempts
//	elevpriv_pool_in_flight{service=...,endpoint=...}       live requests
//	elevpriv_pool_endpoint_healthy{service=...,endpoint=...} 1 up, 0 down
//	elevpriv_pool_breaker_state{service=...,endpoint=...}   0/1/2 like httpx
//	elevpriv_pool_failovers_total{service=...}              re-issued attempts
type poolMetrics struct {
	failovers    *obs.Counter
	requests     []*obs.Counter
	failures     []*obs.Counter
	inFlight     []*obs.Gauge
	healthy      []*obs.Gauge
	breakerState []*obs.Gauge
}

// newPoolMetrics resolves every per-endpoint handle once at pool
// construction; the per-request cost stays a couple of atomic adds.
func newPoolMetrics(service string, endpoints []*Endpoint) *poolMetrics {
	m := &poolMetrics{
		failovers: obs.GetCounter(`elevpriv_pool_failovers_total{service="` + service + `"}`),
	}
	for _, ep := range endpoints {
		label := `{service="` + service + `",endpoint="` + ep.base + `"}`
		m.requests = append(m.requests, obs.GetCounter("elevpriv_pool_requests_total"+label))
		m.failures = append(m.failures, obs.GetCounter("elevpriv_pool_failures_total"+label))
		m.inFlight = append(m.inFlight, obs.GetGauge("elevpriv_pool_in_flight"+label))
		healthy := obs.GetGauge("elevpriv_pool_endpoint_healthy" + label)
		healthy.Set(1) // endpoints start healthy
		m.healthy = append(m.healthy, healthy)
		m.breakerState = append(m.breakerState, obs.GetGauge("elevpriv_pool_breaker_state"+label))
	}
	return m
}

// breakerStateValue maps Breaker.State() strings onto the gauge scale.
func breakerStateValue(state string) float64 {
	switch state {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

// observeBreakerState publishes the breaker's current state; no-op without
// metrics or without a breaker.
func (c *Client) observeBreakerState() {
	if c.metrics == nil || c.breaker == nil {
		return
	}
	c.metrics.breakerState.Set(breakerStateValue(c.breaker.State()))
}

// timeIfMetrics returns now only when the client is instrumented, keeping
// the uninstrumented path free of clock reads.
func (c *Client) timeIfMetrics() time.Time {
	if c.metrics == nil {
		return time.Time{}
	}
	return time.Now()
}
