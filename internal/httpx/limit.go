package httpx

import (
	"context"
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter: capacity burst tokens, refilled at
// rate tokens per second. Wait reserves a token and sleeps until the
// reservation matures, so callers self-pace instead of thundering at a
// remote quota. A nil *Limiter never limits.
type Limiter struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(context.Context, time.Duration) error
}

// NewLimiter creates a limiter allowing rate requests per second with the
// given burst capacity. rate must be positive; burst below 1 behaves as 1.
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	l := &Limiter{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
		sleep:  sleepContext,
	}
	l.last = l.now()
	return l
}

// Wait blocks until a token is available or ctx is done. The token is
// consumed either way: a cancelled wait forfeits its reservation, which
// keeps the bookkeeping simple at a negligible cost in throughput.
func (l *Limiter) Wait(ctx context.Context) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	now := l.now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	l.tokens--
	var wait time.Duration
	if l.tokens < 0 {
		wait = time.Duration(-l.tokens / l.rate * float64(time.Second))
	}
	l.mu.Unlock()
	return l.sleep(ctx, wait)
}
