package spectral

import (
	"fmt"
	"math"

	"elevprivacy/internal/imagerep"
	"elevprivacy/internal/ml/linalg"
)

// FeatureConfig controls spectral feature extraction.
type FeatureConfig struct {
	// ResamplePoints is the fixed length signals are resampled to before
	// the FFT (rounded up to a power of two internally).
	ResamplePoints int
	// Bands is the number of log-power frequency bands kept as features.
	Bands int
	// IncludeStats appends simple time-domain statistics (mean, standard
	// deviation, total gain) to the spectral bands. The paper's "simple
	// features" baseline is the pure-spectral variant (false).
	IncludeStats bool
}

// DefaultFeatureConfig returns the baseline configuration.
func DefaultFeatureConfig() FeatureConfig {
	return FeatureConfig{
		ResamplePoints: 128,
		Bands:          32,
		IncludeStats:   false,
	}
}

// validate reports the first problem with the config.
func (c FeatureConfig) validate() error {
	if c.ResamplePoints < 4 {
		return fmt.Errorf("spectral: ResamplePoints must be >= 4, got %d", c.ResamplePoints)
	}
	if c.Bands < 1 {
		return fmt.Errorf("spectral: Bands must be >= 1, got %d", c.Bands)
	}
	return nil
}

// Features extracts the baseline feature vector from an elevation profile:
// the signal is resampled, mean-removed, Hann-windowed, transformed, and
// the log power of the lowest Bands frequency bands is returned (optionally
// with time-domain statistics appended).
func Features(signal []float64, cfg FeatureConfig) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(signal) == 0 {
		return nil, fmt.Errorf("spectral: empty signal")
	}

	n := nextPow2(cfg.ResamplePoints)
	resampled, err := imagerep.Resample(signal, n)
	if err != nil {
		return nil, err
	}

	// Remove the mean: spectral shape, not absolute altitude — this is
	// precisely why the baseline underperforms on location inference.
	var mean float64
	for _, v := range resampled {
		mean += v
	}
	mean /= float64(n)
	for i := range resampled {
		resampled[i] -= mean
	}
	HannWindow(resampled)

	power, err := PowerSpectrum(resampled)
	if err != nil {
		return nil, err
	}

	bands := cfg.Bands
	if bands > len(power)-1 {
		bands = len(power) - 1
	}
	// Skip DC (zeroed by mean removal); aggregate the rest into bands.
	perBand := (len(power) - 1) / bands
	if perBand < 1 {
		perBand = 1
	}
	out := make([]float64, 0, bands+3)
	for b := 0; b < bands; b++ {
		var sum float64
		lo := 1 + b*perBand
		hi := lo + perBand
		if hi > len(power) {
			hi = len(power)
		}
		for k := lo; k < hi; k++ {
			sum += power[k]
		}
		out = append(out, math.Log1p(sum))
	}

	if cfg.IncludeStats {
		out = append(out, stats(signal)...)
	}
	return out, nil
}

// stats returns mean, standard deviation, and total positive gain.
func stats(signal []float64) []float64 {
	var mean float64
	for _, v := range signal {
		mean += v
	}
	mean /= float64(len(signal))

	var variance, gain float64
	for i, v := range signal {
		variance += (v - mean) * (v - mean)
		if i > 0 && v > signal[i-1] {
			gain += v - signal[i-1]
		}
	}
	variance /= float64(len(signal))
	return []float64{mean, math.Sqrt(variance), gain}
}

// FeaturesAll extracts features for a batch of signals as one dense
// feature matrix, ready for the batch classifier contract.
func FeaturesAll(signals [][]float64, cfg FeatureConfig) (*linalg.Matrix, error) {
	if len(signals) == 0 {
		return nil, fmt.Errorf("spectral: empty batch")
	}
	var out *linalg.Matrix
	for i, sig := range signals {
		f, err := Features(sig, cfg)
		if err != nil {
			return nil, fmt.Errorf("spectral: signal %d: %w", i, err)
		}
		if out == nil {
			out = linalg.NewMatrix(len(signals), len(f))
		}
		copy(out.Row(i), f)
	}
	return out, nil
}
