package spectral

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownSinusoid(t *testing.T) {
	// A pure cosine at bin 3 of a 64-point transform concentrates all
	// energy in bins 3 and 61.
	const n = 64
	const freq = 3
	data := make([]complex128, n)
	for i := range data {
		data[i] = complex(math.Cos(2*math.Pi*freq*float64(i)/n), 0)
	}
	if err := FFT(data); err != nil {
		t.Fatal(err)
	}
	for k := range data {
		mag := cmplx.Abs(data[k])
		if k == freq || k == n-freq {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Errorf("bin %d magnitude = %f, want %d", k, mag, n/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude = %g, want 0", k, mag)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]complex128, 128)
	orig := make([]complex128, 128)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = data[i]
	}
	if err := FFT(data); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if cmplx.Abs(data[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip diverges at %d: %v vs %v", i, data[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Energy in time domain equals energy in frequency domain / N.
	rng := rand.New(rand.NewSource(2))
	const n = 256
	data := make([]complex128, n)
	var timeEnergy float64
	for i := range data {
		v := rng.NormFloat64()
		data[i] = complex(v, 0)
		timeEnergy += v * v
	}
	if err := FFT(data); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, c := range data {
		freqEnergy += real(c)*real(c) + imag(c)*imag(c)
	}
	freqEnergy /= n
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Errorf("Parseval violated: time %f vs freq %f", timeEnergy, freqEnergy)
	}
}

func TestFFTValidation(t *testing.T) {
	if err := FFT(nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Error("non-power-of-two length accepted")
	}
	if err := FFT(make([]complex128, 1)); err != nil {
		t.Errorf("length 1 rejected: %v", err)
	}
}

func TestPowerSpectrumDCOnly(t *testing.T) {
	sig := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	power, err := PowerSpectrum(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(power) != 5 {
		t.Fatalf("one-sided length = %d, want 5", len(power))
	}
	if math.Abs(power[0]-1600) > 1e-9 { // (8*5)^2
		t.Errorf("DC power = %f, want 1600", power[0])
	}
	for k := 1; k < len(power); k++ {
		if power[k] > 1e-9 {
			t.Errorf("bin %d power = %g, want 0", k, power[k])
		}
	}
}

func TestHannWindowEndpoints(t *testing.T) {
	sig := []float64{1, 1, 1, 1, 1}
	HannWindow(sig)
	if sig[0] != 0 || sig[4] != 0 {
		t.Errorf("window endpoints = %f, %f; want 0", sig[0], sig[4])
	}
	if math.Abs(sig[2]-1) > 1e-12 {
		t.Errorf("window center = %f, want 1", sig[2])
	}
	// Degenerate lengths must not panic.
	one := []float64{3}
	HannWindow(one)
	if one[0] != 3 {
		t.Error("length-1 window modified the sample")
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{1, 2}, {2, 2}, {3, 4}, {128, 128}, {129, 256},
	}
	for _, tc := range tests {
		if got := nextPow2(tc.in); got != tc.want {
			t.Errorf("nextPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFeaturesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sig := make([]float64, 90)
	for i := range sig {
		sig[i] = 100 + rng.Float64()*20
	}
	cfg := DefaultFeatureConfig()
	f, err := Features(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != cfg.Bands {
		t.Errorf("feature dim = %d, want %d", len(f), cfg.Bands)
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("feature %d = %f", i, v)
		}
	}

	cfg.IncludeStats = true
	f, err = Features(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != cfg.Bands+3 {
		t.Errorf("with stats dim = %d, want %d", len(f), cfg.Bands+3)
	}
}

// TestFeaturesMeanInvariant pins the baseline's defining weakness: adding
// a constant altitude offset leaves the pure spectral features unchanged,
// so the features cannot tell a sea-level city from a mountain one.
func TestFeaturesMeanInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	low := make([]float64, 80)
	high := make([]float64, 80)
	for i := range low {
		v := rng.Float64() * 15
		low[i] = 5 + v
		high[i] = 1860 + v
	}
	cfg := DefaultFeatureConfig()
	fl, err := Features(low, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := Features(high, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fl {
		if math.Abs(fl[i]-fh[i]) > 1e-6 {
			t.Fatalf("spectral features see absolute altitude at band %d: %f vs %f", i, fl[i], fh[i])
		}
	}
}

func TestFeaturesValidation(t *testing.T) {
	if _, err := Features(nil, DefaultFeatureConfig()); err == nil {
		t.Error("empty signal accepted")
	}
	bad := DefaultFeatureConfig()
	bad.Bands = 0
	if _, err := Features([]float64{1, 2, 3}, bad); err == nil {
		t.Error("0 bands accepted")
	}
	bad = DefaultFeatureConfig()
	bad.ResamplePoints = 2
	if _, err := Features([]float64{1, 2, 3}, bad); err == nil {
		t.Error("2-point resample accepted")
	}
}

func TestFeaturesAll(t *testing.T) {
	sigs := [][]float64{{1, 2, 3, 4, 5}, {9, 8, 7, 6, 5}}
	fs, err := FeaturesAll(sigs, DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fs.Rows != 2 {
		t.Fatalf("rows = %d", fs.Rows)
	}
	if fs.Cols != DefaultFeatureConfig().Bands {
		t.Fatalf("cols = %d", fs.Cols)
	}
	if _, err := FeaturesAll([][]float64{{1}, nil}, DefaultFeatureConfig()); err == nil {
		t.Error("batch with empty signal accepted")
	}
	if _, err := FeaturesAll(nil, DefaultFeatureConfig()); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestStats(t *testing.T) {
	s := stats([]float64{1, 3, 2, 5})
	if math.Abs(s[0]-2.75) > 1e-12 {
		t.Errorf("mean = %f", s[0])
	}
	// Gains: 1->3 (+2), 2->5 (+3) = 5.
	if math.Abs(s[2]-5) > 1e-12 {
		t.Errorf("gain = %f", s[2])
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		n := 32
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			var va, vb float64
			if 2*i < len(raw) {
				va = math.Mod(raw[2*i], 100)
			}
			if 2*i+1 < len(raw) {
				vb = math.Mod(raw[2*i+1], 100)
			}
			if math.IsNaN(va) || math.IsNaN(vb) {
				return true
			}
			a[i] = complex(va, 0)
			b[i] = complex(vb, 0)
			sum[i] = a[i] + b[i]
		}
		if FFT(a) != nil || FFT(b) != nil || FFT(sum) != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
