// Package spectral implements the paper's rejected baseline: classifying
// elevation profiles from simple spectral features. The paper's abstract
// establishes that such features "are insufficient", which motivates the
// text-like and image-like representations; this package reproduces that
// comparison point with a from-scratch FFT.
package spectral

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place radix-2 Cooley-Tukey fast Fourier transform of
// the complex sequence. The length must be a power of two.
func FFT(data []complex128) error {
	return transform(data, false)
}

// IFFT computes the inverse transform (including the 1/N scaling).
func IFFT(data []complex128) error {
	if err := transform(data, true); err != nil {
		return err
	}
	n := complex(float64(len(data)), 0)
	for i := range data {
		data[i] /= n
	}
	return nil
}

// transform runs the iterative radix-2 FFT with bit-reversal permutation.
func transform(data []complex128, inverse bool) error {
	n := len(data)
	if n == 0 {
		return fmt.Errorf("spectral: empty input")
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("spectral: length %d is not a power of two", n)
	}

	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			data[i], data[j] = data[j], data[i]
		}
	}

	// Butterflies.
	for size := 2; size <= n; size *= 2 {
		angle := 2 * math.Pi / float64(size)
		if !inverse {
			angle = -angle
		}
		wStep := complex(math.Cos(angle), math.Sin(angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				even := data[start+k]
				odd := data[start+k+half] * w
				data[start+k] = even + odd
				data[start+k+half] = even - odd
				w *= wStep
			}
		}
	}
	return nil
}

// PowerSpectrum returns the one-sided power spectrum of a real signal of
// power-of-two length: |X_k|² for k in [0, n/2].
func PowerSpectrum(signal []float64) ([]float64, error) {
	n := len(signal)
	buf := make([]complex128, n)
	for i, v := range signal {
		buf[i] = complex(v, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, err
	}
	out := make([]float64, n/2+1)
	for k := range out {
		re := real(buf[k])
		im := imag(buf[k])
		out[k] = re*re + im*im
	}
	return out, nil
}

// HannWindow multiplies the signal in place by the Hann window, the
// standard taper before estimating a spectrum.
func HannWindow(signal []float64) {
	n := len(signal)
	if n < 2 {
		return
	}
	for i := range signal {
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		signal[i] *= w
	}
}

// nextPow2 returns the smallest power of two >= n (minimum 2).
func nextPow2(n int) int {
	p := 2
	for p < n {
		p *= 2
	}
	return p
}
