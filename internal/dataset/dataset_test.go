package dataset

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"elevprivacy/internal/activity"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/segments"
)

// tinyDataset builds a deterministic dataset with the given per-label sizes.
func tinyDataset(sizes map[string]int) *Dataset {
	labels := make([]string, 0, len(sizes))
	for label := range sizes {
		labels = append(labels, label)
	}
	sort.Strings(labels)

	d := &Dataset{}
	for _, label := range labels {
		n := sizes[label]
		for i := 0; i < n; i++ {
			base := float64(len(label)) * 10
			d.Samples = append(d.Samples, Sample{
				ID:    label + string(rune('0'+i%10)),
				Label: label,
				Elevations: []float64{
					base, base + 1, base + 2, base + float64(i%5), base - 1, base,
				},
				Path: geo.Path{
					{Lat: base / 100, Lng: base / 100},
					{Lat: base/100 + 0.01, Lng: base/100 + 0.01},
				},
			})
		}
	}
	return d
}

func TestLabelsSortedAndCounts(t *testing.T) {
	d := tinyDataset(map[string]int{"b": 3, "a": 2, "c": 1})
	labels := d.Labels()
	if len(labels) != 3 || labels[0] != "a" || labels[1] != "b" || labels[2] != "c" {
		t.Errorf("Labels = %v", labels)
	}
	counts := d.CountByLabel()
	if counts["a"] != 2 || counts["b"] != 3 || counts["c"] != 1 {
		t.Errorf("CountByLabel = %v", counts)
	}
	if d.Len() != 6 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestFilter(t *testing.T) {
	d := tinyDataset(map[string]int{"a": 2, "b": 3, "c": 1})
	f := d.Filter("a", "c")
	if f.Len() != 3 {
		t.Errorf("filtered Len = %d, want 3", f.Len())
	}
	for _, s := range f.Samples {
		if s.Label == "b" {
			t.Error("filter leaked label b")
		}
	}
	if d.Len() != 6 {
		t.Error("Filter mutated source")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := tinyDataset(map[string]int{"a": 1})
	c := d.Clone()
	c.Samples[0].Elevations[0] = 999
	c.Samples[0].Path[0].Lat = 77
	if d.Samples[0].Elevations[0] == 999 {
		t.Error("Clone shares elevation storage")
	}
	if d.Samples[0].Path[0].Lat == 77 {
		t.Error("Clone shares path storage")
	}
}

func TestBalanced(t *testing.T) {
	d := tinyDataset(map[string]int{"a": 10, "b": 5, "c": 7})
	rng := rand.New(rand.NewSource(1))
	bal, err := d.Balanced(5, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := bal.CountByLabel()
	for _, label := range []string{"a", "b", "c"} {
		if counts[label] != 5 {
			t.Errorf("balanced %s = %d, want 5", label, counts[label])
		}
	}
	if _, err := d.Balanced(6, rng); err == nil {
		t.Error("perClass beyond smallest class accepted")
	}
	if _, err := d.Balanced(0, rng); err == nil {
		t.Error("perClass=0 accepted")
	}
}

func TestSplitStratified(t *testing.T) {
	d := tinyDataset(map[string]int{"a": 10, "b": 10})
	rng := rand.New(rand.NewSource(2))
	train, test, err := d.SplitStratified(0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != d.Len() {
		t.Errorf("split loses samples: %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	testCounts := test.CountByLabel()
	if testCounts["a"] != 3 || testCounts["b"] != 3 {
		t.Errorf("test counts = %v, want 3 per label", testCounts)
	}
	// No sample in both splits.
	inTrain := map[string]bool{}
	for _, s := range train.Samples {
		inTrain[s.ID+s.Label] = true
	}
	for _, s := range test.Samples {
		if inTrain[s.ID+s.Label] {
			t.Errorf("sample %s in both splits", s.ID)
		}
	}
	if _, _, err := d.SplitStratified(0, rng); err == nil {
		t.Error("testFrac=0 accepted")
	}
	if _, _, err := d.SplitStratified(1, rng); err == nil {
		t.Error("testFrac=1 accepted")
	}
}

func TestSplitStratifiedTinyClassesKeepTrainSample(t *testing.T) {
	d := tinyDataset(map[string]int{"a": 2})
	rng := rand.New(rand.NewSource(3))
	train, test, err := d.SplitStratified(0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() == 0 || test.Len() == 0 {
		t.Errorf("tiny class split: train=%d test=%d, both must be non-empty", train.Len(), test.Len())
	}
}

func TestShuffleDeterministic(t *testing.T) {
	d1 := tinyDataset(map[string]int{"a": 5, "b": 5})
	d2 := tinyDataset(map[string]int{"a": 5, "b": 5})
	d1.Shuffle(rand.New(rand.NewSource(9)))
	d2.Shuffle(rand.New(rand.NewSource(9)))
	for i := range d1.Samples {
		if d1.Samples[i].ID != d2.Samples[i].ID || d1.Samples[i].Label != d2.Samples[i].Label {
			t.Fatal("same-seed shuffles diverge")
		}
	}
}

func TestFromActivitiesAndMined(t *testing.T) {
	acts := []activity.Activity{{
		Name:       "a1",
		Region:     "Orlando",
		Path:       geo.Path{{Lat: 1, Lng: 1}, {Lat: 1.01, Lng: 1.01}},
		Elevations: []float64{1, 2},
	}}
	d := FromActivities(acts)
	if d.Len() != 1 || d.Samples[0].Label != "Orlando" {
		t.Errorf("FromActivities = %+v", d.Samples)
	}

	mined := []segments.MinedSegment{{
		ID:         "m1",
		Label:      "Miami",
		Path:       geo.Path{{Lat: 25, Lng: -80}, {Lat: 25.01, Lng: -80.01}},
		Elevations: []float64{3, 4, 5},
	}}
	d = FromMined(mined)
	if d.Len() != 1 || d.Samples[0].Label != "Miami" || len(d.Samples[0].Elevations) != 3 {
		t.Errorf("FromMined = %+v", d.Samples)
	}
}

func TestAverageOverlapRatio(t *testing.T) {
	// Two identical paths in one label: ratio 1. A third sample in another
	// label far away contributes no pair.
	p := geo.Path{{Lat: 1, Lng: 1}, {Lat: 1.05, Lng: 1.05}}
	d := &Dataset{Samples: []Sample{
		{ID: "1", Label: "x", Path: p, Elevations: []float64{1, 2, 3, 4}},
		{ID: "2", Label: "x", Path: p.Clone(), Elevations: []float64{1, 2, 3, 4}},
		{ID: "3", Label: "y", Path: geo.Path{{Lat: 5, Lng: 5}, {Lat: 5.01, Lng: 5.01}}, Elevations: []float64{1, 2, 3, 4}},
	}}
	if r := d.AverageOverlapRatio(); math.Abs(r-1) > 1e-12 {
		t.Errorf("ratio = %f, want 1", r)
	}
	if r := (&Dataset{}).AverageOverlapRatio(); r != 0 {
		t.Errorf("empty ratio = %f", r)
	}
}

func TestSimulateOverlapGrowsClassesAndRatio(t *testing.T) {
	cfg := DefaultBuildConfig()
	cfg.Scale = 0.02
	cfg.MinPerClass = 15
	cfg.ProfileSamples = 40
	base, err := BuildCityLevel(worldForTest(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4))
	sim, err := SimulateOverlap(base, DefaultOverlapConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}

	baseCounts := base.CountByLabel()
	simCounts := sim.CountByLabel()
	for label, n := range baseCounts {
		want := n + int(float64(n)*0.30+0.5)
		if simCounts[label] != want {
			t.Errorf("%s: %d samples after sim, want %d", label, simCounts[label], want)
		}
	}

	if rBase, rSim := base.AverageOverlapRatio(), sim.AverageOverlapRatio(); rSim <= rBase {
		t.Errorf("overlap ratio did not increase: %f -> %f", rBase, rSim)
	}

	// Source dataset untouched.
	if base.Len() >= sim.Len() {
		t.Error("simulation did not grow the dataset")
	}
}

func TestSimulateOverlapValidation(t *testing.T) {
	d := tinyDataset(map[string]int{"a": 3})
	rng := rand.New(rand.NewSource(5))
	bad := DefaultOverlapConfig()
	bad.ExtraFrac = -1
	if _, err := SimulateOverlap(d, bad, rng); err == nil {
		t.Error("negative ExtraFrac accepted")
	}
	bad = DefaultOverlapConfig()
	bad.MinKeepFrac = 0
	if _, err := SimulateOverlap(d, bad, rng); err == nil {
		t.Error("MinKeepFrac 0 accepted")
	}
	// Too-short profiles are rejected.
	short := &Dataset{Samples: []Sample{
		{ID: "s1", Label: "a", Elevations: []float64{1, 2}},
		{ID: "s2", Label: "a", Elevations: []float64{1, 2}},
		{ID: "s3", Label: "a", Elevations: []float64{1, 2}},
		{ID: "s4", Label: "a", Elevations: []float64{1, 2}},
	}}
	if _, err := SimulateOverlap(short, DefaultOverlapConfig(), rng); err == nil {
		t.Error("2-value profile accepted for perturbation")
	}
}

func TestPerturbCopyCropsWithinSource(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := Sample{ID: "s", Label: "a", Elevations: []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}}
	cfg := DefaultOverlapConfig()
	cfg.ElevationNoise = 0 // exact values for verification
	for k := 0; k < 20; k++ {
		dup, err := perturbCopy(src, k, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(dup.Elevations) < 8 || len(dup.Elevations) > 10 {
			t.Errorf("crop length %d outside [8,10]", len(dup.Elevations))
		}
		if dup.Label != "a" {
			t.Errorf("label = %q", dup.Label)
		}
		// Values must be a contiguous window of the source.
		first := dup.Elevations[0]
		start := int(first/10) - 1
		for i, v := range dup.Elevations {
			if math.Abs(v-src.Elevations[start+i]) > 1e-12 {
				t.Fatalf("dup not a contiguous window at %d", i)
			}
		}
	}
}
