package dataset

import (
	"fmt"
	"math/rand"

	"elevprivacy/internal/activity"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/terrain"
)

// BuildConfig controls direct (in-process) dataset synthesis. The same
// datasets can be produced end-to-end over HTTP with segments.Miner; the
// direct builders exercise identical route generation and terrain sampling
// without the network hop and are what the experiment harness uses.
type BuildConfig struct {
	// ProfileSamples is the number of elevation values per mined profile
	// (the elevation API sampling resolution). User-specific activities are
	// instead sampled densely at every route vertex.
	ProfileSamples int
	// Scale multiplies every class's paper sample size; 1.0 reproduces
	// Tables I-III exactly, smaller values produce laptop-scale datasets
	// with the same class ratios.
	Scale float64
	// MinPerClass floors the scaled class size so tiny classes survive
	// scaling.
	MinPerClass int
	// Seed drives all randomness.
	Seed int64
}

// DefaultBuildConfig reproduces the paper's dataset shapes at full size.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		ProfileSamples: 100,
		Scale:          1.0,
		MinPerClass:    8,
		Seed:           1,
	}
}

// scaled returns the class size after scaling.
func (c BuildConfig) scaled(target int) int {
	n := int(float64(target)*c.Scale + 0.5)
	if n < c.MinPerClass {
		n = c.MinPerClass
	}
	return n
}

// validate reports the first problem with the config.
func (c BuildConfig) validate() error {
	if c.ProfileSamples < 2 {
		return fmt.Errorf("dataset: ProfileSamples must be >= 2, got %d", c.ProfileSamples)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("dataset: Scale must be positive, got %g", c.Scale)
	}
	return nil
}

// BuildUserSpecific synthesizes the Table I user-specific dataset: the
// simulated athlete's activity history, labeled by region, densely sampled.
func BuildUserSpecific(cfg BuildConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	regions := terrain.AthleteWorld()
	counts := map[string]int{}
	for _, r := range regions {
		counts[r.Name] = cfg.scaled(r.TargetSegments)
	}
	acts, err := activity.SimulateAthlete(regions, counts, activity.DefaultAthleteConfig(), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("dataset: user-specific build: %w", err)
	}
	return FromActivities(acts), nil
}

// BuildCityLevel synthesizes the Table II city-level dataset: per city,
// segment-shaped routes inside the city boundary with elevation profiles
// sampled from the city's terrain at ProfileSamples points.
func BuildCityLevel(world []*terrain.City, cfg BuildConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Dataset{}
	for ci, city := range world {
		if err := appendClassSamples(d, city, city.Name, city.Bounds,
			cfg.scaled(city.TargetSegments), cfg, cfg.Seed+int64(ci)*1000); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// BuildBoroughLevel synthesizes one city's borough-level dataset
// (Table III): per borough, routes confined to the borough boundary,
// labeled with the borough name, all sampled from the SAME city terrain —
// which is exactly why borough classification is harder than city
// classification.
func BuildBoroughLevel(city *terrain.City, cfg BuildConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(city.Boroughs) == 0 {
		return nil, fmt.Errorf("dataset: city %s has no boroughs", city.Name)
	}
	d := &Dataset{}
	for bi, b := range city.Boroughs {
		if err := appendClassSamples(d, city, b.Name, b.Bounds,
			cfg.scaled(b.TargetSegments), cfg, cfg.Seed+int64(bi)*1000+7); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// appendClassSamples generates n segment routes inside bounds on the city's
// terrain and appends them to d with the given label.
func appendClassSamples(d *Dataset, city *terrain.City, label string, bounds geo.BBox, n int, cfg BuildConfig, seed int64) error {
	tr, err := city.Terrain()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	gen, err := activity.NewRouteGenerator(bounds, rng)
	if err != nil {
		return fmt.Errorf("dataset: class %q: %w", label, err)
	}

	for i := 0; i < n; i++ {
		length := 800 + rng.Float64()*3200
		var path geo.Path
		switch rng.Intn(3) {
		case 0:
			path = gen.Loop(gen.RandomPoint(), length/6.3)
		case 1:
			path = gen.OutAndBack(gen.RandomPoint(), rng.Float64()*360, length/2)
		default:
			path = gen.Wander(length)
		}

		pts := path.Resample(cfg.ProfileSamples)
		elevs := make([]float64, 0, len(pts))
		for _, p := range pts {
			e, err := tr.ElevationAt(p)
			if err != nil {
				return fmt.Errorf("dataset: class %q elevation: %w", label, err)
			}
			elevs = append(elevs, e)
		}
		d.Samples = append(d.Samples, Sample{
			ID:         fmt.Sprintf("%s-%05d", label, i),
			Label:      label,
			Elevations: elevs,
			Path:       path,
		})
	}
	return nil
}
