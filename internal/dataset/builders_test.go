package dataset

import (
	"math"
	"testing"

	"elevprivacy/internal/terrain"
)

// worldForTest returns a trimmed 3-city world for fast builder tests.
func worldForTest() []*terrain.City {
	world := terrain.World()
	out := []*terrain.City{}
	for _, ab := range []string{"CS", "MIA", "SF"} {
		c, err := terrain.CityByName(world, ab)
		if err != nil {
			panic(err)
		}
		out = append(out, c)
	}
	return out
}

func smallCfg() BuildConfig {
	return BuildConfig{ProfileSamples: 40, Scale: 0.02, MinPerClass: 10, Seed: 1}
}

func TestBuildConfigValidation(t *testing.T) {
	cfg := smallCfg()
	cfg.ProfileSamples = 1
	if _, err := BuildCityLevel(worldForTest(), cfg); err == nil {
		t.Error("ProfileSamples=1 accepted")
	}
	cfg = smallCfg()
	cfg.Scale = 0
	if _, err := BuildCityLevel(worldForTest(), cfg); err == nil {
		t.Error("Scale=0 accepted")
	}
}

func TestBuildCityLevelShape(t *testing.T) {
	d, err := BuildCityLevel(worldForTest(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	counts := d.CountByLabel()
	if len(counts) != 3 {
		t.Fatalf("labels = %v", counts)
	}
	// SF target 743 at scale 0.02 => 15; CS 369 => 10 (min floor); MIA 94 => 10.
	if counts["San Francisco"] != 15 {
		t.Errorf("SF = %d, want 15", counts["San Francisco"])
	}
	if counts["Colorado Springs"] != 10 || counts["Miami"] != 10 {
		t.Errorf("floored classes = %v", counts)
	}
	for _, s := range d.Samples {
		if len(s.Elevations) != 40 {
			t.Fatalf("%s: %d elevations, want 40", s.ID, len(s.Elevations))
		}
		if len(s.Path) < 2 {
			t.Fatalf("%s: path too short", s.ID)
		}
	}
}

// TestBuildCityLevelElevationSignatures verifies the class separability the
// attack depends on: Colorado Springs profiles are high, Miami's near sea
// level.
func TestBuildCityLevelElevationSignatures(t *testing.T) {
	d, err := BuildCityLevel(worldForTest(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(label string) float64 {
		var sum float64
		var n int
		for _, s := range d.Samples {
			if s.Label != label {
				continue
			}
			for _, e := range s.Elevations {
				sum += e
				n++
			}
		}
		return sum / float64(n)
	}
	cs := meanOf("Colorado Springs")
	mia := meanOf("Miami")
	if cs < 1500 {
		t.Errorf("CS mean elevation = %f, want > 1500", cs)
	}
	if mia > 20 {
		t.Errorf("Miami mean elevation = %f, want < 20", mia)
	}
}

func TestBuildBoroughLevel(t *testing.T) {
	world := terrain.World()
	sf, err := terrain.CityByName(world, "SF")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	d, err := BuildBoroughLevel(sf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := d.CountByLabel()
	if len(counts) != 4 {
		t.Fatalf("SF borough labels = %v", counts)
	}
	// SF's biggest borough (South West, 743) scales to 15.
	if counts["South West"] != 15 {
		t.Errorf("South West = %d, want 15", counts["South West"])
	}

	// Cities without boroughs are rejected.
	cs, _ := terrain.CityByName(world, "CS")
	if _, err := BuildBoroughLevel(cs, cfg); err == nil {
		t.Error("borough build for borough-less city accepted")
	}
}

func TestBuildUserSpecific(t *testing.T) {
	cfg := BuildConfig{ProfileSamples: 10, Scale: 0.03, MinPerClass: 5, Seed: 2}
	d, err := BuildUserSpecific(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := d.CountByLabel()
	// Table I: WDC 366 -> 11, ORL 232 -> 7, NYC 120 -> 5(floor 4->5), SD 18 -> 5.
	if counts["Washington DC"] != 11 {
		t.Errorf("WDC = %d, want 11", counts["Washington DC"])
	}
	if counts["San Diego"] != 5 {
		t.Errorf("SD = %d, want 5 (floored)", counts["San Diego"])
	}
	// Dense sampling: elevations match path vertex count, not ProfileSamples.
	for _, s := range d.Samples {
		if len(s.Elevations) != len(s.Path) {
			t.Fatalf("%s: %d elevations for %d vertices", s.ID, len(s.Elevations), len(s.Path))
		}
	}
}

func TestBuildersDeterministic(t *testing.T) {
	a, err := BuildCityLevel(worldForTest(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCityLevel(worldForTest(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Samples {
		if a.Samples[i].ID != b.Samples[i].ID {
			t.Fatalf("IDs diverge at %d", i)
		}
		for j := range a.Samples[i].Elevations {
			if math.Abs(a.Samples[i].Elevations[j]-b.Samples[i].Elevations[j]) > 0 {
				t.Fatalf("elevations diverge at %d/%d", i, j)
			}
		}
	}
}
