// Package dataset defines the labeled elevation-profile datasets the attack
// pipeline trains on, with the operations the paper's evaluation needs:
// per-class balancing, train/test splitting, overlap measurement (IoU of
// tight rectangles), and the overlap simulation of §IV-A1.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"elevprivacy/internal/activity"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/segments"
)

// Sample is one labeled elevation profile.
type Sample struct {
	// ID identifies the source activity or segment.
	ID string
	// Label is the class (region, city, or borough name).
	Label string
	// Elevations is the elevation profile.
	Elevations []float64
	// Path is the source trajectory when known; used only for dataset
	// statistics (overlap ratio), never as a classification feature.
	Path geo.Path
}

// Dataset is an ordered collection of samples.
type Dataset struct {
	Samples []Sample
}

// FromActivities converts athlete activities into a dataset.
func FromActivities(acts []activity.Activity) *Dataset {
	d := &Dataset{Samples: make([]Sample, 0, len(acts))}
	for i := range acts {
		d.Samples = append(d.Samples, Sample{
			ID:         acts[i].Name,
			Label:      acts[i].Region,
			Elevations: acts[i].Elevations,
			Path:       acts[i].Path,
		})
	}
	return d
}

// FromMined converts miner output into a dataset.
func FromMined(mined []segments.MinedSegment) *Dataset {
	d := &Dataset{Samples: make([]Sample, 0, len(mined))}
	for i := range mined {
		d.Samples = append(d.Samples, Sample{
			ID:         mined[i].ID,
			Label:      mined[i].Label,
			Elevations: mined[i].Elevations,
			Path:       mined[i].Path,
		})
	}
	return d
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// Labels returns the distinct labels in sorted order.
func (d *Dataset) Labels() []string {
	seen := map[string]bool{}
	for i := range d.Samples {
		seen[d.Samples[i].Label] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// CountByLabel returns per-label sample counts.
func (d *Dataset) CountByLabel() map[string]int {
	out := map[string]int{}
	for i := range d.Samples {
		out[d.Samples[i].Label]++
	}
	return out
}

// indexByLabel returns per-label sample indices in dataset order.
func (d *Dataset) indexByLabel() map[string][]int {
	out := map[string][]int{}
	for i := range d.Samples {
		out[d.Samples[i].Label] = append(out[d.Samples[i].Label], i)
	}
	return out
}

// Clone deep-copies the dataset (elevations and paths included).
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Samples: make([]Sample, len(d.Samples))}
	for i, s := range d.Samples {
		cp := s
		cp.Elevations = append([]float64(nil), s.Elevations...)
		cp.Path = s.Path.Clone()
		out.Samples[i] = cp
	}
	return out
}

// Filter returns the subset carrying any of the given labels, in order.
func (d *Dataset) Filter(labels ...string) *Dataset {
	want := map[string]bool{}
	for _, l := range labels {
		want[l] = true
	}
	out := &Dataset{}
	for i := range d.Samples {
		if want[d.Samples[i].Label] {
			out.Samples = append(out.Samples, d.Samples[i])
		}
	}
	return out
}

// Shuffle permutes sample order deterministically under rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// Balanced returns a new dataset with exactly perClass random samples of
// every label, mirroring the paper's bias mitigation ("we use the same
// sample size for each class"). Labels with fewer than perClass samples are
// an error.
func (d *Dataset) Balanced(perClass int, rng *rand.Rand) (*Dataset, error) {
	if perClass <= 0 {
		return nil, fmt.Errorf("dataset: perClass must be positive, got %d", perClass)
	}
	byLabel := d.indexByLabel()
	labels := d.Labels()

	out := &Dataset{}
	for _, label := range labels {
		idx := byLabel[label]
		if len(idx) < perClass {
			return nil, fmt.Errorf("dataset: label %q has %d samples, need %d", label, len(idx), perClass)
		}
		perm := rng.Perm(len(idx))
		for _, k := range perm[:perClass] {
			out.Samples = append(out.Samples, d.Samples[idx[k]])
		}
	}
	return out, nil
}

// SplitStratified splits the dataset into train/test with testFrac of every
// class in the test split (at least one test sample per class when the
// class is non-empty and testFrac > 0).
func (d *Dataset) SplitStratified(testFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: testFrac must be in (0,1), got %g", testFrac)
	}
	train = &Dataset{}
	test = &Dataset{}
	byLabel := d.indexByLabel()
	for _, label := range d.Labels() {
		idx := byLabel[label]
		perm := rng.Perm(len(idx))
		nTest := int(float64(len(idx)) * testFrac)
		if nTest == 0 {
			nTest = 1
		}
		if nTest >= len(idx) {
			nTest = len(idx) - 1
		}
		for i, k := range perm {
			if i < nTest {
				test.Samples = append(test.Samples, d.Samples[idx[k]])
			} else {
				train.Samples = append(train.Samples, d.Samples[idx[k]])
			}
		}
	}
	return train, test, nil
}

// AverageOverlapRatio is the mean IoU of tight rectangles over all
// same-label sample pairs (the paper's dataset statistic). Samples without
// paths are skipped.
func (d *Dataset) AverageOverlapRatio() float64 {
	byLabel := map[string][]geo.BBox{}
	for i := range d.Samples {
		if b, ok := d.Samples[i].Path.Bounds(); ok {
			byLabel[d.Samples[i].Label] = append(byLabel[d.Samples[i].Label], b)
		}
	}
	var sum float64
	var pairs int
	for _, boxes := range byLabel {
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				sum += boxes[i].IoU(boxes[j])
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}
