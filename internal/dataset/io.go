package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"

	"elevprivacy/internal/geo"
	"elevprivacy/internal/gpx"
)

// sampleJSON is the on-disk form of one sample (the format cmd/elevgen
// writes and downstream tooling reads).
type sampleJSON struct {
	ID         string    `json:"id"`
	Label      string    `json:"label"`
	Elevations []float64 `json:"elevations"`
	Polyline   string    `json:"polyline,omitempty"`
}

// SaveJSON writes the dataset as a JSON array. Paths are stored as encoded
// polylines when present.
func SaveJSON(w io.Writer, d *Dataset) error {
	out := make([]sampleJSON, 0, d.Len())
	for i := range d.Samples {
		s := &d.Samples[i]
		sj := sampleJSON{
			ID:         s.ID,
			Label:      s.Label,
			Elevations: s.Elevations,
		}
		if len(s.Path) > 0 {
			sj.Polyline = geo.EncodePolyline(s.Path)
		}
		out = append(out, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("dataset: encoding json: %w", err)
	}
	return nil
}

// LoadJSON reads a dataset written by SaveJSON.
func LoadJSON(r io.Reader) (*Dataset, error) {
	var in []sampleJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decoding json: %w", err)
	}
	d := &Dataset{Samples: make([]Sample, 0, len(in))}
	for i, sj := range in {
		if sj.ID == "" || sj.Label == "" {
			return nil, fmt.Errorf("dataset: sample %d missing id or label", i)
		}
		if len(sj.Elevations) == 0 {
			return nil, fmt.Errorf("dataset: sample %s has no elevations", sj.ID)
		}
		s := Sample{ID: sj.ID, Label: sj.Label, Elevations: sj.Elevations}
		if sj.Polyline != "" {
			p, err := geo.DecodePolyline(sj.Polyline)
			if err != nil {
				return nil, fmt.Errorf("dataset: sample %s polyline: %w", sj.ID, err)
			}
			s.Path = p
		}
		d.Samples = append(d.Samples, s)
	}
	return d, nil
}

// LoadGPXDir implements the paper's §III-A1 labeling pipeline over a
// directory of GPX activity files: each track's tight bounding rectangle
// is clustered by center distance, and the activity is labeled with its
// region's identity ("R0", "R1", ...). thresholdMeters is the paper's
// center-distance threshold for joining an existing region.
//
// Files are processed in sorted name order so labeling is deterministic.
func LoadGPXDir(fsys fs.FS, dir string, thresholdMeters float64) (*Dataset, error) {
	if thresholdMeters <= 0 {
		return nil, fmt.Errorf("dataset: threshold must be positive, got %g", thresholdMeters)
	}
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && path.Ext(e.Name()) == ".gpx" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: no .gpx files in %s", dir)
	}
	sort.Strings(names)

	clusterer := geo.NewRegionClusterer(thresholdMeters)
	d := &Dataset{Samples: make([]Sample, 0, len(names))}
	for _, name := range names {
		f, err := fsys.Open(path.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("dataset: opening %s: %w", name, err)
		}
		doc, err := gpx.Read(f)
		_ = f.Close()
		if err != nil {
			return nil, fmt.Errorf("dataset: parsing %s: %w", name, err)
		}
		for ti, trk := range doc.Tracks {
			trail := trk.Path()
			rect, ok := trail.Bounds()
			if !ok {
				continue // empty track
			}
			region := clusterer.Assign(rect)
			id := name
			if ti > 0 {
				id = fmt.Sprintf("%s#%d", name, ti)
			}
			d.Samples = append(d.Samples, Sample{
				ID:         id,
				Label:      region.ID,
				Elevations: trk.Elevations(),
				Path:       trail,
			})
		}
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("dataset: no non-empty tracks in %s", dir)
	}
	return d, nil
}
