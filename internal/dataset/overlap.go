package dataset

import (
	"fmt"
	"math/rand"
)

// OverlapConfig tunes SimulateOverlap.
type OverlapConfig struct {
	// ExtraFrac is the fraction of additional near-duplicate samples added
	// per class. The paper's TM-3 simulation grows classes by ~30 %
	// (e.g. 743 -> 966 samples) to reach a 35 % overlap ratio.
	ExtraFrac float64
	// ElevationNoise is the per-sample Gaussian noise (meters) applied to a
	// duplicated profile — the same route on another day.
	ElevationNoise float64
	// MinKeepFrac is the minimum fraction of the source profile retained
	// when the duplicate is cropped (people cut routes short or extend
	// them; the shared portion is what overlaps).
	MinKeepFrac float64
	// PathJitterMeters displaces duplicated path vertices so the overlap
	// statistic reflects near- but not exact-duplicates.
	PathJitterMeters float64
}

// DefaultOverlapConfig reproduces the paper's simulated-overlap datasets.
func DefaultOverlapConfig() OverlapConfig {
	return OverlapConfig{
		ExtraFrac:        0.30,
		ElevationNoise:   0.4,
		MinKeepFrac:      0.80,
		PathJitterMeters: 20,
	}
}

// SimulateOverlap rebuilds a mined dataset with overlapped samples, the
// paper's §IV-A1 simulation: each class gains ExtraFrac×n near-duplicate
// samples, each a cropped, noise-perturbed copy of a random existing sample
// of the class. The returned dataset is a fresh copy; d is not modified.
func SimulateOverlap(d *Dataset, cfg OverlapConfig, rng *rand.Rand) (*Dataset, error) {
	if cfg.ExtraFrac < 0 {
		return nil, fmt.Errorf("dataset: negative ExtraFrac %g", cfg.ExtraFrac)
	}
	if cfg.MinKeepFrac <= 0 || cfg.MinKeepFrac > 1 {
		return nil, fmt.Errorf("dataset: MinKeepFrac must be in (0,1], got %g", cfg.MinKeepFrac)
	}

	out := d.Clone()
	byLabel := d.indexByLabel()
	for _, label := range d.Labels() {
		idx := byLabel[label]
		extra := int(float64(len(idx))*cfg.ExtraFrac + 0.5)
		for k := 0; k < extra; k++ {
			src := d.Samples[idx[rng.Intn(len(idx))]]
			dup, err := perturbCopy(src, k, cfg, rng)
			if err != nil {
				return nil, err
			}
			out.Samples = append(out.Samples, dup)
		}
	}
	return out, nil
}

// perturbCopy derives a near-duplicate of src: a cropped window of the
// elevation profile with Gaussian noise, plus a jittered path.
func perturbCopy(src Sample, k int, cfg OverlapConfig, rng *rand.Rand) (Sample, error) {
	n := len(src.Elevations)
	if n < 4 {
		return Sample{}, fmt.Errorf("dataset: sample %s too short to perturb (%d values)", src.ID, n)
	}
	keep := cfg.MinKeepFrac + rng.Float64()*(1-cfg.MinKeepFrac)
	span := int(float64(n) * keep)
	if span < 2 {
		span = 2
	}
	start := 0
	if n > span {
		start = rng.Intn(n - span)
	}

	elevs := make([]float64, span)
	for i := 0; i < span; i++ {
		elevs[i] = src.Elevations[start+i] + rng.NormFloat64()*cfg.ElevationNoise
	}

	dup := Sample{
		ID:         fmt.Sprintf("%s-dup%d", src.ID, k),
		Label:      src.Label,
		Elevations: elevs,
	}
	if len(src.Path) > 0 {
		dup.Path = src.Path.Clone()
		for i := range dup.Path {
			dup.Path[i] = dup.Path[i].Destination(rng.Float64()*360, rng.Float64()*cfg.PathJitterMeters)
		}
	}
	return dup, nil
}

// SimulateOverlapSeeded is SimulateOverlap with an explicit seed instead of
// a caller-managed RNG.
func SimulateOverlapSeeded(d *Dataset, cfg OverlapConfig, seed int64) (*Dataset, error) {
	return SimulateOverlap(d, cfg, rand.New(rand.NewSource(seed)))
}
