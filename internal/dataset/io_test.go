package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/fstest"
	"time"

	"elevprivacy/internal/geo"
	"elevprivacy/internal/gpx"
)

func TestJSONRoundTrip(t *testing.T) {
	d := &Dataset{Samples: []Sample{
		{
			ID: "a1", Label: "Miami",
			Elevations: []float64{2.5, 3.25, 2.75},
			Path:       geo.Path{{Lat: 25.77, Lng: -80.19}, {Lat: 25.78, Lng: -80.18}},
		},
		{
			ID: "a2", Label: "Duluth",
			Elevations: []float64{240, 251},
			// no path
		},
	}}

	var buf bytes.Buffer
	if err := SaveJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("len = %d", back.Len())
	}
	if back.Samples[0].Label != "Miami" || back.Samples[1].ID != "a2" {
		t.Errorf("metadata lost: %+v", back.Samples)
	}
	for i, v := range d.Samples[0].Elevations {
		if back.Samples[0].Elevations[i] != v {
			t.Errorf("elevation %d = %f, want %f", i, back.Samples[0].Elevations[i], v)
		}
	}
	// Polyline round trip is quantized to 1e-5 degrees.
	if math.Abs(back.Samples[0].Path[0].Lat-25.77) > 1e-5 {
		t.Errorf("path lost: %v", back.Samples[0].Path)
	}
	if back.Samples[1].Path != nil {
		t.Error("pathless sample acquired a path")
	}
}

func TestLoadJSONValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", "{"},
		{"missing label", `[{"id":"x","elevations":[1]}]`},
		{"missing id", `[{"label":"x","elevations":[1]}]`},
		{"empty elevations", `[{"id":"x","label":"y","elevations":[]}]`},
		{"bad polyline", `[{"id":"x","label":"y","elevations":[1],"polyline":""}]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadJSON(strings.NewReader(tc.in)); err == nil {
				t.Error("accepted")
			}
		})
	}
}

// gpxFile renders a single-track GPX document to bytes.
func gpxFile(t *testing.T, name string, pts geo.Path, elevs []float64) []byte {
	t.Helper()
	doc, err := gpx.FromActivity(name, "run", pts, elevs, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gpx.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// routeNear builds a short path around a center point.
func routeNear(center geo.LatLng) geo.Path {
	return geo.Path{
		center,
		center.Destination(45, 500),
		center.Destination(90, 900),
	}
}

func TestLoadGPXDirLabelsByRegion(t *testing.T) {
	dc := geo.LatLng{Lat: 38.9, Lng: -77.03}
	orlando := geo.LatLng{Lat: 28.54, Lng: -81.38}

	fsys := fstest.MapFS{
		// Two DC activities (the second slightly shifted) and one Orlando.
		"acts/run-a.gpx": &fstest.MapFile{Data: gpxFile(t, "run-a", routeNear(dc), []float64{50, 52, 54})},
		"acts/run-b.gpx": &fstest.MapFile{Data: gpxFile(t, "run-b", routeNear(dc.Destination(10, 800)), []float64{51, 53, 55})},
		"acts/run-c.gpx": &fstest.MapFile{Data: gpxFile(t, "run-c", routeNear(orlando), []float64{28, 29, 30})},
		"acts/notes.txt": &fstest.MapFile{Data: []byte("ignore me")},
	}

	d, err := LoadGPXDir(fsys, "acts", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d, want 3", d.Len())
	}
	counts := d.CountByLabel()
	if len(counts) != 2 {
		t.Fatalf("regions = %v, want 2 (DC cluster + Orlando)", counts)
	}
	// The two DC activities share a region.
	byID := map[string]string{}
	for i := range d.Samples {
		byID[d.Samples[i].ID] = d.Samples[i].Label
	}
	if byID["run-a.gpx"] != byID["run-b.gpx"] {
		t.Errorf("DC activities labeled differently: %v", byID)
	}
	if byID["run-c.gpx"] == byID["run-a.gpx"] {
		t.Errorf("Orlando activity joined the DC region: %v", byID)
	}
	// Elevations survive.
	for i := range d.Samples {
		if len(d.Samples[i].Elevations) != 3 {
			t.Errorf("%s: %d elevations", d.Samples[i].ID, len(d.Samples[i].Elevations))
		}
	}
}

func TestLoadGPXDirDeterministicLabels(t *testing.T) {
	center := geo.LatLng{Lat: 40, Lng: -74}
	fsys := fstest.MapFS{
		"a/1.gpx": &fstest.MapFile{Data: gpxFile(t, "1", routeNear(center), []float64{1, 2, 3})},
		"a/2.gpx": &fstest.MapFile{Data: gpxFile(t, "2", routeNear(center), []float64{1, 2, 3})},
	}
	d1, err := LoadGPXDir(fsys, "a", 5000)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := LoadGPXDir(fsys, "a", 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Samples {
		if d1.Samples[i].Label != d2.Samples[i].Label {
			t.Fatal("labels not deterministic")
		}
	}
	if d1.Samples[0].Label != "R0" {
		t.Errorf("first region = %q, want R0", d1.Samples[0].Label)
	}
}

func TestLoadGPXDirValidation(t *testing.T) {
	fsys := fstest.MapFS{
		"empty/readme.md": &fstest.MapFile{Data: []byte("no gpx here")},
	}
	if _, err := LoadGPXDir(fsys, "empty", 5000); err == nil {
		t.Error("gpx-less directory accepted")
	}
	if _, err := LoadGPXDir(fsys, "missing", 5000); err == nil {
		t.Error("missing directory accepted")
	}
	if _, err := LoadGPXDir(fsys, "empty", 0); err == nil {
		t.Error("zero threshold accepted")
	}

	bad := fstest.MapFS{
		"acts/broken.gpx": &fstest.MapFile{Data: []byte("<gpx><trk>")},
	}
	if _, err := LoadGPXDir(bad, "acts", 5000); err == nil {
		t.Error("malformed gpx accepted")
	}
}

// TestGPXEndToEndAttack ties the loader to the attack surface: GPX in,
// labeled dataset out, ready for TrainTextAttack (exercised at the facade
// level elsewhere).
func TestGPXEndToEndAttack(t *testing.T) {
	dc := geo.LatLng{Lat: 38.9, Lng: -77.03}
	fsys := fstest.MapFS{}
	for i := 0; i < 6; i++ {
		name := "acts/run" + string(rune('0'+i)) + ".gpx"
		center := dc
		elevs := []float64{50, 52, 51}
		if i >= 3 {
			center = geo.LatLng{Lat: 28.54, Lng: -81.38}
			elevs = []float64{28, 29, 28}
		}
		fsys[name] = &fstest.MapFile{Data: gpxFile(t, name, routeNear(center), elevs)}
	}
	d, err := LoadGPXDir(fsys, "acts", 5000)
	if err != nil {
		t.Fatal(err)
	}
	counts := d.CountByLabel()
	if counts["R0"] != 3 || counts["R1"] != 3 {
		t.Errorf("region counts = %v", counts)
	}
}
