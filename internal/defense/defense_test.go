package defense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"elevprivacy/internal/dataset"
)

var profile = []float64{100, 102, 105, 103, 108, 112, 110, 115}

func TestNoopCopies(t *testing.T) {
	d := Noop{}
	out := d.Apply(profile, nil)
	if len(out) != len(profile) {
		t.Fatalf("len = %d", len(out))
	}
	out[0] = 999
	if profile[0] == 999 {
		t.Error("Noop shares backing array")
	}
}

func TestGaussianNoisePerturbsEverySample(t *testing.T) {
	d := GaussianNoise{SigmaMeters: 3}
	rng := rand.New(rand.NewSource(1))
	out := d.Apply(profile, rng)
	var moved int
	for i := range out {
		if out[i] != profile[i] {
			moved++
		}
		if math.Abs(out[i]-profile[i]) > 20 {
			t.Errorf("sample %d moved %f m with σ=3", i, math.Abs(out[i]-profile[i]))
		}
	}
	if moved < len(profile)-1 {
		t.Errorf("only %d samples perturbed", moved)
	}
}

func TestQuantizer(t *testing.T) {
	d := Quantizer{StepMeters: 10}
	out := d.Apply(profile, nil)
	for i, v := range out {
		if math.Mod(v, 10) != 0 {
			t.Errorf("sample %d = %f not on the 10 m grid", i, v)
		}
		if math.Abs(v-profile[i]) > 5 {
			t.Errorf("sample %d moved more than half a step", i)
		}
	}
	// Non-positive step degrades to a copy.
	same := Quantizer{StepMeters: 0}.Apply(profile, nil)
	for i := range same {
		if same[i] != profile[i] {
			t.Error("zero step modified data")
		}
	}
}

func TestZeroBaseline(t *testing.T) {
	out := (ZeroBaseline{}).Apply(profile, nil)
	minV := out[0]
	for _, v := range out {
		minV = math.Min(minV, v)
	}
	if minV != 0 {
		t.Errorf("min = %f, want 0", minV)
	}
	// Shape preserved: successive differences identical.
	for i := 1; i < len(out); i++ {
		want := profile[i] - profile[i-1]
		if math.Abs((out[i]-out[i-1])-want) > 1e-12 {
			t.Errorf("difference %d changed", i)
		}
	}
	if got := (ZeroBaseline{}).Apply(nil, nil); len(got) != 0 {
		t.Error("empty profile mishandled")
	}
}

func TestZeroBaselineInvariantProperty(t *testing.T) {
	// Adding any constant offset produces an identical defended profile:
	// exactly the property that kills inter-city separability.
	f := func(raw []float64, offset float64) bool {
		sig := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				sig = append(sig, v)
			}
		}
		if len(sig) == 0 || math.IsNaN(offset) || math.Abs(offset) > 1e6 {
			return true
		}
		shifted := make([]float64, len(sig))
		for i, v := range sig {
			shifted[i] = v + offset
		}
		a := (ZeroBaseline{}).Apply(sig, nil)
		b := (ZeroBaseline{}).Apply(shifted, nil)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryStats(t *testing.T) {
	out := (SummaryStats{}).Apply(profile, nil)
	if len(out) != 4 {
		t.Fatalf("summary length = %d, want 4", len(out))
	}
	if math.Abs(out[0]-TotalGain(profile)) > 1e-12 {
		t.Errorf("gain stat = %f", out[0])
	}
	if math.Abs(out[2]-Range(profile)) > 1e-12 {
		t.Errorf("range stat = %f", out[2])
	}
	if got := (SummaryStats{}).Apply(nil, nil); got != nil {
		t.Error("empty profile should produce nil")
	}
}

func TestUtilityMetrics(t *testing.T) {
	sig := []float64{10, 15, 12, 20}
	if g := TotalGain(sig); math.Abs(g-13) > 1e-12 { // +5, +8
		t.Errorf("TotalGain = %f, want 13", g)
	}
	if l := TotalLoss(sig); math.Abs(l-3) > 1e-12 {
		t.Errorf("TotalLoss = %f, want 3", l)
	}
	if r := Range(sig); math.Abs(r-10) > 1e-12 {
		t.Errorf("Range = %f, want 10", r)
	}
	if r := Roughness([]float64{0, 1, 2, 3}); r != 0 { // constant slope
		t.Errorf("constant-slope roughness = %f, want 0", r)
	}
	if r := Roughness([]float64{5}); r != 0 {
		t.Errorf("single-sample roughness = %f", r)
	}
	if r := Range(nil); r != 0 {
		t.Errorf("empty range = %f", r)
	}
}

func testDataset() *dataset.Dataset {
	return &dataset.Dataset{Samples: []dataset.Sample{
		{ID: "a", Label: "x", Elevations: []float64{10, 14, 12, 18}},
		{ID: "b", Label: "y", Elevations: []float64{1800, 1810, 1805, 1820}},
	}}
}

func TestApplyToDataset(t *testing.T) {
	d := testDataset()
	out := ApplyToDataset(d, ZeroBaseline{}, 1)
	if out.Len() != 2 {
		t.Fatalf("len = %d", out.Len())
	}
	if out.Samples[0].Label != "x" || out.Samples[1].ID != "b" {
		t.Error("labels/IDs lost")
	}
	// Both profiles now start from a zero baseline.
	for _, s := range out.Samples {
		minV := s.Elevations[0]
		for _, v := range s.Elevations {
			minV = math.Min(minV, v)
		}
		if minV != 0 {
			t.Errorf("%s min = %f", s.ID, minV)
		}
		if s.Path != nil {
			t.Error("defended share must not carry a trajectory")
		}
	}
	// Source untouched.
	if d.Samples[1].Elevations[0] != 1800 {
		t.Error("ApplyToDataset modified the source")
	}
}

func TestGainError(t *testing.T) {
	d := testDataset()
	// Noop preserves gain exactly.
	noop := ApplyToDataset(d, Noop{}, 1)
	e, err := GainError(d, noop, Noop{})
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-12 {
		t.Errorf("noop gain error = %f", e)
	}
	// SummaryStats also carries the exact gain.
	summ := ApplyToDataset(d, SummaryStats{}, 1)
	e, err = GainError(d, summ, SummaryStats{})
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-12 {
		t.Errorf("summary gain error = %f", e)
	}
	// Heavy quantization distorts gain.
	quant := ApplyToDataset(d, Quantizer{StepMeters: 50}, 1)
	e, err = GainError(d, quant, Quantizer{StepMeters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if e == 0 {
		t.Error("50 m quantization should distort total gain")
	}

	if _, err := GainError(d, &dataset.Dataset{}, Noop{}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := GainError(&dataset.Dataset{}, &dataset.Dataset{}, Noop{}); err == nil {
		t.Error("empty datasets accepted")
	}
}

func TestDefenseNames(t *testing.T) {
	defs := []Defense{Noop{}, GaussianNoise{SigmaMeters: 2}, Quantizer{StepMeters: 5}, ZeroBaseline{}, SummaryStats{}}
	seen := map[string]bool{}
	for _, d := range defs {
		name := d.Name()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate name %q", name)
		}
		seen[name] = true
	}
}
