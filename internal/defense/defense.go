// Package defense implements the countermeasures the paper's conclusion
// proposes as future work: transformations a fitness platform could apply
// to a shared elevation profile so it still "demonstrates the roughness of
// the route" while frustrating location inference.
//
// Each Defense transforms the elevation series a user would share. The
// package also provides the utility metrics (total gain, roughness) that
// quantify how much workout-relevant information a defense preserves, so
// the privacy/utility trade-off can be measured end to end.
package defense

import (
	"fmt"
	"math"
	"math/rand"

	"elevprivacy/internal/dataset"
)

// Defense transforms the elevation profile a user shares.
type Defense interface {
	// Name identifies the defense in reports.
	Name() string
	// Apply returns the defended profile. It must not modify the input.
	Apply(elevations []float64, rng *rand.Rand) []float64
}

// Noop shares the profile unchanged (the baseline).
type Noop struct{}

// Name implements Defense.
func (Noop) Name() string { return "none" }

// Apply implements Defense.
func (Noop) Apply(elevations []float64, _ *rand.Rand) []float64 {
	return append([]float64(nil), elevations...)
}

// GaussianNoise perturbs every sample with N(0, Sigma²) noise.
type GaussianNoise struct {
	// SigmaMeters is the noise standard deviation.
	SigmaMeters float64
}

// Name implements Defense.
func (g GaussianNoise) Name() string { return fmt.Sprintf("noise σ=%gm", g.SigmaMeters) }

// Apply implements Defense.
func (g GaussianNoise) Apply(elevations []float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(elevations))
	for i, v := range elevations {
		out[i] = v + rng.NormFloat64()*g.SigmaMeters
	}
	return out
}

// Quantizer rounds elevations to a coarse grid, destroying the fine
// vocabulary the n-gram attack feeds on.
type Quantizer struct {
	// StepMeters is the quantization step.
	StepMeters float64
}

// Name implements Defense.
func (q Quantizer) Name() string { return fmt.Sprintf("quantize %gm", q.StepMeters) }

// Apply implements Defense.
func (q Quantizer) Apply(elevations []float64, _ *rand.Rand) []float64 {
	out := make([]float64, len(elevations))
	if q.StepMeters <= 0 {
		copy(out, elevations)
		return out
	}
	for i, v := range elevations {
		out[i] = math.Round(v/q.StepMeters) * q.StepMeters
	}
	return out
}

// ZeroBaseline shares the profile relative to its own minimum, removing
// the absolute altitude that separates cities while keeping every climb
// and descent intact — the highest-utility defense here.
type ZeroBaseline struct{}

// Name implements Defense.
func (ZeroBaseline) Name() string { return "zero-baseline" }

// Apply implements Defense.
func (ZeroBaseline) Apply(elevations []float64, _ *rand.Rand) []float64 {
	out := make([]float64, len(elevations))
	if len(elevations) == 0 {
		return out
	}
	minV := elevations[0]
	for _, v := range elevations {
		minV = math.Min(minV, v)
	}
	for i, v := range elevations {
		out[i] = v - minV
	}
	return out
}

// SummaryStats is the paper's proposed defense: replace the profile with a
// handful of route statistics (total gain, total loss, range, roughness)
// that convey difficulty without the elevation sequence.
type SummaryStats struct{}

// Name implements Defense.
func (SummaryStats) Name() string { return "summary-stats" }

// Apply implements Defense. The returned "profile" is the four statistics;
// attacks see only these numbers.
func (SummaryStats) Apply(elevations []float64, _ *rand.Rand) []float64 {
	if len(elevations) == 0 {
		return nil
	}
	return []float64{
		TotalGain(elevations),
		TotalLoss(elevations),
		Range(elevations),
		Roughness(elevations),
	}
}

// ApplyToDataset returns a copy of d with every sample's elevation profile
// defended. Paths are dropped: a defended share contains no trajectory.
func ApplyToDataset(d *dataset.Dataset, def Defense, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := &dataset.Dataset{Samples: make([]dataset.Sample, 0, d.Len())}
	for i := range d.Samples {
		s := d.Samples[i]
		out.Samples = append(out.Samples, dataset.Sample{
			ID:         s.ID,
			Label:      s.Label,
			Elevations: def.Apply(s.Elevations, rng),
		})
	}
	return out
}

// --- Utility metrics ---

// TotalGain is the summed positive elevation change, the headline "how
// hard was this route" statistic.
func TotalGain(elevations []float64) float64 {
	var gain float64
	for i := 1; i < len(elevations); i++ {
		if d := elevations[i] - elevations[i-1]; d > 0 {
			gain += d
		}
	}
	return gain
}

// TotalLoss is the summed negative elevation change (as a positive value).
func TotalLoss(elevations []float64) float64 {
	var loss float64
	for i := 1; i < len(elevations); i++ {
		if d := elevations[i] - elevations[i-1]; d < 0 {
			loss -= d
		}
	}
	return loss
}

// Range is max minus min elevation.
func Range(elevations []float64) float64 {
	if len(elevations) == 0 {
		return 0
	}
	minV, maxV := elevations[0], elevations[0]
	for _, v := range elevations {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	return maxV - minV
}

// Roughness is the standard deviation of successive elevation changes,
// the "technicality" measure users want to convey.
func Roughness(elevations []float64) float64 {
	if len(elevations) < 2 {
		return 0
	}
	n := len(elevations) - 1
	var mean float64
	for i := 1; i < len(elevations); i++ {
		mean += elevations[i] - elevations[i-1]
	}
	mean /= float64(n)
	var variance float64
	for i := 1; i < len(elevations); i++ {
		d := elevations[i] - elevations[i-1] - mean
		variance += d * d
	}
	return math.Sqrt(variance / float64(n))
}

// GainError measures utility loss: the mean relative error of the
// defended profiles' total gain versus the originals'. The defense that
// produced the shares decides how a reader recovers the gain (SummaryStats
// carries it verbatim as its first statistic; every other defense's gain
// is recomputed from the shared series).
func GainError(original, defended *dataset.Dataset, def Defense) (float64, error) {
	if original.Len() != defended.Len() {
		return 0, fmt.Errorf("defense: dataset sizes differ: %d vs %d", original.Len(), defended.Len())
	}
	if original.Len() == 0 {
		return 0, fmt.Errorf("defense: empty datasets")
	}
	_, isSummary := def.(SummaryStats)

	var sum float64
	for i := range original.Samples {
		trueGain := TotalGain(original.Samples[i].Elevations)
		shared := defended.Samples[i].Elevations
		var gotGain float64
		if isSummary {
			if len(shared) > 0 {
				gotGain = shared[0]
			}
		} else {
			gotGain = TotalGain(shared)
		}
		denom := math.Max(trueGain, 1)
		sum += math.Abs(gotGain-trueGain) / denom
	}
	return sum / float64(original.Len()), nil
}
