// Package geo provides the geodetic primitives the rest of the system is
// built on: coordinates, great-circle math, bounding boxes, the Google
// polyline codec, grid decomposition of areas, and the tight-rectangle
// region clustering the paper uses to label user-specific activities.
//
// All angles are degrees unless a name says otherwise. Distances are meters.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used for all great-circle math.
const EarthRadiusMeters = 6371008.8

// LatLng is a WGS84 coordinate in degrees.
type LatLng struct {
	Lat float64
	Lng float64
}

// Valid reports whether the coordinate lies in the usual lat/lng domain.
func (p LatLng) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

// String implements fmt.Stringer with 6-decimal precision (~11 cm).
func (p LatLng) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lat, p.Lng)
}

// DistanceMeters returns the haversine great-circle distance to q.
func (p LatLng) DistanceMeters(q LatLng) float64 {
	lat1 := radians(p.Lat)
	lat2 := radians(q.Lat)
	dLat := radians(q.Lat - p.Lat)
	dLng := radians(q.Lng - p.Lng)

	sinLat := math.Sin(dLat / 2)
	sinLng := math.Sin(dLng / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLng*sinLng
	if a > 1 {
		a = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(a))
}

// BearingDegrees returns the initial bearing from p to q, in [0, 360).
func (p LatLng) BearingDegrees(q LatLng) float64 {
	lat1 := radians(p.Lat)
	lat2 := radians(q.Lat)
	dLng := radians(q.Lng - p.Lng)

	y := math.Sin(dLng) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLng)
	b := degrees(math.Atan2(y, x))
	return math.Mod(b+360, 360)
}

// Destination returns the point reached by travelling distanceMeters from p
// along the given initial bearing (degrees clockwise from north).
func (p LatLng) Destination(bearingDegrees, distanceMeters float64) LatLng {
	ang := distanceMeters / EarthRadiusMeters
	brg := radians(bearingDegrees)
	lat1 := radians(p.Lat)
	lng1 := radians(p.Lng)

	sinLat2 := math.Sin(lat1)*math.Cos(ang) + math.Cos(lat1)*math.Sin(ang)*math.Cos(brg)
	lat2 := math.Asin(sinLat2)
	y := math.Sin(brg) * math.Sin(ang) * math.Cos(lat1)
	x := math.Cos(ang) - math.Sin(lat1)*sinLat2
	lng2 := lng1 + math.Atan2(y, x)

	return LatLng{Lat: degrees(lat2), Lng: normalizeLng(degrees(lng2))}
}

// Midpoint returns the geographic midpoint of p and q.
func (p LatLng) Midpoint(q LatLng) LatLng {
	lat1 := radians(p.Lat)
	lat2 := radians(q.Lat)
	lng1 := radians(p.Lng)
	dLng := radians(q.Lng - p.Lng)

	bx := math.Cos(lat2) * math.Cos(dLng)
	by := math.Cos(lat2) * math.Sin(dLng)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lng3 := lng1 + math.Atan2(by, math.Cos(lat1)+bx)

	return LatLng{Lat: degrees(lat3), Lng: normalizeLng(degrees(lng3))}
}

// Interpolate returns the point a fraction t of the way from p to q along
// the straight (equirectangular) segment. t outside [0,1] extrapolates.
// For the sub-kilometer hops routes are made of, the error versus true
// great-circle interpolation is negligible.
func (p LatLng) Interpolate(q LatLng, t float64) LatLng {
	return LatLng{
		Lat: p.Lat + (q.Lat-p.Lat)*t,
		Lng: p.Lng + (q.Lng-p.Lng)*t,
	}
}

// Path is an ordered sequence of coordinates (a trajectory or polyline).
type Path []LatLng

// LengthMeters returns the total haversine length of the path.
func (t Path) LengthMeters() float64 {
	var total float64
	for i := 1; i < len(t); i++ {
		total += t[i-1].DistanceMeters(t[i])
	}
	return total
}

// Resample returns a path of exactly n points evenly spaced by arc length
// along t. It returns nil when t is empty or n <= 0. A single-point path is
// repeated n times.
func (t Path) Resample(n int) Path {
	if len(t) == 0 || n <= 0 {
		return nil
	}
	out := make(Path, 0, n)
	if len(t) == 1 || n == 1 {
		for i := 0; i < n; i++ {
			out = append(out, t[0])
		}
		return out
	}

	// Cumulative arc length per vertex.
	cum := make([]float64, len(t))
	for i := 1; i < len(t); i++ {
		cum[i] = cum[i-1] + t[i-1].DistanceMeters(t[i])
	}
	total := cum[len(cum)-1]
	if total == 0 {
		for i := 0; i < n; i++ {
			out = append(out, t[0])
		}
		return out
	}

	seg := 0
	for i := 0; i < n; i++ {
		target := total * float64(i) / float64(n-1)
		for seg < len(cum)-2 && cum[seg+1] < target {
			seg++
		}
		span := cum[seg+1] - cum[seg]
		frac := 0.0
		if span > 0 {
			frac = (target - cum[seg]) / span
		}
		out = append(out, t[seg].Interpolate(t[seg+1], frac))
	}
	return out
}

// Bounds returns the tight bounding rectangle of the path, the "tight
// rectangle" of the paper's Fig. 3. ok is false for an empty path.
func (t Path) Bounds() (b BBox, ok bool) {
	if len(t) == 0 {
		return BBox{}, false
	}
	b = BBox{SW: t[0], NE: t[0]}
	for _, p := range t[1:] {
		b.SW.Lat = math.Min(b.SW.Lat, p.Lat)
		b.SW.Lng = math.Min(b.SW.Lng, p.Lng)
		b.NE.Lat = math.Max(b.NE.Lat, p.Lat)
		b.NE.Lng = math.Max(b.NE.Lng, p.Lng)
	}
	return b, true
}

// Clone returns a deep copy of the path.
func (t Path) Clone() Path {
	if t == nil {
		return nil
	}
	out := make(Path, len(t))
	copy(out, t)
	return out
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }

func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// normalizeLng wraps a longitude into [-180, 180).
func normalizeLng(lng float64) float64 {
	lng = math.Mod(lng+180, 360)
	if lng < 0 {
		lng += 360
	}
	return lng - 180
}
