package geo

import "math"

// Simplify reduces the path with the Douglas-Peucker algorithm: vertices
// closer than toleranceMeters to the chord between kept neighbors are
// dropped. Endpoints are always kept. Fitness services ship simplified
// polylines to cut payload size; the miner sees the same shape.
func (t Path) Simplify(toleranceMeters float64) Path {
	if len(t) <= 2 || toleranceMeters <= 0 {
		return t.Clone()
	}
	keep := make([]bool, len(t))
	keep[0] = true
	keep[len(t)-1] = true
	douglasPeucker(t, 0, len(t)-1, toleranceMeters, keep)

	out := make(Path, 0, len(t))
	for i, k := range keep {
		if k {
			out = append(out, t[i])
		}
	}
	return out
}

// douglasPeucker marks vertices to keep between endpoints lo and hi.
func douglasPeucker(t Path, lo, hi int, tol float64, keep []bool) {
	if hi <= lo+1 {
		return
	}
	var maxDist float64
	maxIdx := -1
	for i := lo + 1; i < hi; i++ {
		d := crossTrackMeters(t[i], t[lo], t[hi])
		if d > maxDist {
			maxDist = d
			maxIdx = i
		}
	}
	if maxIdx >= 0 && maxDist > tol {
		keep[maxIdx] = true
		douglasPeucker(t, lo, maxIdx, tol, keep)
		douglasPeucker(t, maxIdx, hi, tol, keep)
	}
}

// crossTrackMeters approximates the perpendicular distance from p to the
// segment a-b using a local equirectangular projection — accurate to well
// under a millimeter at route scales.
func crossTrackMeters(p, a, b LatLng) float64 {
	const mPerDeg = 111195.0
	cosLat := math.Cos(radians((a.Lat + b.Lat) / 2))

	ax, ay := 0.0, 0.0
	bx := (b.Lng - a.Lng) * mPerDeg * cosLat
	by := (b.Lat - a.Lat) * mPerDeg
	px := (p.Lng - a.Lng) * mPerDeg * cosLat
	py := (p.Lat - a.Lat) * mPerDeg

	dx, dy := bx-ax, by-ay
	lenSq := dx*dx + dy*dy
	if lenSq == 0 {
		return math.Hypot(px, py)
	}
	// Projection parameter clamped to the segment.
	u := (px*dx + py*dy) / lenSq
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	return math.Hypot(px-u*dx, py-u*dy)
}
