package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDistanceMetersKnownPairs(t *testing.T) {
	tests := []struct {
		name string
		p, q LatLng
		want float64 // meters
		tol  float64
	}{
		{
			name: "same point",
			p:    LatLng{Lat: 40.0, Lng: -74.0},
			q:    LatLng{Lat: 40.0, Lng: -74.0},
			want: 0, tol: 1e-9,
		},
		{
			name: "one degree latitude",
			p:    LatLng{Lat: 0, Lng: 0},
			q:    LatLng{Lat: 1, Lng: 0},
			want: 111195, tol: 100,
		},
		{
			name: "nyc to dc",
			p:    LatLng{Lat: 40.7128, Lng: -74.0060},
			q:    LatLng{Lat: 38.9072, Lng: -77.0369},
			want: 328000, tol: 2000,
		},
		{
			name: "antipodal-ish",
			p:    LatLng{Lat: 0, Lng: 0},
			q:    LatLng{Lat: 0, Lng: 180},
			want: math.Pi * EarthRadiusMeters, tol: 10,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.p.DistanceMeters(tc.q)
			if !almostEqual(got, tc.want, tc.tol) {
				t.Errorf("DistanceMeters() = %f, want %f ± %f", got, tc.want, tc.tol)
			}
		})
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(aLat, aLng, bLat, bLng float64) bool {
		p := LatLng{Lat: clampLat(aLat), Lng: clampLng(aLng)}
		q := LatLng{Lat: clampLat(bLat), Lng: clampLng(bLng)}
		d1 := p.DistanceMeters(q)
		d2 := q.DistanceMeters(p)
		return almostEqual(d1, d2, 1e-6) && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTripProperty(t *testing.T) {
	// Travelling d meters should land d meters away (for moderate d, away
	// from the poles where bearings degenerate).
	f := func(latSeed, lngSeed, bearingSeed, distSeed float64) bool {
		p := LatLng{Lat: math.Mod(math.Abs(latSeed), 60), Lng: clampLng(lngSeed)}
		bearing := math.Mod(math.Abs(bearingSeed), 360)
		dist := math.Mod(math.Abs(distSeed), 50000) // up to 50 km
		q := p.Destination(bearing, dist)
		return almostEqual(p.DistanceMeters(q), dist, 1+dist*1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationCardinal(t *testing.T) {
	p := LatLng{Lat: 40, Lng: -74}
	north := p.Destination(0, 10000)
	if north.Lat <= p.Lat || !almostEqual(north.Lng, p.Lng, 1e-9) {
		t.Errorf("north destination %v should be due north of %v", north, p)
	}
	east := p.Destination(90, 10000)
	if east.Lng <= p.Lng || !almostEqual(east.Lat, p.Lat, 1e-3) {
		t.Errorf("east destination %v should be due east of %v", east, p)
	}
}

func TestBearingDegrees(t *testing.T) {
	p := LatLng{Lat: 40, Lng: -74}
	if b := p.BearingDegrees(LatLng{Lat: 41, Lng: -74}); !almostEqual(b, 0, 1e-9) {
		t.Errorf("northward bearing = %f, want 0", b)
	}
	if b := p.BearingDegrees(LatLng{Lat: 40, Lng: -73}); !almostEqual(b, 90, 0.5) {
		t.Errorf("eastward bearing = %f, want ~90", b)
	}
	if b := p.BearingDegrees(LatLng{Lat: 39, Lng: -74}); !almostEqual(b, 180, 1e-9) {
		t.Errorf("southward bearing = %f, want 180", b)
	}
}

func TestMidpoint(t *testing.T) {
	p := LatLng{Lat: 40, Lng: -74}
	q := LatLng{Lat: 42, Lng: -74}
	mid := p.Midpoint(q)
	if !almostEqual(mid.Lat, 41, 1e-6) || !almostEqual(mid.Lng, -74, 1e-6) {
		t.Errorf("Midpoint() = %v, want (41,-74)", mid)
	}
}

func TestMidpointEquidistantProperty(t *testing.T) {
	f := func(aLat, aLng, bLat, bLng float64) bool {
		p := LatLng{Lat: math.Mod(math.Abs(aLat), 60), Lng: math.Mod(aLng, 90)}
		q := LatLng{Lat: math.Mod(math.Abs(bLat), 60), Lng: math.Mod(bLng, 90)}
		mid := p.Midpoint(q)
		d1 := mid.DistanceMeters(p)
		d2 := mid.DistanceMeters(q)
		return almostEqual(d1, d2, 1+1e-6*(d1+d2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValid(t *testing.T) {
	valid := []LatLng{{0, 0}, {90, 180}, {-90, -180}, {40.7, -74.0}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []LatLng{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestPathLengthMeters(t *testing.T) {
	if got := (Path{}).LengthMeters(); got != 0 {
		t.Errorf("empty path length = %f, want 0", got)
	}
	p := Path{{Lat: 0, Lng: 0}, {Lat: 1, Lng: 0}, {Lat: 2, Lng: 0}}
	want := 2 * LatLng{}.DistanceMeters(LatLng{Lat: 1})
	if got := p.LengthMeters(); !almostEqual(got, want, 1e-6) {
		t.Errorf("LengthMeters() = %f, want %f", got, want)
	}
}

func TestPathResample(t *testing.T) {
	p := Path{{Lat: 0, Lng: 0}, {Lat: 1, Lng: 0}}

	t.Run("endpoints preserved", func(t *testing.T) {
		r := p.Resample(5)
		if len(r) != 5 {
			t.Fatalf("len = %d, want 5", len(r))
		}
		if r[0] != p[0] {
			t.Errorf("first point = %v, want %v", r[0], p[0])
		}
		if !almostEqual(r[4].Lat, 1, 1e-9) {
			t.Errorf("last point = %v, want lat 1", r[4])
		}
	})

	t.Run("even spacing", func(t *testing.T) {
		r := p.Resample(11)
		for i := 1; i < len(r); i++ {
			gap := r[i-1].DistanceMeters(r[i])
			want := p.LengthMeters() / 10
			if !almostEqual(gap, want, want*0.01) {
				t.Errorf("gap %d = %f, want %f", i, gap, want)
			}
		}
	})

	t.Run("degenerate inputs", func(t *testing.T) {
		if r := (Path{}).Resample(5); r != nil {
			t.Errorf("empty path resample = %v, want nil", r)
		}
		if r := p.Resample(0); r != nil {
			t.Errorf("n=0 resample = %v, want nil", r)
		}
		single := Path{{Lat: 3, Lng: 4}}
		r := single.Resample(3)
		if len(r) != 3 || r[0] != single[0] || r[2] != single[0] {
			t.Errorf("single-point resample = %v", r)
		}
		// All-identical points (zero total length).
		dup := Path{{Lat: 1, Lng: 1}, {Lat: 1, Lng: 1}}
		r = dup.Resample(4)
		if len(r) != 4 || r[3] != dup[0] {
			t.Errorf("zero-length resample = %v", r)
		}
	})
}

func TestPathResampleCountProperty(t *testing.T) {
	f := func(nSeed uint8, lats []float64) bool {
		n := int(nSeed%50) + 1
		path := make(Path, 0, len(lats))
		for i, lat := range lats {
			path = append(path, LatLng{
				Lat: math.Mod(math.Abs(lat), 80),
				Lng: float64(i) * 0.001,
			})
		}
		r := path.Resample(n)
		if len(path) == 0 {
			return r == nil
		}
		return len(r) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathBounds(t *testing.T) {
	if _, ok := (Path{}).Bounds(); ok {
		t.Error("empty path should have no bounds")
	}
	p := Path{{Lat: 2, Lng: -3}, {Lat: -1, Lng: 5}, {Lat: 0, Lng: 0}}
	b, ok := p.Bounds()
	if !ok {
		t.Fatal("Bounds() not ok")
	}
	want := BBox{SW: LatLng{Lat: -1, Lng: -3}, NE: LatLng{Lat: 2, Lng: 5}}
	if b != want {
		t.Errorf("Bounds() = %v, want %v", b, want)
	}
}

func TestPathClone(t *testing.T) {
	if c := (Path)(nil).Clone(); c != nil {
		t.Error("nil clone should be nil")
	}
	p := Path{{Lat: 1, Lng: 2}}
	c := p.Clone()
	c[0].Lat = 9
	if p[0].Lat != 1 {
		t.Error("Clone must not share backing array")
	}
}

func TestInterpolate(t *testing.T) {
	p := LatLng{Lat: 0, Lng: 0}
	q := LatLng{Lat: 10, Lng: 20}
	mid := p.Interpolate(q, 0.5)
	if !almostEqual(mid.Lat, 5, 1e-12) || !almostEqual(mid.Lng, 10, 1e-12) {
		t.Errorf("Interpolate(0.5) = %v", mid)
	}
	if got := p.Interpolate(q, 0); got != p {
		t.Errorf("Interpolate(0) = %v, want %v", got, p)
	}
	if got := p.Interpolate(q, 1); got != q {
		t.Errorf("Interpolate(1) = %v, want %v", got, q)
	}
}

func clampLat(v float64) float64 { return math.Mod(v, 90) }
func clampLng(v float64) float64 { return math.Mod(v, 180) }
