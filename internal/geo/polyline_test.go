package geo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestPolylineGoogleReferenceVector checks the worked example from Google's
// polyline algorithm documentation.
func TestPolylineGoogleReferenceVector(t *testing.T) {
	path := Path{
		{Lat: 38.5, Lng: -120.2},
		{Lat: 40.7, Lng: -120.95},
		{Lat: 43.252, Lng: -126.453},
	}
	const want = "_p~iF~ps|U_ulLnnqC_mqNvxq`@"
	if got := EncodePolyline(path); got != want {
		t.Errorf("EncodePolyline = %q, want %q", got, want)
	}
	decoded, err := DecodePolyline(want)
	if err != nil {
		t.Fatalf("DecodePolyline: %v", err)
	}
	if len(decoded) != len(path) {
		t.Fatalf("decoded %d points, want %d", len(decoded), len(path))
	}
	for i := range path {
		if !almostEqual(decoded[i].Lat, path[i].Lat, 1e-5) ||
			!almostEqual(decoded[i].Lng, path[i].Lng, 1e-5) {
			t.Errorf("point %d = %v, want %v", i, decoded[i], path[i])
		}
	}
}

func TestPolylineEmpty(t *testing.T) {
	if got := EncodePolyline(nil); got != "" {
		t.Errorf("EncodePolyline(nil) = %q, want empty", got)
	}
	decoded, err := DecodePolyline("")
	if err != nil {
		t.Fatalf("DecodePolyline(empty): %v", err)
	}
	if len(decoded) != 0 {
		t.Errorf("decoded %d points, want 0", len(decoded))
	}
}

func TestPolylineSinglePoint(t *testing.T) {
	path := Path{{Lat: -0.00001, Lng: 0.00001}}
	decoded, err := DecodePolyline(EncodePolyline(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || !almostEqual(decoded[0].Lat, path[0].Lat, 1e-9) {
		t.Errorf("decoded = %v, want %v", decoded, path)
	}
}

func TestPolylineRoundTripProperty(t *testing.T) {
	f := func(raw []int32) bool {
		path := make(Path, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			path = append(path, LatLng{
				Lat: float64(raw[i]%9000000) / 1e5,    // ±90
				Lng: float64(raw[i+1]%18000000) / 1e5, // ±180
			})
		}
		decoded, err := DecodePolyline(EncodePolyline(path))
		if err != nil {
			return false
		}
		if len(decoded) != len(path) {
			return false
		}
		for i := range path {
			if !almostEqual(decoded[i].Lat, path[i].Lat, 1e-5+1e-9) ||
				!almostEqual(decoded[i].Lng, path[i].Lng, 1e-5+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPolylinePrecisionQuantization(t *testing.T) {
	// Values finer than 1e-5 degrees quantize to the nearest step.
	path := Path{{Lat: 1.000004, Lng: 2.000006}}
	decoded, err := DecodePolyline(EncodePolyline(path))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(decoded[0].Lat, 1.0, 1e-9) {
		t.Errorf("lat quantized to %v, want 1.0", decoded[0].Lat)
	}
	if !almostEqual(decoded[0].Lng, 2.00001, 1e-9) {
		t.Errorf("lng quantized to %v, want 2.00001", decoded[0].Lng)
	}
}

func TestDecodePolylineErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"truncated varint", "_p~iF~ps|U_"},
		{"odd coordinate count", "_p~iF"},
		{"invalid byte low", "\x1f\x1f"},
		{"continuation without end", strings.Repeat("\x7f", 20)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodePolyline(tc.in); err == nil {
				t.Errorf("DecodePolyline(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestPolylineEncodesPrintableASCII(t *testing.T) {
	f := func(raw []int32) bool {
		path := make(Path, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			path = append(path, LatLng{
				Lat: float64(raw[i]%9000000) / 1e5,
				Lng: float64(raw[i+1]%18000000) / 1e5,
			})
		}
		s := EncodePolyline(path)
		for i := 0; i < len(s); i++ {
			if s[i] < 63 || s[i] > 127 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolylineDecodeArbitraryInputNoPanic(t *testing.T) {
	// testing/quick as a lightweight fuzzer: decoding arbitrary strings must
	// never panic, only return errors.
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("DecodePolyline(%q) panicked: %v", s, r)
			}
		}()
		_, _ = DecodePolyline(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRound5HalfAwayFromZero(t *testing.T) {
	if got := round5(0.000005); got != 1 {
		t.Errorf("round5(0.000005) = %d, want 1", got)
	}
	if got := round5(-0.000005); got != -1 {
		t.Errorf("round5(-0.000005) = %d, want -1", got)
	}
	if got := round5(math.Copysign(0, -1)); got != 0 {
		t.Errorf("round5(-0) = %d, want 0", got)
	}
}
