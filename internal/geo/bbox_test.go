package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func box(swLat, swLng, neLat, neLng float64) BBox {
	return BBox{SW: LatLng{Lat: swLat, Lng: swLng}, NE: LatLng{Lat: neLat, Lng: neLng}}
}

func TestNewBBoxNormalizes(t *testing.T) {
	b := NewBBox(LatLng{Lat: 5, Lng: -2}, LatLng{Lat: -1, Lng: 7})
	want := box(-1, -2, 5, 7)
	if b != want {
		t.Errorf("NewBBox = %v, want %v", b, want)
	}
	if !b.Valid() {
		t.Error("normalized box should be valid")
	}
}

func TestBBoxContains(t *testing.T) {
	b := box(0, 0, 10, 10)
	inside := []LatLng{{5, 5}, {0, 0}, {10, 10}, {0, 10}}
	for _, p := range inside {
		if !b.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	outside := []LatLng{{-0.001, 5}, {5, 10.001}, {11, 11}}
	for _, p := range outside {
		if b.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestBBoxContainsPath(t *testing.T) {
	b := box(0, 0, 10, 10)
	if b.ContainsPath(Path{}) {
		t.Error("empty path should not be contained")
	}
	if !b.ContainsPath(Path{{1, 1}, {9, 9}}) {
		t.Error("inner path should be contained")
	}
	if b.ContainsPath(Path{{1, 1}, {11, 9}}) {
		t.Error("straddling path should not be contained")
	}
}

func TestBBoxIntersect(t *testing.T) {
	a := box(0, 0, 10, 10)

	t.Run("overlap", func(t *testing.T) {
		got, ok := a.Intersect(box(5, 5, 15, 15))
		if !ok || got != box(5, 5, 10, 10) {
			t.Errorf("Intersect = %v ok=%v", got, ok)
		}
	})
	t.Run("disjoint", func(t *testing.T) {
		if _, ok := a.Intersect(box(20, 20, 30, 30)); ok {
			t.Error("disjoint boxes should not intersect")
		}
	})
	t.Run("edge touch", func(t *testing.T) {
		got, ok := a.Intersect(box(10, 0, 20, 10))
		if !ok || got.AreaDeg2() != 0 {
			t.Errorf("edge touch: got %v ok=%v, want zero-area box", got, ok)
		}
	})
}

func TestBBoxUnionContainsBothProperty(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		a := NewBBox(
			LatLng{Lat: math.Mod(a1, 80), Lng: math.Mod(a2, 170)},
			LatLng{Lat: math.Mod(a3, 80), Lng: math.Mod(a4, 170)})
		b := NewBBox(
			LatLng{Lat: math.Mod(b1, 80), Lng: math.Mod(b2, 170)},
			LatLng{Lat: math.Mod(b3, 80), Lng: math.Mod(b4, 170)})
		u := a.Union(b)
		return u.ContainsBox(a) && u.ContainsBox(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxIoU(t *testing.T) {
	a := box(0, 0, 10, 10)
	if got := a.IoU(a); !almostEqual(got, 1, 1e-12) {
		t.Errorf("self IoU = %f, want 1", got)
	}
	if got := a.IoU(box(20, 20, 30, 30)); got != 0 {
		t.Errorf("disjoint IoU = %f, want 0", got)
	}
	// Half overlap: inter=50, union=150 -> 1/3.
	if got := a.IoU(box(0, 5, 10, 15)); !almostEqual(got, 1.0/3, 1e-12) {
		t.Errorf("half-overlap IoU = %f, want 1/3", got)
	}
	// Zero-area boxes.
	pt := box(1, 1, 1, 1)
	if got := pt.IoU(pt); got != 0 {
		t.Errorf("point IoU = %f, want 0", got)
	}
}

func TestBBoxIoUBoundsProperty(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		a := NewBBox(
			LatLng{Lat: math.Mod(a1, 80), Lng: math.Mod(a2, 170)},
			LatLng{Lat: math.Mod(a3, 80), Lng: math.Mod(a4, 170)})
		b := NewBBox(
			LatLng{Lat: math.Mod(b1, 80), Lng: math.Mod(b2, 170)},
			LatLng{Lat: math.Mod(b3, 80), Lng: math.Mod(b4, 170)})
		iou := a.IoU(b)
		// Bounded, symmetric.
		return iou >= 0 && iou <= 1+1e-12 && almostEqual(iou, b.IoU(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxCenterAndExpand(t *testing.T) {
	b := box(0, 0, 10, 20)
	if c := b.Center(); c != (LatLng{Lat: 5, Lng: 10}) {
		t.Errorf("Center = %v", c)
	}
	e := b.Expand(1, 2)
	if e != box(-1, -2, 11, 22) {
		t.Errorf("Expand = %v", e)
	}
	if !e.ContainsBox(b) {
		t.Error("expanded box must contain original")
	}
}

func TestBBoxGrid(t *testing.T) {
	b := box(0, 0, 10, 20)

	t.Run("cell count and tiling", func(t *testing.T) {
		cells := b.Grid(2, 4)
		if len(cells) != 8 {
			t.Fatalf("len = %d, want 8", len(cells))
		}
		var area float64
		for _, c := range cells {
			if !b.ContainsBox(c) {
				t.Errorf("cell %v outside parent", c)
			}
			area += c.AreaDeg2()
		}
		if !almostEqual(area, b.AreaDeg2(), 1e-9) {
			t.Errorf("cells cover area %f, want %f", area, b.AreaDeg2())
		}
	})

	t.Run("interiors disjoint", func(t *testing.T) {
		cells := b.Grid(3, 3)
		for i := range cells {
			for j := i + 1; j < len(cells); j++ {
				if inter, ok := cells[i].Intersect(cells[j]); ok && inter.AreaDeg2() > 1e-12 {
					t.Errorf("cells %d and %d overlap with area %g", i, j, inter.AreaDeg2())
				}
			}
		}
	})

	t.Run("invalid dims", func(t *testing.T) {
		if cells := b.Grid(0, 5); cells != nil {
			t.Error("rows=0 should return nil")
		}
		if cells := b.Grid(5, -1); cells != nil {
			t.Error("cols<0 should return nil")
		}
	})
}

func TestBBoxMeterExtents(t *testing.T) {
	b := box(40, -74, 41, -73)
	h := b.HeightMeters()
	if !almostEqual(h, 111195, 200) {
		t.Errorf("HeightMeters = %f, want ~111195", h)
	}
	w := b.WidthMeters()
	// One degree of longitude at 40.5N is ~cos(40.5)*111.3 km ~ 84.6 km.
	if !almostEqual(w, 84600, 500) {
		t.Errorf("WidthMeters = %f, want ~84600", w)
	}
}

func TestSimplifyStraightLine(t *testing.T) {
	// Collinear points collapse to the endpoints.
	var p Path
	for i := 0; i <= 10; i++ {
		p = append(p, LatLng{Lat: 40 + float64(i)*0.001, Lng: -74})
	}
	s := p.Simplify(1)
	if len(s) != 2 {
		t.Errorf("straight line simplified to %d points, want 2", len(s))
	}
	if s[0] != p[0] || s[1] != p[10] {
		t.Errorf("endpoints lost: %v", s)
	}
}

func TestSimplifyKeepsSalientCorner(t *testing.T) {
	// An L-shaped path must keep its corner.
	corner := LatLng{Lat: 40.01, Lng: -74}
	p := Path{
		{Lat: 40, Lng: -74},
		{Lat: 40.005, Lng: -74},
		corner,
		{Lat: 40.01, Lng: -73.995},
		{Lat: 40.01, Lng: -73.99},
	}
	s := p.Simplify(5)
	found := false
	for _, q := range s {
		if q == corner {
			found = true
		}
	}
	if !found {
		t.Errorf("corner dropped: %v", s)
	}
	if len(s) >= len(p) {
		t.Errorf("nothing simplified: %d -> %d", len(p), len(s))
	}
}

func TestSimplifyToleranceMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := Path{{Lat: 40, Lng: -74}}
	cur := p[0]
	for i := 0; i < 200; i++ {
		cur = cur.Destination(rng.Float64()*360, 40)
		p = append(p, cur)
	}
	prev := len(p) + 1
	for _, tol := range []float64{1, 10, 50, 200} {
		n := len(p.Simplify(tol))
		if n > prev {
			t.Errorf("tolerance %f kept %d points, more than looser %d", tol, n, prev)
		}
		prev = n
	}
}

func TestSimplifyDegenerate(t *testing.T) {
	short := Path{{Lat: 1, Lng: 1}, {Lat: 2, Lng: 2}}
	if got := short.Simplify(10); len(got) != 2 {
		t.Errorf("2-point path changed: %v", got)
	}
	p := Path{{Lat: 1, Lng: 1}, {Lat: 1.5, Lng: 1.7}, {Lat: 2, Lng: 2}}
	if got := p.Simplify(0); len(got) != 3 {
		t.Errorf("zero tolerance should keep everything, got %d", len(got))
	}
	// Duplicate endpoints (zero-length chord).
	loopish := Path{{Lat: 1, Lng: 1}, {Lat: 1.01, Lng: 1.01}, {Lat: 1, Lng: 1}}
	got := loopish.Simplify(1)
	if len(got) < 2 {
		t.Errorf("loop collapsed: %v", got)
	}
}
