package geo

import (
	"fmt"
	"math"
)

// BBox is an axis-aligned bounding rectangle described, as in the paper, by
// its south-west (bottom-left) and north-east (top-right) corners.
// Boxes never span the antimeridian; the synthetic world avoids it.
type BBox struct {
	SW LatLng
	NE LatLng
}

// NewBBox builds a normalized box from any two opposite corners.
func NewBBox(a, b LatLng) BBox {
	return BBox{
		SW: LatLng{Lat: math.Min(a.Lat, b.Lat), Lng: math.Min(a.Lng, b.Lng)},
		NE: LatLng{Lat: math.Max(a.Lat, b.Lat), Lng: math.Max(a.Lng, b.Lng)},
	}
}

// Valid reports whether the corners are ordered and in-domain.
func (b BBox) Valid() bool {
	return b.SW.Valid() && b.NE.Valid() && b.SW.Lat <= b.NE.Lat && b.SW.Lng <= b.NE.Lng
}

// String implements fmt.Stringer.
func (b BBox) String() string {
	return fmt.Sprintf("[%v %v]", b.SW, b.NE)
}

// Center returns the rectangle's center point.
func (b BBox) Center() LatLng {
	return LatLng{Lat: (b.SW.Lat + b.NE.Lat) / 2, Lng: (b.SW.Lng + b.NE.Lng) / 2}
}

// Contains reports whether p lies inside the box (inclusive of edges).
func (b BBox) Contains(p LatLng) bool {
	return p.Lat >= b.SW.Lat && p.Lat <= b.NE.Lat &&
		p.Lng >= b.SW.Lng && p.Lng <= b.NE.Lng
}

// ContainsBox reports whether o lies entirely inside b.
func (b BBox) ContainsBox(o BBox) bool {
	return b.Contains(o.SW) && b.Contains(o.NE)
}

// ContainsPath reports whether every vertex of t lies inside b. This is the
// encapsulation test ExploreSegments applies: a segment straddling a region
// boundary belongs to no region.
func (b BBox) ContainsPath(t Path) bool {
	if len(t) == 0 {
		return false
	}
	for _, p := range t {
		if !b.Contains(p) {
			return false
		}
	}
	return true
}

// Intersect returns the overlapping box and whether it is non-empty.
func (b BBox) Intersect(o BBox) (BBox, bool) {
	out := BBox{
		SW: LatLng{Lat: math.Max(b.SW.Lat, o.SW.Lat), Lng: math.Max(b.SW.Lng, o.SW.Lng)},
		NE: LatLng{Lat: math.Min(b.NE.Lat, o.NE.Lat), Lng: math.Min(b.NE.Lng, o.NE.Lng)},
	}
	if out.SW.Lat > out.NE.Lat || out.SW.Lng > out.NE.Lng {
		return BBox{}, false
	}
	return out, true
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	return BBox{
		SW: LatLng{Lat: math.Min(b.SW.Lat, o.SW.Lat), Lng: math.Min(b.SW.Lng, o.SW.Lng)},
		NE: LatLng{Lat: math.Max(b.NE.Lat, o.NE.Lat), Lng: math.Max(b.NE.Lng, o.NE.Lng)},
	}
}

// AreaDeg2 returns the rectangle area in squared degrees. Degree area is what
// the paper's intersection-over-union overlap ratio is computed on; at the
// city scales involved the latitude distortion cancels out of the ratio.
func (b BBox) AreaDeg2() float64 {
	return (b.NE.Lat - b.SW.Lat) * (b.NE.Lng - b.SW.Lng)
}

// IoU returns the intersection-over-union of the two rectangles, the
// paper's per-pair route overlap measure. Two empty (zero-area) boxes
// have IoU 0.
func (b BBox) IoU(o BBox) float64 {
	inter, ok := b.Intersect(o)
	if !ok {
		return 0
	}
	interArea := inter.AreaDeg2()
	unionArea := b.AreaDeg2() + o.AreaDeg2() - interArea
	if unionArea <= 0 {
		return 0
	}
	return interArea / unionArea
}

// Expand grows the box by the given margins, in degrees, on every side.
func (b BBox) Expand(latMargin, lngMargin float64) BBox {
	return BBox{
		SW: LatLng{Lat: b.SW.Lat - latMargin, Lng: b.SW.Lng - lngMargin},
		NE: LatLng{Lat: b.NE.Lat + latMargin, Lng: b.NE.Lng + lngMargin},
	}
}

// WidthMeters returns the east-west extent measured at the box's mid-latitude.
func (b BBox) WidthMeters() float64 {
	mid := (b.SW.Lat + b.NE.Lat) / 2
	return LatLng{Lat: mid, Lng: b.SW.Lng}.DistanceMeters(LatLng{Lat: mid, Lng: b.NE.Lng})
}

// HeightMeters returns the north-south extent.
func (b BBox) HeightMeters() float64 {
	return LatLng{Lat: b.SW.Lat, Lng: b.SW.Lng}.DistanceMeters(LatLng{Lat: b.NE.Lat, Lng: b.SW.Lng})
}

// Grid splits the box into rows×cols disjoint cells, row-major from the
// south-west corner. This is the grid decomposition of the paper's Fig. 4
// used to defeat the top-10-per-boundary limit of ExploreSegments.
func (b BBox) Grid(rows, cols int) []BBox {
	if rows <= 0 || cols <= 0 {
		return nil
	}
	cells := make([]BBox, 0, rows*cols)
	dLat := (b.NE.Lat - b.SW.Lat) / float64(rows)
	dLng := (b.NE.Lng - b.SW.Lng) / float64(cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sw := LatLng{Lat: b.SW.Lat + dLat*float64(r), Lng: b.SW.Lng + dLng*float64(c)}
			cells = append(cells, BBox{
				SW: sw,
				NE: LatLng{Lat: sw.Lat + dLat, Lng: sw.Lng + dLng},
			})
		}
	}
	return cells
}
