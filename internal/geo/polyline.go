package geo

import (
	"fmt"
	"math"
	"strings"
)

// The Google encoded-polyline algorithm, the wire format the paper's miner
// receives geolocation paths in and the elevation API accepts them in.
// Coordinates are delta-encoded at 1e-5 precision, zig-zagged, and packed
// into printable ASCII 5 bits at a time.

const polylineScale = 1e5

// EncodePolyline encodes a path using Google's polyline algorithm.
// An empty path encodes to "".
func EncodePolyline(path Path) string {
	var sb strings.Builder
	var prevLat, prevLng int64
	for _, p := range path {
		lat := round5(p.Lat)
		lng := round5(p.Lng)
		encodeSigned(&sb, lat-prevLat)
		encodeSigned(&sb, lng-prevLng)
		prevLat, prevLng = lat, lng
	}
	return sb.String()
}

// DecodePolyline decodes a Google encoded polyline back to a path.
func DecodePolyline(s string) (Path, error) {
	var path Path
	var lat, lng int64
	i := 0
	for i < len(s) {
		dLat, n, err := decodeSigned(s[i:])
		if err != nil {
			return nil, fmt.Errorf("polyline: latitude at byte %d: %w", i, err)
		}
		i += n
		dLng, n, err := decodeSigned(s[i:])
		if err != nil {
			return nil, fmt.Errorf("polyline: longitude at byte %d: %w", i, err)
		}
		i += n
		lat += dLat
		lng += dLng
		path = append(path, LatLng{
			Lat: float64(lat) / polylineScale,
			Lng: float64(lng) / polylineScale,
		})
	}
	return path, nil
}

// round5 converts degrees to the 1e-5 fixed-point representation, rounding
// half away from zero as the reference implementation does.
func round5(deg float64) int64 {
	return int64(math.Round(deg * polylineScale))
}

func encodeSigned(sb *strings.Builder, v int64) {
	// Zig-zag: left-shift and invert when negative so the sign lives in bit 0.
	u := uint64(v) << 1
	if v < 0 {
		u = ^u
	}
	for u >= 0x20 {
		sb.WriteByte(byte((u&0x1f)|0x20) + 63)
		u >>= 5
	}
	sb.WriteByte(byte(u) + 63)
}

func decodeSigned(s string) (value int64, n int, err error) {
	var u uint64
	var shift uint
	for {
		if n >= len(s) {
			return 0, 0, fmt.Errorf("truncated varint")
		}
		c := s[n]
		if c < 63 || c > 127 {
			return 0, 0, fmt.Errorf("invalid byte %q", c)
		}
		chunk := uint64(c - 63)
		u |= (chunk & 0x1f) << shift
		n++
		if chunk < 0x20 {
			break
		}
		shift += 5
		if shift > 60 {
			return 0, 0, fmt.Errorf("varint overflow")
		}
	}
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, n, nil
}
