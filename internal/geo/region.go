package geo

import "fmt"

// Region is a named cluster of activity rectangles. Regions are how the
// paper labels the user-specific dataset: each activity's tight rectangle is
// assigned to the nearest existing region center within a threshold, or it
// founds a new region (paper §III-A1, Fig. 3).
type Region struct {
	// ID is a unique, stable identity ("R0", "R1", ...) in creation order.
	ID string
	// Bounds is the union of every member rectangle.
	Bounds BBox
	// Members is the number of rectangles assigned to the region.
	Members int

	// centerSumLat/centerSumLng accumulate member centers so the region
	// center is the running mean, keeping assignment order-robust.
	centerSumLat float64
	centerSumLng float64
}

// Center returns the mean center of the region's member rectangles.
func (r *Region) Center() LatLng {
	if r.Members == 0 {
		return r.Bounds.Center()
	}
	return LatLng{
		Lat: r.centerSumLat / float64(r.Members),
		Lng: r.centerSumLng / float64(r.Members),
	}
}

// RegionClusterer implements the paper's incremental labeling scheme: the
// Euclidean (great-circle) distance between a rectangle's center and an
// existing region's center decides membership.
type RegionClusterer struct {
	// ThresholdMeters is the maximum center-to-center distance for a
	// rectangle to join an existing region.
	ThresholdMeters float64

	regions []*Region
}

// NewRegionClusterer returns a clusterer with the given join threshold.
func NewRegionClusterer(thresholdMeters float64) *RegionClusterer {
	return &RegionClusterer{ThresholdMeters: thresholdMeters}
}

// Assign places the rectangle in the closest region within the threshold,
// creating a new region when none qualifies, and returns that region.
func (c *RegionClusterer) Assign(rect BBox) *Region {
	center := rect.Center()

	var best *Region
	bestDist := c.ThresholdMeters
	for _, r := range c.regions {
		d := center.DistanceMeters(r.Center())
		if d <= bestDist {
			best, bestDist = r, d
		}
	}
	if best == nil {
		best = &Region{
			ID:     fmt.Sprintf("R%d", len(c.regions)),
			Bounds: rect,
		}
		c.regions = append(c.regions, best)
	}

	best.Bounds = best.Bounds.Union(rect)
	best.Members++
	best.centerSumLat += center.Lat
	best.centerSumLng += center.Lng
	return best
}

// Regions returns the regions in creation order. The slice is a copy; the
// pointed-to regions are shared.
func (c *RegionClusterer) Regions() []*Region {
	out := make([]*Region, len(c.regions))
	copy(out, c.regions)
	return out
}

// Len returns the number of regions created so far.
func (c *RegionClusterer) Len() int { return len(c.regions) }
