package geo

import (
	"testing"
)

// rectAround builds a small activity rectangle centered at the given point.
func rectAround(center LatLng, halfDeg float64) BBox {
	return BBox{
		SW: LatLng{Lat: center.Lat - halfDeg, Lng: center.Lng - halfDeg},
		NE: LatLng{Lat: center.Lat + halfDeg, Lng: center.Lng + halfDeg},
	}
}

func TestRegionClustererCreatesAndJoins(t *testing.T) {
	c := NewRegionClusterer(5000) // 5 km threshold

	home := LatLng{Lat: 38.9, Lng: -77.03}
	r1 := c.Assign(rectAround(home, 0.005))
	if r1.ID != "R0" {
		t.Fatalf("first region ID = %q, want R0", r1.ID)
	}

	// An activity 1 km away joins the same region.
	near := home.Destination(90, 1000)
	r2 := c.Assign(rectAround(near, 0.005))
	if r2 != r1 {
		t.Error("nearby rectangle should join existing region")
	}
	if r1.Members != 2 {
		t.Errorf("members = %d, want 2", r1.Members)
	}

	// An activity 300 km away (another city) founds a new region.
	far := LatLng{Lat: 40.71, Lng: -74.0}
	r3 := c.Assign(rectAround(far, 0.005))
	if r3 == r1 {
		t.Error("distant rectangle must found a new region")
	}
	if r3.ID != "R1" {
		t.Errorf("second region ID = %q, want R1", r3.ID)
	}
	if c.Len() != 2 {
		t.Errorf("region count = %d, want 2", c.Len())
	}
}

func TestRegionClustererBoundsGrow(t *testing.T) {
	c := NewRegionClusterer(10000)
	base := LatLng{Lat: 28.5, Lng: -81.4}
	r := c.Assign(rectAround(base, 0.01))
	first := r.Bounds

	shifted := base.Destination(45, 2000)
	c.Assign(rectAround(shifted, 0.01))
	if !r.Bounds.ContainsBox(first) {
		t.Error("region bounds must grow monotonically")
	}
	if r.Bounds == first {
		t.Error("region bounds should have grown after a shifted member")
	}
}

func TestRegionClustererPicksNearest(t *testing.T) {
	c := NewRegionClusterer(100000) // generous threshold: everything within 100 km joins
	a := LatLng{Lat: 40.0, Lng: -74.0}
	b := LatLng{Lat: 40.5, Lng: -74.0} // ~55 km north

	ra := c.Assign(rectAround(a, 0.001))
	rb := c.Assign(rectAround(b.Destination(0, 60000), 0.001)) // far enough from a to found new
	if ra == rb {
		t.Fatal("expected two distinct regions")
	}

	// A rectangle slightly north of a must join ra, not rb.
	probe := a.Destination(0, 5000)
	if got := c.Assign(rectAround(probe, 0.001)); got != ra {
		t.Errorf("probe joined %q, want %q", got.ID, ra.ID)
	}
}

func TestRegionCenterIsRunningMean(t *testing.T) {
	c := NewRegionClusterer(50000)
	r := c.Assign(rectAround(LatLng{Lat: 10, Lng: 10}, 0.001))
	c.Assign(rectAround(LatLng{Lat: 10.1, Lng: 10.1}, 0.001))
	got := r.Center()
	if !almostEqual(got.Lat, 10.05, 1e-9) || !almostEqual(got.Lng, 10.05, 1e-9) {
		t.Errorf("Center = %v, want (10.05, 10.05)", got)
	}
}

func TestRegionsReturnsCopy(t *testing.T) {
	c := NewRegionClusterer(1000)
	c.Assign(rectAround(LatLng{Lat: 1, Lng: 1}, 0.001))
	regions := c.Regions()
	if len(regions) != 1 {
		t.Fatalf("len = %d, want 1", len(regions))
	}
	regions[0] = nil
	if c.Regions()[0] == nil {
		t.Error("Regions must return a copied slice")
	}
}

func TestEmptyRegionCenterFallsBack(t *testing.T) {
	r := &Region{Bounds: rectAround(LatLng{Lat: 2, Lng: 4}, 0.5)}
	got := r.Center()
	if !almostEqual(got.Lat, 2, 1e-12) || !almostEqual(got.Lng, 4, 1e-12) {
		t.Errorf("empty-region Center = %v, want bounds center (2,4)", got)
	}
}
