package geo

import (
	"math/rand"
	"testing"
)

func benchPath(n int) Path {
	rng := rand.New(rand.NewSource(1))
	p := make(Path, 0, n)
	cur := LatLng{Lat: 40.75, Lng: -73.97}
	for i := 0; i < n; i++ {
		cur = cur.Destination(rng.Float64()*360, 60)
		p = append(p, cur)
	}
	return p
}

func BenchmarkDistanceMeters(b *testing.B) {
	p := LatLng{Lat: 40.7128, Lng: -74.0060}
	q := LatLng{Lat: 38.9072, Lng: -77.0369}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.DistanceMeters(q)
	}
}

func BenchmarkEncodePolyline100(b *testing.B) {
	path := benchPath(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodePolyline(path)
	}
}

func BenchmarkDecodePolyline100(b *testing.B) {
	encoded := EncodePolyline(benchPath(100))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodePolyline(encoded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathResample200(b *testing.B) {
	path := benchPath(80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = path.Resample(200)
	}
}
