package activity

import (
	"math"
	"math/rand"
	"testing"

	"elevprivacy/internal/geo"
	"elevprivacy/internal/terrain"
)

func testBounds() geo.BBox {
	return geo.NewBBox(geo.LatLng{Lat: 38.80, Lng: -77.15}, geo.LatLng{Lat: 39.00, Lng: -76.90})
}

func newGen(t *testing.T, seed int64) *RouteGenerator {
	t.Helper()
	g, err := NewRouteGenerator(testBounds(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRouteGeneratorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRouteGenerator(geo.BBox{}, rng); err == nil {
		t.Error("zero bounds accepted")
	}
	if _, err := NewRouteGenerator(testBounds(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestWanderStaysInBounds(t *testing.T) {
	g := newGen(t, 2)
	for trial := 0; trial < 10; trial++ {
		path := g.Wander(5000)
		if len(path) < 2 {
			t.Fatalf("trial %d: path too short: %d", trial, len(path))
		}
		for i, p := range path {
			if !testBounds().Contains(p) {
				t.Fatalf("trial %d: vertex %d (%v) escaped bounds", trial, i, p)
			}
		}
	}
}

func TestWanderLengthApproximatesRequest(t *testing.T) {
	g := newGen(t, 3)
	for _, want := range []float64{1000, 3000, 8000} {
		path := g.Wander(want)
		got := path.LengthMeters()
		// Boundary reflections can shorten the walk, but not grossly.
		if got < want*0.5 || got > want*1.5 {
			t.Errorf("requested %0.f m, walked %0.f m", want, got)
		}
	}
}

func TestWanderStepSpacing(t *testing.T) {
	g := newGen(t, 4)
	path := g.Wander(3000)
	for i := 1; i < len(path); i++ {
		d := path[i-1].DistanceMeters(path[i])
		if d > StepMeters+1 {
			t.Fatalf("step %d spans %f m > step size", i, d)
		}
	}
}

func TestLoopClosesAndWobbles(t *testing.T) {
	g := newGen(t, 5)
	center := testBounds().Center()
	loop := g.Loop(center, 800)
	if len(loop) < 10 {
		t.Fatalf("loop too coarse: %d vertices", len(loop))
	}
	if loop[0].DistanceMeters(loop[len(loop)-1]) > 1 {
		t.Errorf("loop does not close: %f m gap", loop[0].DistanceMeters(loop[len(loop)-1]))
	}
	// Vertices must be near the requested radius but not exactly circular.
	var minR, maxR float64 = math.Inf(1), 0
	for _, p := range loop {
		r := center.DistanceMeters(p)
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	if minR < 400 || maxR > 1600 {
		t.Errorf("radius range [%f, %f] too far from 800", minR, maxR)
	}
	if maxR-minR < 10 {
		t.Error("loop is a perfect circle; expected organic wobble")
	}
}

func TestOutAndBackSymmetry(t *testing.T) {
	g := newGen(t, 6)
	start := testBounds().Center()
	path := g.OutAndBack(start, 45, 1500)
	if path[0] != start {
		t.Errorf("path starts at %v, want %v", path[0], start)
	}
	last := path[len(path)-1]
	if last.DistanceMeters(start) > 1 {
		t.Errorf("out-and-back ends %f m from start", last.DistanceMeters(start))
	}
	// The return leg retraces the out leg.
	n := len(path)
	for i := 0; i < n/2; i++ {
		if path[i] != path[n-1-i] {
			t.Fatalf("vertex %d not mirrored", i)
		}
	}
}

func TestJitterPreservesShape(t *testing.T) {
	g := newGen(t, 7)
	base := g.Wander(4000)
	jit := g.Jitter(base, 25)
	if len(jit) != len(base) {
		t.Fatalf("jitter changed vertex count: %d vs %d", len(jit), len(base))
	}
	var total float64
	for i := range base {
		d := base[i].DistanceMeters(jit[i])
		total += d
		if d > 200 {
			t.Errorf("vertex %d displaced %f m", i, d)
		}
	}
	if total == 0 {
		t.Error("jitter displaced nothing")
	}
	for _, p := range jit {
		if !testBounds().Contains(p) {
			t.Error("jittered vertex escaped bounds")
		}
	}
}

func TestRouteGeneratorDeterminism(t *testing.T) {
	a := newGen(t, 11)
	b := newGen(t, 11)
	pa := a.Wander(3000)
	pb := b.Wander(3000)
	if len(pa) != len(pb) {
		t.Fatal("same seed, different lengths")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("same seed diverges at vertex %d", i)
		}
	}
}

func TestSimulateAthleteTableI(t *testing.T) {
	regions := terrain.AthleteWorld()
	counts := map[string]int{
		"Washington DC": 30,
		"Orlando":       20,
		"New York City": 12,
		"San Diego":     5,
	}
	acts, err := SimulateAthlete(regions, counts, DefaultAthleteConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for i := range acts {
		got[acts[i].Region]++
		if len(acts[i].Path) != len(acts[i].Elevations) {
			t.Fatalf("%s: %d vertices but %d elevations", acts[i].Name, len(acts[i].Path), len(acts[i].Elevations))
		}
		if len(acts[i].Path) < 10 {
			t.Errorf("%s: suspiciously short path (%d)", acts[i].Name, len(acts[i].Path))
		}
	}
	for region, want := range counts {
		if got[region] != want {
			t.Errorf("%s: %d activities, want %d", region, got[region], want)
		}
	}
}

func TestSimulateAthleteDefaultsToTargets(t *testing.T) {
	regions := terrain.AthleteWorld()
	// Trim targets for test speed.
	for _, r := range regions {
		r.TargetSegments = 3
	}
	acts, err := SimulateAthlete(regions, nil, DefaultAthleteConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 12 {
		t.Errorf("got %d activities, want 12", len(acts))
	}
}

func TestSimulateAthleteValidation(t *testing.T) {
	if _, err := SimulateAthlete(nil, nil, DefaultAthleteConfig(), 1); err == nil {
		t.Error("empty regions accepted")
	}
	bad := DefaultAthleteConfig()
	bad.FavoriteProb = 1.5
	if _, err := SimulateAthlete(terrain.AthleteWorld(), map[string]int{"Orlando": 1}, bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSimulateAthleteElevationsMatchTerrain(t *testing.T) {
	regions := terrain.AthleteWorld()
	counts := map[string]int{"San Diego": 8}
	acts, err := SimulateAthlete(regions, counts, DefaultAthleteConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := terrain.CityByName(regions, "SD")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sd.Terrain()
	if err != nil {
		t.Fatal(err)
	}
	for _, act := range acts {
		for i, p := range act.Path {
			want, err := tr.ElevationAt(p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(act.Elevations[i]-want) > 1e-9 {
				t.Fatalf("%s vertex %d: elevation %f, terrain %f", act.Name, i, act.Elevations[i], want)
			}
		}
	}
}

// TestAthleteOverlapNearPaper checks the headline dataset property: the
// paper measures ~35 % average same-region route overlap. The simulator
// must land in a band around that.
func TestAthleteOverlapNearPaper(t *testing.T) {
	regions := terrain.AthleteWorld()
	counts := map[string]int{
		"Washington DC": 40,
		"Orlando":       30,
	}
	acts, err := SimulateAthlete(regions, counts, DefaultAthleteConfig(), 1234)
	if err != nil {
		t.Fatal(err)
	}
	ratio := AverageOverlapRatio(acts)
	if ratio < 0.15 || ratio > 0.60 {
		t.Errorf("average overlap ratio = %f, want within [0.15, 0.60] (paper: 0.35)", ratio)
	}
	t.Logf("average overlap ratio: %.3f (paper reports 0.35)", ratio)
}

func TestAverageOverlapRatioEdgeCases(t *testing.T) {
	if r := AverageOverlapRatio(nil); r != 0 {
		t.Errorf("empty = %f", r)
	}
	// Single activity: no pairs.
	acts := []Activity{{Region: "X", Path: geo.Path{{Lat: 1, Lng: 1}, {Lat: 1.01, Lng: 1.01}}}}
	if r := AverageOverlapRatio(acts); r != 0 {
		t.Errorf("single = %f", r)
	}
	// Identical rectangles: ratio 1.
	acts = append(acts, Activity{Region: "X", Path: acts[0].Path.Clone()})
	if r := AverageOverlapRatio(acts); math.Abs(r-1) > 1e-12 {
		t.Errorf("identical pair = %f, want 1", r)
	}
}

func TestPickAnchorDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	counts := map[anchorKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[pickAnchor(rng)]++
	}
	// Survey marginals: 51/36/3/10.
	checks := []struct {
		kind anchorKind
		want float64
	}{
		{anchorHome, 0.51}, {anchorSchool, 0.36}, {anchorWork, 0.03}, {anchorElsewhere, 0.10},
	}
	for _, c := range checks {
		got := float64(counts[c.kind]) / n
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("anchor %d frequency = %f, want %f±0.02", c.kind, got, c.want)
		}
	}
}
