package activity

import (
	"testing"

	"elevprivacy/internal/terrain"
)

func TestGeneratorDeterministicAndInterleaved(t *testing.T) {
	regions := terrain.AthleteWorld()
	cfg := DefaultAthleteConfig()

	g1, err := NewGenerator(regions, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(regions, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}

	const n = 24
	seenRegion := map[string]bool{}
	seenName := map[string]bool{}
	for i := 0; i < n; i++ {
		a, err := g1.Next()
		if err != nil {
			t.Fatal(err)
		}
		b, err := g2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if a.Name != b.Name || a.Region != b.Region || len(a.Elevations) != len(b.Elevations) {
			t.Fatalf("streams diverged at %d: %q/%q vs %q/%q", i, a.Name, a.Region, b.Name, b.Region)
		}
		for j := range a.Elevations {
			if a.Elevations[j] != b.Elevations[j] {
				t.Fatalf("activity %q elevations diverge at sample %d", a.Name, j)
			}
		}
		if len(a.Elevations) == 0 || len(a.Elevations) != len(a.Path) {
			t.Fatalf("activity %q has %d elevations for %d path points", a.Name, len(a.Elevations), len(a.Path))
		}
		if seenName[a.Name] {
			t.Fatalf("duplicate activity name %q", a.Name)
		}
		seenName[a.Name] = true
		seenRegion[a.Region] = true
	}
	// Round-robin: a short prefix already covers every region.
	if len(seenRegion) != len(regions) {
		t.Fatalf("prefix of %d activities covered %d of %d regions", n, len(seenRegion), len(regions))
	}

	// A different seed is a different firehose.
	g3, err := NewGenerator(regions, cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	a1, _ := NewGenerator(regions, cfg, 42)
	for i := 0; i < 4; i++ {
		x, err := a1.Next()
		if err != nil {
			t.Fatal(err)
		}
		y, err := g3.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(x.Elevations) != len(y.Elevations) {
			same = false
			break
		}
		for j := range x.Elevations {
			if x.Elevations[j] != y.Elevations[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 generated identical streams")
	}
}
