package activity

import (
	"fmt"
	"math/rand"

	"elevprivacy/internal/terrain"
)

// Generator is the streaming counterpart of SimulateAthlete: instead of
// materializing a whole history up front, it yields one activity at a time,
// round-robin across the regions — the shape a live firehose has, where
// workouts from different regions interleave as they are shared. The stream
// is fully determined by (regions, cfg, seed): two generators built alike
// produce identical activities in identical order, which is what lets an
// ingest benchmark replay the exact firehose its offline baseline saw.
type Generator struct {
	cfg   AthleteConfig
	rng   *rand.Rand
	sims  []*regionSim
	next  int   // round-robin cursor over sims
	count []int // per-region sequence number, for names
}

// NewGenerator prepares one simulated athlete per region and returns the
// interleaved stream. Nil regions defaults to terrain.AthleteWorld().
func NewGenerator(regions []*terrain.City, cfg AthleteConfig, seed int64) (*Generator, error) {
	if regions == nil {
		regions = terrain.AthleteWorld()
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("activity: no regions")
	}
	if cfg.FavoriteRoutes < 0 || cfg.FavoriteProb < 0 || cfg.FavoriteProb > 1 {
		return nil, fmt.Errorf("activity: invalid athlete config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{cfg: cfg, rng: rng, count: make([]int, len(regions))}
	for _, region := range regions {
		sim, err := newRegionSim(region, cfg, rng)
		if err != nil {
			return nil, err
		}
		g.sims = append(g.sims, sim)
	}
	return g, nil
}

// Next yields the stream's next activity. Names are "<abbrev>-live-%06d",
// so a dump of any prefix of the stream sorts the same way everywhere.
func (g *Generator) Next() (Activity, error) {
	sim := g.sims[g.next]
	name := fmt.Sprintf("%s-live-%06d", sim.city.Abbrev, g.count[g.next])
	g.count[g.next]++
	g.next = (g.next + 1) % len(g.sims)
	return sim.nextActivity(name, g.cfg, g.rng)
}
