// Package activity synthesizes the human side of the datasets: plausible
// workout routes and the voluntary athlete whose recorded history forms the
// paper's user-specific dataset (Table I).
//
// Routes are bearing-persistent random walks bounded to a region, with
// shapes matching how people actually train: wandering runs, loops, and
// out-and-back courses. The athlete model adds the behaviours the paper's
// survey documents — activities start at home/school/work anchors and
// favorite routes are repeated with small day-to-day jitter, which is what
// produces the ~35 % route overlap the paper measures.
package activity

import (
	"fmt"
	"math"
	"math/rand"

	"elevprivacy/internal/geo"
)

// RouteGenerator produces synthetic workout routes inside a boundary.
// It is deterministic given its *rand.Rand.
type RouteGenerator struct {
	bounds geo.BBox
	rng    *rand.Rand
}

// StepMeters is the spacing between consecutive route vertices.
const StepMeters = 60

// NewRouteGenerator creates a generator confined to bounds.
func NewRouteGenerator(bounds geo.BBox, rng *rand.Rand) (*RouteGenerator, error) {
	if !bounds.Valid() || bounds.AreaDeg2() == 0 {
		return nil, fmt.Errorf("activity: invalid bounds %v", bounds)
	}
	if rng == nil {
		return nil, fmt.Errorf("activity: nil rng")
	}
	return &RouteGenerator{bounds: bounds, rng: rng}, nil
}

// RandomPoint returns a uniform point within the generator's bounds, kept
// off the extreme edges so a route has room to move.
func (g *RouteGenerator) RandomPoint() geo.LatLng {
	margin := 0.08
	dLat := g.bounds.NE.Lat - g.bounds.SW.Lat
	dLng := g.bounds.NE.Lng - g.bounds.SW.Lng
	return geo.LatLng{
		Lat: g.bounds.SW.Lat + dLat*(margin+(1-2*margin)*g.rng.Float64()),
		Lng: g.bounds.SW.Lng + dLng*(margin+(1-2*margin)*g.rng.Float64()),
	}
}

// Wander generates a bearing-persistent random walk of the given length
// starting at a random point.
func (g *RouteGenerator) Wander(lengthMeters float64) geo.Path {
	return g.WanderFrom(g.RandomPoint(), lengthMeters)
}

// WanderFrom generates a bearing-persistent random walk from start. The walk
// turns smoothly (Gaussian bearing increments) and steers back toward the
// boundary center when it strays outside.
func (g *RouteGenerator) WanderFrom(start geo.LatLng, lengthMeters float64) geo.Path {
	steps := int(math.Max(2, lengthMeters/StepMeters))
	path := make(geo.Path, 0, steps+1)
	path = append(path, start)

	bearing := g.rng.Float64() * 360
	cur := start
	for i := 0; i < steps; i++ {
		bearing += g.rng.NormFloat64() * 18
		next := cur.Destination(bearing, StepMeters)
		if !g.bounds.Contains(next) {
			// Turn toward the center and step again.
			bearing = cur.BearingDegrees(g.bounds.Center())
			next = cur.Destination(bearing, StepMeters)
			if !g.bounds.Contains(next) {
				next = cur // stuck at a corner; stand still this step
			}
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// Loop generates a closed training loop around center with the given mean
// radius; the radius wobbles so the loop is organic rather than circular.
func (g *RouteGenerator) Loop(center geo.LatLng, radiusMeters float64) geo.Path {
	const vertices = 48
	phase := g.rng.Float64() * 2 * math.Pi
	wobbleA := 0.12 + 0.1*g.rng.Float64()
	wobbleB := 0.05 + 0.08*g.rng.Float64()
	path := make(geo.Path, 0, vertices+1)
	for i := 0; i <= vertices; i++ {
		theta := 2 * math.Pi * float64(i) / vertices
		r := radiusMeters * (1 + wobbleA*math.Sin(3*theta+phase) + wobbleB*math.Sin(5*theta-phase))
		p := center.Destination(theta*180/math.Pi, r)
		if !g.bounds.Contains(p) {
			p = clampTo(g.bounds, p)
		}
		path = append(path, p)
	}
	return path
}

// OutAndBack generates a course that goes halfMeters along a meandering
// bearing and returns by the same way, the classic training route shape.
func (g *RouteGenerator) OutAndBack(start geo.LatLng, bearing, halfMeters float64) geo.Path {
	steps := int(math.Max(2, halfMeters/StepMeters))
	out := make(geo.Path, 0, 2*steps+1)
	out = append(out, start)
	cur := start
	b := bearing
	for i := 0; i < steps; i++ {
		b += g.rng.NormFloat64() * 8
		next := cur.Destination(b, StepMeters)
		if !g.bounds.Contains(next) {
			b = cur.BearingDegrees(g.bounds.Center())
			next = cur.Destination(b, StepMeters)
			if !g.bounds.Contains(next) {
				next = cur
			}
		}
		out = append(out, next)
		cur = next
	}
	// Return leg: the same vertices reversed, skipping the turnaround point.
	for i := len(out) - 2; i >= 0; i-- {
		out = append(out, out[i])
	}
	return out
}

// Jitter returns a copy of path with every vertex displaced by a Gaussian
// offset of the given scale — the same route on a different day (GPS noise
// plus small detours). The first point keeps a smaller jitter so the route
// still starts "at the door".
func (g *RouteGenerator) Jitter(path geo.Path, meters float64) geo.Path {
	out := make(geo.Path, 0, len(path))
	for i, p := range path {
		scale := meters
		if i == 0 {
			scale = meters / 3
		}
		q := p.Destination(g.rng.Float64()*360, math.Abs(g.rng.NormFloat64())*scale)
		if !g.bounds.Contains(q) {
			q = p
		}
		out = append(out, q)
	}
	return out
}

// clampTo projects p onto the closed box.
func clampTo(b geo.BBox, p geo.LatLng) geo.LatLng {
	return geo.LatLng{
		Lat: math.Max(b.SW.Lat, math.Min(b.NE.Lat, p.Lat)),
		Lng: math.Max(b.SW.Lng, math.Min(b.NE.Lng, p.Lng)),
	}
}
