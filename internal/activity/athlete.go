package activity

import (
	"fmt"
	"math/rand"

	"elevprivacy/internal/dem"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/terrain"
)

// Activity is one recorded workout: the trajectory, its elevation series
// (one elevation per vertex, as a dense fitness recording has), and the
// ground-truth region label used for evaluation.
type Activity struct {
	// Name identifies the activity ("wdc-0142").
	Name string
	// Region is the ground-truth region label (a Table I region name).
	Region string
	// Path is the recorded trajectory.
	Path geo.Path
	// Elevations is the recorded elevation at each trajectory vertex.
	Elevations []float64
}

// Bounds returns the activity's tight rectangle (paper Fig. 3).
func (a *Activity) Bounds() (geo.BBox, bool) { return a.Path.Bounds() }

// AthleteConfig tunes the simulated athlete's habits.
type AthleteConfig struct {
	// FavoriteRoutes is how many favorite courses the athlete keeps per
	// region; favorites are repeated with jitter across activities.
	FavoriteRoutes int
	// FavoriteProb is the probability that an activity repeats a favorite
	// rather than exploring a new course.
	FavoriteProb float64
	// JitterMeters is the day-to-day GPS/detour jitter applied when a
	// favorite is repeated.
	JitterMeters float64
	// MinLengthMeters and MaxLengthMeters bound workout course lengths.
	MinLengthMeters float64
	MaxLengthMeters float64
	// AnchorSpreadMeters is how far the home/school/work anchors sit from
	// the region center.
	AnchorSpreadMeters float64
}

// DefaultAthleteConfig returns the configuration used in the experiments,
// tuned so the simulated history reproduces the paper's measured properties
// (≈35 % average same-region route overlap).
func DefaultAthleteConfig() AthleteConfig {
	return AthleteConfig{
		FavoriteRoutes:     2,
		FavoriteProb:       0.78,
		JitterMeters:       25,
		MinLengthMeters:    3000,
		MaxLengthMeters:    7000,
		AnchorSpreadMeters: 1200,
	}
}

// anchorKind is where an activity starts, with the survey's marginals
// (Fig. 1a): 51 % home, 36 % school, 3 % work, 10 % elsewhere.
type anchorKind int

const (
	anchorHome anchorKind = iota + 1
	anchorSchool
	anchorWork
	anchorElsewhere
)

// pickAnchor draws an anchor kind from the survey distribution.
func pickAnchor(rng *rand.Rand) anchorKind {
	r := rng.Float64()
	switch {
	case r < 0.51:
		return anchorHome
	case r < 0.87:
		return anchorSchool
	case r < 0.90:
		return anchorWork
	default:
		return anchorElsewhere
	}
}

// regionSim holds the per-region simulation state.
type regionSim struct {
	city      *terrain.City
	elevation dem.Source
	gen       *RouteGenerator
	anchors   map[anchorKind]geo.LatLng
	favorites []geo.Path
}

// SimulateAthlete generates the user-specific dataset: for each region in
// regions, counts[region.Name] activities with the athlete's habitual
// behaviour, elevation-annotated from the region's terrain.
//
// Regions are the Table I regions (terrain.AthleteWorld()); counts defaults
// to each region's TargetSegments when nil.
func SimulateAthlete(regions []*terrain.City, counts map[string]int, cfg AthleteConfig, seed int64) ([]Activity, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("activity: no regions")
	}
	if cfg.FavoriteRoutes < 0 || cfg.FavoriteProb < 0 || cfg.FavoriteProb > 1 {
		return nil, fmt.Errorf("activity: invalid athlete config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(seed))

	var out []Activity
	for _, region := range regions {
		n := region.TargetSegments
		if counts != nil {
			n = counts[region.Name]
		}
		if n == 0 {
			continue
		}

		sim, err := newRegionSim(region, cfg, rng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			act, err := sim.nextActivity(fmt.Sprintf("%s-%04d", region.Abbrev, i), cfg, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, act)
		}
	}
	return out, nil
}

// newRegionSim prepares anchors and favorite courses for one region.
func newRegionSim(region *terrain.City, cfg AthleteConfig, rng *rand.Rand) (*regionSim, error) {
	tr, err := region.Terrain()
	if err != nil {
		return nil, err
	}
	gen, err := NewRouteGenerator(region.Bounds, rng)
	if err != nil {
		return nil, fmt.Errorf("activity: region %s: %w", region.Name, err)
	}

	s := &regionSim{city: region, elevation: tr, gen: gen}

	// Fixed life anchors near the region center.
	s.anchors = map[anchorKind]geo.LatLng{
		anchorHome:   region.Center.Destination(rng.Float64()*360, rng.Float64()*cfg.AnchorSpreadMeters),
		anchorSchool: region.Center.Destination(rng.Float64()*360, rng.Float64()*cfg.AnchorSpreadMeters),
		anchorWork:   region.Center.Destination(rng.Float64()*360, rng.Float64()*cfg.AnchorSpreadMeters),
	}

	// Favorite courses all start from an anchor.
	for k := 0; k < cfg.FavoriteRoutes; k++ {
		start := s.anchors[pickAnchorNonElsewhere(rng)]
		length := cfg.MinLengthMeters + rng.Float64()*(cfg.MaxLengthMeters-cfg.MinLengthMeters)
		var course geo.Path
		switch k % 3 {
		case 0:
			course = s.gen.Loop(start, length/(2*3.14159))
		case 1:
			course = s.gen.OutAndBack(start, rng.Float64()*360, length/2)
		default:
			course = s.gen.WanderFrom(start, length)
		}
		s.favorites = append(s.favorites, course)
	}
	return s, nil
}

func pickAnchorNonElsewhere(rng *rand.Rand) anchorKind {
	for {
		if k := pickAnchor(rng); k != anchorElsewhere {
			return k
		}
	}
}

// nextActivity draws one workout according to the athlete's habits.
func (s *regionSim) nextActivity(name string, cfg AthleteConfig, rng *rand.Rand) (Activity, error) {
	var course geo.Path
	if len(s.favorites) > 0 && rng.Float64() < cfg.FavoriteProb {
		base := s.favorites[rng.Intn(len(s.favorites))]
		course = s.gen.Jitter(base, cfg.JitterMeters)
	} else {
		var start geo.LatLng
		if kind := pickAnchor(rng); kind == anchorElsewhere {
			start = s.gen.RandomPoint()
		} else {
			start = s.anchors[kind]
		}
		length := cfg.MinLengthMeters + rng.Float64()*(cfg.MaxLengthMeters-cfg.MinLengthMeters)
		switch rng.Intn(3) {
		case 0:
			course = s.gen.Loop(start, length/(2*3.14159))
		case 1:
			course = s.gen.OutAndBack(start, rng.Float64()*360, length/2)
		default:
			course = s.gen.WanderFrom(start, length)
		}
	}

	elevs := make([]float64, 0, len(course))
	for _, p := range course {
		e, err := s.elevation.ElevationAt(p)
		if err != nil {
			return Activity{}, fmt.Errorf("activity: elevation at %v: %w", p, err)
		}
		elevs = append(elevs, e)
	}
	return Activity{
		Name:       name,
		Region:     s.city.Name,
		Path:       course,
		Elevations: elevs,
	}, nil
}

// AverageOverlapRatio computes the paper's dataset-quality metric: the mean
// intersection-over-union of tight rectangles across all same-region
// activity pairs (§III-A1). Activities without a valid rectangle are
// skipped.
func AverageOverlapRatio(acts []Activity) float64 {
	byRegion := map[string][]geo.BBox{}
	for i := range acts {
		if b, ok := acts[i].Bounds(); ok {
			byRegion[acts[i].Region] = append(byRegion[acts[i].Region], b)
		}
	}
	var sum float64
	var pairs int
	for _, boxes := range byRegion {
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				sum += boxes[i].IoU(boxes[j])
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}
