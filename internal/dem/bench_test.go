package dem

import (
	"bytes"
	"math"
	"testing"

	"elevprivacy/internal/geo"
)

func benchRaster(b *testing.B) *Raster {
	b.Helper()
	bounds := geo.BBox{SW: geo.LatLng{Lat: 38, Lng: -78}, NE: geo.LatLng{Lat: 39, Lng: -77}}
	r, err := NewRaster(bounds, 512, 512)
	if err != nil {
		b.Fatal(err)
	}
	r.Fill(func(lat, lng float64) float64 { return 100 + 40*math.Sin(lat*9)*math.Cos(lng*7) })
	return r
}

func BenchmarkElevationAt(b *testing.B) {
	r := benchRaster(b)
	p := geo.LatLng{Lat: 38.5, Lng: -77.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ElevationAt(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleAlong100(b *testing.B) {
	r := benchRaster(b)
	path := geo.Path{{Lat: 38.2, Lng: -77.8}, {Lat: 38.8, Lng: -77.2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.SampleAlong(path, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHGTWrite(b *testing.B) {
	tile, err := NewTile(38, -78, SRTM3Size)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(2 * SRTM3Size * SRTM3Size)
		if err := tile.WriteHGT(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHGTRead(b *testing.B) {
	tile, err := NewTile(38, -78, SRTM3Size)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tile.WriteHGT(&buf); err != nil {
		b.Fatal(err)
	}
	payload := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadHGT(bytes.NewReader(payload), 38, -78); err != nil {
			b.Fatal(err)
		}
	}
}
