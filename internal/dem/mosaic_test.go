package dem

import (
	"errors"
	"math"
	"sync"
	"testing"

	"elevprivacy/internal/geo"
)

func flatTile(t *testing.T, swLat, swLng int, elev int16) *Tile {
	t.Helper()
	tile, err := NewTile(swLat, swLng, 11)
	if err != nil {
		t.Fatal(err)
	}
	tile.Fill(func(lat, lng float64) float64 { return float64(elev) })
	return tile
}

func TestMosaicRouting(t *testing.T) {
	m := NewMosaic()
	m.Add(flatTile(t, 38, -78, 100))
	m.Add(flatTile(t, 38, -77, 200))
	m.Add(flatTile(t, 39, -78, 300))

	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}

	tests := []struct {
		p    geo.LatLng
		want float64
	}{
		{geo.LatLng{Lat: 38.5, Lng: -77.5}, 100},
		{geo.LatLng{Lat: 38.5, Lng: -76.5}, 200},
		{geo.LatLng{Lat: 39.5, Lng: -77.5}, 300},
	}
	for _, tc := range tests {
		got, err := m.ElevationAt(tc.p)
		if err != nil {
			t.Fatalf("ElevationAt(%v): %v", tc.p, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("ElevationAt(%v) = %f, want %f", tc.p, got, tc.want)
		}
	}
}

func TestMosaicMissingTile(t *testing.T) {
	m := NewMosaic()
	m.Add(flatTile(t, 38, -78, 100))
	_, err := m.ElevationAt(geo.LatLng{Lat: 50.5, Lng: 10.5})
	if !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("err = %v, want ErrOutOfBounds", err)
	}
}

func TestMosaicReplaceTile(t *testing.T) {
	m := NewMosaic()
	m.Add(flatTile(t, 38, -78, 100))
	m.Add(flatTile(t, 38, -78, 500))
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replacement", m.Len())
	}
	got, err := m.ElevationAt(geo.LatLng{Lat: 38.5, Lng: -77.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 500 {
		t.Errorf("elevation = %f, want 500 (replaced)", got)
	}
}

func TestMosaicNegativeCoordinateCells(t *testing.T) {
	m := NewMosaic()
	m.Add(flatTile(t, -35, 18, 42))
	got, err := m.ElevationAt(geo.LatLng{Lat: -34.2, Lng: 18.6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("elevation = %f, want 42", got)
	}
	// cellOf must floor, not truncate: -34.2 is in cell -35.
	if cell := cellOf(geo.LatLng{Lat: -34.2, Lng: 18.6}); cell != [2]int{-35, 18} {
		t.Errorf("cellOf = %v, want [-35 18]", cell)
	}
}

func TestMosaicSampleAlongCrossingTiles(t *testing.T) {
	m := NewMosaic()
	m.Add(flatTile(t, 38, -78, 100))
	m.Add(flatTile(t, 38, -77, 200))

	path := geo.Path{
		{Lat: 38.5, Lng: -77.9},
		{Lat: 38.5, Lng: -76.1},
	}
	samples, err := m.SampleAlong(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if samples[0] != 100 || samples[9] != 200 {
		t.Errorf("endpoints = %f, %f; want 100, 200", samples[0], samples[9])
	}
	// Samples must be one of the two tile levels (flat tiles).
	for i, s := range samples {
		if s != 100 && s != 200 {
			t.Errorf("sample %d = %f, want 100 or 200", i, s)
		}
	}
}

func TestMosaicConcurrentAccess(t *testing.T) {
	m := NewMosaic()
	m.Add(flatTile(t, 38, -78, 100))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			m.Add(flatTile(t, 38+i%3, -78, int16(i)))
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_, _ = m.ElevationAt(geo.LatLng{Lat: 38.5, Lng: -77.5})
			}
		}()
	}
	wg.Wait()
}

func TestGenericSampleAlongErrors(t *testing.T) {
	m := NewMosaic()
	if _, err := SampleAlong(m, nil, 10); err == nil {
		t.Error("empty path should error")
	}
	if _, err := SampleAlong(m, geo.Path{{Lat: 1, Lng: 1}}, 0); err == nil {
		t.Error("n=0 should error")
	}
}
