package dem

import (
	"fmt"
	"math"
	"sync"

	"elevprivacy/internal/geo"
)

// Source is anything that can answer point elevation queries. Raster,
// Mosaic, and terrain synthesizers all implement it.
type Source interface {
	// ElevationAt returns the elevation in meters at p, or an error when p
	// is outside coverage.
	ElevationAt(p geo.LatLng) (float64, error)
}

var (
	_ Source = (*Raster)(nil)
	_ Source = (*Mosaic)(nil)
)

// Mosaic stitches 1°×1° tiles into a single Source, resolving each query to
// the tile containing it. It is safe for concurrent use.
type Mosaic struct {
	mu    sync.RWMutex
	tiles map[[2]int]*Tile
}

// NewMosaic returns an empty mosaic.
func NewMosaic() *Mosaic {
	return &Mosaic{tiles: make(map[[2]int]*Tile)}
}

// Add registers a tile, replacing any previous tile for the same cell.
func (m *Mosaic) Add(t *Tile) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tiles[[2]int{t.SWLat, t.SWLng}] = t
}

// Tile returns the tile whose cell contains p, if present.
func (m *Mosaic) Tile(p geo.LatLng) (*Tile, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tiles[cellOf(p)]
	return t, ok
}

// Len returns the number of registered tiles.
func (m *Mosaic) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.tiles)
}

// ElevationAt resolves p to its covering tile and interpolates there.
func (m *Mosaic) ElevationAt(p geo.LatLng) (float64, error) {
	t, ok := m.Tile(p)
	if !ok {
		return 0, fmt.Errorf("%w: no tile for %v", ErrOutOfBounds, p)
	}
	return t.ElevationAt(p)
}

// SampleAlong resamples the path to n points and queries each one.
func (m *Mosaic) SampleAlong(path geo.Path, n int) ([]float64, error) {
	return SampleAlong(m, path, n)
}

// SampleAlong is the generic path sampler over any Source: it resamples the
// path to n evenly spaced points and returns their elevations.
func SampleAlong(src Source, path geo.Path, n int) ([]float64, error) {
	pts := path.Resample(n)
	if pts == nil {
		return nil, fmt.Errorf("dem: empty path or non-positive sample count")
	}
	out := make([]float64, 0, n)
	for _, p := range pts {
		e, err := src.ElevationAt(p)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// cellOf returns the integer-degree cell key containing p.
func cellOf(p geo.LatLng) [2]int {
	return [2]int{int(math.Floor(p.Lat)), int(math.Floor(p.Lng))}
}
