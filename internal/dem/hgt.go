package dem

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"

	"elevprivacy/internal/geo"
)

// SRTM .hgt wire format: a 1°×1° tile is a square grid of big-endian int16
// samples, row-major from the north-west corner. SRTM3 tiles are 1201×1201
// (3 arc-second), SRTM1 tiles 3601×3601 (1 arc-second). Rows and columns
// overlap neighbouring tiles by one sample. The tile's name encodes the
// latitude/longitude of its SOUTH-WEST corner, e.g. N38W078.hgt.

const (
	// SRTM3Size is the per-side sample count of a 3-arc-second tile.
	SRTM3Size = 1201
	// SRTM1Size is the per-side sample count of a 1-arc-second tile.
	SRTM1Size = 3601
)

// Tile is a single SRTM tile: a Raster whose bounds are an integer-degree
// 1°×1° cell.
type Tile struct {
	*Raster
	// SWLat and SWLng are the integer coordinates of the south-west corner.
	SWLat int
	SWLng int
}

// NewTile allocates an empty (zero elevation) tile with the given per-side
// sample count (use SRTM3Size or SRTM1Size).
func NewTile(swLat, swLng, size int) (*Tile, error) {
	if swLat < -90 || swLat > 89 || swLng < -180 || swLng > 179 {
		return nil, fmt.Errorf("dem: tile corner (%d,%d) out of range", swLat, swLng)
	}
	if size < 2 {
		return nil, fmt.Errorf("dem: tile size %d too small", size)
	}
	bounds := geo.BBox{
		SW: geo.LatLng{Lat: float64(swLat), Lng: float64(swLng)},
		NE: geo.LatLng{Lat: float64(swLat + 1), Lng: float64(swLng + 1)},
	}
	r, err := NewRaster(bounds, size, size)
	if err != nil {
		return nil, err
	}
	return &Tile{Raster: r, SWLat: swLat, SWLng: swLng}, nil
}

// Name returns the canonical SRTM file stem for the tile, e.g. "N38W078".
func (t *Tile) Name() string {
	latHemi, lat := 'N', t.SWLat
	if lat < 0 {
		latHemi, lat = 'S', -lat
	}
	lngHemi, lng := 'E', t.SWLng
	if lng < 0 {
		lngHemi, lng = 'W', -lng
	}
	return fmt.Sprintf("%c%02d%c%03d", latHemi, lat, lngHemi, lng)
}

var tileNameRe = regexp.MustCompile(`^([NS])(\d{2})([EW])(\d{3})$`)

// ParseTileName parses a canonical SRTM stem ("N38W078") into the south-west
// corner coordinates.
func ParseTileName(name string) (swLat, swLng int, err error) {
	m := tileNameRe.FindStringSubmatch(name)
	if m == nil {
		return 0, 0, fmt.Errorf("dem: malformed tile name %q", name)
	}
	swLat, _ = strconv.Atoi(m[2])
	if m[1] == "S" {
		swLat = -swLat
	}
	swLng, _ = strconv.Atoi(m[4])
	if m[3] == "W" {
		swLng = -swLng
	}
	if swLat > 89 || swLat < -90 || swLng > 179 || swLng < -180 {
		return 0, 0, fmt.Errorf("dem: tile name %q out of range", name)
	}
	return swLat, swLng, nil
}

// WriteHGT serializes the tile in SRTM .hgt format: size*size big-endian
// int16 samples, row-major, north row first.
func (t *Tile) WriteHGT(w io.Writer) error {
	buf := make([]byte, 2*t.cols)
	for row := 0; row < t.rows; row++ {
		for col := 0; col < t.cols; col++ {
			binary.BigEndian.PutUint16(buf[2*col:], uint16(t.At(row, col)))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("dem: writing hgt row %d: %w", row, err)
		}
	}
	return nil
}

// ReadHGT parses an SRTM .hgt stream. The grid side length is inferred from
// the byte count, which must be 2*size² for a square grid (1201 or 3601 for
// real SRTM data). swLat/swLng locate the tile (normally parsed from the
// file name).
func ReadHGT(rd io.Reader, swLat, swLng int) (*Tile, error) {
	raw, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("dem: reading hgt: %w", err)
	}
	size, err := hgtSide(len(raw))
	if err != nil {
		return nil, err
	}
	tile, err := NewTile(swLat, swLng, size)
	if err != nil {
		return nil, err
	}
	for i := 0; i < size*size; i++ {
		tile.data[i] = int16(binary.BigEndian.Uint16(raw[2*i:]))
	}
	return tile, nil
}

// hgtSide returns the grid side length for a .hgt payload of n bytes: the
// payload must be a square int16 grid (real SRTM tiles are 1201² or 3601²;
// any square side >= 2 is accepted so down-scaled mirrors parse too).
func hgtSide(n int) (int, error) {
	if n < 8 || n%2 != 0 {
		return 0, fmt.Errorf("dem: %d bytes is not a square int16 grid", n)
	}
	samples := n / 2
	side := int(math.Sqrt(float64(samples)))
	for s := side - 1; s <= side+1; s++ {
		if s >= 2 && s*s == samples {
			return s, nil
		}
	}
	return 0, fmt.Errorf("dem: %d bytes is not a square int16 grid", n)
}
