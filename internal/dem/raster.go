// Package dem provides digital-elevation-model rasters: an in-memory grid
// with bilinear sampling, the SRTM .hgt tile wire format, and a mosaic that
// stitches 1°×1° tiles into a queryable elevation source.
//
// The paper's pipeline reads elevation through the Google Maps Elevation
// API; this package is the ground truth that our simulated API serves,
// stored and exchanged in the same raster format real SRTM data ships in.
package dem

import (
	"errors"
	"fmt"
	"math"

	"elevprivacy/internal/geo"
)

// Void is the SRTM sentinel for missing data (no measurement).
const Void int16 = -32768

// ErrOutOfBounds is returned when a query point lies outside a raster.
var ErrOutOfBounds = errors.New("dem: point outside raster coverage")

// Raster is a regular elevation grid over a geographic bounding box.
// Row 0 is the NORTHERNMOST row, matching SRTM file order; column 0 is the
// westernmost column. Samples are meters above sea level.
type Raster struct {
	bounds geo.BBox
	rows   int
	cols   int
	data   []int16 // row-major, len == rows*cols
}

// NewRaster allocates a zero-elevation raster with the given shape.
func NewRaster(bounds geo.BBox, rows, cols int) (*Raster, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("dem: raster needs at least 2x2 samples, got %dx%d", rows, cols)
	}
	if !bounds.Valid() || bounds.AreaDeg2() == 0 {
		return nil, fmt.Errorf("dem: invalid raster bounds %v", bounds)
	}
	return &Raster{
		bounds: bounds,
		rows:   rows,
		cols:   cols,
		data:   make([]int16, rows*cols),
	}, nil
}

// Bounds returns the geographic coverage of the raster.
func (r *Raster) Bounds() geo.BBox { return r.bounds }

// Shape returns (rows, cols).
func (r *Raster) Shape() (rows, cols int) { return r.rows, r.cols }

// At returns the raw sample at (row, col). Row 0 is the northern edge.
func (r *Raster) At(row, col int) int16 {
	return r.data[row*r.cols+col]
}

// Set writes the raw sample at (row, col).
func (r *Raster) Set(row, col int, v int16) {
	r.data[row*r.cols+col] = v
}

// Fill populates every sample from f(lat, lng), clamping to int16 range.
func (r *Raster) Fill(f func(lat, lng float64) float64) {
	for row := 0; row < r.rows; row++ {
		lat := r.rowLat(row)
		for col := 0; col < r.cols; col++ {
			v := f(lat, r.colLng(col))
			r.Set(row, col, clampInt16(v))
		}
	}
}

// rowLat maps a row index to its latitude (row 0 = north edge).
func (r *Raster) rowLat(row int) float64 {
	frac := float64(row) / float64(r.rows-1)
	return r.bounds.NE.Lat - frac*(r.bounds.NE.Lat-r.bounds.SW.Lat)
}

// colLng maps a column index to its longitude (col 0 = west edge).
func (r *Raster) colLng(col int) float64 {
	frac := float64(col) / float64(r.cols-1)
	return r.bounds.SW.Lng + frac*(r.bounds.NE.Lng-r.bounds.SW.Lng)
}

// ElevationAt bilinearly interpolates the elevation at p. Void samples
// contribute as the mean of their non-void neighbors in the 2×2 cell; a cell
// of all-void samples yields an ErrOutOfBounds-distinct error.
func (r *Raster) ElevationAt(p geo.LatLng) (float64, error) {
	if !r.bounds.Contains(p) {
		return 0, fmt.Errorf("%w: %v not in %v", ErrOutOfBounds, p, r.bounds)
	}

	// Continuous grid coordinates. y grows southward with rows.
	y := (r.bounds.NE.Lat - p.Lat) / (r.bounds.NE.Lat - r.bounds.SW.Lat) * float64(r.rows-1)
	x := (p.Lng - r.bounds.SW.Lng) / (r.bounds.NE.Lng - r.bounds.SW.Lng) * float64(r.cols-1)

	row0 := int(math.Floor(y))
	col0 := int(math.Floor(x))
	if row0 >= r.rows-1 {
		row0 = r.rows - 2
	}
	if col0 >= r.cols-1 {
		col0 = r.cols - 2
	}
	fy := y - float64(row0)
	fx := x - float64(col0)

	v00 := r.At(row0, col0)
	v01 := r.At(row0, col0+1)
	v10 := r.At(row0+1, col0)
	v11 := r.At(row0+1, col0+1)

	cell := [4]int16{v00, v01, v10, v11}
	var sum float64
	var valid int
	for _, v := range cell {
		if v != Void {
			sum += float64(v)
			valid++
		}
	}
	if valid == 0 {
		return 0, fmt.Errorf("dem: all-void cell at %v", p)
	}
	mean := sum / float64(valid)
	fill := func(v int16) float64 {
		if v == Void {
			return mean
		}
		return float64(v)
	}

	top := fill(v00)*(1-fx) + fill(v01)*fx
	bot := fill(v10)*(1-fx) + fill(v11)*fx
	return top*(1-fy) + bot*fy, nil
}

// SampleAlong resamples the path to n evenly spaced points and returns their
// elevations, mirroring what the Elevation API's path sampling does.
func (r *Raster) SampleAlong(path geo.Path, n int) ([]float64, error) {
	pts := path.Resample(n)
	if pts == nil {
		return nil, errors.New("dem: empty path or non-positive sample count")
	}
	out := make([]float64, 0, n)
	for _, p := range pts {
		e, err := r.ElevationAt(p)
		if err != nil {
			return nil, fmt.Errorf("dem: sampling %v: %w", p, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// MinMax returns the smallest and largest non-void samples. ok is false when
// every sample is void.
func (r *Raster) MinMax() (minV, maxV int16, ok bool) {
	minV, maxV = math.MaxInt16, math.MinInt16
	for _, v := range r.data {
		if v == Void {
			continue
		}
		ok = true
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if !ok {
		return 0, 0, false
	}
	return minV, maxV, true
}

func clampInt16(v float64) int16 {
	switch {
	case math.IsNaN(v):
		return Void
	case v > math.MaxInt16:
		return math.MaxInt16
	case v < math.MinInt16+1:
		return math.MinInt16 + 1 // reserve Void
	default:
		return int16(math.Round(v))
	}
}
