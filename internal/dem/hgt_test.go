package dem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"elevprivacy/internal/geo"
)

func TestTileName(t *testing.T) {
	tests := []struct {
		swLat, swLng int
		want         string
	}{
		{38, -78, "N38W078"},
		{-34, 18, "S34E018"},
		{0, 0, "N00E000"},
		{-1, -1, "S01W001"},
		{89, 179, "N89E179"},
		{-90, -180, "S90W180"},
	}
	for _, tc := range tests {
		tile, err := NewTile(tc.swLat, tc.swLng, 2)
		if err != nil {
			t.Fatalf("NewTile(%d,%d): %v", tc.swLat, tc.swLng, err)
		}
		if got := tile.Name(); got != tc.want {
			t.Errorf("Name(%d,%d) = %q, want %q", tc.swLat, tc.swLng, got, tc.want)
		}
	}
}

func TestParseTileName(t *testing.T) {
	for _, name := range []string{"N38W078", "S34E018", "N00E000", "S90W180"} {
		lat, lng, err := ParseTileName(name)
		if err != nil {
			t.Fatalf("ParseTileName(%q): %v", name, err)
		}
		tile, err := NewTile(lat, lng, 2)
		if err != nil {
			t.Fatal(err)
		}
		if tile.Name() != name {
			t.Errorf("round trip %q -> (%d,%d) -> %q", name, lat, lng, tile.Name())
		}
	}
}

func TestParseTileNameErrors(t *testing.T) {
	bad := []string{"", "N38", "X38W078", "N38W78", "n38w078", "N91E000", "N38W181", "N38W078.hgt"}
	for _, name := range bad {
		if _, _, err := ParseTileName(name); err == nil {
			t.Errorf("ParseTileName(%q) succeeded, want error", name)
		}
	}
}

func TestTileNameRoundTripProperty(t *testing.T) {
	f := func(a, b int16) bool {
		swLat := mod(int(a), 180) - 90  // [-90, 89]
		swLng := mod(int(b), 360) - 180 // [-180, 179]
		tile, err := NewTile(swLat, swLng, 2)
		if err != nil {
			return false
		}
		lat, lng, err := ParseTileName(tile.Name())
		return err == nil && lat == swLat && lng == swLng
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHGTRoundTrip(t *testing.T) {
	tile, err := NewTile(38, -78, SRTM3Size)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for row := 0; row < SRTM3Size; row++ {
		for col := 0; col < SRTM3Size; col++ {
			tile.Set(row, col, int16(rng.Intn(4000)-100))
		}
	}
	tile.Set(5, 5, Void)

	var buf bytes.Buffer
	if err := tile.WriteHGT(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 2*SRTM3Size*SRTM3Size {
		t.Fatalf("hgt payload = %d bytes, want %d", buf.Len(), 2*SRTM3Size*SRTM3Size)
	}

	back, err := ReadHGT(&buf, 38, -78)
	if err != nil {
		t.Fatal(err)
	}
	if back.SWLat != 38 || back.SWLng != -78 {
		t.Errorf("corner = (%d,%d), want (38,-78)", back.SWLat, back.SWLng)
	}
	rows, cols := back.Shape()
	if rows != SRTM3Size || cols != SRTM3Size {
		t.Fatalf("shape = %dx%d", rows, cols)
	}
	for row := 0; row < SRTM3Size; row += 97 {
		for col := 0; col < SRTM3Size; col += 89 {
			if back.At(row, col) != tile.At(row, col) {
				t.Fatalf("sample (%d,%d) = %d, want %d", row, col, back.At(row, col), tile.At(row, col))
			}
		}
	}
	if back.At(5, 5) != Void {
		t.Error("void sample lost in round trip")
	}
}

func TestHGTBigEndianLayout(t *testing.T) {
	tile, err := NewTile(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	tile.Set(0, 0, 0x0102)
	tile.Set(0, 1, -2) // 0xFFFE
	tile.Set(1, 0, 3)
	tile.Set(1, 1, 4)
	var buf bytes.Buffer
	if err := tile.WriteHGT(&buf); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x01, 0x02, 0xFF, 0xFE, 0x00, 0x03, 0x00, 0x04}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("payload = %x, want %x", buf.Bytes(), want)
	}
}

func TestReadHGTRejectsBadSizes(t *testing.T) {
	if _, err := ReadHGT(bytes.NewReader(make([]byte, 100)), 0, 0); err == nil {
		t.Error("100-byte payload should be rejected")
	}
	if _, err := ReadHGT(bytes.NewReader(nil), 0, 0); err == nil {
		t.Error("empty payload should be rejected")
	}
}

func TestNewTileValidation(t *testing.T) {
	if _, err := NewTile(90, 0, 10); err == nil {
		t.Error("swLat=90 should be rejected (tile would exceed the pole)")
	}
	if _, err := NewTile(0, 180, 10); err == nil {
		t.Error("swLng=180 should be rejected")
	}
	if _, err := NewTile(0, 0, 1); err == nil {
		t.Error("size=1 should be rejected")
	}
}

func TestTileGeographicAlignment(t *testing.T) {
	tile, err := NewTile(38, -78, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := tile.Bounds()
	wantSW := geo.LatLng{Lat: 38, Lng: -78}
	wantNE := geo.LatLng{Lat: 39, Lng: -77}
	if b.SW != wantSW || b.NE != wantNE {
		t.Errorf("bounds = %v, want [%v %v]", b, wantSW, wantNE)
	}
}

// mod returns the non-negative remainder of a mod n.
func mod(a, n int) int {
	r := a % n
	if r < 0 {
		r += n
	}
	return r
}
