package dem

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"elevprivacy/internal/geo"
)

func testBounds() geo.BBox {
	return geo.BBox{SW: geo.LatLng{Lat: 38, Lng: -78}, NE: geo.LatLng{Lat: 39, Lng: -77}}
}

func TestNewRasterValidation(t *testing.T) {
	tests := []struct {
		name       string
		bounds     geo.BBox
		rows, cols int
		wantErr    bool
	}{
		{"ok", testBounds(), 10, 10, false},
		{"too few rows", testBounds(), 1, 10, true},
		{"too few cols", testBounds(), 10, 0, true},
		{"zero-area bounds", geo.BBox{SW: geo.LatLng{Lat: 1, Lng: 1}, NE: geo.LatLng{Lat: 1, Lng: 1}}, 10, 10, true},
		{"inverted bounds", geo.BBox{SW: geo.LatLng{Lat: 5, Lng: 5}, NE: geo.LatLng{Lat: 1, Lng: 1}}, 10, 10, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewRaster(tc.bounds, tc.rows, tc.cols)
			if (err != nil) != tc.wantErr {
				t.Errorf("NewRaster err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestRasterFillAndAt(t *testing.T) {
	r, err := NewRaster(testBounds(), 11, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Elevation = latitude * 10 so rows differ predictably.
	r.Fill(func(lat, lng float64) float64 { return lat * 10 })

	// Row 0 is the north edge (lat 39 -> 390).
	if got := r.At(0, 0); got != 390 {
		t.Errorf("north edge sample = %d, want 390", got)
	}
	if got := r.At(10, 0); got != 380 {
		t.Errorf("south edge sample = %d, want 380", got)
	}
}

func TestElevationAtExactGridPoints(t *testing.T) {
	r, _ := NewRaster(testBounds(), 5, 5)
	r.Fill(func(lat, lng float64) float64 { return 100*lat + lng })

	got, err := r.ElevationAt(geo.LatLng{Lat: 38.5, Lng: -77.5})
	if err != nil {
		t.Fatal(err)
	}
	want := 100*38.5 - 77.5
	if math.Abs(got-want) > 0.5 { // int16 quantization tolerance
		t.Errorf("center elevation = %f, want %f", got, want)
	}
}

func TestElevationAtBilinearInterpolation(t *testing.T) {
	bounds := geo.BBox{SW: geo.LatLng{Lat: 0, Lng: 0}, NE: geo.LatLng{Lat: 1, Lng: 1}}
	r, _ := NewRaster(bounds, 2, 2)
	// Corners: NW=0 NE=100 / SW=200 SE=300 (row 0 = north).
	r.Set(0, 0, 0)
	r.Set(0, 1, 100)
	r.Set(1, 0, 200)
	r.Set(1, 1, 300)

	tests := []struct {
		p    geo.LatLng
		want float64
	}{
		{geo.LatLng{Lat: 1, Lng: 0}, 0},       // NW corner
		{geo.LatLng{Lat: 1, Lng: 1}, 100},     // NE corner
		{geo.LatLng{Lat: 0, Lng: 0}, 200},     // SW corner
		{geo.LatLng{Lat: 0, Lng: 1}, 300},     // SE corner
		{geo.LatLng{Lat: 0.5, Lng: 0.5}, 150}, // center = mean
		{geo.LatLng{Lat: 1, Lng: 0.5}, 50},    // north edge midpoint
	}
	for _, tc := range tests {
		got, err := r.ElevationAt(tc.p)
		if err != nil {
			t.Fatalf("ElevationAt(%v): %v", tc.p, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("ElevationAt(%v) = %f, want %f", tc.p, got, tc.want)
		}
	}
}

func TestElevationAtOutOfBounds(t *testing.T) {
	r, _ := NewRaster(testBounds(), 4, 4)
	_, err := r.ElevationAt(geo.LatLng{Lat: 40, Lng: -77.5})
	if !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("err = %v, want ErrOutOfBounds", err)
	}
}

func TestElevationAtVoidHandling(t *testing.T) {
	bounds := geo.BBox{SW: geo.LatLng{Lat: 0, Lng: 0}, NE: geo.LatLng{Lat: 1, Lng: 1}}

	t.Run("partial void uses neighbor mean", func(t *testing.T) {
		r, _ := NewRaster(bounds, 2, 2)
		r.Set(0, 0, Void)
		r.Set(0, 1, 90)
		r.Set(1, 0, 90)
		r.Set(1, 1, 90)
		got, err := r.ElevationAt(geo.LatLng{Lat: 0.5, Lng: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-90) > 1e-9 {
			t.Errorf("void-filled elevation = %f, want 90", got)
		}
	})

	t.Run("all void errors", func(t *testing.T) {
		r, _ := NewRaster(bounds, 2, 2)
		for row := 0; row < 2; row++ {
			for col := 0; col < 2; col++ {
				r.Set(row, col, Void)
			}
		}
		if _, err := r.ElevationAt(geo.LatLng{Lat: 0.5, Lng: 0.5}); err == nil {
			t.Error("all-void cell should error")
		}
	})
}

func TestElevationContinuityProperty(t *testing.T) {
	// Bilinear interpolation over a smooth fill must be bounded by the
	// raster's min/max.
	r, _ := NewRaster(testBounds(), 20, 20)
	r.Fill(func(lat, lng float64) float64 {
		return 50 + 40*math.Sin(lat*7)*math.Cos(lng*5)
	})
	minV, maxV, ok := r.MinMax()
	if !ok {
		t.Fatal("MinMax not ok")
	}
	f := func(a, b float64) bool {
		p := geo.LatLng{
			Lat: 38 + math.Mod(math.Abs(a), 1),
			Lng: -78 + math.Mod(math.Abs(b), 1),
		}
		e, err := r.ElevationAt(p)
		if err != nil {
			return false
		}
		return e >= float64(minV)-1e-9 && e <= float64(maxV)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleAlongRaster(t *testing.T) {
	r, _ := NewRaster(testBounds(), 50, 50)
	r.Fill(func(lat, lng float64) float64 { return (lat - 38) * 1000 })

	path := geo.Path{
		{Lat: 38.1, Lng: -77.5},
		{Lat: 38.9, Lng: -77.5},
	}
	samples, err := r.SampleAlong(path, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 9 {
		t.Fatalf("got %d samples, want 9", len(samples))
	}
	// Monotone south->north climb.
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Errorf("samples not monotone at %d: %f < %f", i, samples[i], samples[i-1])
		}
	}
	if math.Abs(samples[0]-100) > 15 || math.Abs(samples[8]-900) > 15 {
		t.Errorf("endpoint samples = %f, %f; want ~100, ~900", samples[0], samples[8])
	}

	if _, err := r.SampleAlong(nil, 5); err == nil {
		t.Error("empty path should error")
	}
	if _, err := r.SampleAlong(path, 0); err == nil {
		t.Error("n=0 should error")
	}
}

func TestMinMax(t *testing.T) {
	r, _ := NewRaster(testBounds(), 3, 3)
	r.Set(0, 0, -5)
	r.Set(2, 2, 77)
	r.Set(1, 1, Void)
	minV, maxV, ok := r.MinMax()
	if !ok || minV != -5 || maxV != 77 {
		t.Errorf("MinMax = %d,%d,%v; want -5,77,true", minV, maxV, ok)
	}

	allVoid, _ := NewRaster(testBounds(), 2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			allVoid.Set(i, j, Void)
		}
	}
	if _, _, ok := allVoid.MinMax(); ok {
		t.Error("all-void MinMax should report !ok")
	}
}

func TestClampInt16(t *testing.T) {
	tests := []struct {
		in   float64
		want int16
	}{
		{0, 0},
		{1.4, 1},
		{1.5, 2},
		{-1.5, -2},
		{40000, math.MaxInt16},
		{-40000, math.MinInt16 + 1},
		{math.NaN(), Void},
	}
	for _, tc := range tests {
		if got := clampInt16(tc.in); got != tc.want {
			t.Errorf("clampInt16(%f) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
