package dem

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"elevprivacy/internal/geo"
)

// rampSource is an analytic field: elevation = 100 + 50*lat + 10*lng.
type rampSource struct{}

func (rampSource) ElevationAt(p geo.LatLng) (float64, error) {
	return 100 + 50*p.Lat + 10*p.Lng, nil
}

func newTileMirror(t *testing.T, size int, opts ...TileServerOption) (*httptest.Server, *TileServer) {
	t.Helper()
	ts, err := NewTileServer(rampSource{}, size, append([]TileServerOption{WithTileLogf(t.Logf)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ts.Handler())
	t.Cleanup(srv.Close)
	return srv, ts
}

func TestFetchTileRoundTrip(t *testing.T) {
	srv, _ := newTileMirror(t, 51)
	tile, err := FetchTile(context.Background(), srv.Client(), srv.URL, "N38W078")
	if err != nil {
		t.Fatal(err)
	}
	if tile.SWLat != 38 || tile.SWLng != -78 {
		t.Fatalf("corner = (%d,%d)", tile.SWLat, tile.SWLng)
	}
	got, err := tile.ElevationAt(geo.LatLng{Lat: 38.5, Lng: -77.5})
	if err != nil {
		t.Fatal(err)
	}
	want := 100 + 50*38.5 - 10*77.5
	if math.Abs(got-want) > 2 { // int16 quantization + bilinear
		t.Errorf("elevation = %f, want %f", got, want)
	}
}

func TestTileServerRejectsBadNames(t *testing.T) {
	srv, _ := newTileMirror(t, 11)
	for _, path := range []string{
		"/tiles/N38W078",     // missing .hgt
		"/tiles/garbage.hgt", // malformed stem
		"/tiles/N95W078.hgt", // out of range
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s served successfully", path)
		}
	}
}

func TestTileServerCaches(t *testing.T) {
	srv, ts := newTileMirror(t, 31)
	for i := 0; i < 3; i++ {
		if _, err := FetchTile(context.Background(), srv.Client(), srv.URL, "N10E020"); err != nil {
			t.Fatal(err)
		}
	}
	if cached := ts.cache.Len(); cached != 1 {
		t.Errorf("cache holds %d tiles, want 1", cached)
	}
	if !ts.cache.Peek("N10E020") {
		t.Error("fetched tile not resident under its stem")
	}
}

func TestTileServerCacheEviction(t *testing.T) {
	// A budget of ~1.5 tiles (31×31×2 bytes each) keeps only the most
	// recently served tile resident.
	size := 31
	srv, ts := newTileMirror(t, size, WithTileCacheBytes(int64(3*size*size)))
	for _, stem := range []string{"N38W078", "N39W078"} {
		if _, err := FetchTile(context.Background(), srv.Client(), srv.URL, stem); err != nil {
			t.Fatal(err)
		}
	}
	if ts.cache.Peek("N38W078") || !ts.cache.Peek("N39W078") {
		t.Errorf("residency N38W078=%v N39W078=%v, want newest only",
			ts.cache.Peek("N38W078"), ts.cache.Peek("N39W078"))
	}
}

func TestTileServerConcurrentFetches(t *testing.T) {
	srv, _ := newTileMirror(t, 21)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stem := "N38W078"
			if i%2 == 1 {
				stem = "N39W078"
			}
			_, errs[i] = FetchTile(context.Background(), srv.Client(), srv.URL, stem)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("fetch %d: %v", i, err)
		}
	}
}

func TestFetchMosaicCoversBounds(t *testing.T) {
	srv, _ := newTileMirror(t, 31)
	bounds := geo.NewBBox(geo.LatLng{Lat: 38.2, Lng: -77.8}, geo.LatLng{Lat: 39.4, Lng: -76.6})
	m, err := FetchMosaic(context.Background(), srv.Client(), srv.URL, bounds)
	if err != nil {
		t.Fatal(err)
	}
	// 38..39 × -78..-77 -> 2×2 tiles.
	if m.Len() != 4 {
		t.Fatalf("mosaic has %d tiles, want 4", m.Len())
	}
	// Queries anywhere in bounds resolve.
	for _, p := range []geo.LatLng{
		{Lat: 38.3, Lng: -77.7},
		{Lat: 39.3, Lng: -76.7},
		bounds.Center(),
	} {
		got, err := m.ElevationAt(p)
		if err != nil {
			t.Fatalf("ElevationAt(%v): %v", p, err)
		}
		want := 100 + 50*p.Lat + 10*p.Lng
		if math.Abs(got-want) > 2 {
			t.Errorf("at %v: %f, want %f", p, got, want)
		}
	}
}

func TestFetchMosaicValidation(t *testing.T) {
	srv, _ := newTileMirror(t, 11)
	bad := geo.BBox{SW: geo.LatLng{Lat: 5, Lng: 5}, NE: geo.LatLng{Lat: 1, Lng: 1}}
	if _, err := FetchMosaic(context.Background(), srv.Client(), srv.URL, bad); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := FetchTile(context.Background(), srv.Client(), srv.URL, "nonsense"); err == nil {
		t.Error("bad stem accepted")
	}
}

func TestNewTileServerValidation(t *testing.T) {
	if _, err := NewTileServer(rampSource{}, 1); err == nil {
		t.Error("size 1 accepted")
	}
}

// TestTileMirrorFeedsElevationChain wires the full SRTM workflow: mirror ->
// mosaic -> point queries, against a real city terrain.
func TestTileMirrorFeedsElevationChain(t *testing.T) {
	ts, err := NewTileServer(rampSource{}, 101, WithTileLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ts.Handler())
	defer srv.Close()

	bounds := geo.NewBBox(geo.LatLng{Lat: 38.8, Lng: -77.15}, geo.LatLng{Lat: 39.0, Lng: -76.9})
	mosaic, err := FetchMosaic(context.Background(), srv.Client(), srv.URL, bounds)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := mosaic.SampleAlong(geo.Path{
		{Lat: 38.85, Lng: -77.1},
		{Lat: 38.95, Lng: -77.0},
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 20 {
		t.Fatalf("samples = %d", len(samples))
	}
	// Ramp source: elevation strictly increases along the NE-ward path.
	for i := 1; i < len(samples); i++ {
		if samples[i]+1 < samples[i-1] {
			t.Errorf("sample %d decreased: %f -> %f", i, samples[i-1], samples[i])
		}
	}
}

// TestTileClientNormalizesTrailingSlash pins the base-URL fix: a configured
// mirror address with trailing slashes must not produce "//" request paths.
func TestTileClientNormalizesTrailingSlash(t *testing.T) {
	srv, _ := newTileMirror(t, 21)
	c := NewTileClient(srv.URL+"///", srv.Client())
	tile, err := c.FetchTile(context.Background(), "N38W078")
	if err != nil {
		t.Fatalf("fetch through slashed base URL: %v", err)
	}
	if tile.SWLat != 38 || tile.SWLng != -78 {
		t.Fatalf("corner = (%d,%d)", tile.SWLat, tile.SWLng)
	}
}

func TestTileMirrorHealthz(t *testing.T) {
	srv, _ := newTileMirror(t, 11)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}
