package dem

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
	"elevprivacy/internal/serving"
)

// TileServer serves SRTM .hgt tiles over HTTP, the way public SRTM mirrors
// distribute elevation data: GET /tiles/N38W078.hgt returns the raw
// big-endian payload. Tiles are rasterized on demand from any Source and
// held in a size-bounded LRU with singleflight dedup, so a thundering herd
// on a cold tile rasterizes it once and a shard's cache stays inside its
// memory budget no matter how many tiles a sweep touches.
type TileServer struct {
	source      Source
	size        int
	logf        func(string, ...any)
	maxInFlight int
	reqTimeout  time.Duration
	pprof       bool
	cacheBytes  int64
	shardIndex  int
	shardCount  int

	cache *serving.Cache
}

// TileServerOption configures a TileServer.
type TileServerOption func(*TileServer)

// WithTileLogf overrides the server's log function (default: error-level
// lines on the process obs logger).
func WithTileLogf(logf func(string, ...any)) TileServerOption {
	return func(s *TileServer) { s.logf = logf }
}

// WithTilePprof mounts net/http/pprof under /debug/pprof/.
func WithTilePprof(enabled bool) TileServerOption {
	return func(s *TileServer) { s.pprof = enabled }
}

// WithTileMaxInFlight overrides the load-shedding bound (default 64;
// 0 disables shedding). Rasterizing a cold tile is seconds of CPU, so the
// mirror sheds earlier than the JSON services.
func WithTileMaxInFlight(n int) TileServerOption {
	return func(s *TileServer) { s.maxInFlight = n }
}

// WithTileRequestTimeout overrides the per-request deadline (default 30s;
// 0 disables it).
func WithTileRequestTimeout(d time.Duration) TileServerOption {
	return func(s *TileServer) { s.reqTimeout = d }
}

// WithTileCacheBytes overrides the tile cache budget (default 256 MiB —
// ~10 full SRTM3 tiles). The cache never exceeds the budget; cold tiles
// evict the least recently served ones.
func WithTileCacheBytes(n int64) TileServerOption {
	return func(s *TileServer) { s.cacheBytes = n }
}

// WithTileShard tags this instance as shard index of count in a sharded
// tier; /healthz and /metrics report the identity.
func WithTileShard(index, count int) TileServerOption {
	return func(s *TileServer) { s.shardIndex, s.shardCount = index, count }
}

// NewTileServer creates a server rasterizing size×size tiles from source.
// Use SRTM3Size for realistic tiles or a smaller size for tests.
func NewTileServer(source Source, size int, opts ...TileServerOption) (*TileServer, error) {
	if size < 2 {
		return nil, fmt.Errorf("dem: tile size %d", size)
	}
	s := &TileServer{
		source:      source,
		size:        size,
		logf:        func(format string, args ...any) { obs.DefaultLogger().Errorf(format, args...) },
		maxInFlight: 64,
		reqTimeout:  30 * time.Second,
		cacheBytes:  256 << 20,
	}
	for _, o := range opts {
		o(s)
	}
	s.cache = serving.NewCache(s.cacheBytes, serving.WithCacheMetrics("dem_tiles"))
	return s, nil
}

// Handler returns the HTTP routing for the tile mirror, hardened like the
// JSON services: panic recovery, per-request timeout, and max-in-flight
// load shedding with 429 + Retry-After; /healthz bypasses shedding and
// /metrics exposes the process obs registry; see httpx.NewServeMux.
func (s *TileServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /tiles/{name}", s.handleTile)

	return httpx.NewServeMux(mux, httpx.MuxConfig{
		Service: "dem-tiles",
		Harden: httpx.ServerConfig{
			MaxInFlight:    s.maxInFlight,
			RequestTimeout: s.reqTimeout,
			Logf:           s.logf,
		},
		Pprof:      s.pprof,
		ShardIndex: s.shardIndex,
		ShardCount: s.shardCount,
	})
}

// handleTile serves one .hgt payload, rasterizing and caching on first use.
func (s *TileServer) handleTile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	stem, ok := strings.CutSuffix(name, ".hgt")
	if !ok {
		http.Error(w, "tile names end in .hgt", http.StatusBadRequest)
		return
	}
	swLat, swLng, err := ParseTileName(stem)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	payload, err := s.tileBytes(stem, swLat, swLng)
	if err != nil {
		s.logf("dem: rasterizing %s: %v", stem, err)
		http.Error(w, "tile unavailable", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(payload); err != nil {
		s.logf("dem: writing %s: %v", stem, err)
	}
}

// tileBytes rasterizes (or recalls) the named tile's .hgt payload. The LRU
// cache runs the rasterize at most once per cold key across concurrent
// requests.
func (s *TileServer) tileBytes(stem string, swLat, swLng int) ([]byte, error) {
	payload, _, err := s.cache.Get(stem, func() ([]byte, error) {
		tile, err := NewTile(swLat, swLng, s.size)
		if err != nil {
			return nil, err
		}
		var sampled int
		tile.Fill(func(lat, lng float64) float64 {
			e, err := s.source.ElevationAt(geo.LatLng{Lat: lat, Lng: lng})
			if err != nil {
				return float64(Void)
			}
			sampled++
			return e
		})
		if sampled == 0 {
			return nil, fmt.Errorf("dem: tile %s entirely outside source coverage", stem)
		}

		var sb strings.Builder
		sb.Grow(2 * s.size * s.size)
		if err := tile.WriteHGT(&sb); err != nil {
			return nil, err
		}
		return []byte(sb.String()), nil
	})
	return payload, err
}

// TileClient downloads tiles from an SRTM-style mirror — a single instance
// (NewTileClient) or a sharded mirror tier behind an endpoint pool
// (NewTileClientPool), where each tile routes by consistent hash on its stem
// so one shard's LRU owns it.
type TileClient struct {
	baseURL string
	httpc   *http.Client
	pool    *httpx.Pool
}

// NewTileClient creates a client for the mirror at baseURL (trailing
// slashes are normalized away). nil httpc falls back to
// http.DefaultClient.
func NewTileClient(baseURL string, httpc *http.Client) *TileClient {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &TileClient{baseURL: httpx.NormalizeBaseURL(baseURL), httpc: httpc}
}

// NewTileClientPool creates a client issuing requests through a
// multi-endpoint pool, which owns retries, failover, and circuit breaking.
func NewTileClientPool(pool *httpx.Pool) *TileClient {
	return &TileClient{pool: pool}
}

// FetchTile downloads and parses one tile by stem name.
func (c *TileClient) FetchTile(ctx context.Context, stem string) (*Tile, error) {
	swLat, swLng, err := ParseTileName(stem)
	if err != nil {
		return nil, err
	}
	pathAndQuery := "/tiles/" + stem + ".hgt"
	var resp *http.Response
	if c.pool != nil {
		resp, err = c.pool.Get(ctx, httpx.HashKey(stem), pathAndQuery)
	} else {
		var req *http.Request
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+pathAndQuery, nil)
		if err != nil {
			return nil, fmt.Errorf("dem: building request: %w", err)
		}
		resp, err = c.httpc.Do(req)
	}
	if err != nil {
		return nil, fmt.Errorf("dem: fetching %s: %w", stem, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dem: mirror returned %s for %s", resp.Status, stem)
	}
	tile, err := ReadHGT(resp.Body, swLat, swLng)
	if err != nil {
		return nil, fmt.Errorf("dem: parsing %s: %w", stem, err)
	}
	return tile, nil
}

// FetchMosaic downloads every 1°×1° tile overlapping bounds and assembles
// them into a Mosaic — the standard workflow for building an elevation
// model of a study area from an SRTM mirror.
func (c *TileClient) FetchMosaic(ctx context.Context, bounds geo.BBox) (*Mosaic, error) {
	if !bounds.Valid() {
		return nil, fmt.Errorf("dem: invalid bounds %v", bounds)
	}
	m := NewMosaic()
	latLo := int(math.Floor(bounds.SW.Lat))
	latHi := int(math.Floor(bounds.NE.Lat))
	lngLo := int(math.Floor(bounds.SW.Lng))
	lngHi := int(math.Floor(bounds.NE.Lng))
	for lat := latLo; lat <= latHi; lat++ {
		for lng := lngLo; lng <= lngHi; lng++ {
			stub := &Tile{SWLat: lat, SWLng: lng}
			tile, err := c.FetchTile(ctx, stub.Name())
			if err != nil {
				return nil, err
			}
			m.Add(tile)
		}
	}
	return m, nil
}

// FetchTile downloads and parses one tile from a single-instance mirror.
// Kept for callers that don't need pooling; see TileClient.
func FetchTile(ctx context.Context, httpc *http.Client, baseURL, stem string) (*Tile, error) {
	return NewTileClient(baseURL, httpc).FetchTile(ctx, stem)
}

// FetchMosaic downloads every tile overlapping bounds from a
// single-instance mirror; see TileClient.FetchMosaic.
func FetchMosaic(ctx context.Context, httpc *http.Client, baseURL string, bounds geo.BBox) (*Mosaic, error) {
	return NewTileClient(baseURL, httpc).FetchMosaic(ctx, bounds)
}
