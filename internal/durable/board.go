package durable

import (
	"errors"
	"sync"
	"time"
)

// UnitState is the live state of one work unit on a Board.
type UnitState string

// The unit lifecycle: Pending until dispatched, Running while executing,
// then exactly one terminal state. Terminal states are sticky — the first
// terminal transition wins — so a supervising layer (the pool) and the unit
// body can both report without clobbering each other.
const (
	StatePending     UnitState = "pending"
	StateRunning     UnitState = "running"
	StateDone        UnitState = "done"
	StateRestored    UnitState = "restored"
	StateFailed      UnitState = "failed"
	StateInterrupted UnitState = "interrupted"
	StateCanceled    UnitState = "canceled"
)

// Terminal reports whether the state is final.
func (s UnitState) Terminal() bool {
	switch s {
	case StateDone, StateRestored, StateFailed, StateInterrupted, StateCanceled:
		return true
	}
	return false
}

// UnitSnapshot is one unit's live status as an admin surface renders it.
type UnitSnapshot struct {
	// Key identifies the unit.
	Key string `json:"key"`
	// State is the unit's current lifecycle state.
	State UnitState `json:"state"`
	// Err is the failure message for StateFailed, empty otherwise.
	Err string `json:"error,omitempty"`
	// StartedAt is when the unit began running (zero if never dispatched).
	StartedAt time.Time `json:"started_at,omitempty"`
	// FinishedAt is when the unit reached a terminal state.
	FinishedAt time.Time `json:"finished_at,omitempty"`
}

// Elapsed is the unit's wall time: running time so far, or total time once
// terminal. Zero for units that never started.
func (u UnitSnapshot) Elapsed() time.Duration {
	if u.StartedAt.IsZero() {
		return 0
	}
	if u.FinishedAt.IsZero() {
		return time.Since(u.StartedAt)
	}
	return u.FinishedAt.Sub(u.StartedAt)
}

type boardUnit struct {
	state    UnitState
	err      string
	started  time.Time
	finished time.Time
}

// Board is the drain-aware live status surface over a set of keyed work
// units: the pool (and unit bodies) record transitions, an admin API reads
// snapshots while the run is in flight. A nil *Board is valid and records
// nothing, so callers thread an optional board without branching. All
// methods are safe for concurrent use.
type Board struct {
	mu    sync.Mutex
	order []string
	units map[string]*boardUnit
}

// NewBoard creates a board tracking the given keys (more may be registered
// later).
func NewBoard(keys ...string) *Board {
	b := &Board{units: make(map[string]*boardUnit)}
	b.Register(keys...)
	return b
}

// Register adds keys in Pending state. Already-known keys are left alone, so
// registration is idempotent.
func (b *Board) Register(keys ...string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, k := range keys {
		if _, ok := b.units[k]; ok {
			continue
		}
		b.units[k] = &boardUnit{state: StatePending}
		b.order = append(b.order, k)
	}
}

// transition applies a state change under the sticky-terminal rule: once a
// unit is terminal, later transitions are ignored. Unknown keys are
// registered on the fly so ad-hoc units still show up.
func (b *Board) transition(key string, state UnitState, errMsg string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	u, ok := b.units[key]
	if !ok {
		u = &boardUnit{state: StatePending}
		b.units[key] = u
		b.order = append(b.order, key)
	}
	if u.state.Terminal() {
		return
	}
	u.state = state
	u.err = errMsg
	now := time.Now()
	if state == StateRunning && u.started.IsZero() {
		u.started = now
	}
	if state.Terminal() {
		u.finished = now
	}
}

// Start marks the unit running.
func (b *Board) Start(key string) { b.transition(key, StateRunning, "") }

// Finish records the unit's outcome: done on nil error, interrupted when the
// error unwraps to ErrInterrupted, failed otherwise. No-op once terminal.
func (b *Board) Finish(key string, err error) {
	switch {
	case err == nil:
		b.transition(key, StateDone, "")
	case errors.Is(err, ErrInterrupted):
		b.transition(key, StateInterrupted, "")
	default:
		b.transition(key, StateFailed, err.Error())
	}
}

// Restored marks the unit's result as replayed from a journal.
func (b *Board) Restored(key string) { b.transition(key, StateRestored, "") }

// Canceled marks the unit canceled (by an admin, before it ran).
func (b *Board) Canceled(key string) { b.transition(key, StateCanceled, "") }

// Interrupt marks the unit interrupted (drained before it ran).
func (b *Board) Interrupt(key string) { b.transition(key, StateInterrupted, "") }

// Snapshot returns every unit's status in registration order.
func (b *Board) Snapshot() []UnitSnapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]UnitSnapshot, 0, len(b.order))
	for _, k := range b.order {
		u := b.units[k]
		out = append(out, UnitSnapshot{
			Key: k, State: u.state, Err: u.err,
			StartedAt: u.started, FinishedAt: u.finished,
		})
	}
	return out
}

// Get returns one unit's status.
func (b *Board) Get(key string) (UnitSnapshot, bool) {
	if b == nil {
		return UnitSnapshot{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	u, ok := b.units[key]
	if !ok {
		return UnitSnapshot{}, false
	}
	return UnitSnapshot{Key: key, State: u.state, Err: u.err,
		StartedAt: u.started, FinishedAt: u.finished}, true
}

// Counts tallies units by state — the shape an admin list endpoint and a
// shutdown summary both want.
func (b *Board) Counts() map[UnitState]int {
	counts := make(map[UnitState]int)
	if b == nil {
		return counts
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, u := range b.units {
		counts[u.state]++
	}
	return counts
}
