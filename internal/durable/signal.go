package durable

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Shutdown is the graceful-stop protocol for a long run. The first
// SIGINT/SIGTERM closes Draining — dispatch loops stop handing out new work
// units while in-flight units finish, journals flush, and the process exits
// 0 with a partial-result summary. A second signal cancels the hard context,
// aborting in-flight work for callers that honor context cancellation.
type Shutdown struct {
	// Draining closes on the first signal (drain: finish in-flight work).
	Draining <-chan struct{}

	ctx      context.Context
	stopOnce sync.Once
	stop     func()
}

// Context returns the hard-cancel context: it dies on the second signal or
// when the parent dies.
func (s *Shutdown) Context() context.Context { return s.ctx }

// Stop releases the signal handlers (restoring default signal behavior).
func (s *Shutdown) Stop() { s.stopOnce.Do(s.stop) }

// NotifyShutdown installs SIGINT/SIGTERM handling around parent and returns
// the Shutdown protocol handle. Callers defer Stop.
func NotifyShutdown(parent context.Context) *Shutdown {
	ctx, cancel := context.WithCancel(parent)
	draining := make(chan struct{})
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)

	go func() {
		defer signal.Stop(ch)
		select {
		case <-ch:
			close(draining)
		case <-ctx.Done():
			return
		}
		select {
		case <-ch:
			cancel() // second signal: abort in-flight work
		case <-ctx.Done():
		}
	}()

	return &Shutdown{
		Draining: draining,
		ctx:      ctx,
		stop: func() {
			signal.Stop(ch)
			cancel()
		},
	}
}
