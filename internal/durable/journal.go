package durable

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Journal is an append-only log of completed work units. Each unit is a
// (key, JSON value) record; on open the log is replayed into memory so a
// resumed run can skip — and reuse the recorded results of — every unit that
// finished before the crash.
//
// Record format, one per line:
//
//	<8 hex digits: CRC32(payload)> <payload JSON>\n
//
// where payload is {"k": key, "v": value}. JSON never contains raw
// newlines, so a line is a record and a torn final line (the only kind of
// tear an append-only O_APPEND log can suffer) is detected by its missing
// newline or failing checksum. Replay keeps the valid prefix and Open
// truncates the tear away before appending resumes.
//
// Appends are batched: records go through a buffered writer and the file is
// fsynced every SyncEvery appends (and on Flush/Close). A crash can lose at
// most the last unsynced batch — those units re-run on resume, which is
// correct, just not free.
//
// A nil *Journal is valid and remembers nothing: Has reports false, Get
// finds nothing, Put and Flush succeed. Callers thread an optional journal
// without branching.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	done    map[string]json.RawMessage
	pending int

	// SyncEvery batches fsyncs: the file is synced after every SyncEvery
	// appends. 1 syncs every record; DefaultSyncEvery balances durability
	// against sweep throughput. Set before the first Put.
	SyncEvery int

	// stats
	appends  int
	syncs    int
	restored int
}

// DefaultSyncEvery is the fsync batch size OpenJournal starts with.
const DefaultSyncEvery = 16

// journalRecord is the wire form of one completed unit.
type journalRecord struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// OpenJournal opens (creating if needed) the journal at path, replays every
// valid record, truncates any torn tail, and positions the file for
// appending. Corrupt interior records (a checksum failure before the last
// line) abort with a *FormatError — that is damage, not a tear.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening journal: %w", err)
	}
	done, valid, err := replayJournal(f)
	if err != nil {
		_ = f.Close()
		var fe *FormatError
		if errors.As(err, &fe) {
			fe.Path = path
		}
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("durable: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("durable: seeking journal end: %w", err)
	}
	journalRestored.Add(int64(len(done)))
	return &Journal{
		f:         f,
		w:         bufio.NewWriter(f),
		done:      done,
		SyncEvery: DefaultSyncEvery,
		restored:  len(done),
	}, nil
}

// replayJournal scans records from r, returning the replayed map and the
// byte offset of the end of the last valid record. A torn final record
// (missing newline, or bad checksum on the last line) ends the replay
// cleanly; a bad record with valid records after it is corruption and
// returns a *FormatError.
func replayJournal(r io.Reader) (map[string]json.RawMessage, int64, error) {
	done := make(map[string]json.RawMessage)
	br := bufio.NewReader(r)
	var valid int64
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a torn final record (or empty file).
			return done, valid, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("durable: reading journal: %w", err)
		}
		rec, perr := parseRecord(bytes.TrimSuffix(line, []byte("\n")))
		if perr != nil {
			// A parse failure on what the file claims is a complete line:
			// only acceptable as the final line (a tear that happened to
			// include the newline of a half-overwritten block).
			if _, err := br.ReadByte(); err == io.EOF {
				return done, valid, nil
			}
			perr.What = fmt.Sprintf("journal record (line %d)", lineNo)
			return nil, 0, perr
		}
		done[rec.K] = rec.V
		valid += int64(len(line))
	}
}

// parseRecord validates one journal line.
func parseRecord(line []byte) (journalRecord, *FormatError) {
	var rec journalRecord
	if len(line) < 9 || line[8] != ' ' {
		return rec, &FormatError{What: "journal record", Detail: "missing checksum prefix"}
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return rec, &FormatError{What: "journal record", Detail: "malformed checksum"}
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return rec, &FormatError{What: "journal record", Detail: fmt.Sprintf("crc32 %08x, want %08x", got, sum)}
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, &FormatError{What: "journal record", Detail: fmt.Sprintf("parsing JSON: %v", err)}
	}
	if rec.K == "" {
		return rec, &FormatError{What: "journal record", Detail: "empty key"}
	}
	return rec, nil
}

// Has reports whether key has a journaled result.
func (j *Journal) Has(key string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[key]
	return ok
}

// Get unmarshals the journaled value for key into v (which may be nil to
// only test presence). It reports whether the key was found; a found value
// that fails to unmarshal returns an error.
func (j *Journal) Get(key string, v any) (bool, error) {
	if j == nil {
		return false, nil
	}
	j.mu.Lock()
	raw, ok := j.done[key]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if v == nil {
		return true, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return true, fmt.Errorf("durable: journaled %q: %w", key, err)
	}
	return true, nil
}

// Put records a completed unit. The record is immediately visible to
// Has/Get and durable after the current fsync batch closes (every
// SyncEvery appends, or on Flush/Close). Re-putting a key overwrites its
// in-memory value and appends a superseding record.
func (j *Journal) Put(key string, v any) error {
	if j == nil {
		return nil
	}
	if key == "" {
		return fmt.Errorf("durable: journal key must be non-empty")
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("durable: marshaling journal value for %q: %w", key, err)
	}
	payload, err := json.Marshal(journalRecord{K: key, V: raw})
	if err != nil {
		return fmt.Errorf("durable: marshaling journal record for %q: %w", key, err)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := fmt.Fprintf(j.w, "%08x %s\n", crc32.ChecksumIEEE(payload), payload); err != nil {
		return fmt.Errorf("durable: appending journal record: %w", err)
	}
	j.done[key] = raw
	j.appends++
	j.pending++
	journalAppends.Inc()
	batch := j.SyncEvery
	if batch < 1 {
		batch = 1
	}
	if j.pending >= batch {
		return j.syncLocked()
	}
	return nil
}

// Flush forces buffered records to disk (bufio flush + fsync).
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	start := time.Now()
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("durable: flushing journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("durable: syncing journal: %w", err)
	}
	if j.pending > 0 {
		j.syncs++
		journalSyncs.Inc()
		journalFsync.ObserveSince(start)
	}
	j.pending = 0
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.Flush(); err != nil {
		_ = j.f.Close()
		return err
	}
	return j.f.Close()
}

// Len returns the number of distinct journaled keys.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Restored returns how many units were replayed from disk at open — the
// work a resumed run gets for free.
func (j *Journal) Restored() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restored
}

// Keys returns the journaled keys in sorted order.
func (j *Journal) Keys() []string {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	keys := make([]string, 0, len(j.done))
	for k := range j.done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// JournalStats summarizes a journal's activity for run reports.
type JournalStats struct {
	// Keys is the number of distinct journaled units.
	Keys int `json:"keys"`
	// Restored counts units replayed from a previous run at open.
	Restored int `json:"restored"`
	// Appends counts records written this run.
	Appends int `json:"appends"`
	// Syncs counts fsync batches this run.
	Syncs int `json:"syncs"`
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{Keys: len(j.done), Restored: j.restored, Appends: j.appends, Syncs: j.syncs}
}
