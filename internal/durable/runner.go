package durable

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"elevprivacy/internal/obs"
)

// ErrInterrupted marks work units that were never attempted because the run
// was draining for shutdown. Callers distinguish it from real failures to
// decide on an exit-0 partial result.
var ErrInterrupted = errors.New("durable: interrupted, draining for shutdown")

// PanicError wraps a panic recovered from a work unit, carrying the value
// and the goroutine stack. The unit that panicked is quarantined — reported
// as failed — while its siblings keep running.
type PanicError struct {
	// Value is what the unit passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("durable: work unit panicked: %v", e.Value)
}

// Pool runs indexed work units over bounded workers with the supervision a
// long sweep needs: per-worker panic recovery (a panicking unit becomes a
// *PanicError instead of killing the process), an optional per-unit deadline
// budget, and an optional drain signal that stops dispatching new units
// while letting in-flight units finish.
type Pool struct {
	// Workers bounds concurrency; values below 1 behave as 1.
	Workers int
	// UnitTimeout, when positive, bounds each unit via a derived context.
	UnitTimeout time.Duration
	// Drain, when non-nil and closed, stops the dispatch of further units.
	// Units already running complete normally; undispatched units are
	// charged ErrInterrupted.
	Drain <-chan struct{}
	// Key, when non-nil, names unit i for the status Board. Required when
	// Board is set.
	Key func(i int) string
	// Board, when non-nil, receives live unit transitions (running, done,
	// failed, interrupted) so an admin surface can watch the run in flight.
	Board *Board
}

// ForEachIndex runs fn(ctx, i) for i in [0, n) over the pool. The first
// failure cancels the shared context; after all workers finish, the
// lowest-index error among the units that actually ran wins, so concurrent
// sweeps fail deterministically. (A unit dispatched after the cancel is
// skipped, not failed — it records no error.)
// When the pool drains mid-run the lowest undispatched index reports
// ErrInterrupted (unless an earlier unit failed harder).
func (p Pool) ForEachIndex(ctx context.Context, n int, fn func(context.Context, int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var failed sync.Once
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					return
				}
				if err := p.runUnit(ctx, i, fn); err != nil {
					errs[i] = err
					failed.Do(cancel)
				}
			}
		}()
	}

	poolQueueDepth.Add(float64(n))
	dispatched := 0
	drained := -1
feed:
	for i := 0; i < n; i++ {
		// Check the drain first, non-blocking: when a closed drain and a free
		// worker are both ready the select below picks at random, which would
		// make drain-before-unit nondeterministic. A closed drain must win.
		select {
		case <-p.drain():
			drained = i
			break feed
		default:
		}
		select {
		case idx <- i:
			dispatched++
			poolDispatched.Inc()
			poolQueueDepth.Add(-1)
		case <-ctx.Done():
			break feed
		case <-p.drain():
			drained = i
			break feed
		}
	}
	close(idx)
	wg.Wait()
	// Undispatched units leave the queue without running; on a drain they
	// are requeued work a resumed run will pick back up.
	poolQueueDepth.Add(float64(dispatched - n))
	if drained >= 0 {
		poolRequeued.Add(int64(n - dispatched))
	}
	if drained >= 0 && errs[drained] == nil {
		errs[drained] = ErrInterrupted
	}
	if p.Board != nil && p.Key != nil && drained >= 0 {
		for i := drained; i < n; i++ {
			p.Board.Interrupt(p.Key(i))
		}
	}

	// Report the lowest-index root-cause error. With a live parent context,
	// context.Canceled errors are fallout from our own cancel after some
	// other index failed — skip past them to the cause.
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if parent.Err() == nil && errors.Is(err, context.Canceled) {
			continue
		}
		return err
	}
	if fallback != nil {
		return fallback
	}
	return parent.Err()
}

// runUnit executes one unit under the deadline budget, converting a panic
// into a *PanicError so the worker (and the process) survives it.
func (p Pool) runUnit(ctx context.Context, i int, fn func(context.Context, int) error) (err error) {
	start := time.Now()
	poolInFlight.Add(1)
	if p.Board != nil && p.Key != nil {
		p.Board.Start(p.Key(i))
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
		poolInFlight.Add(-1)
		poolUnitSecs.ObserveSince(start)
		if err != nil {
			poolFailed.Inc()
		} else {
			poolCompleted.Inc()
		}
		if p.Board != nil && p.Key != nil {
			// Sticky-terminal: if fn already recorded a richer outcome
			// (restored, canceled, failed-with-detail) this is a no-op.
			p.Board.Finish(p.Key(i), err)
		}
	}()
	if p.UnitTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.UnitTimeout)
		defer cancel()
	}
	return fn(ctx, i)
}

// drain returns the pool's drain channel, or a never-closing one.
func (p Pool) drain() <-chan struct{} {
	if p.Drain != nil {
		return p.Drain
	}
	return neverDrain
}

var neverDrain = make(chan struct{})

// Runner executes an ordered list of keyed, journaled work units — the
// shape of an experiment suite or a per-class sweep list. Units whose key
// is already journaled are restored instead of re-run; completed units are
// journaled as they finish; a drain signal (SIGINT/SIGTERM via
// ShutdownContext) stops between units, flushes the journal, and reports a
// partial result instead of an error.
type Runner struct {
	// Journal records completed units; nil runs everything, remembers
	// nothing.
	Journal *Journal
	// UnitTimeout, when positive, bounds each unit's context.
	UnitTimeout time.Duration
	// Drain, when non-nil and closed, stops dispatch between units.
	Drain <-chan struct{}
}

// UnitStatus is the outcome of one unit in a Report.
type UnitStatus struct {
	// Key identifies the unit.
	Key string
	// Restored is true when the unit's result came from the journal.
	Restored bool
	// Err is the unit's failure (possibly a *PanicError), nil on success,
	// ErrInterrupted when the run drained before the unit started.
	Err error
}

// Report summarizes a Runner.Run: per-unit outcomes in input order plus
// whether the run was interrupted by a drain.
type Report struct {
	Units       []UnitStatus
	Interrupted bool
}

// Completed counts units that ran (or restored) successfully.
func (r *Report) Completed() int {
	n := 0
	for _, u := range r.Units {
		if u.Err == nil {
			n++
		}
	}
	return n
}

// Restored counts units whose results were replayed from the journal.
func (r *Report) Restored() int {
	n := 0
	for _, u := range r.Units {
		if u.Restored {
			n++
		}
	}
	return n
}

// Failed returns the units that failed for reasons other than draining.
func (r *Report) Failed() []UnitStatus {
	var out []UnitStatus
	for _, u := range r.Units {
		if u.Err != nil && !errors.Is(u.Err, ErrInterrupted) {
			out = append(out, u)
		}
	}
	return out
}

// Summary renders a one-line partial-result summary for shutdown messages.
func (r *Report) Summary() string {
	failed := len(r.Failed())
	s := fmt.Sprintf("%d/%d units done (%d restored from checkpoint, %d failed)",
		r.Completed(), len(r.Units), r.Restored(), failed)
	if r.Interrupted {
		s += ", interrupted — resume to continue"
	}
	return s
}

// Run executes the units in order, one at a time (unit bodies are free to
// fan out internally). For each key: a journaled result is restored via
// restore(key); otherwise run(ctx, key) executes and its non-nil result is
// journaled under the key. Panics in run or restore quarantine that unit.
// Run only returns an error for journal I/O failures; unit failures live in
// the Report.
func (r *Runner) Run(ctx context.Context, keys []string,
	run func(ctx context.Context, key string) (any, error),
	restore func(key string) error) (*Report, error) {

	report := &Report{Units: make([]UnitStatus, 0, len(keys))}
	drain := r.Drain
	if drain == nil {
		drain = neverDrain
	}
	for _, key := range keys {
		stopped := ctx.Err() != nil
		select {
		case <-drain:
			stopped = true
		default:
		}
		if stopped {
			report.Interrupted = true
			report.Units = append(report.Units, UnitStatus{Key: key, Err: ErrInterrupted})
			continue
		}
		if r.Journal.Has(key) {
			err := runRecovered(func() error { return restore(key) })
			if err == nil {
				runnerRestored.Inc()
			} else {
				runnerFailed.Inc()
			}
			report.Units = append(report.Units, UnitStatus{Key: key, Restored: err == nil, Err: err})
			continue
		}
		var value any
		err := runRecovered(func() error {
			uctx := ctx
			if r.UnitTimeout > 0 {
				var cancel context.CancelFunc
				uctx, cancel = context.WithTimeout(ctx, r.UnitTimeout)
				defer cancel()
			}
			uctx, span := obs.StartSpan(uctx, "unit/"+key)
			defer span.End()
			var uerr error
			value, uerr = run(uctx, key)
			if uerr != nil {
				span.SetAttr("error", uerr.Error())
			}
			return uerr
		})
		if err == nil && value != nil {
			if jerr := r.Journal.Put(key, value); jerr != nil {
				return report, jerr
			}
		}
		if err == nil {
			runnerCompleted.Inc()
		} else {
			runnerFailed.Inc()
		}
		report.Units = append(report.Units, UnitStatus{Key: key, Err: err})
	}
	if err := r.Journal.Flush(); err != nil {
		return report, err
	}
	return report, nil
}

// runRecovered invokes fn, converting a panic into a *PanicError.
func runRecovered(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
