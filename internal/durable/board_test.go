package durable

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestBoardLifecycle(t *testing.T) {
	b := NewBoard("a", "b", "c")
	if got := b.Counts()[StatePending]; got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}

	b.Start("a")
	if u, _ := b.Get("a"); u.State != StateRunning || u.StartedAt.IsZero() {
		t.Fatalf("after Start: %+v", u)
	}
	b.Finish("a", nil)
	if u, _ := b.Get("a"); u.State != StateDone || u.FinishedAt.IsZero() {
		t.Fatalf("after Finish(nil): %+v", u)
	}

	b.Finish("b", errors.New("boom"))
	if u, _ := b.Get("b"); u.State != StateFailed || u.Err != "boom" {
		t.Fatalf("after Finish(err): %+v", u)
	}

	b.Finish("c", fmt.Errorf("wrapped: %w", ErrInterrupted))
	if u, _ := b.Get("c"); u.State != StateInterrupted {
		t.Fatalf("after Finish(ErrInterrupted): %+v", u)
	}
}

func TestBoardTerminalStatesAreSticky(t *testing.T) {
	b := NewBoard("u")
	b.Start("u")
	b.Restored("u")
	// The pool's deferred Finish(key, nil) must not clobber the richer
	// outcome the unit body already recorded.
	b.Finish("u", nil)
	if u, _ := b.Get("u"); u.State != StateRestored {
		t.Fatalf("state = %q, want restored", u.State)
	}

	b.Register("v")
	b.Canceled("v")
	b.Finish("v", errors.New("late failure"))
	if u, _ := b.Get("v"); u.State != StateCanceled || u.Err != "" {
		t.Fatalf("canceled unit overwritten: %+v", u)
	}
}

func TestBoardSnapshotOrderAndNilSafety(t *testing.T) {
	var nilBoard *Board
	nilBoard.Start("x")
	nilBoard.Finish("x", nil)
	nilBoard.Register("y")
	if got := nilBoard.Snapshot(); got != nil {
		t.Fatalf("nil board snapshot = %v", got)
	}
	if _, ok := nilBoard.Get("x"); ok {
		t.Fatal("nil board Get reported a unit")
	}

	b := NewBoard("z2", "z1")
	b.Register("z2") // idempotent
	b.Start("z0")    // auto-registers
	snap := b.Snapshot()
	want := []string{"z2", "z1", "z0"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(snap), len(want))
	}
	for i, k := range want {
		if snap[i].Key != k {
			t.Fatalf("snapshot[%d].Key = %q, want %q", i, snap[i].Key, k)
		}
	}
}

func TestBoardConcurrentTransitions(t *testing.T) {
	b := NewBoard()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("u%d", i)
				b.Start(key)
				if g%2 == 0 {
					b.Finish(key, nil)
				} else {
					b.Finish(key, errors.New("x"))
				}
				b.Snapshot()
				b.Counts()
			}
		}(g)
	}
	wg.Wait()
	for _, u := range b.Snapshot() {
		if !u.State.Terminal() {
			t.Fatalf("unit %s not terminal: %s", u.Key, u.State)
		}
	}
}

func TestPoolReportsToBoard(t *testing.T) {
	keys := []string{"k0", "k1", "k2", "k3"}
	board := NewBoard(keys...)
	pool := Pool{
		Workers: 2,
		Key:     func(i int) string { return keys[i] },
		Board:   board,
	}
	err := pool.ForEachIndex(context.Background(), len(keys), func(ctx context.Context, i int) error {
		if i == 2 {
			return errors.New("unit 2 failed")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected pool error")
	}
	if u, _ := board.Get("k2"); u.State != StateFailed {
		t.Fatalf("k2 state = %q, want failed", u.State)
	}
	if u, _ := board.Get("k0"); u.State != StateDone {
		t.Fatalf("k0 state = %q, want done", u.State)
	}
}

func TestPoolDrainMarksBoardInterrupted(t *testing.T) {
	drain := make(chan struct{})
	close(drain)
	keys := []string{"k0", "k1", "k2"}
	board := NewBoard(keys...)
	pool := Pool{
		Workers: 1,
		Drain:   drain,
		Key:     func(i int) string { return keys[i] },
		Board:   board,
	}
	err := pool.ForEachIndex(context.Background(), len(keys), func(ctx context.Context, i int) error {
		t.Errorf("unit %d dispatched past a closed drain", i)
		return nil
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	for _, k := range keys {
		if u, _ := board.Get(k); u.State != StateInterrupted {
			t.Fatalf("%s state = %q, want interrupted", k, u.State)
		}
	}
}
