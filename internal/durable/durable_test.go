package durable

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// --- atomic writer ---

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
}

func TestWriteFileAtomicFailedWriteLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("disk on fire")
	err := WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		_, _ = io.WriteString(w, "half a replace")
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("old content clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file left behind: %v", ents)
	}
}

func TestAtomicFileAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "never.json")
	a, err := CreateAtomic(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(a, "doomed")
	a.Abort()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("aborted file exists: %v", err)
	}
}

// --- snapshots ---

type snapPayload struct {
	Name  string    `json:"name"`
	Cells []float64 `json:"cells"`
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ck")
	in := snapPayload{Name: "sweep", Cells: []float64{1.5, -2.25, 1e-9}}
	if err := SaveSnapshot(path, 3, in); err != nil {
		t.Fatal(err)
	}
	var out snapPayload
	if err := LoadSnapshot(path, 3, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Cells) != len(in.Cells) || out.Cells[1] != -2.25 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ck")
	if err := SaveSnapshot(path, 1, snapPayload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"version", func(b []byte) []byte { b[4] ^= 0xFF; return b }},
		{"bitflip payload", func(b []byte) []byte { b[len(b)-2] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"huge length", func(b []byte) []byte {
			b[6], b[7], b[8], b[9] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name+".ck")
			if err := os.WriteFile(p, tc.mutate(append([]byte(nil), blob...)), 0o644); err != nil {
				t.Fatal(err)
			}
			var out snapPayload
			err := LoadSnapshot(p, 1, &out)
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("err = %v, want *FormatError", err)
			}
			if fe.Path != p {
				t.Fatalf("FormatError.Path = %q, want %q", fe.Path, p)
			}
		})
	}
}

func TestLoadSnapshotMissingFile(t *testing.T) {
	err := LoadSnapshot(filepath.Join(t.TempDir(), "nope.ck"), 1, &snapPayload{})
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

// --- journal ---

func TestJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "units.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Put(fmt.Sprintf("cell/%d", i), []int{i, i * i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 10 || j2.Restored() != 10 {
		t.Fatalf("len=%d restored=%d, want 10/10", j2.Len(), j2.Restored())
	}
	var v []int
	ok, err := j2.Get("cell/7", &v)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if v[1] != 49 {
		t.Fatalf("cell/7 = %v", v)
	}
	if j2.Has("cell/10") {
		t.Fatal("phantom key")
	}
}

// TestJournalTornTail truncates a journal at every possible byte offset and
// verifies that reopen yields exactly the records whose writes completed,
// then keeps accepting appends — the on-disk crash model for SIGKILL during
// an fsync batch.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	j, err := OpenJournal(ref)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int64{0}
	blob := []byte{}
	for i := 0; i < 5; i++ {
		if err := j.Put(fmt.Sprintf("u%d", i), i); err != nil {
			t.Fatal(err)
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(ref)
		if err != nil {
			t.Fatal(err)
		}
		blob = b
		offsets = append(offsets, int64(len(b)))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recordEnd := func(cut int64) int {
		n := 0
		for _, off := range offsets[1:] {
			if off <= cut {
				n++
			}
		}
		return n
	}
	for cut := int64(0); cut <= int64(len(blob)); cut++ {
		p := filepath.Join(dir, fmt.Sprintf("cut%d.wal", cut))
		if err := os.WriteFile(p, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, err := OpenJournal(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got, want := jt.Len(), recordEnd(cut); got != want {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, got, want)
		}
		// The journal must keep working after tail truncation.
		if err := jt.Put("after", "tear"); err != nil {
			t.Fatalf("cut %d: append after tear: %v", cut, err)
		}
		if err := jt.Close(); err != nil {
			t.Fatal(err)
		}
		jr, err := OpenJournal(p)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if !jr.Has("after") {
			t.Fatalf("cut %d: post-tear record lost", cut)
		}
		jr.Close()
	}
}

func TestJournalInteriorCorruptionIsFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "units.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Put(fmt.Sprintf("u%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[12] ^= 0x40 // flip a bit inside the first record's payload
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenJournal(path)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FormatError", err)
	}
}

// failAfterWriter fails every write after the first n bytes — the injected
// failing io.Writer of the fault-injection checklist. Bytes accepted before
// the failure are captured, modeling a partial (torn) write.
type failAfterWriter struct {
	buf   bytes.Buffer
	n     int
	fails int
}

var errInjected = errors.New("injected write failure")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	room := w.n - w.buf.Len()
	if room <= 0 {
		w.fails++
		return 0, errInjected
	}
	if len(p) <= room {
		return w.buf.Write(p)
	}
	nn, _ := w.buf.Write(p[:room])
	w.fails++
	return nn, errInjected
}

// TestJournalMidWriteFailure drives Put into an injected failing writer and
// verifies (a) the error surfaces, (b) the unit is not marked done, and
// (c) replaying the torn bytes yields only fully-written records.
func TestJournalMidWriteFailure(t *testing.T) {
	fw := &failAfterWriter{n: 64}
	j := &Journal{
		w:         bufio.NewWriterSize(fw, 1), // write-through: every Put hits fw
		done:      map[string]json.RawMessage{},
		SyncEvery: 1 << 30, // keep syncLocked (and its nil file) out of play
	}

	var firstErr error
	puts := 0
	for i := 0; i < 10; i++ {
		err := j.Put(fmt.Sprintf("unit/%d", i), map[string]int{"i": i})
		if err != nil {
			firstErr = err
			break
		}
		puts++
	}
	if firstErr == nil {
		t.Fatal("injected writer never tripped")
	}
	if !errors.Is(firstErr, errInjected) {
		t.Fatalf("err = %v, want injected failure", firstErr)
	}
	if j.Has(fmt.Sprintf("unit/%d", puts)) {
		t.Fatal("failed unit marked done in memory")
	}

	done, _, err := replayJournal(bytes.NewReader(fw.buf.Bytes()))
	if err != nil {
		t.Fatalf("replaying torn bytes: %v", err)
	}
	if len(done) > puts {
		t.Fatalf("replay resurrected %d records, only %d completed", len(done), puts)
	}
	for i := 0; i < len(done); i++ {
		if _, ok := done[fmt.Sprintf("unit/%d", i)]; !ok {
			t.Fatalf("replayed set is not a prefix: %v", done)
		}
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if err := j.Put("k", 1); err != nil {
		t.Fatal(err)
	}
	if j.Has("k") {
		t.Fatal("nil journal remembered something")
	}
	ok, err := j.Get("k", nil)
	if ok || err != nil {
		t.Fatalf("Get on nil journal: %v %v", ok, err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- pool ---

func TestPoolPanicBecomesPanicError(t *testing.T) {
	p := Pool{Workers: 4}
	var ran atomic.Int32
	err := p.ForEachIndex(context.Background(), 8, func(ctx context.Context, i int) error {
		if i == 3 {
			panic("unit 3 went sideways")
		}
		ran.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "unit 3 went sideways" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured: %+v", pe)
	}
}

func TestPoolLowestIndexErrorWins(t *testing.T) {
	p := Pool{Workers: 8}
	e2 := errors.New("e2")
	e5 := errors.New("e5")
	for trial := 0; trial < 20; trial++ {
		// Barrier: every unit must be in flight before either error
		// returns. Without it, unit 5's failure can cancel the pool
		// before a worker runs unit 2, and the unit is (correctly)
		// skipped rather than failed — lowest-index only orders the
		// errors of units that actually ran.
		var started sync.WaitGroup
		started.Add(8)
		err := p.ForEachIndex(context.Background(), 8, func(ctx context.Context, i int) error {
			started.Done()
			started.Wait()
			switch i {
			case 2:
				return e2
			case 5:
				return e5
			}
			return nil
		})
		if !errors.Is(err, e2) {
			t.Fatalf("trial %d: err = %v, want e2", trial, err)
		}
	}
}

func TestPoolUnitTimeout(t *testing.T) {
	p := Pool{Workers: 2, UnitTimeout: 20 * time.Millisecond}
	err := p.ForEachIndex(context.Background(), 3, func(ctx context.Context, i int) error {
		if i == 1 {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestPoolDrainFinishesInFlight(t *testing.T) {
	drain := make(chan struct{})
	started := make(chan int, 16)
	var finished atomic.Int32
	p := Pool{Workers: 2, Drain: drain}
	err := p.ForEachIndex(context.Background(), 16, func(ctx context.Context, i int) error {
		started <- i
		if i == 0 {
			close(drain)
			time.Sleep(30 * time.Millisecond) // in-flight work outlives the drain signal
		}
		finished.Add(1)
		return nil
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	close(started)
	n := 0
	for range started {
		n++
	}
	if int(finished.Load()) != n {
		t.Fatalf("started %d units but finished %d: drain killed in-flight work", n, finished.Load())
	}
	if n >= 16 {
		t.Fatal("drain did not stop dispatch")
	}
}

// --- runner ---

func TestRunnerResumeSkipsJournaledUnits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c", "d"}
	var runs1 []string
	r := &Runner{Journal: j}
	rep, err := r.Run(context.Background(), keys[:2],
		func(ctx context.Context, key string) (any, error) {
			runs1 = append(runs1, key)
			return map[string]string{"result": key}, nil
		},
		func(key string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed() != 2 || len(runs1) != 2 {
		t.Fatalf("first run: %s", rep.Summary())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var runs2, restored []string
	r2 := &Runner{Journal: j2}
	rep2, err := r2.Run(context.Background(), keys,
		func(ctx context.Context, key string) (any, error) {
			runs2 = append(runs2, key)
			return map[string]string{"result": key}, nil
		},
		func(key string) error {
			var v map[string]string
			ok, err := j2.Get(key, &v)
			if !ok || err != nil || v["result"] != key {
				return fmt.Errorf("restore %s: ok=%v err=%v v=%v", key, ok, err, v)
			}
			restored = append(restored, key)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(runs2), fmt.Sprint([]string{"c", "d"}); got != want {
		t.Fatalf("resumed run re-ran %v, want %v", runs2, want)
	}
	if got, want := fmt.Sprint(restored), fmt.Sprint([]string{"a", "b"}); got != want {
		t.Fatalf("restored %v, want %v", restored, want)
	}
	if rep2.Completed() != 4 || rep2.Restored() != 2 {
		t.Fatalf("resume report: %s", rep2.Summary())
	}
}

func TestRunnerQuarantinesPanickingUnit(t *testing.T) {
	r := &Runner{}
	rep, err := r.Run(context.Background(), []string{"ok1", "boom", "ok2"},
		func(ctx context.Context, key string) (any, error) {
			if key == "boom" {
				panic("experiment exploded")
			}
			return key, nil
		},
		func(key string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed() != 2 {
		t.Fatalf("siblings of the panicking unit did not complete: %s", rep.Summary())
	}
	failed := rep.Failed()
	if len(failed) != 1 || failed[0].Key != "boom" {
		t.Fatalf("failed = %+v", failed)
	}
	var pe *PanicError
	if !errors.As(failed[0].Err, &pe) {
		t.Fatalf("err = %v, want *PanicError", failed[0].Err)
	}
}

func TestRunnerDrainStopsBetweenUnits(t *testing.T) {
	drain := make(chan struct{})
	r := &Runner{Drain: drain}
	var ran []string
	rep, err := r.Run(context.Background(), []string{"a", "b", "c"},
		func(ctx context.Context, key string) (any, error) {
			ran = append(ran, key)
			if key == "a" {
				close(drain)
			}
			return key, nil
		},
		func(key string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Fatal("report not marked interrupted")
	}
	if len(ran) != 1 {
		t.Fatalf("ran %v after drain", ran)
	}
	if rep.Completed() != 1 || len(rep.Failed()) != 0 {
		t.Fatalf("drained units counted as failures: %s", rep.Summary())
	}
}

// --- signals ---

func TestNotifyShutdownDrainProtocol(t *testing.T) {
	sd := NotifyShutdown(context.Background())
	defer sd.Stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sd.Draining:
	case <-time.After(2 * time.Second):
		t.Fatal("first signal did not start draining")
	}
	if sd.Context().Err() != nil {
		t.Fatal("first signal hard-canceled the context")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sd.Context().Done():
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not cancel the hard context")
	}
}
