// Package durable is the crash-safety layer under the mining and experiment
// pipelines. The paper's city- and borough-scale datasets (Tables II-III)
// come from hours-long grid sweeps against rate-limited services; a crash or
// a ctrl-C must not restart them from zero and re-burn API quota. The
// package provides three building blocks:
//
//   - an atomic file writer (temp file + fsync + rename) so no output file
//     is ever observed torn (atomic.go);
//   - CRC32-checked, versioned snapshot envelopes for one-shot state
//     (snapshot.go);
//   - an append-only work journal recording completed work units — grid
//     cells, elevation profiles, per-class sweeps, experiment names — that
//     is replayed on startup so a resumed run skips finished units
//     (journal.go);
//
// plus the supervision glue that makes long runs survivable: a worker pool
// with per-worker panic recovery and per-unit deadline budgets (runner.go)
// and SIGINT/SIGTERM drain handling (signal.go). A resumed run produces
// byte-identical output to an uninterrupted run; the resume tests in this
// package and in internal/segments pin that.
package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicFile is a file being written that becomes visible at its final path
// only on Commit. Until then the bytes live in a temp file in the same
// directory; Commit fsyncs the data, renames it into place, and fsyncs the
// directory so the rename itself is durable. A crash before Commit leaves
// the previous file (if any) untouched.
type AtomicFile struct {
	f    *os.File
	path string
	perm os.FileMode
	done bool
}

// CreateAtomic starts an atomic write of path. The caller must finish with
// Commit or Abort; a dropped AtomicFile leaks only a temp file, never a torn
// target.
func CreateAtomic(path string, perm os.FileMode) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("durable: creating temp for %s: %w", path, err)
	}
	return &AtomicFile{f: f, path: path, perm: perm}, nil
}

// Write implements io.Writer.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Name returns the final path the file will be committed to.
func (a *AtomicFile) Name() string { return a.path }

// Commit makes the written bytes visible at the final path: fsync, chmod,
// rename over the target, fsync the directory. After Commit the AtomicFile
// is spent.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("durable: %s already committed or aborted", a.path)
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		_ = a.f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: syncing %s: %w", a.path, err)
	}
	if err := a.f.Chmod(a.perm); err != nil {
		_ = a.f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: chmod %s: %w", a.path, err)
	}
	if err := a.f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: closing %s: %w", a.path, err)
	}
	if err := os.Rename(tmp, a.path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: renaming into %s: %w", a.path, err)
	}
	return syncDir(filepath.Dir(a.path))
}

// Abort discards the write, leaving any previous file at the path intact.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	_ = a.f.Close()
	_ = os.Remove(a.f.Name())
}

// WriteFileAtomic writes a whole file through write and commits it
// atomically: either the previous content (or absence) survives, or the new
// content is fully in place — never a torn file. Any error from write aborts
// the commit.
func WriteFileAtomic(path string, perm os.FileMode, write func(io.Writer) error) error {
	a, err := CreateAtomic(path, perm)
	if err != nil {
		return err
	}
	if err := write(a); err != nil {
		a.Abort()
		return err
	}
	return a.Commit()
}

// syncDir fsyncs a directory so a just-committed rename survives a crash.
// Filesystems that refuse to fsync directories (some CI overlays) are
// tolerated: the rename already happened, only its durability window widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
