package durable

import "elevprivacy/internal/obs"

// Telemetry for the durability layer, resolved once at package init so the
// hot paths (journal appends, pool dispatch) pay only atomic adds.
//
// Journal series answer "is checkpointing keeping up":
//
//	elevpriv_journal_appends_total   records written this process
//	elevpriv_journal_syncs_total     fsync batches closed
//	elevpriv_journal_fsync_seconds   fsync latency (flush+sync, the stall
//	                                 a Put can hit when the batch closes)
//	elevpriv_journal_restored_total  units replayed from disk at open
//
// Pool series answer "is the sweep making progress":
//
//	elevpriv_pool_units_dispatched_total  indices handed to workers
//	elevpriv_pool_units_completed_total   units that returned nil
//	elevpriv_pool_units_failed_total      units that returned an error
//	                                      (panics included)
//	elevpriv_pool_units_requeued_total    units left undispatched by a
//	                                      drain — they re-run on resume
//	elevpriv_pool_queue_depth             undispatched units right now
//	elevpriv_pool_in_flight               units executing right now
//	elevpriv_pool_unit_seconds            per-unit wall time
//
// Runner series mirror the pool's for the keyed, journaled suite loop:
//
//	elevpriv_runner_units_completed_total
//	elevpriv_runner_units_failed_total
//	elevpriv_runner_units_restored_total
var (
	journalAppends  = obs.GetCounter("elevpriv_journal_appends_total")
	journalSyncs    = obs.GetCounter("elevpriv_journal_syncs_total")
	journalFsync    = obs.GetHistogram("elevpriv_journal_fsync_seconds", nil)
	journalRestored = obs.GetCounter("elevpriv_journal_restored_total")

	poolDispatched = obs.GetCounter("elevpriv_pool_units_dispatched_total")
	poolCompleted  = obs.GetCounter("elevpriv_pool_units_completed_total")
	poolFailed     = obs.GetCounter("elevpriv_pool_units_failed_total")
	poolRequeued   = obs.GetCounter("elevpriv_pool_units_requeued_total")
	poolQueueDepth = obs.GetGauge("elevpriv_pool_queue_depth")
	poolInFlight   = obs.GetGauge("elevpriv_pool_in_flight")
	poolUnitSecs   = obs.GetHistogram("elevpriv_pool_unit_seconds", nil)

	runnerCompleted = obs.GetCounter("elevpriv_runner_units_completed_total")
	runnerFailed    = obs.GetCounter("elevpriv_runner_units_failed_total")
	runnerRestored  = obs.GetCounter("elevpriv_runner_units_restored_total")
)
