package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Snapshot envelope layout, little-endian:
//
//	magic "ELCK" | uint16 version | uint32 payload length | uint32 CRC32(payload) | payload JSON
//
// The magic is verified before any allocation, the length is bounded by
// MaxSnapshotBytes, and the CRC is checked before the payload is parsed, so
// a truncated or bit-flipped checkpoint surfaces as a *FormatError instead
// of a huge allocation or JSON garbage.

const snapshotMagic = "ELCK"

// MaxSnapshotBytes bounds a snapshot payload; anything larger is treated as
// corruption rather than trusted into an allocation.
const MaxSnapshotBytes = 64 << 20

// FormatError describes a malformed durable file (snapshot or journal): what
// was being parsed, where, and why. Callers match it with errors.As.
type FormatError struct {
	// Path is the file being parsed, when known.
	Path string
	// What names the structure that failed to parse ("snapshot magic",
	// "journal record", ...).
	What string
	// Detail explains the mismatch.
	Detail string
}

// Error implements the error interface.
func (e *FormatError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("durable: bad %s: %s", e.What, e.Detail)
	}
	return fmt.Sprintf("durable: %s: bad %s: %s", e.Path, e.What, e.Detail)
}

// WriteSnapshot writes one versioned, checksummed snapshot envelope to w.
func WriteSnapshot(w io.Writer, version uint16, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("durable: marshaling snapshot: %w", err)
	}
	if len(payload) > MaxSnapshotBytes {
		return fmt.Errorf("durable: snapshot payload %d bytes exceeds limit %d", len(payload), MaxSnapshotBytes)
	}
	var hdr [14]byte
	copy(hdr[:4], snapshotMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], version)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[10:14], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("durable: writing snapshot header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("durable: writing snapshot payload: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot envelope from r into v, requiring the given
// version. Corruption in any layer — magic, version, implausible length,
// truncation, checksum, JSON — is reported as a *FormatError.
func ReadSnapshot(r io.Reader, version uint16, v any) error {
	var hdr [14]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return &FormatError{What: "snapshot header", Detail: fmt.Sprintf("truncated: %v", err)}
	}
	if string(hdr[:4]) != snapshotMagic {
		return &FormatError{What: "snapshot magic", Detail: fmt.Sprintf("got %q, want %q", hdr[:4], snapshotMagic)}
	}
	if got := binary.LittleEndian.Uint16(hdr[4:6]); got != version {
		return &FormatError{What: "snapshot version", Detail: fmt.Sprintf("got %d, want %d", got, version)}
	}
	n := binary.LittleEndian.Uint32(hdr[6:10])
	if n > MaxSnapshotBytes {
		return &FormatError{What: "snapshot length", Detail: fmt.Sprintf("%d bytes exceeds limit %d", n, MaxSnapshotBytes)}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return &FormatError{What: "snapshot payload", Detail: fmt.Sprintf("truncated before %d bytes: %v", n, err)}
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[10:14]); got != want {
		return &FormatError{What: "snapshot checksum", Detail: fmt.Sprintf("crc32 %08x, want %08x", got, want)}
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return &FormatError{What: "snapshot payload", Detail: fmt.Sprintf("parsing JSON: %v", err)}
	}
	return nil
}

// SaveSnapshot atomically writes a snapshot file: a crash mid-save leaves
// the previous snapshot (or its absence) intact.
func SaveSnapshot(path string, version uint16, v any) error {
	return WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		return WriteSnapshot(w, version, v)
	})
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot. A missing file
// is reported as the underlying fs error (errors.Is(err, fs.ErrNotExist));
// corruption as a *FormatError carrying the path.
func LoadSnapshot(path string, version uint16, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ReadSnapshot(f, version, v); err != nil {
		var fe *FormatError
		if errors.As(err, &fe) {
			fe.Path = path
		}
		return err
	}
	return nil
}
