package survey

import (
	"math"
	"testing"
)

func TestPaperMarginalsShape(t *testing.T) {
	m := PaperMarginals()
	if m.Participants != 60 {
		t.Errorf("participants = %d", m.Participants)
	}
	var startSum float64
	for _, v := range m.StartShares {
		startSum += v
	}
	if math.Abs(startSum-1) > 1e-9 {
		t.Errorf("start shares sum to %f", startSum)
	}
	var hiding int
	for _, c := range m.HidingMapCounts {
		hiding += c
	}
	if hiding != 60 {
		t.Errorf("hiding-map counts sum to %d", hiding)
	}
	// More than 71% of participants answered yes or maybe (paper).
	frac := float64(m.HidingMapCounts[BeliefYes]+m.HidingMapCounts[BeliefMaybe]) / 60
	if frac < 0.71 {
		t.Errorf("yes+maybe = %f, paper reports > 0.71", frac)
	}
}

func TestSimulateAndAggregateRecoversMarginals(t *testing.T) {
	responses, err := Simulate(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(responses)
	if err != nil {
		t.Fatal(err)
	}
	want := PaperMarginals()
	for s, share := range want.StartShares {
		if math.Abs(agg.StartShares[s]-share) > 0.02 {
			t.Errorf("start %v = %f, want %f±0.02", s, agg.StartShares[s], share)
		}
	}
	for b, share := range want.PrivacyShares {
		if math.Abs(agg.PrivacyShares[b]-share) > 0.02 {
			t.Errorf("privacy %v = %f, want %f±0.02", b, agg.PrivacyShares[b], share)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Aggregate(nil); err == nil {
		t.Error("empty aggregate accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed simulations diverge")
		}
	}
}

func TestStringers(t *testing.T) {
	if StartHome.String() != "home" || StartElsewhere.String() != "elsewhere" {
		t.Error("StartPoint strings")
	}
	if BeliefMaybe.String() != "maybe" {
		t.Error("Belief strings")
	}
	if StartPoint(99).String() == "" || Belief(99).String() == "" {
		t.Error("unknown values must still render")
	}
}
