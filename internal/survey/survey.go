// Package survey models the paper's 60-participant user study (Fig. 1):
// where outdoor workouts start and end, and whether users believe hiding
// the map protects their privacy. The aggregator reproduces the reported
// marginals from simulated individual responses.
package survey

import (
	"fmt"
	"math/rand"
)

// StartPoint is the answer to "where does your training start?".
type StartPoint int

// Start-point categories (Fig. 1a/1b).
const (
	StartHome StartPoint = iota + 1
	StartSchool
	StartWork
	StartElsewhere
)

// String implements fmt.Stringer.
func (s StartPoint) String() string {
	switch s {
	case StartHome:
		return "home"
	case StartSchool:
		return "school"
	case StartWork:
		return "work"
	case StartElsewhere:
		return "elsewhere"
	default:
		return fmt.Sprintf("StartPoint(%d)", int(s))
	}
}

// Belief is the answer to "does not sharing location imply privacy?"
// (Fig. 1c), and equally to the hiding-the-map question.
type Belief int

// Belief categories.
const (
	BeliefYes Belief = iota + 1
	BeliefMaybe
	BeliefNo
)

// String implements fmt.Stringer.
func (b Belief) String() string {
	switch b {
	case BeliefYes:
		return "yes"
	case BeliefMaybe:
		return "maybe"
	case BeliefNo:
		return "no"
	default:
		return fmt.Sprintf("Belief(%d)", int(b))
	}
}

// Response is one participant's answers.
type Response struct {
	// Start and End are the activity endpoints.
	Start StartPoint
	End   StartPoint
	// PrivacyBelief answers "not sharing location implies privacy".
	PrivacyBelief Belief
	// HidingMapEnough answers "hiding the map and sharing statistics is
	// enough for privacy".
	HidingMapEnough Belief
}

// Marginals are the aggregate shares the paper reports.
type Marginals struct {
	// Participants is the sample size (60 in the paper).
	Participants int
	// StartShares and EndShares are fractions by category.
	StartShares map[StartPoint]float64
	EndShares   map[StartPoint]float64
	// PrivacyShares is the Fig. 1c distribution.
	PrivacyShares map[Belief]float64
	// HidingMapCounts are the raw yes/maybe/no counts (25/18/17).
	HidingMapCounts map[Belief]int
}

// PaperMarginals returns the distribution reported in the paper: 51 %
// home / 36 % school / 3 % work starts; 76 % home ends; 42 % yes / 30 %
// maybe / 28 % no on the privacy question; 25/18/17 on hiding the map.
func PaperMarginals() Marginals {
	return Marginals{
		Participants: 60,
		StartShares: map[StartPoint]float64{
			StartHome: 0.51, StartSchool: 0.36, StartWork: 0.03, StartElsewhere: 0.10,
		},
		EndShares: map[StartPoint]float64{
			StartHome: 0.76, StartSchool: 0.14, StartWork: 0.04, StartElsewhere: 0.06,
		},
		PrivacyShares: map[Belief]float64{
			BeliefYes: 0.42, BeliefMaybe: 0.30, BeliefNo: 0.28,
		},
		HidingMapCounts: map[Belief]int{
			BeliefYes: 25, BeliefMaybe: 18, BeliefNo: 17,
		},
	}
}

// Simulate draws n participant responses from the paper's marginals.
func Simulate(n int, seed int64) ([]Response, error) {
	if n < 1 {
		return nil, fmt.Errorf("survey: n must be >= 1, got %d", n)
	}
	m := PaperMarginals()
	rng := rand.New(rand.NewSource(seed))

	drawStart := func(shares map[StartPoint]float64) StartPoint {
		r := rng.Float64()
		for _, s := range []StartPoint{StartHome, StartSchool, StartWork, StartElsewhere} {
			if r < shares[s] {
				return s
			}
			r -= shares[s]
		}
		return StartElsewhere
	}
	drawBelief := func(shares map[Belief]float64) Belief {
		r := rng.Float64()
		for _, b := range []Belief{BeliefYes, BeliefMaybe, BeliefNo} {
			if r < shares[b] {
				return b
			}
			r -= shares[b]
		}
		return BeliefNo
	}

	hidingShares := map[Belief]float64{}
	var total int
	for _, c := range m.HidingMapCounts {
		total += c
	}
	for b, c := range m.HidingMapCounts {
		hidingShares[b] = float64(c) / float64(total)
	}

	out := make([]Response, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Response{
			Start:           drawStart(m.StartShares),
			End:             drawStart(m.EndShares),
			PrivacyBelief:   drawBelief(m.PrivacyShares),
			HidingMapEnough: drawBelief(hidingShares),
		})
	}
	return out, nil
}

// Aggregate computes marginals from individual responses.
func Aggregate(responses []Response) (Marginals, error) {
	if len(responses) == 0 {
		return Marginals{}, fmt.Errorf("survey: no responses")
	}
	n := float64(len(responses))
	m := Marginals{
		Participants:    len(responses),
		StartShares:     map[StartPoint]float64{},
		EndShares:       map[StartPoint]float64{},
		PrivacyShares:   map[Belief]float64{},
		HidingMapCounts: map[Belief]int{},
	}
	for _, r := range responses {
		m.StartShares[r.Start] += 1 / n
		m.EndShares[r.End] += 1 / n
		m.PrivacyShares[r.PrivacyBelief] += 1 / n
		m.HidingMapCounts[r.HidingMapEnough]++
	}
	return m, nil
}
