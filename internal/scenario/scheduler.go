package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/obs"
)

// ErrCanceled marks units skipped because an admin canceled their run or
// scenario. It unwraps to durable.ErrInterrupted so every layer that treats
// a drain as a graceful partial result (Report.Failed, SweepError.Interrupted,
// exit codes) treats a cancel the same way — canceled work is requeued work,
// not failed work.
var ErrCanceled = fmt.Errorf("scenario: canceled by admin: %w", durable.ErrInterrupted)

// Unit is one node of the work DAG.
type Unit struct {
	// Key identifies the unit in the journal, the cache, and the board.
	// Units with equal keys are the dedup mechanism: the expander emits one
	// Unit per distinct key no matter how many scenarios want it.
	Key string
	// Deps are keys that must complete before this unit runs. A failed dep
	// fails this unit without running it; an interrupted dep interrupts it.
	Deps []string
	// Run computes the unit. A non-nil result is journaled under Key.
	Run func(ctx context.Context) (any, error)
	// Restore is invoked instead of Run when Key is already journaled
	// (resume) — it reloads whatever downstream consumers need. Nil means
	// nothing to reload.
	Restore func() error
}

// Scheduler fans a DAG of keyed units across the durable pool, with the
// durability contract the sequential durable.Runner pioneered: journaled
// units restore instead of re-running, completed units journal as they
// finish, panics quarantine the unit, and a drain stops dispatch while
// in-flight units finish. The DAG is executed level by level (Kahn layers),
// each level through one pool, so independent units — different scenarios'
// mines, one scenario's train against another's eval — run concurrently.
type Scheduler struct {
	// Journal records completed units; nil runs everything, remembers
	// nothing.
	Journal *durable.Journal
	// Workers bounds per-level concurrency (0 = 1).
	Workers int
	// UnitTimeout, when positive, bounds each unit's context.
	UnitTimeout time.Duration
	// Drain, when non-nil and closed, stops dispatching new units.
	Drain <-chan struct{}
	// Board, when non-nil, receives live unit status for the admin API.
	Board *durable.Board
}

// levels computes Kahn topological layers over the units: layer k holds
// every unit whose longest dependency chain has length k. Within a layer,
// units keep input order (determinism for Workers=1 callers). Unknown deps
// and cycles are errors.
func levels(units []Unit) ([][]int, error) {
	index := make(map[string]int, len(units))
	for i, u := range units {
		if u.Key == "" {
			return nil, fmt.Errorf("scenario: unit %d has no key", i)
		}
		if _, dup := index[u.Key]; dup {
			return nil, fmt.Errorf("scenario: duplicate unit key %q", u.Key)
		}
		index[u.Key] = i
	}
	depth := make([]int, len(units))
	state := make([]int, len(units)) // 0 unvisited, 1 in-progress, 2 done
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("scenario: dependency cycle through %q", units[i].Key)
		case 2:
			return nil
		}
		state[i] = 1
		for _, dep := range units[i].Deps {
			j, ok := index[dep]
			if !ok {
				return fmt.Errorf("scenario: unit %q depends on unknown key %q", units[i].Key, dep)
			}
			if err := visit(j); err != nil {
				return err
			}
			if depth[j]+1 > depth[i] {
				depth[i] = depth[j] + 1
			}
		}
		state[i] = 2
		return nil
	}
	maxDepth := 0
	for i := range units {
		if err := visit(i); err != nil {
			return nil, err
		}
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
	}
	out := make([][]int, maxDepth+1)
	for i := range units {
		out[depth[i]] = append(out[depth[i]], i)
	}
	return out, nil
}

// Run executes the DAG. Like durable.Runner.Run, it only returns an error
// for journal I/O failures (fatal: the run cannot be made durable); unit
// failures, panics, cancels, and drains live in the Report, whose Units are
// in input order.
func (s *Scheduler) Run(ctx context.Context, units []Unit) (*durable.Report, error) {
	layers, err := levels(units)
	if err != nil {
		return nil, err
	}
	if s.Board != nil {
		for _, u := range units {
			s.Board.Register(u.Key)
		}
	}
	drain := s.Drain
	if drain == nil {
		drain = make(chan struct{}) // never closes
	}

	outcomes := make([]error, len(units))
	restored := make([]bool, len(units))
	processed := make([]bool, len(units))
	interrupted := false

	var mu sync.Mutex // guards outcomes/restored across a level's workers
	outcomeOf := func(key string) (error, bool) {
		for i, u := range units {
			if u.Key == key {
				mu.Lock()
				defer mu.Unlock()
				if !processed[i] {
					return nil, false
				}
				return outcomes[i], true
			}
		}
		return nil, false
	}

layers:
	for _, layer := range layers {
		// Drain check between levels, mirroring Runner's between-unit check.
		stopped := ctx.Err() != nil
		select {
		case <-drain:
			stopped = true
		default:
		}
		if stopped {
			interrupted = true
			break layers
		}

		// Charge units whose dependencies did not complete; run the rest.
		var runnable []int
		for _, i := range layer {
			var depErr error
			for _, dep := range units[i].Deps {
				if derr, ok := outcomeOf(dep); ok && derr != nil {
					depErr = derr
					break
				} else if !ok {
					depErr = durable.ErrInterrupted
					break
				}
			}
			if depErr != nil {
				mu.Lock()
				if errors.Is(depErr, durable.ErrInterrupted) {
					outcomes[i] = depErr
				} else {
					outcomes[i] = fmt.Errorf("scenario: dependency failed: %w", depErr)
				}
				processed[i] = true
				mu.Unlock()
				s.Board.Finish(units[i].Key, outcomes[i])
				countOutcome(outcomes[i], false)
				continue
			}
			runnable = append(runnable, i)
		}
		if len(runnable) == 0 {
			continue
		}

		pool := durable.Pool{
			Workers:     s.Workers,
			UnitTimeout: s.UnitTimeout,
			Drain:       s.Drain,
			Board:       s.Board,
			Key:         func(k int) string { return units[runnable[k]].Key },
		}
		perr := pool.ForEachIndex(ctx, len(runnable), func(uctx context.Context, k int) error {
			i := runnable[k]
			u := units[i]
			var uerr error
			var wasRestored bool
			if s.Journal.Has(u.Key) {
				uerr = runRecovered(func() error {
					if u.Restore == nil {
						return nil
					}
					return u.Restore()
				})
				wasRestored = uerr == nil
				if wasRestored {
					s.Board.Restored(u.Key)
				}
			} else {
				start := time.Now()
				var value any
				uerr = runRecovered(func() error {
					sctx, span := obs.StartSpan(uctx, "unit/"+u.Key)
					defer span.End()
					var rerr error
					value, rerr = u.Run(sctx)
					if rerr != nil {
						span.SetAttr("error", rerr.Error())
					}
					return rerr
				})
				unitSecs.ObserveSince(start)
				if uerr == nil && value != nil {
					if jerr := s.Journal.Put(u.Key, value); jerr != nil {
						// Journal I/O failure is the one fatal path: returning
						// it cancels the pool and aborts the run.
						mu.Lock()
						outcomes[i] = jerr
						processed[i] = true
						mu.Unlock()
						return jerr
					}
				}
				if uerr != nil && errors.Is(uerr, ErrCanceled) {
					s.Board.Canceled(u.Key)
				}
			}
			mu.Lock()
			outcomes[i] = uerr
			restored[i] = wasRestored
			processed[i] = true
			mu.Unlock()
			countOutcome(uerr, wasRestored)
			// Unit failures stay in the report; only journal errors (above)
			// propagate to the pool.
			return nil
		})
		if perr != nil {
			switch {
			case errors.Is(perr, durable.ErrInterrupted),
				errors.Is(perr, context.Canceled),
				errors.Is(perr, context.DeadlineExceeded):
				interrupted = true
				break layers
			default:
				// A journal Put failure: flush what we have and abort.
				report := s.buildReport(units, outcomes, restored, processed, interrupted)
				if ferr := s.Journal.Flush(); ferr != nil {
					return report, ferr
				}
				return report, perr
			}
		}
	}

	report := s.buildReport(units, outcomes, restored, processed, interrupted)
	if err := s.Journal.Flush(); err != nil {
		return report, err
	}
	return report, nil
}

// buildReport assembles the per-unit outcomes in input order, charging
// unprocessed units ErrInterrupted (requeued work a resume picks up).
func (s *Scheduler) buildReport(units []Unit, outcomes []error, restored, processed []bool, interrupted bool) *durable.Report {
	report := &durable.Report{
		Units:       make([]durable.UnitStatus, 0, len(units)),
		Interrupted: interrupted,
	}
	for i, u := range units {
		err := outcomes[i]
		if !processed[i] {
			err = durable.ErrInterrupted
			s.Board.Interrupt(u.Key)
			unitsInterrupted.Inc()
		}
		report.Units = append(report.Units, durable.UnitStatus{
			Key: u.Key, Restored: restored[i], Err: err,
		})
	}
	return report
}

// countOutcome maintains the elevpriv_scenario_units_total series.
func countOutcome(err error, wasRestored bool) {
	switch {
	case err == nil && wasRestored:
		unitsRestored.Inc()
	case err == nil:
		unitsDone.Inc()
	case errors.Is(err, ErrCanceled):
		unitsCanceled.Inc()
	case errors.Is(err, durable.ErrInterrupted):
		unitsInterrupted.Inc()
	default:
		unitsFailed.Inc()
	}
}

// runRecovered invokes fn, converting a panic into a *durable.PanicError so
// a panicking unit is quarantined instead of killing its siblings.
func runRecovered(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &durable.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
