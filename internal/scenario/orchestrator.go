package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"elevprivacy"
	"elevprivacy/internal/durable"
	"elevprivacy/internal/obs"
)

// Options configures an Orchestrator.
type Options struct {
	// Journal records completed units for resume; nil remembers nothing.
	Journal *durable.Journal
	// Cache is the content-addressed artifact store. Required: the cache is
	// the data plane between stages.
	Cache *Cache
	// CheckpointDir, when non-empty, holds per-mine-unit sub-journals so a
	// drained sweep resumes mid-mine, not just mid-DAG.
	CheckpointDir string
	// Drain, when non-nil and closed, stops dispatch (SIGINT/SIGTERM via
	// durable.NotifyShutdown). The admin API's cancel merges into the same
	// signal.
	Drain <-chan struct{}
	// Workers overrides the spec's scheduler concurrency when positive.
	Workers int
	// UnitTimeout, when positive, bounds each unit's context.
	UnitTimeout time.Duration
}

// Orchestrator owns one spec's run: the expanded unit DAG, the live status
// board the admin API reads, the cancel state, and the HTTP-attempt ledger.
// Build with New, execute once with Run; the admin handler stays valid
// before, during, and after the run.
type Orchestrator struct {
	spec        *Spec
	cache       *Cache
	journal     *durable.Journal
	ckptDir     string
	workers     int
	unitTimeout time.Duration

	units    []Unit
	owners   map[string][]string // unit key -> owning scenario names
	unitKeys map[string][]string // scenario name -> its unit keys in stage order
	board    *durable.Board

	externalDrain <-chan struct{}
	drain         chan struct{} // merged drain the units and scheduler watch
	cancelCh      chan struct{}
	cancelOnce    sync.Once
	mergeOnce     sync.Once

	mu       sync.Mutex
	canceled map[string]bool // scenario name -> admin-canceled

	httpAttempts atomic.Int64
	state        atomic.Value // "pending" | "running" | "done"
	startedAt    time.Time
	result       atomic.Pointer[Result]
}

// New validates the options, expands the spec into its deduped unit DAG, and
// returns an orchestrator ready to Run.
func New(spec *Spec, opts Options) (*Orchestrator, error) {
	if spec == nil {
		return nil, fmt.Errorf("scenario: nil spec")
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if opts.Cache == nil {
		return nil, fmt.Errorf("scenario: an artifact cache is required (stages exchange data through it)")
	}
	workers := spec.Workers
	if opts.Workers > 0 {
		workers = opts.Workers
	}
	o := &Orchestrator{
		spec:          spec,
		cache:         opts.Cache,
		journal:       opts.Journal,
		ckptDir:       opts.CheckpointDir,
		workers:       workers,
		unitTimeout:   opts.UnitTimeout,
		owners:        make(map[string][]string),
		unitKeys:      make(map[string][]string),
		externalDrain: opts.Drain,
		drain:         make(chan struct{}),
		cancelCh:      make(chan struct{}),
		canceled:      make(map[string]bool),
	}
	o.state.Store("pending")
	o.units = o.expand()
	o.board = durable.NewBoard()
	for _, u := range o.units {
		o.board.Register(u.Key)
	}
	return o, nil
}

// Board exposes the live unit status surface.
func (o *Orchestrator) Board() *durable.Board { return o.board }

// Units returns the expanded unit count (after dedup).
func (o *Orchestrator) Units() int { return len(o.units) }

// HTTPAttempts returns the HTTP attempts issued by mine units so far.
func (o *Orchestrator) HTTPAttempts() int64 { return o.httpAttempts.Load() }

// ScenarioResult is one scenario's outcome.
type ScenarioResult struct {
	Name        string `json:"name"`
	ThreatModel string `json:"threat_model"`
	Defense     string `json:"defense"`
	Model       string `json:"model"`
	// Status is done, failed, interrupted, or canceled.
	Status  string               `json:"status"`
	Metrics *elevprivacy.Metrics `json:"metrics,omitempty"`
	Err     string               `json:"error,omitempty"`
}

// Result is the run's outcome: per-scenario results in spec order plus the
// run-level ledgers (cache traffic, HTTP attempts, the unit report).
type Result struct {
	Spec         string           `json:"spec"`
	Scenarios    []ScenarioResult `json:"scenarios"`
	Cache        CacheStats       `json:"cache"`
	HTTPAttempts int64            `json:"http_attempts"`
	Interrupted  bool             `json:"interrupted"`
	Elapsed      time.Duration    `json:"-"`
	Report       *durable.Report  `json:"-"`
}

// ScenarioError is one scenario's failure inside a SweepError.
type ScenarioError struct {
	Name string
	Err  error
}

// SweepError aggregates a run's failures, mirroring segments.SweepError:
// per-scenario errors plus an optional fatal run-level error (journal I/O).
type SweepError struct {
	PerScenario []ScenarioError
	// Fatal is a run-aborting error (the journal could not be written), nil
	// when the run itself completed.
	Fatal   error
	Elapsed time.Duration
}

// Error implements the error interface.
func (e *SweepError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario: %d scenario(s) failed", len(e.PerScenario))
	if e.Fatal != nil {
		fmt.Fprintf(&sb, " (fatal: %v)", e.Fatal)
	}
	sb.WriteString(":")
	for _, se := range e.PerScenario {
		fmt.Fprintf(&sb, " %s: %v;", se.Name, se.Err)
	}
	return strings.TrimSuffix(sb.String(), ";")
}

// Unwrap exposes the per-scenario errors to errors.Is / errors.As.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, 0, len(e.PerScenario)+1)
	for _, se := range e.PerScenario {
		errs = append(errs, se.Err)
	}
	if e.Fatal != nil {
		errs = append(errs, e.Fatal)
	}
	return errs
}

// Interrupted reports whether the failure is (entirely) a graceful drain or
// admin cancel rather than real errors: every per-scenario error unwraps to
// durable.ErrInterrupted and nothing was fatal. CLIs use it to exit 0 with a
// partial summary, exactly like a mining sweep's drain.
func (e *SweepError) Interrupted() bool {
	if e == nil || e.Fatal != nil {
		return false
	}
	for _, se := range e.PerScenario {
		if !errors.Is(se.Err, durable.ErrInterrupted) {
			return false
		}
	}
	return len(e.PerScenario) > 0
}

// Run executes the DAG once. The *SweepError is nil when every scenario
// completed; a drained or canceled run reports Interrupted() == true. The
// Result is always returned, partial or not.
func (o *Orchestrator) Run(ctx context.Context) (*Result, *SweepError) {
	o.startedAt = time.Now()
	o.state.Store("running")

	// Merge the external drain (signals) and the admin cancel into the one
	// channel the scheduler, the units, and the miners watch. A nil external
	// drain is a never-ready select case.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-o.externalDrain:
		case <-o.cancelCh:
		case <-done:
			return
		}
		o.mergeOnce.Do(func() { close(o.drain) })
	}()

	ctx, span := obs.StartSpan(ctx, "orchestrate")
	span.SetAttr("spec", o.spec.Name)
	span.SetAttr("units", fmt.Sprint(len(o.units)))
	defer span.End()

	sched := &Scheduler{
		Journal:     o.journal,
		Workers:     o.workers,
		UnitTimeout: o.unitTimeout,
		Drain:       o.drain,
		Board:       o.board,
	}
	report, fatal := sched.Run(ctx, o.units)
	result, sweepErr := o.assemble(report, fatal)
	o.result.Store(result)
	o.state.Store("done")
	return result, sweepErr
}

// assemble folds the unit report into per-scenario outcomes.
func (o *Orchestrator) assemble(report *durable.Report, fatal error) (*Result, *SweepError) {
	byKey := make(map[string]durable.UnitStatus, len(report.Units))
	for _, u := range report.Units {
		byKey[u.Key] = u
	}
	result := &Result{
		Spec:         o.spec.Name,
		Cache:        o.cache.Stats(),
		HTTPAttempts: o.httpAttempts.Load(),
		Interrupted:  report.Interrupted,
		Elapsed:      time.Since(o.startedAt),
		Report:       report,
	}
	var sweep SweepError
	for i := range o.spec.Scenarios {
		sc := &o.spec.Scenarios[i]
		sr := ScenarioResult{
			Name:        sc.Name,
			ThreatModel: sc.ThreatModel,
			Defense:     sc.Defense,
			Model:       sc.Model,
			Status:      "done",
		}
		var firstErr error
		for _, key := range o.unitKeys[sc.Name] {
			if u, ok := byKey[key]; ok && u.Err != nil {
				firstErr = u.Err
				break
			}
		}
		switch {
		case firstErr == nil:
			var ev evalArtifact
			if err := o.fetch(sc.evalKey(), &ev); err != nil {
				firstErr = err
				sr.Status = "failed"
				sr.Err = err.Error()
			} else {
				m := ev.Metrics
				sr.Metrics = &m
			}
		case errors.Is(firstErr, ErrCanceled) || o.scenarioCanceled(sc.Name):
			sr.Status = "canceled"
			sr.Err = firstErr.Error()
		case errors.Is(firstErr, durable.ErrInterrupted):
			sr.Status = "interrupted"
			sr.Err = firstErr.Error()
		default:
			sr.Status = "failed"
			sr.Err = firstErr.Error()
		}
		if firstErr != nil {
			sweep.PerScenario = append(sweep.PerScenario, ScenarioError{Name: sc.Name, Err: firstErr})
		}
		result.Scenarios = append(result.Scenarios, sr)
	}
	sweep.Fatal = fatal
	sweep.Elapsed = result.Elapsed
	if len(sweep.PerScenario) == 0 && sweep.Fatal == nil {
		return result, nil
	}
	return result, &sweep
}

// CancelRun cancels the whole run: dispatch stops, in-flight units finish,
// the journal flushes — indistinguishable from a signal drain, and equally
// resumable.
func (o *Orchestrator) CancelRun() {
	cancels.Inc()
	o.cancelOnce.Do(func() { close(o.cancelCh) })
}

// CancelScenario cancels one scenario by name. Units shared with live
// scenarios keep running; units owned only by canceled scenarios are skipped
// with ErrCanceled.
func (o *Orchestrator) CancelScenario(name string) error {
	if _, ok := o.unitKeys[name]; !ok {
		return fmt.Errorf("scenario: no scenario named %q", name)
	}
	o.mu.Lock()
	o.canceled[name] = true
	all := len(o.canceled) == len(o.spec.Scenarios)
	o.mu.Unlock()
	cancels.Inc()
	if all {
		// Nothing left to run for: drain the whole sweep.
		o.cancelOnce.Do(func() { close(o.cancelCh) })
	}
	return nil
}

// scenarioCanceled reports whether the named scenario was admin-canceled.
func (o *Orchestrator) scenarioCanceled(name string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.canceled[name]
}

// keyCanceled reports whether every scenario that wants this unit has been
// canceled.
func (o *Orchestrator) keyCanceled(key string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	owners := o.owners[key]
	if len(owners) == 0 {
		return false
	}
	for _, name := range owners {
		if !o.canceled[name] {
			return false
		}
	}
	return true
}
