package scenario

import "elevprivacy/internal/obs"

// Orchestrator telemetry, elevpriv_scenario_*:
//
//	elevpriv_scenario_cache_hits_total    artifacts served from the cache
//	elevpriv_scenario_cache_misses_total  artifacts that had to be computed
//	elevpriv_scenario_cache_puts_total    artifacts written to the cache
//	elevpriv_scenario_units_total{state}  unit outcomes by terminal state
//	elevpriv_scenario_cancels_total       admin cancel requests honored
//	elevpriv_scenario_unit_seconds        per-unit wall time (fresh runs)
//
// The cache counters are the dedup proof the smoke test asserts on: a second
// scenario sharing a mining config shows hits > 0 and re-issues zero HTTP
// calls.
var (
	cacheHits   = obs.GetCounter("elevpriv_scenario_cache_hits_total")
	cacheMisses = obs.GetCounter("elevpriv_scenario_cache_misses_total")
	cachePuts   = obs.GetCounter("elevpriv_scenario_cache_puts_total")

	unitsDone        = obs.GetCounter(`elevpriv_scenario_units_total{state="done"}`)
	unitsRestored    = obs.GetCounter(`elevpriv_scenario_units_total{state="restored"}`)
	unitsFailed      = obs.GetCounter(`elevpriv_scenario_units_total{state="failed"}`)
	unitsInterrupted = obs.GetCounter(`elevpriv_scenario_units_total{state="interrupted"}`)
	unitsCanceled    = obs.GetCounter(`elevpriv_scenario_units_total{state="canceled"}`)

	cancels  = obs.GetCounter("elevpriv_scenario_cancels_total")
	unitSecs = obs.GetHistogram("elevpriv_scenario_unit_seconds", nil)
)
