// Package scenario turns a declarative experiment spec — city model,
// population size, grid resolution, defense, model, threat model, seed —
// into a DAG of work units (mine → featurize → train → eval), schedules the
// units across the durable pool with per-unit checkpoint/resume, and dedupes
// shared intermediates through a content-addressed artifact cache: a mined
// dataset or trained model produced by one scenario is reused byte-identically
// by every scenario that shares its config prefix. An admin HTTP handler
// exposes the live run (list/inspect/cancel, unit status, cache counters).
package scenario

import (
	"fmt"
	"hash/fnv"
)

// Fingerprint collapses a config value into a short stable token for journal
// and cache keys. It hashes the value's Go-syntax representation (%#v), which
// includes the package-qualified type name and every field, so any knob
// change — scale, seed, folds, a renamed field — changes the fingerprint and
// checkpoints from a differently-configured run are never misapplied.
//
// This is the same construction experiments.configFingerprint has always
// used; it lives here so every stage config (mine, featurize, train, eval)
// shares one implementation, and it is pinned by golden tests — the exact
// output is a compatibility surface for on-disk journals and artifact caches.
func Fingerprint(v any) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", v)
	return fmt.Sprintf("%016x", h.Sum64())
}
