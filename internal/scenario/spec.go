package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"elevprivacy/internal/terrain"
)

// Threat models, matching the paper's taxonomy (§III): TM-1 infers the
// region of a new activity from the target's own history, TM-2 the borough
// within a known city, TM-3 the city with no prior knowledge.
const (
	TM1 = "tm1"
	TM2 = "tm2"
	TM3 = "tm3"
)

// Defense names accepted in a spec.
const (
	DefenseNone         = "none"
	DefenseNoise        = "noise"
	DefenseQuantize     = "quantize"
	DefenseZeroBaseline = "zero-baseline"
	DefenseSummaryStats = "summary-stats"
)

// Spec is a declarative description of an orchestrator run: a named batch of
// scenarios that share one journal, one artifact cache, and one rate-limit
// budget. Loaded from JSON (see examples/scenarios/).
type Spec struct {
	// Name labels the run in the admin API and logs.
	Name string `json:"name"`
	// RateLimit caps each mining client at this many requests/sec
	// (0 = unlimited).
	RateLimit float64 `json:"rps,omitempty"`
	// Workers bounds scheduler concurrency (0 = 1).
	Workers int `json:"workers,omitempty"`
	// Scenarios are the runs to expand into work units.
	Scenarios []Scenario `json:"scenarios"`
}

// Scenario is one (city model, population, grid, defense, model, threat
// model, seed) point. Zero-valued knobs pick the defaults documented on each
// field.
type Scenario struct {
	// Name labels the scenario; must be unique within the spec.
	Name string `json:"name"`
	// ThreatModel is tm1, tm2, or tm3 (default tm3).
	ThreatModel string `json:"threat_model,omitempty"`
	// City names the known city for tm2 (full name or abbreviation).
	City string `json:"city,omitempty"`
	// Cities is the tm3 city model (default: the paper's full ten-city
	// world).
	Cities []string `json:"cities,omitempty"`
	// Population is the synthetic population per class: segments per city
	// (tm3) or per borough-city (tm2), activity-history scale for tm1.
	// Default 40.
	Population int `json:"population,omitempty"`
	// Grid is the miner's grid divisions per side (default 4).
	Grid int `json:"grid,omitempty"`
	// Samples is the elevation samples per profile (default 60).
	Samples int `json:"samples,omitempty"`
	// Defense is the countermeasure applied before featurization (default
	// none).
	Defense string `json:"defense,omitempty"`
	// DefenseStrength parameterizes the defense: noise sigma in meters
	// (default 5), quantization step in meters (default 10).
	DefenseStrength float64 `json:"defense_strength,omitempty"`
	// Model picks the classifier: svm or mlp (default svm). The random
	// forest the paper also evaluates is excluded here: the train stage
	// persists its model as a cacheable artifact, and the forest backend
	// does not support persistence.
	Model string `json:"model,omitempty"`
	// Folds is the cross-validation fold count (default 5).
	Folds int `json:"folds,omitempty"`
	// NGram is the n-gram order (default 8, the paper's setting).
	NGram int `json:"ngram,omitempty"`
	// MaxFeatures bounds the n-gram vocabulary (default 1024).
	MaxFeatures int `json:"max_features,omitempty"`
	// Float32 trains through the reduced-precision kernel path. Only the
	// mlp model has one; setting it with svm is rejected rather than
	// silently ignored, since the flag changes the train fingerprint.
	Float32 bool `json:"float32,omitempty"`
	// Seed drives all randomness for the scenario (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// LoadSpec reads, defaults, and validates a spec file.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(raw)
}

// ParseSpec decodes a spec from JSON, rejecting unknown fields so a typoed
// knob fails loudly instead of silently running defaults.
func ParseSpec(raw []byte) (*Spec, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Normalize fills defaults and validates in place.
func (s *Spec) Normalize() error {
	if s.Name == "" {
		s.Name = "run"
	}
	if s.Workers < 1 {
		s.Workers = 1
	}
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("scenario: spec %q has no scenarios", s.Name)
	}
	seen := make(map[string]bool, len(s.Scenarios))
	for i := range s.Scenarios {
		sc := &s.Scenarios[i]
		if sc.Name == "" {
			sc.Name = fmt.Sprintf("scenario-%d", i)
		}
		if seen[sc.Name] {
			return fmt.Errorf("scenario: duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.normalize(); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	return nil
}

func (sc *Scenario) normalize() error {
	if sc.ThreatModel == "" {
		sc.ThreatModel = TM3
	}
	if sc.Population == 0 {
		sc.Population = 40
	}
	if sc.Grid == 0 {
		sc.Grid = 4
	}
	if sc.Samples == 0 {
		sc.Samples = 60
	}
	if sc.Defense == "" {
		sc.Defense = DefenseNone
	}
	if sc.DefenseStrength == 0 {
		switch sc.Defense {
		case DefenseNoise:
			sc.DefenseStrength = 5
		case DefenseQuantize:
			sc.DefenseStrength = 10
		}
	}
	if sc.Model == "" {
		sc.Model = "svm"
	}
	if sc.Folds == 0 {
		sc.Folds = 5
	}
	if sc.NGram == 0 {
		sc.NGram = 8
	}
	if sc.MaxFeatures == 0 {
		sc.MaxFeatures = 1024
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}

	switch sc.ThreatModel {
	case TM1:
		if sc.City != "" || len(sc.Cities) != 0 {
			return fmt.Errorf("tm1 takes no city model (it uses the user-specific dataset)")
		}
	case TM2:
		if sc.City == "" {
			return fmt.Errorf("tm2 requires a city")
		}
		city, err := terrain.CityByName(terrain.World(), sc.City)
		if err != nil {
			return err
		}
		if len(city.Boroughs) == 0 {
			return fmt.Errorf("city %s has no borough decomposition", city.Name)
		}
		sc.City = city.Name // canonicalize abbreviations so fingerprints agree
	case TM3:
		world := terrain.World()
		if len(sc.Cities) == 0 {
			for _, c := range world {
				sc.Cities = append(sc.Cities, c.Name)
			}
		} else {
			for i, name := range sc.Cities {
				c, err := terrain.CityByName(world, name)
				if err != nil {
					return err
				}
				sc.Cities[i] = c.Name
			}
		}
		// Sorted city lists make the mine fingerprint order-independent:
		// {SF, SEA} and {SEA, SF} are the same city model.
		sort.Strings(sc.Cities)
		if len(sc.Cities) < 2 {
			return fmt.Errorf("tm3 needs at least 2 cities, got %d", len(sc.Cities))
		}
	default:
		return fmt.Errorf("unknown threat model %q (want tm1, tm2, or tm3)", sc.ThreatModel)
	}

	switch sc.Defense {
	case DefenseNone, DefenseNoise, DefenseQuantize, DefenseZeroBaseline, DefenseSummaryStats:
	default:
		return fmt.Errorf("unknown defense %q", sc.Defense)
	}
	switch sc.Model {
	case "svm", "mlp":
	case "rfc":
		return fmt.Errorf("model rfc cannot be used in scenarios: the train stage persists the model and the forest backend does not support persistence (use svm or mlp)")
	default:
		return fmt.Errorf("unknown model %q (want svm or mlp)", sc.Model)
	}
	if sc.Float32 && sc.Model != "mlp" {
		return fmt.Errorf("float32 training requires model mlp, not %q", sc.Model)
	}
	if sc.Folds < 2 {
		return fmt.Errorf("folds = %d, want >= 2", sc.Folds)
	}
	if sc.Samples < sc.NGram+1 {
		return fmt.Errorf("samples = %d too short for %d-grams", sc.Samples, sc.NGram)
	}
	if sc.Population < 1 || sc.Grid < 1 {
		return fmt.Errorf("population and grid must be positive")
	}
	return nil
}

// Stage configs: plain exported-field structs hashed with Fingerprint. Every
// field that changes the artifact must appear here; each stage embeds the
// previous stage's fingerprint, so a change anywhere upstream ripples into
// every downstream key — that prefix-chaining is what makes cache sharing
// safe. These shapes are a compatibility surface (journals and artifact
// caches on disk are keyed by them); renaming a field invalidates everything,
// which the golden tests make a deliberate act.

type mineConfig struct {
	ThreatModel string
	City        string   // tm2: the known city
	Cities      []string // tm3: sorted city model
	Population  int
	Grid        int
	Samples     int
	Seed        int64
}

type featConfig struct {
	Mine     string // upstream mine fingerprint
	Defense  string
	Strength float64
	Seed     int64
}

type trainConfig struct {
	Feat        string // upstream feat fingerprint
	Model       string
	NGram       int
	MaxFeatures int
	Float32     bool
	Seed        int64
}

type evalConfig struct {
	Train string // upstream train fingerprint
	Folds int
}

func (sc *Scenario) mineConfig() mineConfig {
	return mineConfig{
		ThreatModel: sc.ThreatModel,
		City:        sc.City,
		Cities:      append([]string(nil), sc.Cities...),
		Population:  sc.Population,
		Grid:        sc.Grid,
		Samples:     sc.Samples,
		Seed:        sc.Seed,
	}
}

func (sc *Scenario) featConfig() featConfig {
	return featConfig{
		Mine:     Fingerprint(sc.mineConfig()),
		Defense:  sc.Defense,
		Strength: sc.DefenseStrength,
		Seed:     sc.Seed,
	}
}

func (sc *Scenario) trainConfig() trainConfig {
	return trainConfig{
		Feat:        Fingerprint(sc.featConfig()),
		Model:       sc.Model,
		NGram:       sc.NGram,
		MaxFeatures: sc.MaxFeatures,
		Float32:     sc.Float32,
		Seed:        sc.Seed,
	}
}

func (sc *Scenario) evalConfig() evalConfig {
	return evalConfig{
		Train: Fingerprint(sc.trainConfig()),
		Folds: sc.Folds,
	}
}

// Stage keys, shared verbatim between the journal and the artifact cache.

func (sc *Scenario) mineKey() string  { return "mine/" + Fingerprint(sc.mineConfig()) }
func (sc *Scenario) featKey() string  { return "feat/" + Fingerprint(sc.featConfig()) }
func (sc *Scenario) trainKey() string { return "train/" + Fingerprint(sc.trainConfig()) }
func (sc *Scenario) evalKey() string  { return "eval/" + Fingerprint(sc.evalConfig()) }
