package scenario

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"elevprivacy/internal/durable"
)

// miningSpec is a small tm3 sweep whose two scenarios share one mine config
// (identical city model / population / grid / samples / seed) and differ only
// in defense — the canonical dedup shape.
func miningSpec(rps float64) *Spec {
	return &Spec{
		Name:      "test-sweep",
		RateLimit: rps,
		Workers:   2,
		Scenarios: []Scenario{
			{Name: "plain", Cities: []string{"SF", "LA"}, Population: 8, Grid: 2,
				Samples: 16, NGram: 4, MaxFeatures: 128, Folds: 2, Seed: 7},
			{Name: "quantized", Cities: []string{"SF", "LA"}, Population: 8, Grid: 2,
				Samples: 16, NGram: 4, MaxFeatures: 128, Folds: 2, Seed: 7,
				Defense: DefenseQuantize, DefenseStrength: 10},
		},
	}
}

func openRunState(t *testing.T, dir string, resume bool) (*durable.Journal, *Cache) {
	t.Helper()
	path := filepath.Join(dir, "scenario.journal")
	if !resume {
		path = filepath.Join(dir, "scenario-fresh-"+t.Name()+".journal")
	}
	j, err := durable.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	cache, err := OpenCache(filepath.Join(dir, "artifacts"))
	if err != nil {
		t.Fatal(err)
	}
	return j, cache
}

// Two scenarios sharing a mining config must produce exactly one mined
// artifact: one mine unit in the DAG, one environment (one set of HTTP
// sweeps), and cache hits for every downstream consumer. A second run over
// the same cache recomputes nothing and issues zero HTTP calls.
func TestDedupSharedMine(t *testing.T) {
	dir := t.TempDir()
	spec := miningSpec(0)
	j, cache := openRunState(t, dir, false)
	orch, err := New(spec, Options{Journal: j, Cache: cache, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// 2 scenarios x 4 stages, minus the shared mine unit.
	if got := orch.Units(); got != 7 {
		t.Fatalf("Units() = %d, want 7 (shared mine deduped)", got)
	}

	envBefore := envStarts.Load()
	hitsBefore := cacheHits.Value()
	result, sweepErr := orch.Run(context.Background())
	if sweepErr != nil {
		t.Fatalf("sweep failed: %v", sweepErr)
	}
	if got := envStarts.Load() - envBefore; got != 1 {
		t.Errorf("mining environments started = %d, want exactly 1 for the shared config", got)
	}
	if result.HTTPAttempts == 0 {
		t.Error("expected the shared mine to issue HTTP calls")
	}
	if result.Cache.Hits == 0 {
		t.Error("downstream consumers of the shared artifact registered no cache hits")
	}
	if got := cacheHits.Value() - hitsBefore; got == 0 {
		t.Error("elevpriv_scenario_cache_hits_total did not move")
	}
	for _, sr := range result.Scenarios {
		if sr.Status != "done" || sr.Metrics == nil {
			t.Errorf("scenario %s: status=%s metrics=%v", sr.Name, sr.Status, sr.Metrics)
		}
	}

	// Same cache, fresh journal: everything is served from the cache — zero
	// new environments, zero HTTP attempts, identical metrics.
	j2path := filepath.Join(dir, "second.journal")
	j2, err := durable.OpenJournal(j2path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	orch2, err := New(miningSpec(0), Options{Journal: j2, Cache: cache, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	envBefore = envStarts.Load()
	result2, sweepErr2 := orch2.Run(context.Background())
	if sweepErr2 != nil {
		t.Fatalf("second sweep failed: %v", sweepErr2)
	}
	if got := envStarts.Load() - envBefore; got != 0 {
		t.Errorf("cache-served run started %d environments, want 0", got)
	}
	if result2.HTTPAttempts != 0 {
		t.Errorf("cache-served run issued %d HTTP attempts, want 0", result2.HTTPAttempts)
	}
	for i, sr := range result2.Scenarios {
		want := result.Scenarios[i]
		if sr.Metrics == nil || want.Metrics == nil || *sr.Metrics != *want.Metrics {
			t.Errorf("scenario %s metrics drifted across cache-served rerun: %+v vs %+v",
				sr.Name, sr.Metrics, want.Metrics)
		}
	}

	// Journal replay (same journal, third orchestrator): units restore
	// instead of re-running.
	orch3, err := New(miningSpec(0), Options{Journal: j2, Cache: cache, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, sweepErr3 := orch3.Run(context.Background()); sweepErr3 != nil {
		t.Fatalf("journal-replay run failed: %v", sweepErr3)
	}
	for _, u := range orch3.Board().Snapshot() {
		if u.State != durable.StateRestored {
			t.Errorf("unit %s state = %s, want restored on journal replay", u.Key, u.State)
		}
	}
}

// An admin cancel landing mid-run must drain gracefully: the in-flight mine
// checkpoints its cells, every scenario reports an interrupted-flavored
// outcome (SweepError.Interrupted() == true), and a resume completes the
// sweep.
func TestAdminCancelMidRunDrains(t *testing.T) {
	dir := t.TempDir()
	// Rate-limit mining so the cancel reliably lands while the mine unit is
	// in flight: a 4x4 grid issues ~32 cell queries per class, and at 5 rps
	// (burst 10) that holds the mine open for seconds.
	spec := miningSpec(5)
	for i := range spec.Scenarios {
		spec.Scenarios[i].Grid = 4
		spec.Scenarios[i].Population = 12
	}
	j, cache := openRunState(t, dir, false)
	orch, err := New(spec, Options{Journal: j, Cache: cache, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(orch.Handler())
	defer srv.Close()

	type runResult struct {
		result   *Result
		sweepErr *SweepError
	}
	done := make(chan runResult, 1)
	go func() {
		r, e := orch.Run(context.Background())
		done <- runResult{r, e}
	}()

	// Wait until a unit is actually running, then cancel over the API.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no unit entered running state in time")
		}
		resp, err := http.Get(srv.URL + "/api/run")
		if err != nil {
			t.Fatal(err)
		}
		var status struct {
			State  string         `json:"state"`
			Counts map[string]int `json:"counts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if status.State == "running" && status.Counts["running"] > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Post(srv.URL+"/api/run/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}

	var rr runResult
	select {
	case rr = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
	if rr.sweepErr == nil {
		t.Fatal("canceled run reported full success — cancel landed after completion?")
	}
	if !rr.sweepErr.Interrupted() {
		t.Fatalf("SweepError.Interrupted() = false: %v", rr.sweepErr)
	}
	if !rr.result.Interrupted {
		t.Error("result not marked interrupted")
	}

	// The cancel is a drain, not a loss: resuming with the same journal,
	// cache, and checkpoint dir (and no rate limit) completes the sweep.
	// Same mine config as the canceled run, so the sub-journal's cells count.
	resumed := miningSpec(0)
	for i := range resumed.Scenarios {
		resumed.Scenarios[i].Grid = 4
		resumed.Scenarios[i].Population = 12
	}
	orch2, err := New(resumed, Options{Journal: j, Cache: cache, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	result2, sweepErr2 := orch2.Run(context.Background())
	if sweepErr2 != nil {
		t.Fatalf("resumed run failed: %v", sweepErr2)
	}
	for _, sr := range result2.Scenarios {
		if sr.Status != "done" || sr.Metrics == nil {
			t.Errorf("resumed scenario %s: status=%s", sr.Name, sr.Status)
		}
	}
}

// Canceling one scenario skips only the units no live scenario wants: the
// shared mine still runs for the surviving scenario; the canceled scenario's
// private units are skipped with a canceled (resumable) outcome.
func TestCancelScenarioKeepsSharedUnits(t *testing.T) {
	dir := t.TempDir()
	spec := miningSpec(0)
	j, cache := openRunState(t, dir, false)
	orch, err := New(spec, Options{Journal: j, Cache: cache, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(orch.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/api/scenarios/quantized/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario cancel returned %d", resp.StatusCode)
	}
	if resp, err := http.Post(srv.URL+"/api/scenarios/ghost/cancel", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown scenario cancel returned %d, want 404", resp.StatusCode)
		}
	}

	result, sweepErr := orch.Run(context.Background())
	if sweepErr == nil || !sweepErr.Interrupted() {
		t.Fatalf("sweep error = %v, want interrupted-only (the canceled scenario)", sweepErr)
	}
	byName := map[string]ScenarioResult{}
	for _, sr := range result.Scenarios {
		byName[sr.Name] = sr
	}
	if sr := byName["plain"]; sr.Status != "done" || sr.Metrics == nil {
		t.Errorf("surviving scenario = %+v, want done with metrics", sr)
	}
	if sr := byName["quantized"]; sr.Status != "canceled" {
		t.Errorf("canceled scenario status = %s, want canceled", sr.Status)
	}

	// The shared mine ran for the survivor; the canceled scenario's private
	// feat unit did not.
	plainMine := spec.Scenarios[0].mineKey()
	if u, ok := orch.Board().Get(plainMine); !ok || u.State != durable.StateDone {
		t.Errorf("shared mine unit state = %v, want done", u.State)
	}
	noisedFeat := spec.Scenarios[1].featKey()
	if u, ok := orch.Board().Get(noisedFeat); !ok || u.State != durable.StateCanceled {
		t.Errorf("canceled scenario's feat unit state = %v, want canceled", u.State)
	}
}

func TestAdminEndpoints(t *testing.T) {
	dir := t.TempDir()
	spec := miningSpec(0)
	j, cache := openRunState(t, dir, false)
	orch, err := New(spec, Options{Journal: j, Cache: cache, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, sweepErr := orch.Run(context.Background()); sweepErr != nil {
		t.Fatalf("sweep failed: %v", sweepErr)
	}
	srv := httptest.NewServer(orch.Handler())
	defer srv.Close()

	getJSON := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode
	}

	var run RunStatus
	if code := getJSON("/api/run", &run); code != http.StatusOK {
		t.Fatalf("GET /api/run = %d", code)
	}
	if run.State != "done" || run.Units != 7 || len(run.Scenarios) != 2 {
		t.Errorf("run status = %+v", run)
	}
	if run.Counts[durable.StateDone] != 7 {
		t.Errorf("counts = %v, want 7 done", run.Counts)
	}

	var st ScenarioStatus
	if code := getJSON("/api/scenarios/plain", &st); code != http.StatusOK {
		t.Fatalf("GET /api/scenarios/plain = %d", code)
	}
	if st.Name != "plain" || len(st.Units) != 4 {
		t.Errorf("scenario status = %+v, want 4 stage units", st)
	}
	var errBody map[string]string
	if code := getJSON("/api/scenarios/ghost", &errBody); code != http.StatusNotFound {
		t.Errorf("GET unknown scenario = %d, want 404", code)
	}

	var units []durable.UnitSnapshot
	if code := getJSON("/api/units", &units); code != http.StatusOK || len(units) != 7 {
		t.Errorf("GET /api/units = %d with %d units, want 200/7", code, len(units))
	}
	var cs CacheStats
	if code := getJSON("/api/cache", &cs); code != http.StatusOK || cs.Puts == 0 {
		t.Errorf("GET /api/cache = %d, stats %+v", code, cs)
	}
}
