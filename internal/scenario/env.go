package scenario

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"elevprivacy/internal/dem"
	"elevprivacy/internal/durable"
	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/segments"
	"elevprivacy/internal/terrain"
)

// envStarts counts mining environments stood up this process. Tests use it
// to prove dedup: a resumed or cache-served sweep starts zero new
// environments and therefore issues zero HTTP calls.
var envStarts atomic.Int64

// env is the per-mine-unit service environment: a populated segment store
// and an elevation source served over real loopback TCP, with resilient
// httpx clients in front — the same topology cmd/elevmine builds, scoped to
// one work unit so HTTP attempts and sweep checkpoints are attributable to
// exactly one mine config.
type env struct {
	segSrv, elevSrv       *http.Server
	segClient, elevClient *httpx.Client
	miner                 *segments.Miner
	classes               map[string]geo.BBox
	journalPath           string
	journal               *durable.Journal
}

// multiSource routes elevation queries to the containing city's terrain.
// Borough boxes may poke outside the city box, so routing uses an expanded
// boundary, matching cmd/elevmine.
type multiSource struct {
	cities []*terrain.City
	fields []*terrain.Terrain
}

func newMultiSource(cities []*terrain.City) (*multiSource, error) {
	ms := &multiSource{cities: cities}
	for _, c := range cities {
		tr, err := c.Terrain()
		if err != nil {
			return nil, err
		}
		ms.fields = append(ms.fields, tr)
	}
	return ms, nil
}

// ElevationAt implements dem.Source.
func (ms *multiSource) ElevationAt(p geo.LatLng) (float64, error) {
	for i, c := range ms.cities {
		if c.Bounds.Expand(0.5, 0.5).Contains(p) {
			return ms.fields[i].ElevationAt(p)
		}
	}
	return 0, fmt.Errorf("%w: %v not covered", dem.ErrOutOfBounds, p)
}

// startEnv builds the mining environment for one scenario's mine config.
// subJournal, when non-empty, is the path of the mine unit's own checkpoint
// journal — per-unit isolation matters because the miner's cell keys don't
// encode population or seed, so two mine configs sharing one journal would
// cross-contaminate. The journal is opened resume-style (existing entries
// kept): a drained mine unit picks its cells back up on the next run.
func startEnv(sc *Scenario, rateLimit float64, subJournal string, drain <-chan struct{}) (*env, error) {
	world := terrain.World()
	store := segments.NewStore()
	rng := rand.New(rand.NewSource(sc.Seed))
	classes := make(map[string]geo.BBox)
	var sourceCities []*terrain.City

	switch sc.ThreatModel {
	case TM2:
		city, err := terrain.CityByName(world, sc.City)
		if err != nil {
			return nil, err
		}
		sourceCities = []*terrain.City{city}
		for i := range city.Boroughs {
			b := &city.Boroughs[i]
			if err := store.Populate(b.Bounds, sc.Population, b.Name, segments.DefaultPopulateConfig(), rng); err != nil {
				return nil, err
			}
			classes[b.Name] = b.Bounds
		}
	case TM3:
		for _, name := range sc.Cities { // sorted by Normalize: deterministic rng order
			city, err := terrain.CityByName(world, name)
			if err != nil {
				return nil, err
			}
			sourceCities = append(sourceCities, city)
			if err := store.Populate(city.Bounds, sc.Population, city.Abbrev, segments.DefaultPopulateConfig(), rng); err != nil {
				return nil, err
			}
			classes[city.Name] = city.Bounds
		}
	default:
		return nil, fmt.Errorf("scenario: threat model %s does not mine", sc.ThreatModel)
	}

	source, err := newMultiSource(sourceCities)
	if err != nil {
		return nil, err
	}

	segLis, segURL, err := listenLoopback()
	if err != nil {
		return nil, err
	}
	elevLis, elevURL, err := listenLoopback()
	if err != nil {
		segLis.Close()
		return nil, err
	}
	e := &env{
		segSrv:  &http.Server{Handler: segments.NewServer(store).Handler(), ReadHeaderTimeout: 5 * time.Second},
		elevSrv: &http.Server{Handler: elevsvc.NewServer(source).Handler(), ReadHeaderTimeout: 5 * time.Second},
		classes: classes,
	}
	go func() { _ = e.segSrv.Serve(segLis) }()
	go func() { _ = e.elevSrv.Serve(elevLis) }()

	e.segClient = resilientClient("scenario_segments", rateLimit)
	e.elevClient = resilientClient("scenario_elevation", rateLimit)
	e.miner = segments.NewMiner(
		segments.NewClient(segURL, e.segClient),
		elevsvc.NewClient(elevURL, e.elevClient),
	)
	e.miner.GridRows = sc.Grid
	e.miner.GridCols = sc.Grid
	e.miner.Samples = sc.Samples
	e.miner.Drain = drain

	if subJournal != "" {
		j, err := durable.OpenJournal(subJournal)
		if err != nil {
			e.close()
			return nil, err
		}
		e.journal = j
		e.journalPath = subJournal
		e.miner.Checkpoint = j
	}
	envStarts.Add(1)
	return e, nil
}

// attempts sums the HTTP attempts both clients issued.
func (e *env) attempts() int64 {
	return e.segClient.Stats().Attempts + e.elevClient.Stats().Attempts
}

// close tears the environment down, keeping the sub-journal on disk (a
// drained unit resumes from it).
func (e *env) close() {
	if e.segSrv != nil {
		_ = e.segSrv.Close()
	}
	if e.elevSrv != nil {
		_ = e.elevSrv.Close()
	}
	if e.journal != nil {
		_ = e.journal.Close()
	}
}

// discardJournal removes the sub-journal after a successful mine: the cached
// artifact supersedes it, and keeping it around would only grow the
// checkpoint dir. Removal failure is cosmetic and ignored.
func (e *env) discardJournal() {
	if e.journalPath != "" {
		_ = os.Remove(e.journalPath)
	}
}

// resilientClient builds the httpx client a mine sweep talks through:
// default retry policy, breaker, per-service metrics, optional rate limit.
func resilientClient(service string, rps float64) *httpx.Client {
	opts := []httpx.Option{
		httpx.WithPolicy(httpx.DefaultPolicy()),
		httpx.WithBreaker(httpx.NewBreaker(16, 5*time.Second)),
		httpx.WithMetrics(service),
	}
	if rps > 0 {
		opts = append(opts, httpx.WithLimiter(httpx.NewLimiter(rps, 10)))
	}
	return httpx.NewClient(&http.Client{Timeout: 30 * time.Second}, opts...)
}

// listenLoopback opens a loopback listener and returns its base URL.
func listenLoopback() (net.Listener, string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return lis, "http://" + lis.Addr().String(), nil
}

// subJournalPath names the mine unit's checkpoint journal inside the
// checkpoint dir ("" when checkpointing is off).
func subJournalPath(ckptDir, mineKey string) string {
	if ckptDir == "" {
		return ""
	}
	return filepath.Join(ckptDir, filepath.Base("mine-"+mineKey[len("mine/"):])+".journal")
}
