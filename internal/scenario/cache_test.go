package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type artifact struct{ N int }

	var got artifact
	if ok, err := cache.Get("mine/abc", &got); err != nil || ok {
		t.Fatalf("Get on empty cache = %v, %v; want miss", ok, err)
	}
	if err := cache.Put("mine/abc", artifact{N: 7}); err != nil {
		t.Fatal(err)
	}
	if ok, err := cache.Get("mine/abc", &got); err != nil || !ok {
		t.Fatalf("Get after Put = %v, %v; want hit", ok, err)
	}
	if got.N != 7 {
		t.Errorf("artifact = %+v, want N=7", got)
	}

	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put", st)
	}
}

// A torn or rotted entry must read as a miss — the caller recomputes and
// overwrites — never as an error that wedges the run or as silent bad data.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	type artifact struct{ N int }
	if err := cache.Put("train/ff00", artifact{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Keys flatten to <dir>/<stage>-<fp>.art.
	path := filepath.Join(dir, "train-ff00.art")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("expected artifact file at %s: %v", path, err)
	}
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	var got artifact
	ok, err := cache.Get("train/ff00", &got)
	if err != nil {
		t.Fatalf("corrupt entry surfaced an error: %v", err)
	}
	if ok {
		t.Fatal("corrupt entry read as a hit")
	}

	// Recompute-and-overwrite heals it.
	if err := cache.Put("train/ff00", artifact{N: 2}); err != nil {
		t.Fatal(err)
	}
	if ok, err := cache.Get("train/ff00", &got); err != nil || !ok || got.N != 2 {
		t.Fatalf("after overwrite: ok=%v err=%v got=%+v", ok, err, got)
	}
}

func TestNilCache(t *testing.T) {
	cache, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	if cache != nil {
		t.Fatal("OpenCache(\"\") should return a nil cache")
	}
	if err := cache.Put("k", 1); err != nil {
		t.Errorf("nil cache Put: %v", err)
	}
	var v int
	if ok, err := cache.Get("k", &v); ok || err != nil {
		t.Errorf("nil cache Get = %v, %v; want miss", ok, err)
	}
	if st := cache.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v, want zero", st)
	}
}
