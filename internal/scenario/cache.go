package scenario

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"elevprivacy/internal/durable"
)

// cacheVersion is the snapshot envelope version for cached artifacts. Bump
// it when an artifact's JSON shape changes incompatibly; old entries then
// read as misses (FormatError) instead of poisoning downstream stages.
const cacheVersion = 1

// Cache is the content-addressed artifact store: stage outputs (mined
// datasets, featurized datasets, trained models, eval metrics) keyed by
// stage fingerprints (e.g. "mine/91ab…"). Entries are written with durable's
// atomic writer inside checksummed snapshot envelopes, so a crash mid-write
// never leaves a torn artifact and bit rot is detected on read, not silently
// trained on.
//
// The cache is what turns N scenarios into less-than-N work: every scenario
// whose config prefix matches an existing artifact reuses it byte-identically.
// Unlike the journal (scoped to one run's resume), the cache dedupes across
// runs too.
//
// A nil *Cache stores nothing and misses everything.
type Cache struct {
	dir string

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
}

// OpenCache creates (if needed) and opens a cache directory. Empty dir
// returns nil — a valid cache that never hits.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// path maps a stage key ("mine/<fp>") to its artifact file
// ("<dir>/mine-<fp>.art"). Keys are two path-safe tokens by construction;
// the slash is flattened so the cache dir stays a single flat directory.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, strings.ReplaceAll(key, "/", "-")+".art")
}

// Get loads the artifact under key into v, reporting whether it was found.
// A missing entry is a miss; a present-but-corrupt entry (torn write from a
// kill, version skew) is also a miss — the caller recomputes and overwrites.
func (c *Cache) Get(key string, v any) (bool, error) {
	if c == nil {
		return false, nil
	}
	err := durable.LoadSnapshot(c.path(key), cacheVersion, v)
	switch {
	case err == nil:
		c.hits.Add(1)
		cacheHits.Inc()
		return true, nil
	case os.IsNotExist(err):
		c.misses.Add(1)
		cacheMisses.Inc()
		return false, nil
	default:
		var ferr *durable.FormatError
		if errors.As(err, &ferr) {
			c.misses.Add(1)
			cacheMisses.Inc()
			return false, nil
		}
		return false, fmt.Errorf("scenario: cache get %s: %w", key, err)
	}
}

// Put stores v under key (atomic, checksummed). Concurrent writers of the
// same key are safe: both write the same bytes and the rename is atomic.
func (c *Cache) Put(key string, v any) error {
	if c == nil {
		return nil
	}
	if err := durable.SaveSnapshot(c.path(key), cacheVersion, v); err != nil {
		return fmt.Errorf("scenario: cache put %s: %w", key, err)
	}
	c.puts.Add(1)
	cachePuts.Inc()
	return nil
}

// CacheStats is one cache's hit/miss/put counters, as the admin API reports
// them (the elevpriv_scenario_cache_* series aggregate across caches).
type CacheStats struct {
	Dir    string `json:"dir,omitempty"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
	Puts   int64  `json:"puts"`
}

// Stats snapshots this cache instance's counters. Safe on nil.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Dir:    c.dir,
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Puts:   c.puts.Load(),
	}
}
