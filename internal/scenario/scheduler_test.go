package scenario

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"elevprivacy/internal/durable"
)

// recordUnit builds a unit that appends its key to ran (mutex-guarded) and
// returns a journalable marker.
func recordUnit(key string, deps []string, ran *[]string, mu *sync.Mutex) Unit {
	return Unit{
		Key:  key,
		Deps: deps,
		Run: func(ctx context.Context) (any, error) {
			mu.Lock()
			*ran = append(*ran, key)
			mu.Unlock()
			return marker{Key: key}, nil
		},
	}
}

func TestSchedulerRunsDepsFirst(t *testing.T) {
	var mu sync.Mutex
	var ran []string
	// Diamond: a -> {b, c} -> d.
	units := []Unit{
		recordUnit("d", []string{"b", "c"}, &ran, &mu),
		recordUnit("b", []string{"a"}, &ran, &mu),
		recordUnit("c", []string{"a"}, &ran, &mu),
		recordUnit("a", nil, &ran, &mu),
	}
	s := &Scheduler{Workers: 4}
	report, err := s.Run(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Units) != 4 || report.Interrupted {
		t.Fatalf("report = %+v, want 4 clean units", report)
	}
	for _, u := range report.Units {
		if u.Err != nil {
			t.Errorf("unit %s: %v", u.Key, u.Err)
		}
	}
	pos := map[string]int{}
	for i, k := range ran {
		pos[k] = i
	}
	if !(pos["a"] < pos["b"] && pos["a"] < pos["c"] && pos["b"] < pos["d"] && pos["c"] < pos["d"]) {
		t.Errorf("execution order violates deps: %v", ran)
	}
	// Report keeps input order regardless of execution order.
	if report.Units[0].Key != "d" || report.Units[3].Key != "a" {
		t.Errorf("report order = %v, want input order", report.Units)
	}
}

func TestSchedulerChargesDependents(t *testing.T) {
	boom := errors.New("boom")
	var mu sync.Mutex
	var ran []string
	units := []Unit{
		{Key: "a", Run: func(ctx context.Context) (any, error) { return nil, boom }},
		recordUnit("b", []string{"a"}, &ran, &mu),
		recordUnit("c", []string{"b"}, &ran, &mu),
		recordUnit("x", nil, &ran, &mu), // independent: must still run
	}
	s := &Scheduler{}
	report, err := s.Run(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 1 || ran[0] != "x" {
		t.Errorf("ran = %v, want only the independent unit", ran)
	}
	if !errors.Is(report.Units[0].Err, boom) {
		t.Errorf("a's error = %v, want boom", report.Units[0].Err)
	}
	for _, i := range []int{1, 2} {
		err := report.Units[i].Err
		if err == nil || !strings.Contains(err.Error(), "dependency failed") || !errors.Is(err, boom) {
			t.Errorf("%s charged %v, want wrapped dependency failure", report.Units[i].Key, err)
		}
	}
	if report.Units[3].Err != nil {
		t.Errorf("independent unit failed: %v", report.Units[3].Err)
	}
	if report.Interrupted {
		t.Error("a unit failure is not an interruption")
	}
}

func TestSchedulerResumeRestores(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.journal")
	var mu sync.Mutex
	var ran []string
	build := func(restored *[]string) []Unit {
		units := []Unit{
			recordUnit("a", nil, &ran, &mu),
			recordUnit("b", []string{"a"}, &ran, &mu),
		}
		for i := range units {
			key := units[i].Key
			units[i].Restore = func() error {
				mu.Lock()
				*restored = append(*restored, key)
				mu.Unlock()
				return nil
			}
		}
		return units
	}

	j1, err := durable.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var restored1 []string
	if _, err := (&Scheduler{Journal: j1}).Run(context.Background(), build(&restored1)); err != nil {
		t.Fatal(err)
	}
	j1.Close()
	if len(ran) != 2 || len(restored1) != 0 {
		t.Fatalf("first run: ran=%v restored=%v", ran, restored1)
	}

	j2, err := durable.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ran = nil
	var restored2 []string
	report, err := (&Scheduler{Journal: j2}).Run(context.Background(), build(&restored2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 0 {
		t.Errorf("resume re-ran units: %v", ran)
	}
	if len(restored2) != 2 {
		t.Errorf("restored = %v, want both units", restored2)
	}
	for _, u := range report.Units {
		if !u.Restored || u.Err != nil {
			t.Errorf("unit %s: restored=%v err=%v", u.Key, u.Restored, u.Err)
		}
	}
}

// A failing Restore quarantines the unit (journaled-but-unusable state) and
// charges its dependents instead of letting them consume a ghost artifact.
func TestSchedulerRestoreFailureQuarantines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.journal")
	j1, err := durable.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Put("a", marker{Key: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := durable.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	vanished := errors.New("artifact vanished")
	units := []Unit{
		{Key: "a", Run: func(ctx context.Context) (any, error) { return marker{}, nil },
			Restore: func() error { return vanished }},
		{Key: "b", Deps: []string{"a"}, Run: func(ctx context.Context) (any, error) {
			t.Error("b ran despite a's failed restore")
			return nil, nil
		}},
	}
	report, err := (&Scheduler{Journal: j2}).Run(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(report.Units[0].Err, vanished) {
		t.Errorf("a's error = %v, want the restore failure", report.Units[0].Err)
	}
	if report.Units[1].Err == nil {
		t.Error("b was not charged")
	}
}

func TestSchedulerDrain(t *testing.T) {
	drain := make(chan struct{})
	close(drain)
	var mu sync.Mutex
	var ran []string
	units := []Unit{recordUnit("a", nil, &ran, &mu)}
	report, err := (&Scheduler{Drain: drain}).Run(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 0 {
		t.Errorf("drained scheduler dispatched %v", ran)
	}
	if !report.Interrupted {
		t.Error("report not marked interrupted")
	}
	if !errors.Is(report.Units[0].Err, durable.ErrInterrupted) {
		t.Errorf("unit charged %v, want ErrInterrupted", report.Units[0].Err)
	}
}

func TestSchedulerPanicQuarantine(t *testing.T) {
	var mu sync.Mutex
	var ran []string
	units := []Unit{
		{Key: "a", Run: func(ctx context.Context) (any, error) { panic("kaboom") }},
		recordUnit("x", nil, &ran, &mu),
	}
	report, err := (&Scheduler{Workers: 2}).Run(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	var perr *durable.PanicError
	if !errors.As(report.Units[0].Err, &perr) {
		t.Fatalf("a's error = %v, want *durable.PanicError", report.Units[0].Err)
	}
	if len(ran) != 1 {
		t.Errorf("sibling did not survive the panic: ran=%v", ran)
	}
}

func TestSchedulerShapeErrors(t *testing.T) {
	noop := func(ctx context.Context) (any, error) { return nil, nil }
	cases := []struct {
		name  string
		units []Unit
		want  string
	}{
		{"cycle", []Unit{
			{Key: "a", Deps: []string{"b"}, Run: noop},
			{Key: "b", Deps: []string{"a"}, Run: noop},
		}, "cycle"},
		{"unknown dep", []Unit{{Key: "a", Deps: []string{"ghost"}, Run: noop}}, "unknown key"},
		{"duplicate key", []Unit{{Key: "a", Run: noop}, {Key: "a", Run: noop}}, "duplicate"},
		{"empty key", []Unit{{Run: noop}}, "no key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := (&Scheduler{}).Run(context.Background(), tc.units)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
