package scenario

import (
	"encoding/json"
	"net/http"
	"time"

	"elevprivacy/internal/durable"
)

// The admin API: a small JSON surface over the live run for operators and
// the orchestrator smoke test. Mounted as the app handler of an
// httpx.NewServeMux (which contributes /healthz, /metrics, pprof, and server
// metrics), so the scenario endpoints ride the same hardened mux every other
// service in the repo uses.
//
//	GET  /api/run                     run status: state, counts, cache, HTTP
//	POST /api/run/cancel              drain the whole run (resumable)
//	GET  /api/scenarios               all scenarios with unit states
//	GET  /api/scenarios/{name}        one scenario, unit detail included
//	POST /api/scenarios/{name}/cancel cancel one scenario
//	GET  /api/units                   every unit's live status (the board)
//	GET  /api/cache                   artifact cache hit/miss/put counters

// RunStatus is the GET /api/run payload.
type RunStatus struct {
	Spec string `json:"spec"`
	// State is pending, running, or done.
	State        string                    `json:"state"`
	StartedAt    time.Time                 `json:"started_at,omitempty"`
	Units        int                       `json:"units"`
	Counts       map[durable.UnitState]int `json:"counts"`
	Cache        CacheStats                `json:"cache"`
	HTTPAttempts int64                     `json:"http_attempts"`
	Scenarios    []ScenarioStatus          `json:"scenarios"`
}

// ScenarioStatus is one scenario's live view.
type ScenarioStatus struct {
	Name        string `json:"name"`
	ThreatModel string `json:"threat_model"`
	Defense     string `json:"defense"`
	Model       string `json:"model"`
	Canceled    bool   `json:"canceled"`
	// Units are the scenario's four stage units in mine→feat→train→eval
	// order. Shared (deduped) units appear under every owning scenario.
	Units []durable.UnitSnapshot `json:"units"`
}

// Handler returns the admin API mux. Wrap it with httpx.NewServeMux (or
// obsboot) to add health, metrics, and hardening.
func (o *Orchestrator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/run", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.runStatus())
	})
	mux.HandleFunc("POST /api/run/cancel", func(w http.ResponseWriter, r *http.Request) {
		o.CancelRun()
		writeJSON(w, http.StatusOK, map[string]string{"status": "canceling", "detail": "dispatch stopped; in-flight units drain"})
	})
	mux.HandleFunc("GET /api/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.scenarioStatuses())
	})
	mux.HandleFunc("GET /api/scenarios/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		st, ok := o.scenarioStatus(name)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no scenario named " + name})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /api/scenarios/{name}/cancel", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if err := o.CancelScenario(name); err != nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "canceled", "scenario": name})
	})
	mux.HandleFunc("GET /api/units", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.board.Snapshot())
	})
	mux.HandleFunc("GET /api/cache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.cache.Stats())
	})
	return mux
}

func (o *Orchestrator) runStatus() RunStatus {
	return RunStatus{
		Spec:         o.spec.Name,
		State:        o.state.Load().(string),
		StartedAt:    o.startedAt,
		Units:        len(o.units),
		Counts:       o.board.Counts(),
		Cache:        o.cache.Stats(),
		HTTPAttempts: o.httpAttempts.Load(),
		Scenarios:    o.scenarioStatuses(),
	}
}

func (o *Orchestrator) scenarioStatuses() []ScenarioStatus {
	out := make([]ScenarioStatus, 0, len(o.spec.Scenarios))
	for i := range o.spec.Scenarios {
		st, _ := o.scenarioStatus(o.spec.Scenarios[i].Name)
		out = append(out, st)
	}
	return out
}

func (o *Orchestrator) scenarioStatus(name string) (ScenarioStatus, bool) {
	keys, ok := o.unitKeys[name]
	if !ok {
		return ScenarioStatus{}, false
	}
	var sc *Scenario
	for i := range o.spec.Scenarios {
		if o.spec.Scenarios[i].Name == name {
			sc = &o.spec.Scenarios[i]
			break
		}
	}
	st := ScenarioStatus{
		Name:        name,
		ThreatModel: sc.ThreatModel,
		Defense:     sc.Defense,
		Model:       sc.Model,
		Canceled:    o.scenarioCanceled(name),
	}
	for _, k := range keys {
		if u, ok := o.board.Get(k); ok {
			st.Units = append(st.Units, u)
		}
	}
	return st, true
}

// writeJSON renders v with a status code; encode errors are unreachable for
// the marshal-safe types this API serves.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
