package scenario

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"elevprivacy"
	"elevprivacy/internal/dataset"
	"elevprivacy/internal/defense"
	"elevprivacy/internal/durable"
)

// Artifacts are the cached stage outputs. The journal records only small
// completion markers (the control plane); artifact bytes live in the
// content-addressed cache (the data plane), which is how one scenario's mined
// dataset or trained model is reused byte-identically by every scenario that
// shares its config prefix — including scenarios in a different run.

// datasetArtifact is a mined or featurized dataset.
type datasetArtifact struct {
	Samples []dataset.Sample `json:"samples"`
}

// modelArtifact is a trained attack in its persisted wire format.
type modelArtifact struct {
	Model []byte `json:"model"`
}

// evalArtifact is one scenario's cross-validated attack quality.
type evalArtifact struct {
	Metrics elevprivacy.Metrics `json:"metrics"`
}

// marker is the journaled completion record for a unit.
type marker struct {
	Key   string `json:"key"`
	Items int    `json:"items"`
}

// tm1Denominator converts a tm1 Population into the user-specific dataset's
// scale factor: Population 100 reproduces the paper's Table I sizes.
const tm1Denominator = 100.0

// expand builds the deduped unit DAG for the spec: four units per scenario
// (mine → feat → train → eval), emitted once per distinct key. Scenarios
// sharing a config prefix share the unit — that is the whole dedup story;
// the cache extends it across runs.
func (o *Orchestrator) expand() []Unit {
	var units []Unit
	seen := make(map[string]bool)
	add := func(owner string, u Unit) {
		o.owners[u.Key] = append(o.owners[u.Key], owner)
		if seen[u.Key] {
			return
		}
		seen[u.Key] = true
		units = append(units, u)
	}
	for i := range o.spec.Scenarios {
		sc := &o.spec.Scenarios[i]
		mk, fk, tk, ek := sc.mineKey(), sc.featKey(), sc.trainKey(), sc.evalKey()
		o.unitKeys[sc.Name] = []string{mk, fk, tk, ek}
		add(sc.Name, Unit{Key: mk, Run: o.guard(mk, o.mineRun(sc, mk)), Restore: o.verifyArtifact(mk, &datasetArtifact{})})
		add(sc.Name, Unit{Key: fk, Deps: []string{mk}, Run: o.guard(fk, o.featRun(sc, fk, mk)), Restore: o.verifyArtifact(fk, &datasetArtifact{})})
		add(sc.Name, Unit{Key: tk, Deps: []string{fk}, Run: o.guard(tk, o.trainRun(sc, tk, fk)), Restore: o.verifyArtifact(tk, &modelArtifact{})})
		add(sc.Name, Unit{Key: ek, Deps: []string{tk}, Run: o.guard(ek, o.evalRun(sc, ek, fk)), Restore: o.verifyArtifact(ek, &evalArtifact{})})
	}
	return units
}

// guard wraps a unit body with the admin-cancel check: a unit whose owning
// scenarios have all been canceled is skipped with ErrCanceled (a graceful,
// resumable outcome). A unit still wanted by any live scenario runs.
func (o *Orchestrator) guard(key string, run func(context.Context) (any, error)) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		if o.keyCanceled(key) {
			return nil, ErrCanceled
		}
		return run(ctx)
	}
}

// verifyArtifact is the shared Restore body: the journal says the unit
// completed, so its artifact must be readable from the cache — downstream
// stages consume it from there. A vanished or corrupt artifact fails the
// restore, which quarantines the unit instead of letting a later stage
// train on nothing.
func (o *Orchestrator) verifyArtifact(key string, v any) func() error {
	return func() error {
		ok, err := o.cache.Get(key, v)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("scenario: %s checkpointed but its artifact is missing from the cache", key)
		}
		return nil
	}
}

// fetch loads a dependency's artifact from the cache.
func (o *Orchestrator) fetch(key string, v any) error {
	ok, err := o.cache.Get(key, v)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("scenario: upstream artifact %s missing from the cache", key)
	}
	return nil
}

// mineRun produces the scenario's raw labeled dataset: over live HTTP
// services for tm2/tm3 (the paper's Fig. 4 pipeline), procedurally for tm1
// (the athlete's own history involves no mining). Cache-first: a prior run's
// artifact short-circuits the whole environment, issuing zero HTTP calls.
func (o *Orchestrator) mineRun(sc *Scenario, key string) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		var art datasetArtifact
		if ok, err := o.cache.Get(key, &art); err != nil {
			return nil, err
		} else if ok {
			return marker{Key: key, Items: len(art.Samples)}, nil
		}

		if sc.ThreatModel == TM1 {
			d, err := elevprivacy.NewUserSpecificDataset(elevprivacy.DatasetConfig{
				Scale:          float64(sc.Population) / tm1Denominator,
				ProfileSamples: sc.Samples,
				MinPerClass:    2 * sc.Folds,
				Seed:           sc.Seed,
			})
			if err != nil {
				return nil, err
			}
			art.Samples = d.Samples
		} else {
			e, err := startEnv(sc, o.spec.RateLimit, subJournalPath(o.ckptDir, key), o.drain)
			if err != nil {
				return nil, err
			}
			defer e.close()
			mined, sweepErr := e.miner.MineClassesPartial(ctx, e.classes)
			o.httpAttempts.Add(e.attempts())
			if sweepErr != nil {
				if sweepErr.Interrupted() {
					// The sub-journal keeps the completed cells; the next run
					// re-enters here and mines only what is missing.
					return nil, fmt.Errorf("scenario: mine drained: %w", durable.ErrInterrupted)
				}
				return nil, sweepErr
			}
			art.Samples = dataset.FromMined(mined).Samples
			e.discardJournal()
		}
		if err := o.cache.Put(key, art); err != nil {
			return nil, err
		}
		return marker{Key: key, Items: len(art.Samples)}, nil
	}
}

// featRun applies the scenario's defense to the mined dataset and balances
// classes at the smallest class size (the paper's bias-mitigation protocol).
func (o *Orchestrator) featRun(sc *Scenario, key, mineKey string) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		var art datasetArtifact
		if ok, err := o.cache.Get(key, &art); err != nil {
			return nil, err
		} else if ok {
			return marker{Key: key, Items: len(art.Samples)}, nil
		}

		var mined datasetArtifact
		if err := o.fetch(mineKey, &mined); err != nil {
			return nil, err
		}
		base := &dataset.Dataset{Samples: mined.Samples}
		defended := defense.ApplyToDataset(base, sc.defense(), sc.Seed+11)

		perClass := -1
		for _, n := range defended.CountByLabel() {
			if perClass < 0 || n < perClass {
				perClass = n
			}
		}
		if perClass < sc.Folds {
			return nil, fmt.Errorf("scenario: smallest class has %d samples, need >= %d folds", perClass, sc.Folds)
		}
		balanced, err := defended.Balanced(perClass, rand.New(rand.NewSource(sc.Seed+13)))
		if err != nil {
			return nil, err
		}
		art.Samples = balanced.Samples
		if err := o.cache.Put(key, art); err != nil {
			return nil, err
		}
		return marker{Key: key, Items: len(art.Samples)}, nil
	}
}

// trainRun fits the scenario's classifier on the featurized dataset and
// caches the persisted model — the artifact a serving deployment would load.
func (o *Orchestrator) trainRun(sc *Scenario, key, featKey string) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		var art modelArtifact
		if ok, err := o.cache.Get(key, &art); err != nil {
			return nil, err
		} else if ok {
			return marker{Key: key, Items: len(art.Model)}, nil
		}

		var feat datasetArtifact
		if err := o.fetch(featKey, &feat); err != nil {
			return nil, err
		}
		attack, err := elevprivacy.TrainTextAttack(&dataset.Dataset{Samples: feat.Samples}, sc.attackConfig())
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := attack.Save(&buf); err != nil {
			return nil, err
		}
		art.Model = buf.Bytes()
		if err := o.cache.Put(key, art); err != nil {
			return nil, err
		}
		return marker{Key: key, Items: len(art.Model)}, nil
	}
}

// evalRun cross-validates the attack configuration on the featurized
// dataset, producing the scenario's headline metrics.
func (o *Orchestrator) evalRun(sc *Scenario, key, featKey string) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		var art evalArtifact
		if ok, err := o.cache.Get(key, &art); err != nil {
			return nil, err
		} else if ok {
			return marker{Key: key, Items: 1}, nil
		}

		var feat datasetArtifact
		if err := o.fetch(featKey, &feat); err != nil {
			return nil, err
		}
		m, err := elevprivacy.CrossValidateText(&dataset.Dataset{Samples: feat.Samples}, sc.attackConfig(), sc.Folds)
		if err != nil {
			return nil, err
		}
		art.Metrics = m
		if err := o.cache.Put(key, art); err != nil {
			return nil, err
		}
		return marker{Key: key, Items: 1}, nil
	}
}

// defense materializes the scenario's countermeasure.
func (sc *Scenario) defense() defense.Defense {
	switch sc.Defense {
	case DefenseNoise:
		return defense.GaussianNoise{SigmaMeters: sc.DefenseStrength}
	case DefenseQuantize:
		return defense.Quantizer{StepMeters: sc.DefenseStrength}
	case DefenseZeroBaseline:
		return defense.ZeroBaseline{}
	case DefenseSummaryStats:
		return defense.SummaryStats{}
	default:
		return defense.Noop{}
	}
}

// attackConfig maps the scenario onto the text-attack settings, keeping the
// paper's discretizer choice: ⌊e⌋ for the user-specific dataset, d = 3 for
// mined datasets.
func (sc *Scenario) attackConfig() elevprivacy.TextAttackConfig {
	tc := elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierKind(sc.Model))
	tc.NGram = sc.NGram
	tc.MaxFeatures = sc.MaxFeatures
	tc.Float32 = sc.Float32
	tc.Seed = sc.Seed
	if sc.ThreatModel != TM1 {
		tc.Precision = 3
	}
	return tc
}
