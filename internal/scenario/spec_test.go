package scenario

import (
	"strings"
	"testing"
)

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"name":"demo","scenarios":[{"name":"a"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Workers != 1 {
		t.Errorf("Workers = %d, want 1", spec.Workers)
	}
	sc := spec.Scenarios[0]
	if sc.ThreatModel != TM3 {
		t.Errorf("ThreatModel = %q, want tm3", sc.ThreatModel)
	}
	if len(sc.Cities) != 10 {
		t.Errorf("default city model has %d cities, want the paper's 10", len(sc.Cities))
	}
	for i := 1; i < len(sc.Cities); i++ {
		if sc.Cities[i-1] > sc.Cities[i] {
			t.Errorf("cities not sorted: %v", sc.Cities)
			break
		}
	}
	if sc.Population != 40 || sc.Grid != 4 || sc.Samples != 60 {
		t.Errorf("world defaults = pop %d grid %d samples %d, want 40/4/60", sc.Population, sc.Grid, sc.Samples)
	}
	if sc.Defense != DefenseNone || sc.Model != "svm" || sc.Folds != 5 {
		t.Errorf("pipeline defaults = %s/%s/%d, want none/svm/5", sc.Defense, sc.Model, sc.Folds)
	}
	if sc.NGram != 8 || sc.MaxFeatures != 1024 || sc.Seed != 1 {
		t.Errorf("attack defaults = ngram %d maxfeat %d seed %d, want 8/1024/1", sc.NGram, sc.MaxFeatures, sc.Seed)
	}
}

func TestParseSpecDefenseStrengthDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"scenarios":[
		{"name":"n","defense":"noise"},
		{"name":"q","defense":"quantize"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Scenarios[0].DefenseStrength; got != 5 {
		t.Errorf("noise strength = %v, want 5", got)
	}
	if got := spec.Scenarios[1].DefenseStrength; got != 10 {
		t.Errorf("quantize step = %v, want 10", got)
	}
}

func TestParseSpecRejectsUnknownField(t *testing.T) {
	_, err := ParseSpec([]byte(`{"scenarios":[{"name":"a","defence":"noise"}]}`))
	if err == nil || !strings.Contains(err.Error(), "defence") {
		t.Fatalf("typoed field not rejected: %v", err)
	}
}

func TestParseSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"no scenarios", `{"name":"x"}`, "no scenarios"},
		{"duplicate names", `{"scenarios":[{"name":"a"},{"name":"a","seed":2}]}`, "duplicate scenario name"},
		{"unknown threat model", `{"scenarios":[{"name":"a","threat_model":"tm9"}]}`, "unknown threat model"},
		{"tm2 without city", `{"scenarios":[{"name":"a","threat_model":"tm2"}]}`, "requires a city"},
		{"tm1 with city model", `{"scenarios":[{"name":"a","threat_model":"tm1","cities":["SF","LA"]}]}`, "no city model"},
		{"tm3 single city", `{"scenarios":[{"name":"a","cities":["SF"]}]}`, "at least 2 cities"},
		{"unknown city", `{"scenarios":[{"name":"a","cities":["SF","Atlantis"]}]}`, "Atlantis"},
		{"unknown defense", `{"scenarios":[{"name":"a","defense":"tinfoil"}]}`, "unknown defense"},
		{"unknown model", `{"scenarios":[{"name":"a","model":"xgboost"}]}`, "unknown model"},
		{"unpersistable model", `{"scenarios":[{"name":"a","model":"rfc"}]}`, "persistence"},
		{"folds too small", `{"scenarios":[{"name":"a","folds":1}]}`, "folds"},
		{"samples shorter than ngram", `{"scenarios":[{"name":"a","samples":4,"ngram":8}]}`, "too short"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// Abbreviations and city order must not change fingerprints: {SF, LA} spelled
// any way is the same mine config, or scenarios stop sharing artifacts over
// cosmetic spec differences.
func TestSpecCanonicalization(t *testing.T) {
	a, err := ParseSpec([]byte(`{"scenarios":[{"name":"a","cities":["SF","Los Angeles"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec([]byte(`{"scenarios":[{"name":"b","cities":["LA","San Francisco"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if ak, bk := a.Scenarios[0].mineKey(), b.Scenarios[0].mineKey(); ak != bk {
		t.Errorf("equivalent city models fingerprint differently: %s vs %s", ak, bk)
	}

	tm2, err := ParseSpec([]byte(`{"scenarios":[{"name":"c","threat_model":"tm2","city":"NYC"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := tm2.Scenarios[0].City; got != "New York City" {
		t.Errorf("tm2 city = %q, want canonical full name", got)
	}
}

// Stage keys chain by fingerprint prefix: a knob change invalidates its own
// stage and everything downstream, nothing upstream.
func TestStageKeyChaining(t *testing.T) {
	base := Scenario{Name: "base"}
	if err := base.normalize(); err != nil {
		t.Fatal(err)
	}
	keys := func(sc Scenario) [4]string {
		return [4]string{sc.mineKey(), sc.featKey(), sc.trainKey(), sc.evalKey()}
	}
	bk := keys(base)

	grid := base
	grid.Grid = 8
	for i, k := range keys(grid) {
		if k == bk[i] {
			t.Errorf("grid change did not ripple into stage %d key", i)
		}
	}

	def := base
	def.Defense = DefenseNoise
	def.DefenseStrength = 5
	dk := keys(def)
	if dk[0] != bk[0] {
		t.Error("defense change must not invalidate the mine artifact")
	}
	for i := 1; i < 4; i++ {
		if dk[i] == bk[i] {
			t.Errorf("defense change did not ripple into stage %d key", i)
		}
	}

	model := base
	model.Model = "mlp"
	mk := keys(model)
	if mk[0] != bk[0] || mk[1] != bk[1] {
		t.Error("model change must not invalidate mine or feat artifacts")
	}
	if mk[2] == bk[2] || mk[3] == bk[3] {
		t.Error("model change did not ripple into train/eval keys")
	}

	folds := base
	folds.Folds = 10
	fk := keys(folds)
	if fk[0] != bk[0] || fk[1] != bk[1] || fk[2] != bk[2] {
		t.Error("folds change must only invalidate the eval artifact")
	}
	if fk[3] == bk[3] {
		t.Error("folds change did not change the eval key")
	}
}
