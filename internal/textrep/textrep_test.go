package textrep

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFloorDiscretizer(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{52.9, 52}, {52.0, 52}, {-1.2, -2}, {0, 0},
	}
	for _, tc := range tests {
		if got := FloorDiscretizer(tc.in); got != tc.want {
			t.Errorf("FloorDiscretizer(%f) = %f, want %f", tc.in, got, tc.want)
		}
	}
}

func TestPrecisionDiscretizer(t *testing.T) {
	d3 := PrecisionDiscretizer(3)
	tests := []struct{ in, want float64 }{
		{1.23456, 1.234},
		{1.2, 1.2},
		{0.0004, 0},
	}
	for _, tc := range tests {
		if got := d3(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("d3(%f) = %f, want %f", tc.in, got, tc.want)
		}
	}
	d0 := PrecisionDiscretizer(0)
	if got := d0(7.9); got != 7 {
		t.Errorf("d0(7.9) = %f", got)
	}
}

func TestDiscretizeIdempotentProperty(t *testing.T) {
	d := PrecisionDiscretizer(3)
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e9 {
				continue
			}
			clean = append(clean, v)
		}
		once := Discretize(clean, d)
		twice := Discretize(once, d)
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordSize(t *testing.T) {
	tests := []struct {
		l, c, want int
	}{
		{26, 1, 1},
		{26, 26, 1},
		{26, 27, 2},
		{26, 676, 2},
		{26, 677, 3},
		{2, 8, 3},
		{2, 9, 4},
		{26, 0, 1},
	}
	for _, tc := range tests {
		if got := WordSize(tc.l, tc.c); got != tc.want {
			t.Errorf("WordSize(%d, %d) = %d, want %d", tc.l, tc.c, got, tc.want)
		}
	}
}

func TestWordSizeSufficientProperty(t *testing.T) {
	// The computed word size must always give enough distinct words.
	f := func(lSeed, cSeed uint16) bool {
		l := int(lSeed%30) + 2
		c := int(cSeed%5000) + 1
		w := WordSize(l, c)
		return pow(l, w) >= c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildEncoderAssignsDistinctWords(t *testing.T) {
	signals := [][]float64{
		{1.2, 2.7, 3.1},
		{2.9, 4.4},
	}
	enc, err := BuildEncoder(signals, FloorDiscretizer, DefaultAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	// Unique floors: 1,2,3,4 -> c=4, w=1.
	if enc.UniqueValues() != 4 {
		t.Errorf("UniqueValues = %d, want 4", enc.UniqueValues())
	}
	if enc.WordSize() != 1 {
		t.Errorf("WordSize = %d, want 1", enc.WordSize())
	}
	seen := map[string]bool{}
	for _, v := range []float64{1, 2, 3, 4} {
		word := enc.Encode([]float64{v})
		if len(word) != 1 {
			t.Errorf("word %q has wrong length", word)
		}
		if seen[word] {
			t.Errorf("word %q assigned twice", word)
		}
		seen[word] = true
	}
}

func TestEncoderEncodeRoundStructure(t *testing.T) {
	signals := [][]float64{{10, 20, 10, 30}}
	enc, err := BuildEncoder(signals, FloorDiscretizer, DefaultAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	text := enc.Encode(signals[0])
	if len(text) != 4*enc.WordSize() {
		t.Fatalf("text length = %d", len(text))
	}
	// Same value -> same word: positions 0 and 2 agree.
	w := enc.WordSize()
	if text[0:w] != text[2*w:3*w] {
		t.Error("equal values encoded differently")
	}
	if text[0:w] == text[w:2*w] {
		t.Error("different values encoded identically")
	}
}

func TestEncoderNearestFallback(t *testing.T) {
	enc, err := BuildEncoder([][]float64{{10, 20}}, FloorDiscretizer, DefaultAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	// 11.4 floors to 11, unseen; nearest known is 10.
	if got, want := enc.Encode([]float64{11.4}), enc.Encode([]float64{10}); got != want {
		t.Errorf("nearest-fallback encode = %q, want %q", got, want)
	}
	// 19 -> nearest 20; 5 -> clamps to 10; 99 -> clamps to 20.
	if got, want := enc.Encode([]float64{19}), enc.Encode([]float64{20}); got != want {
		t.Errorf("19 encoded %q, want %q", got, want)
	}
	if got, want := enc.Encode([]float64{5}), enc.Encode([]float64{10}); got != want {
		t.Errorf("5 encoded %q, want %q", got, want)
	}
	if got, want := enc.Encode([]float64{99}), enc.Encode([]float64{20}); got != want {
		t.Errorf("99 encoded %q, want %q", got, want)
	}
}

func TestBuildEncoderValidation(t *testing.T) {
	if _, err := BuildEncoder(nil, FloorDiscretizer, DefaultAlphabet); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := BuildEncoder([][]float64{{1}}, nil, DefaultAlphabet); err == nil {
		t.Error("nil discretizer accepted")
	}
	if _, err := BuildEncoder([][]float64{{1}}, FloorDiscretizer, "a"); err == nil {
		t.Error("1-letter alphabet accepted")
	}
}

func TestIndexWord(t *testing.T) {
	if got := indexWord(0, 2, "ab"); got != "aa" {
		t.Errorf("indexWord(0) = %q", got)
	}
	if got := indexWord(1, 2, "ab"); got != "ab" {
		t.Errorf("indexWord(1) = %q", got)
	}
	if got := indexWord(3, 2, "ab"); got != "bb" {
		t.Errorf("indexWord(3) = %q", got)
	}
}

func TestBuildVocabularyCollectsNGrams(t *testing.T) {
	// Word size 1; text "abab": 1-grams {a,b}, 2-grams {ab, ba}.
	vocab, err := BuildVocabulary([]string{"abab"}, VocabConfig{WordSize: 1, MinN: 1, MaxN: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"a": true, "b": true, "ab": true, "ba": true}
	if vocab.Size() != len(want) {
		t.Fatalf("Size = %d, grams = %v", vocab.Size(), vocab.Grams())
	}
	for _, g := range vocab.Grams() {
		if !want[g] {
			t.Errorf("unexpected gram %q", g)
		}
	}
}

func TestBuildVocabularyWordAlignment(t *testing.T) {
	// Word size 2: "aabb" has words [aa, bb]; the misaligned "ab" straddle
	// must NOT appear.
	vocab, err := BuildVocabulary([]string{"aabb"}, VocabConfig{WordSize: 2, MinN: 1, MaxN: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range vocab.Grams() {
		if g == "ab" {
			t.Error("vocabulary contains straddling gram")
		}
	}
	// Expected: "aa", "bb", "aabb".
	if vocab.Size() != 3 {
		t.Errorf("Size = %d, grams = %v", vocab.Size(), vocab.Grams())
	}
}

func TestBuildVocabularyFrequencyThreshold(t *testing.T) {
	corpus := []string{"aaab", "aaac"} // "a" occurs 6x, b/c once each
	vocab, err := BuildVocabulary(corpus, VocabConfig{WordSize: 1, MinN: 1, MaxN: 1, MinFrequency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if vocab.Size() != 1 || vocab.Grams()[0] != "a" {
		t.Errorf("grams = %v, want [a]", vocab.Grams())
	}
}

func TestBuildVocabularyMaxFeatures(t *testing.T) {
	corpus := []string{"aaabbc"}
	vocab, err := BuildVocabulary(corpus, VocabConfig{WordSize: 1, MinN: 1, MaxN: 1, MaxFeatures: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Most frequent: a (3), b (2).
	grams := vocab.Grams()
	if len(grams) != 2 || grams[0] != "a" || grams[1] != "b" {
		t.Errorf("grams = %v, want [a b]", grams)
	}
}

func TestBuildVocabularyValidation(t *testing.T) {
	if _, err := BuildVocabulary([]string{"ab"}, VocabConfig{WordSize: 0, MinN: 1, MaxN: 1}); err == nil {
		t.Error("word size 0 accepted")
	}
	if _, err := BuildVocabulary([]string{"ab"}, VocabConfig{WordSize: 1, MinN: 2, MaxN: 1}); err == nil {
		t.Error("inverted n range accepted")
	}
	if _, err := BuildVocabulary([]string{"abc"}, VocabConfig{WordSize: 2, MinN: 1, MaxN: 1}); err == nil {
		t.Error("misaligned corpus line accepted")
	}
	if _, err := BuildVocabulary([]string{""}, VocabConfig{WordSize: 1, MinN: 1, MaxN: 1}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := BuildVocabulary([]string{"aab"}, VocabConfig{WordSize: 1, MinN: 1, MaxN: 1, MinFrequency: 10}); err == nil {
		t.Error("threshold that removes everything accepted")
	}
}

func TestVectorizeNormalized(t *testing.T) {
	vocab, err := BuildVocabulary([]string{"aabb"}, VocabConfig{WordSize: 1, MinN: 1, MaxN: 1})
	if err != nil {
		t.Fatal(err)
	}
	vec := vocab.Vectorize("aabb")
	var sum float64
	for _, v := range vec {
		if v < 0 {
			t.Errorf("negative feature %f", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("vector sum = %f, want 1", sum)
	}
	// a and b each occur twice: features equal.
	if math.Abs(vec[0]-vec[1]) > 1e-12 {
		t.Errorf("vec = %v, want equal features", vec)
	}
}

func TestVectorizeNonOverlappingCounts(t *testing.T) {
	// Vocabulary with only the bigram "aa"; text "aaaa" has TWO
	// non-overlapping occurrences (not three overlapping ones).
	vocab, err := BuildVocabulary([]string{"aaaa"}, VocabConfig{WordSize: 1, MinN: 2, MaxN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if vocab.Size() != 1 || vocab.Grams()[0] != "aa" {
		t.Fatalf("grams = %v", vocab.Grams())
	}
	vec := vocab.Vectorize("aaaa")
	// Single feature normalized to 1; underlying count was 2 — verify via
	// an added distractor text with odd length.
	if vec[0] != 1 {
		t.Errorf("vec = %v", vec)
	}

	vocab2, err := BuildVocabulary([]string{"aabb"}, VocabConfig{WordSize: 1, MinN: 1, MaxN: 2})
	if err != nil {
		t.Fatal(err)
	}
	vec2 := vocab2.Vectorize("aaaa")
	// Counts: "a"×4 non-overlapping 1-grams, "aa"×2 bigrams; "b", "ab",
	// "bb" zero. Total 6.
	idx := map[string]int{}
	for i, g := range vocab2.Grams() {
		idx[g] = i
	}
	if math.Abs(vec2[idx["a"]]-4.0/6) > 1e-12 {
		t.Errorf(`feature "a" = %f, want 4/6`, vec2[idx["a"]])
	}
	if math.Abs(vec2[idx["aa"]]-2.0/6) > 1e-12 {
		t.Errorf(`feature "aa" = %f, want 2/6`, vec2[idx["aa"]])
	}
}

func TestVectorizeEmptyText(t *testing.T) {
	vocab, err := BuildVocabulary([]string{"ab"}, VocabConfig{WordSize: 1, MinN: 1, MaxN: 1})
	if err != nil {
		t.Fatal(err)
	}
	vec := vocab.Vectorize("")
	for _, v := range vec {
		if v != 0 {
			t.Errorf("empty text vector = %v", vec)
		}
	}
}

func TestVectorizeProbabilityProperty(t *testing.T) {
	vocab, err := BuildVocabulary([]string{"abcabcabc"}, VocabConfig{WordSize: 1, MinN: 1, MaxN: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed []byte) bool {
		var sb strings.Builder
		for _, b := range seed {
			sb.WriteByte("abc"[int(b)%3])
		}
		vec := vocab.Vectorize(sb.String())
		var sum float64
		for _, v := range vec {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return sum == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	// Two "cities": low flat signals vs high flat signals.
	signals := [][]float64{
		{5.1, 5.2, 5.3, 5.2, 5.1, 5.0},
		{5.2, 5.3, 5.2, 5.4, 5.1, 5.2},
		{1850.2, 1851.8, 1852.4, 1851.1, 1850.9, 1850.3},
		{1851.0, 1850.4, 1851.5, 1852.2, 1851.7, 1850.8},
	}
	cfg := DefaultPipelineConfig()
	cfg.NGram = 3
	cfg.MinFrequency = 1
	p, err := NewPipeline(signals, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() == 0 {
		t.Fatal("empty feature space")
	}

	lowVec := p.Features(signals[0])
	highVec := p.Features(signals[2])
	// The two classes must use disjoint dominant features.
	var shared float64
	for i := range lowVec {
		shared += math.Min(lowVec[i], highVec[i])
	}
	if shared > 0.1 {
		t.Errorf("low and high signals share %f probability mass; want near 0", shared)
	}

	// Same-class profiles should overlap substantially.
	lowVec2 := p.Features(signals[1])
	var sameShared float64
	for i := range lowVec {
		sameShared += math.Min(lowVec[i], lowVec2[i])
	}
	if sameShared < 0.2 {
		t.Errorf("same-class overlap = %f; want substantial", sameShared)
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline([][]float64{{1, 2}}, PipelineConfig{NGram: 0}); err == nil {
		t.Error("NGram 0 accepted")
	}
}

func TestPipelineDefaultsApplied(t *testing.T) {
	p, err := NewPipeline([][]float64{{1, 2, 3, 1, 2, 3}}, PipelineConfig{NGram: 2, MinFrequency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Encoder().WordSize() != 1 {
		t.Errorf("word size = %d", p.Encoder().WordSize())
	}
	if p.Vocabulary().Size() == 0 {
		t.Error("empty vocabulary")
	}
}

func TestPipelinePersistenceRoundTrip(t *testing.T) {
	signals := [][]float64{
		{5.1, 5.9, 6.3, 5.2, 5.1, 5.0},
		{5.2, 6.3, 5.2, 6.4, 5.1, 5.2},
		{80.2, 81.8, 82.4, 81.1, 80.9, 80.3},
	}
	cfg := DefaultPipelineConfig()
	cfg.Discretizer = nil
	cfg.Precision = 1
	cfg.NGram = 3
	cfg.MinFrequency = 1
	p, err := NewPipeline(signals, cfg)
	if err != nil {
		t.Fatal(err)
	}

	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Pipeline
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Dim() != p.Dim() {
		t.Fatalf("dim = %d, want %d", back.Dim(), p.Dim())
	}
	for _, sig := range signals {
		want := p.Features(sig)
		got := back.Features(sig)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("feature %d = %f, want %f", i, got[i], want[i])
			}
		}
	}
	// An unseen signal (nearest-value fallback) also agrees.
	fresh := []float64{5.05, 6.0, 80.0, 81.0}
	want := p.Features(fresh)
	got := back.Features(fresh)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("fresh feature %d = %f, want %f", i, got[i], want[i])
		}
	}
}

func TestPipelineUnmarshalValidation(t *testing.T) {
	bad := []string{
		`{`,
		`{}`,
		`{"precision":0,"alphabet":"ab","word_size":1,"values":[1],"min_n":1,"max_n":1,"grams":[]}`,
		`{"precision":0,"alphabet":"a","word_size":1,"values":[1],"min_n":1,"max_n":1,"grams":["a"]}`,
		`{"precision":0,"alphabet":"ab","word_size":0,"values":[1],"min_n":1,"max_n":1,"grams":["a"]}`,
		`{"precision":0,"alphabet":"ab","word_size":1,"values":[1],"min_n":2,"max_n":1,"grams":["a"]}`,
	}
	for _, in := range bad {
		var p Pipeline
		if err := json.Unmarshal([]byte(in), &p); err == nil {
			t.Errorf("input %s accepted", in)
		}
	}
}
