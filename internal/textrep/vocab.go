package textrep

import (
	"fmt"
	"math/bits"
	"sort"
)

// Vocabulary is the set of unique word-aligned n-grams observed in a
// corpus, with the machinery to turn a text into a normalized bag-of-words
// feature vector (paper Fig. 6 and §III-C).
//
// Alongside the string index it can carry a token index (BuildTokenIndex):
// an n-gram of encoder rank ids becomes one uint64 key — bit-packed while
// n·⌈log₂ c⌉ ≤ 64, keyed by a seeded polynomial rolling hash beyond, with
// every hash hit verified against the stored rank sequence so the token
// path matches the string path exactly. Lookups then cost one integer map
// probe instead of a substring allocation + string hash.
type Vocabulary struct {
	wordSize int
	minN     int
	maxN     int
	// index maps an n-gram string to its feature position.
	index map[string]int
	// grams lists the n-grams in feature order (sorted for determinism).
	grams []string

	// Token index (nil until BuildTokenIndex). tokIndex[n-minN] resolves
	// uint64 keys of order n to feature positions.
	tokIndex []map[uint64]int32
	// tokGrams[i] is gram i as a rank sequence, used to verify hash hits.
	tokGrams [][]uint32
	// rank1 short-circuits order-1 lookups: rank1[rank] is the feature
	// position of the 1-gram with that rank id, or -1. The order-1 key
	// space is dense (one rank id), so an array probe replaces the map.
	rank1 []int32
	// tables[n-minN] is the open-addressed mirror of tokIndex[n-minN] the
	// scan actually probes: flat arrays at 25% load resolve both hits and
	// misses in one or two cache-resident accesses, where a Go map costs a
	// hash-function call plus bucket-group probing.
	tables []openTable
	// packBits is the bit width of one rank id; orders with n·packBits ≤ 64
	// use exact bit-packed keys.
	packBits uint
	// hashedFrom is the smallest order keyed by the rolling hash
	// (maxN+1 when every order packs).
	hashedFrom int
	// hashBase is the seeded odd multiplier of the rolling hash; powBase[k]
	// caches hashBase^k for O(1) window hashes from prefix hashes.
	hashBase uint64
	powBase  []uint64
}

// VocabConfig controls vocabulary construction.
type VocabConfig struct {
	// WordSize is the encoder's per-word letter count.
	WordSize int
	// MinN and MaxN bound the n-gram orders collected; the paper traverses
	// the corpus n times with different window sizes, i.e. 1..n.
	MinN int
	MaxN int
	// MinFrequency discards n-grams occurring fewer times across the whole
	// corpus (the paper's term-frequency feature selection). Zero keeps all.
	MinFrequency int
	// MaxFeatures keeps only the most frequent n-grams when positive,
	// bounding the feature space on large corpora.
	MaxFeatures int
}

// BuildVocabulary scans the corpus with word-aligned windows of size
// W = w×n for every n in [MinN, MaxN] and collects unique window contents,
// then applies frequency-based feature selection.
func BuildVocabulary(corpus []string, cfg VocabConfig) (*Vocabulary, error) {
	if cfg.WordSize < 1 {
		return nil, fmt.Errorf("textrep: word size %d", cfg.WordSize)
	}
	if cfg.MinN < 1 || cfg.MaxN < cfg.MinN {
		return nil, fmt.Errorf("textrep: invalid n-gram range [%d,%d]", cfg.MinN, cfg.MaxN)
	}
	for i, line := range corpus {
		if len(line)%cfg.WordSize != 0 {
			return nil, fmt.Errorf("textrep: corpus line %d length %d not a multiple of word size %d",
				i, len(line), cfg.WordSize)
		}
	}

	freq := map[string]int{}
	for _, line := range corpus {
		for n := cfg.MinN; n <= cfg.MaxN; n++ {
			window := cfg.WordSize * n
			// Slide word by word, counting every (overlapping) window: this
			// is vocabulary collection, where coverage matters.
			for off := 0; off+window <= len(line); off += cfg.WordSize {
				freq[line[off:off+window]]++
			}
		}
	}
	if len(freq) == 0 {
		return nil, fmt.Errorf("textrep: corpus too short for %d-grams", cfg.MinN)
	}

	grams := make([]string, 0, len(freq))
	for g, c := range freq {
		if cfg.MinFrequency > 0 && c < cfg.MinFrequency {
			continue
		}
		grams = append(grams, g)
	}
	if len(grams) == 0 {
		return nil, fmt.Errorf("textrep: frequency threshold %d removed every feature", cfg.MinFrequency)
	}

	if cfg.MaxFeatures > 0 && len(grams) > cfg.MaxFeatures {
		// Keep the most frequent; ties broken lexicographically for
		// determinism.
		sort.Slice(grams, func(i, j int) bool {
			if freq[grams[i]] != freq[grams[j]] {
				return freq[grams[i]] > freq[grams[j]]
			}
			return grams[i] < grams[j]
		})
		grams = grams[:cfg.MaxFeatures]
	}
	sort.Strings(grams)

	v := &Vocabulary{
		wordSize: cfg.WordSize,
		minN:     cfg.MinN,
		maxN:     cfg.MaxN,
		index:    make(map[string]int, len(grams)),
		grams:    grams,
	}
	for i, g := range grams {
		v.index[g] = i
	}
	return v, nil
}

// Size returns the feature dimensionality.
func (v *Vocabulary) Size() int { return len(v.grams) }

// Grams returns the features in vector order. The slice is shared; callers
// must not modify it.
func (v *Vocabulary) Grams() []string { return v.grams }

// Vectorize counts, for every vocabulary n-gram order, the NON-overlapping
// word-aligned occurrences in the text (the paper counts "words and
// non-overlapping occurrences of word sequences"), then normalizes the
// vector to sum 1 so each feature is an occurrence probability.
func (v *Vocabulary) Vectorize(text string) []float64 {
	vec := make([]float64, len(v.grams))
	v.VectorizeInto(text, vec)
	return vec
}

// VectorizeInto vectorizes text into dst (len = Size()). dst is zeroed
// first, so scratch rows reused across samples cannot leak counts.
func (v *Vocabulary) VectorizeInto(text string, dst []float64) {
	vec := dst
	for i := range vec {
		vec[i] = 0
	}
	if len(text) == 0 {
		return
	}
	var total float64
	for n := v.minN; n <= v.maxN; n++ {
		window := v.wordSize * n
		for off := 0; off+window <= len(text); {
			gram := text[off : off+window]
			if i, ok := v.index[gram]; ok {
				vec[i]++
				total++
				off += window // non-overlapping: jump the whole match
			} else {
				off += v.wordSize
			}
		}
	}
	if total > 0 {
		for i := range vec {
			vec[i] /= total
		}
	}
}

// VectorizeAll vectorizes every text.
func (v *Vocabulary) VectorizeAll(texts []string) [][]float64 {
	out := make([][]float64, len(texts))
	for i, t := range texts {
		out[i] = v.Vectorize(t)
	}
	return out
}

// hashBase0 seeds the rolling-hash multiplier (an arbitrary odd 64-bit
// constant, splitmix64's increment); collisions among vocabulary grams
// deterministically reseed by hashStep.
const (
	hashBase0 uint64 = 0x9e3779b97f4a7c15
	hashStep  uint64 = 0xbf58476d1ce4e5b9
	// maxReseeds bounds the collision-reseed loop; with ≤ a few thousand
	// grams per order a single 64-bit hash collision is already ~2⁻⁴⁰
	// unlikely, so hitting this bound indicates a bug, not bad luck.
	maxReseeds = 64
)

// BuildTokenIndex derives the integer-keyed n-gram index from the string
// grams. alphabet must be the encoder's alphabet (it decodes words back to
// rank ids) and ranks the encoder's unique-value count c; every rank id is
// then < ranks and fits in ⌈log₂ c⌉ bits. Orders whose packed width
// exceeds 64 bits fall back to a seeded rolling hash whose hits are
// verified against the stored rank sequences, so lookups stay exact.
func (v *Vocabulary) BuildTokenIndex(alphabet string, ranks int) error {
	if len(alphabet) < 2 {
		return fmt.Errorf("textrep: alphabet needs >= 2 letters, got %d", len(alphabet))
	}
	if ranks < 1 {
		return fmt.Errorf("textrep: rank count %d", ranks)
	}

	var letterVal [256]int16
	for i := range letterVal {
		letterVal[i] = -1
	}
	for i := 0; i < len(alphabet); i++ {
		letterVal[alphabet[i]] = int16(i)
	}

	// Decode every gram into its rank sequence.
	tokGrams := make([][]uint32, len(v.grams))
	for gi, g := range v.grams {
		n := len(g) / v.wordSize
		if n < v.minN || n > v.maxN || len(g)%v.wordSize != 0 {
			return fmt.Errorf("textrep: gram %d length %d outside order range", gi, len(g))
		}
		seq := make([]uint32, n)
		for w := 0; w < n; w++ {
			word := g[w*v.wordSize : (w+1)*v.wordSize]
			rank := 0
			for k := 0; k < len(word); k++ {
				d := letterVal[word[k]]
				if d < 0 {
					return fmt.Errorf("textrep: gram %q letter %q outside alphabet", g, word[k])
				}
				rank = rank*len(alphabet) + int(d)
			}
			if rank >= ranks {
				return fmt.Errorf("textrep: gram %q decodes to rank %d, encoder has %d", g, rank, ranks)
			}
			seq[w] = uint32(rank)
		}
		tokGrams[gi] = seq
	}

	packBits := uint(bits.Len(uint(ranks - 1)))
	if packBits == 0 {
		packBits = 1
	}
	hashedFrom := v.maxN + 1
	for n := v.minN; n <= v.maxN; n++ {
		if uint(n)*packBits > 64 {
			hashedFrom = n
			break
		}
	}

	// Register keys; on an intra-vocabulary hash collision, reseed and
	// retry (deterministically) until every gram owns a distinct key.
	base := hashBase0
reseed:
	for attempt := 0; ; attempt++ {
		if attempt >= maxReseeds {
			return fmt.Errorf("textrep: token index could not find a collision-free hash seed in %d attempts", maxReseeds)
		}
		powBase := make([]uint64, v.maxN+1)
		powBase[0] = 1
		for k := 1; k <= v.maxN; k++ {
			powBase[k] = powBase[k-1] * base
		}
		tokIndex := make([]map[uint64]int32, v.maxN-v.minN+1)
		for i := range tokIndex {
			tokIndex[i] = map[uint64]int32{}
		}
		for gi, seq := range tokGrams {
			n := len(seq)
			key := tokenKey(seq, packBits, n >= hashedFrom, base)
			m := tokIndex[n-v.minN]
			if prev, dup := m[key]; dup && !rankSeqEqual(tokGrams[prev], seq) {
				base += hashStep
				continue reseed
			}
			m[key] = int32(gi)
		}
		v.tokGrams = tokGrams
		v.tokIndex = tokIndex
		v.packBits = packBits
		v.hashedFrom = hashedFrom
		v.hashBase = base
		v.powBase = powBase
		v.buildFastPaths(ranks)
		return nil
	}
}

// rank1Cap bounds the order-1 direct table: one int32 per encoder rank, so
// even a corpus where every point is a distinct value stays a few MB.
const rank1Cap = 1 << 24

// openTable is a linear-probing hash table from uint64 token keys to
// feature positions, sized to 4x its entry count (25% load). slot[i] < 0
// marks an empty slot, so a miss usually resolves on the first probe.
type openTable struct {
	keys  []uint64
	slots []int32
	shift uint
}

// buildOpenTable mirrors one order's key→position map into flat arrays.
func buildOpenTable(m map[uint64]int32) openTable {
	logSize := uint(2)
	for 1<<logSize < 4*len(m) {
		logSize++
	}
	t := openTable{
		keys:  make([]uint64, 1<<logSize),
		slots: make([]int32, 1<<logSize),
		shift: 64 - logSize,
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
	mask := uint64(1<<logSize - 1)
	for key, gi := range m {
		i := mixKey(key) >> t.shift
		for t.slots[i] >= 0 {
			i = (i + 1) & mask
		}
		t.keys[i] = key
		t.slots[i] = gi
	}
	return t
}

// get resolves a key; gi < 0 means absent.
func (t *openTable) get(key uint64) int32 {
	mask := uint64(len(t.keys) - 1)
	i := mixKey(key) >> t.shift
	for {
		gi := t.slots[i]
		if gi < 0 || t.keys[i] == key {
			return gi
		}
		i = (i + 1) & mask
	}
}

// buildFastPaths derives the scan-side lookup structures from the finished
// token index: the order-1 direct table and per-order open-addressed
// tables. Both are pure accelerators — they never change which windows
// match.
func (v *Vocabulary) buildFastPaths(ranks int) {
	v.rank1 = nil
	if v.minN == 1 && ranks <= rank1Cap {
		v.rank1 = make([]int32, ranks)
		for i := range v.rank1 {
			v.rank1[i] = -1
		}
		for key, gi := range v.tokIndex[0] {
			v.rank1[key] = gi
		}
	}
	v.tables = make([]openTable, len(v.tokIndex))
	for oi, m := range v.tokIndex {
		if len(m) > 0 {
			v.tables[oi] = buildOpenTable(m)
		}
	}
}

// mixKey scrambles a token key before table indexing (multiplicative
// hashing): packed keys concentrate entropy in the low bits, and the
// multiply moves it into the high bits the probe index uses.
func mixKey(k uint64) uint64 { return k * hashBase0 }

// HasTokenIndex reports whether BuildTokenIndex has run.
func (v *Vocabulary) HasTokenIndex() bool { return v.tokIndex != nil }

// tokenKey computes the uint64 key of one rank sequence: exact bit-packing
// for narrow orders, the rolling polynomial hash otherwise. Ranks are
// offset by 1 in the hash so a zero rank still advances the state.
func tokenKey(seq []uint32, packBits uint, hashed bool, base uint64) uint64 {
	if !hashed {
		var k uint64
		for _, t := range seq {
			k = k<<packBits | uint64(t)
		}
		return k
	}
	var h uint64
	for _, t := range seq {
		h = h*base + uint64(t) + 1
	}
	return h
}

func rankSeqEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TokenVectorizer owns the per-goroutine scratch of the token vectorize
// path: prefix hashes for rolling-hash windows and a dense count row with
// its touched set for sparse emission. One vectorizer per worker makes the
// whole batch path allocation-free after warm-up; it is NOT safe for
// concurrent use.
type TokenVectorizer struct {
	v      *Vocabulary
	prefix []uint64 // prefix[i] = hash of tokens[:i]
	counts []float64
	// mask is the touched-feature bitset of the row being built: bit gi is
	// set iff counts[gi] != 0. Sparse emission walks its set bits, which
	// come out in ascending column order for free — no per-row sort.
	mask []uint64
}

// NewTokenVectorizer returns a vectorizer bound to v. BuildTokenIndex must
// have run.
func (v *Vocabulary) NewTokenVectorizer() (*TokenVectorizer, error) {
	if v.tokIndex == nil {
		return nil, fmt.Errorf("textrep: vocabulary has no token index (call BuildTokenIndex)")
	}
	return &TokenVectorizer{
		v:      v,
		counts: make([]float64, len(v.grams)),
		mask:   make([]uint64, (len(v.grams)+63)/64),
	}, nil
}

// scan walks the token sequence with the exact control flow of the string
// VectorizeInto — per order, word-aligned windows, non-overlapping jumps
// on match — calling hit for every matched feature. Returns the total
// match count.
//
// Each populated order runs its fastest exact loop: order 1 indexes the
// direct rank table, packed orders roll the previous window's key forward
// with one shift+or, and hashed orders derive window hashes from the
// prefix array in O(1), verifying every table hit against the stored rank
// sequence so a colliding out-of-vocabulary window can never masquerade
// as a feature.
func (tv *TokenVectorizer) scan(tokens []uint32, hit func(int32)) float64 {
	v := tv.v
	needPrefix := false
	for n := max(v.hashedFrom, v.minN); n <= v.maxN; n++ {
		if len(v.tokIndex[n-v.minN]) > 0 {
			needPrefix = true
			break
		}
	}
	if needPrefix {
		if cap(tv.prefix) < len(tokens)+1 {
			tv.prefix = make([]uint64, len(tokens)+1)
		}
		tv.prefix = tv.prefix[:len(tokens)+1]
		tv.prefix[0] = 0
		for i, t := range tokens {
			tv.prefix[i+1] = tv.prefix[i]*v.hashBase + uint64(t) + 1
		}
	}
	var total float64
	for n := v.minN; n <= v.maxN; n++ {
		oi := n - v.minN
		if len(v.tokIndex[oi]) == 0 || n > len(tokens) {
			continue // no grams of this order, or no full window: all miss
		}
		if n == 1 && v.rank1 != nil {
			// Order 1 resolves through the direct table; the jump-on-match
			// and advance-on-miss steps coincide at n = 1.
			for _, t := range tokens {
				if gi := v.rank1[t]; gi >= 0 {
					hit(gi)
					total++
				}
			}
			continue
		}
		table := &v.tables[oi]
		if n >= v.hashedFrom {
			for off := 0; off+n <= len(tokens); {
				key := tv.prefix[off+n] - tv.prefix[off]*v.powBase[n]
				if gi := table.get(key); gi >= 0 && rankSeqEqual(v.tokGrams[gi], tokens[off:off+n]) {
					hit(gi)
					total++
					off += n // non-overlapping: jump the whole match
				} else {
					off++
				}
			}
			continue
		}
		// Packed order: advance-by-one shifts the next token into the
		// rolling key; a match jumps n words and repacks from scratch.
		w := uint(n) * v.packBits
		mask := ^uint64(0)
		if w < 64 {
			mask = 1<<w - 1
		}
		key := tokenKey(tokens[:n], v.packBits, false, 0)
		for off := 0; ; {
			if gi := table.get(key); gi >= 0 {
				hit(gi)
				total++
				off += n
				if off+n > len(tokens) {
					break
				}
				key = tokenKey(tokens[off:off+n], v.packBits, false, 0)
			} else {
				off++
				if off+n > len(tokens) {
					break
				}
				key = (key<<v.packBits | uint64(tokens[off+n-1])) & mask
			}
		}
	}
	return total
}

// VectorizeInto fills dst (len = Size()) with the normalized bag-of-words
// vector of the token sequence — element-for-element what the string path
// produces for the corresponding text. dst is zeroed first.
func (tv *TokenVectorizer) VectorizeInto(tokens []uint32, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	if len(tokens) == 0 {
		return
	}
	total := tv.scan(tokens, func(gi int32) { dst[gi]++ })
	if total > 0 {
		for i := range dst {
			dst[i] /= total
		}
	}
}

// AppendSparse vectorizes the token sequence directly into CSR row form:
// the row's nonzero (column, value) pairs, columns ascending, are appended
// to cols/vals and the grown slices returned. Values are the same
// count/total probabilities the dense path stores; untouched features are
// simply never emitted.
func (tv *TokenVectorizer) AppendSparse(tokens []uint32, cols []int32, vals []float64) ([]int32, []float64) {
	if len(tokens) == 0 {
		return cols, vals
	}
	total := tv.scan(tokens, func(gi int32) {
		tv.mask[uint32(gi)>>6] |= 1 << (uint32(gi) & 63)
		tv.counts[gi]++
	})
	if total == 0 {
		return cols, vals
	}
	for w, word := range tv.mask {
		if word == 0 {
			continue
		}
		tv.mask[w] = 0
		base := int32(w << 6)
		for word != 0 {
			gi := base + int32(bits.TrailingZeros64(word))
			word &= word - 1
			cols = append(cols, gi)
			vals = append(vals, tv.counts[gi]/total)
			tv.counts[gi] = 0
		}
	}
	return cols, vals
}
