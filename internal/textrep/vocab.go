package textrep

import (
	"fmt"
	"sort"
)

// Vocabulary is the set of unique word-aligned n-grams observed in a
// corpus, with the machinery to turn a text into a normalized bag-of-words
// feature vector (paper Fig. 6 and §III-C).
type Vocabulary struct {
	wordSize int
	minN     int
	maxN     int
	// index maps an n-gram string to its feature position.
	index map[string]int
	// grams lists the n-grams in feature order (sorted for determinism).
	grams []string
}

// VocabConfig controls vocabulary construction.
type VocabConfig struct {
	// WordSize is the encoder's per-word letter count.
	WordSize int
	// MinN and MaxN bound the n-gram orders collected; the paper traverses
	// the corpus n times with different window sizes, i.e. 1..n.
	MinN int
	MaxN int
	// MinFrequency discards n-grams occurring fewer times across the whole
	// corpus (the paper's term-frequency feature selection). Zero keeps all.
	MinFrequency int
	// MaxFeatures keeps only the most frequent n-grams when positive,
	// bounding the feature space on large corpora.
	MaxFeatures int
}

// BuildVocabulary scans the corpus with word-aligned windows of size
// W = w×n for every n in [MinN, MaxN] and collects unique window contents,
// then applies frequency-based feature selection.
func BuildVocabulary(corpus []string, cfg VocabConfig) (*Vocabulary, error) {
	if cfg.WordSize < 1 {
		return nil, fmt.Errorf("textrep: word size %d", cfg.WordSize)
	}
	if cfg.MinN < 1 || cfg.MaxN < cfg.MinN {
		return nil, fmt.Errorf("textrep: invalid n-gram range [%d,%d]", cfg.MinN, cfg.MaxN)
	}
	for i, line := range corpus {
		if len(line)%cfg.WordSize != 0 {
			return nil, fmt.Errorf("textrep: corpus line %d length %d not a multiple of word size %d",
				i, len(line), cfg.WordSize)
		}
	}

	freq := map[string]int{}
	for _, line := range corpus {
		for n := cfg.MinN; n <= cfg.MaxN; n++ {
			window := cfg.WordSize * n
			// Slide word by word, counting every (overlapping) window: this
			// is vocabulary collection, where coverage matters.
			for off := 0; off+window <= len(line); off += cfg.WordSize {
				freq[line[off:off+window]]++
			}
		}
	}
	if len(freq) == 0 {
		return nil, fmt.Errorf("textrep: corpus too short for %d-grams", cfg.MinN)
	}

	grams := make([]string, 0, len(freq))
	for g, c := range freq {
		if cfg.MinFrequency > 0 && c < cfg.MinFrequency {
			continue
		}
		grams = append(grams, g)
	}
	if len(grams) == 0 {
		return nil, fmt.Errorf("textrep: frequency threshold %d removed every feature", cfg.MinFrequency)
	}

	if cfg.MaxFeatures > 0 && len(grams) > cfg.MaxFeatures {
		// Keep the most frequent; ties broken lexicographically for
		// determinism.
		sort.Slice(grams, func(i, j int) bool {
			if freq[grams[i]] != freq[grams[j]] {
				return freq[grams[i]] > freq[grams[j]]
			}
			return grams[i] < grams[j]
		})
		grams = grams[:cfg.MaxFeatures]
	}
	sort.Strings(grams)

	v := &Vocabulary{
		wordSize: cfg.WordSize,
		minN:     cfg.MinN,
		maxN:     cfg.MaxN,
		index:    make(map[string]int, len(grams)),
		grams:    grams,
	}
	for i, g := range grams {
		v.index[g] = i
	}
	return v, nil
}

// Size returns the feature dimensionality.
func (v *Vocabulary) Size() int { return len(v.grams) }

// Grams returns the features in vector order. The slice is shared; callers
// must not modify it.
func (v *Vocabulary) Grams() []string { return v.grams }

// Vectorize counts, for every vocabulary n-gram order, the NON-overlapping
// word-aligned occurrences in the text (the paper counts "words and
// non-overlapping occurrences of word sequences"), then normalizes the
// vector to sum 1 so each feature is an occurrence probability.
func (v *Vocabulary) Vectorize(text string) []float64 {
	vec := make([]float64, len(v.grams))
	v.VectorizeInto(text, vec)
	return vec
}

// VectorizeInto vectorizes text into dst (len = Size()), which must be
// zeroed; it lets batch callers fill rows of a preallocated matrix without
// per-sample allocations.
func (v *Vocabulary) VectorizeInto(text string, dst []float64) {
	vec := dst
	if len(text) == 0 {
		return
	}
	var total float64
	for n := v.minN; n <= v.maxN; n++ {
		window := v.wordSize * n
		for off := 0; off+window <= len(text); {
			gram := text[off : off+window]
			if i, ok := v.index[gram]; ok {
				vec[i]++
				total++
				off += window // non-overlapping: jump the whole match
			} else {
				off += v.wordSize
			}
		}
	}
	if total > 0 {
		for i := range vec {
			vec[i] /= total
		}
	}
}

// VectorizeAll vectorizes every text.
func (v *Vocabulary) VectorizeAll(texts []string) [][]float64 {
	out := make([][]float64, len(texts))
	for i, t := range texts {
		out[i] = v.Vectorize(t)
	}
	return out
}
