package textrep

import (
	"math/rand"
	"testing"
)

func benchSignals(n, points int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	out := make([][]float64, n)
	for i := range out {
		sig := make([]float64, points)
		base := float64(rng.Intn(5)) * 40
		for j := range sig {
			sig[j] = base + rng.Float64()*20
		}
		out[i] = sig
	}
	return out
}

func BenchmarkPipelineBuild(b *testing.B) {
	signals := benchSignals(200, 80)
	cfg := DefaultPipelineConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPipeline(signals, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorize(b *testing.B) {
	signals := benchSignals(200, 80)
	p, err := NewPipeline(signals, DefaultPipelineConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Features(signals[i%len(signals)])
	}
}

// BenchmarkEncodeString vs BenchmarkEncodeTokens: the string build versus
// the allocation-free rank-id path.
func BenchmarkEncodeString(b *testing.B) {
	signals := benchSignals(200, 80)
	enc, err := BuildEncoder(signals, FloorDiscretizer, DefaultAlphabet)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Encode(signals[i%len(signals)])
	}
}

func BenchmarkEncodeTokens(b *testing.B) {
	signals := benchSignals(200, 80)
	enc, err := BuildEncoder(signals, FloorDiscretizer, DefaultAlphabet)
	if err != nil {
		b.Fatal(err)
	}
	var tokens []uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tokens = enc.EncodeTokens(signals[i%len(signals)], tokens)
	}
}

// BenchmarkVectorizeStringDense vs BenchmarkVectorizeTokenSparse: one
// sample through the legacy encode+map path into a dense row, versus the
// token path into a reused sparse row.
func BenchmarkVectorizeStringDense(b *testing.B) {
	signals := benchSignals(200, 80)
	p, err := NewPipeline(signals, DefaultPipelineConfig())
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, p.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Vocabulary().VectorizeInto(p.Encoder().Encode(signals[i%len(signals)]), dst)
	}
}

func BenchmarkVectorizeTokenSparse(b *testing.B) {
	signals := benchSignals(200, 80)
	p, err := NewPipeline(signals, DefaultPipelineConfig())
	if err != nil {
		b.Fatal(err)
	}
	tv, err := p.Vocabulary().NewTokenVectorizer()
	if err != nil {
		b.Fatal(err)
	}
	var tokens []uint32
	cols := make([]int32, 0, 256)
	vals := make([]float64, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tokens = p.Encoder().EncodeTokens(signals[i%len(signals)], tokens)
		cols, vals = tv.AppendSparse(tokens, cols[:0], vals[:0])
	}
}

// Whole-batch featurization: legacy dense matrix vs CSR.
func BenchmarkFeaturesAllDense(b *testing.B) {
	signals := benchSignals(200, 80)
	p, err := NewPipeline(signals, DefaultPipelineConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.FeaturesAll(signals)
	}
}

func BenchmarkFeaturesAllSparse(b *testing.B) {
	signals := benchSignals(200, 80)
	p, err := NewPipeline(signals, DefaultPipelineConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.FeaturesAllSparse(signals)
	}
}
