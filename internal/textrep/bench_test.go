package textrep

import (
	"math/rand"
	"testing"
)

func benchSignals(n, points int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	out := make([][]float64, n)
	for i := range out {
		sig := make([]float64, points)
		base := float64(rng.Intn(5)) * 40
		for j := range sig {
			sig[j] = base + rng.Float64()*20
		}
		out[i] = sig
	}
	return out
}

func BenchmarkPipelineBuild(b *testing.B) {
	signals := benchSignals(200, 80)
	cfg := DefaultPipelineConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPipeline(signals, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorize(b *testing.B) {
	signals := benchSignals(200, 80)
	p, err := NewPipeline(signals, DefaultPipelineConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Features(signals[i%len(signals)])
	}
}
