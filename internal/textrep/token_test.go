package textrep

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// tokenTestSignals generates corpora with a controllable unique-value
// count; classes differ by base elevation so vocabularies are non-trivial.
func tokenTestSignals(n, points int, spread float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		sig := make([]float64, points)
		base := float64(rng.Intn(5)) * spread
		for j := range sig {
			sig[j] = base + rng.Float64()*spread
		}
		out[i] = sig
	}
	return out
}

func TestEncodeTokensMatchesEncode(t *testing.T) {
	signals := tokenTestSignals(40, 60, 30, 7)
	enc, err := BuildEncoder(signals, FloorDiscretizer, DefaultAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	// Probe trained signals plus fresh ones with unseen values (nearest
	// fallback) and out-of-range clamps.
	probes := append(tokenTestSignals(10, 60, 30, 8), []float64{-500, 0.5, 9999, 17.3})
	var tokens []uint32
	for _, sig := range probes {
		tokens = enc.EncodeTokens(sig, tokens)
		if len(tokens) != len(sig) {
			t.Fatalf("token count %d for %d samples", len(tokens), len(sig))
		}
		text := enc.Encode(sig)
		for i, tok := range tokens {
			word := enc.Word(int(tok))
			if got := text[i*enc.WordSize() : (i+1)*enc.WordSize()]; got != word {
				t.Fatalf("sample %d: string path word %q, token path word %q", i, got, word)
			}
		}
	}
}

func TestEncodeTokensReusesBuffer(t *testing.T) {
	enc, err := BuildEncoder([][]float64{{1, 2, 3}}, FloorDiscretizer, DefaultAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint32, 0, 16)
	got := enc.EncodeTokens([]float64{1, 2}, buf)
	if &got[0] != &buf[:1][0] {
		t.Error("EncodeTokens reallocated despite sufficient capacity")
	}
}

// newTestPipeline builds a pipeline and fails the test on error.
func newTestPipeline(t *testing.T, signals [][]float64, cfg PipelineConfig) *Pipeline {
	t.Helper()
	p, err := NewPipeline(signals, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// assertTokenStringParity checks, for every signal, that the token
// vectorizer and the string vectorizer produce bitwise-identical rows, and
// that the sparse row re-densifies to the same bits.
func assertTokenStringParity(t *testing.T, p *Pipeline, signals [][]float64) {
	t.Helper()
	tv, err := p.Vocabulary().NewTokenVectorizer()
	if err != nil {
		t.Fatal(err)
	}
	dim := p.Dim()
	stringRow := make([]float64, dim)
	tokenRow := make([]float64, dim)
	sparseRow := make([]float64, dim)
	var tokens []uint32
	for si, sig := range signals {
		p.Vocabulary().VectorizeInto(p.Encoder().Encode(sig), stringRow)
		tokens = p.Encoder().EncodeTokens(sig, tokens)
		tv.VectorizeInto(tokens, tokenRow)

		cols, vals := tv.AppendSparse(tokens, nil, nil)
		for i := range sparseRow {
			sparseRow[i] = 0
		}
		for k, c := range cols {
			if k > 0 && cols[k-1] >= c {
				t.Fatalf("signal %d: sparse columns not strictly ascending: %v", si, cols)
			}
			sparseRow[c] = vals[k]
		}

		for i := range stringRow {
			if stringRow[i] != tokenRow[i] {
				t.Fatalf("signal %d feature %d: string %v, token %v", si, i, stringRow[i], tokenRow[i])
			}
			if stringRow[i] != sparseRow[i] {
				t.Fatalf("signal %d feature %d: string %v, sparse %v", si, i, stringRow[i], sparseRow[i])
			}
		}
	}
}

func TestTokenVectorizePackedParity(t *testing.T) {
	// Narrow value range: every order bit-packs.
	signals := tokenTestSignals(60, 80, 20, 11)
	cfg := DefaultPipelineConfig()
	cfg.MinFrequency = 1
	p := newTestPipeline(t, signals, cfg)
	if p.Vocabulary().hashedFrom <= p.Vocabulary().maxN {
		t.Fatalf("expected fully packed index, hashedFrom = %d", p.Vocabulary().hashedFrom)
	}
	assertTokenStringParity(t, p, signals)
	assertTokenStringParity(t, p, tokenTestSignals(10, 80, 25, 12)) // unseen values
}

func TestTokenVectorizeHashedParity(t *testing.T) {
	// Wide value range: enough unique discrete values that high orders
	// overflow 64-bit packing and take the verified rolling-hash path.
	signals := tokenTestSignals(80, 120, 400, 13)
	cfg := DefaultPipelineConfig()
	cfg.MinFrequency = 1
	p := newTestPipeline(t, signals, cfg)
	v := p.Vocabulary()
	if v.hashedFrom > v.maxN {
		t.Fatalf("expected hashed orders (c = %d ranks), all packed", p.Encoder().UniqueValues())
	}
	assertTokenStringParity(t, p, signals)
	assertTokenStringParity(t, p, tokenTestSignals(10, 120, 420, 14)) // unseen values
}

func TestFeaturesAllSparseMatchesDense(t *testing.T) {
	for _, spread := range []float64{20, 400} { // packed and hashed regimes
		signals := tokenTestSignals(50, 90, spread, 17)
		cfg := DefaultPipelineConfig()
		p := newTestPipeline(t, signals, cfg)

		dense := p.FeaturesAll(signals)
		sparse := p.FeaturesAllSparse(signals)
		if sparse.Rows != dense.Rows || sparse.Cols != dense.Cols {
			t.Fatalf("sparse shape %dx%d, dense %dx%d", sparse.Rows, sparse.Cols, dense.Rows, dense.Cols)
		}
		back := sparse.ToDense()
		for i := range dense.Data {
			if dense.Data[i] != back.Data[i] {
				t.Fatalf("spread %v: element %d dense %v sparse %v", spread, i, dense.Data[i], back.Data[i])
			}
		}
		if sparse.NNZ() >= dense.Rows*dense.Cols/2 {
			t.Errorf("sparse matrix is not sparse: %d nnz of %d", sparse.NNZ(), dense.Rows*dense.Cols)
		}
	}
}

func TestBuildEncoderRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := BuildEncoder([][]float64{{1, bad, 3}}, FloorDiscretizer, DefaultAlphabet); err == nil {
			t.Errorf("corpus containing %v accepted", bad)
		}
	}
	// A discretizer that manufactures non-finite keys from finite input is
	// rejected too.
	badDisc := func(e float64) float64 { return math.NaN() }
	if _, err := BuildEncoder([][]float64{{1}}, badDisc, DefaultAlphabet); err == nil {
		t.Error("NaN-producing discretizer accepted")
	}
}

func TestEncodeNaNDeterministicClamp(t *testing.T) {
	enc, err := BuildEncoder([][]float64{{10, 20, 30}}, FloorDiscretizer, DefaultAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	// A NaN at encode time (impossible to train on) deterministically
	// clamps to the highest rank on both paths.
	if got, want := enc.Encode([]float64{math.NaN()}), enc.Encode([]float64{30}); got != want {
		t.Errorf("Encode(NaN) = %q, want %q", got, want)
	}
	toks := enc.EncodeTokens([]float64{math.NaN()}, nil)
	if int(toks[0]) != enc.UniqueValues()-1 {
		t.Errorf("EncodeTokens(NaN) = rank %d, want %d", toks[0], enc.UniqueValues()-1)
	}
}

func TestVectorizeIntoZeroesDirtyDst(t *testing.T) {
	vocab, err := BuildVocabulary([]string{"aabb"}, VocabConfig{WordSize: 1, MinN: 1, MaxN: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := vocab.Vectorize("aabb")
	dirty := make([]float64, vocab.Size())
	for i := range dirty {
		dirty[i] = 99
	}
	vocab.VectorizeInto("aabb", dirty)
	for i := range want {
		if dirty[i] != want[i] {
			t.Fatalf("feature %d = %v after dirty reuse, want %v", i, dirty[i], want[i])
		}
	}
	// Empty text must also clear stale counts.
	for i := range dirty {
		dirty[i] = 99
	}
	vocab.VectorizeInto("", dirty)
	for i, v := range dirty {
		if v != 0 {
			t.Fatalf("feature %d = %v for empty text, want 0", i, v)
		}
	}
}

func TestBuildTokenIndexValidation(t *testing.T) {
	vocab, err := BuildVocabulary([]string{"abab"}, VocabConfig{WordSize: 1, MinN: 1, MaxN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := vocab.BuildTokenIndex("a", 2); err == nil {
		t.Error("1-letter alphabet accepted")
	}
	if err := vocab.BuildTokenIndex("ab", 0); err == nil {
		t.Error("zero ranks accepted")
	}
	// Gram "b" decodes to rank 1, out of range for a 1-rank encoder.
	if err := vocab.BuildTokenIndex("ab", 1); err == nil {
		t.Error("out-of-range gram rank accepted")
	}
	if vocab.HasTokenIndex() {
		t.Error("failed build left a token index behind")
	}
	if err := vocab.BuildTokenIndex("ab", 2); err != nil {
		t.Fatal(err)
	}
	if !vocab.HasTokenIndex() {
		t.Error("token index missing after successful build")
	}
}

func TestPipelinePersistenceTokenPath(t *testing.T) {
	// Spread wide enough to exercise the hashed orders in the reloaded
	// index as well.
	signals := tokenTestSignals(60, 100, 350, 19)
	cfg := DefaultPipelineConfig()
	cfg.Discretizer = nil
	cfg.Precision = 1
	p := newTestPipeline(t, signals, cfg)

	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Pipeline
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Vocabulary().HasTokenIndex() {
		t.Fatal("reloaded pipeline lost its token index")
	}

	// Unseen-value signals (nearest-value fallback included) featurize
	// identically before and after the round-trip, on the token path.
	fresh := append(tokenTestSignals(8, 100, 360, 20), []float64{-1000, 0.05, 5000, 123.4567})
	var wantToks, gotToks []uint32
	for si, sig := range fresh {
		wantToks = p.Encoder().EncodeTokens(sig, wantToks)
		gotToks = back.Encoder().EncodeTokens(sig, gotToks)
		for i := range wantToks {
			if wantToks[i] != gotToks[i] {
				t.Fatalf("signal %d token %d: %d before save, %d after", si, i, wantToks[i], gotToks[i])
			}
		}
	}
	want := p.FeaturesAllSparse(fresh)
	got := back.FeaturesAllSparse(fresh)
	if want.NNZ() != got.NNZ() {
		t.Fatalf("nnz %d before save, %d after", want.NNZ(), got.NNZ())
	}
	for k := range want.Val {
		if want.ColIdx[k] != got.ColIdx[k] || want.Val[k] != got.Val[k] {
			t.Fatalf("nonzero %d: (%d,%v) before save, (%d,%v) after",
				k, want.ColIdx[k], want.Val[k], got.ColIdx[k], got.Val[k])
		}
	}
}
