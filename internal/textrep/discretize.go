// Package textrep implements the paper's text-like representation of
// elevation profiles (§III-B1, Figs. 5-6): elevation signals are
// discretized, each unique discrete value is mapped to a fixed-length
// word over an alphabet, signals become texts, and a vocabulary of
// word-aligned n-grams turns each text into a normalized bag-of-words
// feature vector.
package textrep

import "math"

// Discretizer maps a raw elevation value onto its discrete bucket.
type Discretizer func(float64) float64

// FloorDiscretizer is the paper's f(e) = ⌊e⌋, used for the densely sampled
// user-specific dataset where 1 m resolution suffices.
func FloorDiscretizer(e float64) float64 { return math.Floor(e) }

// PrecisionDiscretizer returns the paper's f(e) = ⌊e·10^d⌋ / 10^d family,
// with d = 3 used for the sparse mined datasets.
func PrecisionDiscretizer(digits int) Discretizer {
	scale := math.Pow(10, float64(digits))
	return func(e float64) float64 {
		return math.Floor(e*scale) / scale
	}
}

// Discretize applies d to every value of the signal, returning a new slice.
func Discretize(signal []float64, d Discretizer) []float64 {
	out := make([]float64, len(signal))
	for i, e := range signal {
		out[i] = d(e)
	}
	return out
}

// WordSize computes the paper's rule w = ⌈log_l c⌉: the number of alphabet
// letters needed to give each of c unique values a distinct word. c < 2
// still requires one letter.
func WordSize(alphabetLen, uniqueValues int) int {
	if alphabetLen < 2 || uniqueValues <= 1 {
		return 1
	}
	w := int(math.Ceil(math.Log(float64(uniqueValues)) / math.Log(float64(alphabetLen))))
	if w < 1 {
		w = 1
	}
	// Guard against floating-point shortfall (e.g. log(676)/log(26) = 2-ε).
	for pow(alphabetLen, w) < uniqueValues {
		w++
	}
	return w
}

// pow is integer exponentiation with saturation.
func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		if out > math.MaxInt/base {
			return math.MaxInt
		}
		out *= base
	}
	return out
}
