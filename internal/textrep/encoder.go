package textrep

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DefaultAlphabet is the lowercase Latin alphabet (l = 26).
const DefaultAlphabet = "abcdefghijklmnopqrstuvwxyz"

// Encoder maps discrete elevation values to fixed-length words and encodes
// whole signals as texts. It is built once over the full corpus (the paper
// builds its vocabulary "from all encoded signals regardless of labels")
// and is immutable afterwards.
type Encoder struct {
	disc     Discretizer
	alphabet string
	wordSize int
	words    map[float64]string
	// sortedVals supports nearest-value fallback for values unseen at build
	// time (a fresh victim profile can contain new elevations).
	sortedVals []float64
}

// BuildEncoder derives the word mapping from every signal in the corpus:
// signals are discretized, unique values are collected and sorted, the word
// size w = ⌈log_l c⌉ is computed, and the i-th smallest value is assigned
// the i-th base-l word.
func BuildEncoder(signals [][]float64, disc Discretizer, alphabet string) (*Encoder, error) {
	if disc == nil {
		return nil, fmt.Errorf("textrep: nil discretizer")
	}
	if len(alphabet) < 2 {
		return nil, fmt.Errorf("textrep: alphabet needs >= 2 letters, got %d", len(alphabet))
	}
	seen := map[float64]bool{}
	for _, sig := range signals {
		for _, e := range sig {
			seen[disc(e)] = true
		}
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("textrep: empty corpus")
	}

	vals := make([]float64, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Float64s(vals)

	w := WordSize(len(alphabet), len(vals))
	enc := &Encoder{
		disc:       disc,
		alphabet:   alphabet,
		wordSize:   w,
		words:      make(map[float64]string, len(vals)),
		sortedVals: vals,
	}
	for i, v := range vals {
		enc.words[v] = indexWord(i, w, alphabet)
	}
	return enc, nil
}

// indexWord renders index i as a base-l word of exactly w letters.
func indexWord(i, w int, alphabet string) string {
	l := len(alphabet)
	buf := make([]byte, w)
	for k := w - 1; k >= 0; k-- {
		buf[k] = alphabet[i%l]
		i /= l
	}
	return string(buf)
}

// WordSize returns the per-word letter count.
func (e *Encoder) WordSize() int { return e.wordSize }

// UniqueValues returns the number of distinct discrete values.
func (e *Encoder) UniqueValues() int { return len(e.sortedVals) }

// Encode converts a signal into its text: the concatenation of the word of
// every discretized value. Values unseen at build time map to the nearest
// known discrete value.
func (e *Encoder) Encode(signal []float64) string {
	var sb strings.Builder
	sb.Grow(len(signal) * e.wordSize)
	for _, raw := range signal {
		v := e.disc(raw)
		word, ok := e.words[v]
		if !ok {
			word = e.words[e.nearest(v)]
		}
		sb.WriteString(word)
	}
	return sb.String()
}

// EncodeAll encodes every signal, producing the corpus (one line per
// sample, as in the paper's Fig. 6).
func (e *Encoder) EncodeAll(signals [][]float64) []string {
	out := make([]string, len(signals))
	for i, sig := range signals {
		out[i] = e.Encode(sig)
	}
	return out
}

// nearest returns the known discrete value closest to v.
func (e *Encoder) nearest(v float64) float64 {
	i := sort.SearchFloat64s(e.sortedVals, v)
	switch {
	case i == 0:
		return e.sortedVals[0]
	case i == len(e.sortedVals):
		return e.sortedVals[len(e.sortedVals)-1]
	}
	lo, hi := e.sortedVals[i-1], e.sortedVals[i]
	if math.Abs(v-lo) <= math.Abs(hi-v) {
		return lo
	}
	return hi
}
