package textrep

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DefaultAlphabet is the lowercase Latin alphabet (l = 26).
const DefaultAlphabet = "abcdefghijklmnopqrstuvwxyz"

// Encoder maps discrete elevation values to fixed-length words and encodes
// whole signals as texts. It is built once over the full corpus (the paper
// builds its vocabulary "from all encoded signals regardless of labels")
// and is immutable afterwards.
//
// The hot path is the token form: a discrete value's identity is its RANK
// in sortedVals (a uint32), found by binary search, and the word string of
// rank i is just indexWord(i). EncodeTokens therefore never builds strings
// or hashes floats; Encode remains as the thin string-compatibility layer
// on top of the same rank lookup.
type Encoder struct {
	disc     Discretizer
	alphabet string
	wordSize int
	// wordByRank[i] is the base-l word of the i-th smallest discrete value.
	wordByRank []string
	// sortedVals supports rank lookup and nearest-value fallback for values
	// unseen at build time (a fresh victim profile can contain new
	// elevations).
	sortedVals []float64
	// blockLast[k] is the last value of sortedVals block k (rankBlock values
	// per block): a small cache-resident array searched first, so the full
	// table is touched only inside one block per lookup.
	blockLast []float64
	// exact resolves values seen at build time in one table probe, keyed by
	// their bit pattern; only unseen values (and -0.0, whose bits differ
	// from the stored +0.0) fall through to the binary search.
	exact openTable
}

// rankBlock is the two-level rank-search block size: 64 float64s span 8
// cache lines, while the block-max array stays ~1/64th of the value table.
const rankBlock = 64

// BuildEncoder derives the word mapping from every signal in the corpus:
// signals are discretized, unique values are collected and sorted, the word
// size w = ⌈log_l c⌉ is computed, and the i-th smallest value is assigned
// the i-th base-l word. Non-finite elevations (NaN, ±Inf) are rejected: a
// NaN key would be unfindable later (NaN ≠ NaN) and would corrupt the
// sorted value table every rank lookup depends on.
func BuildEncoder(signals [][]float64, disc Discretizer, alphabet string) (*Encoder, error) {
	if disc == nil {
		return nil, fmt.Errorf("textrep: nil discretizer")
	}
	if len(alphabet) < 2 {
		return nil, fmt.Errorf("textrep: alphabet needs >= 2 letters, got %d", len(alphabet))
	}
	seen := map[float64]bool{}
	for si, sig := range signals {
		for j, e := range sig {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				return nil, fmt.Errorf("textrep: signal %d value %d is %v; elevations must be finite", si, j, e)
			}
			v := disc(e)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("textrep: discretizer mapped signal %d value %d (%v) to %v; discrete keys must be finite", si, j, e, v)
			}
			seen[v] = true
		}
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("textrep: empty corpus")
	}

	vals := make([]float64, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Float64s(vals)

	w := WordSize(len(alphabet), len(vals))
	enc := &Encoder{
		disc:       disc,
		alphabet:   alphabet,
		wordSize:   w,
		wordByRank: make([]string, len(vals)),
		sortedVals: vals,
	}
	for i := range vals {
		enc.wordByRank[i] = indexWord(i, w, alphabet)
	}
	enc.buildRankIndex()
	return enc, nil
}

// buildRankIndex derives the rank-lookup accelerators from sortedVals: the
// block-max array of the two-level binary search and the exact-hit table.
func (e *Encoder) buildRankIndex() {
	vals := e.sortedVals
	e.blockLast = make([]float64, 0, (len(vals)+rankBlock-1)/rankBlock)
	for end := rankBlock; end < len(vals); end += rankBlock {
		e.blockLast = append(e.blockLast, vals[end-1])
	}
	e.blockLast = append(e.blockLast, vals[len(vals)-1])

	byBits := make(map[uint64]int32, len(vals))
	for i, v := range vals {
		byBits[math.Float64bits(v)] = int32(i)
	}
	e.exact = buildOpenTable(byBits)
}

// indexWord renders index i as a base-l word of exactly w letters.
func indexWord(i, w int, alphabet string) string {
	l := len(alphabet)
	buf := make([]byte, w)
	for k := w - 1; k >= 0; k-- {
		buf[k] = alphabet[i%l]
		i /= l
	}
	return string(buf)
}

// WordSize returns the per-word letter count.
func (e *Encoder) WordSize() int { return e.wordSize }

// UniqueValues returns the number of distinct discrete values.
func (e *Encoder) UniqueValues() int { return len(e.sortedVals) }

// Encode converts a signal into its text: the concatenation of the word of
// every discretized value. Values unseen at build time map to the nearest
// known discrete value. This is the string-compatibility wrapper over the
// token path; both produce the word sequence rank-for-rank.
func (e *Encoder) Encode(signal []float64) string {
	var sb strings.Builder
	sb.Grow(len(signal) * e.wordSize)
	for _, raw := range signal {
		sb.WriteString(e.wordByRank[e.rank(e.disc(raw))])
	}
	return sb.String()
}

// EncodeAll encodes every signal, producing the corpus (one line per
// sample, as in the paper's Fig. 6).
func (e *Encoder) EncodeAll(signals [][]float64) []string {
	out := make([]string, len(signals))
	for i, sig := range signals {
		out[i] = e.Encode(sig)
	}
	return out
}

// EncodeTokens converts a signal into rank ids: token i is the rank of the
// i-th discretized value in the encoder's sorted value table, with unseen
// values snapping to the nearest known value exactly as Encode does. dst
// is reused when its capacity suffices, so batch callers encode with zero
// allocations.
func (e *Encoder) EncodeTokens(signal []float64, dst []uint32) []uint32 {
	if cap(dst) < len(signal) {
		dst = make([]uint32, len(signal))
	}
	dst = dst[:len(signal)]
	for i, raw := range signal {
		dst[i] = uint32(e.rank(e.disc(raw)))
	}
	return dst
}

// Word returns the word assigned to rank r (for inspection/tests).
func (e *Encoder) Word(r int) string { return e.wordByRank[r] }

// rank returns the index of v in sortedVals when present, and the index of
// the nearest known value otherwise. NaN (only reachable through a
// pathological custom discretizer at encode time — BuildEncoder rejects
// non-finite corpora) deterministically clamps to the highest rank, the
// same value the historical map-miss fallback produced.
func (e *Encoder) rank(v float64) int {
	if gi := e.exact.get(math.Float64bits(v)); gi >= 0 {
		return int(gi)
	}
	if math.IsNaN(v) {
		return len(e.sortedVals) - 1
	}
	i := e.searchVals(v)
	switch {
	case i == len(e.sortedVals):
		return len(e.sortedVals) - 1
	case e.sortedVals[i] == v:
		return i
	case i == 0:
		return 0
	}
	lo, hi := e.sortedVals[i-1], e.sortedVals[i]
	if math.Abs(v-lo) <= math.Abs(hi-v) {
		return i - 1
	}
	return i
}

// searchVals returns the smallest index i with sortedVals[i] >= v, and
// len(sortedVals) when no such value exists — sort.SearchFloat64s in two
// levels: the block-max array locates the block, then only that block of
// the full table is searched, keeping lookups cache-resident on corpora
// with tens of thousands of discrete values.
func (e *Encoder) searchVals(v float64) int {
	k := searchFloat64s(e.blockLast, v)
	if k == len(e.blockLast) {
		return len(e.sortedVals)
	}
	lo := k * rankBlock
	hi := min(lo+rankBlock, len(e.sortedVals))
	return lo + searchFloat64s(e.sortedVals[lo:hi], v)
}

// searchFloat64s is sort.SearchFloat64s without the sort.Search closure
// indirection, in branchless form: the half-step is applied via a
// conditional move instead of a data-dependent branch, which would
// mispredict near-always on random probe values. One call per signal
// point makes this the single hottest loop of encoding.
func searchFloat64s(a []float64, v float64) int {
	base, n := 0, len(a)
	for n > 1 {
		half := n >> 1
		if a[base+half-1] < v {
			base += half
		}
		n -= half
	}
	if n == 1 && a[base] < v {
		base++
	}
	return base
}
