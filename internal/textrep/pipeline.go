package textrep

import (
	"encoding/json"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"

	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/obs"
)

// Pipeline bundles the full text-like preprocessing chain — discretize,
// encode, vectorize — behind one object, built once per dataset. The hot
// path is integer end to end: signals encode to rank-id tokens (no string
// build), n-grams resolve through uint64 keys (no substring hashing), and
// batches can come out as CSR sparse matrices (no >95%-zero dense rows).
type Pipeline struct {
	encoder *Encoder
	vocab   *Vocabulary
	// precision records the discretizer for persistence: 0 = floor,
	// d > 0 = PrecisionDiscretizer(d).
	precision int
}

// PipelineConfig configures NewPipeline.
type PipelineConfig struct {
	// Discretizer buckets raw elevations; when nil it is derived from
	// Precision (0 = FloorDiscretizer).
	Discretizer Discretizer
	// Precision selects the built-in discretizer family when Discretizer
	// is nil: 0 applies ⌊e⌋, d > 0 applies ⌊e·10^d⌋/10^d. Recorded for
	// persistence.
	Precision int
	// Alphabet for word encoding; DefaultAlphabet when empty.
	Alphabet string
	// NGram is the paper's n (8 in all experiments). Vocabulary spans
	// [1, NGram] orders.
	NGram int
	// MinFrequency and MaxFeatures forward to VocabConfig.
	MinFrequency int
	MaxFeatures  int
}

// DefaultPipelineConfig matches the paper's evaluation settings: floor
// discretization, 26-letter alphabet, n = 8.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Discretizer:  FloorDiscretizer,
		Alphabet:     DefaultAlphabet,
		NGram:        8,
		MinFrequency: 2,
		MaxFeatures:  4096,
	}
}

// NewPipeline builds the encoder and vocabulary over all signals. For a
// pipeline that should survive persistence, set cfg.Precision instead of a
// raw Discretizer.
func NewPipeline(signals [][]float64, cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Discretizer == nil {
		if cfg.Precision > 0 {
			cfg.Discretizer = PrecisionDiscretizer(cfg.Precision)
		} else {
			cfg.Discretizer = FloorDiscretizer
		}
	}
	if cfg.Alphabet == "" {
		cfg.Alphabet = DefaultAlphabet
	}
	if cfg.NGram < 1 {
		return nil, fmt.Errorf("textrep: NGram must be >= 1, got %d", cfg.NGram)
	}

	enc, err := BuildEncoder(signals, cfg.Discretizer, cfg.Alphabet)
	if err != nil {
		return nil, err
	}
	corpus := enc.EncodeAll(signals)
	vocab, err := BuildVocabulary(corpus, VocabConfig{
		WordSize:     enc.WordSize(),
		MinN:         1,
		MaxN:         cfg.NGram,
		MinFrequency: cfg.MinFrequency,
		MaxFeatures:  cfg.MaxFeatures,
	})
	if err != nil {
		return nil, err
	}
	if err := vocab.BuildTokenIndex(cfg.Alphabet, enc.UniqueValues()); err != nil {
		return nil, err
	}
	return &Pipeline{encoder: enc, vocab: vocab, precision: cfg.Precision}, nil
}

// Features converts one raw signal into its normalized BoW feature vector.
func (p *Pipeline) Features(signal []float64) []float64 {
	out := make([]float64, p.vocab.Size())
	tv, err := p.vocab.NewTokenVectorizer()
	if err != nil {
		// Vocabulary built without a token index (legacy construction):
		// fall back to the string path, which needs no index.
		p.vocab.VectorizeInto(p.encoder.Encode(signal), out)
		return out
	}
	tv.VectorizeInto(p.encoder.EncodeTokens(signal, nil), out)
	return out
}

// forEachSignal partitions [0, n) into contiguous chunks and runs fn on
// each concurrently, handing every worker its own TokenVectorizer — the
// fan-out used by both batch featurizers. Per-sample outputs depend only
// on the sample, so results are identical at any worker count. Returns
// false when the vocabulary has no token index.
func (p *Pipeline) forEachSignal(n int, fn func(lo, hi int, tv *TokenVectorizer)) bool {
	if !p.vocab.HasTokenIndex() {
		return false
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		tv, err := p.vocab.NewTokenVectorizer()
		if err != nil {
			return false
		}
		fn(0, n, tv)
		return true
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		tv, err := p.vocab.NewTokenVectorizer()
		if err != nil {
			return false
		}
		wg.Add(1)
		go func(lo, hi int, tv *TokenVectorizer) {
			defer wg.Done()
			fn(lo, hi, tv)
		}(lo, hi, tv)
	}
	wg.Wait()
	return true
}

// Featurization telemetry: batch throughput (rows featurized and wall time
// per batch call), shared by the dense and sparse paths.
var (
	featurizeRows    = obs.GetCounter("elevpriv_textrep_rows_featurized_total")
	featurizeSeconds = obs.GetHistogram("elevpriv_textrep_featurize_seconds", nil)
)

// FeaturesAll converts a batch of signals into one dense n×Dim feature
// matrix, each sample tokenized and vectorized straight into its row by a
// pool of workers — the shape the batch classifier contract consumes.
func (p *Pipeline) FeaturesAll(signals [][]float64) *linalg.Matrix {
	defer featurizeSeconds.ObserveSince(time.Now())
	featurizeRows.Add(int64(len(signals)))
	out := linalg.NewMatrix(len(signals), p.vocab.Size())
	ok := p.forEachSignal(len(signals), func(lo, hi int, tv *TokenVectorizer) {
		var tokens []uint32
		for i := lo; i < hi; i++ {
			tokens = p.encoder.EncodeTokens(signals[i], tokens)
			tv.VectorizeInto(tokens, out.Row(i))
		}
	})
	if !ok {
		for i, sig := range signals {
			p.vocab.VectorizeInto(p.encoder.Encode(sig), out.Row(i))
		}
	}
	return out
}

// FeaturesAllSparse converts a batch of signals into one CSR n×Dim feature
// matrix. Workers build contiguous row ranges into private buffers that
// are stitched in order, so the result is byte-identical at any
// GOMAXPROCS. Feature values match FeaturesAll element for element; only
// the zeros are gone.
func (p *Pipeline) FeaturesAllSparse(signals [][]float64) *linalg.SparseMatrix {
	defer featurizeSeconds.ObserveSince(time.Now())
	featurizeRows.Add(int64(len(signals)))
	type shard struct {
		lo   int
		cols []int32
		vals []float64
		ends []int // per-row nnz end offsets within the shard
	}
	n := len(signals)
	out := linalg.NewSparseMatrix(max(n, 1), p.vocab.Size(), 0)
	out.Rows = n

	var mu sync.Mutex
	var shards []shard
	ok := p.forEachSignal(n, func(lo, hi int, tv *TokenVectorizer) {
		sh := shard{lo: lo, ends: make([]int, 0, hi-lo)}
		var tokens []uint32
		for i := lo; i < hi; i++ {
			tokens = p.encoder.EncodeTokens(signals[i], tokens)
			sh.cols, sh.vals = tv.AppendSparse(tokens, sh.cols, sh.vals)
			sh.ends = append(sh.ends, len(sh.vals))
		}
		mu.Lock()
		shards = append(shards, sh)
		mu.Unlock()
	})
	if !ok {
		// Legacy vocabulary without a token index: emit rows through the
		// dense string path and compress.
		row := make([]float64, p.vocab.Size())
		for _, sig := range signals {
			p.vocab.VectorizeInto(p.encoder.Encode(sig), row)
			for j, v := range row {
				if v != 0 {
					out.ColIdx = append(out.ColIdx, int32(j))
					out.Val = append(out.Val, v)
				}
			}
			out.AppendRow()
		}
		return out
	}

	// Stitch shards in row order.
	slices.SortFunc(shards, func(a, b shard) int { return a.lo - b.lo })
	var nnz int
	for _, sh := range shards {
		nnz += len(sh.vals)
	}
	out.ColIdx = make([]int32, 0, nnz)
	out.Val = make([]float64, 0, nnz)
	for _, sh := range shards {
		prev := 0
		for _, end := range sh.ends {
			out.ColIdx = append(out.ColIdx, sh.cols[prev:end]...)
			out.Val = append(out.Val, sh.vals[prev:end]...)
			out.AppendRow()
			prev = end
		}
	}
	return out
}

// Dim returns the feature dimensionality.
func (p *Pipeline) Dim() int { return p.vocab.Size() }

// Encoder exposes the underlying encoder (for inspection/tests).
func (p *Pipeline) Encoder() *Encoder { return p.encoder }

// Vocabulary exposes the underlying vocabulary (for inspection/tests).
func (p *Pipeline) Vocabulary() *Vocabulary { return p.vocab }

// savedPipeline is the JSON form of a fitted pipeline. The discretizer is
// identified by its precision (0 = floor), the encoder by its sorted
// discrete values, and the vocabulary by its gram list; the token index is
// derived state and is rebuilt on load.
type savedPipeline struct {
	Precision int       `json:"precision"`
	Alphabet  string    `json:"alphabet"`
	WordSize  int       `json:"word_size"`
	Values    []float64 `json:"values"`
	MinN      int       `json:"min_n"`
	MaxN      int       `json:"max_n"`
	Grams     []string  `json:"grams"`
}

// MarshalJSON implements json.Marshaler for persistence of trained
// attacks. Only pipelines built from a Precision-derived discretizer
// round-trip exactly; a custom Discretizer is recorded as its Precision
// field (0 = floor).
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	return json.Marshal(savedPipeline{
		Precision: p.precision,
		Alphabet:  p.encoder.alphabet,
		WordSize:  p.encoder.wordSize,
		Values:    p.encoder.sortedVals,
		MinN:      p.vocab.minN,
		MaxN:      p.vocab.maxN,
		Grams:     p.vocab.grams,
	})
}

// UnmarshalJSON reconstructs a fitted pipeline, token index included.
func (p *Pipeline) UnmarshalJSON(data []byte) error {
	var sp savedPipeline
	if err := json.Unmarshal(data, &sp); err != nil {
		return fmt.Errorf("textrep: parsing pipeline: %w", err)
	}
	if len(sp.Values) == 0 || len(sp.Grams) == 0 {
		return fmt.Errorf("textrep: saved pipeline is empty")
	}
	if len(sp.Alphabet) < 2 || sp.WordSize < 1 || sp.MinN < 1 || sp.MaxN < sp.MinN {
		return fmt.Errorf("textrep: saved pipeline malformed")
	}

	disc := FloorDiscretizer
	if sp.Precision > 0 {
		disc = PrecisionDiscretizer(sp.Precision)
	}
	enc := &Encoder{
		disc:       disc,
		alphabet:   sp.Alphabet,
		wordSize:   sp.WordSize,
		wordByRank: make([]string, len(sp.Values)),
		sortedVals: sp.Values,
	}
	enc.buildRankIndex()
	for i := range sp.Values {
		enc.wordByRank[i] = indexWord(i, sp.WordSize, sp.Alphabet)
	}

	vocab := &Vocabulary{
		wordSize: sp.WordSize,
		minN:     sp.MinN,
		maxN:     sp.MaxN,
		index:    make(map[string]int, len(sp.Grams)),
		grams:    sp.Grams,
	}
	for i, g := range sp.Grams {
		vocab.index[g] = i
	}
	if err := vocab.BuildTokenIndex(sp.Alphabet, len(sp.Values)); err != nil {
		return fmt.Errorf("textrep: rebuilding token index: %w", err)
	}

	p.encoder = enc
	p.vocab = vocab
	p.precision = sp.Precision
	return nil
}
