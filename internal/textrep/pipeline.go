package textrep

import (
	"encoding/json"
	"fmt"

	"elevprivacy/internal/ml/linalg"
)

// Pipeline bundles the full text-like preprocessing chain — discretize,
// encode, vectorize — behind one object, built once per dataset.
type Pipeline struct {
	encoder *Encoder
	vocab   *Vocabulary
	// precision records the discretizer for persistence: 0 = floor,
	// d > 0 = PrecisionDiscretizer(d).
	precision int
}

// PipelineConfig configures NewPipeline.
type PipelineConfig struct {
	// Discretizer buckets raw elevations; when nil it is derived from
	// Precision (0 = FloorDiscretizer).
	Discretizer Discretizer
	// Precision selects the built-in discretizer family when Discretizer
	// is nil: 0 applies ⌊e⌋, d > 0 applies ⌊e·10^d⌋/10^d. Recorded for
	// persistence.
	Precision int
	// Alphabet for word encoding; DefaultAlphabet when empty.
	Alphabet string
	// NGram is the paper's n (8 in all experiments). Vocabulary spans
	// [1, NGram] orders.
	NGram int
	// MinFrequency and MaxFeatures forward to VocabConfig.
	MinFrequency int
	MaxFeatures  int
}

// DefaultPipelineConfig matches the paper's evaluation settings: floor
// discretization, 26-letter alphabet, n = 8.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Discretizer:  FloorDiscretizer,
		Alphabet:     DefaultAlphabet,
		NGram:        8,
		MinFrequency: 2,
		MaxFeatures:  4096,
	}
}

// NewPipeline builds the encoder and vocabulary over all signals. For a
// pipeline that should survive persistence, set cfg.Precision instead of a
// raw Discretizer.
func NewPipeline(signals [][]float64, cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Discretizer == nil {
		if cfg.Precision > 0 {
			cfg.Discretizer = PrecisionDiscretizer(cfg.Precision)
		} else {
			cfg.Discretizer = FloorDiscretizer
		}
	}
	if cfg.Alphabet == "" {
		cfg.Alphabet = DefaultAlphabet
	}
	if cfg.NGram < 1 {
		return nil, fmt.Errorf("textrep: NGram must be >= 1, got %d", cfg.NGram)
	}

	enc, err := BuildEncoder(signals, cfg.Discretizer, cfg.Alphabet)
	if err != nil {
		return nil, err
	}
	corpus := enc.EncodeAll(signals)
	vocab, err := BuildVocabulary(corpus, VocabConfig{
		WordSize:     enc.WordSize(),
		MinN:         1,
		MaxN:         cfg.NGram,
		MinFrequency: cfg.MinFrequency,
		MaxFeatures:  cfg.MaxFeatures,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{encoder: enc, vocab: vocab, precision: cfg.Precision}, nil
}

// Features converts one raw signal into its normalized BoW feature vector.
func (p *Pipeline) Features(signal []float64) []float64 {
	return p.vocab.Vectorize(p.encoder.Encode(signal))
}

// FeaturesAll converts a batch of signals into one dense n×Dim feature
// matrix, each sample vectorized straight into its row — the shape the
// batch classifier contract consumes.
func (p *Pipeline) FeaturesAll(signals [][]float64) *linalg.Matrix {
	out := linalg.NewMatrix(len(signals), p.vocab.Size())
	for i, sig := range signals {
		p.vocab.VectorizeInto(p.encoder.Encode(sig), out.Row(i))
	}
	return out
}

// Dim returns the feature dimensionality.
func (p *Pipeline) Dim() int { return p.vocab.Size() }

// Encoder exposes the underlying encoder (for inspection/tests).
func (p *Pipeline) Encoder() *Encoder { return p.encoder }

// Vocabulary exposes the underlying vocabulary (for inspection/tests).
func (p *Pipeline) Vocabulary() *Vocabulary { return p.vocab }

// savedPipeline is the JSON form of a fitted pipeline. The discretizer is
// identified by its precision (0 = floor), the encoder by its sorted
// discrete values, and the vocabulary by its gram list.
type savedPipeline struct {
	Precision int       `json:"precision"`
	Alphabet  string    `json:"alphabet"`
	WordSize  int       `json:"word_size"`
	Values    []float64 `json:"values"`
	MinN      int       `json:"min_n"`
	MaxN      int       `json:"max_n"`
	Grams     []string  `json:"grams"`
}

// MarshalJSON implements json.Marshaler for persistence of trained
// attacks. Only pipelines built from a Precision-derived discretizer
// round-trip exactly; a custom Discretizer is recorded as its Precision
// field (0 = floor).
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	return json.Marshal(savedPipeline{
		Precision: p.precision,
		Alphabet:  p.encoder.alphabet,
		WordSize:  p.encoder.wordSize,
		Values:    p.encoder.sortedVals,
		MinN:      p.vocab.minN,
		MaxN:      p.vocab.maxN,
		Grams:     p.vocab.grams,
	})
}

// UnmarshalJSON reconstructs a fitted pipeline.
func (p *Pipeline) UnmarshalJSON(data []byte) error {
	var sp savedPipeline
	if err := json.Unmarshal(data, &sp); err != nil {
		return fmt.Errorf("textrep: parsing pipeline: %w", err)
	}
	if len(sp.Values) == 0 || len(sp.Grams) == 0 {
		return fmt.Errorf("textrep: saved pipeline is empty")
	}
	if len(sp.Alphabet) < 2 || sp.WordSize < 1 || sp.MinN < 1 || sp.MaxN < sp.MinN {
		return fmt.Errorf("textrep: saved pipeline malformed")
	}

	disc := FloorDiscretizer
	if sp.Precision > 0 {
		disc = PrecisionDiscretizer(sp.Precision)
	}
	enc := &Encoder{
		disc:       disc,
		alphabet:   sp.Alphabet,
		wordSize:   sp.WordSize,
		words:      make(map[float64]string, len(sp.Values)),
		sortedVals: sp.Values,
	}
	for i, v := range sp.Values {
		enc.words[v] = indexWord(i, sp.WordSize, sp.Alphabet)
	}

	vocab := &Vocabulary{
		wordSize: sp.WordSize,
		minN:     sp.MinN,
		maxN:     sp.MaxN,
		index:    make(map[string]int, len(sp.Grams)),
		grams:    sp.Grams,
	}
	for i, g := range sp.Grams {
		vocab.index[g] = i
	}

	p.encoder = enc
	p.vocab = vocab
	p.precision = sp.Precision
	return nil
}
