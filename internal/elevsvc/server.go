// Package elevsvc implements the elevation web service the mining pipeline
// queries, modeled on the Google Maps Elevation API: clients submit an
// encoded polyline path plus a sample count and receive evenly spaced
// elevations along the path.
//
// The server fronts any dem.Source (a raster mosaic or an analytic terrain),
// so the rest of the pipeline talks to elevation data exactly the way the
// paper's pipeline talked to Google's API: over HTTP, in JSON, path by path.
package elevsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"elevprivacy/internal/dem"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
	"elevprivacy/internal/serving"
)

// MaxSamples bounds a single path request, mirroring the real API's limit.
const MaxSamples = 512

// Result is one sampled point, as serialized on the wire.
type Result struct {
	Location  LocationJSON `json:"location"`
	Elevation float64      `json:"elevation"`
}

// LocationJSON is the wire form of a coordinate.
type LocationJSON struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// Response is the top-level wire envelope. Status is "OK" on success; any
// other value carries ErrorMessage, mirroring the Google API envelope.
type Response struct {
	Status       string   `json:"status"`
	ErrorMessage string   `json:"error_message,omitempty"`
	Results      []Result `json:"results,omitempty"`
}

// DefaultMaxInFlight is the load-shedding bound Handler applies unless
// overridden: past it, requests get 429 + Retry-After (which the httpx
// client's retry loop honors).
const DefaultMaxInFlight = 256

// DefaultRequestTimeout bounds one request's handling.
const DefaultRequestTimeout = 15 * time.Second

// Server serves elevation queries from a dem.Source. Successful path
// profiles are cached by (polyline, samples) in a size-bounded LRU with
// singleflight dedup: a profile is a pure function of its query, so when the
// sharded client pins a polyline's requests to one shard, repeats cost a
// memory read instead of a resample loop.
type Server struct {
	source      dem.Source
	logf        func(format string, args ...any)
	maxInFlight int
	reqTimeout  time.Duration
	pprof       bool
	cacheBytes  int64
	shardIndex  int
	shardCount  int

	cache *serving.Cache
}

// Option configures a Server.
type Option func(*Server)

// WithLogf overrides the server's log function (default: error-level lines
// on the process obs logger).
func WithLogf(logf func(string, ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// WithMaxInFlight overrides the load-shedding bound; 0 disables shedding.
func WithMaxInFlight(n int) Option {
	return func(s *Server) { s.maxInFlight = n }
}

// WithRequestTimeout overrides the per-request deadline; 0 disables it.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.
func WithPprof(enabled bool) Option {
	return func(s *Server) { s.pprof = enabled }
}

// WithProfileCacheBytes overrides the path-profile cache budget (default
// 64 MiB); 0 disables the cache entirely.
func WithProfileCacheBytes(n int64) Option {
	return func(s *Server) { s.cacheBytes = n }
}

// WithShard tags this instance as shard index of count in a sharded tier;
// /healthz and /metrics report the identity.
func WithShard(index, count int) Option {
	return func(s *Server) { s.shardIndex, s.shardCount = index, count }
}

// obsErrorf is the default logf: error-level lines on the process obs
// logger, resolved per call so SetDefaultLogger takes effect everywhere.
func obsErrorf(format string, args ...any) {
	obs.DefaultLogger().Errorf(format, args...)
}

// NewServer creates a Server over the given elevation source.
func NewServer(source dem.Source, opts ...Option) *Server {
	s := &Server{
		source:      source,
		logf:        obsErrorf,
		maxInFlight: DefaultMaxInFlight,
		reqTimeout:  DefaultRequestTimeout,
		cacheBytes:  64 << 20,
	}
	for _, o := range opts {
		o(s)
	}
	if s.cacheBytes > 0 {
		s.cache = serving.NewCache(s.cacheBytes, serving.WithCacheMetrics("elev_profiles"))
	}
	return s
}

// Handler returns the HTTP routing for the service, hardened for sweep
// traffic: panic recovery (a panicking source quarantines one request, not
// the server), a per-request timeout, and max-in-flight load shedding with
// 429 + Retry-After. The /healthz liveness probe bypasses shedding, and
// /metrics exposes the process obs registry; see httpx.NewServeMux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/elevation/path", s.handlePath)
	mux.HandleFunc("GET /v1/elevation/point", s.handlePoint)

	return httpx.NewServeMux(mux, httpx.MuxConfig{
		Service: "elevsvc",
		Harden: httpx.ServerConfig{
			MaxInFlight:    s.maxInFlight,
			RequestTimeout: s.reqTimeout,
			Logf:           s.logf,
		},
		Pprof:      s.pprof,
		ShardIndex: s.shardIndex,
		ShardCount: s.shardCount,
	})
}

// handlePath samples elevations along an encoded polyline:
// GET /v1/elevation/path?path=<polyline>&samples=N
func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	encoded := q.Get("path")
	if encoded == "" {
		writeStatus(w, http.StatusBadRequest, "INVALID_REQUEST", "missing path parameter")
		return
	}
	samples, err := strconv.Atoi(q.Get("samples"))
	if err != nil || samples < 2 || samples > MaxSamples {
		writeStatus(w, http.StatusBadRequest, "INVALID_REQUEST",
			fmt.Sprintf("samples must be an integer in [2,%d]", MaxSamples))
		return
	}
	path, err := geo.DecodePolyline(encoded)
	if err != nil {
		writeStatus(w, http.StatusBadRequest, "INVALID_REQUEST", "malformed polyline: "+err.Error())
		return
	}
	if len(path) == 0 {
		writeStatus(w, http.StatusBadRequest, "INVALID_REQUEST", "empty path")
		return
	}

	if s.cache == nil {
		code, resp := s.profile(path, samples)
		writeJSON(w, code, resp)
		return
	}

	// Only fully successful profiles are cached: a non-OK envelope rides out
	// of the fill as a respError, reaches this client, and leaves the cache
	// untouched so transient failures are retried.
	key := encoded + "\x00" + strconv.Itoa(samples)
	payload, _, err := s.cache.Get(key, func() ([]byte, error) {
		code, resp := s.profile(path, samples)
		if code != http.StatusOK || resp.Status != "OK" {
			return nil, &respError{code: code, resp: resp}
		}
		b, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		// writeJSON's encoder terminates with a newline; match it so cached
		// and uncached responses are byte-identical.
		return append(b, '\n'), nil
	})
	if err != nil {
		var re *respError
		if errors.As(err, &re) {
			writeJSON(w, re.code, re.resp)
			return
		}
		s.logf("elevsvc: encoding profile: %v", err)
		writeStatus(w, http.StatusInternalServerError, "UNKNOWN_ERROR", "internal error")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(payload); err != nil {
		s.logf("elevsvc: writing profile: %v", err)
	}
}

// profile samples elevations along the resampled path, returning the HTTP
// code and envelope to serialize.
func (s *Server) profile(path geo.Path, samples int) (int, Response) {
	pts := path.Resample(samples)
	results := make([]Result, 0, len(pts))
	for _, p := range pts {
		e, err := s.source.ElevationAt(p)
		if err != nil {
			if errors.Is(err, dem.ErrOutOfBounds) {
				return http.StatusOK, Response{Status: "DATA_NOT_AVAILABLE", ErrorMessage: err.Error()}
			}
			s.logf("elevsvc: internal error at %v: %v", p, err)
			return http.StatusInternalServerError, Response{Status: "UNKNOWN_ERROR", ErrorMessage: "internal error"}
		}
		results = append(results, Result{
			Location:  LocationJSON{Lat: p.Lat, Lng: p.Lng},
			Elevation: e,
		})
	}
	return http.StatusOK, Response{Status: "OK", Results: results}
}

// respError carries a non-OK envelope out of a cache fill so it is written
// to the waiting clients but never cached.
type respError struct {
	code int
	resp Response
}

func (e *respError) Error() string { return "elevsvc: " + e.resp.Status }

// handlePoint answers a single-point query:
// GET /v1/elevation/point?lat=..&lng=..
func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lat, errLat := strconv.ParseFloat(q.Get("lat"), 64)
	lng, errLng := strconv.ParseFloat(q.Get("lng"), 64)
	if errLat != nil || errLng != nil {
		writeStatus(w, http.StatusBadRequest, "INVALID_REQUEST", "lat and lng must be numbers")
		return
	}
	p := geo.LatLng{Lat: lat, Lng: lng}
	if !p.Valid() {
		writeStatus(w, http.StatusBadRequest, "INVALID_REQUEST", "coordinate out of range")
		return
	}
	e, err := s.source.ElevationAt(p)
	if err != nil {
		if errors.Is(err, dem.ErrOutOfBounds) {
			writeStatus(w, http.StatusOK, "DATA_NOT_AVAILABLE", err.Error())
			return
		}
		s.logf("elevsvc: internal error at %v: %v", p, err)
		writeStatus(w, http.StatusInternalServerError, "UNKNOWN_ERROR", "internal error")
		return
	}
	writeJSON(w, http.StatusOK, Response{
		Status:  "OK",
		Results: []Result{{Location: LocationJSON{Lat: lat, Lng: lng}, Elevation: e}},
	})
}

func writeStatus(w http.ResponseWriter, code int, status, msg string) {
	writeJSON(w, code, Response{Status: status, ErrorMessage: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than note it.
		obsErrorf("elevsvc: encoding response: %v", err)
	}
}
