package elevsvc

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"elevprivacy/internal/geo"
)

// panicSource simulates a bug in the elevation backend.
type panicSource struct{}

func (panicSource) ElevationAt(geo.LatLng) (float64, error) {
	panic("corrupt raster index")
}

// blockSource parks every query until released, to pin the in-flight slot.
type blockSource struct {
	started chan struct{}
	release chan struct{}
}

func (b blockSource) ElevationAt(geo.LatLng) (float64, error) {
	b.started <- struct{}{}
	<-b.release
	return 0, nil
}

func TestHealthzBypassesShedding(t *testing.T) {
	src := blockSource{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := httptest.NewServer(NewServer(src, WithLogf(t.Logf), WithMaxInFlight(1)).Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/v1/elevation/point?lat=1&lng=2")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-src.started // the only slot is taken

	// A second data request is shed...
	resp, err := http.Get(srv.URL + "/v1/elevation/point?lat=1&lng=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded data request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// ...but the liveness probe still answers.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"elevsvc"`) {
		t.Fatalf("healthz under load = %d %q", resp.StatusCode, body)
	}

	close(src.release)
	wg.Wait()
}

func TestPanickingSourceQuarantinesRequest(t *testing.T) {
	srv := httptest.NewServer(NewServer(panicSource{}, WithLogf(t.Logf)).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/elevation/point?lat=1&lng=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking source returned %d, want 500", resp.StatusCode)
	}

	// The server survived; an independent probe still succeeds.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: healthz = %d", resp.StatusCode)
	}
}

func TestRequestTimeoutBoundsSlowSource(t *testing.T) {
	src := blockSource{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := httptest.NewServer(NewServer(src, WithLogf(t.Logf),
		WithRequestTimeout(50*time.Millisecond)).Handler())
	defer srv.Close()
	defer close(src.release) // unblock the abandoned handler before Close waits on it

	go func() { <-src.started }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/elevation/point?lat=1&lng=2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow request = %d, want 503", resp.StatusCode)
	}
}
