package elevsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
)

// Client queries an elevation service over HTTP. It implements the same
// call shape the paper used against the Google Maps Elevation API: a path
// plus a sample count, answered with evenly spaced elevations.
type Client struct {
	baseURL string
	httpc   httpx.Doer
}

// NewClient creates a client for the service at baseURL (no trailing slash
// required). httpc may be a bare *http.Client or an httpx.Client carrying
// retries and rate limits; nil gets a default httpx.Client with per-attempt
// timeouts and bounded retries, so a hung server can never block a sweep
// forever.
func NewClient(baseURL string, httpc httpx.Doer) *Client {
	if httpc == nil {
		httpc = httpx.NewClient(nil)
	}
	return &Client{baseURL: baseURL, httpc: httpc}
}

// APIError is a non-OK service response.
type APIError struct {
	// Status is the service status string, e.g. "INVALID_REQUEST".
	Status string
	// Message is the human-readable detail.
	Message string
	// HTTPCode is the transport status code.
	HTTPCode int
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("elevsvc: %s (http %d): %s", e.Status, e.HTTPCode, e.Message)
}

// ElevationAlongPath returns samples evenly spaced elevations along path.
func (c *Client) ElevationAlongPath(ctx context.Context, path geo.Path, samples int) ([]float64, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("elevsvc: empty path")
	}
	if samples < 2 || samples > MaxSamples {
		return nil, fmt.Errorf("elevsvc: samples %d outside [2,%d]", samples, MaxSamples)
	}

	q := url.Values{}
	q.Set("path", geo.EncodePolyline(path))
	q.Set("samples", strconv.Itoa(samples))
	resp, err := c.get(ctx, "/v1/elevation/path", q)
	if err != nil {
		return nil, err
	}

	out := make([]float64, 0, len(resp.Results))
	for _, r := range resp.Results {
		out = append(out, r.Elevation)
	}
	if len(out) != samples {
		return nil, fmt.Errorf("elevsvc: service returned %d samples, want %d", len(out), samples)
	}
	return out, nil
}

// ElevationAt returns the elevation of a single point.
func (c *Client) ElevationAt(ctx context.Context, p geo.LatLng) (float64, error) {
	q := url.Values{}
	q.Set("lat", strconv.FormatFloat(p.Lat, 'f', -1, 64))
	q.Set("lng", strconv.FormatFloat(p.Lng, 'f', -1, 64))
	resp, err := c.get(ctx, "/v1/elevation/point", q)
	if err != nil {
		return 0, err
	}
	if len(resp.Results) != 1 {
		return 0, fmt.Errorf("elevsvc: service returned %d results, want 1", len(resp.Results))
	}
	return resp.Results[0].Elevation, nil
}

// get performs the request and decodes the envelope, mapping non-OK
// statuses to *APIError.
func (c *Client) get(ctx context.Context, endpoint string, q url.Values) (*Response, error) {
	u := c.baseURL + endpoint + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("elevsvc: building request: %w", err)
	}
	httpResp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("elevsvc: request failed: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, httpResp.Body)
		_ = httpResp.Body.Close()
	}()

	// A proxy or load balancer in front of the service answers errors in
	// plain text or HTML; decoding those as JSON used to misreport a 502
	// as "invalid character" noise. Only JSON bodies carry the envelope.
	if !jsonBody(httpResp) {
		snippet := bodySnippet(httpResp.Body)
		return nil, &APIError{
			Status:   fmt.Sprintf("HTTP_%d", httpResp.StatusCode),
			Message:  snippet,
			HTTPCode: httpResp.StatusCode,
		}
	}

	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("elevsvc: decoding response: %w", err)
	}
	if resp.Status != "OK" {
		return nil, &APIError{Status: resp.Status, Message: resp.ErrorMessage, HTTPCode: httpResp.StatusCode}
	}
	return &resp, nil
}

// jsonBody reports whether the response declares a JSON media type.
func jsonBody(resp *http.Response) bool {
	mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		return false
	}
	return mt == "application/json" || strings.HasSuffix(mt, "+json")
}

// bodySnippet reads a bounded prefix of an error body for diagnostics.
func bodySnippet(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 256))
	return strings.TrimSpace(string(b))
}
