package elevsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
)

// Client queries an elevation service over HTTP. It implements the same
// call shape the paper used against the Google Maps Elevation API: a path
// plus a sample count, answered with evenly spaced elevations. A Client
// speaks either to a single instance (NewClient) or to a sharded tier
// behind an endpoint pool (NewPoolClient), where requests route by
// consistent hash on the polyline so each shard's profile cache owns a
// stable slice of the paths.
type Client struct {
	baseURL string
	httpc   httpx.Doer
	pool    *httpx.Pool
}

// NewClient creates a client for the service at baseURL (trailing slashes
// are normalized away). httpc may be a bare *http.Client or an httpx.Client
// carrying retries and rate limits; nil gets a default httpx.Client with
// per-attempt timeouts and bounded retries, so a hung server can never
// block a sweep forever.
func NewClient(baseURL string, httpc httpx.Doer) *Client {
	if httpc == nil {
		httpc = httpx.NewClient(nil)
	}
	return &Client{baseURL: httpx.NormalizeBaseURL(baseURL), httpc: httpc}
}

// NewPoolClient creates a client issuing requests through a multi-endpoint
// pool. The pool owns retries, failover, and circuit breaking — do not hand
// it a transport that retries internally.
func NewPoolClient(pool *httpx.Pool) *Client {
	return &Client{pool: pool}
}

// APIError is a non-OK service response.
type APIError struct {
	// Status is the service status string, e.g. "INVALID_REQUEST".
	Status string
	// Message is the human-readable detail.
	Message string
	// HTTPCode is the transport status code.
	HTTPCode int
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("elevsvc: %s (http %d): %s", e.Status, e.HTTPCode, e.Message)
}

// ElevationAlongPath returns samples evenly spaced elevations along path.
func (c *Client) ElevationAlongPath(ctx context.Context, path geo.Path, samples int) ([]float64, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("elevsvc: empty path")
	}
	if samples < 2 || samples > MaxSamples {
		return nil, fmt.Errorf("elevsvc: samples %d outside [2,%d]", samples, MaxSamples)
	}

	encoded := geo.EncodePolyline(path)
	q := url.Values{}
	q.Set("path", encoded)
	q.Set("samples", strconv.Itoa(samples))
	// Shard by polyline (not polyline+samples) so every profile of one
	// segment warms the same shard's cache.
	resp, err := c.get(ctx, "/v1/elevation/path", q, encoded)
	if err != nil {
		return nil, err
	}

	out := make([]float64, 0, len(resp.Results))
	for _, r := range resp.Results {
		out = append(out, r.Elevation)
	}
	if len(out) != samples {
		return nil, fmt.Errorf("elevsvc: service returned %d samples, want %d", len(out), samples)
	}
	return out, nil
}

// ElevationAt returns the elevation of a single point.
func (c *Client) ElevationAt(ctx context.Context, p geo.LatLng) (float64, error) {
	q := url.Values{}
	q.Set("lat", strconv.FormatFloat(p.Lat, 'f', -1, 64))
	q.Set("lng", strconv.FormatFloat(p.Lng, 'f', -1, 64))
	resp, err := c.get(ctx, "/v1/elevation/point", q, q.Encode())
	if err != nil {
		return 0, err
	}
	if len(resp.Results) != 1 {
		return 0, fmt.Errorf("elevsvc: service returned %d results, want 1", len(resp.Results))
	}
	return resp.Results[0].Elevation, nil
}

// get performs the request and decodes the envelope, mapping non-OK
// statuses to *APIError. key is the request's shard identity: pool-backed
// clients hash it to pick the endpoint, single-endpoint clients ignore it.
func (c *Client) get(ctx context.Context, endpoint string, q url.Values, key string) (*Response, error) {
	httpResp, err := c.issue(ctx, endpoint+"?"+q.Encode(), key)
	if err != nil {
		return nil, fmt.Errorf("elevsvc: request failed: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, httpResp.Body)
		_ = httpResp.Body.Close()
	}()

	// A proxy or load balancer in front of the service answers errors in
	// plain text or HTML; decoding those as JSON used to misreport a 502
	// as "invalid character" noise. Only JSON bodies carry the envelope.
	if !jsonBody(httpResp) {
		snippet := bodySnippet(httpResp.Body)
		return nil, &APIError{
			Status:   fmt.Sprintf("HTTP_%d", httpResp.StatusCode),
			Message:  snippet,
			HTTPCode: httpResp.StatusCode,
		}
	}

	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("elevsvc: decoding response: %w", err)
	}
	if resp.Status != "OK" {
		return nil, &APIError{Status: resp.Status, Message: resp.ErrorMessage, HTTPCode: httpResp.StatusCode}
	}
	return &resp, nil
}

// issue sends the GET through the pool (hashing key for shard affinity) or
// the single-endpoint transport.
func (c *Client) issue(ctx context.Context, pathAndQuery, key string) (*http.Response, error) {
	if c.pool != nil {
		return c.pool.Get(ctx, httpx.HashKey(key), pathAndQuery)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+pathAndQuery, nil)
	if err != nil {
		return nil, fmt.Errorf("building request: %w", err)
	}
	return c.httpc.Do(req)
}

// jsonBody reports whether the response declares a JSON media type.
func jsonBody(resp *http.Response) bool {
	mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		return false
	}
	return mt == "application/json" || strings.HasSuffix(mt, "+json")
}

// bodySnippet reads a bounded prefix of an error body for diagnostics.
func bodySnippet(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 256))
	return strings.TrimSpace(string(b))
}
