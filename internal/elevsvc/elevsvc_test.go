package elevsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"elevprivacy/internal/dem"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/terrain"
)

// testSource is a deterministic analytic elevation field for tests.
type testSource struct{}

func (testSource) ElevationAt(p geo.LatLng) (float64, error) {
	if p.Lat > 80 {
		return 0, dem.ErrOutOfBounds
	}
	return 100 + 10*p.Lat + p.Lng, nil
}

// failSource always fails with a non-out-of-bounds error.
type failSource struct{}

func (failSource) ElevationAt(geo.LatLng) (float64, error) {
	return 0, errors.New("disk on fire")
}

func newTestServer(t *testing.T, src dem.Source) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(NewServer(src, WithLogf(t.Logf)).Handler())
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL, srv.Client())
}

func TestPathSamplingEndToEnd(t *testing.T) {
	_, client := newTestServer(t, testSource{})

	path := geo.Path{{Lat: 10, Lng: 0}, {Lat: 20, Lng: 0}}
	got, err := client.ElevationAlongPath(context.Background(), path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("samples = %d, want 5", len(got))
	}
	// Field is 100 + 10*lat, so endpoints are 200 and 300 and the series
	// must be monotone.
	if math.Abs(got[0]-200) > 0.5 || math.Abs(got[4]-300) > 0.5 {
		t.Errorf("endpoints = %f, %f; want ~200, ~300", got[0], got[4])
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("series not monotone at %d", i)
		}
	}
}

func TestPointQueryEndToEnd(t *testing.T) {
	_, client := newTestServer(t, testSource{})
	got, err := client.ElevationAt(context.Background(), geo.LatLng{Lat: 5, Lng: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-153) > 1e-9 {
		t.Errorf("elevation = %f, want 153", got)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, testSource{})

	tests := []struct {
		name     string
		url      string
		wantCode int
		wantStat string
	}{
		{"missing path", "/v1/elevation/path?samples=5", http.StatusBadRequest, "INVALID_REQUEST"},
		{"missing samples", "/v1/elevation/path?path=_p~iF~ps%7CU", http.StatusBadRequest, "INVALID_REQUEST"},
		{"samples too small", "/v1/elevation/path?path=_p~iF~ps%7CU&samples=1", http.StatusBadRequest, "INVALID_REQUEST"},
		{"samples too large", "/v1/elevation/path?path=_p~iF~ps%7CU&samples=100000", http.StatusBadRequest, "INVALID_REQUEST"},
		{"bad polyline", "/v1/elevation/path?path=%01%02&samples=5", http.StatusBadRequest, "INVALID_REQUEST"},
		{"bad point params", "/v1/elevation/point?lat=abc&lng=1", http.StatusBadRequest, "INVALID_REQUEST"},
		{"point out of domain", "/v1/elevation/point?lat=95&lng=1", http.StatusBadRequest, "INVALID_REQUEST"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(srv.URL + tc.url)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			var body Response
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body.Status != tc.wantStat {
				t.Errorf("envelope status = %q, want %q", body.Status, tc.wantStat)
			}
			if body.ErrorMessage == "" {
				t.Error("error message empty")
			}
		})
	}
}

func TestOutOfCoverageReportsDataNotAvailable(t *testing.T) {
	_, client := newTestServer(t, testSource{})
	_, err := client.ElevationAt(context.Background(), geo.LatLng{Lat: 85, Lng: 0})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != "DATA_NOT_AVAILABLE" {
		t.Errorf("status = %q, want DATA_NOT_AVAILABLE", apiErr.Status)
	}
	if apiErr.HTTPCode != http.StatusOK {
		t.Errorf("http code = %d, want 200 (envelope-level error)", apiErr.HTTPCode)
	}
}

func TestInternalErrorsAreOpaque(t *testing.T) {
	_, client := newTestServer(t, failSource{})
	_, err := client.ElevationAt(context.Background(), geo.LatLng{Lat: 1, Lng: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != "UNKNOWN_ERROR" || apiErr.HTTPCode != http.StatusInternalServerError {
		t.Errorf("got %+v", apiErr)
	}
	if strings.Contains(apiErr.Message, "disk on fire") {
		t.Error("internal error detail leaked to client")
	}
}

// TestNonJSONErrorBodyBecomesAPIError pins the fix for the proxy-error bug:
// a plain-text 502 used to surface as "decoding response: invalid character
// ..." instead of an *APIError carrying the HTTP code.
func TestNonJSONErrorBodyBecomesAPIError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "Bad Gateway: upstream connect error", http.StatusBadGateway)
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	_, err := client.ElevationAt(context.Background(), geo.LatLng{Lat: 1, Lng: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.HTTPCode != http.StatusBadGateway {
		t.Errorf("http code = %d, want 502", apiErr.HTTPCode)
	}
	if apiErr.Status != "HTTP_502" {
		t.Errorf("status = %q, want HTTP_502", apiErr.Status)
	}
	if !strings.Contains(apiErr.Message, "upstream connect error") {
		t.Errorf("message %q lost the body snippet", apiErr.Message)
	}
	if strings.Contains(err.Error(), "invalid character") {
		t.Errorf("err = %v still reads like a JSON decode failure", err)
	}
}

// TestDefaultClientHasTimeout pins the NewClient(nil) contract: the fallback
// is a resilient client with timeouts, never the timeout-less
// http.DefaultClient that let a hung server block the miner forever.
func TestDefaultClientHasTimeout(t *testing.T) {
	c := NewClient("http://127.0.0.1:0", nil)
	if _, ok := c.httpc.(*httpx.Client); !ok {
		t.Fatalf("nil fallback is %T, want *httpx.Client", c.httpc)
	}
}

func TestClientValidatesBeforeSending(t *testing.T) {
	client := NewClient("http://127.0.0.1:0", nil) // never dialed
	ctx := context.Background()
	if _, err := client.ElevationAlongPath(ctx, nil, 5); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := client.ElevationAlongPath(ctx, geo.Path{{Lat: 1, Lng: 1}}, 1); err == nil {
		t.Error("samples=1 accepted")
	}
	if _, err := client.ElevationAlongPath(ctx, geo.Path{{Lat: 1, Lng: 1}}, MaxSamples+1); err == nil {
		t.Error("samples over limit accepted")
	}
}

func TestClientContextCancellation(t *testing.T) {
	srv, client := newTestServer(t, testSource{})
	_ = srv
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := client.ElevationAt(ctx, geo.LatLng{Lat: 1, Lng: 1})
	if err == nil {
		t.Fatal("cancelled context should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in chain", err)
	}
}

// TestAgainstRealTerrain wires the service to an actual city terrain and
// checks that path samples reflect the analytic field.
func TestAgainstRealTerrain(t *testing.T) {
	world := terrain.World()
	cs, err := terrain.CityByName(world, "CS")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cs.Terrain()
	if err != nil {
		t.Fatal(err)
	}
	_, client := newTestServer(t, tr)

	path := geo.Path{
		cs.Center,
		cs.Center.Destination(270, 3000),
	}
	samples, err := client.ElevationAlongPath(context.Background(), path, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Colorado Springs sits near 1860 m; every sample must be plausibly high.
	for i, s := range samples {
		if s < 1400 || s > 2600 {
			t.Errorf("sample %d = %f, outside plausible CS range", i, s)
		}
	}
}

func TestResponseEnvelopeShape(t *testing.T) {
	srv, _ := newTestServer(t, testSource{})
	q := url.Values{}
	q.Set("path", geo.EncodePolyline(geo.Path{{Lat: 1, Lng: 1}, {Lat: 2, Lng: 2}}))
	q.Set("samples", "3")
	resp, err := http.Get(srv.URL + "/v1/elevation/path?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var body Response
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "OK" || len(body.Results) != 3 {
		t.Errorf("envelope = %+v", body)
	}
	// Locations are echoed back.
	if math.Abs(body.Results[0].Location.Lat-1) > 1e-4 {
		t.Errorf("first location = %+v", body.Results[0].Location)
	}
}

// countingSource counts ElevationAt calls over testSource.
type countingSource struct {
	calls atomic.Int64
}

func (c *countingSource) ElevationAt(p geo.LatLng) (float64, error) {
	c.calls.Add(1)
	return testSource{}.ElevationAt(p)
}

func TestProfileCacheServesRepeatsWithoutResampling(t *testing.T) {
	src := &countingSource{}
	srv := httptest.NewServer(NewServer(src, WithLogf(t.Logf)).Handler())
	t.Cleanup(srv.Close)

	q := "/v1/elevation/path?path=" + url.QueryEscape(geo.EncodePolyline(geo.Path{{Lat: 10, Lng: 0}, {Lat: 20, Lng: 0}})) + "&samples=5"
	get := func() []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	first := get()
	callsAfterFirst := src.calls.Load()
	second := get()
	if src.calls.Load() != callsAfterFirst {
		t.Errorf("repeat query re-sampled the source (%d -> %d calls)",
			callsAfterFirst, src.calls.Load())
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached response differs from fresh one:\n%s\nvs\n%s", first, second)
	}
}

func TestProfileCacheSkipsNonOK(t *testing.T) {
	// Out-of-coverage answers (DATA_NOT_AVAILABLE) must not be cached; every
	// request reaches the source again.
	src := &countingSource{}
	srv := httptest.NewServer(NewServer(src, WithLogf(t.Logf)).Handler())
	t.Cleanup(srv.Close)

	q := "/v1/elevation/path?path=" + url.QueryEscape(geo.EncodePolyline(geo.Path{{Lat: 85, Lng: 0}, {Lat: 86, Lng: 0}})) + "&samples=2"
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		var env Response
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if env.Status != "DATA_NOT_AVAILABLE" {
			t.Fatalf("status %q, want DATA_NOT_AVAILABLE", env.Status)
		}
	}
	if src.calls.Load() < 2 {
		t.Errorf("source saw %d calls, want >=2 (non-OK must not be cached)", src.calls.Load())
	}
}

// TestClientNormalizesTrailingSlash pins the base-URL fix: a configured
// address like "http://host:port/" used to produce "//v1/..." request paths
// that miss the mux routes entirely.
func TestClientNormalizesTrailingSlash(t *testing.T) {
	srv := httptest.NewServer(NewServer(testSource{}, WithLogf(t.Logf)).Handler())
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL+"/", srv.Client())

	if _, err := client.ElevationAt(context.Background(), geo.LatLng{Lat: 10, Lng: 10}); err != nil {
		t.Fatalf("point query through slash-suffixed base URL: %v", err)
	}
}
