package imagerep

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// ToImage converts the CHW float raster to a standard RGBA image (3-channel
// rasters only), for visual inspection of what the CNN sees.
func (im *Image) ToImage() (image.Image, error) {
	if im.Channels != 3 {
		return nil, fmt.Errorf("imagerep: ToImage needs 3 channels, got %d", im.Channels)
	}
	out := image.NewRGBA(image.Rect(0, 0, im.Width, im.Height))
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			out.SetRGBA(x, y, color.RGBA{
				R: clamp8(im.At(0, y, x)),
				G: clamp8(im.At(1, y, x)),
				B: clamp8(im.At(2, y, x)),
				A: 255,
			})
		}
	}
	return out, nil
}

// WritePNG encodes the raster as a PNG.
func (im *Image) WritePNG(w io.Writer) error {
	img, err := im.ToImage()
	if err != nil {
		return err
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("imagerep: encoding png: %w", err)
	}
	return nil
}

// clamp8 maps a [0,1] float to a byte.
func clamp8(v float64) uint8 {
	switch {
	case v <= 0:
		return 0
	case v >= 1:
		return 255
	default:
		return uint8(v*255 + 0.5)
	}
}
