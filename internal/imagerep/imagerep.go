// Package imagerep implements the paper's image-like representation
// (§III-B2): an elevation signal is resampled to a fixed number of points
// and drawn as a line graph on a small raster, with the line color encoding
// the absolute elevation interval the signal lives in. Per-sample y-axis
// normalization makes the line shape encode the profile's relative
// dynamics, while color carries its absolute range — together they use the
// small feature space efficiently.
package imagerep

import (
	"fmt"
	"math"
)

// Image is a dense multi-channel raster in CHW layout, values in [0, 1].
type Image struct {
	// Channels, Height, Width describe the shape.
	Channels int
	Height   int
	Width    int
	// Data is the CHW-ordered pixel storage, len = Channels*Height*Width.
	Data []float64
}

// NewImage allocates a zero image.
func NewImage(channels, height, width int) *Image {
	return &Image{
		Channels: channels,
		Height:   height,
		Width:    width,
		Data:     make([]float64, channels*height*width),
	}
}

// At returns the pixel value at (channel, y, x).
func (im *Image) At(c, y, x int) float64 {
	return im.Data[(c*im.Height+y)*im.Width+x]
}

// Set writes the pixel value at (channel, y, x).
func (im *Image) Set(c, y, x int, v float64) {
	im.Data[(c*im.Height+y)*im.Width+x] = v
}

// Color is an RGB triple in [0, 1].
type Color [3]float64

// Interval maps elevations below UpToMeters onto a Color. Intervals are
// checked in order; the first match wins.
type Interval struct {
	// UpToMeters is the exclusive upper bound of the interval.
	UpToMeters float64
	// Color is the line color for signals whose mean falls in the interval.
	Color Color
}

// Config controls rendering.
type Config struct {
	// Width and Height are the raster dimensions (paper: 32×32).
	Width  int
	Height int
	// ResamplePoints is the fixed point count the signal is reduced to
	// (paper: 200).
	ResamplePoints int
	// Intervals is the elevation-interval color scale, ascending by
	// UpToMeters; signals above the last bound use OverflowColor.
	Intervals []Interval
	// OverflowColor colors signals above every interval bound.
	OverflowColor Color
}

// DefaultConfig matches the paper's settings: 32×32 rasters, 200 resampled
// points, and an 8-step elevation color scale spanning coastal plains to
// mountain cities.
func DefaultConfig() Config {
	return Config{
		Width:          32,
		Height:         32,
		ResamplePoints: 200,
		Intervals:      DefaultIntervals(),
		OverflowColor:  Color{1.00, 0.10, 0.40},
	}
}

// validate reports the first problem with the config.
func (c Config) validate() error {
	switch {
	case c.Width < 4 || c.Height < 4:
		return fmt.Errorf("imagerep: raster %dx%d too small", c.Width, c.Height)
	case c.ResamplePoints < 2:
		return fmt.Errorf("imagerep: ResamplePoints must be >= 2, got %d", c.ResamplePoints)
	case len(c.Intervals) == 0:
		return fmt.Errorf("imagerep: no color intervals")
	}
	for i := 1; i < len(c.Intervals); i++ {
		if c.Intervals[i].UpToMeters <= c.Intervals[i-1].UpToMeters {
			return fmt.Errorf("imagerep: interval bounds not ascending at %d", i)
		}
	}
	return nil
}

// colorFor picks the line color for a signal from its mean elevation.
func (c Config) colorFor(signal []float64) Color {
	var sum float64
	for _, e := range signal {
		sum += e
	}
	mean := sum / float64(len(signal))
	for _, iv := range c.Intervals {
		if mean < iv.UpToMeters {
			return iv.Color
		}
	}
	return c.OverflowColor
}

// DefaultIntervals returns the default elevation color scale: geometric
// interval bounds from 5 m to 2400 m, colored along a hue sweep so nearby
// intervals get nearby (but distinct) colors. Fine low-altitude bands let
// the CNN separate boroughs of one city, whose mean elevations differ by
// tens of meters.
func DefaultIntervals() []Interval {
	bounds := []float64{5, 10, 16, 25, 40, 60, 90, 130, 180, 250, 350, 500, 700, 1000, 1500, 2400}
	out := make([]Interval, len(bounds))
	for i, b := range bounds {
		// Hue sweep blue -> green -> red across the scale.
		t := float64(i) / float64(len(bounds)-1)
		out[i] = Interval{UpToMeters: b, Color: hueColor(t)}
	}
	return out
}

// hueColor maps t in [0,1] onto a blue->cyan->green->yellow->red sweep.
func hueColor(t float64) Color {
	switch {
	case t < 0.25:
		k := t / 0.25
		return Color{0.05, 0.2 + 0.8*k, 1.0}
	case t < 0.5:
		k := (t - 0.25) / 0.25
		return Color{0.05, 1.0, 1.0 - 0.9*k}
	case t < 0.75:
		k := (t - 0.5) / 0.25
		return Color{0.05 + 0.95*k, 1.0, 0.1}
	default:
		k := (t - 0.75) / 0.25
		return Color{1.0, 1.0 - 0.9*k, 0.1}
	}
}

// Resample reduces or expands a signal to exactly n points by linear
// interpolation over the sample index, the "dividing the elevation signal
// into equal-sized parts" step of the paper.
func Resample(signal []float64, n int) ([]float64, error) {
	if len(signal) == 0 {
		return nil, fmt.Errorf("imagerep: empty signal")
	}
	if n < 1 {
		return nil, fmt.Errorf("imagerep: n must be >= 1, got %d", n)
	}
	out := make([]float64, n)
	if len(signal) == 1 || n == 1 {
		for i := range out {
			out[i] = signal[0]
		}
		return out, nil
	}
	scale := float64(len(signal)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		lo := int(math.Floor(pos))
		if lo >= len(signal)-1 {
			lo = len(signal) - 2
		}
		frac := pos - float64(lo)
		out[i] = signal[lo]*(1-frac) + signal[lo+1]*frac
	}
	return out, nil
}

// Render draws the signal as a colored line graph: x is time (sample
// index), y is elevation normalized to the SIGNAL's own min/max (the
// paper's per-sample extremes), and all three channels carry the interval
// color along the line.
func Render(signal []float64, cfg Config) (*Image, error) {
	im := NewImage(3, cfg.Height, cfg.Width)
	if err := renderInto(signal, cfg, im); err != nil {
		return nil, err
	}
	return im, nil
}

// renderInto rasterizes the signal into a caller-owned (zeroed) image —
// typically a row view of a batch matrix.
func renderInto(signal []float64, cfg Config, im *Image) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if len(signal) == 0 {
		return fmt.Errorf("imagerep: empty signal")
	}

	pts, err := Resample(signal, cfg.ResamplePoints)
	if err != nil {
		return err
	}

	minV, maxV := pts[0], pts[0]
	for _, v := range pts {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	span := maxV - minV
	// A span within interpolation round-off of zero is a flat profile; it
	// draws as a horizontal midline rather than amplified float noise.
	flat := span <= 1e-9*math.Max(1, math.Abs(maxV))

	color := cfg.colorFor(signal)

	toXY := func(i int) (x, y float64) {
		x = float64(i) / float64(len(pts)-1) * float64(cfg.Width-1)
		norm := 0.5
		if !flat {
			norm = (pts[i] - minV) / span // 0 at min, 1 at max
		}
		y = (1 - norm) * float64(cfg.Height-1)
		return x, y
	}

	prevX, prevY := toXY(0)
	plot(im, prevX, prevY, color)
	for i := 1; i < len(pts); i++ {
		x, y := toXY(i)
		drawSegment(im, prevX, prevY, x, y, color)
		prevX, prevY = x, y
	}
	return nil
}

// drawSegment rasterizes the line from (x0,y0) to (x1,y1) by uniform
// stepping at sub-pixel resolution.
func drawSegment(im *Image, x0, y0, x1, y1 float64, c Color) {
	dist := math.Hypot(x1-x0, y1-y0)
	steps := int(dist*2) + 1
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		plot(im, x0+(x1-x0)*t, y0+(y1-y0)*t, c)
	}
}

// plot writes the color at the nearest pixel.
func plot(im *Image, x, y float64, c Color) {
	xi := int(math.Round(x))
	yi := int(math.Round(y))
	if xi < 0 || xi >= im.Width || yi < 0 || yi >= im.Height {
		return
	}
	for ch := 0; ch < 3; ch++ {
		im.Set(ch, yi, xi, c[ch])
	}
}

// RenderAll renders a batch of signals. The images share one contiguous
// matrix-backed allocation (see RenderBatch); callers that want the dense
// matrix itself should call RenderBatch directly.
func RenderAll(signals [][]float64, cfg Config) ([]*Image, error) {
	batch, err := RenderBatch(signals, cfg)
	if err != nil {
		return nil, err
	}
	return batch.Images(), nil
}
