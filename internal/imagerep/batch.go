package imagerep

import (
	"fmt"
	"time"

	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/obs"
)

// Rendering telemetry: batch throughput (images rendered and wall time per
// RenderBatch call), the image-side mirror of textrep's featurize series.
var (
	renderRows    = obs.GetCounter("elevpriv_imagerep_rows_rendered_total")
	renderSeconds = obs.GetHistogram("elevpriv_imagerep_render_seconds", nil)
)

// Batch is a set of rendered images stored as one dense matrix: row i is
// image i's flattened CHW pixels. One contiguous allocation keeps batch
// rendering cache-friendly and hands the CNN's batch forward its input in
// matrix form without copying.
type Batch struct {
	// Channels, Height, Width describe every image in the batch.
	Channels int
	Height   int
	Width    int
	// Pixels is the n×(Channels·Height·Width) pixel matrix.
	Pixels *linalg.Matrix
}

// RenderBatch renders every signal straight into the rows of one pixel
// matrix.
func RenderBatch(signals [][]float64, cfg Config) (*Batch, error) {
	if len(signals) == 0 {
		return nil, fmt.Errorf("imagerep: empty batch")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	defer renderSeconds.ObserveSince(time.Now())
	renderRows.Add(int64(len(signals)))
	b := &Batch{
		Channels: 3,
		Height:   cfg.Height,
		Width:    cfg.Width,
		Pixels:   linalg.NewMatrix(len(signals), 3*cfg.Height*cfg.Width),
	}
	for i, sig := range signals {
		if err := renderInto(sig, cfg, b.Image(i)); err != nil {
			return nil, fmt.Errorf("imagerep: signal %d: %w", i, err)
		}
	}
	return b, nil
}

// Len returns the image count.
func (b *Batch) Len() int { return b.Pixels.Rows }

// Image returns image i as a zero-copy view of the batch row.
func (b *Batch) Image(i int) *Image {
	return &Image{
		Channels: b.Channels,
		Height:   b.Height,
		Width:    b.Width,
		Data:     b.Pixels.Row(i),
	}
}

// Images returns views of every image in the batch.
func (b *Batch) Images() []*Image {
	out := make([]*Image, b.Len())
	for i := range out {
		out[i] = b.Image(i)
	}
	return out
}
