package imagerep

import (
	"bytes"
	"image/png"
	"math"
	"testing"
	"testing/quick"
)

func TestResample(t *testing.T) {
	t.Run("downsample preserves endpoints", func(t *testing.T) {
		sig := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		out, err := Resample(sig, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 5 || out[0] != 0 || out[4] != 9 {
			t.Errorf("out = %v", out)
		}
	})
	t.Run("upsample interpolates linearly", func(t *testing.T) {
		out, err := Resample([]float64{0, 10}, 5)
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{0, 2.5, 5, 7.5, 10}
		for i := range want {
			if math.Abs(out[i]-want[i]) > 1e-12 {
				t.Errorf("out[%d] = %f, want %f", i, out[i], want[i])
			}
		}
	})
	t.Run("single point repeats", func(t *testing.T) {
		out, err := Resample([]float64{7}, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range out {
			if v != 7 {
				t.Errorf("out = %v", out)
			}
		}
	})
	t.Run("errors", func(t *testing.T) {
		if _, err := Resample(nil, 5); err == nil {
			t.Error("empty signal accepted")
		}
		if _, err := Resample([]float64{1}, 0); err == nil {
			t.Error("n=0 accepted")
		}
	})
}

func TestResampleBoundsProperty(t *testing.T) {
	f := func(raw []float64, nSeed uint8) bool {
		sig := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sig = append(sig, v)
			}
		}
		if len(sig) == 0 {
			return true
		}
		n := int(nSeed%64) + 1
		out, err := Resample(sig, n)
		if err != nil || len(out) != n {
			return false
		}
		// Linear interpolation never exceeds the source extremes.
		minV, maxV := sig[0], sig[0]
		for _, v := range sig {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		for _, v := range out {
			if v < minV-1e-9 || v > maxV+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tiny raster", func(c *Config) { c.Width = 2 }},
		{"resample too small", func(c *Config) { c.ResamplePoints = 1 }},
		{"no intervals", func(c *Config) { c.Intervals = nil }},
		{"non-ascending bounds", func(c *Config) {
			c.Intervals = []Interval{{UpToMeters: 50}, {UpToMeters: 10}}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if _, err := Render([]float64{1, 2, 3}, cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := Render(nil, DefaultConfig()); err == nil {
		t.Error("empty signal accepted")
	}
}

func TestRenderShapeAndRange(t *testing.T) {
	cfg := DefaultConfig()
	sig := []float64{50, 55, 60, 58, 52, 49, 51, 56}
	im, err := Render(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if im.Channels != 3 || im.Height != 32 || im.Width != 32 {
		t.Fatalf("shape = %dx%dx%d", im.Channels, im.Height, im.Width)
	}
	var lit int
	for _, v := range im.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel value %f out of range", v)
		}
		if v > 0 {
			lit++
		}
	}
	if lit == 0 {
		t.Fatal("nothing drawn")
	}
}

func TestRenderLineSpansWidth(t *testing.T) {
	im, err := Render([]float64{1, 5, 2, 8, 3, 9, 4}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every column must contain at least one lit pixel: the line graph is a
	// function of x covering the full time axis.
	for x := 0; x < im.Width; x++ {
		var lit bool
		for y := 0; y < im.Height && !lit; y++ {
			if im.At(0, y, x) > 0 || im.At(1, y, x) > 0 || im.At(2, y, x) > 0 {
				lit = true
			}
		}
		if !lit {
			t.Errorf("column %d empty", x)
		}
	}
}

func TestRenderYAxisUsesSignalExtremes(t *testing.T) {
	// Rising signal: the first column must be lit near the bottom, the last
	// near the top (y inverted).
	im, err := Render([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bottomLit := im.At(0, im.Height-1, 0) > 0
	topLit := im.At(0, 0, im.Width-1) > 0
	if !bottomLit {
		t.Error("signal minimum not drawn at the bottom-left")
	}
	if !topLit {
		t.Error("signal maximum not drawn at the top-right")
	}
}

func TestRenderFlatSignal(t *testing.T) {
	im, err := Render([]float64{42, 42, 42, 42}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Flat profile: exactly one lit row.
	litRows := map[int]bool{}
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			if im.At(0, y, x) > 0 {
				litRows[y] = true
			}
		}
	}
	if len(litRows) != 1 {
		t.Errorf("flat signal lit %d rows, want 1", len(litRows))
	}
}

func TestColorEncodesElevationInterval(t *testing.T) {
	cfg := DefaultConfig()
	// Shape-identical signals at sea level vs mountain altitude must render
	// with different colors — that is the entire point of the encoding.
	low := []float64{2, 3, 4, 3, 2, 3}
	high := []float64{1860, 1861, 1862, 1861, 1860, 1861}

	imLow, err := Render(low, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imHigh, err := Render(high, cfg)
	if err != nil {
		t.Fatal(err)
	}

	colorAt := func(im *Image) Color {
		for y := 0; y < im.Height; y++ {
			for x := 0; x < im.Width; x++ {
				c := Color{im.At(0, y, x), im.At(1, y, x), im.At(2, y, x)}
				if c[0] > 0 || c[1] > 0 || c[2] > 0 {
					return c
				}
			}
		}
		return Color{}
	}
	if colorAt(imLow) == colorAt(imHigh) {
		t.Error("sea-level and mountain signals rendered with identical colors")
	}
}

func TestColorForIntervals(t *testing.T) {
	cfg := DefaultConfig()
	tests := []struct {
		mean float64
		want Color
	}{
		{2, cfg.Intervals[0].Color},
		{12, cfg.Intervals[2].Color},   // 10 <= 12 < 16
		{999, cfg.Intervals[13].Color}, // 700 <= 999 < 1000
		{9999, cfg.OverflowColor},
	}
	for _, tc := range tests {
		sig := []float64{tc.mean, tc.mean}
		if got := cfg.colorFor(sig); got != tc.want {
			t.Errorf("colorFor(mean %f) = %v, want %v", tc.mean, got, tc.want)
		}
	}
}

func TestRenderAll(t *testing.T) {
	ims, err := RenderAll([][]float64{{1, 2, 3}, {4, 5, 6}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ims) != 2 {
		t.Fatalf("len = %d", len(ims))
	}
	if _, err := RenderAll([][]float64{{1, 2}, nil}, DefaultConfig()); err == nil {
		t.Error("batch with empty signal accepted")
	}
}

func TestImageAtSetRoundTrip(t *testing.T) {
	im := NewImage(3, 4, 5)
	im.Set(2, 3, 4, 0.5)
	if got := im.At(2, 3, 4); got != 0.5 {
		t.Errorf("At = %f", got)
	}
	if got := im.At(0, 0, 0); got != 0 {
		t.Errorf("untouched pixel = %f", got)
	}
	if len(im.Data) != 60 {
		t.Errorf("data len = %d", len(im.Data))
	}
}

func TestRenderDeterministic(t *testing.T) {
	sig := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a, err := Render(sig, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Render(sig, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("render not deterministic")
		}
	}
}

func TestWritePNG(t *testing.T) {
	im, err := Render([]float64{50, 60, 55, 70, 65}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := decoded.Bounds()
	if b.Dx() != 32 || b.Dy() != 32 {
		t.Errorf("png size = %dx%d", b.Dx(), b.Dy())
	}
	// Some pixel must be non-black (the line).
	var lit bool
	for y := b.Min.Y; y < b.Max.Y && !lit; y++ {
		for x := b.Min.X; x < b.Max.X && !lit; x++ {
			r, g, bb, _ := decoded.At(x, y).RGBA()
			if r+g+bb > 0 {
				lit = true
			}
		}
	}
	if !lit {
		t.Error("png is entirely black")
	}
}

func TestToImageRequiresThreeChannels(t *testing.T) {
	im := NewImage(1, 8, 8)
	if _, err := im.ToImage(); err == nil {
		t.Error("1-channel image accepted")
	}
}

func TestClamp8(t *testing.T) {
	cases := []struct {
		in   float64
		want uint8
	}{{-1, 0}, {0, 0}, {0.5, 128}, {1, 255}, {2, 255}}
	for _, c := range cases {
		if got := clamp8(c.in); got != c.want {
			t.Errorf("clamp8(%f) = %d, want %d", c.in, got, c.want)
		}
	}
}
