package imagerep

import (
	"math/rand"
	"testing"
)

func BenchmarkRender(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sig := make([]float64, 100)
	for i := range sig {
		sig[i] = 50 + rng.Float64()*30
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Render(sig, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderBatch renders 64 signals into one shared pixel matrix,
// the path TrainImageAttack and PredictLocations use.
func BenchmarkRenderBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sigs := make([][]float64, 64)
	for i := range sigs {
		sig := make([]float64, 100)
		for j := range sig {
			sig[j] = 50 + rng.Float64()*30
		}
		sigs[i] = sig
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RenderBatch(sigs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
