package imagerep

import (
	"math/rand"
	"testing"
)

func batchSignals(n, points int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	sigs := make([][]float64, n)
	for i := range sigs {
		sig := make([]float64, points)
		for j := range sig {
			sig[j] = 50 + rng.Float64()*100
		}
		sigs[i] = sig
	}
	return sigs
}

// TestRenderBatchMatchesRender pins that batch rendering into the shared
// pixel matrix is bit-identical to per-signal Render.
func TestRenderBatchMatchesRender(t *testing.T) {
	cfg := DefaultConfig()
	sigs := batchSignals(5, 80, 1)
	b, err := RenderBatch(sigs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(sigs) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(sigs))
	}
	for i, sig := range sigs {
		want, err := Render(sig, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := b.Image(i)
		if got.Channels != want.Channels || got.Height != want.Height || got.Width != want.Width {
			t.Fatalf("image %d shape %dx%dx%d, want %dx%dx%d",
				i, got.Channels, got.Height, got.Width, want.Channels, want.Height, want.Width)
		}
		for k := range want.Data {
			if got.Data[k] != want.Data[k] {
				t.Fatalf("image %d pixel %d: batch %g, serial %g", i, k, got.Data[k], want.Data[k])
			}
		}
	}
}

// TestBatchImagesAreViews checks Image(i) shares the batch matrix storage
// rather than copying.
func TestBatchImagesAreViews(t *testing.T) {
	b, err := RenderBatch(batchSignals(2, 40, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	im := b.Image(1)
	im.Data[0] = 0.123
	if b.Pixels.At(1, 0) != 0.123 {
		t.Error("Image returned a copy, want a view")
	}
	if len(b.Images()) != 2 {
		t.Error("Images length mismatch")
	}
}

func TestRenderBatchValidation(t *testing.T) {
	if _, err := RenderBatch(nil, DefaultConfig()); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := RenderBatch([][]float64{{1, 2}, nil}, DefaultConfig()); err == nil {
		t.Error("batch with empty signal accepted")
	}
}
