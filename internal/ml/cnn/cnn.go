// Package cnn implements the paper's convolutional network (Fig. 7): two
// 5×5 stride-1 pad-2 convolutions, each followed by ReLU and 2×2 max
// pooling (32×32 → 16×16 → 8×8), then a fully connected softmax layer,
// trained with (optionally class-weighted) cross-entropy loss and Adam.
//
// The model supports warm-started re-training (TrainEpochs) and a mutable
// learning rate, which is what the paper's round-based fine-tuning strategy
// (Figs. 10-11) needs.
package cnn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"elevprivacy/internal/imagerep"
	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/obs"
)

// Config describes the network and training regime.
type Config struct {
	// Classes is the number of output classes.
	Classes int
	// InChannels and InSize describe the input (3×32×32 by default).
	InChannels int
	InSize     int
	// Conv1 and Conv2 are the two convolution widths (output channels).
	Conv1 int
	Conv2 int
	// Epochs is the default training pass count used by Fit.
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// LearningRate is Adam's step size.
	LearningRate float64
	// ClassWeights, when non-nil (length Classes), weights each class's
	// loss — the paper's weighted-loss strategy for unbalanced data, with
	// weights inversely proportional to class sample counts.
	ClassWeights []float64
	// Seed drives initialization and shuffling.
	Seed int64
}

// DefaultConfig returns the architecture used in the experiments: the
// paper's kernel/stride/padding with compact channel widths.
func DefaultConfig(classes int) Config {
	return Config{
		Classes:      classes,
		InChannels:   3,
		InSize:       32,
		Conv1:        8,
		Conv2:        16,
		Epochs:       15,
		BatchSize:    16,
		LearningRate: 1e-3,
		Seed:         1,
	}
}

const (
	kernel = 5 // paper: kernel size 5
	pad    = 2 // paper: padding 2 (stride fixed at 1)
)

// CNN is the network. All parameters live in one flat vector driven by a
// single Adam instance.
type CNN struct {
	cfg Config

	// Derived sizes.
	size1 int // feature map side after pool1
	size2 int // feature map side after pool2
	fcIn  int // flattened input to the FC layer

	params []float64
	adam   *linalg.Adam

	// Parameter offsets.
	w1, b1, w2, b2, wf, bf int
}

// New validates the config and allocates an initialized network.
func New(cfg Config) (*CNN, error) {
	if cfg.InChannels == 0 {
		cfg.InChannels = 3
	}
	if cfg.InSize == 0 {
		cfg.InSize = 32
	}
	switch {
	case cfg.Classes < 2:
		return nil, fmt.Errorf("cnn: need >= 2 classes, got %d", cfg.Classes)
	case cfg.Conv1 < 1 || cfg.Conv2 < 1:
		return nil, fmt.Errorf("cnn: conv widths %d/%d", cfg.Conv1, cfg.Conv2)
	case cfg.InSize%4 != 0:
		return nil, fmt.Errorf("cnn: input size %d not divisible by the two 2x2 pools", cfg.InSize)
	case cfg.Epochs < 1:
		return nil, fmt.Errorf("cnn: epochs %d", cfg.Epochs)
	case cfg.BatchSize < 1:
		return nil, fmt.Errorf("cnn: batch size %d", cfg.BatchSize)
	case cfg.LearningRate <= 0:
		return nil, fmt.Errorf("cnn: learning rate %g", cfg.LearningRate)
	case cfg.ClassWeights != nil && len(cfg.ClassWeights) != cfg.Classes:
		return nil, fmt.Errorf("cnn: %d class weights for %d classes", len(cfg.ClassWeights), cfg.Classes)
	}

	c := &CNN{cfg: cfg}
	c.size1 = cfg.InSize / 2
	c.size2 = cfg.InSize / 4
	c.fcIn = cfg.Conv2 * c.size2 * c.size2

	k2 := kernel * kernel
	n1 := cfg.Conv1 * cfg.InChannels * k2
	n2 := cfg.Conv2 * cfg.Conv1 * k2
	nf := cfg.Classes * c.fcIn

	c.w1 = 0
	c.b1 = n1
	c.w2 = c.b1 + cfg.Conv1
	c.b2 = c.w2 + n2
	c.wf = c.b2 + cfg.Conv2
	c.bf = c.wf + nf
	c.params = make([]float64, c.bf+cfg.Classes)

	adam, err := linalg.NewAdam(len(c.params), cfg.LearningRate)
	if err != nil {
		return nil, err
	}
	c.adam = adam
	c.initParams()
	return c, nil
}

// initParams redraws every weight from cfg.Seed (He-normal, biases zero)
// and resets the Adam moments — the state of a freshly constructed
// network. New calls it once; Fit calls it again so refitting a used
// model is bit-identical to fitting a fresh one.
func (c *CNN) initParams() {
	linalg.Zero(c.params)
	k2 := kernel * kernel
	n1 := c.cfg.Conv1 * c.cfg.InChannels * k2
	n2 := c.cfg.Conv2 * c.cfg.Conv1 * k2
	nf := c.cfg.Classes * c.fcIn

	rng := rand.New(rand.NewSource(c.cfg.Seed))
	heInit(c.params[c.w1:c.w1+n1], c.cfg.InChannels*k2, rng)
	heInit(c.params[c.w2:c.w2+n2], c.cfg.Conv1*k2, rng)
	heInit(c.params[c.wf:c.wf+nf], c.fcIn, rng)
	c.adam.Reset()
}

// heInit fills w with He-normal values for the given fan-in.
func heInit(w []float64, fanIn int, rng *rand.Rand) {
	scale := math.Sqrt(2 / float64(fanIn))
	for i := range w {
		w[i] = rng.NormFloat64() * scale
	}
}

// SetLearningRate changes Adam's step size (fine-tuning rounds lower it).
func (c *CNN) SetLearningRate(lr float64) error {
	if lr <= 0 {
		return fmt.Errorf("cnn: learning rate %g", lr)
	}
	c.adam.LR = lr
	return nil
}

// SetClassWeights replaces the loss weighting (nil disables weighting).
func (c *CNN) SetClassWeights(w []float64) error {
	if w != nil && len(w) != c.cfg.Classes {
		return fmt.Errorf("cnn: %d class weights for %d classes", len(w), c.cfg.Classes)
	}
	c.cfg.ClassWeights = w
	return nil
}

// Classes returns the output dimensionality.
func (c *CNN) Classes() int { return c.cfg.Classes }

// validateImages checks a training batch.
func (c *CNN) validateImages(images []*imagerep.Image, labels []int) error {
	if len(images) == 0 {
		return fmt.Errorf("cnn: empty training set")
	}
	if len(images) != len(labels) {
		return fmt.Errorf("cnn: %d images but %d labels", len(images), len(labels))
	}
	for i, im := range images {
		if im == nil {
			return fmt.Errorf("cnn: image %d is nil", i)
		}
		if im.Channels != c.cfg.InChannels || im.Height != c.cfg.InSize || im.Width != c.cfg.InSize {
			return fmt.Errorf("cnn: image %d has shape %dx%dx%d, model expects %dx%dx%d",
				i, im.Channels, im.Height, im.Width, c.cfg.InChannels, c.cfg.InSize, c.cfg.InSize)
		}
		if labels[i] < 0 || labels[i] >= c.cfg.Classes {
			return fmt.Errorf("cnn: label %d of image %d outside [0,%d)", labels[i], i, c.cfg.Classes)
		}
	}
	return nil
}

// Fit trains for the configured epoch count from a fresh initialization:
// parameters are redrawn from cfg.Seed and the Adam moments reset, so
// refitting a used model is bit-identical to fitting a fresh one. Use
// TrainEpochs to warm-start (fine-tuning rounds).
func (c *CNN) Fit(images []*imagerep.Image, labels []int) error {
	c.initParams()
	return c.TrainEpochs(images, labels, c.cfg.Epochs)
}

// TrainEpochs runs the given number of passes, warm-starting from the
// current parameters — the primitive the fine-tuning rounds build on.
// Minibatch gradients are computed concurrently across samples; the
// reduction order is fixed, so training is deterministic.
func (c *CNN) TrainEpochs(images []*imagerep.Image, labels []int, epochs int) error {
	if err := c.validateImages(images, labels); err != nil {
		return err
	}
	if epochs < 1 {
		return fmt.Errorf("cnn: epochs %d", epochs)
	}

	rng := rand.New(rand.NewSource(c.cfg.Seed + 17))
	n := len(images)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > c.cfg.BatchSize {
		workers = c.cfg.BatchSize
	}
	if workers < 1 {
		workers = 1
	}
	workerGrads := make([][]float64, workers)
	workerScratch := make([]*scratch, workers)
	for w := 0; w < workers; w++ {
		workerGrads[w] = make([]float64, len(c.params))
		workerScratch[w] = c.newScratch()
	}
	weightTotals := make([]float64, workers)

	for epoch := 0; epoch < epochs; epoch++ {
		epochStart := time.Now()
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += c.cfg.BatchSize {
			end := start + c.cfg.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]

			// Fan the batch out in fixed contiguous chunks per worker.
			var wg sync.WaitGroup
			linalg.Zero(weightTotals)
			chunk := (len(batch) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				if lo >= len(batch) {
					break
				}
				hi := lo + chunk
				if hi > len(batch) {
					hi = len(batch)
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					linalg.Zero(workerGrads[w])
					for _, i := range batch[lo:hi] {
						weightTotals[w] += c.backward(images[i], labels[i], workerGrads[w], workerScratch[w])
					}
				}(w, lo, hi)
			}
			wg.Wait()

			// Deterministic fused reduce in worker order: one batched
			// Adam step over the per-worker gradient shards.
			used := (len(batch) + chunk - 1) / chunk
			var weightTotal float64
			for w := 0; w < used; w++ {
				weightTotal += weightTotals[w]
			}
			scale := 1.0
			if weightTotal > 0 {
				scale = 1 / weightTotal
			}
			stepStart := time.Now()
			c.adam.StepSum(c.params, workerGrads[:used], scale)
			adamStepSeconds.ObserveSince(stepStart)
		}
		epochSeconds.ObserveSince(epochStart)
	}
	return nil
}

// Training telemetry: per-epoch wall time and the Adam update's share of it
// (the fused reduce is the serial section between the concurrent backward
// workers, so its histogram shows when it becomes the bottleneck).
var (
	epochSeconds    = obs.GetHistogram(`elevpriv_ml_epoch_seconds{model="cnn"}`, nil)
	adamStepSeconds = obs.GetHistogram(`elevpriv_ml_adam_step_seconds{model="cnn"}`, nil)
)

// Predict returns the most probable class for one image.
func (c *CNN) Predict(im *imagerep.Image) (int, error) {
	probs, err := c.Probabilities(im)
	if err != nil {
		return 0, err
	}
	return linalg.ArgMax(probs), nil
}

// Probabilities returns the softmax distribution for one image.
func (c *CNN) Probabilities(im *imagerep.Image) ([]float64, error) {
	if err := c.validateImages([]*imagerep.Image{im}, []int{0}); err != nil {
		return nil, err
	}
	s := c.newScratch()
	c.forward(im, s)
	out := make([]float64, c.cfg.Classes)
	copy(out, s.probs)
	return out, nil
}

// savedConfig is the persisted CNN description.
type savedConfig struct {
	Config Config `json:"config"`
}

// Save serializes the trained network (architecture + parameters). The
// optimizer's moment estimates are not saved; a loaded model predicts
// immediately and fine-tunes with fresh Adam state.
func (c *CNN) Save(w io.Writer) error {
	cfgJSON, err := json.Marshal(savedConfig{Config: c.cfg})
	if err != nil {
		return fmt.Errorf("cnn: marshaling config: %w", err)
	}
	return ml.WriteModel(w, ml.Header{Kind: "cnn", Config: cfgJSON}, c.params)
}

// Load reconstructs a saved network.
func Load(r io.Reader) (*CNN, error) {
	h, blocks, err := ml.ReadModel(r)
	if err != nil {
		return nil, err
	}
	if h.Kind != "cnn" {
		return nil, fmt.Errorf("cnn: file holds a %q model", h.Kind)
	}
	var sc savedConfig
	if err := json.Unmarshal(h.Config, &sc); err != nil {
		return nil, fmt.Errorf("cnn: parsing config: %w", err)
	}
	c, err := New(sc.Config)
	if err != nil {
		return nil, err
	}
	if len(blocks) != 1 || len(blocks[0]) != len(c.params) {
		return nil, fmt.Errorf("cnn: parameter block mismatch (%d blocks)", len(blocks))
	}
	copy(c.params, blocks[0])
	return c, nil
}
