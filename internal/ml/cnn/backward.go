package cnn

import (
	"elevprivacy/internal/imagerep"
	"elevprivacy/internal/ml/linalg"
)

// backward runs forward then accumulates the (optionally class-weighted)
// cross-entropy gradient for one sample into grads, returning the sample's
// loss weight so the caller can normalize the batch.
func (c *CNN) backward(im *imagerep.Image, label int, grads []float64, s *scratch) float64 {
	c.forward(im, s)

	weight := 1.0
	if c.cfg.ClassWeights != nil {
		weight = c.cfg.ClassWeights[label]
	}

	// FC layer: dLogit = w*(p - onehot).
	linalg.Zero(s.dPool2)
	for cls := 0; cls < c.cfg.Classes; cls++ {
		dLogit := s.probs[cls]
		if cls == label {
			dLogit--
		}
		dLogit *= weight
		grads[c.bf+cls] += dLogit
		wRow := c.params[c.wf+cls*c.fcIn : c.wf+(cls+1)*c.fcIn]
		gRow := grads[c.wf+cls*c.fcIn : c.wf+(cls+1)*c.fcIn]
		linalg.Axpy(gRow, s.pool2, dLogit)
		linalg.Axpy(s.dPool2, wRow, dLogit)
	}

	// Pool2 -> conv2 (route gradient to argmax winners).
	linalg.Zero(s.dConv2)
	for i, src := range s.arg2 {
		s.dConv2[src] += s.dPool2[i]
	}
	// ReLU gate of conv2 (activations are post-ReLU; zero means blocked).
	for i := range s.dConv2 {
		if s.conv2[i] <= 0 {
			s.dConv2[i] = 0
		}
	}

	// Conv2 backward: weight/bias grads and input gradient (pool1).
	linalg.Zero(s.dPool1)
	convBackward(s.pool1, c.cfg.Conv1, c.size1,
		c.params[c.w2:c.b2], s.dConv2, c.cfg.Conv2,
		grads[c.w2:c.b2], grads[c.b2:c.wf], s.dPool1)

	// Pool1 -> conv1.
	linalg.Zero(s.dConv1)
	for i, src := range s.arg1 {
		s.dConv1[src] += s.dPool1[i]
	}
	for i := range s.dConv1 {
		if s.conv1[i] <= 0 {
			s.dConv1[i] = 0
		}
	}

	// Conv1 backward: no input gradient needed.
	convBackward(im.Data, c.cfg.InChannels, c.cfg.InSize,
		c.params[c.w1:c.b1], s.dConv1, c.cfg.Conv1,
		grads[c.w1:c.b1], grads[c.b1:c.w2], nil)

	return weight
}

// convBackward accumulates gradients for one convolution layer given the
// gradient dOut at its (pre-pool, post-ReLU-gated) output. dIn may be nil
// when the input gradient is not needed (the first layer).
func convBackward(in []float64, inCh, size int, w, dOut []float64, outCh int, gw, gb, dIn []float64) {
	k2 := kernel * kernel
	for oc := 0; oc < outCh; oc++ {
		dPlane := dOut[oc*size*size : (oc+1)*size*size]
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				d := dPlane[y*size+x]
				if d == 0 {
					continue
				}
				gb[oc] += d
				for ic := 0; ic < inCh; ic++ {
					inPlane := in[ic*size*size : (ic+1)*size*size]
					base := (oc*inCh + ic) * k2
					for ky := 0; ky < kernel; ky++ {
						iy := y + ky - pad
						if iy < 0 || iy >= size {
							continue
						}
						rowBase := iy * size
						wRow := base + ky*kernel
						for kx := 0; kx < kernel; kx++ {
							ix := x + kx - pad
							if ix < 0 || ix >= size {
								continue
							}
							gw[wRow+kx] += d * inPlane[rowBase+ix]
							if dIn != nil {
								dIn[ic*size*size+rowBase+ix] += d * w[wRow+kx]
							}
						}
					}
				}
			}
		}
	}
}
