package cnn

import (
	"elevprivacy/internal/imagerep"
	"elevprivacy/internal/ml/linalg"
)

// scratch holds all per-sample forward/backward buffers so training
// allocates nothing per step. One scratch belongs to one goroutine.
type scratch struct {
	conv1  []float64 // Conv1 × InSize × InSize, post-ReLU
	pool1  []float64 // Conv1 × size1 × size1
	arg1   []int     // argmax source index per pool1 cell
	conv2  []float64 // Conv2 × size1 × size1, post-ReLU
	pool2  []float64 // Conv2 × size2 × size2 (the flattened FC input)
	arg2   []int
	logits []float64
	probs  []float64

	// Backward buffers.
	dPool2 []float64
	dConv2 []float64
	dPool1 []float64
	dConv1 []float64
}

func (c *CNN) newScratch() *scratch {
	in := c.cfg.InSize
	return &scratch{
		conv1:  make([]float64, c.cfg.Conv1*in*in),
		pool1:  make([]float64, c.cfg.Conv1*c.size1*c.size1),
		arg1:   make([]int, c.cfg.Conv1*c.size1*c.size1),
		conv2:  make([]float64, c.cfg.Conv2*c.size1*c.size1),
		pool2:  make([]float64, c.cfg.Conv2*c.size2*c.size2),
		arg2:   make([]int, c.cfg.Conv2*c.size2*c.size2),
		logits: make([]float64, c.cfg.Classes),
		probs:  make([]float64, c.cfg.Classes),
		dPool2: make([]float64, c.cfg.Conv2*c.size2*c.size2),
		dConv2: make([]float64, c.cfg.Conv2*c.size1*c.size1),
		dPool1: make([]float64, c.cfg.Conv1*c.size1*c.size1),
		dConv1: make([]float64, c.cfg.Conv1*in*in),
	}
}

// convForward computes out[oc] = ReLU(b[oc] + Σ_ic w[oc,ic] ⊛ in[ic]) for a
// square input of side size with kernel 5, stride 1, pad 2.
func convForward(in []float64, inCh, size int, w, b []float64, out []float64, outCh int) {
	k2 := kernel * kernel
	for oc := 0; oc < outCh; oc++ {
		bias := b[oc]
		outPlane := out[oc*size*size : (oc+1)*size*size]
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				sum := bias
				for ic := 0; ic < inCh; ic++ {
					inPlane := in[ic*size*size : (ic+1)*size*size]
					wBase := (oc*inCh + ic) * k2
					for ky := 0; ky < kernel; ky++ {
						iy := y + ky - pad
						if iy < 0 || iy >= size {
							continue
						}
						rowBase := iy * size
						wRow := wBase + ky*kernel
						for kx := 0; kx < kernel; kx++ {
							ix := x + kx - pad
							if ix < 0 || ix >= size {
								continue
							}
							sum += w[wRow+kx] * inPlane[rowBase+ix]
						}
					}
				}
				if sum < 0 {
					sum = 0 // ReLU fused into the convolution
				}
				outPlane[y*size+x] = sum
			}
		}
	}
}

// poolForward max-pools each channel 2×2 with stride 2, recording the
// winning source index for the backward pass.
func poolForward(in []float64, channels, size int, out []float64, arg []int) {
	half := size / 2
	for ch := 0; ch < channels; ch++ {
		inPlane := in[ch*size*size : (ch+1)*size*size]
		outBase := ch * half * half
		for y := 0; y < half; y++ {
			for x := 0; x < half; x++ {
				i00 := (2*y)*size + 2*x
				best := i00
				if inPlane[i00+1] > inPlane[best] {
					best = i00 + 1
				}
				if inPlane[i00+size] > inPlane[best] {
					best = i00 + size
				}
				if inPlane[i00+size+1] > inPlane[best] {
					best = i00 + size + 1
				}
				out[outBase+y*half+x] = inPlane[best]
				arg[outBase+y*half+x] = ch*size*size + best
			}
		}
	}
}

// forward runs the full network on one image.
func (c *CNN) forward(im *imagerep.Image, s *scratch) {
	in := c.cfg.InSize
	convForward(im.Data, c.cfg.InChannels, in,
		c.params[c.w1:c.b1], c.params[c.b1:c.w2], s.conv1, c.cfg.Conv1)
	poolForward(s.conv1, c.cfg.Conv1, in, s.pool1, s.arg1)

	convForward(s.pool1, c.cfg.Conv1, c.size1,
		c.params[c.w2:c.b2], c.params[c.b2:c.wf], s.conv2, c.cfg.Conv2)
	poolForward(s.conv2, c.cfg.Conv2, c.size1, s.pool2, s.arg2)

	for cls := 0; cls < c.cfg.Classes; cls++ {
		row := c.params[c.wf+cls*c.fcIn : c.wf+(cls+1)*c.fcIn]
		s.logits[cls] = c.params[c.bf+cls] + linalg.Dot(row, s.pool2)
	}
	linalg.Softmax(s.logits, s.probs)
}
