package cnn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"elevprivacy/internal/imagerep"
	"elevprivacy/internal/ml"
)

// syntheticImages builds class-distinguishable images: class c fills a
// c-dependent quadrant with bright pixels plus noise elsewhere.
func syntheticImages(classes, perClass int, seed int64) ([]*imagerep.Image, []int) {
	rng := rand.New(rand.NewSource(seed))
	var images []*imagerep.Image
	var labels []int
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			im := imagerep.NewImage(3, 32, 32)
			// Noise floor.
			for k := 0; k < 50; k++ {
				im.Set(rng.Intn(3), rng.Intn(32), rng.Intn(32), rng.Float64()*0.3)
			}
			// Class quadrant: bright block.
			y0 := (c % 2) * 16
			x0 := ((c / 2) % 2) * 16
			for y := y0; y < y0+16; y++ {
				for x := x0; x < x0+16; x++ {
					if (y+x)%2 == 0 {
						im.Set(c%3, y, x, 0.8+rng.Float64()*0.2)
					}
				}
			}
			images = append(images, im)
			labels = append(labels, c)
		}
	}
	return images, labels
}

func fastConfig(classes int) Config {
	cfg := DefaultConfig(classes)
	cfg.Conv1 = 4
	cfg.Conv2 = 8
	cfg.Epochs = 8
	return cfg
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Classes: 1, Conv1: 4, Conv2: 4, Epochs: 1, BatchSize: 1, LearningRate: 0.1},
		{Classes: 2, Conv1: 0, Conv2: 4, Epochs: 1, BatchSize: 1, LearningRate: 0.1},
		{Classes: 2, Conv1: 4, Conv2: 4, Epochs: 0, BatchSize: 1, LearningRate: 0.1},
		{Classes: 2, Conv1: 4, Conv2: 4, Epochs: 1, BatchSize: 0, LearningRate: 0.1},
		{Classes: 2, Conv1: 4, Conv2: 4, Epochs: 1, BatchSize: 1, LearningRate: 0},
		{Classes: 2, Conv1: 4, Conv2: 4, InSize: 30, Epochs: 1, BatchSize: 1, LearningRate: 0.1},
		{Classes: 2, Conv1: 4, Conv2: 4, Epochs: 1, BatchSize: 1, LearningRate: 0.1, ClassWeights: []float64{1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestLearnsQuadrantClasses(t *testing.T) {
	images, labels := syntheticImages(4, 12, 1)
	c, err := New(fastConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(images, labels); err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := range images {
		pred, err := c.Predict(images[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(images)); acc < 0.9 {
		t.Errorf("training accuracy = %f, want >= 0.9", acc)
	}
}

func TestGeneralizesToHeldOut(t *testing.T) {
	trainIm, trainY := syntheticImages(2, 20, 2)
	testIm, testY := syntheticImages(2, 8, 99) // fresh noise
	c, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(trainIm, trainY); err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := range testIm {
		pred, _ := c.Predict(testIm[i])
		if pred == testY[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(testIm)); acc < 0.85 {
		t.Errorf("held-out accuracy = %f", acc)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	images, labels := syntheticImages(2, 4, 3)
	c, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(images, labels); err != nil {
		t.Fatal(err)
	}
	probs, err := c.Probabilities(images[0])
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probability %f", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %f", sum)
	}
}

func TestDeterministicTrainingAcrossParallelism(t *testing.T) {
	images, labels := syntheticImages(2, 8, 4)
	run := func() []float64 {
		c, err := New(fastConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.TrainEpochs(images, labels, 3); err != nil {
			t.Fatal(err)
		}
		probs, _ := c.Probabilities(images[0])
		return probs
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed CNN training diverges: %v vs %v", a, b)
		}
	}
}

func TestWeightedLossShiftsMinorityRecall(t *testing.T) {
	// Unbalanced: class 0 has 24 samples, class 1 only 4. Weighted loss
	// should lift minority-class predictions relative to unweighted.
	rng := rand.New(rand.NewSource(5))
	build := func() ([]*imagerep.Image, []int) {
		var images []*imagerep.Image
		var labels []int
		maj, _ := syntheticImages(1, 24, 6)
		images = append(images, maj...)
		for range maj {
			labels = append(labels, 0)
		}
		for i := 0; i < 4; i++ {
			im := imagerep.NewImage(3, 32, 32)
			for y := 16; y < 32; y++ {
				for x := 0; x < 16; x++ {
					if (y+x)%2 == 0 {
						im.Set(1, y, x, 0.9)
					}
				}
			}
			for k := 0; k < 50; k++ {
				im.Set(rng.Intn(3), rng.Intn(32), rng.Intn(32), rng.Float64()*0.3)
			}
			images = append(images, im)
			labels = append(labels, 1)
		}
		return images, labels
	}

	images, labels := build()
	weights := []float64{1.0 / 24, 1.0 / 4}
	// Normalize to mean 1.
	mean := (weights[0] + weights[1]) / 2
	weights[0] /= mean
	weights[1] /= mean

	cfg := fastConfig(2)
	cfg.ClassWeights = weights
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(images, labels); err != nil {
		t.Fatal(err)
	}
	var minorityCorrect int
	for i := range images {
		if labels[i] != 1 {
			continue
		}
		if pred, _ := c.Predict(images[i]); pred == 1 {
			minorityCorrect++
		}
	}
	if minorityCorrect < 3 {
		t.Errorf("weighted loss recalled %d/4 minority samples", minorityCorrect)
	}
}

// TestRefitMatchesFresh pins the Fit contract shared by all four
// classifiers: Fit always reinitializes (parameters redrawn from cfg.Seed,
// Adam moments reset), so refitting a used model is bit-identical to
// fitting a fresh one. Warm starting is TrainEpochs's job, not Fit's.
func TestRefitMatchesFresh(t *testing.T) {
	images, labels := syntheticImages(2, 8, 6)
	refit, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(images, labels); err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(images, labels); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Fit(images, labels); err != nil {
		t.Fatal(err)
	}
	for i := range images {
		want, err := fresh.Probabilities(images[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := refit.Probabilities(images[i])
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("image %d class %d: refit %g, fresh %g", i, k, got[k], want[k])
			}
		}
	}
}

func TestFineTuningWarmStart(t *testing.T) {
	// Train on classes {0,1} only, then fine-tune with all 3; the final
	// model must know all 3 classes.
	images3, labels3 := syntheticImages(3, 10, 7)
	var images2 []*imagerep.Image
	var labels2 []int
	for i := range images3 {
		if labels3[i] < 2 {
			images2 = append(images2, images3[i])
			labels2 = append(labels2, labels3[i])
		}
	}

	c, err := New(fastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.TrainEpochs(images2, labels2, 6); err != nil {
		t.Fatal(err)
	}
	// Fine-tune with reduced learning rate on the full dataset.
	if err := c.SetLearningRate(7e-4); err != nil {
		t.Fatal(err)
	}
	if err := c.TrainEpochs(images3, labels3, 12); err != nil {
		t.Fatal(err)
	}

	perClass := map[int]int{}
	for i := range images3 {
		if pred, _ := c.Predict(images3[i]); pred == labels3[i] {
			perClass[labels3[i]]++
		}
	}
	for cls := 0; cls < 3; cls++ {
		if perClass[cls] < 7 {
			t.Errorf("class %d: %d/10 correct after fine-tuning", cls, perClass[cls])
		}
	}
}

func TestSetLearningRateValidation(t *testing.T) {
	c, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetLearningRate(0); err == nil {
		t.Error("lr 0 accepted")
	}
	if err := c.SetClassWeights([]float64{1}); err == nil {
		t.Error("wrong-length weights accepted")
	}
	if err := c.SetClassWeights(nil); err != nil {
		t.Errorf("nil weights rejected: %v", err)
	}
}

func TestTrainValidation(t *testing.T) {
	c, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	im := imagerep.NewImage(3, 32, 32)
	if err := c.Fit([]*imagerep.Image{im}, []int{5}); err == nil {
		t.Error("bad label accepted")
	}
	small := imagerep.NewImage(3, 16, 16)
	if err := c.Fit([]*imagerep.Image{small}, []int{0}); err == nil {
		t.Error("wrong image shape accepted")
	}
	if err := c.Fit([]*imagerep.Image{nil}, []int{0}); err == nil {
		t.Error("nil image accepted")
	}
	if err := c.TrainEpochs([]*imagerep.Image{im}, []int{0}, 0); err == nil {
		t.Error("0 epochs accepted")
	}
}

func TestPoolForwardSelectsMax(t *testing.T) {
	in := make([]float64, 16) // 1 channel, 4x4
	in[0], in[1], in[4], in[5] = 1, 9, 3, 2
	in[2], in[3], in[6], in[7] = 0, 0, 0, 7
	out := make([]float64, 4)
	arg := make([]int, 4)
	poolForward(in, 1, 4, out, arg)
	if out[0] != 9 || arg[0] != 1 {
		t.Errorf("pool cell 0 = %f (arg %d)", out[0], arg[0])
	}
	if out[1] != 7 || arg[1] != 7 {
		t.Errorf("pool cell 1 = %f (arg %d)", out[1], arg[1])
	}
}

func TestConvGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network: perturb one conv1 weight
	// and compare loss delta against the analytic gradient.
	cfg := Config{
		Classes: 2, InChannels: 1, InSize: 8,
		Conv1: 2, Conv2: 2,
		Epochs: 1, BatchSize: 1, LearningRate: 0.01, Seed: 11,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	im := imagerep.NewImage(1, 8, 8)
	rng := rand.New(rand.NewSource(12))
	for i := range im.Data {
		im.Data[i] = rng.Float64()
	}
	label := 1

	loss := func() float64 {
		s := c.newScratch()
		c.forward(im, s)
		return -math.Log(s.probs[label] + 1e-12)
	}

	grads := make([]float64, len(c.params))
	s := c.newScratch()
	c.backward(im, label, grads, s)

	const eps = 1e-5
	for _, pi := range []int{0, 3, c.w2 + 1, c.wf + 2, c.bf} {
		orig := c.params[pi]
		c.params[pi] = orig + eps
		up := loss()
		c.params[pi] = orig - eps
		down := loss()
		c.params[pi] = orig

		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-grads[pi]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("param %d: numeric grad %g vs analytic %g", pi, numeric, grads[pi])
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	images, labels := syntheticImages(2, 6, 21)
	c, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.TrainEpochs(images, labels, 4); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, im := range images {
		want, _ := c.Probabilities(im)
		got, err := back.Probabilities(im)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("image %d class %d: %f vs %f", i, k, got[k], want[k])
			}
		}
	}
	// The loaded model keeps training (fresh optimizer state).
	if err := back.TrainEpochs(images, labels, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	var buf bytes.Buffer
	cfgJSON := []byte(`{}`)
	if err := ml.WriteModel(&buf, ml.Header{Kind: "mlp", Config: cfgJSON}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("mlp file loaded as cnn")
	}
}
