package cnn

import (
	"testing"
)

// TestPredictBatchMatchesPredict pins the batch contract: the im2col batch
// forward (chunked patch matmul + matrix FC head) must be bit-identical to
// the serial per-image forward — same predictions, same probabilities.
func TestPredictBatchMatchesPredict(t *testing.T) {
	images, labels := syntheticImages(3, 4, 7)
	c, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.TrainEpochs(images, labels, 2); err != nil {
		t.Fatal(err)
	}

	batch, err := c.PredictBatch(images)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := c.Scores(images)
	if err != nil {
		t.Fatal(err)
	}
	for i, im := range images {
		want, err := c.Predict(im)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Errorf("image %d: batch %d, serial %d", i, batch[i], want)
		}
		probs, err := c.Probabilities(im)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range probs {
			if scores.At(i, k) != p {
				t.Errorf("image %d prob %d: batch %g, serial %g", i, k, scores.At(i, k), p)
			}
		}
	}
}

// TestPredictBatchSpansChunks forces more images than one batchChunk so
// the chunk boundary path is exercised.
func TestPredictBatchSpansChunks(t *testing.T) {
	if testing.Short() {
		t.Skip("renders >batchChunk images")
	}
	images, labels := syntheticImages(2, batchChunk/2+3, 8) // 2*(chunk/2+3) > chunk
	c, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.TrainEpochs(images, labels, 1); err != nil {
		t.Fatal(err)
	}
	batch, err := c.PredictBatch(images)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(images) {
		t.Fatalf("batch returned %d predictions for %d images", len(batch), len(images))
	}
	for i, im := range images {
		want, err := c.Predict(im)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Errorf("image %d across chunk boundary: batch %d, serial %d", i, batch[i], want)
		}
	}
}

func TestPredictBatchValidation(t *testing.T) {
	c, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}
