package cnn

import (
	"testing"
)

func BenchmarkForward(b *testing.B) {
	images, _ := syntheticImages(2, 1, 1)
	c, err := New(DefaultConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	s := c.newScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.forward(images[0], s)
	}
}

// BenchmarkPredictLoop vs BenchmarkPredictBatch compare per-image serial
// inference with the im2col batch forward over the same image set.
func BenchmarkPredictLoop(b *testing.B) {
	images, _ := syntheticImages(4, 4, 1)
	c, err := New(DefaultConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, im := range images {
			if _, err := c.Predict(im); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	images, _ := syntheticImages(4, 4, 1)
	c, err := New(DefaultConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PredictBatch(images); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	images, labels := syntheticImages(4, 8, 1)
	c, err := New(DefaultConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.TrainEpochs(images, labels, 1); err != nil {
			b.Fatal(err)
		}
	}
}
