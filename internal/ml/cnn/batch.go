package cnn

import (
	"fmt"

	"elevprivacy/internal/imagerep"
	"elevprivacy/internal/ml/linalg"
)

// Batch inference. Convolutions run as im2col matrix products: the input
// patches of a whole image chunk are unfolded into one patch matrix and
// multiplied against the kernel bank with the blocked parallel MatMulT
// kernel, so batch throughput scales with cores instead of looping the
// per-sample forward. The patch rows carry a leading 1-column and the
// kernel rows a leading bias entry, making the dot product accumulate
// bias-first over the exact term order of the serial convolution — batch
// probabilities equal per-sample Probabilities bit for bit.

// batchChunk bounds how many images unfold at once; the conv1 patch matrix
// for a 32×32 RGB chunk of this size stays around 20 MB.
const batchChunk = 32

// PredictBatch returns the most probable class for every image.
func (c *CNN) PredictBatch(images []*imagerep.Image) ([]int, error) {
	probs, err := c.Scores(images)
	if err != nil {
		return nil, err
	}
	return linalg.ArgMaxRows(probs), nil
}

// Scores returns the softmax class distribution for every image as an
// n×Classes matrix, computed through the im2col batch forward.
func (c *CNN) Scores(images []*imagerep.Image) (*linalg.Matrix, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("cnn: empty batch")
	}
	if err := c.validateImages(images, make([]int, len(images))); err != nil {
		return nil, err
	}
	probs := linalg.NewMatrix(len(images), c.cfg.Classes)
	for lo := 0; lo < len(images); lo += batchChunk {
		hi := lo + batchChunk
		if hi > len(images) {
			hi = len(images)
		}
		c.forwardChunk(images[lo:hi], probs, lo)
	}
	return probs, nil
}

// forwardChunk runs one image chunk through both conv/pool stages and the
// FC softmax head, writing probabilities into rows [rowBase, rowBase+len).
func (c *CNN) forwardChunk(images []*imagerep.Image, probs *linalg.Matrix, rowBase int) {
	n := len(images)
	in := c.cfg.InSize

	// Stage 1: conv over the raw images, then 2×2 pool.
	planes1 := make([][]float64, n)
	for i, im := range images {
		planes1[i] = im.Data
	}
	conv1 := c.convBatch(planes1, c.cfg.InChannels, in,
		c.params[c.w1:c.b1], c.params[c.b1:c.w2], c.cfg.Conv1)
	pool1 := make([][]float64, n)
	arg := make([]int, c.cfg.Conv1*c.size1*c.size1)
	for i := range conv1 {
		pool1[i] = make([]float64, c.cfg.Conv1*c.size1*c.size1)
		poolForward(conv1[i], c.cfg.Conv1, in, pool1[i], arg)
	}

	// Stage 2 feeds the pooled planes through the second conv/pool pair,
	// flattening straight into the FC feature matrix.
	conv2 := c.convBatch(pool1, c.cfg.Conv1, c.size1,
		c.params[c.w2:c.b2], c.params[c.b2:c.wf], c.cfg.Conv2)
	features := linalg.NewMatrix(n, c.fcIn)
	arg2 := make([]int, c.fcIn)
	for i := range conv2 {
		poolForward(conv2[i], c.cfg.Conv2, c.size1, features.Row(i), arg2)
	}

	// FC head: one affine kernel plus row softmax for the whole chunk.
	wf := &linalg.Matrix{Rows: c.cfg.Classes, Cols: c.fcIn, Data: c.params[c.wf:c.bf]}
	logits := linalg.AffineT(features, wf, c.params[c.bf:])
	linalg.SoftmaxRows(logits)
	for i := 0; i < n; i++ {
		copy(probs.Row(rowBase+i), logits.Row(i))
	}
}

// convBatch applies one 5×5 stride-1 pad-2 convolution (+ReLU) to every
// plane set via im2col: patches (with a leading 1 for the bias) form one
// matrix, kernels (with a leading bias entry) another, and their product
// yields every output pixel of every image and channel at once.
func (c *CNN) convBatch(inputs [][]float64, inCh, size int, w, b []float64, outCh int) [][]float64 {
	n := len(inputs)
	k2 := kernel * kernel
	cols := 1 + inCh*k2
	pixels := size * size

	// Kernel bank: row oc = [bias_oc | w_oc], matching the patch layout.
	bank := linalg.NewMatrix(outCh, cols)
	for oc := 0; oc < outCh; oc++ {
		row := bank.Row(oc)
		row[0] = b[oc]
		copy(row[1:], w[oc*inCh*k2:(oc+1)*inCh*k2])
	}

	patches := linalg.NewMatrix(n*pixels, cols)
	for img, plane := range inputs {
		base := img * pixels
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				row := patches.Row(base + y*size + x)
				row[0] = 1
				p := 1
				for ic := 0; ic < inCh; ic++ {
					icBase := ic * pixels
					for ky := 0; ky < kernel; ky++ {
						iy := y + ky - pad
						if iy < 0 || iy >= size {
							p += kernel // out-of-bounds row: leave zeros
							continue
						}
						rowBase := icBase + iy*size
						for kx := 0; kx < kernel; kx++ {
							ix := x + kx - pad
							if ix >= 0 && ix < size {
								row[p] = plane[rowBase+ix]
							}
							p++
						}
					}
				}
			}
		}
	}

	// (n·pixels × cols) · (outCh × cols)ᵀ — the whole chunk's convolution.
	prod := linalg.MatMulT(patches, bank)

	// Scatter back to CHW planes with the ReLU fused in.
	out := make([][]float64, n)
	for img := 0; img < n; img++ {
		plane := make([]float64, outCh*pixels)
		base := img * pixels
		for pix := 0; pix < pixels; pix++ {
			row := prod.Row(base + pix)
			for oc := 0; oc < outCh; oc++ {
				v := row[oc]
				if v < 0 {
					v = 0
				}
				plane[oc*pixels+pix] = v
			}
		}
		out[img] = plane
	}
	return out
}
