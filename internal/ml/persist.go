package ml

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"elevprivacy/internal/ml/linalg"
)

// Model persistence: a tiny container format shared by the classifiers.
// A file is a JSON header (model kind + config) followed by raw float64
// parameter blocks, so a trained attack can be saved once and reloaded
// without retraining.
//
// Layout:
//
//	magic "ELPV" | uint32 header length | header JSON |
//	uint32 block count | per block: uint64 length | float64 values (LE)

const persistMagic = "ELPV"

// Header identifies the serialized model.
type Header struct {
	// Kind is the model type ("cnn", "mlp", "svm").
	Kind string `json:"kind"`
	// Config is the model's own configuration, marshaled by the caller.
	Config json.RawMessage `json:"config"`
}

// WriteModel serializes a header plus parameter blocks.
func WriteModel(w io.Writer, h Header, blocks ...[]float64) error {
	if h.Kind == "" {
		return fmt.Errorf("ml: empty model kind")
	}
	hdr, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("ml: marshaling header: %w", err)
	}
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return fmt.Errorf("ml: writing magic: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(hdr))); err != nil {
		return fmt.Errorf("ml: writing header length: %w", err)
	}
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("ml: writing header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(blocks))); err != nil {
		return fmt.Errorf("ml: writing block count: %w", err)
	}
	for i, block := range blocks {
		if err := binary.Write(w, binary.LittleEndian, uint64(len(block))); err != nil {
			return fmt.Errorf("ml: writing block %d length: %w", i, err)
		}
		buf := make([]byte, 8*len(block))
		for j, v := range block {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("ml: writing block %d: %w", i, err)
		}
	}
	return nil
}

// RowBlocks exposes a matrix as per-row parameter blocks (shared views, not
// copies) for WriteModel, keeping the on-disk layout of models that
// historically saved one block per row.
func RowBlocks(m *linalg.Matrix) [][]float64 {
	return m.RowSlices()
}

// MatrixFromBlocks reassembles row blocks read by ReadModel into a matrix,
// validating that every block has the expected width.
func MatrixFromBlocks(blocks [][]float64, cols int) (*linalg.Matrix, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("ml: no blocks")
	}
	m := linalg.NewMatrix(len(blocks), cols)
	for i, b := range blocks {
		if len(b) != cols {
			return nil, fmt.Errorf("ml: block %d has %d values, want %d", i, len(b), cols)
		}
		copy(m.Row(i), b)
	}
	return m, nil
}

// maxBlockLen bounds a parameter block read from disk (64M values = 512 MB),
// protecting against corrupt headers.
const maxBlockLen = 64 << 20

// ReadModel parses a serialized model, returning the header and blocks.
func ReadModel(r io.Reader) (Header, [][]float64, error) {
	var h Header
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return h, nil, fmt.Errorf("ml: reading magic: %w", err)
	}
	if !bytes.Equal(magic, []byte(persistMagic)) {
		return h, nil, fmt.Errorf("ml: not a model file (magic %q)", magic)
	}
	var hdrLen uint32
	if err := binary.Read(r, binary.LittleEndian, &hdrLen); err != nil {
		return h, nil, fmt.Errorf("ml: reading header length: %w", err)
	}
	if hdrLen > 1<<20 {
		return h, nil, fmt.Errorf("ml: implausible header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return h, nil, fmt.Errorf("ml: reading header: %w", err)
	}
	if err := json.Unmarshal(hdr, &h); err != nil {
		return h, nil, fmt.Errorf("ml: parsing header: %w", err)
	}

	var blockCount uint32
	if err := binary.Read(r, binary.LittleEndian, &blockCount); err != nil {
		return h, nil, fmt.Errorf("ml: reading block count: %w", err)
	}
	if blockCount > 1<<16 {
		return h, nil, fmt.Errorf("ml: implausible block count %d", blockCount)
	}
	blocks := make([][]float64, 0, blockCount)
	for i := uint32(0); i < blockCount; i++ {
		var n uint64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return h, nil, fmt.Errorf("ml: reading block %d length: %w", i, err)
		}
		if n > maxBlockLen {
			return h, nil, fmt.Errorf("ml: implausible block length %d", n)
		}
		buf := make([]byte, 8*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return h, nil, fmt.Errorf("ml: reading block %d: %w", i, err)
		}
		block := make([]float64, n)
		for j := range block {
			block[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
		}
		blocks = append(blocks, block)
	}
	return h, blocks, nil
}
