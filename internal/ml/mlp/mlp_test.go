package mlp

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func blobs(centers [][]float64, perClass int, spread float64, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for c, center := range centers {
		for i := 0; i < perClass; i++ {
			p := make([]float64, len(center))
			for d := range center {
				p[d] = center[d] + rng.NormFloat64()*spread
			}
			x = append(x, p)
			y = append(y, c)
		}
	}
	return x, y
}

func testConfig(classes int) Config {
	cfg := DefaultConfig(classes)
	cfg.Hidden = 32
	cfg.Epochs = 80
	return cfg
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Classes: 1, Hidden: 10, Epochs: 1, BatchSize: 1, LearningRate: 0.1},
		{Classes: 2, Hidden: 0, Epochs: 1, BatchSize: 1, LearningRate: 0.1},
		{Classes: 2, Hidden: 10, Epochs: 0, BatchSize: 1, LearningRate: 0.1},
		{Classes: 2, Hidden: 10, Epochs: 1, BatchSize: 0, LearningRate: 0.1},
		{Classes: 2, Hidden: 10, Epochs: 1, BatchSize: 1, LearningRate: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSeparableBlobs(t *testing.T) {
	x, y := blobs([][]float64{{0, 0}, {4, 4}, {0, 4}}, 30, 0.5, 1)
	m, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := range x {
		pred, err := m.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Errorf("accuracy = %f", acc)
	}
}

func TestNonLinearXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	for i := 0; i < 240; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		label := 0
		if (a > 0) != (b > 0) {
			label = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, label)
	}
	cfg := testConfig(2)
	cfg.Epochs = 200
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := range x {
		pred, _ := m.Predict(x[i])
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.9 {
		t.Errorf("XOR accuracy = %f (MLP must beat linear models here)", acc)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	x, y := blobs([][]float64{{0}, {3}}, 15, 0.3, 3)
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probs, err := m.Probabilities([]float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probability %f out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %f", sum)
	}
}

func TestDeterministicTraining(t *testing.T) {
	x, y := blobs([][]float64{{0, 0}, {3, 3}}, 20, 0.8, 4)
	run := func() []float64 {
		m, err := New(testConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		probs, _ := m.Probabilities([]float64{1.5, 1.5})
		return probs
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed training diverges")
		}
	}
}

// TestRefitMatchesFresh pins the Fit contract: refitting a used model is
// bit-identical to fitting a fresh one. A previous version silently
// warm-started when the input dimension matched — stale weights and stale
// Adam moments/step count leaked into the second fit.
func TestRefitMatchesFresh(t *testing.T) {
	x, y := blobs([][]float64{{0}, {3}}, 10, 0.3, 5)
	refit, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want, _ := fresh.Probabilities(x[i])
		got, _ := refit.Probabilities(x[i])
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("sample %d class %d: refit %g, fresh %g", i, k, got[k], want[k])
			}
		}
	}
}

// TestRefitChangesDimension checks that a second Fit with a different
// feature width reshapes the network instead of failing or mixing stale
// parameters.
func TestRefitChangesDimension(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	x1, y1 := blobs([][]float64{{0}, {3}}, 10, 0.3, 5)
	if err := m.Fit(x1, y1); err != nil {
		t.Fatal(err)
	}
	x2, y2 := blobs([][]float64{{0, 0}, {3, 3}}, 10, 0.3, 6)
	if err := m.Fit(x2, y2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 1}); err != nil {
		t.Fatalf("predict after refit with new width: %v", err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("old-width predict still accepted after refit")
	}
}

// TestDeterministicTrainingAcrossParallelism trains the same model under
// GOMAXPROCS 1 and 4 and requires bit-identical probabilities: the batched
// kernels may fan rows out across goroutines, but each output cell is one
// accumulator summed in a fixed order, so parallelism must not change a
// single bit. Under -race this also exercises the data-parallel epoch for
// unsynchronized access.
func TestDeterministicTrainingAcrossParallelism(t *testing.T) {
	// Wide enough that the affine kernels cross the parallel threshold.
	x, y := blobs([][]float64{make([]float64, 96), func() []float64 {
		c := make([]float64, 96)
		for i := range c {
			c[i] = 3
		}
		return c
	}()}, 24, 0.8, 7)
	cfg := testConfig(2)
	cfg.Hidden = 64
	cfg.Epochs = 6
	run := func(procs int) []float64 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		probs, _ := m.Probabilities(x[0])
		return probs
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("class %d: GOMAXPROCS=1 %g, GOMAXPROCS=4 %g", i, serial[i], parallel[i])
		}
	}
}

func TestFitPredictValidation(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("predict before fit accepted")
	}
	if err := m.Fit([][]float64{{1}, {2}}, []int{0, 5}); err == nil {
		t.Error("bad label accepted")
	}
	x, y := blobs([][]float64{{0}, {3}}, 5, 0.3, 6)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong-dim predict accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	x, y := blobs([][]float64{{0, 1}, {4, 5}}, 15, 0.4, 31)
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want, _ := m.Probabilities(x[i])
		got, err := back.Probabilities(x[i])
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("sample %d: %v vs %v", i, got, want)
			}
		}
	}
}

func TestSaveUnfittedRejected(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Error("unfitted model saved")
	}
}
