package mlp

import (
	"math"
	"testing"

	"elevprivacy/internal/ml/linalg"
)

// float32TrainTol bounds how far Float32-trained probabilities may drift
// from the float64 reference on the same data and seed. Training error
// compounds across steps (float32 kernels + Adam32's reciprocal-multiply
// bias correction), so the tolerance is far looser than a single forward
// pass would need; at benchmark scale (400 samples, 4 epochs) the observed
// drift is ~5e-8, and these small-problem runs stay under ~1e-4.
const float32TrainTol = 1e-2

// TestFloat32TrainingTracksFloat64 trains the reduced-precision path and
// the float64 path on identical data and requires the class distributions
// to agree within the stated tolerance, with full argmax agreement.
func TestFloat32TrainingTracksFloat64(t *testing.T) {
	x, y := blobs([][]float64{{0, 0}, {4, 0}, {0, 4}}, 20, 0.5, 33)
	cfg := DefaultConfig(3)
	cfg.Epochs = 10

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	cfg32 := cfg
	cfg32.Float32 = true
	fast, err := New(cfg32)
	if err != nil {
		t.Fatal(err)
	}
	if err := fast.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	var maxDiff float64
	for i := range x {
		want, _ := ref.Probabilities(x[i])
		got, err := fast.Probabilities(x[i])
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if d := math.Abs(want[k] - got[k]); d > maxDiff {
				maxDiff = d
			}
		}
		if linalg.ArgMax(want) != linalg.ArgMax(got) {
			t.Fatalf("sample %d: argmax disagrees (float64 %v, float32 %v)", i, want, got)
		}
	}
	if maxDiff > float32TrainTol {
		t.Fatalf("max probability drift %g exceeds %g", maxDiff, float32TrainTol)
	}
	if maxDiff == 0 {
		t.Fatal("float32 path produced bit-identical probabilities; reduced-precision kernels likely not exercised")
	}
}

// TestFloat32FitSparseTracksDense checks the Float32 knob's deployed
// configuration — FitSparse on CSR features — against the dense Float32
// path. The sparse and dense float32 kernels accumulate in different
// orders, so this is a tolerance comparison, not bit equality.
func TestFloat32FitSparseTracksDense(t *testing.T) {
	raw, y := blobs([][]float64{{0, 0}, {4, 0}, {0, 4}}, 20, 0.5, 34)
	x := padSparse(raw, 10)
	cfg := DefaultConfig(3)
	cfg.Epochs = 8
	cfg.Float32 = true

	dense, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.FitSparse(linalg.SparseFromDense(xm), y); err != nil {
		t.Fatal(err)
	}

	want, err := dense.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sparse.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if d := math.Abs(want.Data[i] - got.Data[i]); d > float32TrainTol {
			t.Fatalf("probability %d: dense-trained %v, sparse-trained %v (diff %g)",
				i, want.Data[i], got.Data[i], d)
		}
	}
}

// TestFloat32RefitMatchesFresh extends the refit contract to the
// reduced-precision path: Adam32 moments and the float32 shadow must reset
// on every Fit.
func TestFloat32RefitMatchesFresh(t *testing.T) {
	x, y := blobs([][]float64{{0}, {3}}, 10, 0.3, 35)
	cfg := testConfig(2)
	cfg.Float32 = true

	refit, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want, _ := fresh.Probabilities(x[i])
		got, _ := refit.Probabilities(x[i])
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("sample %d class %d: refit %g, fresh %g", i, k, got[k], want[k])
			}
		}
	}
}
