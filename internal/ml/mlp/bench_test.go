package mlp

import (
	"math/rand"
	"testing"

	"elevprivacy/internal/ml/linalg"
)

func benchFitted(b *testing.B, n int) (*MLP, [][]float64, *linalg.Matrix) {
	b.Helper()
	centers := [][]float64{make([]float64, 128), make([]float64, 128), make([]float64, 128)}
	for c, center := range centers {
		for d := c * 40; d < c*40+40; d++ {
			center[d] = 1
		}
	}
	x, y := blobs(centers, n/3, 0.3, 1)
	cfg := testConfig(3)
	cfg.Epochs = 10
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		b.Fatal(err)
	}
	return m, x, xm
}

// tableIISparse builds a CSR training set at the paper's Table II scale:
// 400 samples over a 4096-bucket feature space with ~200 stored entries
// per row — the shape the elevation-profile attack trains at, and the one
// the training-path benchmarks should be judged on.
func tableIISparse() (*linalg.SparseMatrix, []int) {
	const n, d, k = 400, 4096, 4
	const nnzPerRow = 200
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		r := make([]float64, d)
		for t := 0; t < nnzPerRow; t++ {
			r[rng.Intn(d)] = float64(rng.Intn(5) + 1)
		}
		rows[i] = r
		y[i] = rng.Intn(k)
	}
	m, _ := linalg.FromRows(rows)
	return linalg.SparseFromDense(m), y
}

func benchFitSparse(b *testing.B, float32Path bool) {
	sp, y := tableIISparse()
	cfg := Config{Classes: 4, Hidden: 100, Epochs: 4, BatchSize: 16, LearningRate: 1e-3, Seed: 42, Float32: float32Path}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.FitSparse(sp, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitSparseTableII(b *testing.B)   { benchFitSparse(b, false) }
func BenchmarkFitSparse32TableII(b *testing.B) { benchFitSparse(b, true) }

func BenchmarkPredictLoop(b *testing.B) {
	m, x, _ := benchFitted(b, 240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			if _, err := m.Predict(x[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	m, _, xm := benchFitted(b, 240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictBatch(xm); err != nil {
			b.Fatal(err)
		}
	}
}
