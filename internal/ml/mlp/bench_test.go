package mlp

import (
	"testing"

	"elevprivacy/internal/ml/linalg"
)

func benchFitted(b *testing.B, n int) (*MLP, [][]float64, *linalg.Matrix) {
	b.Helper()
	centers := [][]float64{make([]float64, 128), make([]float64, 128), make([]float64, 128)}
	for c, center := range centers {
		for d := c * 40; d < c*40+40; d++ {
			center[d] = 1
		}
	}
	x, y := blobs(centers, n/3, 0.3, 1)
	cfg := testConfig(3)
	cfg.Epochs = 10
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		b.Fatal(err)
	}
	return m, x, xm
}

func BenchmarkPredictLoop(b *testing.B) {
	m, x, _ := benchFitted(b, 240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			if _, err := m.Predict(x[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	m, _, xm := benchFitted(b, 240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictBatch(xm); err != nil {
			b.Fatal(err)
		}
	}
}
