package mlp

import (
	"testing"

	"elevprivacy/internal/ml/linalg"
)

// padSparse embeds each sample in a wider feature space with zero columns,
// so the CSR form actually skips entries.
func padSparse(x [][]float64, dim int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		wide := make([]float64, dim)
		for j, v := range row {
			wide[j*3] = v
		}
		out[i] = wide
	}
	return out
}

// TestSparseMatchesDense pins the SparseBatchClassifier contract: the
// sparse first layer must leave every downstream activation bit-identical
// to the dense forward pass.
func TestSparseMatchesDense(t *testing.T) {
	raw, y := blobs([][]float64{{0, 0}, {4, 0}, {0, 4}}, 20, 0.5, 21)
	x := padSparse(raw, 10)
	cfg := DefaultConfig(3)
	cfg.Epochs = 8
	clf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	sp := linalg.SparseFromDense(xm)

	dense, err := clf.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := clf.ScoresSparse(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense.Data {
		if dense.Data[i] != sparse.Data[i] {
			t.Fatalf("probability %d: dense %v, sparse %v", i, dense.Data[i], sparse.Data[i])
		}
	}

	dPreds, err := clf.PredictBatch(xm)
	if err != nil {
		t.Fatal(err)
	}
	sPreds, err := clf.PredictBatchSparse(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dPreds {
		if dPreds[i] != sPreds[i] {
			t.Fatalf("sample %d: dense class %d, sparse class %d", i, dPreds[i], sPreds[i])
		}
	}
}

// TestFitSparseMatchesFit pins the sparse training contract: FitSparse on
// a CSR batch must produce a model bit-identical to Fit on its dense form.
// The sparse first-layer kernels skip only exact-zero terms, and every
// gradient cell accumulates its per-sample contributions in the same
// ascending order as the dense path.
func TestFitSparseMatchesFit(t *testing.T) {
	raw, y := blobs([][]float64{{0, 0}, {4, 0}, {0, 4}}, 20, 0.5, 23)
	x := padSparse(raw, 10)
	cfg := DefaultConfig(3)
	cfg.Epochs = 8

	dense, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.FitSparse(linalg.SparseFromDense(xm), y); err != nil {
		t.Fatal(err)
	}

	want, err := dense.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sparse.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("probability %d: dense-trained %v, sparse-trained %v", i, want.Data[i], got.Data[i])
		}
	}
}

func TestSparsePredictValidation(t *testing.T) {
	clf, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	one := linalg.SparseFromDense(linalg.NewMatrix(1, 2))
	if _, err := clf.PredictBatchSparse(one); err == nil {
		t.Error("sparse predict before fit accepted")
	}
	x, y := blobs([][]float64{{0, 0}, {5, 5}}, 8, 0.3, 22)
	cfg := DefaultConfig(2)
	cfg.Epochs = 2
	clf, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	wrong := linalg.SparseFromDense(linalg.NewMatrix(2, 5))
	if _, err := clf.PredictBatchSparse(wrong); err == nil {
		t.Error("wrong-dim sparse batch accepted")
	}
}
