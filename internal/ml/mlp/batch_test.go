package mlp

import (
	"testing"

	"elevprivacy/internal/ml/linalg"
)

// TestPredictBatchMatchesPredict pins the batch contract: the matrix
// forward (AffineT → ReLURows → AffineT → SoftmaxRows) must be
// bit-identical to the per-sample forward on every row.
func TestPredictBatchMatchesPredict(t *testing.T) {
	x, y := blobs([][]float64{{0, 0}, {4, 0}, {0, 4}}, 20, 0.6, 7)
	m, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := m.PredictBatch(xm)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := m.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want, err := m.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Errorf("sample %d: batch %d, serial %d", i, batch[i], want)
		}
		probs, err := m.Probabilities(x[i])
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range probs {
			if scores.At(i, k) != p {
				t.Errorf("sample %d prob %d: batch %g, serial %g", i, k, scores.At(i, k), p)
			}
		}
	}
}

func TestPredictBatchValidation(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredictBatch(linalg.NewMatrix(1, 1)); err == nil {
		t.Error("batch predict before fit accepted")
	}
	x, y := blobs([][]float64{{0}, {3}}, 6, 0.3, 8)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredictBatch(linalg.NewMatrix(2, 4)); err == nil {
		t.Error("wrong-dim batch accepted")
	}
}
