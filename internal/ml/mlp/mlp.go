// Package mlp implements the paper's multi-layer perceptron: one
// 100-unit ReLU hidden layer with a softmax output, trained with
// cross-entropy loss and the Adam optimizer.
package mlp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/obs"
)

// Config tunes the network.
type Config struct {
	// Classes is the number of output classes.
	Classes int
	// Hidden is the hidden-layer width (paper: 100).
	Hidden int
	// Epochs is the number of training passes.
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// LearningRate is Adam's step size.
	LearningRate float64
	// Seed drives initialization and shuffling.
	Seed int64
	// Float32 selects the reduced-precision training fast path: forward
	// and backward run through the cache-blocked float32 kernels against a
	// float32 shadow of the weights, and the optimizer is linalg.Adam32 —
	// float32 moments and reciprocal-multiply bias correction against
	// float64 master parameters (the master-copy split of Micikevicius et
	// al., arXiv:1710.03740). Roughly half the training memory traffic and
	// a quarter of the divider pressure in the optimizer step; results
	// track the float64 path within small tolerances rather than bit for
	// bit. Prediction always runs float64.
	Float32 bool
}

// DefaultConfig returns the experiment configuration.
func DefaultConfig(classes int) Config {
	return Config{
		Classes:      classes,
		Hidden:       100,
		Epochs:       30,
		BatchSize:    16,
		LearningRate: 1e-3,
		Seed:         1,
	}
}

// MLP is the network. Parameters live in one flat vector so a single Adam
// instance drives the whole model.
type MLP struct {
	cfg Config
	dim int

	params []float64
	adam   *linalg.Adam   // float64 path optimizer
	adam32 *linalg.Adam32 // float32 path optimizer (cfg.Float32)

	// Offsets into params.
	w1, b1, w2, b2 int
}

var (
	_ ml.Classifier            = (*MLP)(nil)
	_ ml.SparseBatchClassifier = (*MLP)(nil)
	_ ml.SparseTrainer         = (*MLP)(nil)
)

// New creates an untrained MLP.
func New(cfg Config) (*MLP, error) {
	switch {
	case cfg.Classes < 2:
		return nil, fmt.Errorf("mlp: need >= 2 classes, got %d", cfg.Classes)
	case cfg.Hidden < 1:
		return nil, fmt.Errorf("mlp: hidden width %d", cfg.Hidden)
	case cfg.Epochs < 1:
		return nil, fmt.Errorf("mlp: epochs %d", cfg.Epochs)
	case cfg.BatchSize < 1:
		return nil, fmt.Errorf("mlp: batch size %d", cfg.BatchSize)
	case cfg.LearningRate <= 0:
		return nil, fmt.Errorf("mlp: learning rate %g", cfg.LearningRate)
	}
	return &MLP{cfg: cfg}, nil
}

// init allocates and He-initializes parameters for input dimension d.
func (m *MLP) init(d int, rng *rand.Rand) error {
	m.dim = d
	h, k := m.cfg.Hidden, m.cfg.Classes

	m.w1 = 0
	m.b1 = h * d
	m.w2 = m.b1 + h
	m.b2 = m.w2 + k*h
	m.params = make([]float64, m.b2+k)

	scale1 := math.Sqrt(2 / float64(d))
	for i := 0; i < h*d; i++ {
		m.params[m.w1+i] = rng.NormFloat64() * scale1
	}
	scale2 := math.Sqrt(2 / float64(h))
	for i := 0; i < k*h; i++ {
		m.params[m.w2+i] = rng.NormFloat64() * scale2
	}

	if m.cfg.Float32 {
		adam32, err := linalg.NewAdam32(len(m.params), m.cfg.LearningRate)
		if err != nil {
			return err
		}
		m.adam32, m.adam = adam32, nil
		return nil
	}
	adam, err := linalg.NewAdam(len(m.params), m.cfg.LearningRate)
	if err != nil {
		return err
	}
	m.adam, m.adam32 = adam, nil
	return nil
}

// Fit trains the network with minibatch Adam. The whole minibatch runs
// through the batched linalg kernels (train.go): each gradient cell still
// accumulates its per-sample terms in ascending sample order, so the
// trained parameters are bit-identical to the retired per-sample loop.
//
// Fit always reinitializes: parameters are redrawn from cfg.Seed and the
// Adam moments reset, so refitting a used model is bit-identical to
// fitting a fresh one. (An earlier version skipped init when the input
// dimension matched, silently resuming from stale weights and stale
// optimizer state.)
func (m *MLP) Fit(x [][]float64, y []int) error {
	dim, err := ml.ValidateTrainingSet(x, y, m.cfg.Classes)
	if err != nil {
		return fmt.Errorf("mlp: %w", err)
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	if err := m.init(dim, rng); err != nil {
		return err
	}
	if m.cfg.Float32 {
		return m.fit32(x, nil, y, rng)
	}
	return m.fit64(x, nil, y, rng)
}

// FitSparse trains on a CSR feature batch without densifying it: the
// first-layer forward uses the sparse affine kernel and the first-layer
// weight gradient accumulates only over stored nonzeros. The model is
// bit-identical to Fit on ToDense() of the same matrix — the skipped
// terms are exact-zero products, which the dense accumulation absorbs as
// identity adds.
func (m *MLP) FitSparse(x *linalg.SparseMatrix, y []int) error {
	if err := ml.ValidateSparseTrainingSet(x, y, m.cfg.Classes); err != nil {
		return fmt.Errorf("mlp: %w", err)
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	if err := m.init(x.Cols, rng); err != nil {
		return err
	}
	if m.cfg.Float32 {
		return m.fit32(nil, x, y, rng)
	}
	return m.fit64(nil, x, y, rng)
}

// Training telemetry: per-epoch wall time and the Adam update's share of it
// (the optimizer step is the serial section between concurrent backward
// passes, so its histogram shows when parameter count becomes the bottleneck).
var (
	epochSeconds    = obs.GetHistogram(`elevpriv_ml_epoch_seconds{model="mlp"}`, nil)
	adamStepSeconds = obs.GetHistogram(`elevpriv_ml_adam_step_seconds{model="mlp"}`, nil)
)

// scratch holds per-forward intermediate buffers.
type scratch struct {
	hidden []float64 // post-ReLU activations
	logits []float64
	probs  []float64
}

func (m *MLP) newScratch() *scratch {
	return &scratch{
		hidden: make([]float64, m.cfg.Hidden),
		logits: make([]float64, m.cfg.Classes),
		probs:  make([]float64, m.cfg.Classes),
	}
}

// forward computes hidden activations and class probabilities.
func (m *MLP) forward(x []float64, s *scratch) {
	h, d, k := m.cfg.Hidden, m.dim, m.cfg.Classes
	for j := 0; j < h; j++ {
		z := m.params[m.b1+j] + linalg.Dot(m.params[m.w1+j*d:m.w1+(j+1)*d], x)
		if z < 0 {
			z = 0
		}
		s.hidden[j] = z
	}
	for c := 0; c < k; c++ {
		s.logits[c] = m.params[m.b2+c] + linalg.Dot(m.params[m.w2+c*h:m.w2+(c+1)*h], s.hidden)
	}
	linalg.Softmax(s.logits, s.probs)
}

// Predict returns the most probable class.
func (m *MLP) Predict(x []float64) (int, error) {
	probs, err := m.Probabilities(x)
	if err != nil {
		return 0, err
	}
	return linalg.ArgMax(probs), nil
}

// Probabilities returns the softmax class distribution.
func (m *MLP) Probabilities(x []float64) ([]float64, error) {
	if m.params == nil {
		return nil, fmt.Errorf("mlp: model not fitted")
	}
	if len(x) != m.dim {
		return nil, fmt.Errorf("mlp: feature dim %d, model expects %d", len(x), m.dim)
	}
	s := m.newScratch()
	m.forward(x, s)
	out := make([]float64, len(s.probs))
	copy(out, s.probs)
	return out, nil
}

// weight1 and weight2 view the flat parameter vector as the two layer
// matrices (shared storage, no copies).
func (m *MLP) weight1() *linalg.Matrix {
	return &linalg.Matrix{Rows: m.cfg.Hidden, Cols: m.dim, Data: m.params[m.w1:m.b1]}
}

func (m *MLP) weight2() *linalg.Matrix {
	return &linalg.Matrix{Rows: m.cfg.Classes, Cols: m.cfg.Hidden, Data: m.params[m.w2:m.b2]}
}

// Scores runs the whole feature batch through the network as two affine
// matrix kernels — H = ReLU(X·W1ᵀ + b1), P = softmax(H·W2ᵀ + b2) — and
// returns the n×Classes probability matrix. Row i equals Probabilities of
// row i bit for bit: both paths compute bias + Dot(w, x) per unit.
func (m *MLP) Scores(x *linalg.Matrix) (*linalg.Matrix, error) {
	if m.params == nil {
		return nil, fmt.Errorf("mlp: model not fitted")
	}
	if x.Cols != m.dim {
		return nil, fmt.Errorf("mlp: feature dim %d, model expects %d", x.Cols, m.dim)
	}
	hidden := linalg.AffineT(x, m.weight1(), m.params[m.b1:m.w2])
	linalg.ReLURows(hidden)
	logits := linalg.AffineT(hidden, m.weight2(), m.params[m.b2:])
	linalg.SoftmaxRows(logits)
	return logits, nil
}

// PredictBatch returns the most probable class for every row of x via the
// batched forward pass.
func (m *MLP) PredictBatch(x *linalg.Matrix) ([]int, error) {
	probs, err := m.Scores(x)
	if err != nil {
		return nil, err
	}
	return linalg.ArgMaxRows(probs), nil
}

// ScoresSparse runs a CSR feature batch through the network. Only the
// first layer touches the input, so it alone switches to the sparse
// kernel — H = ReLU(X_csr·W1ᵀ + b1) — and the dense hidden activations
// flow through the unchanged second layer. Bit-identical to Scores on the
// dense form of x.
func (m *MLP) ScoresSparse(x *linalg.SparseMatrix) (*linalg.Matrix, error) {
	if m.params == nil {
		return nil, fmt.Errorf("mlp: model not fitted")
	}
	if x.Cols != m.dim {
		return nil, fmt.Errorf("mlp: feature dim %d, model expects %d", x.Cols, m.dim)
	}
	hidden := linalg.SparseAffineT(x, m.weight1(), m.params[m.b1:m.w2])
	linalg.ReLURows(hidden)
	logits := linalg.AffineT(hidden, m.weight2(), m.params[m.b2:])
	linalg.SoftmaxRows(logits)
	return logits, nil
}

// PredictBatchSparse returns the most probable class for every row of a
// CSR feature batch.
func (m *MLP) PredictBatchSparse(x *linalg.SparseMatrix) ([]int, error) {
	probs, err := m.ScoresSparse(x)
	if err != nil {
		return nil, err
	}
	return linalg.ArgMaxRows(probs), nil
}

// savedConfig is the persisted MLP description: the architecture plus the
// input dimension fixed at first Fit.
type savedConfig struct {
	Config Config `json:"config"`
	Dim    int    `json:"dim"`
}

// Save serializes the trained network. Optimizer state is not saved.
func (m *MLP) Save(w io.Writer) error {
	if m.params == nil {
		return fmt.Errorf("mlp: model not fitted")
	}
	cfgJSON, err := json.Marshal(savedConfig{Config: m.cfg, Dim: m.dim})
	if err != nil {
		return fmt.Errorf("mlp: marshaling config: %w", err)
	}
	return ml.WriteModel(w, ml.Header{Kind: "mlp", Config: cfgJSON}, m.params)
}

// Load reconstructs a saved network.
func Load(r io.Reader) (*MLP, error) {
	h, blocks, err := ml.ReadModel(r)
	if err != nil {
		return nil, err
	}
	if h.Kind != "mlp" {
		return nil, fmt.Errorf("mlp: file holds a %q model", h.Kind)
	}
	var sc savedConfig
	if err := json.Unmarshal(h.Config, &sc); err != nil {
		return nil, fmt.Errorf("mlp: parsing config: %w", err)
	}
	m, err := New(sc.Config)
	if err != nil {
		return nil, err
	}
	if err := m.init(sc.Dim, rand.New(rand.NewSource(sc.Config.Seed))); err != nil {
		return nil, err
	}
	if len(blocks) != 1 || len(blocks[0]) != len(m.params) {
		return nil, fmt.Errorf("mlp: parameter block mismatch (%d blocks)", len(blocks))
	}
	copy(m.params, blocks[0])
	return m, nil
}
