package mlp

import (
	"math/rand"
	"time"

	"elevprivacy/internal/ml/linalg"
)

// Batched training loops. The old trainer walked the minibatch one sample
// at a time, re-reading both weight matrices from memory for every sample;
// these loops run the whole minibatch through fused matrix kernels, so the
// weights stream through the cache once per batch instead of once per
// sample. The float64 path is bit-identical to the per-sample loop: every
// gradient cell is a distinct accumulator, and the kernels add its
// per-sample terms in ascending sample order — the order the old loop
// used — so the sums round identically. The float32 path trades that
// parity for another halving of memory traffic (see Config.Float32).

// trainView reslices a full-batch scratch matrix down to the live rows of
// a (possibly short, final) minibatch.
func trainView(m *linalg.Matrix, rows int) *linalg.Matrix {
	return &linalg.Matrix{Rows: rows, Cols: m.Cols, Data: m.Data[:rows*m.Cols]}
}

func trainView32(m *linalg.Matrix32, rows int) *linalg.Matrix32 {
	return &linalg.Matrix32{Rows: rows, Cols: m.Cols, Data: m.Data[:rows*m.Cols]}
}

// fit64 is the float64 trainer. Exactly one of x (dense rows) and sp (CSR)
// is non-nil; rng arrives having consumed the He-init draws, matching the
// old trainer's stream position, so shuffles are reproduced draw for draw.
func (m *MLP) fit64(x [][]float64, sp *linalg.SparseMatrix, y []int, rng *rand.Rand) error {
	n := len(y)
	h, d, k := m.cfg.Hidden, m.dim, m.cfg.Classes
	bs := m.cfg.BatchSize
	if bs > n {
		bs = n
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	// One flat gradient vector, viewed as the four parameter regions. The
	// dense kernels overwrite their region every batch; the sparse W1
	// accumulation instead relies on its region being zero at batch start
	// and re-clears exactly the touched cells after the optimizer step.
	grads := make([]float64, len(m.params))
	gW1 := &linalg.Matrix{Rows: h, Cols: d, Data: grads[m.w1:m.b1]}
	gB1 := grads[m.b1:m.w2]
	gW2 := &linalg.Matrix{Rows: k, Cols: h, Data: grads[m.w2:m.b2]}
	gB2 := grads[m.b2:]

	// Per-fit batch scratch, reused across every minibatch.
	var xb *linalg.Matrix
	var spb *linalg.SparseMatrix
	if sp != nil {
		spb = &linalg.SparseMatrix{}
	} else {
		xb = linalg.NewMatrix(bs, d)
	}
	hid := linalg.NewMatrix(bs, h)
	probs := linalg.NewMatrix(bs, k)
	dh := linalg.NewMatrix(bs, h)

	w1, w2 := m.weight1(), m.weight2()
	bias1, bias2 := m.params[m.b1:m.w2], m.params[m.b2:]

	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		epochStart := time.Now()
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.cfg.BatchSize {
			end := start + m.cfg.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			bn := len(batch)

			hv := trainView(hid, bn)
			pv := trainView(probs, bn)
			dv := trainView(dh, bn)

			// Forward: H = ReLU(X·W1ᵀ + b1), P = softmax(H·W2ᵀ + b2).
			if sp != nil {
				sp.GatherRowsInto(batch, spb)
				linalg.SparseAffineTInto(spb, w1, bias1, hv)
			} else {
				xv := trainView(xb, bn)
				for i, idx := range batch {
					copy(xv.Row(i), x[idx])
				}
				linalg.AffineTInto(xv, w1, bias1, hv)
			}
			linalg.ReLURows(hv)
			linalg.AffineTInto(hv, w2, bias2, pv)
			linalg.SoftmaxRows(pv)

			// Backward. P becomes the output deltas in place.
			for i, idx := range batch {
				pv.Row(i)[y[idx]]--
			}
			linalg.MatTMulInto(pv, hv, gW2)
			linalg.ColSumsInto(pv, gB2)
			linalg.MatMulInto(pv, w2, dv)
			linalg.ZeroWhereNonPos(dv, hv)
			linalg.ColSumsInto(dv, gB1)
			if sp != nil {
				sparseGradW1(spb, dv, gW1)
			} else {
				linalg.MatTMulInto(dv, trainView(xb, bn), gW1)
			}

			// Fused scale + update (identical numbers to Scale then Step).
			stepStart := time.Now()
			m.adam.StepSum(m.params, [][]float64{grads}, 1/float64(bn))
			adamStepSeconds.ObserveSince(stepStart)

			if sp != nil {
				clearSparseGradW1(dv, gW1)
			}
		}
		epochSeconds.ObserveSince(epochStart)
	}
	return nil
}

// sparseGradW1 accumulates the first-layer weight gradient from a CSR
// minibatch: gW1[j][c] += Σ_i dh[i][j]·x[i][c] over stored nonzeros only,
// ascending sample order per cell. gW1 must be zero on entry; the result
// is bit-identical to MatTMulInto(dh, dense(x), gW1) because the skipped
// zero-feature terms contribute exact-zero products, which are identity
// adds on accumulators that are never -0.0 here. The unit loop runs
// outermost so each gradient row stays cache-resident while the whole
// batch scatters into it; per-cell terms still add in ascending i.
func sparseGradW1(sp *linalg.SparseMatrix, dh *linalg.Matrix, gW1 *linalg.Matrix) {
	for j := 0; j < dh.Cols; j++ {
		gRow := gW1.Row(j)
		for i := 0; i < sp.Rows; i++ {
			g := dh.At(i, j)
			if g == 0 { // gated unit: terms would be ±0, identity adds
				continue
			}
			cols, vals := sp.RowNZ(i)
			for t, c := range cols {
				gRow[c] += g * vals[t]
			}
		}
	}
}

// clearSparseGradW1 restores gW1's all-zero invariant after a batch: every
// row an ungated unit scattered into is wiped whole with a sequential
// clear, which beats re-walking the batch's column indices cell by cell —
// and the rows of gated-everywhere units are skipped entirely, keeping the
// wipe off the O(hidden·dim) full-matrix cost. Untouched cells in a wiped
// row are already +0.0, so overwriting them with +0.0 changes nothing.
func clearSparseGradW1(dh *linalg.Matrix, gW1 *linalg.Matrix) {
	for j := 0; j < dh.Cols; j++ {
		for i := 0; i < dh.Rows; i++ {
			if dh.At(i, j) != 0 {
				linalg.Zero(gW1.Row(j))
				break
			}
		}
	}
}

// fit32 is the reduced-precision trainer: float32 shadow weights feed
// float32 forward/backward kernels, the Adam32 optimizer keeps float32
// moments against float64 master parameters, and the shadow is refreshed
// from the masters after every step so narrowing error never compounds.
// Batch schedule, shuffle stream, and He init are identical to fit64 —
// only the arithmetic narrows.
func (m *MLP) fit32(x [][]float64, sp *linalg.SparseMatrix, y []int, rng *rand.Rand) error {
	n := len(y)
	h, d, k := m.cfg.Hidden, m.dim, m.cfg.Classes
	bs := m.cfg.BatchSize
	if bs > n {
		bs = n
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	// Float32 shadows of the parameter and gradient vectors, sharing the
	// flat layout (and so the w1/b1/w2/b2 offsets) of the masters.
	params32 := make([]float32, len(m.params))
	linalg.Convert32(params32, m.params)
	grads32 := make([]float32, len(m.params))
	w1s := &linalg.Matrix32{Rows: h, Cols: d, Data: params32[m.w1:m.b1]}
	w2s := &linalg.Matrix32{Rows: k, Cols: h, Data: params32[m.w2:m.b2]}
	bias1s, bias2s := params32[m.b1:m.w2], params32[m.b2:]
	gW1s := &linalg.Matrix32{Rows: h, Cols: d, Data: grads32[m.w1:m.b1]}
	gB1s := grads32[m.b1:m.w2]
	gW2s := &linalg.Matrix32{Rows: k, Cols: h, Data: grads32[m.w2:m.b2]}
	gB2s := grads32[m.b2:]

	var xb *linalg.Matrix32
	var spb *linalg.SparseMatrix
	if sp != nil {
		spb = &linalg.SparseMatrix{}
	} else {
		xb = linalg.NewMatrix32(bs, d)
	}
	hid := linalg.NewMatrix32(bs, h)
	probs := linalg.NewMatrix32(bs, k)
	dh := linalg.NewMatrix32(bs, h)

	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		epochStart := time.Now()
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.cfg.BatchSize {
			end := start + m.cfg.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			bn := len(batch)

			hv := trainView32(hid, bn)
			pv := trainView32(probs, bn)
			dv := trainView32(dh, bn)

			if sp != nil {
				sp.GatherRowsInto(batch, spb)
				linalg.SparseAffineT32Into(spb, w1s, bias1s, hv)
			} else {
				xv := trainView32(xb, bn)
				for i, idx := range batch {
					row := xv.Row(i)
					for j, v := range x[idx] {
						row[j] = float32(v)
					}
				}
				linalg.AffineT32Into(xv, w1s, bias1s, hv)
			}
			linalg.ReLURows32(hv)
			linalg.AffineT32Into(hv, w2s, bias2s, pv)
			linalg.SoftmaxRows32(pv)

			for i, idx := range batch {
				pv.Row(i)[y[idx]]--
			}
			linalg.MatTMul32Into(pv, hv, gW2s)
			linalg.ColSums32Into(pv, gB2s)
			linalg.MatMul32Into(pv, w2s, dv)
			linalg.ZeroWhereNonPos32(dv, hv)
			linalg.ColSums32Into(dv, gB1s)
			if sp != nil {
				sparseGradW1f32(spb, dv, gW1s)
			} else {
				linalg.MatTMul32Into(dv, trainView32(xb, bn), gW1s)
			}

			// The shadow refresh rides inside the step: every updated
			// float64 master is re-narrowed into params32 in the same pass,
			// so narrowing error never compounds across steps.
			stepStart := time.Now()
			m.adam32.StepSum(m.params, params32, [][]float32{grads32}, 1/float32(bn))
			adamStepSeconds.ObserveSince(stepStart)

			if sp != nil {
				clearSparseGradW1f32(dv, gW1s)
			}
		}
		epochSeconds.ObserveSince(epochStart)
	}
	return nil
}

// sparseGradW1f32 is sparseGradW1 against the float32 gradient shadow,
// narrowing each stored feature value as it is consumed.
func sparseGradW1f32(sp *linalg.SparseMatrix, dh *linalg.Matrix32, gW1 *linalg.Matrix32) {
	for j := 0; j < dh.Cols; j++ {
		gRow := gW1.Row(j)
		for i := 0; i < sp.Rows; i++ {
			g := dh.At(i, j)
			if g == 0 {
				continue
			}
			cols, vals := sp.RowNZ(i)
			for t, c := range cols {
				gRow[c] += g * float32(vals[t])
			}
		}
	}
}

func clearSparseGradW1f32(dh *linalg.Matrix32, gW1 *linalg.Matrix32) {
	for j := 0; j < dh.Cols; j++ {
		for i := 0; i < dh.Rows; i++ {
			if dh.At(i, j) != 0 {
				linalg.Zero32(gW1.Row(j))
				break
			}
		}
	}
}
