package linalg

import (
	"math/rand"
	"testing"
)

func randMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func benchMatMul(b *testing.B, n, k, m int) {
	a := randMatrix(n, k, 1)
	bb := randMatrix(k, m, 2)
	b.ReportAllocs()
	b.SetBytes(int64(8 * (n*k + k*m + n*m)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, bb)
	}
}

func BenchmarkMatMulSmall(b *testing.B)  { benchMatMul(b, 16, 16, 16) }
func BenchmarkMatMulMedium(b *testing.B) { benchMatMul(b, 128, 128, 128) }
func BenchmarkMatMulLarge(b *testing.B)  { benchMatMul(b, 256, 512, 256) }

func BenchmarkMatMulT(b *testing.B) {
	a := randMatrix(128, 256, 1)
	w := randMatrix(128, 256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT(a, w)
	}
}

// BenchmarkAffineTBatch vs BenchmarkAffinePerRow measure the same affine
// layer (the MLP hidden layer shape) as one batched kernel call versus the
// per-sample MulVec loop the serial forward used.
func BenchmarkAffineTBatch(b *testing.B) {
	a := randMatrix(256, 512, 1)
	w := randMatrix(64, 512, 2)
	bias := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AffineT(a, w, bias)
	}
}

func BenchmarkAffinePerRow(b *testing.B) {
	a := randMatrix(256, 512, 1)
	w := randMatrix(64, 512, 2)
	bias := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < a.Rows; r++ {
			out := make([]float64, w.Rows)
			aRow := a.Row(r)
			for j := 0; j < w.Rows; j++ {
				out[j] = bias[j] + Dot(w.Row(j), aRow)
			}
		}
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	m := randMatrix(512, 32, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(m)
	}
}

func BenchmarkStepSum(b *testing.B) {
	const size = 8192
	adam, _ := NewAdam(size, 1e-3)
	params := make([]float64, size)
	shards := [][]float64{randMatrix(1, size, 4).Data, randMatrix(1, size, 5).Data}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adam.StepSum(params, shards, 0.5)
	}
}

// BenchmarkStepSequence is the unfused Zero/Axpy/Scale/Step equivalent of
// BenchmarkStepSum for comparison.
func BenchmarkStepSequence(b *testing.B) {
	const size = 8192
	adam, _ := NewAdam(size, 1e-3)
	params := make([]float64, size)
	shards := [][]float64{randMatrix(1, size, 4).Data, randMatrix(1, size, 5).Data}
	grads := make([]float64, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Zero(grads)
		for _, s := range shards {
			Axpy(grads, s, 1)
		}
		Scale(grads, 0.5)
		adam.Step(params, grads)
	}
}
