// Package linalg provides the small dense linear-algebra kernel the
// classifiers are built on: vector primitives, a row-major matrix, softmax
// utilities, and the Adam optimizer.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. Lengths must match.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Axpy computes dst += s*src element-wise.
func Axpy(dst, src []float64, s float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += s * src[i]
	}
}

// Scale multiplies every element of v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Zero clears v in place.
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// ArgMax returns the index of the largest element (first on ties), or -1
// for an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Softmax writes the softmax of logits into out (shared backing allowed)
// using the max-shift trick for numerical stability.
func Softmax(logits, out []float64) {
	if len(logits) != len(out) {
		panic(fmt.Sprintf("linalg: softmax length mismatch %d vs %d", len(logits), len(out)))
	}
	if len(logits) == 0 {
		return
	}
	maxV := logits[0]
	for _, v := range logits[1:] {
		maxV = math.Max(maxV, v)
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows int
	Cols int
	Data []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set writes the element at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a shared slice.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// MulVec computes out = M·x. out must have length Rows, x length Cols.
func (m *Matrix) MulVec(x, out []float64) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("linalg: mulvec shape mismatch: %dx%d with x=%d out=%d",
			m.Rows, m.Cols, len(x), len(out)))
	}
	for r := 0; r < m.Rows; r++ {
		out[r] = Dot(m.Row(r), x)
	}
}

// MulVecT computes out = Mᵀ·x. out must have length Cols, x length Rows.
func (m *Matrix) MulVecT(x, out []float64) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("linalg: mulvecT shape mismatch: %dx%d with x=%d out=%d",
			m.Rows, m.Cols, len(x), len(out)))
	}
	Zero(out)
	for r := 0; r < m.Rows; r++ {
		Axpy(out, m.Row(r), x[r])
	}
}
