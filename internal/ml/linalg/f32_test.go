package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The float32 kernels make no bit-exactness promise against the float64
// reference — they sit on the "within stated tolerance" side of the
// precision policy. These tests pin that tolerance explicitly: float32 has
// a 2^-24 relative rounding step, so with O(hundreds) of accumulation terms
// of O(1) magnitude, results must stay within ~1e-4 relative of the
// float64 kernels.
const f32RelTol = 1e-4

// relDiff32 returns |got-want| / max(1, |want|).
func relDiff32(got float32, want float64) float64 {
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(float64(got)-want) / scale
}

func randomPair32(rows, cols int, seed int64) (*Matrix, *Matrix32) {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	m32 := NewMatrix32(rows, cols)
	Convert32(m32.Data, m.Data)
	return m, m32
}

func TestDot32WithinTolerance(t *testing.T) {
	// 203 is odd and not a multiple of the 4-lane unroll, so the remainder
	// loop runs too.
	const n = 203
	rng := rand.New(rand.NewSource(1))
	a64 := make([]float64, n)
	b64 := make([]float64, n)
	a32 := make([]float32, n)
	b32 := make([]float32, n)
	for i := 0; i < n; i++ {
		a64[i] = rng.NormFloat64()
		b64[i] = rng.NormFloat64()
		a32[i] = float32(a64[i])
		b32[i] = float32(b64[i])
	}
	got := Dot32(a32, b32)
	want := Dot(a64, b64)
	if d := relDiff32(got, want); d > f32RelTol {
		t.Fatalf("Dot32 = %g, float64 %g (rel diff %g)", got, want, d)
	}
}

// TestAffineT32WithinTolerance compares the tiled float32 affine kernel
// against the float64 one on identical (narrowed) inputs, at a size that
// crosses the row-tile boundary with a remainder.
func TestAffineT32WithinTolerance(t *testing.T) {
	const n, d, h = 37, 129, 23
	a, a32 := randomPair32(n, d, 2)
	w, w32 := randomPair32(h, d, 3)
	rng := rand.New(rand.NewSource(4))
	bias := make([]float64, h)
	bias32 := make([]float32, h)
	for i := range bias {
		bias[i] = rng.NormFloat64()
		bias32[i] = float32(bias[i])
	}

	want := NewMatrix(n, h)
	AffineTInto(a, w, bias, want)
	got := NewMatrix32(n, h)
	AffineT32Into(a32, w32, bias32, got)

	for i := range want.Data {
		if diff := relDiff32(got.Data[i], want.Data[i]); diff > f32RelTol {
			t.Fatalf("element %d: float32 %g, float64 %g (rel diff %g)",
				i, got.Data[i], want.Data[i], diff)
		}
	}
}

// TestSparseAffineT32WithinTolerance checks the sparse float32 first-layer
// kernel against the dense float32 kernel on the dense form of the same
// batch. The two accumulate in different orders (gather vs 4-lane dot), so
// the comparison is a tolerance, not bit equality.
func TestSparseAffineT32WithinTolerance(t *testing.T) {
	dense := randomSparseDense(37, 129, 0.1, 5)
	sp := SparseFromDense(dense)
	dense32 := NewMatrix32(dense.Rows, dense.Cols)
	Convert32(dense32.Data, dense.Data)

	_, w32 := randomPair32(23, 129, 6)
	rng := rand.New(rand.NewSource(7))
	bias32 := make([]float32, 23)
	for i := range bias32 {
		bias32[i] = float32(rng.NormFloat64())
	}

	want := NewMatrix32(dense.Rows, 23)
	AffineT32Into(dense32, w32, bias32, want)
	got := NewMatrix32(dense.Rows, 23)
	SparseAffineT32Into(sp, w32, bias32, got)

	for i := range want.Data {
		if diff := relDiff32(got.Data[i], float64(want.Data[i])); diff > f32RelTol {
			t.Fatalf("element %d: sparse %g, dense %g (rel diff %g)",
				i, got.Data[i], want.Data[i], diff)
		}
	}
}

// TestSoftmaxRows32WithinTolerance includes a large-magnitude row to check
// the max-shift stabilization survives the narrow path.
func TestSoftmaxRows32WithinTolerance(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {-5, 0, 5}, {1000, 999, 998}}
	want, _ := FromRows(rows)
	SoftmaxRows(want)

	got := NewMatrix32(len(rows), 3)
	for i, r := range rows {
		for j, v := range r {
			got.Row(i)[j] = float32(v)
		}
	}
	SoftmaxRows32(got)

	for i := range want.Data {
		if diff := relDiff32(got.Data[i], want.Data[i]); diff > f32RelTol {
			t.Fatalf("element %d: float32 %g, float64 %g (rel diff %g)",
				i, got.Data[i], want.Data[i], diff)
		}
	}
}

func TestConvert32Narrows(t *testing.T) {
	src := []float64{0, 1, -1.5, math.Pi, 1e-40}
	dst := make([]float32, len(src))
	Convert32(dst, src)
	for i, v := range src {
		if dst[i] != float32(v) {
			t.Fatalf("element %d: %g, want %g", i, dst[i], float32(v))
		}
	}
}
