package linalg

import (
	"math/rand"
	"testing"
)

// randomSparseDense builds a dense matrix with roughly the given fraction
// of nonzeros (mixed signs), mirroring bag-of-words feature batches.
func randomSparseDense(rows, cols int, density float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func TestSparseDenseRoundTrip(t *testing.T) {
	dense := randomSparseDense(17, 53, 0.05, 1)
	sp := SparseFromDense(dense)
	if sp.Rows != dense.Rows || sp.Cols != dense.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", sp.Rows, sp.Cols, dense.Rows, dense.Cols)
	}
	var wantNNZ int
	for _, v := range dense.Data {
		if v != 0 {
			wantNNZ++
		}
	}
	if sp.NNZ() != wantNNZ {
		t.Fatalf("nnz %d, want %d", sp.NNZ(), wantNNZ)
	}
	for r := 0; r < sp.Rows; r++ {
		cols, _ := sp.RowNZ(r)
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				t.Fatalf("row %d columns not strictly ascending: %v", r, cols)
			}
		}
	}
	back := sp.ToDense()
	for i := range dense.Data {
		if dense.Data[i] != back.Data[i] {
			t.Fatalf("element %d: %v round-tripped to %v", i, dense.Data[i], back.Data[i])
		}
	}
}

func TestSparseDotMatchesDot(t *testing.T) {
	dense := randomSparseDense(8, 200, 0.1, 2)
	sp := SparseFromDense(dense)
	rng := rand.New(rand.NewSource(3))
	w := make([]float64, dense.Cols)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for r := 0; r < sp.Rows; r++ {
		cols, vals := sp.RowNZ(r)
		if got, want := SparseDot(cols, vals, w), Dot(dense.Row(r), w); got != want {
			t.Fatalf("row %d: SparseDot %v, Dot %v", r, got, want)
		}
	}
}

func TestSparseAffineTMatchesAffineT(t *testing.T) {
	// Large enough that parallelRows actually fans out.
	a := randomSparseDense(300, 500, 0.05, 4)
	sp := SparseFromDense(a)
	w := randomSparseDense(40, 500, 1, 5) // dense weights
	rng := rand.New(rand.NewSource(6))
	bias := make([]float64, w.Rows)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	want := AffineT(a, w, bias)
	got := SparseAffineT(sp, w, bias)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("element %d: dense %v, sparse %v", i, want.Data[i], got.Data[i])
		}
	}
}

func TestGatherRows(t *testing.T) {
	dense := randomSparseDense(10, 30, 0.2, 7)
	sp := SparseFromDense(dense)
	idx := []int{7, 0, 7, 3}
	got := sp.GatherRows(idx).ToDense()
	if got.Rows != len(idx) {
		t.Fatalf("%d rows, want %d", got.Rows, len(idx))
	}
	for k, i := range idx {
		for j, v := range dense.Row(i) {
			if got.Row(k)[j] != v {
				t.Fatalf("gathered row %d (source %d) col %d: %v, want %v", k, i, j, got.Row(k)[j], v)
			}
		}
	}
	empty := sp.GatherRows(nil)
	if empty.Rows != 0 || empty.NNZ() != 0 {
		t.Fatalf("empty gather: %d rows, %d nnz", empty.Rows, empty.NNZ())
	}
}

func TestScatterClearRow(t *testing.T) {
	dense := randomSparseDense(6, 40, 0.3, 8)
	sp := SparseFromDense(dense)
	scratch := make([]float64, sp.Cols)
	for r := 0; r < sp.Rows; r++ {
		sp.ScatterRow(r, scratch)
		for j, v := range dense.Row(r) {
			if scratch[j] != v {
				t.Fatalf("row %d col %d: scattered %v, want %v", r, j, scratch[j], v)
			}
		}
		sp.ClearRow(r, scratch)
	}
	for j, v := range scratch {
		if v != 0 {
			t.Fatalf("scratch[%d] = %v after ClearRow cycle", j, v)
		}
	}
}

func TestSparseClone(t *testing.T) {
	sp := SparseFromDense(randomSparseDense(5, 20, 0.2, 9))
	cl := sp.Clone()
	if sp.NNZ() == 0 {
		t.Skip("degenerate random draw")
	}
	cl.Val[0]++
	if sp.Val[0] == cl.Val[0] {
		t.Error("Clone shares Val storage")
	}
}

func TestAppendRowBuildsCSR(t *testing.T) {
	s := NewSparseMatrix(3, 4, 4)
	s.ColIdx = append(s.ColIdx, 1, 3)
	s.Val = append(s.Val, 2, 4)
	s.AppendRow()
	s.AppendRow() // empty row
	s.ColIdx = append(s.ColIdx, 0)
	s.Val = append(s.Val, 5)
	s.AppendRow()
	want := [][]float64{{0, 2, 0, 4}, {0, 0, 0, 0}, {5, 0, 0, 0}}
	d := s.ToDense()
	for i, row := range want {
		for j, v := range row {
			if d.Row(i)[j] != v {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, d.Row(i)[j], v)
			}
		}
	}
}
