package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %f, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("empty Dot = %f", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Dot did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyAndScale(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(dst, []float64{10, 20, 30}, 0.5)
	want := []float64{6, 12, 18}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("Axpy[%d] = %f, want %f", i, dst[i], want[i])
		}
	}
	Scale(dst, 2)
	if dst[0] != 12 || dst[2] != 36 {
		t.Errorf("Scale = %v", dst)
	}
	Zero(dst)
	for _, v := range dst {
		if v != 0 {
			t.Errorf("Zero = %v", dst)
		}
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %f", got)
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		in   []float64
		want int
	}{
		{nil, -1},
		{[]float64{5}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{2, 2, 2}, 0}, // first on ties
		{[]float64{-5, -1, -9}, 1},
	}
	for _, tc := range tests {
		if got := ArgMax(tc.in); got != tc.want {
			t.Errorf("ArgMax(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSoftmax(t *testing.T) {
	out := make([]float64, 3)
	Softmax([]float64{1, 1, 1}, out)
	for _, v := range out {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Errorf("uniform softmax = %v", out)
		}
	}
	// Large logits must not overflow.
	Softmax([]float64{1000, 999, 998}, out)
	var sum float64
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", out)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sum = %f", sum)
	}
	if out[0] <= out[1] || out[1] <= out[2] {
		t.Errorf("ordering lost: %v", out)
	}
}

func TestSoftmaxSumsToOneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		logits := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				logits = append(logits, math.Mod(v, 500))
			}
		}
		if len(logits) == 0 {
			return true
		}
		out := make([]float64, len(logits))
		Softmax(logits, out)
		var sum float64
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6]
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		m.Data[i] = v
	}
	out := make([]float64, 2)
	m.MulVec([]float64{1, 0, -1}, out)
	if out[0] != -2 || out[1] != -2 {
		t.Errorf("MulVec = %v", out)
	}

	outT := make([]float64, 3)
	m.MulVecT([]float64{1, 1}, outT)
	if outT[0] != 5 || outT[1] != 7 || outT[2] != 9 {
		t.Errorf("MulVecT = %v", outT)
	}
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Error("At/Set broken")
	}
	row := m.Row(2)
	if len(row) != 4 || row[3] != 7 {
		t.Errorf("Row = %v", row)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = Σ (x_i - target_i)^2.
	target := []float64{3, -2, 0.5}
	params := make([]float64, 3)
	adam, err := NewAdam(3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	grads := make([]float64, 3)
	for step := 0; step < 2000; step++ {
		for i := range params {
			grads[i] = 2 * (params[i] - target[i])
		}
		adam.Step(params, grads)
	}
	for i := range params {
		if math.Abs(params[i]-target[i]) > 0.01 {
			t.Errorf("param %d = %f, want %f", i, params[i], target[i])
		}
	}
}

func TestAdamValidation(t *testing.T) {
	if _, err := NewAdam(0, 0.1); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewAdam(3, 0); err == nil {
		t.Error("lr 0 accepted")
	}
}

func TestAdamReset(t *testing.T) {
	adam, err := NewAdam(2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{1, 1}
	adam.Step(params, []float64{1, 1})
	adam.Reset()
	if adam.t != 0 || adam.m[0] != 0 || adam.v[0] != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, the first step is ~lr in the gradient direction.
	adam, err := NewAdam(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{0}
	adam.Step(params, []float64{5})
	if math.Abs(params[0]+0.1) > 1e-6 {
		t.Errorf("first step = %f, want ~-0.1", params[0])
	}
}
