package linalg

import (
	"math"
	"runtime"
	"testing"
)

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Errorf("FromRows = %dx%d %v", m.Rows, m.Cols, m.Data)
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Error("zero-width rows accepted")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestRowSlicesShareStorage(t *testing.T) {
	m := NewMatrix(2, 2)
	rows := m.RowSlices()
	rows[1][0] = 7
	if m.At(1, 0) != 7 {
		t.Error("RowSlices returned copies, want views")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Data[0] = 9
	if m.Data[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulT(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 7}, {6, 8}}) // Bᵀ of the MatMul case
	c := MatMulT(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMulT = %v, want %v", c.Data, want)
		}
	}
}

func TestAffineT(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {0, -1}})
	w, _ := FromRows([][]float64{{1, 1}, {2, 0}, {0, 3}})
	c := AffineT(a, w, []float64{10, 20, 30})
	want := []float64{13, 22, 36, 9, 20, 27}
	for i, wv := range want {
		if c.Data[i] != wv {
			t.Fatalf("AffineT = %v, want %v", c.Data, want)
		}
	}
}

// TestAffineTIntoMatchesPerCell pins the kernel's documented contract
// across the row tiling and the four-sample interleave: every cell must be
// exactly bias[j] + Dot(w.Row(j), a.Row(i)). Sizes are chosen to leave
// remainders at both the 16-row tile and the 4-row interleave, so the
// cleanup loops are checked along with the steady state.
func TestAffineTIntoMatchesPerCell(t *testing.T) {
	const n, d, h = 37, 29, 23
	a := NewMatrix(n, d)
	w := NewMatrix(h, d)
	bias := make([]float64, h)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i))
	}
	for i := range w.Data {
		w.Data[i] = math.Cos(float64(i))
	}
	for i := range bias {
		bias[i] = math.Sin(float64(i) * 0.7)
	}
	c := NewMatrix(n, h)
	AffineTInto(a, w, bias, c)
	for i := 0; i < n; i++ {
		for j := 0; j < h; j++ {
			if want := bias[j] + Dot(w.Row(j), a.Row(i)); c.At(i, j) != want {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 2)
	for name, fn := range map[string]func(){
		"MatMul":      func() { MatMul(a, b) },
		"MatMulT":     func() { MatMulT(a, NewMatrix(2, 4)) },
		"AffineT":     func() { AffineT(a, NewMatrix(2, 4), []float64{1, 2}) },
		"AffineTBias": func() { AffineT(a, NewMatrix(2, 3), []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s shape mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestMatMulParallelMatchesSerial exercises the goroutine fan-out path (a
// product large enough to cross parallelFlops) and checks it is
// bit-identical to a plain triple loop.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	const n, k, m = 64, 48, 40
	if n*k*m < parallelFlops && runtime.GOMAXPROCS(0) > 1 {
		t.Logf("product below the parallel threshold; serial path only")
	}
	a := NewMatrix(n, k)
	b := NewMatrix(k, m)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i))
	}
	for i := range b.Data {
		b.Data[i] = math.Cos(float64(i))
	}
	got := MatMul(a, b)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			var want float64
			for kk := 0; kk < k; kk++ {
				want += a.At(i, kk) * b.At(kk, j)
			}
			if math.Abs(got.At(i, j)-want) > 1e-9 {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestReLURows(t *testing.T) {
	m, _ := FromRows([][]float64{{-1, 2}, {0, -3}})
	ReLURows(m)
	want := []float64{0, 2, 0, 0}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("ReLURows = %v", m.Data)
		}
	}
}

// TestSoftmaxRowsMatchesSoftmax checks that the batched row softmax is
// bit-identical to the per-vector Softmax the serial forward paths use.
func TestSoftmaxRowsMatchesSoftmax(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {-5, 0, 5}, {1000, 999, 998}})
	want := m.Clone()
	for i := 0; i < want.Rows; i++ {
		row := want.Row(i)
		Softmax(row, row)
	}
	SoftmaxRows(m)
	for i, w := range want.Data {
		if m.Data[i] != w {
			t.Fatalf("SoftmaxRows[%d] = %g, serial %g", i, m.Data[i], w)
		}
	}
}

func TestArgMaxRows(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 3, 2}, {5, 5, 1}, {-2, -1, -3}})
	got := ArgMaxRows(m)
	want := []int{1, 0, 1}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("ArgMaxRows = %v, want %v", got, want)
		}
	}
}

// TestStepSumMatchesStepSequence pins the bit-identity contract: StepSum
// over gradient shards must reproduce the Zero/Axpy/Scale/Step sequence the
// minibatch loops used before the fused path.
func TestStepSumMatchesStepSequence(t *testing.T) {
	const size = 17
	shards := [][]float64{make([]float64, size), make([]float64, size)}
	for i := 0; i < size; i++ {
		shards[0][i] = math.Sin(float64(i)) * 3
		shards[1][i] = math.Cos(float64(i)) * 2
	}
	const scale = 1.0 / 3

	oldAdam, _ := NewAdam(size, 0.01)
	oldParams := make([]float64, size)
	newAdam, _ := NewAdam(size, 0.01)
	newParams := make([]float64, size)

	grads := make([]float64, size)
	for step := 0; step < 25; step++ {
		Zero(grads)
		for _, s := range shards {
			Axpy(grads, s, 1)
		}
		Scale(grads, scale)
		oldAdam.Step(oldParams, grads)

		newAdam.StepSum(newParams, shards, scale)
	}
	for i := range oldParams {
		if oldParams[i] != newParams[i] {
			t.Fatalf("param %d: StepSum %g, sequence %g", i, newParams[i], oldParams[i])
		}
	}
}

func TestStepSumSizePanics(t *testing.T) {
	adam, _ := NewAdam(3, 0.1)
	defer func() {
		if recover() == nil {
			t.Error("mismatched shard did not panic")
		}
	}()
	adam.StepSum(make([]float64, 3), [][]float64{make([]float64, 2)}, 1)
}
