package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// Batch matrix kernels. Every product below is blocked over the inner
// dimension for cache locality and fans rows out over GOMAXPROCS
// goroutines once the work is large enough to amortize the scheduling;
// small products run serially. The inner accumulation always walks the
// shared dimension in ascending order, so parallel results are
// bit-identical to the serial path regardless of worker count.

const (
	// parallelFlops is the approximate multiply-add count below which a
	// product runs serially; goroutine fan-out costs more than it saves
	// under this size.
	parallelFlops = 64 * 1024
	// blockK is the inner-dimension tile: one A-row tile plus the touched
	// B rows stay resident in L1/L2 while a C row accumulates.
	blockK = 256
)

// FromRows builds a matrix whose rows copy the given slices. All rows must
// share one length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("linalg: no rows")
	}
	cols := len(rows[0])
	if cols == 0 {
		return nil, fmt.Errorf("linalg: zero-width rows")
	}
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// RowSlices returns every row as a shared view; mutating a slice mutates
// the matrix.
func (m *Matrix) RowSlices() [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// parallelRows partitions [0, rows) into contiguous chunks and runs fn on
// each chunk concurrently. flops gates the fan-out: below parallelFlops
// everything runs on the calling goroutine.
func parallelRows(rows, flops int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || flops < parallelFlops {
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns C = A·B. Shapes: (n×k)·(k×m) → n×m.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Row(i)
			cRow := c.Row(i)
			// i-k-j with k tiling: every access walks rows of B, so the
			// whole product streams cache lines forward.
			for k0 := 0; k0 < a.Cols; k0 += blockK {
				k1 := k0 + blockK
				if k1 > a.Cols {
					k1 = a.Cols
				}
				for k := k0; k < k1; k++ {
					Axpy(cRow, b.Row(k), aRow[k])
				}
			}
		}
	})
	return c
}

// MatMulT returns C = A·Bᵀ. Shapes: (n×k)·(m×k)ᵀ → n×m. Both operands are
// traversed along rows, the cache-ideal layout for row-major storage.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Rows)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Row(i)
			cRow := c.Row(i)
			for j := 0; j < b.Rows; j++ {
				cRow[j] = Dot(aRow, b.Row(j))
			}
		}
	})
	return c
}

// AffineT returns C = A·Wᵀ + bias, the batched affine layer: row i of C is
// W·a_i + bias. len(bias) must equal w.Rows. Each cell computes the full
// dot product first and adds the bias with one final add — exactly the
// serial per-sample form bias + Dot(w, x) — so batch and single-sample
// forwards agree bit for bit.
func AffineT(a, w *Matrix, bias []float64) *Matrix {
	if a.Cols != w.Cols {
		panic(fmt.Sprintf("linalg: affineT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, w.Rows, w.Cols))
	}
	if len(bias) != w.Rows {
		panic(fmt.Sprintf("linalg: affineT bias length %d, want %d", len(bias), w.Rows))
	}
	c := NewMatrix(a.Rows, w.Rows)
	parallelRows(a.Rows, a.Rows*a.Cols*w.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Row(i)
			cRow := c.Row(i)
			for j := 0; j < w.Rows; j++ {
				cRow[j] = bias[j] + Dot(w.Row(j), aRow)
			}
		}
	})
	return c
}

// ReLURows clamps every element of m to [0, ∞) in place.
func ReLURows(m *Matrix) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// SoftmaxRows applies the softmax row-wise in place.
func SoftmaxRows(m *Matrix) {
	parallelRows(m.Rows, m.Rows*m.Cols*8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			Softmax(row, row)
		}
	})
}

// ArgMaxRows returns the per-row argmax (first index on ties).
func ArgMaxRows(m *Matrix) []int {
	out := make([]int, m.Rows)
	for i := range out {
		out[i] = ArgMax(m.Row(i))
	}
	return out
}
