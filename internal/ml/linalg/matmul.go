package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// Batch matrix kernels. Every product below is blocked over the inner
// dimension for cache locality and fans rows out over GOMAXPROCS
// goroutines once the work is large enough to amortize the scheduling;
// small products run serially. The inner accumulation always walks the
// shared dimension in ascending order, so parallel results are
// bit-identical to the serial path regardless of worker count.

const (
	// parallelFlops is the approximate multiply-add count below which a
	// product runs serially; goroutine fan-out costs more than it saves
	// under this size.
	parallelFlops = 64 * 1024
	// blockK is the inner-dimension tile: one A-row tile plus the touched
	// B rows stay resident in L1/L2 while a C row accumulates.
	blockK = 256
	// affineTileRows is the A-row tile of the affine kernels: within a
	// tile the weight loop runs outermost, so each W row is fetched once
	// per tile and dotted against every tile row from cache, instead of W
	// streaming through memory once per sample. Sixteen rows of a
	// few-thousand-wide A stay L2-resident.
	affineTileRows = 16
)

// FromRows builds a matrix whose rows copy the given slices. All rows must
// share one length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("linalg: no rows")
	}
	cols := len(rows[0])
	if cols == 0 {
		return nil, fmt.Errorf("linalg: zero-width rows")
	}
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// RowSlices returns every row as a shared view; mutating a slice mutates
// the matrix.
func (m *Matrix) RowSlices() [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// parallelRows partitions [0, rows) into contiguous chunks and runs fn on
// each chunk concurrently. flops gates the fan-out: below parallelFlops
// everything runs on the calling goroutine.
func parallelRows(rows, flops int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || flops < parallelFlops {
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns C = A·B. Shapes: (n×k)·(k×m) → n×m.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Row(i)
			cRow := c.Row(i)
			// i-k-j with k tiling: every access walks rows of B, so the
			// whole product streams cache lines forward.
			for k0 := 0; k0 < a.Cols; k0 += blockK {
				k1 := k0 + blockK
				if k1 > a.Cols {
					k1 = a.Cols
				}
				for k := k0; k < k1; k++ {
					Axpy(cRow, b.Row(k), aRow[k])
				}
			}
		}
	})
	return c
}

// MatMulT returns C = A·Bᵀ. Shapes: (n×k)·(m×k)ᵀ → n×m. Both operands are
// traversed along rows, the cache-ideal layout for row-major storage.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Rows)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Row(i)
			cRow := c.Row(i)
			for j := 0; j < b.Rows; j++ {
				cRow[j] = Dot(aRow, b.Row(j))
			}
		}
	})
	return c
}

// AffineT returns C = A·Wᵀ + bias, the batched affine layer: row i of C is
// W·a_i + bias. len(bias) must equal w.Rows. Each cell computes the full
// dot product first and adds the bias with one final add — exactly the
// serial per-sample form bias + Dot(w, x) — so batch and single-sample
// forwards agree bit for bit.
func AffineT(a, w *Matrix, bias []float64) *Matrix {
	c := NewMatrix(a.Rows, w.Rows)
	AffineTInto(a, w, bias, c)
	return c
}

// AffineTInto is AffineT writing into a caller-owned c (shape a.Rows×w.Rows),
// the allocation-free form training loops call once per minibatch.
//
// The loop nest tiles sample rows and puts the weight loop outermost
// inside each tile: W streams through memory once per affineTileRows
// samples rather than once per sample, which is what makes the batched
// trainer cheaper than a per-sample loop when W outgrows the cache. Every
// output cell is still the independent bias + Dot(w_j, a_i), so cell
// iteration order is free and the tiled order is bit-identical to the
// row-major one.
func AffineTInto(a, w *Matrix, bias []float64, c *Matrix) {
	if a.Cols != w.Cols {
		panic(fmt.Sprintf("linalg: affineT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, w.Rows, w.Cols))
	}
	if len(bias) != w.Rows {
		panic(fmt.Sprintf("linalg: affineT bias length %d, want %d", len(bias), w.Rows))
	}
	if c.Rows != a.Rows || c.Cols != w.Rows {
		panic(fmt.Sprintf("linalg: affineT output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, w.Rows))
	}
	parallelRows(a.Rows, a.Rows*a.Cols*w.Rows, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += affineTileRows {
			i1 := i0 + affineTileRows
			if i1 > hi {
				i1 = hi
			}
			for j := 0; j < w.Rows; j++ {
				wRow := w.Row(j)
				bj := bias[j]
				// Four samples dot against the weight row at once. The four
				// accumulators are independent dependency chains, so the
				// floating-point add latency that serializes a lone Dot is
				// hidden — and each chain still sums w[k]·a[k] in ascending
				// k, so every cell remains bit-identical to bias + Dot.
				i := i0
				for ; i+4 <= i1; i += 4 {
					a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
					var s0, s1, s2, s3 float64
					for k, wk := range wRow {
						s0 += wk * a0[k]
						s1 += wk * a1[k]
						s2 += wk * a2[k]
						s3 += wk * a3[k]
					}
					c.Row(i)[j] = bj + s0
					c.Row(i+1)[j] = bj + s1
					c.Row(i+2)[j] = bj + s2
					c.Row(i+3)[j] = bj + s3
				}
				for ; i < i1; i++ {
					c.Row(i)[j] = bj + Dot(wRow, a.Row(i))
				}
			}
		}
	})
}

// MatMulInto is MatMul writing into a caller-owned c (shape a.Rows×b.Cols).
// c is overwritten, not accumulated into.
func MatMulInto(a, b, c *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: matmul output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Row(i)
			cRow := c.Row(i)
			axpyInit(cRow, b.Row(0), aRow[0])
			for k := 1; k < a.Cols; k++ {
				Axpy(cRow, b.Row(k), aRow[k])
			}
		}
	})
}

// MatTMulInto computes C = Aᵀ·B into a caller-owned c. Shapes:
// (n×k)ᵀ·(n×m) → k×m. This is the gradient kernel of the batched backward
// pass: with A the per-sample output deltas and B the per-sample
// activations, cell (j, t) accumulates Σ_i a[i][j]·b[i][t] over the batch
// in ascending sample order — exactly the order a per-sample training loop
// adds gradient contributions — so whole-batch gradients are bit-identical
// to the per-sample path. Fan-out is across output rows (each cell is owned
// by one goroutine), so any worker count reproduces the serial bits.
func MatTMulInto(a, b, c *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: mattmul shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: mattmul output %dx%d, want %dx%d", c.Rows, c.Cols, a.Cols, b.Cols))
	}
	parallelRows(c.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			cRow := c.Row(j)
			axpyInit(cRow, b.Row(0), a.At(0, j))
			for i := 1; i < a.Rows; i++ {
				Axpy(cRow, b.Row(i), a.At(i, j))
			}
		}
	})
}

// axpyInit writes dst = s·src + 0 element-wise: the value a zeroed
// accumulator holds after its first s·src add. The explicit +0 folds a
// -0.0 product to the +0.0 that 0 + (-0.0) yields, so overwrite-init is
// bit-identical to Zero-then-Axpy without the extra clearing pass.
func axpyInit(dst, src []float64, s float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] = s*src[i] + 0
	}
}

// ColSumsInto writes the per-column sums of a into dst (len a.Cols),
// accumulating rows in ascending order — the bias-gradient reduction of the
// batched backward pass, bit-identical to per-sample accumulation.
func ColSumsInto(a *Matrix, dst []float64) {
	if len(dst) != a.Cols {
		panic(fmt.Sprintf("linalg: colsums length %d, want %d", len(dst), a.Cols))
	}
	axpyInit(dst, a.Row(0), 1)
	for i := 1; i < a.Rows; i++ {
		Axpy(dst, a.Row(i), 1)
	}
}

// ZeroWhereNonPos zeroes every element of m whose counterpart in gate is
// <= 0 — the ReLU backward gate over a whole batch of hidden deltas, with
// gate holding the post-ReLU activations.
func ZeroWhereNonPos(m, gate *Matrix) {
	if m.Rows != gate.Rows || m.Cols != gate.Cols {
		panic(fmt.Sprintf("linalg: gate shape %dx%d, want %dx%d", gate.Rows, gate.Cols, m.Rows, m.Cols))
	}
	for i, g := range gate.Data {
		if g <= 0 {
			m.Data[i] = 0
		}
	}
}

// ReLURows clamps every element of m to [0, ∞) in place.
func ReLURows(m *Matrix) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// SoftmaxRows applies the softmax row-wise in place.
func SoftmaxRows(m *Matrix) {
	parallelRows(m.Rows, m.Rows*m.Cols*8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			Softmax(row, row)
		}
	})
}

// ArgMaxRows returns the per-row argmax (first index on ties).
func ArgMaxRows(m *Matrix) []int {
	out := make([]int, m.Rows)
	for i := range out {
		out[i] = ArgMax(m.Row(i))
	}
	return out
}
